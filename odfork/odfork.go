// Package odfork is the public API of the on-demand-fork reproduction:
// a simulated operating-system memory subsystem with three fork
// engines — the traditional copy-everything fork, fork over 2 MiB huge
// pages, and the paper's on-demand-fork, which shares last-level page
// tables between parent and child and copies them lazily, one 2 MiB
// region at a time, on the first write fault.
//
// The package wraps the internal kernel with a small, stable surface:
//
//	sys := odfork.NewSystem()
//	p := sys.NewProcess()
//	buf, _ := p.Mmap(1<<30, odfork.ProtRead|odfork.ProtWrite,
//	    odfork.MapPrivate|odfork.MapPopulate)
//	child, _ := p.Fork(odfork.WithMode(odfork.OnDemand)) // microseconds
//
// Forked children have full copy-on-write semantics: reads are shared,
// the first write to a 2 MiB region copies one page table, and the
// first write to a page copies that page. See DESIGN.md for how the
// simulation substitutes for the paper's kernel patch, and
// EXPERIMENTS.md for the reproduced evaluation.
package odfork

import (
	"errors"
	"io"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/reclaim"
	"repro/internal/mem/vm"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Sentinel errors of the v1 API. Every error the system returns for
// one of these conditions wraps the corresponding sentinel, so callers
// classify failures with errors.Is instead of matching message text:
//
//	if errors.Is(err, odfork.ErrNoMem) { ... back off ... }
//
// ErrBadAddr and ErrProtViolation also classify segfaults: a
// *SegfaultError unwraps to whichever of the two applies.
var (
	// ErrNoMem reports simulated physical memory exhaustion — only
	// possible when a frame limit is set (System.SetFrameLimit), and,
	// when swap is enabled (System.SetSwapEnabled), only after direct
	// reclaim has failed to free enough frames.
	ErrNoMem = core.ErrOutOfMemory
	// ErrBadAddr reports an access to unmapped memory or a malformed
	// address, range, or size argument.
	ErrBadAddr = core.ErrBadAddr
	// ErrProtViolation reports an access forbidden by a mapping's
	// protection.
	ErrProtViolation = core.ErrProtViolation
	// ErrExited reports an operation on a process that has exited.
	ErrExited = kernel.ErrExited
	// ErrSwapIO reports a swap store operation that kept failing after
	// its bounded retries; the system has switched into degraded-swap
	// mode (SwapDegraded) and performs no further eviction.
	ErrSwapIO = reclaim.ErrSwapIO
	// ErrSwapCorrupt reports a swapped-out page whose content read back
	// with a checksum different from the one recorded at swap-out.
	ErrSwapCorrupt = reclaim.ErrSwapCorrupt
	// ErrCheckpointCorrupt reports a durable checkpoint whose on-disk
	// bytes fail integrity verification — a chunk CRC mismatch, torn
	// footer, or broken incremental chain — at open, verify, or lazy
	// fault-in time.
	ErrCheckpointCorrupt = kernel.ErrCheckpointCorrupt
	// ErrCheckpointIO reports a checkpoint store operation that kept
	// failing after its bounded retries; the affected restore image
	// latches into degraded mode.
	ErrCheckpointIO = kernel.ErrCheckpointIO
)

// Addr is a virtual address in a simulated process.
type Addr = addr.V

// Size constants for mapping requests.
const (
	PageSize     = addr.PageSize     // 4 KiB
	HugePageSize = addr.HugePageSize // 2 MiB
	KiB          = uint64(1) << 10
	MiB          = uint64(1) << 20
	GiB          = uint64(1) << 30
)

// Prot is a mapping protection.
type Prot = vm.Prot

// Protection bits.
const (
	ProtRead  = vm.ProtRead
	ProtWrite = vm.ProtWrite
)

// MapFlags selects mapping behaviour.
type MapFlags = vm.MapFlags

// Mapping flags.
const (
	// MapPrivate requests copy-on-write semantics across fork.
	MapPrivate = vm.MapPrivate
	// MapHuge backs the mapping with 2 MiB pages.
	MapHuge = vm.MapHuge
	// MapPopulate pre-faults every page at mmap time.
	MapPopulate = vm.MapPopulate
)

// Mode selects a fork engine.
type Mode = core.ForkMode

// Fork engines.
const (
	// Classic is the traditional fork: it copies the entire paging
	// hierarchy and reference-counts every mapped page, so its latency
	// grows linearly with the process's mapped memory.
	Classic = core.ForkClassic
	// OnDemand is the paper's design: last-level page tables are shared
	// at fork time and copied lazily on first write, making fork latency
	// proportional to the (tiny) number of upper-level tables.
	OnDemand = core.ForkOnDemand
)

// ForkOptions exposes the engine tuning knobs: the ablation switches
// of DESIGN.md §5 and the huge-page PMD-table sharing extension of the
// paper's §4 ("Huge Page Support").
type ForkOptions = core.ForkOptions

// ForkOpt is a functional option for Process.Fork, the v1 fork entry
// point:
//
//	child, err := p.Fork(odfork.WithMode(odfork.OnDemand),
//	    odfork.WithWorkers(4))
type ForkOpt = kernel.ForkOpt

// WithMode selects the fork engine for one Fork call. Without it, the
// engine comes from the procfs-style per-process configuration
// (System.SetForkMode), falling back to the system default.
func WithMode(m Mode) ForkOpt { return kernel.WithMode(m) }

// WithWorkers fans the fork's page-table copy out over up to n
// workers. 0 and 1 mean sequential.
func WithWorkers(n int) ForkOpt { return kernel.WithWorkers(n) }

// WithForkOptions applies a full ForkOptions (ablation knobs,
// parallelism thresholds). Later options override its fields.
func WithForkOptions(o ForkOptions) ForkOpt { return kernel.WithForkOptions(o) }

// Snapshotter is the typed snapshot-serving API: it forks a process
// on a timer, on demand, or both, replacing hand-rolled fork loops.
// Start one with Process.StartSnapshotter:
//
//	snap, _ := p.StartSnapshotter(200*time.Millisecond,
//	    odfork.WithSnapshotMode(odfork.OnDemand))
//	defer snap.Stop()
//	...
//	last, _ := snap.LastSnapshot() // per-snapshot fork stats
//
// The handle exposes LastSnapshot and Totals for pause-time telemetry
// and an Epoch seqlock (odd while a fork is in flight) that serving
// layers use to tag requests that overlapped a snapshot fork.
type Snapshotter = kernel.Snapshotter

// SnapshotStats describes one snapshot fork (see Snapshotter).
type SnapshotStats = kernel.SnapshotStats

// SnapshotterTotals aggregates a Snapshotter's lifetime statistics.
type SnapshotterTotals = kernel.SnapshotterTotals

// SnapshotterOpt configures Process.StartSnapshotter.
type SnapshotterOpt = kernel.SnapshotterOpt

// ErrSnapshotterStopped reports a Snapshot call on a stopped
// Snapshotter.
var ErrSnapshotterStopped = kernel.ErrSnapshotterStopped

// WithSnapshotMode pins the fork engine snapshots use. Without it,
// snapshots resolve the engine like a plain Fork call (SetForkMode,
// then the system default).
func WithSnapshotMode(m Mode) SnapshotterOpt { return kernel.WithSnapshotMode(m) }

// WithSnapshotWorkers fans each snapshot fork out over up to n workers.
func WithSnapshotWorkers(n int) SnapshotterOpt { return kernel.WithSnapshotWorkers(n) }

// WithSnapshotChild installs the child-side work run after each
// snapshot fork (serialization, verification); the child exits when fn
// returns. Without it the child exits immediately.
func WithSnapshotChild(fn func(*Process) error) SnapshotterOpt {
	return kernel.WithSnapshotChild(fn)
}

// WithSnapshotNotify calls fn after each snapshot's child work
// completes.
func WithSnapshotNotify(fn func(SnapshotStats)) SnapshotterOpt {
	return kernel.WithSnapshotNotify(fn)
}

// DurableCheckpoint is the handle for a snapshot written to disk with
// Process.CheckpointTo: a crash-safe columnar file that a later
// System.RestoreFrom turns back into a live process, faulting pages in
// from the file on first touch (fork-from-disk). The handle retains
// the frozen in-memory twin so a subsequent CheckpointTo with
// WithCheckpointParent writes only the pages diverged since — an
// incremental checkpoint; call Release when no more children will
// chain to it.
type DurableCheckpoint = kernel.DurableCheckpoint

// CheckpointOption configures one Process.CheckpointTo call.
type CheckpointOption = kernel.CheckpointOption

// WithCheckpointParent makes the snapshot incremental against parent:
// only pages diverged since the parent's capture are written, and
// restore resolves the chain parent-by-parent, validating each link's
// recorded snapshot identity.
func WithCheckpointParent(parent *DurableCheckpoint) CheckpointOption {
	return kernel.WithCheckpointParent(parent)
}

// RestoreOption configures one System.RestoreFrom call.
type RestoreOption = kernel.RestoreOption

// RestoreFrom creates a process from a durable checkpoint written by
// Process.CheckpointTo — possibly by an earlier system instance; this
// is the cold-start path after a daemon restart. No page data is read
// up front: each page faults in from the file on first touch,
// CRC-verified, with transparent retry on transient I/O errors.
// Corruption surfaces from the faulting access as ErrCheckpointCorrupt.
func (s *System) RestoreFrom(path string, opts ...RestoreOption) (*Process, error) {
	return s.k.RestoreFrom(path, opts...)
}

// MetricsSnapshot is the typed telemetry tree returned by
// System.Metrics: per-engine fork latency histograms, fault-path
// counts and latencies, allocator shard and frame statistics, and TLB
// behaviour. See the metrics package for field documentation.
type MetricsSnapshot = metrics.Snapshot

// Process is a simulated task. It exposes the syscall surface the
// paper's workloads use; all memory access goes through the simulated
// MMU, so copy-on-write, protection, and demand paging behave as on a
// real kernel.
type Process = kernel.Process

// PID identifies a process.
type PID = kernel.PID

// File is an in-memory file usable for file-backed mappings.
type File = fs.File

// SegfaultError is returned for irreparable memory accesses.
type SegfaultError = core.SegfaultError

// System is a simulated operating-system instance: physical memory,
// a filesystem, and a process table.
type System struct {
	k *kernel.Kernel
	// failpointsOn gates SetFailpoint: fault injection is a test and
	// chaos-harness facility, armed only after an explicit opt-in.
	failpointsOn atomic.Bool
}

// Option configures a System.
type Option func(*config)

type config struct {
	prof    *profile.Profiler
	defMode Mode
}

// WithProfiling enables the cost-accounting profiler (see the
// Figure 3 experiment); retrieve it with System.Profiler.
func WithProfiling() Option {
	return func(c *config) { c.prof = profile.New() }
}

// WithDefaultMode sets the engine used by plain Fork calls (Classic by
// default).
func WithDefaultMode(m Mode) Option {
	return func(c *config) { c.defMode = m }
}

// NewSystem boots a simulated system.
func NewSystem(opts ...Option) *System {
	cfg := config{defMode: Classic}
	for _, o := range opts {
		o(&cfg)
	}
	kopts := []kernel.Option{kernel.WithDefaultForkMode(cfg.defMode)}
	if cfg.prof != nil {
		kopts = append(kopts, kernel.WithProfiler(cfg.prof))
	}
	return &System{k: kernel.New(kopts...)}
}

// NewProcess creates a process with an empty address space.
func (s *System) NewProcess() *Process { return s.k.NewProcess() }

// SetForkMode installs the procfs-style per-process configuration: the
// process's plain Fork calls transparently use the given engine, with
// no application changes (paper §4, "Flexibility"). Children inherit
// the setting. Prefer Fork(WithMode(...)) when the caller can name the
// engine itself; SetForkMode exists for the paper's no-source-changes
// deployment story.
func (s *System) SetForkMode(pid PID, m Mode) error { return s.k.SetForkMode(pid, m) }

// Metrics returns a snapshot of the system-wide telemetry: fork
// latency per engine, fault counts and latencies, allocator and TLB
// counters. Collection is on by default; see SetMetricsEnabled.
func (s *System) Metrics() MetricsSnapshot { return s.k.MetricsSnapshot() }

// SetMetricsEnabled toggles telemetry collection. Disabling stops
// counting but keeps accumulated values readable.
func (s *System) SetMetricsEnabled(on bool) { s.k.Metrics().SetEnabled(on) }

// TraceSnapshot is a captured flight-recorder timeline: events sorted
// by start time plus a count of events lost to ring-buffer overwrite.
type TraceSnapshot = trace.Snapshot

// TraceEvent is one recorded span or instant on the timeline.
type TraceEvent = trace.Event

// TraceFormat selects a WriteTrace output encoding.
type TraceFormat = trace.Format

// WriteTrace output formats.
const (
	// TraceChrome is Chrome trace-event JSON — load the file in
	// https://ui.perfetto.dev or chrome://tracing.
	TraceChrome = trace.FormatChrome
	// TraceText is the human-readable rendering that /proc/odf/trace
	// serves.
	TraceText = trace.FormatText
)

// SetTraceEnabled switches the flight recorder on or off. Tracing is
// off by default and costs a single atomic load per instrumentation
// point while disabled. Enabling starts a fresh timeline; disabling
// freezes it for TraceSnapshot and WriteTrace. Recording is bounded:
// the ring keeps the most recent events and counts the overwritten
// ones in TraceSnapshot.Dropped.
func (s *System) SetTraceEnabled(on bool) { s.k.SetTraceEnabled(on) }

// TraceEnabled reports whether the flight recorder is recording.
func (s *System) TraceEnabled() bool { return s.k.TraceEnabled() }

// TraceSnapshot captures the recorded timeline.
func (s *System) TraceSnapshot() TraceSnapshot { return s.k.TraceSnapshot() }

// WriteTrace renders the recorded timeline to w in the given format.
func (s *System) WriteTrace(w io.Writer, f TraceFormat) error { return s.k.WriteTrace(w, f) }

// Procfs reads a file of the simulated procfs namespace:
// /proc/odf (a listing of the odf endpoints), /proc/odf/checkpoints,
// /proc/odf/failpoints, /proc/odf/metrics, /proc/odf/profile,
// /proc/odf/slo, /proc/odf/trace, /proc/odf/vmstat, /proc/<pid>/maps and
// /proc/<pid>/status. Unknown paths fail with an error wrapping
// fs.ErrNotExist.
func (s *System) Procfs(path string) (string, error) { return s.k.Procfs(path) }

// SetFrameLimit caps the simulated physical memory at the given number
// of 4 KiB frames (0 removes the cap). With swap disabled, allocation
// beyond the cap fails with an error wrapping ErrNoMem. With swap
// enabled (SetSwapEnabled), the allocator first stalls in direct
// reclaim, evicting cold pages to the swap store, and only returns
// ErrNoMem if reclaim cannot free enough frames.
func (s *System) SetFrameLimit(frames int64) { s.k.Allocator().SetLimit(frames) }

// SetSwapEnabled turns the memory reclaim subsystem on or off. When
// on, a kswapd-style background goroutine keeps free frames above a
// low watermark by evicting cold pages (LRU order, second-chance
// aging) to the swap store, and allocations that still hit the frame
// limit perform synchronous direct reclaim before failing. Off by
// default; turning it off stops kswapd and drops LRU tracking, while
// already-swapped pages keep faulting back in transparently.
func (s *System) SetSwapEnabled(on bool) { s.k.SetSwapEnabled(on) }

// SwapEnabled reports whether the reclaim subsystem is active.
func (s *System) SwapEnabled() bool { return s.k.SwapEnabled() }

// SetSwapWatermarks pins kswapd's watermarks in frames: below low free
// frames kswapd wakes and reclaims until high are free. (0, 0) returns
// to watermarks derived automatically from the frame limit.
func (s *System) SetSwapWatermarks(low, high int64) error {
	return s.k.SetSwapWatermarks(low, high)
}

// SetSwapStoreFile backs swap with a file at path instead of the
// default in-memory compressed store — the simulated swapon. Only
// legal while swap is disabled with no pages swapped out.
func (s *System) SetSwapStoreFile(path string) error { return s.k.SetSwapStoreFile(path) }

// SwapDegraded reports whether swap has latched into degraded mode
// after a persistent store I/O failure: eviction has stopped, faults
// that need a failing slot surface ErrSwapIO, and re-enabling swap
// (SetSwapEnabled) clears the latch.
func (s *System) SwapDegraded() bool { return s.k.Reclaim().Degraded() }

// SetFailpointsEnabled opts the system into deterministic fault
// injection. This is a test and chaos-harness facility, never a
// production switch: until it is called with true, SetFailpoint
// refuses to arm anything, and disabling again disarms every point.
// Disabled failpoints cost one atomic load on the paths they guard.
func (s *System) SetFailpointsEnabled(on bool) {
	s.failpointsOn.Store(on)
	if !on {
		s.k.Failpoints().Reset()
	}
}

// SetFailpoint arms or disarms one named failpoint (the catalog is
// served at /proc/odf/failpoints). Spec is "off", "once", "every:N",
// or "prob:P" with 0 < P <= 1. Requires SetFailpointsEnabled(true).
func (s *System) SetFailpoint(name, spec string) error {
	if !s.failpointsOn.Load() {
		return errors.New("odfork: failpoints are disabled; call SetFailpointsEnabled(true) first (test-only facility)")
	}
	return s.k.SetFailpoint(name, spec)
}

// SetFailpointSeed reseeds the injection PRNG so probabilistic
// failpoint schedules replay identically across runs.
func (s *System) SetFailpointSeed(seed uint64) { s.k.SetFailpointSeed(seed) }

// CheckInvariants audits the whole system's memory accounting: table
// share counters, frame reference counts, swap-slot reference counts,
// and the reclaim subsystem's rmap/LRU bookkeeping. Processes must be
// quiescent. Intended for tests and the chaos harness.
func (s *System) CheckInvariants() error { return s.k.CheckInvariants() }

// CreateFile creates an in-memory file for file-backed mappings.
func (s *System) CreateFile(name string) *File { return s.k.FS().Create(name) }

// OpenFile opens an existing in-memory file.
func (s *System) OpenFile(name string) (*File, error) { return s.k.FS().Open(name) }

// Profiler returns the cost profiler, or nil when profiling is off.
func (s *System) Profiler() *profile.Profiler { return s.k.Profiler() }

// LiveProcesses returns the number of processes that have not exited.
func (s *System) LiveProcesses() int { return s.k.NumProcesses() }

// AllocatedFrames returns the number of live simulated physical frames
// (data pages and page tables) — useful for leak checking and for
// observing the memory the fork engines save.
func (s *System) AllocatedFrames() int64 { return s.k.Allocator().Allocated() }

// Kernel exposes the underlying kernel.
//
// Deprecated: the escape hatch leaks the internal kernel surface.
// Use the purpose-built accessors instead: Metrics for telemetry,
// Procfs for procfs-style reads, Profiler, LiveProcesses,
// AllocatedFrames, and SetFrameLimit for the remaining kernel state.
func (s *System) Kernel() *kernel.Kernel { return s.k }
