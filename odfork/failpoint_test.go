package odfork_test

import (
	"errors"
	"strings"
	"testing"

	"repro/odfork"
)

// TestFailpointGuard pins the test-only gate on the v1 injection
// surface: SetFailpoint refuses until SetFailpointsEnabled(true), and
// disabling disarms everything and zeroes the counters.
func TestFailpointGuard(t *testing.T) {
	sys := odfork.NewSystem()
	if err := sys.SetFailpoint("phys.alloc", "once"); err == nil {
		t.Fatal("SetFailpoint succeeded while failpoints are disabled")
	}
	sys.SetFailpointsEnabled(true)
	if err := sys.SetFailpoint("phys.alloc", "prob:0.5"); err != nil {
		t.Fatalf("SetFailpoint after enable: %v", err)
	}
	if err := sys.SetFailpoint("no.such.point", "once"); err == nil {
		t.Fatal("unknown point accepted")
	}
	out, err := sys.Procfs("/proc/odf/failpoints")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "armed=1") {
		t.Fatalf("armed point not visible in /proc/odf/failpoints:\n%s", out)
	}

	// Disabling is a full reset: nothing armed, nothing counted, and
	// the guard is back.
	sys.SetFailpointsEnabled(false)
	out, _ = sys.Procfs("/proc/odf/failpoints")
	if !strings.Contains(out, "armed=0") || !strings.Contains(out, "injected=0") {
		t.Fatalf("disable did not reset the registry:\n%s", out)
	}
	if err := sys.SetFailpoint("phys.alloc", "once"); err == nil {
		t.Fatal("SetFailpoint succeeded after re-disable")
	}
}

// degradeSystem builds a system under memory pressure with every
// swap-store write failing, and pushes it until swap degrades.
func degradeSystem(t *testing.T) (*odfork.System, *odfork.Process, odfork.Addr) {
	t.Helper()
	sys := odfork.NewSystem()
	sys.SetSwapEnabled(true)
	p := sys.NewProcess()
	const pages = 256
	base, err := p.Mmap(pages*odfork.PageSize, odfork.ProtRead|odfork.ProtWrite, odfork.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFrameLimit(sys.AllocatedFrames() + pages/4)
	sys.SetFailpointsEnabled(true)
	if err := sys.SetFailpoint("swap.write", "every:1"); err != nil {
		t.Fatal(err)
	}
	// Writing past the frame limit forces eviction; with the store
	// refusing every write the retries exhaust and the subsystem
	// latches degraded, surfacing ErrNoMem instead of losing data.
	var opErr error
	for i := 0; i < pages && opErr == nil; i++ {
		opErr = p.StoreByte(base+odfork.Addr(uint64(i)*odfork.PageSize), byte(i))
	}
	if opErr == nil {
		t.Fatal("writes kept succeeding past the limit with swap I/O dead")
	}
	if !errors.Is(opErr, odfork.ErrNoMem) {
		t.Fatalf("pressure error = %v, want ErrNoMem", opErr)
	}
	return sys, p, base
}

// TestSwapDegradeOnWriteFailure: persistent swap-out I/O failure must
// degrade swap (gauge + metric + vmstat), never corrupt memory, and a
// swap re-enable ("device replaced") must clear the latch.
func TestSwapDegradeOnWriteFailure(t *testing.T) {
	sys, p, base := degradeSystem(t)
	defer sys.SetSwapEnabled(false)

	if !sys.SwapDegraded() {
		t.Fatal("SwapDegraded() = false after exhausted swap-out retries")
	}
	out, _ := sys.Procfs("/proc/odf/vmstat")
	if !strings.Contains(out, "swap_degraded 1") {
		t.Errorf("vmstat does not show swap_degraded 1:\n%s", out)
	}
	snap := sys.Metrics()
	if snap.Robust.SwapDegrades != 1 {
		t.Errorf("SwapDegrades = %d, want exactly 1 (one-shot latch)", snap.Robust.SwapDegrades)
	}
	if snap.Robust.SwapWriteErrors == 0 || snap.Robust.SwapWriteRetries == 0 {
		t.Errorf("write errors/retries not counted: %+v", snap.Robust)
	}

	// Already-resident memory is intact and writable within the budget.
	if err := p.StoreByte(base, 0xEE); err != nil {
		t.Fatalf("resident write after degrade: %v", err)
	}
	if b, err := p.LoadByte(base); err != nil || b != 0xEE {
		t.Fatalf("resident read after degrade = %#x, %v", b, err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The operator replaces the device: disarm the failpoint and cycle
	// swap. The latch clears, and a fresh workload (cycling swap drops
	// LRU tracking of pre-existing pages, so recovery is demonstrated
	// on a new process) is absorbed under the same frame budget.
	if err := sys.SetFailpoint("swap.write", "off"); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	sys.SetSwapEnabled(false)
	sys.SetSwapEnabled(true)
	if sys.SwapDegraded() {
		t.Fatal("degraded latch survived a swap re-enable")
	}
	p2 := sys.NewProcess()
	defer p2.Exit()
	base2, err := p2.Mmap(256*odfork.PageSize, odfork.ProtRead|odfork.ProtWrite, odfork.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		if err := p2.StoreByte(base2+odfork.Addr(uint64(i)*odfork.PageSize), byte(i)); err != nil {
			t.Fatalf("write still failing after swap recovery: %v", err)
		}
	}
}

// TestSwapCorruptSurfaces: a swap-out whose checksum was poisoned (the
// swap.corrupt failpoint models a device that mangled an acknowledged
// write) must surface as ErrSwapCorrupt on swap-in — loud, attributed
// data loss instead of silently handing back garbage.
func TestSwapCorruptSurfaces(t *testing.T) {
	sys := odfork.NewSystem()
	sys.SetSwapEnabled(true)
	defer sys.SetSwapEnabled(false)
	p := sys.NewProcess()
	defer p.Exit()
	const pages = 256
	base, err := p.Mmap(pages*odfork.PageSize, odfork.ProtRead|odfork.ProtWrite, odfork.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	// Populate half the arena, cap the budget there, then write the
	// other half: every new frame forces an eviction of a cold page,
	// and the first swap-out after arming records the poisoned CRC.
	for i := 0; i < pages/2; i++ {
		if err := p.StoreByte(base+odfork.Addr(uint64(i)*odfork.PageSize), byte(i+1)); err != nil {
			t.Fatalf("populate page %d: %v", i, err)
		}
	}
	sys.SetFrameLimit(sys.AllocatedFrames())
	sys.SetFailpointsEnabled(true)
	if err := sys.SetFailpoint("swap.corrupt", "once"); err != nil {
		t.Fatal(err)
	}
	poisoned := -1
	for i := pages / 2; i < pages; i++ {
		err := p.StoreByte(base+odfork.Addr(uint64(i)*odfork.PageSize), byte(i+1))
		if err == nil {
			continue
		}
		// A write can land on a page whose own slot was the poisoned
		// one (fault-in precedes the store); that page stays lost.
		if !errors.Is(err, odfork.ErrSwapCorrupt) || poisoned >= 0 {
			t.Fatalf("pressure write page %d: %v (poisoned=%d)", i, err, poisoned)
		}
		poisoned = i
	}

	// Sweep every page back in: exactly the poisoned slot must report
	// ErrSwapCorrupt; everything else round-trips.
	for i := 0; i < pages; i++ {
		b, err := p.LoadByte(base + odfork.Addr(uint64(i)*odfork.PageSize))
		if err != nil {
			if !errors.Is(err, odfork.ErrSwapCorrupt) {
				t.Fatalf("page %d: err = %v, want ErrSwapCorrupt", i, err)
			}
			if poisoned >= 0 && poisoned != i {
				t.Fatalf("pages %d and %d both corrupt; failpoint fired once", poisoned, i)
			}
			poisoned = i
			continue
		}
		if poisoned == i {
			t.Fatalf("page %d read %#x after reporting corruption", i, b)
		}
		if b != byte(i+1) {
			t.Fatalf("page %d read %#x, want %#x", i, b, byte(i+1))
		}
	}
	if poisoned < 0 {
		t.Fatal("no page surfaced ErrSwapCorrupt")
	}
	if snap := sys.Metrics(); snap.Robust.SwapCorruptions == 0 {
		t.Error("SwapCorruptions not counted")
	}
	if sys.SwapDegraded() {
		t.Error("checksum mismatch degraded swap; only I/O exhaustion should")
	}
}
