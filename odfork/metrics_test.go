package odfork_test

import (
	"errors"
	"io/fs"
	"strconv"
	"strings"
	"testing"

	"repro/odfork"
)

// TestMetricsQuickstart drives the package-doc flow and checks the
// acceptance contract of the telemetry layer: non-zero fork latency,
// fault counts, and shard hits via Metrics(), and the same numbers in
// the /proc/odf/metrics rendering.
func TestMetricsQuickstart(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()
	const size = 32 * odfork.MiB
	buf, err := p.Mmap(size, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	child, err := p.Fork(odfork.WithMode(odfork.OnDemand))
	if err != nil {
		t.Fatal(err)
	}
	if err := child.WriteAt([]byte("hello"), buf); err != nil {
		t.Fatal(err)
	}

	snap := sys.Metrics()
	if f := snap.Fork.OnDemand().Forks; f != 1 {
		t.Errorf("ondemand forks = %d, want 1", f)
	}
	if lat := snap.Fork.OnDemand().Latency; lat.Count == 0 || lat.SumNS == 0 {
		t.Errorf("fork latency histogram empty: %+v", lat)
	}
	if snap.Fault.WriteFaults == 0 {
		t.Error("no write faults recorded after child write")
	}
	if snap.Alloc.ShardHits == 0 {
		t.Error("no allocator shard hits recorded after populate")
	}

	// The procfs rendering must report the same numbers.
	text, err := sys.Procfs("/proc/odf/metrics")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{
		"fork.ondemand.forks":         snap.Fork.OnDemand().Forks,
		"fork.tables_shared":          snap.Fork.TablesShared,
		"fault.write.count":           snap.Fault.WriteFaults,
		"fault.table_splits":          snap.Fault.TableSplits,
		"alloc.shard_hits":            snap.Alloc.ShardHits,
		"fork.ondemand.latency.count": snap.Fork.OnDemand().Latency.Count,
	}
	got := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed metrics line %q", line)
		}
		if _, wanted := want[name]; !wanted {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("non-integer value in %q: %v", line, err)
		}
		got[name] = n
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("procfs %s = %d, snapshot says %d", name, got[name], w)
		}
	}

	// Deltas isolate one operation's cost.
	before := sys.Metrics()
	if err := child.WriteAt([]byte("x"), buf+odfork.Addr(4*odfork.MiB)); err != nil {
		t.Fatal(err)
	}
	d := sys.Metrics().Sub(before)
	if d.Fault.TableSplits != 1 {
		t.Errorf("first write to a fresh 2 MiB region split %d tables, want 1", d.Fault.TableSplits)
	}

	child.Exit()
	p.Exit()
	if sys.LiveProcesses() != 0 || sys.AllocatedFrames() != 0 {
		t.Fatalf("leak: %d processes, %d frames", sys.LiveProcesses(), sys.AllocatedFrames())
	}
}

// TestSetMetricsEnabled checks the public collection toggle.
func TestSetMetricsEnabled(t *testing.T) {
	sys := odfork.NewSystem()
	sys.SetMetricsEnabled(false)
	p := sys.NewProcess()
	defer p.Exit()
	if _, err := p.Fork(odfork.WithMode(odfork.OnDemand)); err != nil {
		t.Fatal(err)
	}
	if f := sys.Metrics().Fork.OnDemand().Forks; f != 0 {
		t.Errorf("disabled collection still counted %d forks", f)
	}
	sys.SetMetricsEnabled(true)
	if _, err := p.Fork(odfork.WithMode(odfork.OnDemand)); err != nil {
		t.Fatal(err)
	}
	if f := sys.Metrics().Fork.OnDemand().Forks; f != 1 {
		t.Errorf("re-enabled collection counted %d forks, want 1", f)
	}
}

// TestSentinelErrors checks every v1 sentinel classifies its failure
// through errors.Is on the public surface.
func TestSentinelErrors(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()

	// ErrBadAddr: malformed mmap arguments and unmapped accesses.
	if _, err := p.Mmap(0, odfork.ProtRead, odfork.MapPrivate); !errors.Is(err, odfork.ErrBadAddr) {
		t.Errorf("zero-size mmap = %v, want ErrBadAddr", err)
	}
	if err := p.WriteAt([]byte("x"), odfork.Addr(0xdead000)); !errors.Is(err, odfork.ErrBadAddr) {
		t.Errorf("write to unmapped address = %v, want ErrBadAddr", err)
	}

	// ErrProtViolation: write to a read-only mapping, via the typed
	// segfault error.
	ro, err := p.Mmap(odfork.PageSize, odfork.ProtRead, odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	err = p.WriteAt([]byte("x"), ro)
	if !errors.Is(err, odfork.ErrProtViolation) {
		t.Errorf("write to read-only mapping = %v, want ErrProtViolation", err)
	}
	var seg *odfork.SegfaultError
	if !errors.As(err, &seg) {
		t.Errorf("protection violation not a *SegfaultError: %v", err)
	}

	// ErrNoMem: allocation beyond the frame limit.
	sys.SetFrameLimit(sys.AllocatedFrames() + 8)
	_, err = p.Mmap(64*odfork.MiB, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if !errors.Is(err, odfork.ErrNoMem) {
		t.Errorf("mmap past frame limit = %v, want ErrNoMem", err)
	}
	sys.SetFrameLimit(0)

	// ErrExited: operations on a dead process.
	pid := p.PID()
	p.Exit()
	if _, err := p.Fork(odfork.WithMode(odfork.Classic)); !errors.Is(err, odfork.ErrExited) {
		t.Errorf("fork of exited process = %v, want ErrExited", err)
	}
	if err := sys.SetForkMode(pid, odfork.OnDemand); !errors.Is(err, odfork.ErrExited) {
		t.Errorf("SetForkMode on exited pid = %v, want ErrExited", err)
	}
}

// TestProcfsNotExist checks unknown procfs paths fail like a missing
// file.
func TestProcfsNotExist(t *testing.T) {
	sys := odfork.NewSystem()
	for _, path := range []string{"/proc/odf/nope", "/proc/42/maps", "/etc/passwd"} {
		if _, err := sys.Procfs(path); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("Procfs(%q) = %v, want fs.ErrNotExist", path, err)
		}
	}
	// The profile file only exists when profiling is on.
	if _, err := sys.Procfs("/proc/odf/profile"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("profile without profiling = %v, want fs.ErrNotExist", err)
	}
	psys := odfork.NewSystem(odfork.WithProfiling())
	if _, err := psys.Procfs("/proc/odf/profile"); err != nil {
		t.Errorf("profile with profiling = %v, want nil", err)
	}
}
