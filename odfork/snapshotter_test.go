package odfork_test

import (
	"errors"
	"testing"
	"time"

	"repro/odfork"
)

// TestSnapshotterPublicSurface exercises the v1 snapshot-serving API
// end to end: periodic snapshots of a populated process, typed stats,
// and clean shutdown without leaked children.
func TestSnapshotterPublicSurface(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(8*odfork.MiB, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}

	var seen []odfork.SnapshotStats
	done := make(chan struct{}, 16)
	snap, err := p.StartSnapshotter(time.Millisecond,
		odfork.WithSnapshotMode(odfork.OnDemand),
		odfork.WithSnapshotChild(func(c *odfork.Process) error {
			// The child sees the snapshot's view and may scribble freely.
			return c.WriteAt([]byte("child-private"), base)
		}),
		odfork.WithSnapshotNotify(func(st odfork.SnapshotStats) {
			seen = append(seen, st)
			done <- struct{}{}
		}))
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.After(5 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("timer snapshots did not fire")
		}
	}
	snap.Stop()

	if snap.Snapshots() < 3 {
		t.Fatalf("only %d snapshots", snap.Snapshots())
	}
	last, ok := snap.LastSnapshot()
	if !ok || last.Mode != odfork.OnDemand || last.ForkLatency <= 0 {
		t.Errorf("LastSnapshot = %+v ok=%v", last, ok)
	}
	tot := snap.Totals()
	if tot.Snapshots != snap.Snapshots() || tot.ForkMean <= 0 || tot.ChildErrs != 0 {
		t.Errorf("totals: %+v", tot)
	}
	for _, st := range seen {
		if st.Err != nil {
			t.Errorf("snapshot %d child err: %v", st.Seq, st.Err)
		}
	}
	// Parent memory untouched by child scribbles.
	var b [1]byte
	if err := p.ReadAt(b[:], base); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Errorf("parent byte = %#x after child writes", b[0])
	}
	if n := sys.LiveProcesses(); n != 1 {
		t.Errorf("leaked snapshot children: %d live", n)
	}
	if _, err := snap.Snapshot(); !errors.Is(err, odfork.ErrSnapshotterStopped) {
		t.Errorf("Snapshot after Stop = %v", err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Errorf("invariants after snapshotting: %v", err)
	}
}
