package odfork

import (
	"time"

	"repro/internal/tenant"
)

// Multi-tenancy. A Tenant is an isolation domain with a frame quota:
// every frame its processes allocate is charged to its account, reclaim
// prefers over-quota tenants' pages as eviction victims, and forks by
// over-quota (or memory-pressured) tenants queue in a bounded admission
// queue instead of failing with ErrNoMem. See /proc/odf/tenants for the
// live accounting.

// Tenant is one isolation domain: quota, usage accounting, and the
// admission-controller state for its forks.
type Tenant = tenant.Tenant

// TenantStats is a point-in-time copy of one tenant's accounting.
type TenantStats = tenant.Stats

// ErrQuotaExceeded reports a fork refused by tenant admission control:
// the tenant's queue was full, or the fork waited out the admission
// timeout while the tenant stayed over quota. Distinct from ErrNoMem —
// the machine has memory, this tenant has used its share.
var ErrQuotaExceeded = tenant.ErrQuotaExceeded

// NewTenant registers a tenant with a frame quota (0 = unlimited).
// Names must be unique among live tenants.
func (s *System) NewTenant(name string, quotaFrames int64) (*Tenant, error) {
	return s.k.Tenants().Create(name, quotaFrames)
}

// DestroyTenant unregisters a tenant, admitting any forks still queued
// on it. Its processes keep running; frames still charged to it uncharge
// harmlessly as they exit.
func (s *System) DestroyTenant(t *Tenant) { s.k.Tenants().Destroy(t) }

// NewTenantProcess creates a process owned by tenant t: its lineage's
// frames are charged to t and its forks pass admission control. A nil t
// behaves exactly like NewProcess.
func (s *System) NewTenantProcess(t *Tenant) *Process {
	return s.k.NewTenantProcess(t)
}

// TenantStats returns every live tenant's accounting in creation order.
func (s *System) TenantStats() []TenantStats { return s.k.Tenants().StatsAll() }

// SetAdmitTimeout bounds how long a queued fork waits for its tenant to
// come back under quota before failing with ErrQuotaExceeded.
func (s *System) SetAdmitTimeout(d time.Duration) { s.k.Tenants().SetAdmitTimeout(d) }

// SetAdmissionQueueBound caps each tenant's queued forks (minimum 1);
// forks beyond the cap fail immediately with ErrQuotaExceeded.
func (s *System) SetAdmissionQueueBound(n int) { s.k.Tenants().SetQueueBound(n) }

// SetFailpointScope restricts fault injection to sites doing tenant
// t's work: allocations against t's account and fork/fault stages of
// t's address spaces. Unattributed sites (shared machinery such as
// swap I/O) never fire while a scope is set. A nil t clears the scope
// so every armed site fires again. Blast-radius testing uses this to
// prove an injected storm in one tenant cannot corrupt another.
func (s *System) SetFailpointScope(t *Tenant) {
	if t == nil {
		s.k.Failpoints().SetScope(0)
		return
	}
	s.k.Failpoints().SetScope(t.TenantID())
}
