package odfork_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/odfork"
)

// TestErrNoMemSentinel pins the v1 error contract through the public
// facade: with swap off, exceeding the frame limit returns an error
// that errors.Is-matches odfork.ErrNoMem, and raising the limit
// repairs the process.
func TestErrNoMemSentinel(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(64*odfork.PageSize, odfork.ProtRead|odfork.ProtWrite, odfork.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFrameLimit(sys.AllocatedFrames() + 4)
	var oom error
	for i := 0; i < 64 && oom == nil; i++ {
		if err := p.StoreByte(base+odfork.Addr(uint64(i)*odfork.PageSize), 1); err != nil {
			oom = err
		}
	}
	if oom == nil {
		t.Fatal("no error under frame limit with swap off")
	}
	if !errors.Is(oom, odfork.ErrNoMem) {
		t.Fatalf("errors.Is(err, ErrNoMem) = false for %v", oom)
	}
	sys.SetFrameLimit(0)
	if err := p.StoreByte(base, 1); err != nil {
		t.Fatalf("write after limit lifted: %v", err)
	}
}

// TestServerlessUnderPressure is the headline acceptance scenario: a
// serverless-style warm runtime whose footprint is double the frame
// limit. With swap on, initialization, forked invocations, and
// verification all complete with zero ErrNoMem, every byte survives
// the swap round-trip, and the reclaimer has actually run.
func TestServerlessUnderPressure(t *testing.T) {
	sys := odfork.NewSystem()
	sys.SetSwapEnabled(true)
	defer sys.SetSwapEnabled(false)

	const (
		runtimePages = 512 // 2 MiB warm runtime state
		pageSz       = odfork.PageSize
	)
	// Frame limit at 50% of the workload footprint (plus table overhead).
	sys.SetFrameLimit(sys.AllocatedFrames() + runtimePages/2 + 32)
	defer sys.SetFrameLimit(0)

	runtime := sys.NewProcess()
	defer runtime.Exit()
	base, err := runtime.Mmap(runtimePages*pageSz, odfork.ProtRead|odfork.ProtWrite, odfork.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	page := func(i int) []byte {
		b := make([]byte, pageSz)
		for j := range b {
			b[j] = byte(i*37 + j)
		}
		return b
	}
	for i := 0; i < runtimePages; i++ {
		if err := runtime.WriteAt(page(i), base+odfork.Addr(uint64(i)*pageSz)); err != nil {
			t.Fatalf("runtime init page %d: %v", i, err)
		}
	}

	// Warm-start invocations off the over-committed runtime.
	for inv := 0; inv < 4; inv++ {
		child, err := runtime.Fork(odfork.WithMode(odfork.OnDemand))
		if err != nil {
			t.Fatalf("invocation %d fork: %v", inv, err)
		}
		// Each invocation reads scattered runtime state (swapping cold
		// pages back in) and writes private scratch.
		buf := make([]byte, pageSz)
		for i := inv; i < runtimePages; i += 17 {
			if err := child.ReadAt(buf, base+odfork.Addr(uint64(i)*pageSz)); err != nil {
				t.Fatalf("invocation %d read page %d: %v", inv, i, err)
			}
			if !bytes.Equal(buf, page(i)) {
				t.Fatalf("invocation %d: page %d corrupted by swap round-trip", inv, i)
			}
		}
		if err := child.WriteAt([]byte("scratch"), base+odfork.Addr(uint64(inv)*pageSz)); err != nil {
			t.Fatalf("invocation %d scratch write: %v", inv, err)
		}
		child.Exit()
		child.Wait()
	}

	// The runtime's full state is intact, byte for byte.
	buf := make([]byte, pageSz)
	for i := 0; i < runtimePages; i++ {
		if err := runtime.ReadAt(buf, base+odfork.Addr(uint64(i)*pageSz)); err != nil {
			t.Fatalf("verify page %d: %v", i, err)
		}
		if !bytes.Equal(buf, page(i)) {
			t.Fatalf("runtime page %d corrupted", i)
		}
	}

	// The pressure was real: pages were swapped out and back.
	vmstat, err := sys.Procfs("/proc/odf/vmstat")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"pswpout ", "pswpin "} {
		if !nonzeroLine(vmstat, want) {
			t.Errorf("vmstat shows no %s traffic:\n%s", want, vmstat)
		}
	}
}

// nonzeroLine reports whether vmstat has line `<prefix><nonzero>`.
func nonzeroLine(vmstat, prefix string) bool {
	for len(vmstat) > 0 {
		line := vmstat
		if i := bytes.IndexByte([]byte(vmstat), '\n'); i >= 0 {
			line, vmstat = vmstat[:i], vmstat[i+1:]
		} else {
			vmstat = ""
		}
		if len(line) > len(prefix) && line[:len(prefix)] == prefix {
			return line[len(prefix):] != "0"
		}
	}
	return false
}

// TestSwapOffEquivalence: enabling and then disabling swap returns the
// system to the fail-fast behavior, and a system that never enables
// swap behaves identically to one without the subsystem.
func TestSwapOffEquivalence(t *testing.T) {
	sys := odfork.NewSystem()
	if sys.SwapEnabled() {
		t.Fatal("swap enabled by default")
	}
	sys.SetSwapEnabled(true)
	sys.SetSwapEnabled(false)

	p := sys.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(32*odfork.PageSize, odfork.ProtRead|odfork.ProtWrite, odfork.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFrameLimit(sys.AllocatedFrames() + 2)
	defer sys.SetFrameLimit(0)
	var oom bool
	for i := 0; i < 32; i++ {
		if err := p.StoreByte(base+odfork.Addr(uint64(i)*odfork.PageSize), 1); err != nil {
			if !errors.Is(err, odfork.ErrNoMem) {
				t.Fatalf("err = %v, want ErrNoMem", err)
			}
			oom = true
			break
		}
	}
	if !oom {
		t.Fatal("frame limit not enforced after swap disable")
	}
}

// TestSwapStoreFile exercises the swapon-style file backend end to end.
func TestSwapStoreFile(t *testing.T) {
	sys := odfork.NewSystem()
	if err := sys.SetSwapStoreFile(t.TempDir() + "/swap"); err != nil {
		t.Fatal(err)
	}
	sys.SetSwapEnabled(true)
	defer sys.SetSwapEnabled(false)

	p := sys.NewProcess()
	defer p.Exit()
	const pages = 128
	sys.SetFrameLimit(sys.AllocatedFrames() + pages/2 + 16)
	defer sys.SetFrameLimit(0)
	base, err := p.Mmap(pages*odfork.PageSize, odfork.ProtRead|odfork.ProtWrite, odfork.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	pattern := bytes.Repeat([]byte{0x5C}, int(odfork.PageSize))
	for i := 0; i < pages; i++ {
		if err := p.WriteAt(pattern, base+odfork.Addr(uint64(i)*odfork.PageSize)); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	got := make([]byte, odfork.PageSize)
	for i := 0; i < pages; i++ {
		if err := p.ReadAt(got, base+odfork.Addr(uint64(i)*odfork.PageSize)); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if !bytes.Equal(got, pattern) {
			t.Fatalf("page %d corrupted through file-backed swap", i)
		}
	}
}
