package odfork_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/odfork"
)

// TestTraceFacade exercises the v1 tracing surface end to end: enable,
// fork + CoW write, snapshot, both export formats, the procfs routes,
// and the disable/re-enable reset contract.
func TestTraceFacade(t *testing.T) {
	sys := odfork.NewSystem()
	if sys.TraceEnabled() {
		t.Fatal("tracing on by default")
	}
	sys.SetTraceEnabled(true)
	p := sys.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(4*odfork.MiB, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Fork(odfork.WithMode(odfork.OnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Exit()
	if err := c.StoreByte(base, 7); err != nil {
		t.Fatal(err)
	}
	sys.SetTraceEnabled(false)

	snap := sys.TraceSnapshot()
	if len(snap.Events) == 0 {
		t.Fatal("no events recorded")
	}
	var hasFork bool
	for _, e := range snap.Events {
		if e.Name() == "fork" {
			hasFork = true
		}
	}
	if !hasFork {
		t.Errorf("no fork span in %d events", len(snap.Events))
	}

	var chrome, text bytes.Buffer
	if err := sys.WriteTrace(&chrome, odfork.TraceChrome); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(chrome.Bytes(), []byte(`"traceEvents"`)) {
		t.Error("chrome export missing traceEvents envelope")
	}
	if err := sys.WriteTrace(&text, odfork.TraceText); err != nil {
		t.Fatal(err)
	}
	proc, err := sys.Procfs("/proc/odf/trace")
	if err != nil {
		t.Fatal(err)
	}
	if proc != text.String() {
		t.Error("/proc/odf/trace differs from WriteTrace(TraceText)")
	}
	listing, err := sys.Procfs("/proc/odf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(listing, "trace\n") {
		t.Errorf("/proc/odf listing missing trace:\n%s", listing)
	}

	// Re-enabling starts fresh.
	sys.SetTraceEnabled(true)
	defer sys.SetTraceEnabled(false)
	if s := sys.TraceSnapshot(); len(s.Events) != 0 {
		t.Errorf("re-enable kept %d stale events", len(s.Events))
	}
}
