package odfork_test

import (
	"bytes"
	"testing"
	"time"

	"repro/odfork"
)

func TestQuickstartFlow(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()
	buf, err := p.Mmap(8*odfork.MiB, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("public api")
	if err := p.WriteAt(msg, buf); err != nil {
		t.Fatal(err)
	}

	child, err := p.Fork(odfork.WithMode(odfork.OnDemand))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := child.ReadAt(got, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("child read %q", got)
	}
	if err := child.StoreByte(buf, 'X'); err != nil {
		t.Fatal(err)
	}
	if b, _ := p.LoadByte(buf); b != 'p' {
		t.Error("COW violated through public API")
	}
	child.Exit()
	p.Exit()
	if n := sys.AllocatedFrames(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
	if sys.LiveProcesses() != 0 {
		t.Error("processes leaked")
	}
}

func TestOnDemandIsFast(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(64*odfork.MiB, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate); err != nil {
		t.Fatal(err)
	}
	measure := func(m odfork.Mode) time.Duration {
		best := time.Hour
		for i := 0; i < 5; i++ {
			t0 := time.Now()
			c, err := p.Fork(odfork.WithMode(m))
			d := time.Since(t0)
			if err != nil {
				t.Fatal(err)
			}
			c.Exit()
			if d < best {
				best = d
			}
		}
		return best
	}
	classic := measure(odfork.Classic)
	odf := measure(odfork.OnDemand)
	if odf >= classic {
		t.Errorf("OnDemand (%v) not faster than Classic (%v)", odf, classic)
	}
}

func TestDefaultModeOptionAndProcfs(t *testing.T) {
	sys := odfork.NewSystem(odfork.WithProfiling(), odfork.WithDefaultMode(odfork.OnDemand))
	if sys.Profiler() == nil {
		t.Fatal("profiler missing")
	}
	p := sys.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(4*odfork.MiB, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate); err != nil {
		t.Fatal(err)
	}
	c, err := p.Fork() // default mode: OnDemand
	if err != nil {
		t.Fatal(err)
	}
	c.Exit()
	if err := sys.SetForkMode(p.PID(), odfork.Classic); err != nil {
		t.Fatal(err)
	}
	c2, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	c2.Exit()
}

func TestFileMappingPublicAPI(t *testing.T) {
	sys := odfork.NewSystem()
	f := sys.CreateFile("data.bin")
	f.WriteAt([]byte("file contents"), 0)
	if _, err := sys.OpenFile("data.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OpenFile("nope"); err == nil {
		t.Error("OpenFile(nope) succeeded")
	}
	p := sys.NewProcess()
	defer p.Exit()
	v, err := p.MmapFile(odfork.PageSize, odfork.ProtRead, odfork.MapPrivate, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 13)
	if err := p.ReadAt(got, v); err != nil {
		t.Fatal(err)
	}
	if string(got) != "file contents" {
		t.Errorf("read %q", got)
	}
}

func TestSegfaultTyped(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()
	defer p.Exit()
	err := p.StoreByte(0x1000, 1)
	if err == nil {
		t.Fatal("unmapped write succeeded")
	}
	if _, ok := err.(*odfork.SegfaultError); !ok {
		t.Errorf("error type %T", err)
	}
}

func TestCheckpointAndProcfsViaPublicAPI(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(4*odfork.MiB, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(base, 0xAA); err != nil {
		t.Fatal(err)
	}
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Release()
	p.StoreByte(base, 0xBB)
	s, err := cp.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Exit()
	if b, _ := s.LoadByte(base); b != 0xAA {
		t.Errorf("spawn sees %#x", b)
	}
	if st := p.Status(); st.VmSizeKiB != 4*1024 {
		t.Errorf("VmSize = %d", st.VmSizeKiB)
	}
	if p.Maps() == "" {
		t.Error("empty maps")
	}
}

func TestHugeShareOptionViaPublicAPI(t *testing.T) {
	sys := odfork.NewSystem()
	p := sys.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(2*odfork.HugePageSize, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapHuge|odfork.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(base, 7); err != nil {
		t.Fatal(err)
	}
	c, err := p.Fork(odfork.WithMode(odfork.OnDemand), odfork.WithForkOptions(odfork.ForkOptions{ShareHugePMD: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Exit()
	if b, _ := c.LoadByte(base); b != 7 {
		t.Errorf("child sees %d", b)
	}
	if err := c.StoreByte(base, 8); err != nil {
		t.Fatal(err)
	}
	if b, _ := p.LoadByte(base); b != 7 {
		t.Error("COW broken through public API huge share")
	}
}
