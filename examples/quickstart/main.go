// The quickstart example: boot a simulated system, map memory, compare
// the latency of the classic fork and on-demand-fork, and demonstrate
// copy-on-write semantics through the public API.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/odfork"
)

func main() {
	sys := odfork.NewSystem()
	p := sys.NewProcess()

	// Allocate and populate 256 MiB, like a memory-intensive service.
	const size = 256 * odfork.MiB
	buf, err := p.Mmap(size, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.WriteAt([]byte("hello from the parent"), buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parent process %d mapped %d MiB at %v\n",
		p.PID(), size/odfork.MiB, buf)

	// Compare fork engines on the same process.
	for _, mode := range []odfork.Mode{odfork.Classic, odfork.OnDemand} {
		start := time.Now()
		child, err := p.Fork(odfork.WithMode(mode))
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s took %10v\n", mode, elapsed)
		child.Exit()
	}

	// Copy-on-write: the child's writes are invisible to the parent,
	// and only the first write per 2 MiB region copies a page table.
	// The system-wide metrics snapshot shows exactly how much work the
	// write triggered.
	before := sys.Metrics()
	child, err := p.Fork(odfork.WithMode(odfork.OnDemand))
	if err != nil {
		log.Fatal(err)
	}
	if err := child.WriteAt([]byte("hello from the child "), buf); err != nil {
		log.Fatal(err)
	}
	parentView := make([]byte, 21)
	childView := make([]byte, 21)
	p.ReadAt(parentView, buf)
	child.ReadAt(childView, buf)
	fmt.Printf("parent sees: %q\n", parentView)
	fmt.Printf("child sees:  %q\n", childView)
	delta := sys.Metrics().Sub(before)
	fmt.Printf("page tables copied on demand in child: %d (of %d shared at fork)\n",
		delta.Fault.TableSplits, size/odfork.HugePageSize)

	child.Exit()
	p.Exit()
	fmt.Printf("frames leaked after exit: %d\n", sys.AllocatedFrames())

	// The same telemetry, rendered procfs-style.
	text, err := sys.Procfs("/proc/odf/metrics")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/proc/odf/metrics (excerpt):\n")
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "fork.") && !strings.Contains(line, "bucket") {
			fmt.Println(line)
		}
	}
}
