// The testsuite example: fork-based unit testing (the paper's §5.3.2
// use case). A database is initialized once — the expensive phase —
// and every unit test runs in a forked child from that clean state, so
// destructive tests cannot affect each other. The example prints the
// phase breakdown for both engines.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps/sqlike"
	"repro/odfork"
)

func main() {
	const items = 40000
	for _, mode := range []odfork.Mode{odfork.Classic, odfork.OnDemand} {
		sys := odfork.NewSystem()
		proc := sys.NewProcess()
		initStart := time.Now()
		db, err := sqlike.New(proc, sqlike.Config{
			ArenaBytes: 128 * odfork.MiB,
			MaxItems:   items * 2,
			MaxTags:    items/50 + 16,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Load(items, 24, 50); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] init: %v (%d rows)\n", mode, time.Since(initStart).Round(time.Millisecond), items)

		for _, ut := range sqlike.StandardTests() {
			forkStart := time.Now()
			child, err := proc.Fork(odfork.WithMode(mode))
			forkTime := time.Since(forkStart)
			if err != nil {
				log.Fatal(err)
			}
			testStart := time.Now()
			err = ut.Run(db.Clone(child))
			testTime := time.Since(testStart)
			child.Exit()
			child.Wait()
			status := "ok"
			if err != nil {
				status = "FAIL: " + err.Error()
			}
			fmt.Printf("[%s]   %-17s fork=%-12v test=%-12v %s\n",
				mode, ut.Name, forkTime, testTime, status)
		}
		// The destructive tests ran in children: the parent still has
		// every row.
		n, err := db.CountItems(func(sqlike.Row) bool { return true })
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] parent rows after suite: %d (unchanged)\n\n", mode, n)
		proc.Exit()
	}
}
