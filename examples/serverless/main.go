// The serverless example: the paper's §2.4.3 use case. A lambda
// platform keeps a warm, fully initialized runtime (interpreter +
// loaded packages + cached data) as a checkpoint; each invocation
// spawns a fresh process from it — isolation without paying
// initialization. With classic fork, warm starts still cost
// milliseconds on a large runtime; with on-demand-fork they are
// microseconds.
//
// The platform is multi-tenant: the warm runtime belongs to a Tenant
// with a frame quota, every invocation's memory is charged to that
// account, and a function that outgrows its share has its warm starts
// queued by admission control (ErrQuotaExceeded) instead of starving
// the other tenants with ErrNoMem. The odf-serverless daemon serves
// this same model over TCP.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro/odfork"
)

func main() {
	sys := odfork.NewSystem()

	// Every function runs inside a tenant: an isolation domain with a
	// frame quota. The quota is sized to fit the warm runtime with room
	// for invocation-private COW pages.
	tn, err := sys.NewTenant("lambda-py", 160<<10) // frames: ~640 MiB
	if err != nil {
		log.Fatal(err)
	}

	// "Cold start": build the runtime once — map and initialize 512 MiB
	// of packages, JIT caches, and reference data.
	coldStart := time.Now()
	runtime := sys.NewTenantProcess(tn)
	const runtimeSize = 512 * odfork.MiB
	base, err := runtime.Mmap(runtimeSize, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		log.Fatal(err)
	}
	// Initialize a sampling of the runtime state (imports, constants).
	blob := make([]byte, 1<<20)
	for i := range blob {
		blob[i] = byte(i * 17)
	}
	for off := uint64(0); off < runtimeSize; off += 16 << 20 {
		if err := runtime.WriteAt(blob, base+odfork.Addr(off)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cold start (runtime init): %v\n", time.Since(coldStart).Round(time.Millisecond))

	// Freeze the warm runtime.
	cp, err := runtime.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	defer cp.Release()

	// Compare warm-start mechanisms. The classic side goes through the
	// typed snapshot-serving API: an on-demand Snapshotter pinned to the
	// classic engine, whose per-fork stats are the warm-start cost.
	classic, err := runtime.StartSnapshotter(0,
		odfork.WithSnapshotMode(odfork.Classic))
	if err != nil {
		log.Fatal(err)
	}
	defer classic.Stop()
	warmViaCheckpoint := func() (*odfork.Process, time.Duration) {
		t0 := time.Now()
		p, err := cp.Spawn()
		if err != nil {
			log.Fatal(err)
		}
		return p, time.Since(t0)
	}

	fmt.Println("\ninvocation  classic-fork  odf-checkpoint")
	for i := 0; i < 5; i++ {
		// The classic invocation runs as snapshot-child work; the child
		// exits when the closure returns.
		st, err := classic.SnapshotSync(func(p *odfork.Process) error {
			var buf [64]byte
			if err := p.ReadAt(buf[:], base); err != nil {
				return err
			}
			return p.WriteAt([]byte("invocation-private state"), base)
		})
		if err != nil || st.Err != nil {
			log.Fatal(err, st.Err)
		}
		po, do := warmViaCheckpoint()
		// The checkpoint invocation does the same work, isolated from
		// every other invocation.
		var buf [64]byte
		if err := po.ReadAt(buf[:], base); err != nil {
			log.Fatal(err)
		}
		if err := po.WriteAt([]byte("invocation-private state"), base); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %12v  %14v\n", i,
			st.ForkLatency.Round(time.Microsecond), do.Round(time.Microsecond))
		po.Exit()
	}
	tot := classic.Totals()
	fmt.Printf("\nclassic warm starts: mean %v, max %v over %d forks\n",
		tot.ForkMean.Round(time.Microsecond), tot.ForkMax.Round(time.Microsecond),
		tot.Snapshots)

	// The runtime itself is untouched by invocations.
	var check [1]byte
	if err := runtime.ReadAt(check[:], base); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nruntime state intact: first byte %#x (want %#x)\n", check[0], blob[0])

	// The tenant's account has every frame the function family touched.
	for _, ts := range sys.TenantStats() {
		fmt.Printf("tenant %s: quota %d frames, usage %d, peak %d\n",
			ts.Name, ts.QuotaFrames, ts.UsageFrames, ts.PeakFrames)
	}

	// A function that outgrows its share is throttled, not the machine:
	// shrink the quota below the runtime's footprint and the next warm
	// start bounces off admission control with ErrQuotaExceeded — the
	// neighbors never see ErrNoMem.
	sys.SetAdmitTimeout(5 * time.Millisecond)
	tn.SetQuota(1024)
	if _, err := classic.SnapshotSync(func(p *odfork.Process) error { return nil }); errors.Is(err, odfork.ErrQuotaExceeded) {
		fmt.Println("\nover quota: warm start refused with ErrQuotaExceeded (queued, timed out)")
	} else {
		log.Fatalf("over-quota warm start = %v, want ErrQuotaExceeded", err)
	}
	tn.SetQuota(0) // lift the quota; queued forks are readmitted
	if _, err := classic.SnapshotSync(func(p *odfork.Process) error { return nil }); err != nil {
		log.Fatal(err)
	}
	fmt.Println("quota lifted: warm starts flow again")
}
