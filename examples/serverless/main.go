// The serverless example: the paper's §2.4.3 use case. A lambda
// platform keeps a warm, fully initialized runtime (interpreter +
// loaded packages + cached data) as a checkpoint; each invocation
// spawns a fresh process from it — isolation without paying
// initialization. With classic fork, warm starts still cost
// milliseconds on a large runtime; with on-demand-fork they are
// microseconds.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/odfork"
)

func main() {
	sys := odfork.NewSystem()

	// "Cold start": build the runtime once — map and initialize 512 MiB
	// of packages, JIT caches, and reference data.
	coldStart := time.Now()
	runtime := sys.NewProcess()
	const runtimeSize = 512 * odfork.MiB
	base, err := runtime.Mmap(runtimeSize, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapPopulate)
	if err != nil {
		log.Fatal(err)
	}
	// Initialize a sampling of the runtime state (imports, constants).
	blob := make([]byte, 1<<20)
	for i := range blob {
		blob[i] = byte(i * 17)
	}
	for off := uint64(0); off < runtimeSize; off += 16 << 20 {
		if err := runtime.WriteAt(blob, base+odfork.Addr(off)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("cold start (runtime init): %v\n", time.Since(coldStart).Round(time.Millisecond))

	// Freeze the warm runtime.
	cp, err := runtime.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	defer cp.Release()

	// Compare warm-start mechanisms. The classic side goes through the
	// typed snapshot-serving API: an on-demand Snapshotter pinned to the
	// classic engine, whose per-fork stats are the warm-start cost.
	classic, err := runtime.StartSnapshotter(0,
		odfork.WithSnapshotMode(odfork.Classic))
	if err != nil {
		log.Fatal(err)
	}
	defer classic.Stop()
	warmViaCheckpoint := func() (*odfork.Process, time.Duration) {
		t0 := time.Now()
		p, err := cp.Spawn()
		if err != nil {
			log.Fatal(err)
		}
		return p, time.Since(t0)
	}

	fmt.Println("\ninvocation  classic-fork  odf-checkpoint")
	for i := 0; i < 5; i++ {
		// The classic invocation runs as snapshot-child work; the child
		// exits when the closure returns.
		st, err := classic.SnapshotSync(func(p *odfork.Process) error {
			var buf [64]byte
			if err := p.ReadAt(buf[:], base); err != nil {
				return err
			}
			return p.WriteAt([]byte("invocation-private state"), base)
		})
		if err != nil || st.Err != nil {
			log.Fatal(err, st.Err)
		}
		po, do := warmViaCheckpoint()
		// The checkpoint invocation does the same work, isolated from
		// every other invocation.
		var buf [64]byte
		if err := po.ReadAt(buf[:], base); err != nil {
			log.Fatal(err)
		}
		if err := po.WriteAt([]byte("invocation-private state"), base); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d  %12v  %14v\n", i,
			st.ForkLatency.Round(time.Microsecond), do.Round(time.Microsecond))
		po.Exit()
	}
	tot := classic.Totals()
	fmt.Printf("\nclassic warm starts: mean %v, max %v over %d forks\n",
		tot.ForkMean.Round(time.Microsecond), tot.ForkMax.Round(time.Microsecond),
		tot.Snapshots)

	// The runtime itself is untouched by invocations.
	var check [1]byte
	if err := runtime.ReadAt(check[:], base); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nruntime state intact: first byte %#x (want %#x)\n", check[0], blob[0])
}
