// The snapshot example: a Redis-style in-memory store that keeps
// serving writes while a forked child serializes a consistent snapshot
// to a file — the paper's §5.3.3 use case. It prints how long the
// serving loop was blocked by each engine's fork call.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/kvstore"
	"repro/internal/kernel"
	"repro/odfork"
)

func main() {
	const (
		keys      = 20000
		valueSize = 64
	)
	for _, mode := range []odfork.Mode{odfork.Classic, odfork.OnDemand} {
		k := kernel.New()
		store, err := kvstore.New(k, kvstore.Config{
			ArenaBytes: 128 * odfork.MiB,
			TableCap:   1 << 16,
			Mode:       mode,
			Threshold:  0, // snapshots triggered manually below
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Populate(keys, valueSize); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] store loaded: %d keys\n", mode, store.Len())

		dump := k.FS().Create("dump.rdb")
		if err := store.SnapshotNow(dump); err != nil {
			log.Fatal(err)
		}
		// Keep serving writes while the child serializes.
		for i := 0; i < 5000; i++ {
			if _, err := store.Set(kvstore.Key(i%keys), []byte("updated-after-snapshot!!")); err != nil {
				log.Fatal(err)
			}
		}
		store.WaitSnapshots()
		fmt.Printf("[%s] snapshot of %d bytes written; serving loop blocked for %.3f ms\n",
			mode, dump.Size(), store.ForkTimes.Mean())
		store.Close()
	}
}
