// The forkserver example: an AFL-style fuzzing loop over the sqlike
// database engine (the paper's §5.3.1 use case). The target is
// initialized once with a sizable database; every input then runs in a
// freshly forked child, so destructive queries never contaminate the
// next execution. The example reports executions/s for both engines.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps/fuzz"
	"repro/internal/apps/sqlike"
	"repro/internal/kernel"
	"repro/odfork"
)

func main() {
	const items = 20000
	for _, mode := range []odfork.Mode{odfork.Classic, odfork.OnDemand} {
		k := kernel.New()
		f, err := fuzz.NewFuzzer(k, fuzz.Config{
			DB: sqlike.Config{
				ArenaBytes: 128 * odfork.MiB,
				MaxItems:   items * 2,
				MaxTags:    items/50 + 16,
			},
			Items:    items,
			NameLen:  24,
			TagEvery: 50,
			Mode:     mode,
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		execs, err := f.RunFor(3 * time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%s] %d executions in 3s (%.0f execs/s), %d edges, corpus %d\n",
			mode, execs, f.Throughput.MeanRate(), f.GlobalEdges(), f.CorpusSize())
		// Per-execution fork pauses, aggregated by the snapshotter that
		// drives the fork server.
		tot := f.Snapshotter().Totals()
		fmt.Printf("[%s] fork pause: mean %v, max %v over %d forks\n",
			mode, tot.ForkMean.Round(time.Microsecond),
			tot.ForkMax.Round(time.Microsecond), tot.Snapshots)
		f.Close()
	}
}
