// Command odf-bench regenerates the tables and figures of the
// on-demand-fork paper (EuroSys '21) from the simulated kernel.
//
// Usage:
//
//	odf-bench [flags] <experiment> [...]
//
// Experiments: fig2 fig3 fig4 fig7 fig8 fig9 fig10
//
//	tab1 tab2 tab3 tab45 tab67 ablation hugeext memsave
//	parfork slo pressure trace all
//
// Flags scale the runs; defaults keep a full "all" pass in the minutes
// range. Absolute numbers differ from the paper's bare-metal testbed;
// the shapes (who wins, by what factor, where crossovers fall) are the
// reproduction target — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
)

var (
	maxGB    = flag.Float64("max-gb", 1, "largest memory size for latency sweeps (GiB)")
	reps     = flag.Int("reps", 5, "repetitions per measurement (the paper uses 5)")
	faultGB  = flag.Float64("fault-gb", 1, "region size for the Table 1 fault probe (GiB)")
	fig8MB   = flag.Int("fig8-mb", 512, "region size for the Figure 8 sweep (MiB)")
	seconds  = flag.Int("seconds", 10, "wall-clock seconds per fuzzing campaign (fig9/fig10)")
	scaleArg = flag.String("scale", "default", "application experiment scale: small|default|large")
	workers  = flag.Int("fork-workers", 4, "max worker count for the parfork sweep (ForkOptions.Parallelism)")
	traceOut = flag.String("trace-out", "", "write the trace experiment's timeline as Chrome trace-event JSON to this file (load in ui.perfetto.dev)")
)

type experiment struct {
	name string
	desc string
	run  func() (string, error)
}

func main() {
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "odf-bench: -fork-workers must be >= 1, got %d\n", *workers)
		os.Exit(2)
	}

	exps := registry()
	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for _, e := range exps {
			args = append(args, e.name)
		}
	}
	for _, name := range args {
		e := find(exps, name)
		if e == nil {
			fmt.Fprintf(os.Stderr, "odf-bench: unknown experiment %q\n\n", name)
			usage()
			os.Exit(2)
		}
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "odf-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func find(exps []experiment, name string) *experiment {
	for i := range exps {
		if exps[i].name == name {
			return &exps[i]
		}
	}
	return nil
}

func scale() experiments.AppScale {
	s := experiments.DefaultScale()
	switch *scaleArg {
	case "small":
		s.SQLiteItems = 5000
		s.ArenaBytes = 64 * experiments.MiB
		s.KVKeys = 5000
		s.VMRAMBytes = 32 * experiments.MiB
		s.Requests = 5000
	case "large":
		s.SQLiteItems = 250000
		s.ArenaBytes = experiments.GiB
		s.KVKeys = 200000
		s.Requests = 100000
	case "default":
	default:
		fmt.Fprintf(os.Stderr, "odf-bench: unknown -scale %q\n", *scaleArg)
		os.Exit(2)
	}
	s.FuzzSeconds = *seconds
	return s
}

func registry() []experiment {
	maxBytes := uint64(*maxGB * float64(experiments.GiB))
	faultBytes := uint64(*faultGB * float64(experiments.GiB))
	fig8Bytes := uint64(*fig8MB) * experiments.MiB
	return []experiment{
		{"fig2", "classic fork latency vs size, sequential + 3x concurrent", func() (string, error) {
			_, s, err := experiments.RunFig2(maxBytes, *reps)
			return s, err
		}},
		{"fig3", "profile attribution of the classic fork hot path", func() (string, error) {
			_, s, err := experiments.RunFig3(experiments.GiB/2, *reps)
			return s, err
		}},
		{"fig4", "fork latency with huge pages (column of fig7)", func() (string, error) {
			_, s, err := experiments.RunFig7(maxBytes, *reps)
			return s, err
		}},
		{"fig7", "invocation latency: fork vs huge pages vs on-demand-fork", func() (string, error) {
			_, s, err := experiments.RunFig7(maxBytes, *reps)
			return s, err
		}},
		{"tab1", "worst-case page fault cost per engine", func() (string, error) {
			_, s, err := experiments.RunTab1(faultBytes, *reps)
			return s, err
		}},
		{"fig8", "total cost vs fraction of memory accessed, 5 R/W mixes", func() (string, error) {
			_, s, err := experiments.RunFig8(fig8Bytes, *reps)
			return s, err
		}},
		{"fig9", "AFL-style fuzzing throughput over the sqlike engine", func() (string, error) {
			_, s, err := experiments.RunFig9(scale())
			return s, err
		}},
		{"tab2", "sequential unit-test phase breakdown", func() (string, error) {
			_, s, err := experiments.RunTab2(scale())
			return s, err
		}},
		{"tab3", "fork-based unit tests: fork vs on-demand-fork", func() (string, error) {
			_, s, err := experiments.RunTab3(scale(), *reps)
			return s, err
		}},
		{"tab45", "Redis-like request latency percentiles and fork times", func() (string, error) {
			_, s, err := experiments.RunTab45(scale())
			return s, err
		}},
		{"fig10", "TriforceAFL-style VM cloning throughput", func() (string, error) {
			_, s, err := experiments.RunFig10(scale())
			return s, err
		}},
		{"tab67", "Apache-prefork response latency (negative result)", func() (string, error) {
			_, s, err := experiments.RunTab67(scale())
			return s, err
		}},
		{"ablation", "fork cost of re-adding the per-page work ODF removes", func() (string, error) {
			_, s, err := experiments.RunAblation(maxBytes/2, *reps)
			return s, err
		}},
		{"hugeext", "extension: on-demand-fork over 2MiB pages (shared PMD tables)", func() (string, error) {
			_, s, err := experiments.RunHugeExt(maxBytes/2, *reps)
			return s, err
		}},
		{"memsave", "page-table memory per child tree, fork vs on-demand-fork", func() (string, error) {
			_, s, err := experiments.RunMemSave(maxBytes/2, 16)
			return s, err
		}},
		{"parfork", "parallel fork engine + sharded allocator scaling", func() (string, error) {
			_, s, err := experiments.RunParFork(maxBytes, *reps, *workers)
			return s, err
		}},
		{"slo", "tail latency under snapshot-while-serving over real TCP", func() (string, error) {
			_, s, err := experiments.RunSLO(scale())
			return s, err
		}},
		{"pressure", "fork latency under frame-limit pressure, swap off/on", func() (string, error) {
			_, s, err := experiments.RunPressure(maxBytes, *reps)
			return s, err
		}},
		{"trace", "flight-recorder timeline of a fork/fault/reclaim window", func() (string, error) {
			snap, s, err := experiments.RunTrace(maxBytes, *reps)
			if err != nil {
				return "", err
			}
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					return "", err
				}
				if err := trace.WriteTo(f, snap, trace.FormatChrome); err != nil {
					f.Close()
					return "", err
				}
				if err := f.Close(); err != nil {
					return "", err
				}
				s += fmt.Sprintf("\ntrace written to %s (load in ui.perfetto.dev)\n", *traceOut)
			}
			return s, err
		}},
	}
}

func usage() {
	var b strings.Builder
	fmt.Fprintf(&b, "usage: odf-bench [flags] <experiment> [...]\n\nexperiments:\n")
	for _, e := range registry() {
		fmt.Fprintf(&b, "  %-9s %s\n", e.name, e.desc)
	}
	fmt.Fprintf(&b, "  %-9s run every experiment\n\nflags:\n", "all")
	fmt.Fprint(os.Stderr, b.String())
	flag.PrintDefaults()
}
