// Command odf-ckpt manages and stress-tests durable checkpoints.
//
//	odf-ckpt write  -out s.ckpt [-pages N] [-seed N]  write a sample snapshot
//	odf-ckpt info   <path>                            print snapshot metadata
//	odf-ckpt verify <path>                            verify a file + its chain
//	odf-ckpt fsck   -dir D [-json]                    classify every candidate
//	odf-ckpt chaos  -dir D [-seed N] [-n N]           crash-consistency proof
//
// Chaos mode is the acceptance harness: it repeatedly checkpoints a
// mutating process while killing the writer at randomly chosen
// checkpoint failpoints (torn chunk writes, missed fsyncs, silent media
// corruption), then fscks every surviving file — committed snapshots
// and crashed writers' temp files alike. Every file must be classified
// restorable or rejected; every restorable file must restore
// byte-identically to the shadow copy recorded at its capture; any
// silent corruption is a hard failure (exit 1). A final pass restores
// with transient read injection armed, proving fault-time retry keeps
// lazy restore transparent.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/ckpt"
	"repro/internal/failpoint"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "odf-ckpt: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: odf-ckpt <write|info|verify|fsck|chaos> [flags]")
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "write":
		cmdWrite(args)
	case "info":
		cmdInfo(args)
	case "verify":
		cmdVerify(args)
	case "fsck":
		cmdFsck(args)
	case "chaos":
		cmdChaos(args)
	default:
		fmt.Fprintf(os.Stderr, "odf-ckpt: unknown command %q\n", cmd)
		os.Exit(2)
	}
}

const rw = vm.ProtRead | vm.ProtWrite

// donor builds a process with a deterministic mixed-content arena:
// incompressible pages, compressible pages, an explicit zero page, and
// an untouched demand-zero tail.
func donor(k *kernel.Kernel, pages int, rng *rand.Rand) (*kernel.Process, addr.V, [][]byte) {
	p := k.NewProcess()
	base, err := p.Mmap(uint64(pages)*addr.PageSize, rw, vm.MapPrivate)
	if err != nil {
		fail("mmap: %v", err)
	}
	shadow := make([][]byte, pages)
	touched := pages * 3 / 4
	for i := 0; i < touched; i++ {
		b := make([]byte, addr.PageSize)
		switch i % 4 {
		case 0, 1:
			rng.Read(b)
		case 2:
			for j := range b {
				b[j] = byte(i)
			}
		case 3:
			// leave all-zero: written then zeroed content
		}
		if err := p.WriteAt(b, base+addr.V(i)*addr.PageSize); err != nil {
			fail("write page %d: %v", i, err)
		}
		shadow[i] = b
	}
	return p, base, shadow
}

func cmdWrite(args []string) {
	fs := flag.NewFlagSet("write", flag.ExitOnError)
	out := fs.String("out", "sample.ckpt", "output snapshot path")
	pages := fs.Int("pages", 256, "arena pages to capture")
	seed := fs.Uint64("seed", 1, "content PRNG seed")
	fs.Parse(args)
	k := kernel.New()
	p, _, _ := donor(k, *pages, rand.New(rand.NewSource(int64(*seed))))
	d, err := p.CheckpointTo(*out)
	if err != nil {
		fail("checkpoint: %v", err)
	}
	d.Release()
	fmt.Printf("odf-ckpt: wrote %s: %d page records, %d bytes\n", *out, d.Pages(), d.Bytes())
}

func cmdInfo(args []string) {
	if len(args) != 1 {
		fail("info: want exactly one path")
	}
	s, err := ckpt.OpenChain(args[0], ckpt.Env{})
	if err != nil {
		fail("%v", err)
	}
	defer s.Close()
	for c := s; c != nil; c = c.Parent() {
		id := c.SnapID()
		fmt.Printf("%s:\n  snap_id %x\n  pages   %d\n  chunks  %d\n  vmas    %d\n",
			c.Path(), id[:], c.Pages(), c.Chunks(), len(c.VMAs()))
		if ref := c.ParentRef(); ref != "" {
			fmt.Printf("  parent  %s\n", ref)
		}
		for _, v := range c.VMAs() {
			fmt.Printf("  vma     [%#x, +%#x) prot=%d flags=%d\n", v.Start, v.Size, v.Prot, v.Flags)
		}
	}
}

func cmdVerify(args []string) {
	if len(args) != 1 {
		fail("verify: want exactly one path")
	}
	rep := ckpt.Fsck(args[0], ckpt.Env{})
	if !rep.Restorable {
		fail("%s: REJECTED: %s", rep.Path, rep.Err)
	}
	fmt.Printf("odf-ckpt: %s: OK (chain=%d pages=%d chunks=%d bytes=%d)\n",
		rep.Path, rep.ChainLen, rep.Pages, rep.Chunks, rep.Bytes)
}

func cmdFsck(args []string) {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	dir := fs.String("dir", ".", "directory to scan for *.ckpt and *.tmp")
	asJSON := fs.Bool("json", false, "emit one JSON report per line")
	fs.Parse(args)
	reps, err := ckpt.FsckDir(*dir, ckpt.Env{})
	if err != nil {
		fail("%v", err)
	}
	restorable := 0
	for _, r := range reps {
		if *asJSON {
			b, _ := json.Marshal(r)
			fmt.Println(string(b))
		} else if r.Restorable {
			fmt.Printf("OK      %s (chain=%d pages=%d bytes=%d)\n", r.Path, r.ChainLen, r.Pages, r.Bytes)
		} else {
			fmt.Printf("REJECT  %s: %s\n", r.Path, r.Err)
		}
		if r.Restorable {
			restorable++
		}
	}
	fmt.Printf("odf-ckpt: fsck: %d candidates, %d restorable, %d rejected\n",
		len(reps), restorable, len(reps)-restorable)
}

// attempt records one chaos checkpoint attempt: the shadow of the
// donor's memory at capture time and what the injection implies.
type attempt struct {
	path         string
	shadow       [][]byte
	committed    bool
	corruptFired bool
	incremental  bool
}

func cmdChaos(args []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	dir := fs.String("dir", "", "working directory (required; filled with snapshots)")
	seed := fs.Uint64("seed", 1, "injection and mutation PRNG seed")
	n := fs.Int("n", 30, "checkpoint attempts")
	pages := fs.Int("pages", 128, "donor arena pages")
	fs.Parse(args)
	if *dir == "" {
		fail("chaos: -dir is required")
	}
	rng := rand.New(rand.NewSource(int64(*seed)))

	k := kernel.New()
	k.SetFailpointSeed(*seed)
	p, base, shadow := donor(k, *pages, rng)

	// The injection schedule: one of the writer-side checkpoint
	// failpoints (or none) armed "once" per attempt, crash-on-inject.
	schedule := []string{"", failpoint.CkptWrite, failpoint.CkptFsync, failpoint.CkptCorrupt}

	var attempts []attempt
	var parent *kernel.DurableCheckpoint
	committed, crashed := 0, 0
	for i := 0; i < *n; i++ {
		// Mutate a random slice of the arena; the shadow follows.
		for m := rng.Intn(8); m >= 0; m-- {
			pi := rng.Intn(*pages)
			b := make([]byte, addr.PageSize)
			if rng.Intn(4) > 0 {
				rng.Read(b)
			}
			if err := p.WriteAt(b, base+addr.V(pi)*addr.PageSize); err != nil {
				fail("mutate page %d: %v", pi, err)
			}
			shadow[pi] = b
		}
		at := attempt{path: filepath.Join(*dir, fmt.Sprintf("snap-%03d.ckpt", i))}
		at.shadow = make([][]byte, len(shadow))
		for j, s := range shadow {
			at.shadow[j] = append([]byte(nil), s...)
		}

		point := schedule[rng.Intn(len(schedule))]
		if point != "" {
			if err := k.SetFailpoint(point, "once"); err != nil {
				fail("arm %s: %v", point, err)
			}
		}
		fired0 := k.Failpoints().Fires(failpoint.CkptCorrupt)
		opts := []kernel.CheckpointOption{kernel.WithCheckpointCrashOnInject()}
		if parent != nil && rng.Intn(2) == 0 {
			opts = append(opts, kernel.WithCheckpointParent(parent))
			at.incremental = true
		}
		d, err := p.CheckpointTo(at.path, opts...)
		if point != "" {
			if aerr := k.SetFailpoint(point, "off"); aerr != nil {
				fail("disarm %s: %v", point, aerr)
			}
		}
		if err != nil {
			crashed++
			if _, serr := os.Stat(at.path); serr == nil {
				fail("attempt %d: crashed writer left a file at the target path", i)
			}
		} else {
			committed++
			at.committed = true
			at.corruptFired = k.Failpoints().Fires(failpoint.CkptCorrupt) > fired0
			if parent != nil {
				parent.Release()
			}
			parent = d
		}
		attempts = append(attempts, at)
	}
	if parent != nil {
		parent.Release()
	}
	if err := k.CheckInvariants(); err != nil {
		fail("donor kernel invariants after chaos: %v", err)
	}

	// Phase 2: fsck everything that survived — committed snapshots and
	// crashed writers' temp files.
	reps, err := ckpt.FsckDir(*dir, ckpt.Env{})
	if err != nil {
		fail("fsck: %v", err)
	}
	byPath := map[string]ckpt.FsckReport{}
	for _, r := range reps {
		if r.Restorable == (r.Err != "") {
			fail("ambiguous fsck verdict for %s: %+v", r.Path, r)
		}
		byPath[r.Path] = r
	}

	// Phase 3: every restorable file restores byte-identically to the
	// shadow recorded at its capture; silent corruption is fatal.
	restored, rejected := 0, 0
	var lastGood *attempt
	var lastGoodPath string
	verify := func(at attempt, path string) {
		rep, ok := byPath[path]
		if !ok {
			return
		}
		delete(byPath, path)
		if at.corruptFired && rep.Restorable {
			fail("%s: silent media corruption passed fsck", path)
		}
		if !rep.Restorable {
			rejected++
			return
		}
		rk := kernel.New()
		r, err := rk.RestoreFrom(path)
		if err != nil {
			fail("restore %s (fsck said restorable): %v", path, err)
		}
		buf := make([]byte, addr.PageSize)
		for pi, want := range at.shadow {
			v := base + addr.V(pi)*addr.PageSize
			if err := r.ReadAt(buf, v); err != nil {
				fail("%s: read page %d: %v", path, pi, err)
			}
			if want == nil {
				want = make([]byte, addr.PageSize)
			}
			if !bytes.Equal(buf, want) {
				fail("%s: SILENT CORRUPTION: page %d differs from shadow", path, pi)
			}
		}
		restored++
		cp := at
		lastGood, lastGoodPath = &cp, path
	}
	for _, at := range attempts {
		verify(at, at.path)
		verify(at, at.path+".tmp")
	}
	for path, rep := range byPath {
		if rep.Restorable {
			fail("unexpected restorable stray %s", path)
		}
		rejected++
	}

	// Phase 4: lazy restore with transient read faults stays
	// transparent — an every-other-read ckpt.read schedule must be
	// absorbed by retry, never surfacing to the reader.
	retries := uint64(0)
	if lastGood != nil {
		rk := kernel.New()
		rk.SetFailpointSeed(*seed + 1)
		r, err := rk.RestoreFrom(lastGoodPath)
		if err != nil {
			fail("retry pass restore: %v", err)
		}
		if err := rk.SetFailpoint(failpoint.CkptRead, "every:2"); err != nil {
			fail("arm ckpt.read: %v", err)
		}
		buf := make([]byte, addr.PageSize)
		for pi, want := range lastGood.shadow {
			v := base + addr.V(pi)*addr.PageSize
			if err := r.ReadAt(buf, v); err != nil {
				fail("retry pass: read page %d: %v", pi, err)
			}
			if want == nil {
				want = make([]byte, addr.PageSize)
			}
			if !bytes.Equal(buf, want) {
				fail("retry pass: page %d differs from shadow", pi)
			}
		}
		retries = rk.MetricsSnapshot().Ckpt.ReadRetries
		if retries == 0 {
			fail("retry pass: injected read faults produced no retries")
		}
	}

	fmt.Printf("odf-ckpt: chaos: seed=%d attempts=%d committed=%d crashed=%d "+
		"restorable=%d rejected=%d read_retries=%d — zero silent corruption\n",
		*seed, *n, committed, crashed, restored, rejected, retries)
}
