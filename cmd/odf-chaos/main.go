// Command odf-chaos soak-tests the memory subsystem under randomized
// fault injection: a deterministic workload of forks (all engines),
// page writes, reads, and process exits runs with failpoints armed on
// the allocation, swap I/O, and fork paths, while a shadow copy of
// every process's memory checks that no injected failure ever corrupts
// surviving state. The run ends with a full audit: every lineage
// byte-identical to its shadow, accounting invariants clean, zero
// leaked frames, zero leaked swap slots, and no leaked goroutines.
//
// Usage:
//
//	odf-chaos [-seed N] [-ops N] [-p P] [-points a,b,c] [-frames N]
//
// A fixed -seed replays the identical op and injection schedule.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/odfork"
)

var (
	seed     = flag.Uint64("seed", 1, "op schedule and injection PRNG seed")
	ops      = flag.Int("ops", 10000, "chaos operations to run")
	prob     = flag.Float64("p", 0.01, "per-check injection probability")
	points   = flag.String("points", defaultPoints, "comma-separated failpoints to arm")
	frames   = flag.Int64("frames", 8192, "physical frame limit (0 = none)")
	tenantsN = flag.Int("tenants", 0, "0 = single-domain chaos; 2 = blast-radius mode "+
		"(injection scoped to tenant A, tenant B is an untouched control)")
)

// The default schedule arms the alloc, swap I/O, and fork stages — the
// acceptance matrix. fault.* copy paths ride along because chaos
// writes constantly hit COW; swap.corrupt stays out (a corrupted
// payload is genuinely lost data, exercised by unit tests instead).
const defaultPoints = "phys.alloc,phys.shard-refill,swap.read,swap.write,swap.free," +
	"fork.walk,fork.share,fork.refcount,fault.table-copy,fault.page-copy"

// Two private regions per process: a base-page arena and a huge-page
// arena, so PMD splits and huge copies participate.
const (
	baseBytes = 512 * odfork.KiB
	hugeBytes = odfork.HugePageSize
	maxProcs  = 12
)

// proc pairs a live process with the shadow of what its memory must
// contain.
type proc struct {
	p          *odfork.Process
	base, huge odfork.Addr
	shadow     []byte // baseBytes of base arena then hugeBytes of huge arena
}

func (pr *proc) addrOf(off int) odfork.Addr {
	if off < int(baseBytes) {
		return pr.base + odfork.Addr(off)
	}
	return pr.huge + odfork.Addr(off-int(baseBytes))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "odf-chaos: FAIL: "+format+"\n", args...)
	os.Exit(1)
}

// tolerable reports whether an op error is an injected (or pressure)
// failure the workload is expected to absorb, as opposed to
// corruption.
func tolerable(err error) bool {
	return errors.Is(err, odfork.ErrNoMem) || errors.Is(err, odfork.ErrSwapIO)
}

func main() {
	flag.Parse()
	if *tenantsN != 0 && *tenantsN != 2 {
		fail("-tenants must be 0 or 2")
	}
	rng := rand.New(rand.NewSource(int64(*seed)))

	sys := odfork.NewSystem()
	if *frames > 0 {
		sys.SetFrameLimit(*frames)
	}
	sys.SetSwapEnabled(true)

	// Blast-radius mode: the chaos pool belongs to tenant A and all
	// injection is scoped to A's work; tenant B runs a quiet control
	// lineage through the same kernel. Any corruption of B is a
	// containment failure, not bad luck.
	var tenantA, tenantB *odfork.Tenant
	var broot *proc
	if *tenantsN == 2 {
		var err error
		if tenantA, err = sys.NewTenant("chaos-a", 0); err != nil {
			fail("tenant A: %v", err)
		}
		if tenantB, err = sys.NewTenant("control-b", 0); err != nil {
			fail("tenant B: %v", err)
		}
	}

	root := spawn(sys, rng, tenantA)
	procs := []*proc{root}
	if tenantB != nil {
		broot = spawn(sys, rng, tenantB)
	}

	// Warm the parallel-fork pool before the goroutine baseline.
	warm, err := root.p.Fork(odfork.WithMode(odfork.OnDemand), odfork.WithWorkers(4))
	if err != nil {
		fail("warmup fork: %v", err)
	}
	warm.Exit()
	baseline := runtime.NumGoroutine()

	// Arm the schedule only after setup, so the initial population is
	// deterministic regardless of the armed set.
	sys.SetFailpointSeed(*seed)
	sys.SetFailpointsEnabled(true)
	if tenantA != nil {
		sys.SetFailpointScope(tenantA)
	}
	armed := strings.Split(*points, ",")
	for _, name := range armed {
		name = strings.TrimSpace(name)
		if failpoint.Index(name) < 0 {
			fail("unknown failpoint %q (catalog: %s)", name, strings.Join(failpoint.Catalog(), ", "))
		}
		if err := sys.SetFailpoint(name, fmt.Sprintf("prob:%g", *prob)); err != nil {
			fail("arming %s: %v", name, err)
		}
	}
	mode := ""
	if tenantA != nil {
		mode = " tenants=2 (scope: chaos-a)"
	}
	fmt.Printf("odf-chaos: seed=%d ops=%d p=%g frames=%d points=%d%s\n",
		*seed, *ops, *prob, *frames, len(armed), mode)

	start := time.Now()
	var forks, aborts, writes, reads, exits int
	for op := 0; op < *ops; op++ {
		switch r := rng.Intn(100); {
		case r < 20: // fork
			parent := procs[rng.Intn(len(procs))]
			if len(procs) >= maxProcs {
				victim := 1 + rng.Intn(len(procs)-1) // never the root
				procs[victim].p.Exit()
				procs = append(procs[:victim], procs[victim+1:]...)
				exits++
				if parent.p.Exited() {
					continue
				}
			}
			opts := []odfork.ForkOpt{odfork.WithMode(odfork.OnDemand)}
			switch rng.Intn(4) {
			case 0:
				opts[0] = odfork.WithMode(odfork.Classic)
			case 1:
				opts = append(opts, odfork.WithWorkers(4))
			case 2:
				opts = append(opts, odfork.WithForkOptions(odfork.ForkOptions{ShareHugePMD: true}))
			}
			child, err := parent.p.Fork(opts...)
			if err != nil {
				if !tolerable(err) {
					fail("op %d: fork: %v", op, err)
				}
				aborts++
				continue
			}
			forks++
			cp := &proc{p: child, base: parent.base, huge: parent.huge,
				shadow: append([]byte(nil), parent.shadow...)}
			procs = append(procs, cp)
			// A fresh fork must read back byte-identical to its parent.
			if err := equalWithRetry(parent, cp); err != nil {
				fail("op %d: post-fork divergence: %v", op, err)
			}
		case r < 70: // write a batch of bytes
			pr := procs[rng.Intn(len(procs))]
			for i := 0; i < 16; i++ {
				off := rng.Intn(len(pr.shadow))
				b := byte(rng.Intn(256))
				if err := pr.p.StoreByte(pr.addrOf(off), b); err != nil {
					if !tolerable(err) {
						fail("op %d: write: %v", op, err)
					}
					continue // failed before mutating: shadow unchanged
				}
				pr.shadow[off] = b
				writes++
			}
		case r < 95: // read-verify a batch of bytes
			pr := procs[rng.Intn(len(procs))]
			for i := 0; i < 16; i++ {
				off := rng.Intn(len(pr.shadow))
				got, err := pr.p.LoadByte(pr.addrOf(off))
				if err != nil {
					if !tolerable(err) {
						fail("op %d: read: %v", op, err)
					}
					continue
				}
				if got != pr.shadow[off] {
					fail("op %d: pid %d offset %d: read %#x, shadow %#x",
						op, pr.p.PID(), off, got, pr.shadow[off])
				}
				reads++
			}
		default: // exit a non-root process
			if len(procs) > 1 {
				victim := 1 + rng.Intn(len(procs)-1)
				procs[victim].p.Exit()
				procs = append(procs[:victim], procs[victim+1:]...)
				exits++
			}
		}
		// The control tenant keeps working through the storm: its
		// writes and reads must never see an injected fault (scope
		// excludes B) and must never observe corrupt data.
		if broot != nil && (op+1)%100 == 0 {
			for i := 0; i < 8; i++ {
				off := rng.Intn(len(broot.shadow))
				b := byte(rng.Intn(256))
				if err := broot.p.StoreByte(broot.addrOf(off), b); err != nil {
					fail("op %d: control tenant write: %v (injection leaked across the scope?)", op, err)
				}
				broot.shadow[off] = b
			}
			for i := 0; i < 8; i++ {
				off := rng.Intn(len(broot.shadow))
				got, err := broot.p.LoadByte(broot.addrOf(off))
				if err != nil {
					fail("op %d: control tenant read: %v (injection leaked across the scope?)", op, err)
				}
				if got != broot.shadow[off] {
					fail("op %d: CROSS-TENANT CORRUPTION: control offset %d read %#x, shadow %#x",
						op, off, got, broot.shadow[off])
				}
			}
		}
		if (op+1)%1000 == 0 {
			if err := sys.CheckInvariants(); err != nil {
				fail("op %d: invariants: %v", op, err)
			}
			fmt.Printf("  %6d ops | procs=%2d forks=%d aborts=%d writes=%d reads=%d injected=%d\n",
				op+1, len(procs), forks, aborts, writes, reads, sys.Metrics().Robust.InjectedFaults)
		}
	}

	// Drain phase: injection off, then every surviving lineage must be
	// byte-exact and the books must balance. The telemetry snapshot is
	// taken first — disabling failpoints resets the injection counters.
	snap := sys.Metrics()
	sys.SetFailpointsEnabled(false)
	if err := sys.CheckInvariants(); err != nil {
		fail("final invariants: %v", err)
	}
	// The control lineage is audited with the same byte-exactness bar
	// as the chaos pool; its account must also balance.
	if broot != nil {
		procs = append(procs, broot)
	}
	buf := make([]byte, len(procs[0].shadow))
	for _, pr := range procs {
		if err := pr.p.ReadAt(buf[:baseBytes], pr.base); err != nil {
			fail("final read pid %d: %v", pr.p.PID(), err)
		}
		if err := pr.p.ReadAt(buf[baseBytes:], pr.huge); err != nil {
			fail("final read pid %d: %v", pr.p.PID(), err)
		}
		for i := range buf {
			if buf[i] != pr.shadow[i] {
				fail("final verify pid %d offset %d: %#x != shadow %#x",
					pr.p.PID(), i, buf[i], pr.shadow[i])
			}
		}
	}

	for _, pr := range procs {
		pr.p.Exit()
	}
	if n := sys.LiveProcesses(); n != 0 {
		fail("%d processes survived the drain", n)
	}
	for _, ts := range sys.TenantStats() {
		if ts.UsageFrames != 0 {
			fail("tenant %s: %d frames still charged after the drain", ts.Name, ts.UsageFrames)
		}
	}
	if n := sys.AllocatedFrames(); n != 0 {
		fail("%d frames leaked", n)
	}
	if n := vmstatValue(sys, "swap_slots"); n != 0 {
		fail("%d swap slots leaked", n)
	}
	if n := vmstatValue(sys, "swap_store_slots"); n != 0 {
		fail("%d swap store slots leaked", n)
	}
	sys.SetSwapEnabled(false) // joins kswapd
	time.Sleep(50 * time.Millisecond)
	if n := runtime.NumGoroutine(); n > baseline {
		fail("goroutines leaked: %d > baseline %d", n, baseline)
	}

	fmt.Printf("odf-chaos: PASS in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  forks=%d aborted=%d writes=%d reads=%d exits=%d\n",
		forks, aborts, writes, reads, exits)
	fmt.Printf("  injected=%d fork_aborts=%d swap_retries=%d/%d degraded=%v\n",
		snap.Robust.InjectedFaults, snap.Robust.ForkAborts,
		snap.Robust.SwapReadRetries, snap.Robust.SwapWriteRetries, sys.SwapDegraded())
}

// spawn creates a root process (owned by tn when non-nil): both arenas
// mapped, populated with a deterministic pattern, and mirrored into
// the shadow.
func spawn(sys *odfork.System, rng *rand.Rand, tn *odfork.Tenant) *proc {
	p := sys.NewTenantProcess(tn)
	base, err := p.Mmap(baseBytes, odfork.ProtRead|odfork.ProtWrite, odfork.MapPrivate)
	if err != nil {
		fail("mmap base arena: %v", err)
	}
	huge, err := p.Mmap(hugeBytes, odfork.ProtRead|odfork.ProtWrite,
		odfork.MapPrivate|odfork.MapHuge)
	if err != nil {
		fail("mmap huge arena: %v", err)
	}
	pr := &proc{p: p, base: base, huge: huge, shadow: make([]byte, baseBytes+hugeBytes)}
	rng.Read(pr.shadow)
	if err := p.WriteAt(pr.shadow[:baseBytes], base); err != nil {
		fail("populate base arena: %v", err)
	}
	if err := p.WriteAt(pr.shadow[baseBytes:], huge); err != nil {
		fail("populate huge arena: %v", err)
	}
	return pr
}

// equalWithRetry compares child against parent over both arenas,
// retrying when the comparison itself trips an injected fault (the
// reads fault pages in through the same instrumented paths).
func equalWithRetry(parent, child *proc) error {
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		a, b := parent.p.Space(), child.p.Space()
		if err = core.EqualMemory(a, b, addr.NewRange(parent.base, baseBytes)); err == nil {
			err = core.EqualMemory(a, b, addr.NewRange(parent.huge, hugeBytes))
		}
		if err == nil || !tolerable(err) {
			return err
		}
	}
	return err
}

// vmstatValue parses one "name value" line out of /proc/odf/vmstat.
func vmstatValue(sys *odfork.System, name string) int64 {
	text, err := sys.Procfs("/proc/odf/vmstat")
	if err != nil {
		fail("vmstat: %v", err)
	}
	for _, line := range strings.Split(text, "\n") {
		if f := strings.Fields(line); len(f) == 2 && f[0] == name {
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				fail("vmstat %s: %v", name, err)
			}
			return v
		}
	}
	fail("vmstat has no %q line", name)
	return 0
}
