// Command odf-fuzz runs the AFL-style fork-server fuzzing campaign over
// the sqlike engine standalone, printing per-second statistics — the
// live view of the paper's Figure 9.
//
// Usage:
//
//	odf-fuzz [-mode classic|ondemand] [-items N] [-mem MiB] [-seconds S]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/fuzz"
	"repro/internal/apps/sqlike"
	"repro/internal/core"
	"repro/internal/kernel"
)

var (
	modeArg = flag.String("mode", "ondemand", "fork engine: classic|ondemand")
	items   = flag.Int("items", 60000, "rows in the initial database")
	memMiB  = flag.Uint64("mem", 256, "database arena size in MiB")
	seconds = flag.Int("seconds", 10, "campaign duration")
	seed    = flag.Int64("seed", 1, "mutation seed")
)

func main() {
	flag.Parse()
	var mode core.ForkMode
	switch *modeArg {
	case "classic":
		mode = core.ForkClassic
	case "ondemand":
		mode = core.ForkOnDemand
	default:
		fmt.Fprintf(os.Stderr, "odf-fuzz: unknown -mode %q\n", *modeArg)
		os.Exit(2)
	}

	k := kernel.New()
	fmt.Printf("odf-fuzz: loading %d rows into a %d MiB database...\n", *items, *memMiB)
	start := time.Now()
	f, err := fuzz.NewFuzzer(k, fuzz.Config{
		DB: sqlike.Config{
			ArenaBytes: *memMiB << 20,
			MaxItems:   uint64(*items) * 2,
			MaxTags:    uint64(*items)/50 + 16,
		},
		Items:    *items,
		NameLen:  24,
		TagEvery: 50,
		Mode:     mode,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "odf-fuzz:", err)
		os.Exit(1)
	}
	defer f.Close()
	fmt.Printf("fork server up in %v; fuzzing with %s for %ds\n",
		time.Since(start).Round(time.Millisecond), mode, *seconds)

	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	lastExecs := 0
	for time.Now().Before(deadline) {
		tick := time.Now().Add(time.Second)
		for time.Now().Before(tick) && time.Now().Before(deadline) {
			if err := f.RunOne(); err != nil {
				fmt.Fprintln(os.Stderr, "odf-fuzz:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("execs/s: %6d | total: %8d | edges: %4d | corpus: %4d\n",
			f.Execs-lastExecs, f.Execs, f.GlobalEdges(), f.CorpusSize())
		lastExecs = f.Execs
	}
	fmt.Printf("campaign done: %d executions, mean %.0f execs/s\n",
		f.Execs, f.Throughput.MeanRate())
}
