// Command odf-benchjson runs the hot-path benchmark matrix and emits
// the stable odf-bench/v1 JSON record, optionally comparing the fresh
// numbers against a committed baseline and failing on regression.
//
// Usage:
//
//	odf-benchjson -out bench_out.json                 # measure only
//	odf-benchjson -out bench_out.json \
//	    -compare BENCH_2026-08-08.json -threshold 0.05  # CI gate
//
// The gate exits 1 when any guarded metric (fork p50/p99, fault
// fast-path latency, COW faults/sec, allocs/op) regresses past the
// threshold after cross-machine calibration. See internal/bench.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		out       = flag.String("out", "bench_out.json", "path for the JSON result")
		iters     = flag.Int("iters", bench.DefaultIters, "fork invocations per (mode,size) cell")
		short     = flag.Bool("short", false, "small sizes only (64 MB), for quick CI runs")
		compare   = flag.String("compare", "", "baseline BENCH_*.json to gate against")
		threshold = flag.Float64("threshold", 0.05, "relative regression threshold")
		attempts  = flag.Int("attempts", 3, "gate measurement attempts before failing")
	)
	flag.Parse()

	cfg := bench.Config{
		Iters: *iters,
		Date:  time.Now().UTC().Format("2006-01-02"),
	}
	if *short {
		cfg.SizesMB = []int{64}
	}

	fmt.Fprintf(os.Stderr, "odf-benchjson: measuring (iters=%d, GOMAXPROCS=%d)...\n",
		cfg.Iters, runtime.GOMAXPROCS(0))
	res, err := bench.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
		os.Exit(2)
	}
	if err := res.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
		os.Exit(2)
	}
	for _, f := range res.Fork {
		fmt.Printf("fork %-8s %4d MB  p50 %10.0f ns  p99 %10.0f ns  %7.1f allocs/op\n",
			f.Mode, f.SizeMB, f.P50NS, f.P99NS, f.AllocsPerOp)
	}
	fmt.Printf("fault fastpath %.1f ns/op (%.2f allocs/op), COW %.0f faults/sec\n",
		res.Fault.FastPathNS, res.Fault.FaultAllocsPerOp, res.Fault.COWFaultsPerSec)
	fmt.Printf("calibration %.0f ns, result written to %s\n", res.CalibNS, *out)

	if *compare == "" {
		return
	}
	base, err := bench.Load(*compare)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
		os.Exit(2)
	}
	if *short {
		// A -short gate deliberately measures a size subset; restrict
		// the baseline to the same cells so Compare's missing-cell
		// check flags lost coverage, not the configured scope.
		kept := base.Fork[:0]
		for _, f := range base.Fork {
			for _, size := range cfg.SizesMB {
				if f.SizeMB == size {
					kept = append(kept, f)
					break
				}
			}
		}
		base.Fork = kept
	}
	// A genuine regression fails every attempt; a scheduler hiccup in
	// one measurement run does not. Only an all-attempts failure gates.
	var regs []bench.Regression
	for attempt := 1; ; attempt++ {
		regs = bench.Compare(base, res, *threshold)
		if len(regs) == 0 {
			fmt.Printf("gate PASS: no metric regressed more than %.0f%% vs %s\n", *threshold*100, *compare)
			return
		}
		if attempt >= *attempts {
			break
		}
		fmt.Fprintf(os.Stderr, "odf-benchjson: gate attempt %d/%d failed (%s), remeasuring...\n",
			attempt, *attempts, regs[0].Metric)
		if res, err = bench.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
			os.Exit(2)
		}
		if err := res.Save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
			os.Exit(2)
		}
	}
	fmt.Fprintf(os.Stderr, "gate FAIL vs %s (all %d attempts):\n", *compare, *attempts)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}
