// Command odf-benchjson runs the hot-path benchmark matrix and emits
// the stable odf-bench/v1 JSON record, optionally comparing the fresh
// numbers against a committed baseline and failing on regression.
//
// Usage:
//
//	odf-benchjson -out bench_out.json                 # measure only
//	odf-benchjson -out bench_out.json \
//	    -compare BENCH_2026-08-08.json -threshold 0.05  # baseline gate
//	odf-benchjson -short -ab -out bench_out.json \
//	    -compare BENCH_2026-08-08.json -threshold 0.05  # drift-proof CI gate
//
// Baseline mode exits 1 when any guarded metric (fork p50/p99, fault
// fast-path latency, COW faults/sec, allocs/op) regresses past the
// threshold after cross-machine calibration. -ab instead measures the
// matrix as an interleaved split-half experiment on HEAD: rounds
// alternate between two cells A and B, and the gate requires A and B
// to agree within the threshold in both directions — proof the runner
// can resolve a regression of that size. Host drift cannot fail an -ab
// gate because both halves drift together; any -compare baseline is
// reported advisorily (deltas printed, exit status unaffected). See
// internal/bench.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		out       = flag.String("out", "bench_out.json", "path for the JSON result")
		iters     = flag.Int("iters", bench.DefaultIters, "fork invocations per (mode,size) cell")
		short     = flag.Bool("short", false, "small sizes only (64 MB), for quick CI runs")
		compare   = flag.String("compare", "", "baseline BENCH_*.json to gate against (advisory with -ab)")
		threshold = flag.Float64("threshold", 0.05, "relative regression threshold")
		attempts  = flag.Int("attempts", 3, "gate measurement attempts before failing")
		ab        = flag.Bool("ab", false, "interleaved A/B split-half self-gate instead of the baseline gate")
	)
	flag.Parse()

	cfg := bench.Config{
		Iters: *iters,
		Date:  time.Now().UTC().Format("2006-01-02"),
	}
	if *short {
		cfg.SizesMB = []int{64}
	}

	if *ab {
		runAB(cfg, *out, *compare, *threshold, *attempts)
		return
	}

	fmt.Fprintf(os.Stderr, "odf-benchjson: measuring (iters=%d, GOMAXPROCS=%d)...\n",
		cfg.Iters, runtime.GOMAXPROCS(0))
	res, err := bench.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
		os.Exit(2)
	}
	if err := res.Save(*out); err != nil {
		fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
		os.Exit(2)
	}
	report(res, *out)

	if *compare == "" {
		return
	}
	base := loadBaseline(*compare, cfg)
	// A genuine regression fails every attempt; a scheduler hiccup in
	// one measurement run does not. Only an all-attempts failure gates.
	var regs []bench.Regression
	for attempt := 1; ; attempt++ {
		regs = bench.Compare(base, res, *threshold)
		if len(regs) == 0 {
			fmt.Printf("gate PASS: no metric regressed more than %.0f%% vs %s\n", *threshold*100, *compare)
			return
		}
		if attempt >= *attempts {
			break
		}
		fmt.Fprintf(os.Stderr, "odf-benchjson: gate attempt %d/%d failed (%s), remeasuring...\n",
			attempt, *attempts, regs[0].Metric)
		if res, err = bench.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
			os.Exit(2)
		}
		if err := res.Save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
			os.Exit(2)
		}
	}
	fmt.Fprintf(os.Stderr, "gate FAIL vs %s (all %d attempts):\n", *compare, *attempts)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}

// runAB is the drift-proof gate: interleaved split-half measurement of
// HEAD, requiring the two halves to agree within the threshold in both
// directions. The A half (the fresh same-host baseline) is what gets
// written to -out.
func runAB(cfg bench.Config, out, compare string, threshold float64, attempts int) {
	fmt.Fprintf(os.Stderr, "odf-benchjson: A/B split-half measurement (iters=%d per half-round, GOMAXPROCS=%d)...\n",
		cfg.Iters, runtime.GOMAXPROCS(0))
	var a, b *bench.Result
	var regs []bench.Regression
	for attempt := 1; ; attempt++ {
		var err error
		if a, b, err = bench.RunAB(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
			os.Exit(2)
		}
		if err := a.Save(out); err != nil {
			fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
			os.Exit(2)
		}
		// Symmetric comparison: a half that "improved" past the
		// threshold is the same measurement instability as one that
		// regressed.
		regs = append(bench.Compare(a, b, threshold), bench.Compare(b, a, threshold)...)
		if len(regs) == 0 {
			break
		}
		if attempt >= attempts {
			fmt.Fprintf(os.Stderr, "gate FAIL: A/B halves of the same HEAD disagree past %.0f%% (all %d attempts):\n",
				threshold*100, attempts)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "odf-benchjson: A/B attempt %d/%d unstable (%s), remeasuring...\n",
			attempt, attempts, regs[0].Metric)
	}
	report(a, out)
	fmt.Printf("gate PASS: A/B halves agree within %.0f%% on every guarded metric\n", threshold*100)

	if compare == "" {
		return
	}
	// Advisory only: committed baselines were measured on other
	// hardware; their drift must not fail the build.
	base := loadBaseline(compare, cfg)
	if adv := bench.Compare(base, a, threshold); len(adv) == 0 {
		fmt.Printf("advisory: no drift vs committed %s\n", compare)
	} else {
		fmt.Printf("advisory: %d metric(s) drifted vs committed %s (not gating):\n", len(adv), compare)
		for _, r := range adv {
			fmt.Printf("  %s\n", r)
		}
	}
}

// loadBaseline reads a committed baseline, restricted to the cells the
// current config measures so Compare's missing-cell check flags lost
// coverage rather than the configured scope.
func loadBaseline(path string, cfg bench.Config) *bench.Result {
	base, err := bench.Load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odf-benchjson: %v\n", err)
		os.Exit(2)
	}
	if len(cfg.SizesMB) == 0 {
		return base
	}
	kept := base.Fork[:0]
	for _, f := range base.Fork {
		for _, size := range cfg.SizesMB {
			if f.SizeMB == size {
				kept = append(kept, f)
				break
			}
		}
	}
	base.Fork = kept
	return base
}

func report(res *bench.Result, out string) {
	for _, f := range res.Fork {
		fmt.Printf("fork %-8s %4d MB  p50 %10.0f ns  p99 %10.0f ns  %7.1f allocs/op\n",
			f.Mode, f.SizeMB, f.P50NS, f.P99NS, f.AllocsPerOp)
	}
	fmt.Printf("fault fastpath %.1f ns/op (%.2f allocs/op), COW %.0f faults/sec\n",
		res.Fault.FastPathNS, res.Fault.FaultAllocsPerOp, res.Fault.COWFaultsPerSec)
	fmt.Printf("calibration %.0f ns, result written to %s\n", res.CalibNS, out)
}
