// Command odf-slo runs the tail-latency SLO harness: it boots an app
// (kvstore or httpd) behind a real TCP listener, calibrates socket
// capacity, then offers fixed isochronous load while periodic
// snapshots fork the serving process, and reports p50/p99/p999/max
// split into fork-coincident and quiescent samples — the paper's
// Redis snapshot-while-serving figure as a reproducible experiment.
//
// Usage:
//
//	odf-slo [-app kv|httpd] [-mode both|classic|ondemand]
//	        [-conns N] [-ratios 0.3,0.6] [-n reqs] [-snap-every dur]
//	        [-short] [-out file.json]
//	odf-slo -check file.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/slo"
)

var (
	appArg    = flag.String("app", "kv", "serving app: kv|httpd")
	modeArg   = flag.String("mode", "both", "fork engines to sweep: both|classic|ondemand")
	conns     = flag.Int("conns", 4, "concurrent client connections")
	ratiosArg = flag.String("ratios", "0.6", "offered load as comma-separated fractions of calibrated capacity")
	requests  = flag.Int("n", 4000, "measured requests per run")
	snapEvery = flag.Duration("snap-every", 40*time.Millisecond, "snapshot fork cadence during measured runs")
	trials    = flag.Int("trials", 3, "measured phases per cell; lowest fork-coincident p99 is reported")
	arenaMiB  = flag.Int("mem", 256, "kv arena MiB")
	short     = flag.Bool("short", false, "small fast sweep (CI preset)")
	out       = flag.String("out", "", "write odf-slo/v1 JSON here")
	checkArg  = flag.String("check", "", "validate an odf-slo/v1 JSON file and exit")
)

func main() {
	flag.Parse()
	if *checkArg != "" {
		res, err := slo.Load(*checkArg)
		if err == nil {
			err = slo.Check(res)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "odf-slo: check %s: %v\n", *checkArg, err)
			os.Exit(1)
		}
		fmt.Printf("odf-slo: %s: %d runs OK\n", *checkArg, len(res.Runs))
		return
	}

	var modes []core.ForkMode
	switch *modeArg {
	case "both":
		modes = []core.ForkMode{core.ForkClassic, core.ForkOnDemand}
	case "classic":
		modes = []core.ForkMode{core.ForkClassic}
	case "ondemand":
		modes = []core.ForkMode{core.ForkOnDemand}
	default:
		fmt.Fprintf(os.Stderr, "odf-slo: unknown -mode %q\n", *modeArg)
		os.Exit(2)
	}
	var ratios []float64
	for _, f := range strings.Split(*ratiosArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "odf-slo: bad -ratios entry %q\n", f)
			os.Exit(2)
		}
		ratios = append(ratios, v)
	}

	cfg := slo.HarnessConfig{
		App:           *appArg,
		Modes:         modes,
		Conns:         *conns,
		LoadRatios:    ratios,
		Requests:      *requests,
		Trials:        *trials,
		SnapshotEvery: *snapEvery,
		ArenaMiB:      *arenaMiB,
	}
	// The arena is NOT shrunk in -short: the classic fork pause scales
	// with it, and that pause over the noise floor is the experiment.
	if *short {
		cfg.Conns = 2
		cfg.Requests = 4000
		cfg.CalibrateN = 1000
	}

	res, err := slo.RunHarness(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odf-slo: %v\n", err)
		os.Exit(1)
	}
	if err := slo.Check(res); err != nil {
		fmt.Fprintf(os.Stderr, "odf-slo: self-check failed: %v\n", err)
		os.Exit(1)
	}
	printResult(res)
	if *out != "" {
		if err := res.Save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "odf-slo: save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
	}
}

func printResult(r *slo.Result) {
	fmt.Printf("SLO sweep · app=%s protocol=%s conns=%d\n\n", r.App, r.Protocol, r.Conns)
	fmt.Printf("%-16s %8s %8s %9s %9s %9s %10s %7s %16s %13s\n",
		"mode", "offered", "achieved", "p50us", "p99us", "p999us", "maxus", "forks", "fork-coinc p99", "quiesc p99")
	for _, run := range r.Runs {
		fmt.Printf("%-16s %8.0f %8.0f %9.1f %9.1f %9.1f %10.1f %7d %13.1fus(%d) %10.1fus\n",
			run.Mode, run.OfferedRPS, run.AchievedRPS,
			run.Latency.P50US, run.Latency.P99US, run.Latency.P999US, run.Latency.MaxUS,
			run.Snapshots, run.ForkCoincident.P99US, run.ForkCoincident.Count,
			run.Quiescent.P99US)
	}
}
