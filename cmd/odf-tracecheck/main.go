// Command odf-tracecheck validates a Chrome trace-event JSON file as
// produced by odf-bench -trace-out (or System.WriteTrace): well-formed
// JSON with the expected envelope, non-negative monotonic timestamps,
// durations on every complete event, and balanced B/E nesting per
// thread. CI runs it against the `make trace` artifact; run it by hand
// before loading a trace into ui.perfetto.dev.
//
// Usage:
//
//	odf-tracecheck <trace.json>
//
// Exits 0 and reports the event count when the file validates, 1 with
// the first violation otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: odf-tracecheck <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odf-tracecheck: %v\n", err)
		os.Exit(1)
	}
	if err := trace.ValidateChrome(data); err != nil {
		fmt.Fprintf(os.Stderr, "odf-tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "odf-tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid Chrome trace, %d events\n", path, len(doc.TraceEvents))
}
