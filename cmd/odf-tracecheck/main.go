// Command odf-tracecheck validates a Chrome trace-event JSON file as
// produced by odf-bench -trace-out (or System.WriteTrace): well-formed
// JSON with the expected envelope, non-negative monotonic timestamps,
// durations on every complete event, and balanced B/E nesting per
// thread. On top of the structural pass it cross-checks the
// observability layer: request spans ("request") must be complete
// events carrying a request id, alert instants ("alert.*") must name a
// known watchdog rule, every request id shared by two or more events
// must be bound by exactly one flow (ph "s" ... "f" with id = the
// request id), and every exemplar under metadata.exemplars must
// resolve to an event tagged with its request id. CI runs it against
// the `make trace` artifact; run it by hand before loading a trace
// into ui.perfetto.dev.
//
// Usage:
//
//	odf-tracecheck <trace.json>
//
// Exits 0 and reports event/flow/exemplar counts when the file
// validates, 1 with the first violation otherwise.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

// checkEvent is the slice of a trace event the observability
// cross-check needs.
type checkEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Dur  *float64 `json:"dur"`
	ID   *uint64  `json:"id"`
	Args struct {
		Req uint64 `json:"req"`
	} `json:"args"`
}

type checkDoc struct {
	TraceEvents []checkEvent `json:"traceEvents"`
	Metadata    struct {
		Exemplars []trace.ExemplarRef `json:"exemplars"`
	} `json:"metadata"`
}

// knownAlerts mirrors trace.AlertName's range so a renamed or bogus
// alert code shows up here before it confuses a dashboard.
var knownAlerts = map[string]bool{
	"fork_p99_breach":  true,
	"admit_wait_spike": true,
	"swap_degraded":    true,
	"oom_stall":        true,
}

// stats is what a clean run reports.
type stats struct {
	events, requests, flows, alerts, exemplars int
}

// checkObservability runs the request/flow/alert/exemplar
// cross-checks on an already structurally-valid document.
func checkObservability(doc *checkDoc) (stats, error) {
	var st stats
	st.events = len(doc.TraceEvents)

	// Pass 1: request ids on events, flow endpoints, span/instant shape.
	reqEvents := map[uint64]int{} // request id -> tagged event count
	flowStarts := map[uint64]int{}
	flowEnds := map[uint64]int{}
	for i, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			flowStarts[*e.ID]++
			continue
		case "f":
			flowEnds[*e.ID]++
			continue
		case "t", "M":
			continue
		}
		if e.Args.Req != 0 {
			reqEvents[e.Args.Req]++
		}
		if e.Name == "request" {
			st.requests++
			if e.Ph != "X" || e.Dur == nil {
				return st, fmt.Errorf("event %d: request span is ph %q, want a complete event", i, e.Ph)
			}
			if e.Args.Req == 0 {
				return st, fmt.Errorf("event %d: request span carries no request id", i)
			}
		}
		if rest, ok := strings.CutPrefix(e.Name, "alert."); ok {
			st.alerts++
			if e.Ph != "i" {
				return st, fmt.Errorf("event %d: alert %q is ph %q, want an instant", i, e.Name, e.Ph)
			}
			if !knownAlerts[rest] {
				return st, fmt.Errorf("event %d: unknown alert rule %q", i, rest)
			}
		}
	}

	// Pass 2: every multi-event request chain is bound by exactly one
	// flow, and no flow exists without a chain to bind.
	for req, n := range reqEvents {
		if n < 2 {
			continue
		}
		if flowStarts[req] != 1 || flowEnds[req] != 1 {
			return st, fmt.Errorf("request %d spans %d events but has %d flow start(s) and %d finish(es), want 1 each",
				req, n, flowStarts[req], flowEnds[req])
		}
		st.flows++
	}
	for id := range flowStarts {
		if reqEvents[id] < 2 {
			return st, fmt.Errorf("flow id %d binds %d tagged event(s); flows require a chain of at least 2", id, reqEvents[id])
		}
	}

	// Pass 3: exemplars point into the trace. A worst-N observation
	// that references a request id absent from the window means the
	// exposition and the flight recorder have drifted apart.
	for i, ex := range doc.Metadata.Exemplars {
		if ex.Series == "" {
			return st, fmt.Errorf("exemplar %d: empty series name", i)
		}
		if ex.Req == 0 {
			return st, fmt.Errorf("exemplar %d (%s): zero request id", i, ex.Series)
		}
		if reqEvents[ex.Req] == 0 {
			return st, fmt.Errorf("exemplar %d (%s, req %d): request id resolves to no trace event",
				i, ex.Series, ex.Req)
		}
		st.exemplars++
	}
	return st, nil
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: odf-tracecheck <trace.json>")
		os.Exit(2)
	}
	path := os.Args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odf-tracecheck: %v\n", err)
		os.Exit(1)
	}
	if err := trace.ValidateChrome(data); err != nil {
		fmt.Fprintf(os.Stderr, "odf-tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	var doc checkDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(os.Stderr, "odf-tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	st, err := checkObservability(&doc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "odf-tracecheck: %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid Chrome trace, %d events (%d request spans, %d flows, %d alerts, %d exemplars resolved)\n",
		path, st.events, st.requests, st.flows, st.alerts, st.exemplars)
}
