package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// emit builds a real flight-recorder document: a request span, a fork
// and a fault on the same request id, plus an alert instant, exported
// with exemplar metadata.
func emit(t *testing.T, exemplars []trace.ExemplarRef) []byte {
	t.Helper()
	tr := trace.New(64)
	tr.SetEnabled(true)
	start := time.Now()
	tr.SpanReq(trace.KindFork, trace.StageNone, trace.ActorApp, start, 0, 0, 7)
	tr.SpanReq(trace.KindFault, trace.StageNone, trace.ActorApp, start, 0, 0, 7)
	tr.SpanReq(trace.KindRequest, trace.StageNone, trace.ActorApp, start, 1, 0, 7)
	tr.Instant(trace.KindAlert, trace.StageNone, trace.ActorApp, trace.AlertForkP99, 123)
	var buf bytes.Buffer
	extra := trace.ChromeExtra{Exemplars: exemplars}
	if err := trace.WriteChromeExtra(&buf, tr.Snapshot(), &extra); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func check(t *testing.T, data []byte) (stats, error) {
	t.Helper()
	if err := trace.ValidateChrome(data); err != nil {
		t.Fatalf("structurally invalid fixture: %v", err)
	}
	var doc checkDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	return checkObservability(&doc)
}

func TestCheckObservabilityClean(t *testing.T) {
	data := emit(t, []trace.ExemplarRef{{Series: "fork.ondemand.latency", NS: 55_000, Req: 7}})
	st, err := check(t, data)
	if err != nil {
		t.Fatal(err)
	}
	if st.requests != 1 || st.flows != 1 || st.alerts != 1 || st.exemplars != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCheckObservabilityUnresolvedExemplar(t *testing.T) {
	data := emit(t, []trace.ExemplarRef{{Series: "fork.ondemand.latency", NS: 55_000, Req: 999}})
	if _, err := check(t, data); err == nil || !strings.Contains(err.Error(), "resolves to no trace event") {
		t.Fatalf("unresolved exemplar accepted: %v", err)
	}
}

func TestCheckObservabilityUnknownAlert(t *testing.T) {
	data := emit(t, nil)
	data = bytes.Replace(data, []byte("alert.fork_p99_breach"), []byte("alert.mystery_rule"), 1)
	if _, err := check(t, data); err == nil || !strings.Contains(err.Error(), "unknown alert rule") {
		t.Fatalf("unknown alert accepted: %v", err)
	}
}

func TestCheckObservabilityOrphanFlow(t *testing.T) {
	// A hand-built doc with a flow whose id tags only one event.
	doc := `{"traceEvents":[
	 {"name":"request","ph":"X","ts":1,"dur":2,"pid":1,"tid":1,"args":{"req":5}},
	 {"name":"req","ph":"s","ts":1,"pid":1,"tid":1,"id":5,"bp":"e"},
	 {"name":"req","ph":"f","ts":2,"pid":1,"tid":1,"id":5,"bp":"e"}
	]}`
	var d checkDoc
	if err := json.Unmarshal([]byte(doc), &d); err != nil {
		t.Fatal(err)
	}
	if _, err := checkObservability(&d); err == nil || !strings.Contains(err.Error(), "flows require a chain") {
		t.Fatalf("orphan flow accepted: %v", err)
	}
}
