// Command odf-serverless is the multi-tenant serverless daemon: one
// simulated kernel hosts N tenants, each with a frame quota and a warm
// kv lineage, and every request forks the tenant's warm process and is
// served from the clone — the paper's microsecond fork as the cold
// start, multiplexed across isolation domains over the TCP serving
// tier (TenantBinaryCodec carries the tenant id on the wire).
//
// The headline experiment boots 8 tenants whose quotas sum to 50% of
// the machine's frames and makes one of them a noisy neighbor with a
// working set far over its quota. The control plane must contain the
// blast radius: the noisy tenant's forks queue (and time out with
// ErrQuotaExceeded), its frames are reclaimed first (fair-share
// victim selection), and the well-behaved tenants see zero ErrNoMem
// with clone fork p99 within 2x of a single-tenant baseline.
//
// Checkpoint/restore closes the daemon-restart gap: -mode checkpoint
// writes each tenant's warm lineage to a durable on-disk snapshot
// (plus a JSON manifest of the store's Go-side layout), and -mode
// restore boots a fresh kernel, lazily fork-from-disk restores every
// tenant, serves clone-per-request invocations over the TCP tier, and
// byte-verifies every warm key against the pre-checkpoint content.
//
// Usage:
//
//	odf-serverless [-mode experiment|soak|serve] [-tenants N]
//	               [-quota frames] [-noisy-mult M] [-n reqs]
//	               [-noisy-n reqs] [-fork classic|ondemand]
//	               [-listen addr] [-out file.json]
//	odf-serverless -mode checkpoint -ckpt-dir D [-tenants N]
//	odf-serverless -mode restore -ckpt-dir D
//	odf-serverless -check file.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/apps/kvstore"
	"repro/internal/apps/serve"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/tenant"
)

var (
	modeArg    = flag.String("mode", "experiment", "experiment|soak|serve")
	tenants    = flag.Int("tenants", 8, "tenant count (tenant 0 is the noisy neighbor)")
	quota      = flag.Int64("quota", 512, "per-tenant frame quota")
	noisyMult  = flag.Int64("noisy-mult", 8, "noisy tenant's working set as a multiple of its quota")
	nReqs      = flag.Int("n", 150, "invocations per well-behaved tenant")
	noisyReqs  = flag.Int("noisy-n", 30, "invocations by the noisy tenant")
	forkArg    = flag.String("fork", "ondemand", "fork engine for clones: classic|ondemand")
	listenArg  = flag.String("listen", "", "serve mode: listen address (default ephemeral)")
	admitT     = flag.Duration("admit-timeout", 5*time.Millisecond, "fork admission timeout")
	seed       = flag.Int64("seed", 1, "request-generator seed")
	out        = flag.String("out", "", "write the odf-serverless/v1 JSON record here")
	checkArg   = flag.String("check", "", "validate an odf-serverless/v1 JSON file and exit")
	keysPerTen = flag.Int("keys", 256, "warm keys per tenant")
	obsArg     = flag.String("obs", "", "observability HTTP listen address (empty = off; e.g. 127.0.0.1:9180)")
	ckptDir    = flag.String("ckpt-dir", "", "durable checkpoint directory (-mode checkpoint|restore)")
)

// Result is the odf-serverless/v1 JSON record.
type Result struct {
	Schema            string       `json:"schema"`
	Mode              string       `json:"fork_mode"`
	FrameLimit        int64        `json:"frame_limit"`
	QuotaFrames       int64        `json:"quota_frames"`
	Tenants           int          `json:"tenants"`
	BaselineForkP99MS float64      `json:"baseline_fork_p99_ms"`
	TenantRows        []TenantRow  `json:"tenant_rows"`
	Checks            []CheckEntry `json:"checks"`
}

// TenantRow is one tenant's outcome.
type TenantRow struct {
	Name            string  `json:"name"`
	Noisy           bool    `json:"noisy"`
	QuotaFrames     int64   `json:"quota_frames"`
	PeakFrames      int64   `json:"peak_frames"`
	ReclaimedFrames uint64  `json:"reclaimed_frames"`
	ForksAdmitted   uint64  `json:"forks_admitted"`
	ForksQueued     uint64  `json:"forks_queued"`
	ForksTimedOut   uint64  `json:"forks_timedout"`
	Invocations     uint64  `json:"invocations"`
	OKResponses     uint64  `json:"ok_responses"`
	QuotaErrs       uint64  `json:"quota_errs"`
	NoMemErrs       uint64  `json:"nomem_errs"`
	OtherErrs       uint64  `json:"other_errs"`
	ForkP50MS       float64 `json:"fork_p50_ms"`
	ForkP99MS       float64 `json:"fork_p99_ms"`
}

// CheckEntry is one acceptance check's outcome.
type CheckEntry struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// forkP99Floor absorbs host-scheduler noise in the p99 comparison:
// sub-millisecond clone forks can jitter past 2x baseline on a busy
// runner without any real regression.
const forkP99FloorMS = 2.0

func main() {
	flag.Parse()
	if *checkArg != "" {
		if err := checkFile(*checkArg); err != nil {
			fmt.Fprintf(os.Stderr, "odf-serverless: check %s: %v\n", *checkArg, err)
			os.Exit(1)
		}
		fmt.Printf("odf-serverless: %s OK\n", *checkArg)
		return
	}
	var mode core.ForkMode
	switch *forkArg {
	case "classic":
		mode = core.ForkClassic
	case "ondemand":
		mode = core.ForkOnDemand
	default:
		fmt.Fprintf(os.Stderr, "odf-serverless: unknown -fork %q\n", *forkArg)
		os.Exit(2)
	}

	switch *modeArg {
	case "serve":
		if err := runServe(mode); err != nil {
			fmt.Fprintf(os.Stderr, "odf-serverless: %v\n", err)
			os.Exit(1)
		}
	case "soak", "experiment":
		if err := runExperiment(mode, *modeArg == "soak"); err != nil {
			fmt.Fprintf(os.Stderr, "odf-serverless: %v\n", err)
			os.Exit(1)
		}
	case "checkpoint":
		if err := runCheckpoint(mode); err != nil {
			fmt.Fprintf(os.Stderr, "odf-serverless: %v\n", err)
			os.Exit(1)
		}
	case "restore":
		if err := runRestore(mode); err != nil {
			fmt.Fprintf(os.Stderr, "odf-serverless: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "odf-serverless: unknown -mode %q\n", *modeArg)
		os.Exit(2)
	}
}

// cluster is one booted multi-tenant kernel behind a TCP listener.
type cluster struct {
	k    *kernel.Kernel
	d    *serve.Dispatcher
	srv  *serve.Server
	tens []*tenant.Tenant
	ids  []uint32
	apps []*serve.KVApp
}

const frameSize = 4096

// boot builds nTenants warm kv lineages (tenant 0 noisy when
// noisyMult > 1) under a frame limit of 2*nTenants*quota — the 50%
// aggregate budget — and starts the TCP tier.
func boot(mode core.ForkMode, nTenants int, quotaFrames, noisyMult int64, addr string) (*cluster, error) {
	k := kernel.New()
	k.SetSwapEnabled(true)
	limit := 2 * int64(nTenants) * quotaFrames
	k.Allocator().SetLimit(limit)
	// Aggressive watermarks: the noisy working set pushes free frames
	// below low, so kswapd must pick victims while the machine is far
	// from OOM.
	if err := k.SetSwapWatermarks(3*limit/8, limit/2); err != nil {
		return nil, err
	}
	k.Tenants().SetAdmitTimeout(*admitT)

	c := &cluster{k: k, d: serve.NewDispatcher()}
	for i := 0; i < nTenants; i++ {
		name := fmt.Sprintf("fn-%02d", i)
		tn, err := k.Tenants().Create(name, quotaFrames)
		if err != nil {
			return nil, err
		}
		arenaFrames := quotaFrames / 2
		if i == 0 && noisyMult > 1 {
			arenaFrames = noisyMult * quotaFrames
			// The arena is fully populated at creation; cap it at half
			// the machine so small -tenants configurations don't OOM
			// before reclaim can engage. Still far over quota — noisy.
			if arenaFrames > limit/2 {
				arenaFrames = limit / 2
			}
		}
		app, err := serve.NewKV(k, serve.KVConfig{
			Config: kvstore.Config{
				ArenaBytes: uint64(arenaFrames) * frameSize,
				TableCap:   1 << 12,
				Mode:       mode,
				Tenant:     tn,
			},
			Keys:     *keysPerTen,
			ValueLen: 64,
		})
		if err != nil {
			return nil, err
		}
		if err := app.Warm(); err != nil {
			return nil, err
		}
		c.tens = append(c.tens, tn)
		c.ids = append(c.ids, uint32(tn.TenantID()))
		c.apps = append(c.apps, app)
		c.d.AddLane(uint32(tn.TenantID()), app, true)
	}
	srv, err := serve.Listen(c.d, serve.TenantBinaryCodec{}, addr)
	if err != nil {
		return nil, err
	}
	c.srv = srv
	return c, nil
}

func (c *cluster) close() {
	c.srv.Close()
	c.d.Close()
	c.k.SetSwapEnabled(false)
	c.k.Allocator().SetLimit(0)
}

// startObs optionally starts the observability listener for c: the
// flight recorder turns on, the dispatcher starts minting request
// correlation ids, and the HTTP endpoint serves OpenMetrics, trace
// downloads, health, and pprof.
func startObs(c *cluster, addr string) (*obs.Server, error) {
	if addr == "" {
		return nil, nil
	}
	c.k.SetTraceEnabled(true)
	c.d.SetObserver(serve.NewObs(c.k.Tracer()))
	srv, err := obs.Listen(c.k, addr, obs.WatchdogConfig{})
	if err != nil {
		return nil, err
	}
	fmt.Printf("odf-serverless: observability on http://%s (/metrics /metrics.json /trace /health /procfs/* /debug/pprof/)\n", srv.Addr())
	return srv, nil
}

func runServe(mode core.ForkMode) error {
	c, err := boot(mode, *tenants, *quota, *noisyMult, *listenArg)
	if err != nil {
		return err
	}
	if _, err := startObs(c, *obsArg); err != nil {
		return err
	}
	fmt.Printf("odf-serverless: %d tenants warm, quota %d frames each, listening on %s\n",
		len(c.tens), *quota, c.srv.Addr())
	fmt.Printf("odf-serverless: wire protocol tenant-binary (u32le len | u32le tenant | payload); tenant ids %v\n", c.ids)
	select {} // serve until killed
}

// drive sends n GET invocations for tenant id over its own connection,
// classifying every response.
type driveStats struct {
	ok, quotaErrs, noMemErrs, otherErrs uint64
}

func drive(addrStr string, id uint32, n int, rng *rand.Rand) (driveStats, error) {
	var st driveStats
	conn, err := net.Dial("tcp", addrStr)
	if err != nil {
		return st, err
	}
	defer conn.Close()
	br := serve.NewReader(conn)
	bw := serve.NewWriter(conn)
	cd := serve.TenantBinaryCodec{Tenant: id}
	for i := 0; i < n; i++ {
		req := serve.EncodeGet(kvstore.Key(rng.Intn(*keysPerTen)))
		if err := cd.WriteRequest(bw, req); err != nil {
			return st, err
		}
		if err := bw.Flush(); err != nil {
			return st, err
		}
		resp, flags, err := cd.ReadResponse(br)
		if err != nil {
			return st, err
		}
		switch {
		case flags&serve.FlagAppError == 0:
			st.ok++
		case strings.Contains(string(resp), "quota"):
			st.quotaErrs++
		case strings.Contains(string(resp), "out of memory"):
			st.noMemErrs++
		default:
			st.otherErrs++
		}
	}
	return st, nil
}

// manifest is the odf-ckpt-manifest/v1 sidecar written next to each
// tenant's snapshot: everything -mode restore needs to rebuild the
// serving store around the restored process image.
type manifest struct {
	Schema   string         `json:"schema"`
	Tenant   string         `json:"tenant"`
	Quota    int64          `json:"quota_frames"`
	Ckpt     string         `json:"ckpt"` // snapshot file, relative to the manifest
	Keys     int            `json:"keys"`
	ValueLen int            `json:"value_len"`
	Layout   kvstore.Layout `json:"layout"`
}

const manifestSchema = "odf-ckpt-manifest/v1"

// markerKey is a per-tenant sentinel written immediately before the
// checkpoint; restore verifying it proves each tenant got its own
// image back, not a neighbor's.
var markerKey = []byte("tenant-marker")

// runCheckpoint warms the fleet, then writes one durable snapshot +
// manifest per tenant into -ckpt-dir.
func runCheckpoint(mode core.ForkMode) error {
	if *ckptDir == "" {
		return fmt.Errorf("-mode checkpoint requires -ckpt-dir")
	}
	if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
		return err
	}
	c, err := boot(mode, *tenants, *quota, 1, "")
	if err != nil {
		return err
	}
	defer c.close()
	var pages, bytesOut uint64
	for i, tn := range c.tens {
		st := c.apps[i].Store()
		name := tn.Stats().Name
		if _, err := st.Set(markerKey, []byte(name)); err != nil {
			return fmt.Errorf("mark %s: %w", name, err)
		}
		path := filepath.Join(*ckptDir, name+".ckpt")
		d, err := st.Process().CheckpointTo(path)
		if err != nil {
			return fmt.Errorf("checkpoint %s: %w", name, err)
		}
		m := manifest{
			Schema:   manifestSchema,
			Tenant:   name,
			Quota:    tn.Stats().QuotaFrames,
			Ckpt:     name + ".ckpt",
			Keys:     *keysPerTen,
			ValueLen: 64,
			Layout:   st.Layout(),
		}
		raw, err := json.MarshalIndent(&m, "", "  ")
		if err == nil {
			err = os.WriteFile(filepath.Join(*ckptDir, name+".json"), append(raw, '\n'), 0o644)
		}
		pages += d.Pages()
		bytesOut += d.Bytes()
		d.Release()
		if err != nil {
			return fmt.Errorf("manifest %s: %w", name, err)
		}
	}
	fmt.Printf("odf-serverless checkpoint: %d tenants -> %s (%d page records, %d bytes)\n",
		len(c.tens), *ckptDir, pages, bytesOut)
	return nil
}

// runRestore boots a fresh kernel (the restarted daemon), lazily
// restores every checkpointed tenant, serves clone-per-request GETs
// over the TCP tier, and byte-verifies the warm content.
func runRestore(mode core.ForkMode) error {
	if *ckptDir == "" {
		return fmt.Errorf("-mode restore requires -ckpt-dir")
	}
	ents, err := os.ReadDir(*ckptDir)
	if err != nil {
		return err
	}
	var ms []manifest
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(*ckptDir, e.Name()))
		if err != nil {
			return err
		}
		var m manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		if m.Schema != manifestSchema {
			return fmt.Errorf("%s: schema %q, want %s", e.Name(), m.Schema, manifestSchema)
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return fmt.Errorf("no %s manifests in %s", manifestSchema, *ckptDir)
	}

	k := kernel.New()
	k.Tenants().SetAdmitTimeout(*admitT)
	d := serve.NewDispatcher()
	var ids []uint32
	for _, m := range ms {
		tn, err := k.Tenants().Create(m.Tenant, m.Quota)
		if err != nil {
			return err
		}
		p, err := k.RestoreFrom(filepath.Join(*ckptDir, m.Ckpt), kernel.WithRestoreTenant(tn))
		if err != nil {
			return fmt.Errorf("restore %s: %w", m.Tenant, err)
		}
		st, err := kvstore.Adopt(k, p, m.Layout, kvstore.Config{Mode: mode, Tenant: tn})
		if err != nil {
			return fmt.Errorf("adopt %s: %w", m.Tenant, err)
		}
		app := serve.AdoptKV(st, serve.KVConfig{
			Config: kvstore.Config{Mode: mode, Tenant: tn},
			Keys:   m.Keys, ValueLen: m.ValueLen,
		})
		ids = append(ids, uint32(tn.TenantID()))
		d.AddLane(uint32(tn.TenantID()), app, true)
	}
	srv, err := serve.Listen(d, serve.TenantBinaryCodec{}, *listenArg)
	if err != nil {
		return err
	}
	defer d.Close()
	defer srv.Close()

	// Verify over the wire: every invocation is a fork of the restored
	// image, every GET faults its pages from disk on first touch.
	verified := 0
	for i, m := range ms {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			return err
		}
		br, bw := serve.NewReader(conn), serve.NewWriter(conn)
		cd := serve.TenantBinaryCodec{Tenant: ids[i]}
		get := func(key []byte) ([]byte, error) {
			if err := cd.WriteRequest(bw, serve.EncodeGet(key)); err != nil {
				return nil, err
			}
			if err := bw.Flush(); err != nil {
				return nil, err
			}
			resp, flags, err := cd.ReadResponse(br)
			if err != nil {
				return nil, err
			}
			if flags&serve.FlagAppError != 0 {
				return nil, fmt.Errorf("app error: %s", resp)
			}
			status, val, err := serve.DecodeKVResponse(resp)
			if err != nil {
				return nil, err
			}
			if status != serve.StatusOK {
				return nil, fmt.Errorf("status %d (miss)", status)
			}
			return val, nil
		}
		marker, err := get(markerKey)
		if err != nil {
			conn.Close()
			return fmt.Errorf("%s: marker: %w", m.Tenant, err)
		}
		if string(marker) != m.Tenant {
			conn.Close()
			return fmt.Errorf("%s: marker %q — wrong tenant image", m.Tenant, marker)
		}
		want := make([]byte, m.ValueLen)
		for j := range want {
			want[j] = byte(j)
		}
		for ki := 0; ki < m.Keys; ki++ {
			val, err := get(kvstore.Key(ki))
			if err != nil {
				conn.Close()
				return fmt.Errorf("%s: key %d: %w", m.Tenant, ki, err)
			}
			if !bytes.Equal(val, want) {
				conn.Close()
				return fmt.Errorf("%s: key %d: value differs from pre-checkpoint content", m.Tenant, ki)
			}
			verified++
		}
		conn.Close()
	}
	cs := k.MetricsSnapshot().Ckpt
	if err := k.CheckInvariants(); err != nil {
		return fmt.Errorf("post-restore audit: %w", err)
	}
	fmt.Printf("odf-serverless restore: %d tenants fork-from-disk, %d keys byte-verified, "+
		"lazy page-ins %d, read retries %d, corruption errors %d\n",
		len(ms), verified, cs.PageIns, cs.ReadRetries, cs.Corruptions)
	return nil
}

// baselineForkP99 measures the clone fork p99 of one tenant running
// alone on an identical machine — the contention-free reference the
// noisy-neighbor run is gated against.
func baselineForkP99(mode core.ForkMode) (float64, error) {
	c, err := boot(mode, 1, *quota, 1, "")
	if err != nil {
		return 0, err
	}
	defer c.close()
	rng := rand.New(rand.NewSource(*seed))
	if _, err := drive(c.srv.Addr(), c.ids[0], *nReqs, rng); err != nil {
		return 0, err
	}
	return c.d.Lane(c.ids[0]).ForkTimes.Percentile(99), nil
}

func runExperiment(mode core.ForkMode, soak bool) error {
	label := "experiment"
	wellN, noisyN := *nReqs, *noisyReqs
	if soak {
		label = "soak"
		wellN *= 4
		noisyN *= 4
	}
	baseP99, err := baselineForkP99(mode)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	fmt.Printf("odf-serverless %s: baseline clone fork p99 %.3f ms\n", label, baseP99)

	c, err := boot(mode, *tenants, *quota, *noisyMult, "")
	if err != nil {
		return err
	}
	obsSrv, err := startObs(c, *obsArg)
	if err != nil {
		return err
	}
	limit := 2 * int64(*tenants) * (*quota)
	fmt.Printf("odf-serverless %s: %d tenants x %d-frame quota on %d frames (50%% aggregate budget), noisy x%d\n",
		label, *tenants, *quota, limit, *noisyMult)

	// Let fair-share reclaim catch up with the noisy warm set before
	// offering load, so admission decisions see steady-state accounting.
	waitUntil := time.Now().Add(10 * time.Second)
	for c.tens[0].Stats().ReclaimedFrames == 0 && time.Now().Before(waitUntil) {
		time.Sleep(5 * time.Millisecond)
	}

	// Skewed offered load: every tenant drives its own connection
	// concurrently; the noisy tenant's invocations mostly bounce off
	// admission control, which is the point.
	type res struct {
		i  int
		st driveStats
		e  error
	}
	ch := make(chan res, len(c.ids))
	for i, id := range c.ids {
		n := wellN
		if i == 0 {
			n = noisyN
		}
		go func(i int, id uint32, n int) {
			rng := rand.New(rand.NewSource(*seed + int64(i)))
			st, err := drive(c.srv.Addr(), id, n, rng)
			ch <- res{i, st, err}
		}(i, id, n)
	}
	stats := make([]driveStats, len(c.ids))
	for range c.ids {
		r := <-ch
		if r.e != nil {
			return fmt.Errorf("driver %d: %w", r.i, r.e)
		}
		stats[r.i] = r.st
	}

	result := Result{
		Schema:            "odf-serverless/v1",
		Mode:              mode.String(),
		FrameLimit:        limit,
		QuotaFrames:       *quota,
		Tenants:           *tenants,
		BaselineForkP99MS: baseP99,
	}
	for i, tn := range c.tens {
		ts := tn.Stats()
		l := c.d.Lane(c.ids[i])
		result.TenantRows = append(result.TenantRows, TenantRow{
			Name:            ts.Name,
			Noisy:           i == 0,
			QuotaFrames:     ts.QuotaFrames,
			PeakFrames:      ts.PeakFrames,
			ReclaimedFrames: ts.ReclaimedFrames,
			ForksAdmitted:   ts.ForksAdmitted,
			ForksQueued:     ts.ForksQueued,
			ForksTimedOut:   ts.ForksTimedOut,
			Invocations:     l.Invocations(),
			OKResponses:     stats[i].ok,
			QuotaErrs:       stats[i].quotaErrs,
			NoMemErrs:       stats[i].noMemErrs,
			OtherErrs:       stats[i].otherErrs,
			ForkP50MS:       l.ForkTimes.Percentile(50),
			ForkP99MS:       l.ForkTimes.Percentile(99),
		})
	}
	result.Checks = evaluate(&result)

	// Quiesce and audit: stop traffic and kswapd, then the invariant
	// sweep including the per-tenant accounting cross-check.
	if obsSrv != nil {
		obsSrv.Close()
	}
	c.srv.Close()
	c.k.SetSwapEnabled(false)
	if err := c.k.CheckInvariants(); err != nil {
		return fmt.Errorf("final audit: %w", err)
	}
	c.d.Close()
	c.k.Allocator().SetLimit(0)

	for _, row := range result.TenantRows {
		fmt.Printf("  %-6s noisy=%-5v ok=%-4d quota_errs=%-4d nomem=%-2d queued=%-3d reclaimed=%-5d fork_p99=%.3fms\n",
			row.Name, row.Noisy, row.OKResponses, row.QuotaErrs, row.NoMemErrs,
			row.ForksQueued, row.ReclaimedFrames, row.ForkP99MS)
	}
	failed := false
	for _, chk := range result.Checks {
		status := "ok"
		if !chk.OK {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  check %-28s %-4s %s\n", chk.Name, status, chk.Detail)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&result); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("odf-serverless: wrote %s\n", *out)
	}
	if failed {
		return fmt.Errorf("%s checks failed", label)
	}
	fmt.Printf("odf-serverless %s: all checks passed\n", label)
	return nil
}

// evaluate runs the acceptance checks over a result record. It is
// shared by the live run and -check, so a committed record is
// re-validated from its own numbers.
func evaluate(r *Result) []CheckEntry {
	var cs []CheckEntry
	add := func(name string, ok bool, detail string, args ...any) {
		cs = append(cs, CheckEntry{Name: name, OK: ok, Detail: fmt.Sprintf(detail, args...)})
	}
	if r.Schema != "odf-serverless/v1" {
		add("schema", false, "schema %q, want odf-serverless/v1", r.Schema)
		return cs
	}
	var noisy *TenantRow
	wellNoMem, wellOther := uint64(0), uint64(0)
	worstWellP99 := 0.0
	for i := range r.TenantRows {
		row := &r.TenantRows[i]
		if row.Noisy {
			noisy = row
			continue
		}
		wellNoMem += row.NoMemErrs
		wellOther += row.OtherErrs + row.QuotaErrs
		if row.ForkP99MS > worstWellP99 {
			worstWellP99 = row.ForkP99MS
		}
	}
	if noisy == nil {
		add("noisy-present", false, "no noisy tenant row")
		return cs
	}
	add("noisy-forks-queue", noisy.ForksQueued > 0,
		"noisy tenant queued %d forks (timed out %d)", noisy.ForksQueued, noisy.ForksTimedOut)
	add("noisy-reclaimed-first", noisy.ReclaimedFrames > 0,
		"fair-share reclaim evicted %d frames from the noisy tenant", noisy.ReclaimedFrames)
	wellReclaimed := uint64(0)
	for _, row := range r.TenantRows {
		if !row.Noisy {
			wellReclaimed += row.ReclaimedFrames
		}
	}
	add("well-behaved-not-victims", wellReclaimed == 0,
		"%d frames reclaimed from well-behaved tenants", wellReclaimed)
	add("zero-cross-tenant-errors", wellNoMem == 0 && wellOther == 0,
		"well-behaved tenants saw %d ErrNoMem and %d other failures", wellNoMem, wellOther)
	bound := 2 * r.BaselineForkP99MS
	if bound < forkP99FloorMS {
		bound = forkP99FloorMS
	}
	add("fork-p99-within-2x-baseline", worstWellP99 <= bound,
		"worst well-behaved clone fork p99 %.3f ms vs bound %.3f ms (baseline %.3f ms)",
		worstWellP99, bound, r.BaselineForkP99MS)
	return cs
}

func checkFile(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r Result
	if err := json.Unmarshal(raw, &r); err != nil {
		return err
	}
	for _, chk := range evaluate(&r) {
		if !chk.OK {
			return fmt.Errorf("check %s: %s", chk.Name, chk.Detail)
		}
	}
	return nil
}
