// Command odf-top is a live terminal view of an odf daemon's
// observability endpoint: it polls /metrics.json and renders a
// top-style screen — system-wide fork/fault rates, health, and one row
// per tenant with interval rates for forks, faults, queue waits,
// reclaim evictions, and quota rejections.
//
// Usage:
//
//	odf-top -url http://127.0.0.1:9180 [-interval 1s] [-n rounds]
//	odf-top -url http://127.0.0.1:9180 -once
//	odf-top -url http://127.0.0.1:9180 -check \
//	        [-wait 120s] [-require-tenant-forks] [-scrape obs_scrape.txt]
//
// -once prints a single snapshot without clearing the screen (useful
// in transcripts and CI); -check fetches a snapshot plus the
// OpenMetrics scrape, validates both with the in-tree parser, and
// exits 0/1 — the smoke probe the CI scrape step uses. -wait retries
// until a daemon still booting (or not yet loaded) passes, and
// -require-tenant-forks insists a per-tenant fork histogram counted
// real forks before declaring victory.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/obs"
)

var (
	urlArg   = flag.String("url", "http://127.0.0.1:9180", "observability endpoint base URL")
	interval = flag.Duration("interval", time.Second, "poll interval")
	rounds   = flag.Int("n", 0, "rounds to render before exiting (0 = forever)")
	once     = flag.Bool("once", false, "render one snapshot without clearing the screen, then exit")
	check    = flag.Bool("check", false, "fetch one snapshot, validate it, and exit")
	wait     = flag.Duration("wait", 0, "with -check: keep retrying for this long before failing (mid-run scrapes)")
	reqForks = flag.Bool("require-tenant-forks", false, "with -check: fail unless a per-tenant fork histogram is non-empty")
	scrape   = flag.String("scrape", "", "with -check: save the validated OpenMetrics scrape to this file")
)

// doc mirrors obs.MetricsJSON with the snapshot typed for decoding.
type doc struct {
	UnixNano int64              `json:"unix_nano"`
	Snapshot metrics.Snapshot   `json:"snapshot"`
	Health   kernel.HealthStats `json:"health"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "odf-top:", err)
		os.Exit(1)
	}
}

func run() error {
	if *check {
		deadline := time.Now().Add(*wait)
		for {
			err := checkOnce()
			if err == nil {
				return nil
			}
			if !time.Now().Before(deadline) {
				return err
			}
			time.Sleep(500 * time.Millisecond)
		}
	}
	if *once {
		d, err := fetch()
		if err != nil {
			return err
		}
		fmt.Print(render(nil, &d))
		return nil
	}
	var prev *doc
	for i := 0; *rounds == 0 || i < *rounds; i++ {
		d, err := fetch()
		if err != nil {
			return err
		}
		// ANSI clear + home, the classic top repaint.
		fmt.Print("\x1b[2J\x1b[H")
		fmt.Print(render(prev, &d))
		prev = &d
		if *rounds == 0 || i < *rounds-1 {
			time.Sleep(*interval)
		}
	}
	return nil
}

// checkOnce is one validation attempt: the JSON snapshot decodes with
// a timestamp, the OpenMetrics scrape parses with the in-tree parser,
// and (with -require-tenant-forks) at least one per-tenant fork
// histogram counted a fork — proof the correlation pipeline is live,
// not just the listener. The validated scrape is saved to -scrape.
func checkOnce() error {
	d, err := fetch()
	if err != nil {
		return err
	}
	if d.UnixNano == 0 {
		return fmt.Errorf("snapshot carries no timestamp")
	}
	resp, err := (&http.Client{Timeout: 5 * time.Second}).Get(strings.TrimSuffix(*urlArg, "/") + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	exp, err := obs.ParseOpenMetrics(bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("scrape does not parse: %w", err)
	}
	tenantForks := 0.0
	if fam := exp.Family("odf_tenant_fork_latency_ns"); fam != nil {
		for _, s := range fam.Samples {
			if strings.HasSuffix(s.Name, "_count") {
				tenantForks += s.Value
			}
		}
	}
	if *reqForks && tenantForks == 0 {
		return fmt.Errorf("per-tenant fork histograms are empty")
	}
	if *scrape != "" {
		if err := os.WriteFile(*scrape, body, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("odf-top: endpoint OK, %d tenants (%g tenant forks), %d metric families, health %q\n",
		len(d.Snapshot.Tenants), tenantForks, len(exp.Families), orUnpublished(d.Health.Status))
	return nil
}

func fetch() (doc, error) {
	var d doc
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(strings.TrimSuffix(*urlArg, "/") + "/metrics.json")
	if err != nil {
		return d, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return d, fmt.Errorf("GET /metrics.json: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return d, fmt.Errorf("decode /metrics.json: %w", err)
	}
	return d, nil
}

func orUnpublished(s string) string {
	if s == "" {
		return "unpublished"
	}
	return s
}

// render draws one screen. With a previous sample, counters render as
// per-second rates over the elapsed interval; without one, as totals.
func render(prev, cur *doc) string {
	var b strings.Builder
	s := cur.Snapshot
	secs := 0.0
	unit := "total"
	if prev != nil && cur.UnixNano > prev.UnixNano {
		secs = float64(cur.UnixNano-prev.UnixNano) / 1e9
		s = cur.Snapshot.Sub(prev.Snapshot)
		unit = "/s"
	}
	rate := func(v uint64) string {
		if secs > 0 {
			return fmt.Sprintf("%.1f", float64(v)/secs)
		}
		return fmt.Sprintf("%d", v)
	}

	fmt.Fprintf(&b, "odf-top  %s  health=%s  frames=%d (peak %d)\n",
		time.Unix(0, cur.UnixNano).Format("15:04:05"),
		orUnpublished(cur.Health.Status),
		cur.Snapshot.Alloc.FramesInUse, cur.Snapshot.Alloc.FramesPeak)
	for _, c := range cur.Health.Checks {
		if c.Firing {
			fmt.Fprintf(&b, "  ALERT %s observed=%d threshold=%d fires=%d\n",
				c.Name, c.Observed, c.Threshold, c.Fires)
		}
	}

	forks := s.Fork.Classic().Forks + s.Fork.OnDemand().Forks
	faults := s.Fault.ReadFaults + s.Fault.WriteFaults
	fmt.Fprintf(&b, "forks%s %s (ondemand %s)  faults%s %s  fork_p99 %s  fault_p99(w) %s\n",
		unit, rate(forks), rate(s.Fork.OnDemand().Forks),
		unit, rate(faults),
		ns(s.Fork.OnDemand().Latency.Quantile(0.99)),
		ns(s.Fault.WriteLatency.Quantile(0.99)))

	if len(s.Tenants) == 0 {
		b.WriteString("(no tenants registered)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-4s %-10s %9s %9s %9s %11s %9s %9s\n",
		"ID", "NAME", "FORKS"+unit, "FAULTS"+unit, "QWAIT_P99", "FORK_P99", "EVICT"+unit, "REJ"+unit)
	rows := append([]metrics.TenantSlotSnapshot(nil), s.Tenants...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	for _, t := range rows {
		var tf, tflt uint64
		var p99 uint64
		for e := range t.Forks {
			tf += t.Forks[e]
			if p := t.ForkLatency[e].Quantile(0.99); p > p99 {
				p99 = p
			}
		}
		tflt = t.TableSplits + t.PMDSplits + t.FastDedups + t.PageCopies + t.HugeCopies + t.SwapIns
		fmt.Fprintf(&b, "%-4d %-10s %9s %9s %9s %11s %9s %9s\n",
			t.ID, t.Name, rate(tf), rate(tflt),
			ns(t.QueueWait.Quantile(0.99)), ns(p99),
			rate(t.ReclaimEvictions), rate(t.QuotaRejections))
	}
	return b.String()
}

// ns renders a nanosecond figure human-readably.
func ns(v uint64) string {
	d := time.Duration(v)
	switch {
	case d == 0:
		return "-"
	case d < 10*time.Microsecond:
		return fmt.Sprintf("%dns", v)
	case d < 10*time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(v)/1e3)
	default:
		return fmt.Sprintf("%.1fms", float64(v)/1e6)
	}
}
