// Command odf-kv is an interactive Redis-style shell over the
// simulated kernel's kvstore: SET/GET/DEL plus BGSAVE (fork-based
// snapshot) and INFO, demonstrating snapshot-while-serving with either
// fork engine.
//
// Usage:
//
//	odf-kv [-mode classic|ondemand] [-mem MiB] [-keys N]
//	odf-kv -listen 127.0.0.1:6380 [-snap-every dur]
//
// With -listen the store serves the length-prefixed binary protocol
// over a real TCP socket (the serve tier the SLO harness drives), with
// an optional background snapshotter; without it, an interactive
// Redis-style shell runs on stdin.
//
// Commands (stdin):
//
//	set <key> <value>     store a value
//	get <key>             fetch a value
//	del <key>             delete a key
//	bgsave                fork a snapshot child; prints the fork time
//	info                  server statistics
//	maps                  the server process's /proc-style mappings
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/apps/kvstore"
	"repro/internal/apps/serve"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/obs"
)

var (
	modeArg   = flag.String("mode", "ondemand", "snapshot fork engine: classic|ondemand")
	memMiB    = flag.Uint64("mem", 128, "store arena size in MiB")
	keys      = flag.Int("keys", 10000, "keys preloaded at startup")
	listen    = flag.String("listen", "", "serve the binary kv protocol on this TCP address instead of the stdin shell")
	snapEvery = flag.Duration("snap-every", 0, "with -listen: background snapshot cadence (0 = on demand only)")
	obsArg    = flag.String("obs", "", "with -listen: observability HTTP listen address (empty = off)")
)

func main() {
	flag.Parse()
	var mode core.ForkMode
	switch *modeArg {
	case "classic":
		mode = core.ForkClassic
	case "ondemand":
		mode = core.ForkOnDemand
	default:
		fmt.Fprintf(os.Stderr, "odf-kv: unknown -mode %q\n", *modeArg)
		os.Exit(2)
	}

	if *listen != "" {
		if err := serveTCP(mode); err != nil {
			fmt.Fprintln(os.Stderr, "odf-kv:", err)
			os.Exit(1)
		}
		return
	}

	k := kernel.New()
	store, err := kvstore.New(k, kvstore.Config{
		ArenaBytes:      *memMiB << 20,
		TableCap:        tableCap(*keys),
		Mode:            mode,
		SnapshotIODelay: time.Millisecond,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "odf-kv:", err)
		os.Exit(1)
	}
	defer store.Close()
	if err := store.Populate(*keys, 64); err != nil {
		fmt.Fprintln(os.Stderr, "odf-kv:", err)
		os.Exit(1)
	}
	fmt.Printf("odf-kv ready: %d keys preloaded, snapshot engine %s\n", store.Len(), mode)

	dumps := 0
	sc := bufio.NewScanner(os.Stdin)
	for fmt.Print("> "); sc.Scan(); fmt.Print("> ") {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToLower(fields[0]) {
		case "set":
			if len(fields) < 3 {
				fmt.Println("usage: set <key> <value>")
				continue
			}
			if _, err := store.Set([]byte(fields[1]), []byte(strings.Join(fields[2:], " "))); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("OK")
		case "get":
			if len(fields) != 2 {
				fmt.Println("usage: get <key>")
				continue
			}
			v, ok, err := store.Get([]byte(fields[1]))
			switch {
			case err != nil:
				fmt.Println("error:", err)
			case !ok:
				fmt.Println("(nil)")
			default:
				fmt.Printf("%q\n", v)
			}
		case "del":
			if len(fields) != 2 {
				fmt.Println("usage: del <key>")
				continue
			}
			ok, err := store.Delete([]byte(fields[1]))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(ok)
		case "bgsave":
			dumps++
			out := k.FS().Create(fmt.Sprintf("dump-%d.rdb", dumps))
			t0 := time.Now()
			if err := store.SnapshotNow(out); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("background saving started (fork blocked the server %v)\n",
				time.Since(t0).Round(time.Microsecond))
		case "info":
			fmt.Printf("keys: %d\nsnapshots: %d\nlast fork times (ms): mean %.4f\n",
				store.Len(), store.Snapshots(), store.ForkTimes.Mean())
			fmt.Print(store.Process().Status())
		case "maps":
			fmt.Print(store.Process().Maps())
		case "quit", "exit":
			return
		default:
			fmt.Println("commands: set get del bgsave info maps quit")
		}
	}
}

// serveTCP runs the store behind a real TCP listener speaking the
// length-prefixed binary protocol, with an optional background
// snapshotter, until interrupted.
func serveTCP(mode core.ForkMode) error {
	k := kernel.New()
	app, err := serve.NewKV(k, serve.KVConfig{
		Config: kvstore.Config{
			ArenaBytes:      *memMiB << 20,
			TableCap:        tableCap(*keys),
			Mode:            mode,
			SnapshotEvery:   *snapEvery,
			SnapshotIODelay: time.Millisecond,
		},
		Keys:     *keys,
		ValueLen: 64,
	})
	if err != nil {
		return err
	}
	defer app.Close()
	if err := app.Warm(); err != nil {
		return err
	}
	srv, err := serve.Listen(app, serve.BinaryCodec{}, *listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	if *obsArg != "" {
		// Opt-in observability: flight recording on, request ids minted
		// per connection-handled request, HTTP introspection alongside
		// the serving port.
		k.SetTraceEnabled(true)
		srv.SetObserver(serve.NewObs(k.Tracer()))
		osrv, err := obs.Listen(k, *obsArg, obs.WatchdogConfig{})
		if err != nil {
			return err
		}
		defer osrv.Close()
		fmt.Printf("odf-kv observability on http://%s (/metrics /metrics.json /trace /health)\n", osrv.Addr())
	}
	fmt.Printf("odf-kv listening on %s: %d keys preloaded, snapshot engine %s\n",
		srv.Addr(), *keys, mode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	tot := app.Snapshotter().Totals()
	fmt.Printf("\nserved %d requests; %d snapshots, fork mean %v\n",
		srv.Served(), tot.Snapshots, tot.ForkMean.Round(time.Microsecond))
	return nil
}

func tableCap(keys int) uint64 {
	c := uint64(1)
	for c < uint64(keys)*2 {
		c <<= 1
	}
	return c
}
