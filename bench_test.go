package repro

// The benchmark suite regenerates every table and figure of the
// paper's evaluation as testing.B benchmarks, so `go test -bench=.`
// reproduces the whole study at a bounded scale. Sizes here are kept
// moderate for runtime; the odf-bench command sweeps the full ranges.
//
// Run with a fixed iteration count — e.g. `go test -bench=. -benchmem
// -benchtime=50x` — because several benchmarks do expensive unmeasured
// setup per iteration (fork + child teardown around a microsecond
// measured region), which the default time-based iteration search
// multiplies into very long runs.
//
//	Figure 2  -> BenchmarkFig2ForkLatency, BenchmarkFig2Concurrent
//	Figure 3  -> BenchmarkFig3Profile (prints the attribution)
//	Figure 4  -> BenchmarkFig4HugeFork
//	Figure 7  -> BenchmarkFig7Invocation
//	Table 1   -> BenchmarkTab1FaultCost
//	Figure 8  -> BenchmarkFig8Overall
//	Figure 9  -> BenchmarkFig9Fuzzing
//	Tables 2-3-> BenchmarkTab3UnitTest (fork+test per engine)
//	Tables 4-5-> BenchmarkTab5RedisFork (snapshot fork under load)
//	Figure 10 -> BenchmarkFig10VMClone
//	Tables 6-7-> BenchmarkTab6Httpd
//	Ablations -> BenchmarkAblation*, BenchmarkFaultFastPath

import (
	"fmt"
	"testing"

	"repro/internal/apps/fuzz"
	"repro/internal/apps/httpd"
	"repro/internal/apps/kvstore"
	"repro/internal/apps/sqlike"
	"repro/internal/apps/vmclone"
	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/profile"
)

const (
	benchMiB = uint64(1) << 20
	rwProt   = vm.ProtRead | vm.ProtWrite
	popFlags = vm.MapPrivate | vm.MapPopulate
)

// forkParent builds a process with size bytes of populated memory.
func forkParent(b *testing.B, k *kernel.Kernel, size uint64, flags vm.MapFlags) *kernel.Process {
	b.Helper()
	p := k.NewProcess()
	if _, err := p.Mmap(size, rwProt, flags); err != nil {
		b.Fatal(err)
	}
	return p
}

func benchFork(b *testing.B, size uint64, mode core.ForkMode, flags vm.MapFlags) {
	b.ReportAllocs()
	k := kernel.New()
	p := forkParent(b, k, size, flags)
	defer p.Exit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.Fork(kernel.WithMode(mode))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Exit()
		c.Wait()
		b.StartTimer()
	}
}

// BenchmarkForkOnDemand measures the headline operation — an
// on-demand fork of a 256 MiB process — with telemetry collection on
// (the default) and off, and with the flight recorder on and off, so
// the sub-benchmarks bound the overhead of both observability layers
// on the hot path. trace-off is the shipping configuration (tracing
// costs one atomic load per instrumentation point); the acceptance
// bar is trace-off within 2% of metrics-on. Every row runs with the
// failpoint registry attached but disarmed (the shipping state, one
// atomic load per site); failpoints-armed bounds the cost of arming a
// point elsewhere in the system, which upgrades the fork sites to a
// name lookup plus a per-point mode load without firing anything.
func BenchmarkForkOnDemand(b *testing.B) {
	b.ReportAllocs()
	for _, mc := range []struct {
		name  string
		opts  []kernel.Option
		trace bool
		setup func(*kernel.Kernel)
	}{
		{"metrics-on", nil, false, nil},
		{"metrics-off", []kernel.Option{kernel.WithMetricsDisabled()}, false, nil},
		{"trace-off", nil, false, nil},
		{"trace-on", nil, true, nil},
		{"failpoints-armed", nil, false, func(k *kernel.Kernel) {
			// kswapd never runs here, so the point never fires; its
			// being armed is what flips the fork sites onto the
			// armed-registry path.
			if err := k.SetFailpoint(failpoint.KswapdPanic, "every:1000000"); err != nil {
				b.Fatal(err)
			}
		}},
	} {
		b.Run(mc.name, func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New(mc.opts...)
			k.SetTraceEnabled(mc.trace)
			if mc.setup != nil {
				mc.setup(k)
			}
			p := forkParent(b, k, 256*benchMiB, popFlags)
			defer p.Exit()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c, err := p.Fork(kernel.WithMode(core.ForkOnDemand))
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				c.Exit()
				c.Wait()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFig2ForkLatency is the Figure 2 sequential line: classic
// fork latency at increasing memory sizes.
func BenchmarkFig2ForkLatency(b *testing.B) {
	b.ReportAllocs()
	for _, mb := range []uint64{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			b.ReportAllocs()
			benchFork(b, mb*benchMiB, core.ForkClassic, popFlags)
		})
	}
}

// BenchmarkFig2Concurrent is the Figure 2 concurrent line: three
// benchmark instances forking in parallel on one kernel.
func BenchmarkFig2Concurrent(b *testing.B) {
	b.ReportAllocs()
	k := kernel.New()
	procs := make([]*kernel.Process, 3)
	for i := range procs {
		procs[i] = forkParent(b, k, 128*benchMiB, popFlags)
		defer procs[i].Exit()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, len(procs))
		for _, p := range procs {
			go func(p *kernel.Process) {
				c, err := p.Fork(kernel.WithMode(core.ForkClassic))
				if err == nil {
					c.Exit()
				}
				done <- err
			}(p)
		}
		for range procs {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkForkParallel sweeps the parallel fork engine: worker counts
// 1–8 across 128 MiB–1 GiB, for both engines. The 1-worker rows are
// the sequential baseline (ForkOptions.Parallelism=1 follows exactly
// the sequential code path); speedup at 4 workers on a ≥ 1 GiB classic
// fork is the headline number on a multi-core runner.
func BenchmarkForkParallel(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		for _, mb := range []uint64{128, 256, 512, 1024} {
			for _, workers := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%dMB/workers=%d", mode, mb, workers), func(b *testing.B) {
					b.ReportAllocs()
					k := kernel.New()
					p := forkParent(b, k, mb*benchMiB, popFlags)
					defer p.Exit()
					opts := core.ForkOptions{Parallelism: workers}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c, err := p.Fork(kernel.WithMode(mode), kernel.WithForkOptions(opts))
						if err != nil {
							b.Fatal(err)
						}
						b.StopTimer()
						c.Exit()
						c.Wait()
						b.StartTimer()
					}
				})
			}
		}
	}
}

// BenchmarkFig3Profile reproduces the profile attribution; the rendered
// report is printed once.
func BenchmarkFig3Profile(b *testing.B) {
	b.ReportAllocs()
	prof := profile.New()
	k := kernel.New(kernel.WithProfiler(prof))
	p := forkParent(b, k, 128*benchMiB, popFlags)
	defer p.Exit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.Fork(kernel.WithMode(core.ForkClassic))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Exit()
		b.StartTimer()
	}
	b.StopTimer()
	if b.N > 1 {
		b.Logf("\n%s", prof.String())
	}
}

// BenchmarkFig4HugeFork is the Figure 4 curve: classic fork over 2 MiB
// pages.
func BenchmarkFig4HugeFork(b *testing.B) {
	b.ReportAllocs()
	for _, mb := range []uint64{128, 512} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			b.ReportAllocs()
			benchFork(b, mb*benchMiB, core.ForkClassic, popFlags|vm.MapHuge)
		})
	}
}

// BenchmarkFig7Invocation compares the three engines at one size — the
// Figure 7 cross-section.
func BenchmarkFig7Invocation(b *testing.B) {
	b.ReportAllocs()
	const size = 256 * benchMiB
	b.Run("fork", func(b *testing.B) { benchFork(b, size, core.ForkClassic, popFlags) })
	b.Run("fork-huge-pages", func(b *testing.B) {
		b.ReportAllocs()
		benchFork(b, size, core.ForkClassic, popFlags|vm.MapHuge)
	})
	b.Run("on-demand-fork", func(b *testing.B) { benchFork(b, size, core.ForkOnDemand, popFlags) })
}

// BenchmarkTab1FaultCost measures the worst-case fault: the child's
// first write to the middle of the region after fork.
func BenchmarkTab1FaultCost(b *testing.B) {
	b.ReportAllocs()
	const size = 64 * benchMiB
	cases := []struct {
		name  string
		mode  core.ForkMode
		flags vm.MapFlags
	}{
		{"fork", core.ForkClassic, popFlags},
		{"fork-huge-pages", core.ForkClassic, popFlags | vm.MapHuge},
		{"on-demand-fork", core.ForkOnDemand, popFlags},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			p := k.NewProcess()
			base, err := p.Mmap(size, rwProt, tc.flags)
			if err != nil {
				b.Fatal(err)
			}
			defer p.Exit()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c, err := p.Fork(kernel.WithMode(tc.mode))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := c.StoreByte(base+addr.V(size/2), 1); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				c.Exit()
				c.Wait()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFig8Overall measures fork + sequential access of half the
// region (50/50 read-write), per engine — one cell of Figure 8.
func BenchmarkFig8Overall(b *testing.B) {
	b.ReportAllocs()
	const size = 64 * benchMiB
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			buf := make([]byte, 256*1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				p := forkParent(b, k, size, popFlags)
				b.StartTimer()
				c, err := p.Fork(kernel.WithMode(mode))
				if err != nil {
					b.Fatal(err)
				}
				base := addr.V(0x7f00_0000_0000)
				for off := uint64(0); off < size/2; off += uint64(len(buf)) {
					var err error
					if (off/uint64(len(buf)))%2 == 0 {
						err = p.ReadAt(buf, base+addr.V(off))
					} else {
						err = p.WriteAt(buf, base+addr.V(off))
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				c.Exit()
				p.Exit()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFig9Fuzzing measures one fuzzing execution (fork + target +
// teardown) per engine over a loaded database.
func BenchmarkFig9Fuzzing(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			f, err := fuzz.NewFuzzer(k, fuzz.Config{
				DB:       sqlike.Config{ArenaBytes: 64 * benchMiB, MaxItems: 40000, MaxTags: 1000},
				Items:    20000,
				NameLen:  24,
				TagEvery: 50,
				Mode:     mode,
				Seed:     1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.RunOne(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTab3UnitTest measures fork + one unit test per engine over a
// loaded database (the Table 3 flow; Table 2's init phase is the
// fuzzer/database Load, measured by BenchmarkDatabaseLoad).
func BenchmarkTab3UnitTest(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			proc := k.NewProcess()
			defer proc.Exit()
			db, err := sqlike.New(proc, sqlike.Config{
				ArenaBytes: 64 * benchMiB, MaxItems: 40000, MaxTags: 1000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := db.Load(20000, 24, 50); err != nil {
				b.Fatal(err)
			}
			tests := sqlike.StandardTests()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ut := tests[i%len(tests)]
				c, err := proc.Fork(kernel.WithMode(mode))
				if err != nil {
					b.Fatal(err)
				}
				if err := ut.Run(db.Clone(c)); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				c.Exit()
				c.Wait()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDatabaseLoad is the Table 2 initialization phase.
func BenchmarkDatabaseLoad(b *testing.B) {
	b.ReportAllocs()
	k := kernel.New()
	for i := 0; i < b.N; i++ {
		proc := k.NewProcess()
		db, err := sqlike.New(proc, sqlike.Config{
			ArenaBytes: 64 * benchMiB, MaxItems: 40000, MaxTags: 1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := db.Load(20000, 24, 50); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		proc.Exit()
		b.StartTimer()
	}
}

// BenchmarkTab5RedisFork measures the snapshot fork of a loaded
// Redis-like store per engine (the Table 5 metric; Table 4's latency
// distribution is produced by `odf-bench tab45`).
func BenchmarkTab5RedisFork(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			st, err := kvstore.New(k, kvstore.Config{
				ArenaBytes: 128 * benchMiB,
				TableCap:   1 << 16,
				Mode:       mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			if err := st.Populate(20000, 64); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.SnapshotNow(nil); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st.WaitSnapshots()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkFig10VMClone measures one VM-clone fuzzing execution per
// engine.
func BenchmarkFig10VMClone(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			c, err := vmclone.NewCloner(k, vmclone.Config{
				RAMBytes: 64 * benchMiB,
				BootFill: 16 * benchMiB,
			}, mode)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.RunN(1, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTab6Httpd measures per-request latency of the prefork server
// per engine (the negative result: both should be equal).
func BenchmarkTab6Httpd(b *testing.B) {
	b.ReportAllocs()
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			k := kernel.New()
			s, err := httpd.Start(k, httpd.Config{
				ConfigBytes: 7 * benchMiB,
				Workers:     8,
				Mode:        mode,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Stop()
			req := []byte("GET /bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Handle(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationEagerRefcount prices re-adding per-page reference
// counting to on-demand-fork (DESIGN.md §5).
func BenchmarkAblationEagerRefcount(b *testing.B) {
	b.ReportAllocs()
	benchForkOpts(b, core.ForkOptions{EagerPageRefs: true})
}

// BenchmarkAblationPerPTEProtect prices per-PTE write protection versus
// the single PMD-entry downgrade.
func BenchmarkAblationPerPTEProtect(b *testing.B) {
	b.ReportAllocs()
	benchForkOpts(b, core.ForkOptions{PerPTEProtect: true})
}

// BenchmarkAblationUpperLevels isolates the cost on-demand-fork does
// pay — copying the upper levels — by forking an ODF process whose
// leaves are fully shared (the measured work is almost entirely
// upper-table duplication).
func BenchmarkAblationUpperLevels(b *testing.B) {
	b.ReportAllocs()
	benchForkOpts(b, core.ForkOptions{})
}

func benchForkOpts(b *testing.B, opts core.ForkOptions) {
	b.ReportAllocs()
	k := kernel.New()
	p := forkParent(b, k, 256*benchMiB, popFlags)
	defer p.Exit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.Fork(kernel.WithMode(core.ForkOnDemand), kernel.WithForkOptions(opts))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Exit()
		c.Wait()
		b.StartTimer()
	}
}

// BenchmarkFaultFastPath measures the last-sharer fast path: after the
// only other sharer exits, the parent's first write re-dedicates the
// table by flipping one PMD bit instead of copying 512 entries.
func BenchmarkFaultFastPath(b *testing.B) {
	b.ReportAllocs()
	k := kernel.New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(64*benchMiB, rwProt, popFlags)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := p.Fork(kernel.WithMode(core.ForkOnDemand))
		if err != nil {
			b.Fatal(err)
		}
		c.Exit()
		c.Wait()
		b.StartTimer()
		// Parent write: fast dedicate, no table copy.
		if err := p.StoreByte(base+addr.V(uint64(i%32)*addr.PTECoverage), 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if splits := k.MetricsSnapshot().Fault.TableSplits; splits != 0 {
		b.Fatalf("fast path benchmark performed %d splits", splits)
	}
}

// BenchmarkTLBHitPath measures the access fast path: repeated loads of
// a cached translation versus walks of an always-cold TLB.
func BenchmarkTLBHitPath(b *testing.B) {
	b.ReportAllocs()
	k := kernel.New()
	p := forkParent(b, k, 4*benchMiB, popFlags)
	defer p.Exit()
	base := addr.V(0x7f00_0000_0000)
	if err := p.StoreByte(base, 1); err != nil {
		b.Fatal(err)
	}
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.LoadByte(base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p.Space().TLB().Flush()
			if _, err := p.LoadByte(base); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHugeExtSharedPMD measures the §4 extension: on-demand-fork
// of a huge-mapped process with whole-PMD-table sharing.
func BenchmarkHugeExtSharedPMD(b *testing.B) {
	b.ReportAllocs()
	k := kernel.New()
	p := forkParent(b, k, 256*benchMiB, popFlags|vm.MapHuge)
	defer p.Exit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.Fork(kernel.WithMode(core.ForkOnDemand), kernel.WithForkOptions(core.ForkOptions{ShareHugePMD: true}))
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		c.Exit()
		c.Wait()
		b.StartTimer()
	}
}

// BenchmarkCheckpointSpawn measures the serverless warm-start primitive.
func BenchmarkCheckpointSpawn(b *testing.B) {
	b.ReportAllocs()
	k := kernel.New()
	p := forkParent(b, k, 256*benchMiB, popFlags)
	defer p.Exit()
	cp, err := p.Checkpoint()
	if err != nil {
		b.Fatal(err)
	}
	defer cp.Release()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := cp.Spawn()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		s.Exit()
		b.StartTimer()
	}
}

// BenchmarkForkUnderPressure measures both fork engines while the
// parent's dirty working set sits at 90% and 99% of the frame limit
// with the swap store on (occ=0 is the unlimited baseline). Classic
// fork must push its page copies through direct reclaim to complete;
// on-demand fork only needs upper-level tables and barely notices the
// pressure.
func BenchmarkForkUnderPressure(b *testing.B) {
	b.ReportAllocs()
	const pressureMiB = 16
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		for _, occ := range []int{0, 90, 99} {
			b.Run(fmt.Sprintf("%s/occ=%d", mode, occ), func(b *testing.B) {
				b.ReportAllocs()
				k := kernel.New()
				k.SetSwapEnabled(true)
				defer k.SetSwapEnabled(false)
				p := k.NewProcess()
				defer p.Exit()
				base, err := p.Mmap(pressureMiB*benchMiB, rwProt, vm.MapPrivate)
				if err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, addr.PageSize)
				for i := range buf {
					buf[i] = byte(i*31 + 7)
				}
				pages := int(pressureMiB * benchMiB / uint64(addr.PageSize))
				for i := 0; i < pages; i++ {
					buf[0] = byte(i)
					if err := p.WriteAt(buf, base+addr.V(uint64(i)*uint64(addr.PageSize))); err != nil {
						b.Fatal(err)
					}
				}
				if occ > 0 {
					k.Allocator().SetLimit(k.Allocator().Allocated() * 100 / int64(occ))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c, err := p.Fork(kernel.WithMode(mode))
					if err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					// Unmeasured COW burst: keeps the reclaimer working
					// between measured forks instead of letting kswapd
					// settle the system after the first iteration.
					for j := 0; j < pages; j += 8 {
						if err := c.WriteAt([]byte{1}, base+addr.V(uint64(j)*uint64(addr.PageSize))); err != nil {
							b.Fatal(err)
						}
					}
					c.Exit()
					c.Wait()
					b.StartTimer()
				}
			})
		}
	}
}
