package profile

import (
	"strings"
	"sync"
	"testing"
)

func TestChargeAndCount(t *testing.T) {
	p := New()
	p.Charge(PageRefInc, 10)
	p.Charge(PageRefInc, 5)
	if got := p.Count(PageRefInc); got != 15 {
		t.Errorf("Count = %d, want 15", got)
	}
	if got := p.Cost(PageRefInc); got != 15*defaultUnitCost[PageRefInc] {
		t.Errorf("Cost = %d", got)
	}
}

func TestUnknownCounterIgnored(t *testing.T) {
	p := New()
	p.Charge("bogus", 3)
	if got := p.Count("bogus"); got != 0 {
		t.Errorf("unknown counter counted: %d", got)
	}
	if got := p.TotalCost(); got != 0 {
		t.Errorf("TotalCost = %d, want 0", got)
	}
}

func TestNilProfilerIsNoop(t *testing.T) {
	var p *Profiler
	p.Charge(PageRefInc, 1) // must not panic
	if p.Count(PageRefInc) != 0 || p.Cost(PageRefInc) != 0 || p.TotalCost() != 0 {
		t.Error("nil profiler returned non-zero")
	}
	if p.Enabled() {
		t.Error("nil profiler enabled")
	}
	p.SetEnabled(true) // must not panic
	p.Reset()          // must not panic
	if p.Report() != nil {
		t.Error("nil profiler report non-nil")
	}
}

func TestDisable(t *testing.T) {
	p := New()
	p.Charge(CopyOnePTE, 7)
	p.SetEnabled(false)
	p.Charge(CopyOnePTE, 100)
	if got := p.Count(CopyOnePTE); got != 7 {
		t.Errorf("disabled profiler recorded: %d", got)
	}
	p.SetEnabled(true)
	p.Charge(CopyOnePTE, 1)
	if got := p.Count(CopyOnePTE); got != 8 {
		t.Errorf("re-enabled count = %d", got)
	}
}

func TestReset(t *testing.T) {
	p := New()
	p.Charge(PTCopy, 4)
	p.Reset()
	if p.Count(PTCopy) != 0 || p.TotalCost() != 0 {
		t.Error("reset did not clear counters")
	}
}

func TestReportOrderingAndPercent(t *testing.T) {
	p := New()
	p.Charge(CompoundHead, 100) // cost 6300
	p.Charge(UpperWalk, 10)     // cost 10
	rep := p.Report()
	if len(rep) != 2 {
		t.Fatalf("report rows = %d, want 2", len(rep))
	}
	if rep[0].Name != CompoundHead {
		t.Errorf("top row = %q", rep[0].Name)
	}
	sum := rep[0].Percent + rep[1].Percent
	if sum < 99.99 || sum > 100.01 {
		t.Errorf("percents sum to %f", sum)
	}
	if rep[0].Percent <= rep[1].Percent {
		t.Error("report not sorted by cost")
	}
}

func TestStringRendering(t *testing.T) {
	p := New()
	if !strings.Contains(p.String(), "no profile samples") {
		t.Error("empty report missing placeholder")
	}
	p.Charge(PageRefInc, 1)
	s := p.String()
	if !strings.Contains(s, PageRefInc) {
		t.Errorf("rendered report missing counter: %s", s)
	}
}

func TestConcurrentCharge(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				p.Charge(PageRefInc, 1)
			}
		}()
	}
	wg.Wait()
	if got := p.Count(PageRefInc); got != workers*per {
		t.Errorf("concurrent count = %d, want %d", got, workers*per)
	}
}
