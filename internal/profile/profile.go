// Package profile provides cost-accounting counters for the simulated
// kernel, standing in for the perf-events instruction profile the paper
// uses in Figure 3.
//
// Real perf attributes CPU cycles to kernel functions such as
// compound_head() and page_ref_inc(). We cannot sample Go instructions
// per simulated-kernel function, so instead every simulated kernel
// routine charges a named counter with an abstract cost unit each time
// the corresponding work is performed. The *relative* attribution — the
// quantity Figure 3 reports — is then reproduced exactly, because the
// counts of compound-page lookups, atomic reference-count increments,
// PTE copies, and upper-level walks per fork are identical to the real
// kernel's.
//
// The profiler is kept for Figure 3 attribution only (it is served at
// /proc/odf/profile when attached). New instrumentation belongs in the
// metrics package, the always-on system-wide telemetry layer; do not
// add profile counters for anything that is not a Figure 3 line item.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter names used by the simulated kernel. They mirror the kernel
// functions that appear in the paper's Figure 3 profile.
const (
	// CompoundHead is charged when the kernel resolves a possible
	// compound page to its head page (the 63% hotspot in Fig. 3:
	// a cache-missing load of struct page).
	CompoundHead = "compound_head"
	// PageRefInc is charged for each atomic increment of a data page's
	// reference counter (the lock-prefixed increments in Fig. 3).
	PageRefInc = "page_ref_inc"
	// PageRefDec is charged for atomic decrements (teardown path).
	PageRefDec = "page_ref_dec"
	// CopyOnePTE is charged per last-level entry examined and copied by
	// the classic fork path (copy_one_pte in Linux).
	CopyOnePTE = "copy_one_pte"
	// UpperWalk is charged per upper-level (PGD/PUD/PMD) entry visited
	// while duplicating the non-leaf portion of the hierarchy.
	UpperWalk = "upper_level_walk"
	// PTShareInc is charged when on-demand-fork increments a last-level
	// page table's share counter instead of processing its 512 entries.
	PTShareInc = "pt_share_inc"
	// PTCopy is charged when the fault handler copies a whole shared
	// PTE table (the deferred work of on-demand-fork).
	PTCopy = "pt_table_copy"
	// PageCopy is charged per 4 KiB of data copied by copy-on-write
	// fault handling.
	PageCopy = "page_copy"
	// FaultEntry is charged once per page fault taken.
	FaultEntry = "page_fault"
	// TLBFlush is charged when a process's translations must be
	// invalidated after a permission downgrade.
	TLBFlush = "tlb_flush"
	// ShardAllocHit is charged when a frame allocation is satisfied from
	// a per-CPU-style allocator shard cache without touching the global
	// buddy core (the Linux per-CPU pageset fast path).
	ShardAllocHit = "shard_alloc_hit"
	// ShardRefill is charged when an empty shard cache pulls a batch of
	// frames from the buddy core under the global lock.
	ShardRefill = "shard_refill"
	// ShardDrain is charged when an overfull shard cache returns a batch
	// of frames to the buddy core.
	ShardDrain = "shard_drain"
)

// Default costs, in abstract units, per event. The ratios are chosen to
// echo the paper's measurements: compound_head dominates because it is
// the first (cache-missing) touch of struct page; the atomic increment
// is the second hotspot; pure pointer-chasing walks are cheap.
var defaultUnitCost = map[string]uint64{
	CompoundHead: 63,
	PageRefInc:   29,
	PageRefDec:   8,
	CopyOnePTE:   5,
	UpperWalk:    1,
	PTShareInc:   8,
	PTCopy:       64,
	PageCopy:     80,
	FaultEntry:   20,
	TLBFlush:     30,
	// Allocator shard events. A fast-path hit is a couple of
	// uncontended instructions; refills and drains take the global
	// buddy lock and move a whole batch, so they cost more but are
	// amortized over shardBatch allocations.
	ShardAllocHit: 1,
	ShardRefill:   20,
	ShardDrain:    20,
}

// Profiler accumulates named event counts and their weighted costs.
// The zero value is ready to use; a nil *Profiler is a no-op sink, so
// hot paths can charge unconditionally.
type Profiler struct {
	counters map[string]*counterState
	enabled  atomic.Bool
}

type counterState struct {
	count atomic.Uint64
	cost  atomic.Uint64
}

// New returns an enabled Profiler with the standard counters registered.
func New() *Profiler {
	p := &Profiler{counters: make(map[string]*counterState)}
	for name := range defaultUnitCost {
		p.counters[name] = &counterState{}
	}
	p.enabled.Store(true)
	return p
}

// Enabled reports whether the profiler is collecting.
func (p *Profiler) Enabled() bool { return p != nil && p.enabled.Load() }

// SetEnabled toggles collection. Disabled profilers keep their counts.
func (p *Profiler) SetEnabled(on bool) {
	if p != nil {
		p.enabled.Store(on)
	}
}

// Charge records n events against the named counter.
func (p *Profiler) Charge(name string, n uint64) {
	if p == nil || !p.enabled.Load() {
		return
	}
	c := p.counters[name]
	if c == nil {
		return
	}
	c.count.Add(n)
	c.cost.Add(n * defaultUnitCost[name])
}

// Count returns the number of events recorded for the named counter.
func (p *Profiler) Count(name string) uint64 {
	if p == nil {
		return 0
	}
	c := p.counters[name]
	if c == nil {
		return 0
	}
	return c.count.Load()
}

// Cost returns the weighted cost recorded for the named counter.
func (p *Profiler) Cost(name string) uint64 {
	if p == nil {
		return 0
	}
	c := p.counters[name]
	if c == nil {
		return 0
	}
	return c.cost.Load()
}

// TotalCost returns the sum of all weighted costs.
func (p *Profiler) TotalCost() uint64 {
	if p == nil {
		return 0
	}
	var total uint64
	for _, c := range p.counters {
		total += c.cost.Load()
	}
	return total
}

// Reset zeroes all counters.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for _, c := range p.counters {
		c.count.Store(0)
		c.cost.Store(0)
	}
}

// Sample is one row of a profile report.
type Sample struct {
	Name    string
	Count   uint64
	Cost    uint64
	Percent float64
}

// Report returns all non-zero counters sorted by descending cost, with
// Percent filled in relative to the total cost.
func (p *Profiler) Report() []Sample {
	if p == nil {
		return nil
	}
	total := p.TotalCost()
	var out []Sample
	for name, c := range p.counters {
		n := c.count.Load()
		if n == 0 {
			continue
		}
		s := Sample{Name: name, Count: n, Cost: c.cost.Load()}
		if total > 0 {
			s.Percent = 100 * float64(s.Cost) / float64(total)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// String renders the report as an aligned text table in the spirit of
// the paper's Figure 3.
func (p *Profiler) String() string {
	rep := p.Report()
	if len(rep) == 0 {
		return "(no profile samples)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %14s %14s %8s\n", "function", "events", "cost", "%")
	for _, s := range rep {
		fmt.Fprintf(&b, "%-20s %14d %14d %7.2f%%\n", s.Name, s.Count, s.Cost, s.Percent)
	}
	return b.String()
}
