// Package workload implements the paper's microbenchmark drivers: the
// Figure 1 fork-latency loop (sequential and concurrent), the huge-page
// variant, the worst-case fault-cost probe of Table 1, and the
// fork-plus-access sweeps of Figure 8.
package workload

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/stats"
)

const rw = vm.ProtRead | vm.ProtWrite

// Config selects a fork engine and page size for a measurement, the
// three curves of Figure 7.
type Config struct {
	Mode core.ForkMode
	Huge bool // back memory with 2 MiB pages (paper: "fork w/ huge pages")
}

// Name labels the configuration as the paper's legends do.
func (c Config) Name() string {
	if c.Huge {
		return c.Mode.String() + " w/ huge pages"
	}
	return c.Mode.String()
}

func (c Config) flags() vm.MapFlags {
	f := vm.MapPrivate | vm.MapPopulate
	if c.Huge {
		f |= vm.MapHuge
	}
	return f
}

// ForkLatencyResult is one point of Figures 2, 4 and 7.
type ForkLatencyResult struct {
	Size    uint64 // bytes of allocated memory
	Lat     stats.Summary
	Samples stats.Sample
}

// MeasureForkLatency runs the Figure 1 benchmark: allocate and populate
// size bytes once, then fork reps times, timing each invocation from
// just before the call to its return in the parent; the child exits
// immediately and the parent waits before the next iteration.
func MeasureForkLatency(k *kernel.Kernel, cfg Config, size uint64, reps int) (ForkLatencyResult, error) {
	p := k.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(size, rw, cfg.flags()); err != nil {
		return ForkLatencyResult{}, fmt.Errorf("workload: mmap %d bytes: %w", size, err)
	}
	// One unmeasured warmup fork stabilizes the first measurement
	// (cold allocator metadata and Go heap growth otherwise dominate
	// small-rep means).
	if warm, err := p.Fork(kernel.WithMode(cfg.Mode)); err == nil {
		warm.Exit()
		warm.Wait()
	}
	res := ForkLatencyResult{Size: size}
	for i := 0; i < reps; i++ {
		start := time.Now()
		c, err := p.Fork(kernel.WithMode(cfg.Mode))
		elapsed := time.Since(start)
		if err != nil {
			return ForkLatencyResult{}, err
		}
		res.Samples.AddDuration(elapsed)
		c.Exit()
		c.Wait()
	}
	res.Lat = res.Samples.Summarize()
	return res, nil
}

// MeasureForkLatencyConcurrent runs n independent instances of the
// benchmark concurrently against one kernel, reproducing the
// concurrent line of Figure 2: the instances share no pages, but they
// contend on the global struct page metadata exactly as concurrent
// forks contend on mem_map cachelines.
func MeasureForkLatencyConcurrent(k *kernel.Kernel, cfg Config, size uint64, reps, n int) (ForkLatencyResult, error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		res  = ForkLatencyResult{Size: size}
		fail error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := MeasureForkLatency(k, cfg, size, reps)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fail = err
				return
			}
			for _, v := range r.Samples.Values() {
				res.Samples.Add(v)
			}
		}()
	}
	wg.Wait()
	if fail != nil {
		return ForkLatencyResult{}, fail
	}
	res.Lat = res.Samples.Summarize()
	return res, nil
}

// MeasureFaultCost reproduces Table 1: fork a process with a 1 GiB
// (size-byte) populated region, then time a one-byte write by the child
// to the middle of the region — the worst case for on-demand-fork,
// which must copy a page table during that fault.
func MeasureFaultCost(k *kernel.Kernel, cfg Config, size uint64, reps int) (stats.Summary, error) {
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(size, rw, cfg.flags())
	if err != nil {
		return stats.Summary{}, err
	}
	// Fill with actual data (once) so COW faults copy real bytes, as in
	// the paper's benchmarks.
	if err := FillRegion(p, base, size); err != nil {
		return stats.Summary{}, err
	}
	var sample stats.Sample
	for i := 0; i < reps; i++ {
		c, err := p.Fork(kernel.WithMode(cfg.Mode))
		if err != nil {
			return stats.Summary{}, err
		}
		mid := base + addr.V(size/2)
		start := time.Now()
		err = c.StoreByte(mid, 0xAA)
		elapsed := time.Since(start)
		if err != nil {
			c.Exit()
			return stats.Summary{}, err
		}
		sample.AddDuration(elapsed)
		c.Exit()
		c.Wait()
	}
	return sample.Summarize(), nil
}

// FillRegion writes a deterministic pattern over the whole region in
// large chunks, so every page is backed by a distinct, materialized
// frame — the "fill it with data" step of the paper's benchmark
// programs (Figure 1).
func FillRegion(p *kernel.Process, base addr.V, size uint64) error {
	const chunk = 1 << 20
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	for off := uint64(0); off < size; off += chunk {
		n := uint64(chunk)
		if off+n > size {
			n = size - off
		}
		if err := p.WriteAt(buf[:n], base+addr.V(off)); err != nil {
			return err
		}
	}
	return nil
}

// AccessMixResult is one point of Figure 8. Timings are the minimum
// over the repetitions: at low accessed fractions the measured interval
// is microseconds, where a single host GC pause would otherwise swamp
// the signal the paper's second-scale runs average away.
type AccessMixResult struct {
	AccessedPct int // fraction of the region accessed after fork
	ReadPct     int // fraction of accesses that are reads
	ClassicMS   float64
	ODFMS       float64
	ReductionPC float64 // time reduction of ODF vs classic, percent
}

// chunkBytes is the memcpy transfer unit of the Figure 8 benchmark
// (the paper uses a 32 MiB buffer; we use a smaller unit so small
// regions still see the requested read/write interleaving).
const chunkBytes = 256 * 1024

// MeasureAccessMix reproduces one Figure 8 point for both engines:
// total time to fork and then sequentially access the first
// accessedPct% of the region with the given read/write mix. The two
// engines' repetitions are interleaved and separated by explicit GC so
// the multi-hundred-MiB page garbage of a write-heavy rep cannot bias
// whichever engine runs later.
func MeasureAccessMix(k *kernel.Kernel, size uint64, accessedPct, readPct, reps int) (AccessMixResult, error) {
	runOnce := func(mode core.ForkMode) (time.Duration, error) {
		p := k.NewProcess()
		defer p.Exit()
		base, err := p.Mmap(size, rw, vm.MapPrivate|vm.MapPopulate)
		if err != nil {
			return 0, err
		}
		runtime.GC()
		start := time.Now()
		c, err := p.Fork(kernel.WithMode(mode))
		if err != nil {
			return 0, err
		}
		defer c.Exit()
		if err := accessMix(p, base, size, accessedPct, readPct); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	var classicS, odfS stats.Sample
	for i := 0; i < reps; i++ {
		dc, err := runOnce(core.ForkClassic)
		if err != nil {
			return AccessMixResult{}, err
		}
		classicS.AddDuration(dc)
		do, err := runOnce(core.ForkOnDemand)
		if err != nil {
			return AccessMixResult{}, err
		}
		odfS.AddDuration(do)
	}
	res := AccessMixResult{
		AccessedPct: accessedPct,
		ReadPct:     readPct,
		ClassicMS:   classicS.Min(),
		ODFMS:       odfS.Min(),
	}
	if res.ClassicMS > 0 {
		res.ReductionPC = 100 * (res.ClassicMS - res.ODFMS) / res.ClassicMS
	}
	return res, nil
}

// accessMix sequentially accesses the first accessedPct% of the region
// in chunkBytes units, choosing read or write per chunk so that readPct
// percent of the chunks are reads (memcpy to/from a bounce buffer, as
// in the paper's benchmark).
func accessMix(p *kernel.Process, base addr.V, size uint64, accessedPct, readPct int) error {
	limit := size * uint64(accessedPct) / 100
	buf := make([]byte, chunkBytes)
	// Error-diffusion style scheduling: spread reads evenly through the
	// access stream at the requested ratio.
	credit := 0
	for off := uint64(0); off < limit; off += chunkBytes {
		n := uint64(chunkBytes)
		if off+n > limit {
			n = limit - off
		}
		credit += readPct
		if credit >= 100 {
			credit -= 100
			if err := p.ReadAt(buf[:n], base+addr.V(off)); err != nil {
				return err
			}
		} else {
			if err := p.WriteAt(buf[:n], base+addr.V(off)); err != nil {
				return err
			}
		}
	}
	return nil
}
