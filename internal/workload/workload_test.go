package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

const testSize = 16 * addr.PTECoverage // 32 MiB

func TestConfigNames(t *testing.T) {
	cases := map[Config]string{
		{Mode: core.ForkClassic}:             "fork",
		{Mode: core.ForkClassic, Huge: true}: "fork w/ huge pages",
		{Mode: core.ForkOnDemand}:            "on-demand-fork",
	}
	for cfg, want := range cases {
		if got := cfg.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestMeasureForkLatency(t *testing.T) {
	k := kernel.New()
	for _, cfg := range []Config{
		{Mode: core.ForkClassic},
		{Mode: core.ForkClassic, Huge: true},
		{Mode: core.ForkOnDemand},
	} {
		res, err := MeasureForkLatency(k, cfg, testSize, 3)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if res.Lat.N != 3 {
			t.Errorf("%s: N = %d", cfg.Name(), res.Lat.N)
		}
		if res.Lat.Mean <= 0 {
			t.Errorf("%s: non-positive mean latency", cfg.Name())
		}
		if res.Lat.Min > res.Lat.Mean || res.Lat.Mean > res.Lat.Max {
			t.Errorf("%s: min/mean/max out of order: %+v", cfg.Name(), res.Lat)
		}
	}
	if got := k.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
}

func TestODFIsFasterThanClassic(t *testing.T) {
	// The headline result must hold even at test scale: at 32 MiB the
	// classic fork copies 8192 PTEs, ODF touches 16 table counters.
	k := kernel.New()
	classic, err := MeasureForkLatency(k, Config{Mode: core.ForkClassic}, testSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	odf, err := MeasureForkLatency(k, Config{Mode: core.ForkOnDemand}, testSize, 5)
	if err != nil {
		t.Fatal(err)
	}
	if odf.Lat.Mean >= classic.Lat.Mean {
		t.Errorf("ODF (%.4fms) not faster than classic (%.4fms)",
			odf.Lat.Mean, classic.Lat.Mean)
	}
}

func TestMeasureForkLatencyConcurrent(t *testing.T) {
	k := kernel.New()
	res, err := MeasureForkLatencyConcurrent(k, Config{Mode: core.ForkClassic}, testSize, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lat.N != 6 {
		t.Errorf("N = %d, want 6", res.Lat.N)
	}
	if got := k.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
}

func TestMeasureFaultCost(t *testing.T) {
	k := kernel.New()
	size := uint64(4 * addr.PTECoverage)
	for _, cfg := range []Config{
		{Mode: core.ForkClassic},
		{Mode: core.ForkClassic, Huge: true},
		{Mode: core.ForkOnDemand},
	} {
		sum, err := MeasureFaultCost(k, cfg, size, 2)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if sum.N != 2 || sum.Mean <= 0 {
			t.Errorf("%s: bad summary %+v", cfg.Name(), sum)
		}
	}
	if got := k.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
}

func TestHugeFaultSlowerThanODF(t *testing.T) {
	// Table 1 shape: huge-page COW (2 MiB copy) must cost more than an
	// ODF fault (table copy), which costs more than a plain COW fault.
	k := kernel.New()
	size := uint64(8 * addr.PTECoverage)
	huge, err := MeasureFaultCost(k, Config{Mode: core.ForkClassic, Huge: true}, size, 3)
	if err != nil {
		t.Fatal(err)
	}
	odf, err := MeasureFaultCost(k, Config{Mode: core.ForkOnDemand}, size, 3)
	if err != nil {
		t.Fatal(err)
	}
	if huge.Mean <= odf.Mean {
		t.Errorf("huge fault (%.4fms) not slower than ODF fault (%.4fms)",
			huge.Mean, odf.Mean)
	}
}

func TestMeasureAccessMix(t *testing.T) {
	k := kernel.New()
	res, err := MeasureAccessMix(k, testSize, 50, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassicMS <= 0 || res.ODFMS <= 0 {
		t.Errorf("non-positive timings: %+v", res)
	}
	if res.AccessedPct != 50 || res.ReadPct != 50 {
		t.Errorf("labels wrong: %+v", res)
	}
	if got := k.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
}

func TestAccessMixZeroAccessHighReduction(t *testing.T) {
	// Figure 8 at x=0: with no post-fork accesses the ODF total cost is
	// almost pure fork latency, so the reduction must be large.
	k := kernel.New()
	res, err := MeasureAccessMix(k, 64*addr.PTECoverage, 0, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReductionPC < 50 {
		t.Errorf("reduction at 0%% accessed = %.1f%%, want > 50%%", res.ReductionPC)
	}
}

func TestAccessMixInterleaving(t *testing.T) {
	// The read/write scheduler must hit the requested ratio.
	k := kernel.New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(testSize, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := accessMix(p, base, testSize, 100, 25); err != nil {
		t.Fatal(err)
	}
	// 25% reads of 128 chunks = 32 read chunks; the write chunks dirty
	// their pages. Verify via dirty-page count: 75% of pages dirty.
	st := p.Space().Tables()
	wantDirtyPages := int(float64(testSize/addr.PageSize) * 0.75)
	dirty := countDirty(p)
	tolerance := int(testSize / addr.PageSize / 10)
	if dirty < wantDirtyPages-tolerance || dirty > wantDirtyPages+tolerance {
		t.Errorf("dirty pages = %d, want ~%d (present=%d)", dirty, wantDirtyPages, st.PresentPTEs)
	}
}

func countDirty(p *kernel.Process) int {
	n := 0
	w := p.Space().Walker()
	for _, vma := range p.Space().VMAs() {
		for a := vma.Range.Start; a < vma.Range.End; a += addr.PageSize {
			if leaf, li := w.FindPTE(a); leaf != nil && leaf.Entry(li).Dirty() {
				n++
			}
		}
	}
	return n
}
