package tenant

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
)

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	return NewManager(metrics.New())
}

func TestCreateLookupDestroy(t *testing.T) {
	m := newTestManager(t)
	a, err := m.Create("alpha", 100)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if a.TenantID() == 0 {
		t.Fatal("tenant id 0 is reserved for 'no tenant'")
	}
	if _, err := m.Create("alpha", 50); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if got := m.Lookup("alpha"); got != a {
		t.Fatalf("Lookup = %v, want %v", got, a)
	}
	if got := m.ByID(a.TenantID()); got != a {
		t.Fatalf("ByID = %v, want %v", got, a)
	}
	b, _ := m.Create("beta", 0)
	if ids := []uint64{a.TenantID(), b.TenantID()}; ids[0] == ids[1] {
		t.Fatal("duplicate tenant ids")
	}
	m.Destroy(a)
	if m.Lookup("alpha") != nil {
		t.Fatal("destroyed tenant still resolvable")
	}
	// The name is free for reuse after destroy.
	if _, err := m.Create("alpha", 1); err != nil {
		t.Fatalf("recreate after destroy: %v", err)
	}
}

func TestChargeUnchargePeakShared(t *testing.T) {
	m := newTestManager(t)
	a, _ := m.Create("alpha", 100)
	a.ChargeFrames(10)
	a.ChargeFrames(5)
	if got := a.Usage(); got != 15 {
		t.Fatalf("Usage = %d, want 15", got)
	}
	a.UnchargeFrames(12)
	if got := a.Usage(); got != 3 {
		t.Fatalf("Usage after uncharge = %d, want 3", got)
	}
	if got := a.Peak(); got != 15 {
		t.Fatalf("Peak = %d, want 15", got)
	}
	a.AdjustShared(2)
	a.AdjustShared(-1)
	if got := a.Shared(); got != 1 {
		t.Fatalf("Shared = %d, want 1", got)
	}
}

func TestReclaimOvershoot(t *testing.T) {
	m := newTestManager(t)
	a, _ := m.Create("alpha", 10)
	a.ChargeFrames(25)
	if got := a.ReclaimOvershoot(); got != 15 {
		t.Fatalf("overshoot = %d, want 15", got)
	}
	a.UnchargeFrames(20)
	if got := a.ReclaimOvershoot(); got != 0 {
		t.Fatalf("overshoot under quota = %d, want 0", got)
	}
	u, _ := m.Create("unlimited", 0)
	u.ChargeFrames(1 << 20)
	if got := u.ReclaimOvershoot(); got != 0 {
		t.Fatalf("unlimited overshoot = %d, want 0", got)
	}
}

func TestAdmitFastPath(t *testing.T) {
	m := newTestManager(t)
	a, _ := m.Create("alpha", 10)
	wait, err := m.AdmitFork(a)
	if err != nil || wait != 0 {
		t.Fatalf("AdmitFork under quota = (%v, %v), want (0, nil)", wait, err)
	}
	if st := a.Stats(); st.ForksAdmitted != 1 || st.ForksQueued != 0 {
		t.Fatalf("stats = %+v, want 1 admitted 0 queued", st)
	}
}

func TestAdmitQueuesUntilUncharge(t *testing.T) {
	m := newTestManager(t)
	a, _ := m.Create("alpha", 10)
	a.ChargeFrames(20) // over quota

	done := make(chan error, 1)
	go func() {
		wait, err := m.AdmitFork(a)
		if err == nil && wait == 0 {
			err = errors.New("queued fork reported zero wait")
		}
		done <- err
	}()
	// The fork must not be admitted while the tenant is over quota.
	select {
	case err := <-done:
		t.Fatalf("fork admitted while over quota: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.UnchargeFrames(15) // back under quota; uncharge kicks the queue
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AdmitFork after uncharge: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued fork never admitted after uncharge")
	}
	if st := a.Stats(); st.ForksQueued != 1 || st.ForksAdmitted != 1 {
		t.Fatalf("stats = %+v, want 1 queued 1 admitted", st)
	}
}

func TestAdmitTimeout(t *testing.T) {
	m := newTestManager(t)
	m.SetAdmitTimeout(30 * time.Millisecond)
	a, _ := m.Create("alpha", 10)
	a.ChargeFrames(20)
	start := time.Now()
	_, err := m.AdmitFork(a)
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("AdmitFork = %v, want ErrQuotaExceeded", err)
	}
	if since := time.Since(start); since < 30*time.Millisecond {
		t.Fatalf("timed out after %v, before the deadline", since)
	}
	if st := a.Stats(); st.ForksTimedOut != 1 {
		t.Fatalf("stats = %+v, want 1 timed out", st)
	}
}

func TestAdmitQueueFull(t *testing.T) {
	m := newTestManager(t)
	m.SetQueueBound(2)
	m.SetAdmitTimeout(time.Minute)
	a, _ := m.Create("alpha", 10)
	a.ChargeFrames(20)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.AdmitFork(a)
		}()
	}
	waitFor(t, func() bool { return m.Waiting() == 2 })
	if _, err := m.AdmitFork(a); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("overfull queue AdmitFork = %v, want ErrQuotaExceeded", err)
	}
	if st := a.Stats(); st.ForksRejected != 1 {
		t.Fatalf("stats = %+v, want 1 rejected", st)
	}
	a.UnchargeFrames(15)
	wg.Wait()
}

func TestAdmitFIFOAndRoundRobin(t *testing.T) {
	m := newTestManager(t)
	m.SetAdmitTimeout(time.Minute)
	a, _ := m.Create("alpha", 0)
	b, _ := m.Create("beta", 0)

	// A token-consuming pressure predicate: each token admits exactly
	// one queued fork, so grants are observed one at a time and the
	// dispatch order is deterministic.
	var tokens atomic.Int64
	m.SetPressure(func() bool {
		for {
			n := tokens.Load()
			if n <= 0 {
				return true
			}
			if tokens.CompareAndSwap(n, n-1) {
				return false
			}
		}
	})

	type grant struct {
		tenant string
		seq    int
	}
	grants := make(chan grant, 4)
	var wg sync.WaitGroup
	enqueue := func(t0 *Tenant, name string, seq int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.AdmitFork(t0); err == nil {
				grants <- grant{name, seq}
			}
		}()
		waitFor(t, func() bool { return t0.Stats().QueueWaiting >= seq+1 })
	}
	enqueue(a, "alpha", 0)
	enqueue(a, "alpha", 1)
	enqueue(b, "beta", 0)
	enqueue(b, "beta", 1)

	// Round-robin across tenants, FIFO within each tenant.
	want := []grant{{"alpha", 0}, {"beta", 0}, {"alpha", 1}, {"beta", 1}}
	for i, w := range want {
		tokens.Add(1)
		select {
		case g := <-grants:
			if g != w {
				t.Fatalf("grant %d = %v, want %v", i, g, w)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("grant %d (%v) never arrived", i, w)
		}
	}
	wg.Wait()
}

func TestDestroyReleasesWaiters(t *testing.T) {
	m := newTestManager(t)
	m.SetAdmitTimeout(time.Minute)
	a, _ := m.Create("alpha", 10)
	a.ChargeFrames(20)
	done := make(chan error, 1)
	go func() {
		_, err := m.AdmitFork(a)
		done <- err
	}()
	waitFor(t, func() bool { return m.Waiting() == 1 })
	m.Destroy(a)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter on destroyed tenant: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Destroy did not release the queued fork")
	}
	if m.Waiting() != 0 {
		t.Fatalf("Waiting = %d after destroy, want 0", m.Waiting())
	}
	// Forks by a destroyed tenant admit immediately.
	if _, err := m.AdmitFork(a); err != nil {
		t.Fatalf("AdmitFork on dead tenant: %v", err)
	}
}

func TestPressureQueuesEveryTenant(t *testing.T) {
	m := newTestManager(t)
	m.SetAdmitTimeout(time.Minute)
	pressed := true
	var mu sync.Mutex
	m.SetPressure(func() bool { mu.Lock(); defer mu.Unlock(); return pressed })
	a, _ := m.Create("alpha", 0) // unlimited quota, still gated by pressure
	done := make(chan struct{})
	go func() {
		m.AdmitFork(a)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("fork admitted under pressure")
	case <-time.After(20 * time.Millisecond):
	}
	mu.Lock()
	pressed = false
	mu.Unlock()
	// No uncharge edge fires here; the poll backstop must readmit.
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("fork not admitted after pressure lifted")
	}
}

func TestRenderDetachedAndActive(t *testing.T) {
	var nilM *Manager
	if got := nilM.Render(); got != "# odf tenants: control plane detached\n" {
		t.Fatalf("nil Render = %q", got)
	}
	m := newTestManager(t)
	a, _ := m.Create("alpha", 100)
	a.ChargeFrames(7)
	out := m.Render()
	for _, want := range []string{
		"# odf tenants: active=1 waiting=0\n",
		"tenant.1.name alpha\n",
		"tenant.1.quota_frames 100\n",
		"tenant.1.usage_frames 7\n",
	} {
		if !contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// waitFor polls cond for up to 2 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}
