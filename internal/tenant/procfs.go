package tenant

import (
	"fmt"
	"strings"
)

// Render produces the /proc/odf/tenants text: a header with the
// registry-wide state, then one flat dotted-name block per tenant in
// creation order, in the same `name value` shape /proc/odf/metrics
// uses. The layout is deterministic for a given state, so it is
// golden-testable.
func (m *Manager) Render() string {
	var b strings.Builder
	if m == nil {
		b.WriteString("# odf tenants: control plane detached\n")
		return b.String()
	}
	stats := m.StatsAll()
	fmt.Fprintf(&b, "# odf tenants: active=%d waiting=%d\n", len(stats), m.Waiting())
	for _, s := range stats {
		p := fmt.Sprintf("tenant.%d.", s.ID)
		fmt.Fprintf(&b, "%sname %s\n", p, s.Name)
		fmt.Fprintf(&b, "%squota_frames %d\n", p, s.QuotaFrames)
		fmt.Fprintf(&b, "%susage_frames %d\n", p, s.UsageFrames)
		fmt.Fprintf(&b, "%speak_frames %d\n", p, s.PeakFrames)
		fmt.Fprintf(&b, "%sshared_frames %d\n", p, s.SharedFrames)
		fmt.Fprintf(&b, "%sreclaimed_frames %d\n", p, s.ReclaimedFrames)
		fmt.Fprintf(&b, "%sforks_admitted %d\n", p, s.ForksAdmitted)
		fmt.Fprintf(&b, "%sforks_queued %d\n", p, s.ForksQueued)
		fmt.Fprintf(&b, "%sforks_rejected %d\n", p, s.ForksRejected)
		fmt.Fprintf(&b, "%sforks_timedout %d\n", p, s.ForksTimedOut)
		fmt.Fprintf(&b, "%squeue_waiting %d\n", p, s.QueueWaiting)
		fmt.Fprintf(&b, "%squeue_wait_p50_ns %d\n", p, s.QueueWait.Quantile(0.50))
		fmt.Fprintf(&b, "%squeue_wait_p99_ns %d\n", p, s.QueueWait.Quantile(0.99))
	}
	return b.String()
}
