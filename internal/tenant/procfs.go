package tenant

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Render produces the /proc/odf/tenants text: a header with the
// registry-wide state, then one flat dotted-name block per tenant in
// creation order, in the same `name value` shape /proc/odf/metrics
// uses. The layout is deterministic for a given state, so it is
// golden-testable.
func (m *Manager) Render() string {
	var b strings.Builder
	if m == nil {
		b.WriteString("# odf tenants: control plane detached\n")
		return b.String()
	}
	stats := m.StatsAll()
	fmt.Fprintf(&b, "# odf tenants: active=%d waiting=%d\n", len(stats), m.Waiting())
	for _, s := range stats {
		p := fmt.Sprintf("tenant.%d.", s.ID)
		fmt.Fprintf(&b, "%sname %s\n", p, s.Name)
		fmt.Fprintf(&b, "%squota_frames %d\n", p, s.QuotaFrames)
		fmt.Fprintf(&b, "%susage_frames %d\n", p, s.UsageFrames)
		fmt.Fprintf(&b, "%speak_frames %d\n", p, s.PeakFrames)
		fmt.Fprintf(&b, "%sshared_frames %d\n", p, s.SharedFrames)
		fmt.Fprintf(&b, "%sreclaimed_frames %d\n", p, s.ReclaimedFrames)
		fmt.Fprintf(&b, "%sforks_admitted %d\n", p, s.ForksAdmitted)
		fmt.Fprintf(&b, "%sforks_queued %d\n", p, s.ForksQueued)
		fmt.Fprintf(&b, "%sforks_rejected %d\n", p, s.ForksRejected)
		fmt.Fprintf(&b, "%sforks_timedout %d\n", p, s.ForksTimedOut)
		fmt.Fprintf(&b, "%squeue_waiting %d\n", p, s.QueueWaiting)
		fmt.Fprintf(&b, "%squeue_wait_p50_ns %d\n", p, s.QueueWait.Quantile(0.50))
		fmt.Fprintf(&b, "%squeue_wait_p99_ns %d\n", p, s.QueueWait.Quantile(0.99))
		if t := m.ByID(s.ID); t != nil && t.slot != nil {
			ss := t.slot.Snapshot()
			for e := metrics.ForkEngine(0); e < metrics.NumEngines; e++ {
				fmt.Fprintf(&b, "%sfork.%s.forks %d\n", p, e, ss.Forks[e])
				fmt.Fprintf(&b, "%sfork.%s.latency_p99_ns %d\n", p, e, ss.ForkLatency[e].Quantile(0.99))
			}
			fmt.Fprintf(&b, "%sfault.table_splits %d\n", p, ss.TableSplits)
			fmt.Fprintf(&b, "%sfault.pmd_splits %d\n", p, ss.PMDSplits)
			fmt.Fprintf(&b, "%sfault.fast_dedups %d\n", p, ss.FastDedups)
			fmt.Fprintf(&b, "%sfault.page_copies %d\n", p, ss.PageCopies)
			fmt.Fprintf(&b, "%sfault.huge_copies %d\n", p, ss.HugeCopies)
			fmt.Fprintf(&b, "%sfault.swap_ins %d\n", p, ss.SwapIns)
			fmt.Fprintf(&b, "%sreclaim_evictions %d\n", p, ss.ReclaimEvictions)
			fmt.Fprintf(&b, "%squota_rejections %d\n", p, ss.QuotaRejections)
		}
	}
	return b.String()
}
