// Package tenant is the multi-tenant control plane of the simulated
// kernel: every process lineage belongs to a Tenant with a frame quota,
// charged and uncharged at the physical allocator (phys.FrameCharger),
// and the Manager arbitrates fork admission when tenants run over
// quota or the machine is under memory pressure.
//
// Quotas are soft on the data path: a fault that needs a frame always
// gets one, and the overshoot instead (a) makes the tenant's frames
// the preferred reclaim victims (fair-share reclaim, see
// internal/mem/reclaim) and (b) gates the tenant's *forks*, which
// queue in a bounded per-tenant FIFO with round-robin dispatch across
// tenants instead of OOMing the box. A fork that cannot be admitted —
// full queue or admission timeout — fails with ErrQuotaExceeded, never
// ErrNoMem, so callers can tell "you are over your share" apart from
// "the machine is broken".
package tenant

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// ErrQuotaExceeded reports a fork refused by admission control: the
// tenant's admission queue was full, or the fork waited out the
// admission timeout while the tenant stayed over quota. It is the
// tenant-facing sibling of ErrNoMem — the machine has memory, this
// tenant has used its share.
var ErrQuotaExceeded = errors.New("tenant: frame quota exceeded")

// Defaults for the admission controller.
const (
	// DefaultQueueBound is the per-tenant cap on queued forks.
	DefaultQueueBound = 64
	// DefaultAdmitTimeout is how long a queued fork waits for the
	// tenant to come back under quota before failing.
	DefaultAdmitTimeout = 2 * time.Second
	// admitPollInterval is the backstop re-evaluation period for queued
	// forks, covering admissibility changes that have no uncharge edge
	// to kick the queue (quota raised, pressure relieved).
	admitPollInterval = time.Millisecond
)

// Manager is the tenant registry plus the fork admission controller.
// A nil Manager is inert: AdmitFork admits immediately.
type Manager struct {
	met *metrics.Registry

	mu         sync.Mutex
	byID       map[uint64]*Tenant
	byName     map[string]*Tenant
	order      []*Tenant // creation order: deterministic listing + round-robin
	nextID     uint64
	rrNext     int // round-robin cursor into order for dispatch fairness
	queueBound int
	timeout    time.Duration
	pressure   func() bool // true = machine-wide memory pressure; forks queue

	// waiting counts queued forks across all tenants. Uncharge paths
	// check it with one atomic load before taking mu, so tenants that
	// never queue pay nothing on frame frees.
	waiting atomic.Int64
}

// NewManager returns an empty registry. The metrics registry may be
// nil.
func NewManager(met *metrics.Registry) *Manager {
	return &Manager{
		met:        met,
		byID:       make(map[uint64]*Tenant),
		byName:     make(map[string]*Tenant),
		nextID:     1,
		queueBound: DefaultQueueBound,
		timeout:    DefaultAdmitTimeout,
	}
}

// SetQueueBound caps each tenant's admission queue (minimum 1).
func (m *Manager) SetQueueBound(n int) {
	if n < 1 {
		n = 1
	}
	m.mu.Lock()
	m.queueBound = n
	m.mu.Unlock()
}

// SetAdmitTimeout sets how long queued forks wait before failing with
// ErrQuotaExceeded.
func (m *Manager) SetAdmitTimeout(d time.Duration) {
	m.mu.Lock()
	m.timeout = d
	m.mu.Unlock()
}

// SetPressure installs the machine-wide memory pressure predicate
// (typically: free frames under the allocator limit's last few
// percent). While it reports true, every tenant's forks queue — the
// "don't OOM the box" half of admission control.
func (m *Manager) SetPressure(f func() bool) {
	m.mu.Lock()
	m.pressure = f
	m.mu.Unlock()
}

// Create registers a tenant with a frame quota (0 = unlimited).
func (m *Manager) Create(name string, quotaFrames int64) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("tenant: empty name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byName[name]; ok {
		return nil, fmt.Errorf("tenant: %q already exists", name)
	}
	t := &Tenant{m: m, id: m.nextID, name: name}
	t.quota.Store(quotaFrames)
	t.slot = m.met.RegisterTenant(t.id, name)
	m.nextID++
	m.byID[t.id] = t
	m.byName[name] = t
	m.order = append(m.order, t)
	return t, nil
}

// Lookup returns the tenant with the given name (nil when absent).
func (m *Manager) Lookup(name string) *Tenant {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byName[name]
}

// ByID returns the tenant with the given id (nil when absent).
func (m *Manager) ByID(id uint64) *Tenant {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byID[id]
}

// List returns the live tenants in creation order.
func (m *Manager) List() []*Tenant {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Tenant, len(m.order))
	copy(out, m.order)
	return out
}

// Destroy unregisters a tenant and releases its queued forks (they are
// admitted: a dead tenant no longer has a quota to enforce). Frames
// still charged to the tenant keep uncharging against it harmlessly as
// the owning processes exit.
func (m *Manager) Destroy(t *Tenant) {
	if m == nil || t == nil {
		return
	}
	m.mu.Lock()
	t.dead.Store(true)
	for _, ch := range t.waiters {
		close(ch)
		m.waiting.Add(-1)
	}
	t.waiters = nil
	delete(m.byID, t.id)
	delete(m.byName, t.name)
	for i, o := range m.order {
		if o == t {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	if len(m.order) == 0 {
		m.rrNext = 0
	} else {
		m.rrNext %= len(m.order)
	}
	m.mu.Unlock()
}

// admissibleLocked reports whether a fork by t may run now: the tenant
// is at or under quota and the machine is not in its pressure band.
func (m *Manager) admissibleLocked(t *Tenant) bool {
	if q := t.quota.Load(); q > 0 && t.usage.Load() > q {
		return false
	}
	if m.pressure != nil && m.pressure() {
		return false
	}
	return true
}

// AdmitFork gates one fork by tenant t. It returns immediately when
// the tenant is admissible and has no earlier waiters (FIFO); otherwise
// the fork queues until an uncharge or quota change readmits the
// tenant, for at most the admission timeout. The returned duration is
// the time spent queued (0 on the fast path).
func (m *Manager) AdmitFork(t *Tenant) (time.Duration, error) {
	if m == nil || t == nil || t.dead.Load() {
		return 0, nil
	}
	m.mu.Lock()
	if len(t.waiters) == 0 && m.admissibleLocked(t) {
		m.mu.Unlock()
		t.admitted.Add(1)
		if m.met.Enabled() {
			m.met.Tenant.ForksAdmitted.Inc()
		}
		return 0, nil
	}
	if len(t.waiters) >= m.queueBound {
		bound := m.queueBound
		m.mu.Unlock()
		t.rejected.Add(1)
		if m.met.Enabled() {
			m.met.Tenant.ForksRejected.Inc()
			if ts := t.slot; ts != nil {
				ts.QuotaRejections.Inc()
			}
		}
		return 0, fmt.Errorf("tenant %q: admission queue full (%d queued forks): %w",
			t.name, bound, ErrQuotaExceeded)
	}
	ch := make(chan struct{})
	t.waiters = append(t.waiters, ch)
	m.waiting.Add(1)
	timeout := m.timeout
	m.mu.Unlock()

	t.queuedForks.Add(1)
	if m.met.Enabled() {
		m.met.Tenant.ForksQueued.Inc()
	}
	start := time.Now()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	poll := time.NewTicker(admitPollInterval)
	defer poll.Stop()
	for {
		select {
		case <-ch:
			return m.granted(t, start), nil
		case <-poll.C:
			// Backstop: re-evaluate even without an uncharge edge.
			m.Kick()
		case <-deadline.C:
			m.mu.Lock()
			withdrawn := t.removeWaiterLocked(ch)
			if withdrawn {
				m.waiting.Add(-1)
			}
			m.mu.Unlock()
			if !withdrawn {
				// A grant landed between the timer firing and the
				// withdrawal; take it.
				<-ch
				return m.granted(t, start), nil
			}
			wait := time.Since(start)
			t.timedOut.Add(1)
			if m.met.Enabled() {
				m.met.Tenant.ForksRejected.Inc()
				m.met.Tenant.QueueWait.Observe(wait)
				if ts := t.slot; ts != nil {
					ts.QuotaRejections.Inc()
					ts.QueueWait.Observe(wait)
				}
			}
			return wait, fmt.Errorf(
				"tenant %q: fork admission timed out after %v (usage %d frames, quota %d): %w",
				t.name, timeout, t.usage.Load(), t.quota.Load(), ErrQuotaExceeded)
		}
	}
}

// granted finishes a queued admission: records the wait and counters.
func (m *Manager) granted(t *Tenant, start time.Time) time.Duration {
	wait := time.Since(start)
	t.admitted.Add(1)
	t.queueWait.Observe(wait)
	if m.met.Enabled() {
		m.met.Tenant.QueueWait.Observe(wait)
		if ts := t.slot; ts != nil {
			ts.QueueWait.Observe(wait)
		}
	}
	return wait
}

// Kick dispatches queued forks that have become admissible, scanning
// tenants round-robin from the cursor so no tenant's queue starves
// behind another's. Uncharge paths call it (via Tenant.UnchargeFrames)
// whenever any fork is queued.
func (m *Manager) Kick() {
	if m == nil || m.waiting.Load() == 0 {
		return
	}
	m.mu.Lock()
	for progress := true; progress; {
		progress = false
		n := len(m.order)
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			idx := (m.rrNext + i) % n
			t := m.order[idx]
			if len(t.waiters) == 0 || !m.admissibleLocked(t) {
				continue
			}
			ch := t.waiters[0]
			copy(t.waiters, t.waiters[1:])
			t.waiters = t.waiters[:len(t.waiters)-1]
			m.waiting.Add(-1)
			m.rrNext = (idx + 1) % n
			close(ch)
			progress = true
			break
		}
	}
	m.mu.Unlock()
}

// Waiting returns the number of queued forks across all tenants.
func (m *Manager) Waiting() int64 {
	if m == nil {
		return 0
	}
	return m.waiting.Load()
}

// Tenant is one isolation domain: a frame quota plus the accounting
// the allocator charges against it. It implements phys.FrameCharger;
// the same object is the LRU partition key and quota oracle the
// reclaim subsystem consults for fair-share victim selection.
type Tenant struct {
	m    *Manager
	id   uint64
	name string

	quota  atomic.Int64 // frames; 0 = unlimited
	usage  atomic.Int64 // live frames charged to this tenant
	peak   atomic.Int64 // high-water mark of usage
	shared atomic.Int64 // charged frames currently shared (refcount > 1)

	reclaimed   atomic.Uint64 // frames evicted from this tenant's LRU partition
	admitted    atomic.Uint64 // forks admitted (fast path + granted waits)
	queuedForks atomic.Uint64 // forks that entered the admission queue
	rejected    atomic.Uint64 // forks refused: queue full
	timedOut    atomic.Uint64 // forks refused: admission wait timed out

	queueWait metrics.Histogram // per-tenant admission wait

	// slot is the tenant's partition in the metrics registry (nil when
	// metrics are detached). The kernel hands it to each of the tenant's
	// address spaces so fork/fault paths charge it by direct pointer.
	slot *metrics.TenantSlot

	dead    atomic.Bool
	waiters []chan struct{} // queued forks, FIFO; guarded by m.mu
}

// removeWaiterLocked withdraws ch from the queue, reporting whether it
// was still queued. Caller holds m.mu.
func (t *Tenant) removeWaiterLocked(ch chan struct{}) bool {
	for i, w := range t.waiters {
		if w == ch {
			t.waiters = append(t.waiters[:i], t.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// TenantID returns the tenant's numeric id. It also attributes the
// tenant's allocator failpoint evaluations for scoped injection.
func (t *Tenant) TenantID() uint64 { return t.id }

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// SetQuota changes the frame quota (0 = unlimited) and redispatches
// the admission queues.
func (t *Tenant) SetQuota(frames int64) {
	t.quota.Store(frames)
	if t.m != nil {
		t.m.Kick()
	}
}

// Quota returns the frame quota (0 = unlimited).
func (t *Tenant) Quota() int64 { return t.quota.Load() }

// Usage returns the live frames charged to the tenant.
func (t *Tenant) Usage() int64 { return t.usage.Load() }

// Peak returns the high-water mark of Usage.
func (t *Tenant) Peak() int64 { return t.peak.Load() }

// Shared returns how many of the tenant's charged frames are currently
// shared (reference count above one — COW frames its lineages share).
func (t *Tenant) Shared() int64 { return t.shared.Load() }

// ChargeFrames implements phys.FrameCharger: n base frames were
// allocated on this tenant's account. Soft — never fails; overshoot
// is what fair-share reclaim and fork admission act on.
func (t *Tenant) ChargeFrames(n int64) {
	u := t.usage.Add(n)
	for {
		p := t.peak.Load()
		if u <= p || t.peak.CompareAndSwap(p, u) {
			return
		}
	}
}

// UnchargeFrames implements phys.FrameCharger: n base frames returned
// to the free lists. When forks are queued anywhere, the admission
// controller re-evaluates — frames freed by reclaim stealing from an
// over-quota tenant are exactly what readmits its queued forks.
func (t *Tenant) UnchargeFrames(n int64) {
	t.usage.Add(-n)
	if m := t.m; m != nil && m.waiting.Load() > 0 {
		m.Kick()
	}
}

// AdjustShared implements phys.FrameCharger: a charged frame crossed
// the shared (refcount 1↔2) boundary.
func (t *Tenant) AdjustShared(n int64) { t.shared.Add(n) }

// ReclaimOvershoot reports how many frames the tenant is over quota
// (0 when under quota or unlimited). The reclaim subsystem uses it to
// pick eviction victims proportional to overshoot.
func (t *Tenant) ReclaimOvershoot() int64 {
	q := t.quota.Load()
	if q <= 0 {
		return 0
	}
	if over := t.usage.Load() - q; over > 0 {
		return over
	}
	return 0
}

// NoteReclaimed records n frames evicted from this tenant's LRU
// partition by fair-share victim selection.
func (t *Tenant) NoteReclaimed(n int64) {
	t.reclaimed.Add(uint64(n))
	if ts := t.slot; ts != nil {
		ts.ReclaimEvictions.Add(uint64(n))
	}
}

// Slot returns the tenant's metrics partition (nil when metrics are
// detached). Address spaces hold it by direct pointer so hot paths
// charge per-tenant counters with no map lookup.
func (t *Tenant) Slot() *metrics.TenantSlot { return t.slot }

// Stats is a point-in-time copy of one tenant's accounting.
type Stats struct {
	ID              uint64
	Name            string
	QuotaFrames     int64
	UsageFrames     int64
	PeakFrames      int64
	SharedFrames    int64
	ReclaimedFrames uint64
	ForksAdmitted   uint64
	ForksQueued     uint64
	ForksRejected   uint64
	ForksTimedOut   uint64
	QueueWaiting    int
	QueueWait       metrics.HistogramSnapshot
}

// Stats returns the tenant's current accounting.
func (t *Tenant) Stats() Stats {
	s := Stats{
		ID:              t.id,
		Name:            t.name,
		QuotaFrames:     t.quota.Load(),
		UsageFrames:     t.usage.Load(),
		PeakFrames:      t.peak.Load(),
		SharedFrames:    t.shared.Load(),
		ReclaimedFrames: t.reclaimed.Load(),
		ForksAdmitted:   t.admitted.Load(),
		ForksQueued:     t.queuedForks.Load(),
		ForksRejected:   t.rejected.Load(),
		ForksTimedOut:   t.timedOut.Load(),
		QueueWait:       t.queueWait.Snapshot(),
	}
	if t.m != nil {
		t.m.mu.Lock()
		s.QueueWaiting = len(t.waiters)
		t.m.mu.Unlock()
	}
	return s
}

// StatsAll returns every live tenant's stats in creation order.
func (m *Manager) StatsAll() []Stats {
	if m == nil {
		return nil
	}
	out := make([]Stats, 0, len(m.List()))
	for _, t := range m.List() {
		out = append(out, t.Stats())
	}
	return out
}
