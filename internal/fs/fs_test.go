package fs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
)

func TestCreateOpenRemove(t *testing.T) {
	fsys := New()
	f := fsys.Create("a.txt")
	if f.Name() != "a.txt" || f.BackingName() != "a.txt" {
		t.Error("name wrong")
	}
	got, err := fsys.Open("a.txt")
	if err != nil || got != f {
		t.Fatalf("Open: %v", err)
	}
	if _, err := fsys.Open("missing"); err == nil {
		t.Error("Open(missing) succeeded")
	}
	if err := fsys.Remove("a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove("a.txt"); err == nil {
		t.Error("double remove succeeded")
	}
	if _, err := fsys.Open("a.txt"); err == nil {
		t.Error("Open after remove succeeded")
	}
}

func TestList(t *testing.T) {
	fsys := New()
	fsys.Create("b")
	fsys.Create("a")
	fsys.Create("c")
	got := fsys.List()
	want := []string{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("List = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("List[%d] = %q", i, got[i])
		}
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	f := New().Create("f")
	data := []byte("the quick brown fox")
	if n, err := f.WriteAt(data, 100); err != nil || n != len(data) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if got := f.Size(); got != 100+uint64(len(data)) {
		t.Errorf("Size = %d", got)
	}
	buf := make([]byte, len(data))
	if n, err := f.ReadAt(buf, 100); err != nil || n != len(data) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("roundtrip = %q", buf)
	}
}

func TestReadHolesAreZero(t *testing.T) {
	f := New().Create("f")
	f.WriteAt([]byte{1}, 3*addr.PageSize) // creates a hole before it
	buf := make([]byte, 16)
	buf[0] = 0xFF
	if _, err := f.ReadAt(buf, addr.PageSize); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x", i, b)
		}
	}
	if f.PageAt(addr.PageSize) != nil {
		t.Error("hole has a cached page")
	}
	if f.PageAt(3*addr.PageSize) == nil {
		t.Error("written page missing from cache")
	}
}

func TestReadPastEOF(t *testing.T) {
	f := New().Create("f")
	f.WriteAt([]byte("abc"), 0)
	buf := make([]byte, 10)
	n, err := f.ReadAt(buf, 0)
	if err != io.EOF || n != 3 {
		t.Errorf("ReadAt = %d, %v; want 3, EOF", n, err)
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("read past EOF err = %v", err)
	}
}

func TestWriteAcrossPages(t *testing.T) {
	f := New().Create("f")
	data := make([]byte, 3*addr.PageSize)
	for i := range data {
		data[i] = byte(i % 253)
	}
	f.WriteAt(data, addr.PageSize/2)
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, addr.PageSize/2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page write mismatch")
	}
	if f.CachedPages() != 4 {
		t.Errorf("cached pages = %d, want 4", f.CachedPages())
	}
}

func TestTruncate(t *testing.T) {
	f := New().Create("f")
	data := make([]byte, 2*addr.PageSize)
	for i := range data {
		data[i] = 0xAB
	}
	f.WriteAt(data, 0)
	f.Truncate(100)
	if f.Size() != 100 {
		t.Errorf("Size = %d", f.Size())
	}
	if f.CachedPages() != 1 {
		t.Errorf("cached pages after truncate = %d", f.CachedPages())
	}
	// Re-extend: bytes past old EOF must read zero.
	f.WriteAt([]byte{1}, 2000)
	buf := make([]byte, 10)
	f.ReadAt(buf, 100)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("post-truncate byte %d = %#x", i, b)
		}
	}
}

func TestQuickWriteReadConsistency(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		file := New().Create("q")
		shadow := make([]byte, 1<<17)
		maxEnd := uint64(0)
		for _, o := range ops {
			if len(o.Data) == 0 {
				continue
			}
			if len(o.Data) > 4096 {
				o.Data = o.Data[:4096]
			}
			off := uint64(o.Off)
			file.WriteAt(o.Data, off)
			copy(shadow[off:], o.Data)
			if end := off + uint64(len(o.Data)); end > maxEnd {
				maxEnd = end
			}
		}
		if maxEnd == 0 {
			return true
		}
		got := make([]byte, maxEnd)
		if _, err := file.ReadAt(got, 0); err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(got, shadow[:maxEnd])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
