// Package fs provides a small in-memory filesystem with a page cache,
// backing the simulated kernel's file-backed memory mappings (§3.7 of
// the paper). Executables and data files of the simulated applications
// live here; mapping them exercises the same fault paths real programs
// hit for their text and data segments.
package fs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/mem/addr"
)

// FileSystem is a flat namespace of in-memory files.
type FileSystem struct {
	mu    sync.Mutex
	files map[string]*File
}

// New returns an empty filesystem.
func New() *FileSystem {
	return &FileSystem{files: make(map[string]*File)}
}

// Create creates (or truncates) the named file.
func (fs *FileSystem) Create(name string) *File {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &File{name: name, fs: fs, pages: make(map[uint64][]byte)}
	fs.files[name] = f
	return f
}

// Open returns the named file.
func (fs *FileSystem) Open(name string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("fs: %q: no such file", name)
	}
	return f, nil
}

// Remove deletes the named file from the namespace. Existing mappings
// keep their cached pages alive, like an unlinked-but-open file.
func (fs *FileSystem) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("fs: %q: no such file", name)
	}
	delete(fs.files, name)
	return nil
}

// List returns the file names in sorted order.
func (fs *FileSystem) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// File is an in-memory file stored as a sparse set of 4 KiB pages —
// its own page cache. It implements vm.Backing so it can be mapped
// directly into simulated address spaces.
type File struct {
	name string
	fs   *FileSystem

	mu    sync.Mutex
	size  uint64
	pages map[uint64][]byte // page-aligned offset -> 4 KiB page
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// BackingName implements vm.Backing.
func (f *File) BackingName() string { return f.name }

// Size returns the file length in bytes.
func (f *File) Size() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

// PageAt implements vm.Backing: it returns the cached 4 KiB page at the
// given page-aligned offset, or nil for holes (which read as zeroes).
func (f *File) PageAt(off uint64) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.pages[addr.PageRoundDown(off)]
}

// WriteAt writes p at the given offset, extending the file as needed.
func (f *File) WriteAt(p []byte, off uint64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(p)
	for len(p) > 0 {
		base := addr.PageRoundDown(off)
		pg := f.pages[base]
		if pg == nil {
			pg = make([]byte, addr.PageSize)
			f.pages[base] = pg
		}
		k := copy(pg[off-base:], p)
		p = p[k:]
		off += uint64(k)
	}
	if off > f.size {
		f.size = off
	}
	return n, nil
}

// ReadAt reads into p from the given offset. Reads past EOF return
// io.EOF with the bytes read before it.
func (f *File) ReadAt(p []byte, off uint64) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= f.size {
		return 0, io.EOF
	}
	total := 0
	for len(p) > 0 && off < f.size {
		base := addr.PageRoundDown(off)
		n := addr.PageSize - int(off-base)
		if rem := int(f.size - off); n > rem {
			n = rem
		}
		if n > len(p) {
			n = len(p)
		}
		if pg := f.pages[base]; pg != nil {
			copy(p[:n], pg[off-base:])
		} else {
			clear(p[:n])
		}
		p = p[n:]
		off += uint64(n)
		total += n
	}
	if len(p) > 0 {
		return total, io.EOF
	}
	return total, nil
}

// Truncate sets the file size, dropping cached pages past the end.
func (f *File) Truncate(size uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.size = size
	limit := addr.PageRoundUp(size)
	for off := range f.pages {
		if off >= limit {
			delete(f.pages, off)
		}
	}
	// Zero the tail of the last partial page so re-extension reads zeroes.
	if size%addr.PageSize != 0 {
		if pg := f.pages[addr.PageRoundDown(size)]; pg != nil {
			clear(pg[size%addr.PageSize:])
		}
	}
}

// CachedPages returns the number of pages in the file's cache.
func (f *File) CachedPages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pages)
}
