package kernel

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

func TestCoreDumpRoundtrip(t *testing.T) {
	k := New()
	p := k.NewProcess()
	base, err := p.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("core dump payload across a page boundary.......")
	spot := base + addr.V(7*addr.PageSize+4000)
	if err := p.WriteAt(payload, spot); err != nil {
		t.Fatal(err)
	}
	// A second, read-only mapping with content written pre-protect.
	ro, err := p.Mmap(2*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(ro, 0x52); err != nil {
		t.Fatal(err)
	}
	if err := p.Mprotect(ro, 2*addr.PageSize, vm.ProtRead); err != nil {
		t.Fatal(err)
	}

	dump := k.FS().Create("proc.core")
	if err := p.SaveCore(dump); err != nil {
		t.Fatal(err)
	}
	p.Exit()

	restored, err := k.LoadCore(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Exit()

	got := make([]byte, len(payload))
	if err := restored.ReadAt(got, spot); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("restored payload = %q", got)
	}
	if b, _ := restored.LoadByte(ro); b != 0x52 {
		t.Errorf("read-only page restored to %#x", b)
	}
	// Protection restored too: writes to the RO region must fault.
	if err := restored.StoreByte(ro, 1); err == nil {
		t.Error("restored read-only mapping is writable")
	}
	// Untouched pages restore as zero.
	if b, _ := restored.LoadByte(base + addr.V(100*addr.PageSize)); b != 0 {
		t.Errorf("zero page restored to %#x", b)
	}
	if restored.Space().VMACount() != 2 {
		t.Errorf("VMA count = %d", restored.Space().VMACount())
	}
}

func TestCoreDumpHugePages(t *testing.T) {
	k := New()
	p := k.NewProcess()
	base, err := p.Mmap(addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteAt([]byte("huge content"), base+addr.V(addr.PageSize*300)); err != nil {
		t.Fatal(err)
	}
	dump := k.FS().Create("huge.core")
	if err := p.SaveCore(dump); err != nil {
		t.Fatal(err)
	}
	p.Exit()
	restored, err := k.LoadCore(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Exit()
	got := make([]byte, 12)
	if err := restored.ReadAt(got, base+addr.V(addr.PageSize*300)); err != nil {
		t.Fatal(err)
	}
	if string(got) != "huge content" {
		t.Errorf("restored huge content = %q", got)
	}
	vmas := restored.Space().VMAs()
	if len(vmas) != 1 || !vmas[0].Huge() {
		t.Error("huge mapping not restored as huge")
	}
}

func TestCoreDumpCompactness(t *testing.T) {
	// Dumps omit zero pages and trim trailing zeroes, so a mostly-empty
	// process dumps small.
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(16*addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate); err != nil {
		t.Fatal(err)
	}
	dump := k.FS().Create("sparse.core")
	if err := p.SaveCore(dump); err != nil {
		t.Fatal(err)
	}
	if dump.Size() > 4096 {
		t.Errorf("sparse dump = %d bytes, want tiny", dump.Size())
	}
}

func TestLoadCoreBadInput(t *testing.T) {
	k := New()
	junk := k.FS().Create("junk")
	junk.WriteAt([]byte("not a core"), 0)
	if _, err := k.LoadCore(junk); err == nil {
		t.Error("junk core accepted")
	}
	trunc := k.FS().Create("trunc")
	trunc.WriteAt(append([]byte("ODFCORE1"), 5, 0, 0, 0), 0)
	if _, err := k.LoadCore(trunc); err == nil {
		t.Error("truncated core accepted")
	}
	if k.NumProcesses() != 0 {
		t.Error("failed loads leaked processes")
	}
}

func TestCoreDumpOfForkChild(t *testing.T) {
	// Dumping a child that shares tables with its parent must capture
	// the child's logical view without disturbing the parent.
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	p.StoreByte(base, 0x77)
	c, err := p.Fork(WithMode(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	c.StoreByte(base+1, 0x88)
	dump := k.FS().Create("child.core")
	if err := c.SaveCore(dump); err != nil {
		t.Fatal(err)
	}
	c.Exit()
	restored, err := k.LoadCore(dump)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Exit()
	if b, _ := restored.LoadByte(base); b != 0x77 {
		t.Errorf("restored inherited byte = %#x", b)
	}
	if b, _ := restored.LoadByte(base + 1); b != 0x88 {
		t.Errorf("restored own byte = %#x", b)
	}
	if b, _ := p.LoadByte(base + 1); b == 0x88 {
		t.Error("child write leaked to parent")
	}
}
