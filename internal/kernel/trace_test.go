package kernel

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/profile"
	"repro/internal/trace"
)

// TestProcOdfRootListing pins the /proc/odf directory listing: present
// endpoints only, one per line, in the registry's fixed order, with
// profile appearing exactly when a profiler is attached.
func TestProcOdfRootListing(t *testing.T) {
	bare := New()
	got, err := bare.Procfs("/proc/odf")
	if err != nil {
		t.Fatal(err)
	}
	if want := "checkpoints\nfailpoints\nmetrics\ntenants\ntrace\nvmstat\n"; got != want {
		t.Errorf("/proc/odf without profiler = %q, want %q", got, want)
	}
	// A trailing slash reads the same directory.
	slash, err := bare.Procfs("/proc/odf/")
	if err != nil {
		t.Fatal(err)
	}
	if slash != got {
		t.Errorf("/proc/odf/ = %q, want %q", slash, got)
	}

	profiled := New(WithProfiler(profile.New()))
	got, err = profiled.Procfs("/proc/odf")
	if err != nil {
		t.Fatal(err)
	}
	if want := "checkpoints\nfailpoints\nmetrics\nprofile\ntenants\ntrace\nvmstat\n"; got != want {
		t.Errorf("/proc/odf with profiler = %q, want %q", got, want)
	}

	// Every listed name must itself resolve.
	for _, name := range []string{"failpoints", "metrics", "profile", "trace", "vmstat"} {
		if _, err := profiled.Procfs("/proc/odf/" + name); err != nil {
			t.Errorf("listed endpoint %s does not read: %v", name, err)
		}
	}
	if _, err := bare.Procfs("/proc/odf/profile"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("profile without profiler = %v, want fs.ErrNotExist", err)
	}
}

// TestProcfsTraceGolden pins the /proc/odf/trace text format. The
// fixture is emitted directly into the kernel's tracer so timestamps
// and ordering are deterministic.
func TestProcfsTraceGolden(t *testing.T) {
	k := New()
	k.SetTraceEnabled(true)
	us := time.Microsecond.Nanoseconds()
	for _, e := range []trace.Event{
		{TS: 2 * us, Dur: 11 * us, Kind: trace.KindFork, Stage: trace.StageNone, Actor: trace.ActorApp, Arg1: 1, Arg2: 2},
		{TS: 3 * us, Dur: 4 * us, Kind: trace.KindForkStage, Stage: trace.StageShare, Actor: trace.ActorForkWorker(1), Arg1: 0, Arg2: 256},
		{TS: 9 * us, Dur: 1 * us, Kind: trace.KindForkStage, Stage: trace.StageTLB, Actor: trace.ActorApp},
		{TS: 20 * us, Dur: 3 * us, Kind: trace.KindFault, Stage: trace.ResolveTableCopy, Actor: trace.ActorApp, Arg1: 0x7f0000001000, Arg2: 1},
		{TS: 30 * us, Kind: trace.KindReclaimEvict, Stage: trace.StageNone, Actor: trace.ActorKswapd, Arg1: 42, Arg2: 7},
	} {
		k.Tracer().Emit(e)
	}
	k.SetTraceEnabled(false)
	got, err := k.Procfs("/proc/odf/trace")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "proc_trace.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/proc/odf/trace differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestKernelTraceLifecycle checks the kernel-level tracing API: off by
// default, a traced fork+fault window produces classified events, the
// Chrome export validates, and re-enabling starts a fresh timeline.
func TestKernelTraceLifecycle(t *testing.T) {
	k := New()
	if k.TraceEnabled() {
		t.Fatal("tracing enabled at boot")
	}
	if s := k.TraceSnapshot(); len(s.Events) != 0 {
		t.Fatalf("events recorded while disabled: %d", len(s.Events))
	}

	k.SetTraceEnabled(true)
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(4*addr.PTECoverage, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	c, err := p.Fork(WithMode(core.ForkOnDemand), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Exit()
	// First write through a shared table: a table-copy fault.
	if err := c.StoreByte(base, 2); err != nil {
		t.Fatal(err)
	}
	k.SetTraceEnabled(false)

	s := k.TraceSnapshot()
	kinds := map[trace.Kind]int{}
	stages := map[trace.Stage]int{}
	for _, e := range s.Events {
		kinds[e.Kind]++
		stages[e.Stage]++
	}
	if kinds[trace.KindFork] == 0 {
		t.Error("no fork event recorded")
	}
	if stages[trace.StageShare] == 0 || stages[trace.StageTLB] == 0 {
		t.Errorf("fork stages missing: %v", stages)
	}
	if stages[trace.ResolveTableCopy] == 0 {
		t.Errorf("table-copy fault not classified: %v", stages)
	}

	var buf bytes.Buffer
	if err := k.WriteTrace(&buf, trace.FormatChrome); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("chrome export invalid: %v", err)
	}

	// Re-enabling resets: the old timeline must not leak into the new.
	k.SetTraceEnabled(true)
	if s := k.TraceSnapshot(); len(s.Events) != 0 {
		t.Errorf("re-enable kept %d stale events", len(s.Events))
	}
	k.SetTraceEnabled(false)
}

// TestTraceDuringSwapPressure records a timeline while concurrent
// lineages fork (all engines, parallel workers) and write under a
// frame limit with swap on, so kswapd and direct reclaim run during
// recording. Primarily a race-detector target for the tracer's
// lock-free ring; it also checks the trace captured both the fork and
// the reclaim side, and that the export stays well-formed.
func TestTraceDuringSwapPressure(t *testing.T) {
	k := New()
	k.SetSwapEnabled(true)
	defer k.SetSwapEnabled(false)
	k.SetTraceEnabled(true)
	defer k.SetTraceEnabled(false)

	// Generous hard limit (forks have no OOM stall path, and a limit
	// tighter than one lineage's working set can livelock three
	// lineages stealing each other's frames), but watermarks so
	// aggressive that kswapd starts evicting as soon as any single
	// lineage's working set materializes: free dips below low once
	// ~100 frames are allocated, and OOM would need the full 4096.
	const pages = 256
	const limit = 4096
	k.Allocator().SetLimit(k.Allocator().Allocated() + limit)
	defer k.Allocator().SetLimit(0)
	if err := k.SetSwapWatermarks(limit-96, limit-48); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for l := 0; l < 3; l++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			root := k.NewProcess()
			defer root.Exit()
			base, err := root.Mmap(pages/2*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < pages/2; i++ {
				if err := root.StoreByte(base+addr.V(i*addr.PageSize), byte(seed)); err != nil {
					t.Errorf("init write: %v", err)
					return
				}
			}
			// Synchronous direct reclaim: kswapd runs off the aggressive
			// watermarks as scheduling allows, but the test must not
			// depend on the background goroutine winning the CPU before
			// this short workload finishes, so each lineage also evicts
			// a batch of its (and its peers') cold pages in-line.
			k.Reclaim().ReclaimFrames(32)
			mode := core.ForkOnDemand
			if seed%2 == 1 {
				mode = core.ForkClassic
			}
			for rep := 0; rep < 4; rep++ {
				c, err := root.Fork(WithMode(mode), WithWorkers(2))
				if err != nil {
					t.Errorf("fork: %v", err)
					return
				}
				for i := 0; i < pages/2; i += 8 {
					if err := c.StoreByte(base+addr.V(i*addr.PageSize), byte(rep)); err != nil {
						t.Errorf("child write: %v", err)
						break
					}
				}
				c.Exit()
			}
		}(l)
	}
	wg.Wait()

	s := k.TraceSnapshot()
	kinds := map[trace.Kind]int{}
	for _, e := range s.Events {
		kinds[e.Kind]++
	}
	if kinds[trace.KindFork] == 0 {
		t.Error("pressure trace has no fork events")
	}
	if kinds[trace.KindFault] == 0 {
		t.Error("pressure trace has no fault events")
	}
	if kinds[trace.KindReclaimScan] == 0 && kinds[trace.KindWriteback] == 0 {
		t.Errorf("pressure trace shows no reclaim activity: %v", kinds)
	}
	var buf bytes.Buffer
	if err := k.WriteTrace(&buf, trace.FormatChrome); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("chrome export invalid under pressure: %v", err)
	}
}
