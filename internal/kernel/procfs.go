package kernel

import (
	"fmt"
	"io/fs"
	"strconv"
	"strings"

	"repro/internal/mem/addr"
)

// procfs-style introspection: the paper configures on-demand-fork
// through procfs, and its experiments read kernel state the same way.
// These helpers render the simulated equivalents of /proc/pid/maps and
// /proc/pid/status, and Kernel.Procfs routes path reads over them.

// Procfs reads one file of the simulated procfs namespace:
//
//	/proc/odf          — lists the registered odf endpoints, one per line
//	/proc/odf/metrics  — system-wide telemetry (MetricsSnapshot rendering)
//	/proc/odf/profile  — the Figure 3 cost-accounting profile, if a
//	                     profiler is attached
//	/proc/odf/trace    — the flight-recorder timeline (human-readable)
//	/proc/odf/vmstat   — reclaim/swap counters in /proc/vmstat style
//	/proc/<pid>/maps   — the process's mappings
//	/proc/<pid>/status — the process's memory summary
//
// The odf endpoints are dispatched through a registry built once at
// boot, so the set and its order are deterministic: the root listing
// always names them alphabetically, and matches what the per-file
// paths serve. Unknown paths fail with an error wrapping
// fs.ErrNotExist, so callers distinguish "no such file" with errors.Is
// like any filesystem read.
func (k *Kernel) Procfs(path string) (string, error) {
	notExist := func() (string, error) {
		return "", fmt.Errorf("procfs: %s: %w", path, fs.ErrNotExist)
	}
	rest, ok := strings.CutPrefix(path, "/proc/")
	if !ok {
		return notExist()
	}
	dir, file, ok := strings.Cut(rest, "/")
	if !ok {
		dir, file = rest, ""
	} else if strings.Contains(file, "/") {
		return notExist()
	}
	if dir == "odf" {
		if file == "" {
			// Directory read: list the endpoints that currently resolve.
			var b strings.Builder
			for _, ep := range k.procEndpoints {
				if _, backed := ep.read(); backed {
					b.WriteString(ep.name + "\n")
				}
			}
			return b.String(), nil
		}
		for _, ep := range k.procEndpoints {
			if ep.name != file {
				continue
			}
			content, backed := ep.read()
			if !backed {
				return notExist()
			}
			return content, nil
		}
		return notExist()
	}
	if file == "" {
		return notExist()
	}
	pid, err := strconv.Atoi(dir)
	if err != nil {
		return notExist()
	}
	p := k.Process(PID(pid))
	if p == nil {
		return notExist()
	}
	switch file {
	case "maps":
		return p.Maps(), nil
	case "status":
		return p.Status().String(), nil
	}
	return notExist()
}

// Maps renders the process's mappings like /proc/pid/maps.
func (p *Process) Maps() string {
	var b strings.Builder
	for _, v := range p.as.VMAs() {
		fmt.Fprintln(&b, v)
	}
	return b.String()
}

// Status summarizes a process's memory state, the fields the paper's
// experiments watch.
type Status struct {
	PID        PID
	Parent     PID
	VmSizeKiB  uint64 // total mapped virtual memory
	VmRSSKiB   uint64 // resident (present) memory, huge entries included
	PageTables int    // tables in (or shared into) the hierarchy
	SharedPTs  int    // last-level tables currently shared
	Faults     uint64
	TableCOWs  uint64 // shared table copies performed on demand
	PageCOWs   uint64 // data page copies performed on demand
	TLBHitRate float64
	TLBShoots  uint64 // lineage-wide shootdowns observed
}

// Status returns the process's memory summary.
func (p *Process) Status() Status {
	st := p.as.Tables()
	return Status{
		PID:        p.pid,
		Parent:     p.parent,
		VmSizeKiB:  p.as.MappedBytes() >> 10,
		VmRSSKiB:   (uint64(st.PresentPTEs)*addr.PageSize + uint64(st.HugeEntries)*addr.HugePageSize) >> 10,
		PageTables: st.Upper + st.Leaves,
		SharedPTs:  st.SharedLeaves,
		Faults:     p.as.Faults.Load(),
		TableCOWs:  p.as.TableSplits.Load(),
		PageCOWs:   p.as.PageCopies.Load(),
		TLBHitRate: p.as.TLB().HitRate(),
		TLBShoots:  p.as.TLB().Shootdowns.Load(),
	}
}

// String renders the status like /proc/pid/status.
func (s Status) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pid:\t%d\n", s.PID)
	fmt.Fprintf(&b, "PPid:\t%d\n", s.Parent)
	fmt.Fprintf(&b, "VmSize:\t%d kB\n", s.VmSizeKiB)
	fmt.Fprintf(&b, "VmRSS:\t%d kB\n", s.VmRSSKiB)
	fmt.Fprintf(&b, "PageTables:\t%d\n", s.PageTables)
	fmt.Fprintf(&b, "SharedPTs:\t%d\n", s.SharedPTs)
	fmt.Fprintf(&b, "Faults:\t%d\n", s.Faults)
	fmt.Fprintf(&b, "TableCOWs:\t%d\n", s.TableCOWs)
	fmt.Fprintf(&b, "PageCOWs:\t%d\n", s.PageCOWs)
	fmt.Fprintf(&b, "TLBHitRate:\t%.3f\n", s.TLBHitRate)
	fmt.Fprintf(&b, "TLBShootdowns:\t%d\n", s.TLBShoots)
	return b.String()
}

// Madvise applies madvise-style advice. Only DontNeed is implemented.
func (p *Process) Madvise(start addr.V, size uint64, advice Advice) error {
	switch advice {
	case AdviceDontNeed:
		return p.as.MadviseDontneed(start, size)
	default:
		return fmt.Errorf("kernel: unsupported madvise advice %d", advice)
	}
}

// Advice selects a Madvise behaviour.
type Advice int

// Madvise advice values.
const (
	// AdviceDontNeed discards page contents, keeping the mapping.
	AdviceDontNeed Advice = iota
)
