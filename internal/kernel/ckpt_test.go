package kernel

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/tenant"
)

// fillRandom writes incompressible content to n pages starting at base,
// returning the bytes written (page-majors, one slice per page).
func fillRandom(t *testing.T, p *Process, base addr.V, n int, rng *rand.Rand) [][]byte {
	t.Helper()
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		b := make([]byte, addr.PageSize)
		rng.Read(b)
		if err := p.WriteAt(b, base+addr.V(i)*addr.PageSize); err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

// TestCheckpointRestoreRoundTrip: capture a process with mixed content
// (random pages, a zeroed page, untouched demand-zero pages, a huge
// mapping), restore it in a fresh kernel, and compare every byte.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "proc.ckpt")

	k1 := New()
	p := k1.NewProcess()
	const pages = 40
	base, err := p.Mmap(pages*addr.PageSize, rw, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	content := fillRandom(t, p, base, 30, rng) // pages 30..39 stay untouched
	// Page 3 written then zeroed: content diverged to all-zero.
	zero := make([]byte, addr.PageSize)
	if err := p.WriteAt(zero, base+3*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	content[3] = zero
	hbase, err := p.Mmap(addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(hbase+12345, 0xAB); err != nil {
		t.Fatal(err)
	}

	d, err := p.CheckpointTo(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Release()
	if d.Pages() == 0 || d.Bytes() == 0 || d.Incremental() {
		t.Fatalf("checkpoint stats: %+v", d)
	}
	p.Exit()

	k2 := New()
	r, err := k2.RestoreFrom(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, addr.PageSize)
	for i := 0; i < 30; i++ {
		if err := r.ReadAt(buf, base+addr.V(i)*addr.PageSize); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if !bytes.Equal(buf, content[i]) {
			t.Fatalf("page %d content mismatch after restore", i)
		}
	}
	// Untouched pages read as zeroes (no record; demand-zero).
	if err := r.ReadAt(buf, base+35*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, zero) {
		t.Fatal("untouched page not zero after restore")
	}
	// Huge mapping content survives (restored as base pages).
	if b, err := r.LoadByte(hbase + 12345); err != nil || b != 0xAB {
		t.Fatalf("huge page byte = %#x, %v", b, err)
	}
	// The restored process is a normal process: it can fork and write.
	c, err := r.Fork(WithMode(forkModeForCheckpoint))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StoreByte(base, 0xEE); err != nil {
		t.Fatal(err)
	}
	if b, _ := r.LoadByte(base); b == 0xEE {
		t.Fatal("child write leaked into restored parent (COW broken)")
	}
	c.Exit()
	if err := k2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := k2.MetricsSnapshot().Ckpt.Restores; got != 1 {
		t.Fatalf("restores counter = %d", got)
	}
}

// TestLazyRestorePageInCount pins laziness: restoring maps the file but
// reads nothing; touching exactly 5 recorded pages pages in exactly 5.
func TestLazyRestorePageInCount(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "proc.ckpt")
	k1 := New()
	p := k1.NewProcess()
	base, err := p.Mmap(64*addr.PageSize, rw, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	fillRandom(t, p, base, 64, rand.New(rand.NewSource(7)))
	if _, err := p.CheckpointTo(path); err != nil {
		t.Fatal(err)
	}

	k2 := New()
	r, err := k2.RestoreFrom(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := k2.MetricsSnapshot().Ckpt.PageIns; got != 0 {
		t.Fatalf("%d pages read at restore time, want 0 (lazy)", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.LoadByte(base + addr.V(i*7)*addr.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := k2.MetricsSnapshot().Ckpt.PageIns; got != 5 {
		t.Fatalf("page-ins = %d after touching 5 pages, want 5", got)
	}
	// Re-touching faults nothing new: the pages are resident now.
	for i := 0; i < 5; i++ {
		if _, err := r.LoadByte(base + addr.V(i*7)*addr.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	if got := k2.MetricsSnapshot().Ckpt.PageIns; got != 5 {
		t.Fatalf("page-ins = %d after re-touch, want still 5", got)
	}
}

// TestIncrementalCheckpointBytes is the size acceptance gate: with <5%
// of pages diverged, the incremental file must be under 10% of the full
// snapshot's bytes, and the restored chain must reproduce the state.
func TestIncrementalCheckpointBytes(t *testing.T) {
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "base.ckpt")
	incPath := filepath.Join(dir, "inc.ckpt")

	k1 := New()
	p := k1.NewProcess()
	const pages = 1024
	base, err := p.Mmap(pages*addr.PageSize, rw, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	content := fillRandom(t, p, base, pages, rng)

	full, err := p.CheckpointTo(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Release()

	// Dirty 2% of the pages.
	const dirtied = pages * 2 / 100
	for i := 0; i < dirtied; i++ {
		pi := i * (pages / dirtied)
		b := make([]byte, addr.PageSize)
		rng.Read(b)
		if err := p.WriteAt(b, base+addr.V(pi)*addr.PageSize); err != nil {
			t.Fatal(err)
		}
		content[pi] = b
	}

	inc, err := p.CheckpointTo(incPath, WithCheckpointParent(full))
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Release()
	if !inc.Incremental() {
		t.Fatal("child checkpoint not marked incremental")
	}
	if inc.Pages() != dirtied {
		t.Fatalf("incremental wrote %d page records, want %d diverged", inc.Pages(), dirtied)
	}
	if lim := full.Bytes() / 10; inc.Bytes() >= lim {
		t.Fatalf("incremental bytes = %d, want < %d (10%% of full %d)",
			inc.Bytes(), lim, full.Bytes())
	}
	if got := k1.MetricsSnapshot().Ckpt.PagesSkipped; got < pages-dirtied {
		t.Fatalf("pages_skipped = %d, want >= %d", got, pages-dirtied)
	}

	k2 := New()
	r, err := k2.RestoreFrom(incPath)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, addr.PageSize)
	for i := 0; i < pages; i++ {
		if err := r.ReadAt(buf, base+addr.V(i)*addr.PageSize); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if !bytes.Equal(buf, content[i]) {
			t.Fatalf("page %d mismatch after chain restore", i)
		}
	}
}

// TestCheckpointCrashAndCorruptInjection drives the writer through
// every checkpoint failpoint and checks the crash-consistency contract
// each leaves behind.
func TestCheckpointCrashAndCorruptInjection(t *testing.T) {
	newDonor := func(t *testing.T, k *Kernel) (*Process, addr.V) {
		p := k.NewProcess()
		base, err := p.Mmap(128*addr.PageSize, rw, vm.MapPrivate)
		if err != nil {
			t.Fatal(err)
		}
		fillRandom(t, p, base, 128, rand.New(rand.NewSource(5)))
		return p, base
	}

	t.Run("write-crash leaves torn rejected tmp", func(t *testing.T) {
		dir := t.TempDir()
		k := New()
		p, _ := newDonor(t, k)
		if err := k.SetFailpoint(failpoint.CkptWrite, "once"); err != nil {
			t.Fatal(err)
		}
		_, err := p.CheckpointTo(filepath.Join(dir, "a.ckpt"), WithCheckpointCrashOnInject())
		if !errors.Is(err, ckpt.ErrCrashed) {
			t.Fatalf("err = %v, want ErrCrashed", err)
		}
		reps, err := ckpt.FsckDir(dir, ckpt.Env{})
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != 1 || reps[0].Restorable {
			t.Fatalf("fsck = %+v, want one rejected tmp", reps)
		}
		// The crash must not leak the frozen twin.
		if n := k.NumProcesses(); n != 1 {
			t.Fatalf("%d live processes after crashed checkpoint, want 1", n)
		}
	})

	t.Run("fsync-crash leaves restorable tmp", func(t *testing.T) {
		dir := t.TempDir()
		k := New()
		p, base := newDonor(t, k)
		want, err := func() (byte, error) { return p.LoadByte(base) }()
		if err != nil {
			t.Fatal(err)
		}
		if err := k.SetFailpoint(failpoint.CkptFsync, "once"); err != nil {
			t.Fatal(err)
		}
		_, cerr := p.CheckpointTo(filepath.Join(dir, "a.ckpt"), WithCheckpointCrashOnInject())
		if !errors.Is(cerr, ckpt.ErrCrashed) {
			t.Fatalf("err = %v, want ErrCrashed", cerr)
		}
		reps, err := ckpt.FsckDir(dir, ckpt.Env{})
		if err != nil {
			t.Fatal(err)
		}
		if len(reps) != 1 || !reps[0].Restorable {
			t.Fatalf("fsck = %+v, want one restorable tmp", reps)
		}
		// The complete-but-unrenamed tmp restores to the captured state.
		k2 := New()
		r, err := k2.RestoreFrom(filepath.Join(dir, "a.ckpt.tmp"))
		if err != nil {
			t.Fatal(err)
		}
		if b, err := r.LoadByte(base); err != nil || b != want {
			t.Fatalf("restored byte = %#x, %v; want %#x", b, err, want)
		}
	})

	t.Run("silent corruption surfaces at fault time", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, "a.ckpt")
		k := New()
		p, base := newDonor(t, k)
		if err := k.SetFailpoint(failpoint.CkptCorrupt, "once"); err != nil {
			t.Fatal(err)
		}
		d, err := p.CheckpointTo(path)
		if err != nil {
			t.Fatalf("corrupt injection must not fail commit: %v", err)
		}
		d.Release()
		if rep := ckpt.Fsck(path, ckpt.Env{}); rep.Restorable {
			t.Fatal("fsck passed a corrupted file")
		}
		k2 := New()
		r, err := k2.RestoreFrom(path)
		if err != nil {
			t.Fatalf("open succeeds (footer intact): %v", err)
		}
		// ckpt.corrupt flips a byte in the last chunk: the tail page's
		// fault must report corruption, not zeroes or wrong bytes.
		_, ferr := r.LoadByte(base + 127*addr.PageSize)
		if !errors.Is(ferr, ErrCheckpointCorrupt) {
			t.Fatalf("fault on corrupted chunk err = %v, want ErrCheckpointCorrupt", ferr)
		}
		if got := k2.MetricsSnapshot().Ckpt.Corruptions; got == 0 {
			t.Fatal("corruption counter unmoved")
		}
	})
}

// TestRestoreReadRetry: a transient read failure during a lazy fault is
// retried transparently; the access succeeds.
func TestRestoreReadRetry(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	k1 := New()
	p := k1.NewProcess()
	base, err := p.Mmap(4*addr.PageSize, rw, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	content := fillRandom(t, p, base, 4, rand.New(rand.NewSource(3)))
	if _, err := p.CheckpointTo(path); err != nil {
		t.Fatal(err)
	}

	k2 := New()
	r, err := k2.RestoreFrom(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := k2.SetFailpoint(failpoint.CkptRead, "once"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, addr.PageSize)
	if err := r.ReadAt(buf, base); err != nil {
		t.Fatalf("read with transient failure: %v", err)
	}
	if !bytes.Equal(buf, content[0]) {
		t.Fatal("content mismatch after retried fault")
	}
	snap := k2.MetricsSnapshot()
	if snap.Ckpt.ReadRetries != 1 {
		t.Fatalf("read_retries = %d, want 1", snap.Ckpt.ReadRetries)
	}
}

// TestRestoreUnderPressure is the three-error-classes test: lazy
// faults from disk race kswapd eviction with the tenant over quota, and
// the distinct failure modes stay distinguishable — fork admission
// reports ErrQuotaExceeded, a corrupted chunk reports
// ErrCheckpointCorrupt, and frame exhaustion without swap reports
// ErrNoMem. Run under -race in CI.
func TestRestoreUnderPressure(t *testing.T) {
	dir := t.TempDir()
	goodPath := filepath.Join(dir, "good.ckpt")
	badPath := filepath.Join(dir, "bad.ckpt")
	const pages = 256

	k1 := New()
	p := k1.NewProcess()
	base, err := p.Mmap(pages*addr.PageSize, rw, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	content := fillRandom(t, p, base, pages, rand.New(rand.NewSource(11)))
	if _, err := p.CheckpointTo(goodPath); err != nil {
		t.Fatal(err)
	}
	if err := k1.SetFailpoint(failpoint.CkptCorrupt, "once"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CheckpointTo(badPath); err != nil {
		t.Fatal(err)
	}

	t.Run("faults-race-eviction-at-quota", func(t *testing.T) {
		k := New()
		k.Allocator().SetLimit(pages / 2)
		k.SetSwapEnabled(true)
		defer k.SetSwapEnabled(false)
		k.Tenants().SetAdmitTimeout(10 * time.Millisecond)
		// A quota of 8 frames keeps the tenant over quota for the whole
		// run: eviction never pushes a 128-frame resident set that low.
		tn, err := k.Tenants().Create("alpha", 8)
		if err != nil {
			t.Fatal(err)
		}
		r, err := k.RestoreFrom(goodPath, WithRestoreTenant(tn))
		if err != nil {
			t.Fatal(err)
		}
		// Pre-warm past the quota so fork attempts race actual pressure.
		buf0 := make([]byte, addr.PageSize)
		for i := 0; i < 32; i++ {
			if err := r.ReadAt(buf0, base+addr.V(i)*addr.PageSize); err != nil {
				t.Fatal(err)
			}
		}

		var wg sync.WaitGroup
		// Readers sweep the whole image: first-touch faults from the
		// checkpoint file while kswapd concurrently evicts to swap.
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				buf := make([]byte, addr.PageSize)
				for round := 0; round < 2; round++ {
					for i := 0; i < pages; i++ {
						pi := (i + g*pages/2) % pages
						if err := r.ReadAt(buf, base+addr.V(pi)*addr.PageSize); err != nil {
							t.Errorf("sweep read page %d: %v", pi, err)
							return
						}
						if !bytes.Equal(buf, content[pi]) {
							t.Errorf("page %d content mismatch under pressure", pi)
							return
						}
					}
				}
			}(g)
		}
		// Fork attempts while the tenant is far over quota: they must
		// fail with ErrQuotaExceeded, not corruption or OOM.
		wg.Add(1)
		go func() {
			defer wg.Done()
			sawQuota := false
			for i := 0; i < 5; i++ {
				c, err := r.Fork(WithMode(forkModeForCheckpoint))
				if err == nil {
					c.Exit()
					continue
				}
				if !errors.Is(err, tenant.ErrQuotaExceeded) {
					t.Errorf("fork under quota pressure err = %v, want ErrQuotaExceeded", err)
					return
				}
				sawQuota = true
			}
			if !sawQuota {
				t.Error("tenant over quota never rejected a fork")
			}
		}()
		wg.Wait()
		if err := k.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("corrupt-chunk-distinct", func(t *testing.T) {
		k := New()
		k.Allocator().SetLimit(pages / 2)
		k.SetSwapEnabled(true)
		defer k.SetSwapEnabled(false)
		r, err := k.RestoreFrom(badPath)
		if err != nil {
			t.Fatal(err)
		}
		// The corrupt injection hit the last chunk; its pages must fail
		// with exactly the corruption sentinel.
		_, ferr := r.LoadByte(base + (pages-1)*addr.PageSize)
		if !errors.Is(ferr, ErrCheckpointCorrupt) {
			t.Fatalf("err = %v, want ErrCheckpointCorrupt", ferr)
		}
		if errors.Is(ferr, tenant.ErrQuotaExceeded) || errors.Is(ferr, ErrCheckpointIO) {
			t.Fatalf("corruption error aliases another class: %v", ferr)
		}
		// Early chunks are intact and still restore under pressure.
		buf := make([]byte, addr.PageSize)
		if err := r.ReadAt(buf, base); err != nil || !bytes.Equal(buf, content[0]) {
			t.Fatalf("intact page failed: %v", err)
		}
	})

	t.Run("frame-exhaustion-distinct", func(t *testing.T) {
		k := New()
		k.Allocator().SetLimit(24) // far below the working set, no swap
		r, err := k.RestoreFrom(goodPath)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, addr.PageSize)
		var oom error
		for i := 0; i < pages && oom == nil; i++ {
			oom = r.ReadAt(buf, base+addr.V(i)*addr.PageSize)
		}
		if !errors.Is(oom, core.ErrOutOfMemory) {
			t.Fatalf("err = %v, want ErrNoMem", oom)
		}
		if errors.Is(oom, ErrCheckpointCorrupt) || errors.Is(oom, ErrCheckpointIO) {
			t.Fatalf("OOM error aliases a checkpoint class: %v", oom)
		}
	})
}

// TestProcCheckpointsEndpoint smoke-tests /proc/odf/checkpoints: one
// line per written snapshot and per open restore image.
func TestProcCheckpointsEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	k := New()
	p := k.NewProcess()
	if _, err := p.Mmap(4*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate); err != nil {
		t.Fatal(err)
	}
	d, err := p.CheckpointTo(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.RestoreFrom(path); err != nil {
		t.Fatal(err)
	}
	out, err := k.Procfs("/proc/odf/checkpoints")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "written=1 images=1") ||
		!strings.Contains(out, "ckpt  a.ckpt") ||
		!strings.Contains(out, "image a.ckpt") {
		t.Fatalf("/proc/odf/checkpoints:\n%s", out)
	}
	if !strings.Contains(out, "twin=retained") {
		t.Fatalf("missing twin state:\n%s", out)
	}
	d.Release()
	out, _ = k.Procfs("/proc/odf/checkpoints")
	if !strings.Contains(out, "twin=released") {
		t.Fatalf("release not reflected:\n%s", out)
	}
}

// TestCheckpointToParentValidation pins the incremental preconditions:
// a released parent twin and a cross-directory target are both errors.
func TestCheckpointToParentValidation(t *testing.T) {
	dir := t.TempDir()
	k := New()
	p := k.NewProcess()
	if _, err := p.Mmap(4*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate); err != nil {
		t.Fatal(err)
	}
	full, err := p.CheckpointTo(filepath.Join(dir, "base.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	other := t.TempDir()
	if _, err := p.CheckpointTo(filepath.Join(other, "inc.ckpt"), WithCheckpointParent(full)); err == nil {
		t.Fatal("cross-directory incremental accepted")
	}
	full.Release()
	if _, err := p.CheckpointTo(filepath.Join(dir, "inc.ckpt"), WithCheckpointParent(full)); err == nil {
		t.Fatal("incremental against released parent accepted")
	}
}
