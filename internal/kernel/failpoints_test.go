package kernel

import (
	"strings"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

// TestKswapdSurvivesPanics is the kswapd resilience test (run under
// -race in CI): with the kswapd.panic failpoint firing on every other
// balance episode, the background reclaimer must keep running —
// abandoned episodes are counted in kswapd_errors and the surviving
// episodes still service the watermarks.
func TestKswapdSurvivesPanics(t *testing.T) {
	k := New()
	k.SetSwapEnabled(true)
	defer k.SetSwapEnabled(false)

	const limit = 1024
	k.Allocator().SetLimit(limit)
	t.Cleanup(func() { k.Allocator().SetLimit(0) })
	const low, high = 128, 256
	if err := k.SetSwapWatermarks(low, high); err != nil {
		t.Fatal(err)
	}
	if err := k.SetFailpoint(failpoint.KswapdPanic, "every:2"); err != nil {
		t.Fatal(err)
	}

	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(limit*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, addr.PageSize)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	for i := 0; i < limit; i++ {
		if err := p.WriteAt(buf, base+addr.V(i*addr.PageSize)); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}

	// Half the balance episodes die; the other half must still pull
	// free frames back over the low watermark. Wait for both the
	// recovery and at least one counted panic (the poll ticker keeps
	// evaluating the failpoint even once the watermarks are happy).
	deadline := time.Now().Add(10 * time.Second)
	for {
		free := limit - k.Allocator().Allocated()
		out, err := k.Procfs("/proc/odf/vmstat")
		if err != nil {
			t.Fatal(err)
		}
		if free >= low && hasNonzero(out, "kswapd_errors") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("free=%d (low=%d) with kswapd panics armed; vmstat:\n%s", free, low, out)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The goroutine survived its panics: with the failpoint off, a
	// second burst of pressure is serviced normally.
	if err := k.SetFailpoint(failpoint.KswapdPanic, "off"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < limit; i++ {
		if err := p.WriteAt(buf, base+addr.V(i*addr.PageSize)); err != nil {
			t.Fatalf("post-panic write page %d: %v", i, err)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		if free := limit - k.Allocator().Allocated(); free >= low {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("free frames %d still below low watermark %d after panics disarmed",
				limit-k.Allocator().Allocated(), low)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if out, _ := k.Procfs("/proc/odf/vmstat"); !hasNonzero(out, "pswpout") {
		t.Errorf("nothing was ever swapped out:\n%s", out)
	}
}

// TestProcOdfFailpoints pins the /proc/odf/failpoints surface: the
// full catalog listed in index order, with armed specs and fire counts
// reflected live.
func TestProcOdfFailpoints(t *testing.T) {
	k := New()
	out, err := k.Procfs("/proc/odf/failpoints")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "# odf failpoints: seed=1 armed=0 injected=0\n") {
		t.Fatalf("unexpected header:\n%s", out)
	}
	for _, name := range failpoint.Catalog() {
		if !strings.Contains(out, name) {
			t.Errorf("catalog point %s missing from listing", name)
		}
	}

	if err := k.SetFailpoint(failpoint.PhysAlloc, "prob:0.5"); err != nil {
		t.Fatal(err)
	}
	out, _ = k.Procfs("/proc/odf/failpoints")
	if !strings.Contains(out, "armed=1") || !strings.Contains(out, "prob:0.5") {
		t.Errorf("armed point not reflected:\n%s", out)
	}
}

// TestFailpointTraceEvents: every injected fault lands in the flight
// recorder as a failpoint instant carrying the catalog index.
func TestFailpointTraceEvents(t *testing.T) {
	k := New()
	k.SetTraceEnabled(true)
	p := k.NewProcess()
	defer p.Exit()
	if err := k.SetFailpoint(failpoint.PhysAlloc, "once"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Mmap(4*addr.PageSize, vm.ProtRead|vm.ProtWrite,
		vm.MapPrivate|vm.MapPopulate); err == nil {
		t.Fatal("populate succeeded with phys.alloc armed once")
	}
	out, err := k.Procfs("/proc/odf/trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "failpoint") {
		t.Errorf("no failpoint event in trace:\n%s", out)
	}
}
