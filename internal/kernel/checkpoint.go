package kernel

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Checkpoint captures a process's state at a point in time so that any
// number of fresh processes can later be spawned from exactly that
// state — the snapshot/restore primitive of the fuzzing systems the
// paper discusses in §6.1 (Xu et al.), built here on on-demand-fork:
// the checkpoint is a frozen twin created in microseconds, and each
// Spawn is another microsecond fork from the twin, unaffected by
// whatever the original process did afterwards.
//
// Checkpoints are safe for concurrent use: Spawn and Release may race
// from any number of goroutines, Release is idempotent, and a Spawn
// that loses the race against Release fails cleanly instead of forking
// from (or observing) a half-torn-down twin.
type Checkpoint struct {
	mu     sync.Mutex
	frozen *Process
}

// Checkpoint freezes the current state of p.
func (p *Process) Checkpoint() (*Checkpoint, error) {
	frozen, err := p.Fork(WithMode(forkModeForCheckpoint))
	if err != nil {
		return nil, fmt.Errorf("kernel: checkpoint: %w", err)
	}
	return &Checkpoint{frozen: frozen}, nil
}

// forkModeForCheckpoint: checkpoints always use on-demand-fork — the
// whole point is microsecond capture of arbitrarily large states.
const forkModeForCheckpoint = core.ForkOnDemand

// Spawn creates a fresh process whose memory is exactly the
// checkpointed state. The checkpoint's lock is held across the fork so
// a concurrent Release cannot tear the twin down mid-copy.
func (c *Checkpoint) Spawn() (*Process, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.frozen == nil || c.frozen.Exited() {
		return nil, fmt.Errorf("kernel: checkpoint released")
	}
	return c.frozen.Fork(WithMode(forkModeForCheckpoint))
}

// Release frees the checkpoint's frozen state. Processes already
// spawned from it are unaffected. Idempotent; safe to race with Spawn.
func (c *Checkpoint) Release() {
	c.mu.Lock()
	frozen := c.frozen
	c.frozen = nil
	c.mu.Unlock()
	if frozen != nil {
		frozen.Exit()
	}
}

// frozenProcess returns the twin while holding the checkpoint open, or
// nil after Release. Internal capture paths (durable checkpoints) use
// it to walk the twin's memory.
func (c *Checkpoint) frozenProcess() *Process {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frozen
}
