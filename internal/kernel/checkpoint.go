package kernel

import (
	"fmt"

	"repro/internal/core"
)

// Checkpoint captures a process's state at a point in time so that any
// number of fresh processes can later be spawned from exactly that
// state — the snapshot/restore primitive of the fuzzing systems the
// paper discusses in §6.1 (Xu et al.), built here on on-demand-fork:
// the checkpoint is a frozen twin created in microseconds, and each
// Spawn is another microsecond fork from the twin, unaffected by
// whatever the original process did afterwards.
type Checkpoint struct {
	frozen *Process
}

// Checkpoint freezes the current state of p.
func (p *Process) Checkpoint() (*Checkpoint, error) {
	frozen, err := p.Fork(WithMode(forkModeForCheckpoint))
	if err != nil {
		return nil, fmt.Errorf("kernel: checkpoint: %w", err)
	}
	return &Checkpoint{frozen: frozen}, nil
}

// forkModeForCheckpoint: checkpoints always use on-demand-fork — the
// whole point is microsecond capture of arbitrarily large states.
const forkModeForCheckpoint = core.ForkOnDemand

// Spawn creates a fresh process whose memory is exactly the
// checkpointed state.
func (c *Checkpoint) Spawn() (*Process, error) {
	if c.frozen == nil || c.frozen.Exited() {
		return nil, fmt.Errorf("kernel: checkpoint released")
	}
	return c.frozen.Fork(WithMode(forkModeForCheckpoint))
}

// Release frees the checkpoint's frozen state. Processes already
// spawned from it are unaffected.
func (c *Checkpoint) Release() {
	if c.frozen != nil {
		c.frozen.Exit()
		c.frozen = nil
	}
}
