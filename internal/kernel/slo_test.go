package kernel

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func goldenSLOStats() SLOStats {
	return SLOStats{
		App:                 "kv",
		Mode:                "on-demand-fork",
		OfferedRPS:          12000,
		AchievedRPS:         11987.3,
		P50US:               83.4,
		P99US:               412.9,
		P999US:              1203.5,
		MaxUS:               2210.7,
		ForkCoincidentCount: 241,
		ForkCoincidentP99US: 1180.2,
		QuiescentCount:      23759,
		QuiescentP99US:      301.8,
		Snapshots:           12,
		ForkMeanUS:          96.5,
	}
}

// TestProcSLOGolden pins the /proc/odf/slo text format on a fixed
// published summary. A deliberate format change regenerates the file
// with `go test -update`.
func TestProcSLOGolden(t *testing.T) {
	k := New()
	// Unbacked until a summary is published.
	if _, err := k.Procfs("/proc/odf/slo"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("slo before publish = %v, want fs.ErrNotExist", err)
	}
	listing, err := k.Procfs("/proc/odf")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(listing, "slo") {
		t.Errorf("unbacked slo listed:\n%s", listing)
	}

	k.SetSLO(goldenSLOStats())
	got, err := k.Procfs("/proc/odf/slo")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "proc_slo.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/proc/odf/slo differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}

	// Published: listed between metrics and trace (alphabetical order).
	listing, err = k.Procfs("/proc/odf")
	if err != nil {
		t.Fatal(err)
	}
	if want := "checkpoints\nfailpoints\nmetrics\nslo\ntenants\ntrace\nvmstat\n"; listing != want {
		t.Errorf("listing after publish = %q, want %q", listing, want)
	}

	// Re-publication replaces the summary.
	st := goldenSLOStats()
	st.Snapshots = 99
	k.SetSLO(st)
	got, err = k.Procfs("/proc/odf/slo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "snapshots:\t99\n") {
		t.Errorf("re-published summary not served:\n%s", got)
	}
}
