package kernel

import (
	"crypto/rand"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ckpt"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// Durable checkpoints: the on-disk extension of the in-memory
// Checkpoint primitive. CheckpointTo freezes a twin (microseconds,
// on-demand-fork) and streams its memory into the crash-safe columnar
// format of internal/ckpt; RestoreFrom maps a committed snapshot and
// faults pages in from disk on first touch — fork-from-disk. The twin
// is retained on the returned handle so a later CheckpointTo with
// WithCheckpointParent can diff against it: the COW lineage makes
// "which pages diverged since the parent snapshot" a frame-identity
// comparison, no dirty bits needed.

// Re-exported sentinel errors for the checkpoint store, the disk-side
// analogues of ErrSwapCorrupt/ErrSwapIO.
var (
	ErrCheckpointCorrupt = ckpt.ErrCorrupt
	ErrCheckpointIO      = ckpt.ErrIO
)

// DurableCheckpoint is the handle for one committed snapshot file.
type DurableCheckpoint struct {
	k    *Kernel
	path string
	id   [16]byte

	mu          sync.Mutex
	frozen      *Checkpoint // retained twin; nil after Release
	pages       uint64      // page records written
	bytes       uint64      // committed file size
	chunks      int
	parentRef   string // parent snapshot file name ("" = full)
	incremental bool
}

// Path returns the snapshot's file path.
func (d *DurableCheckpoint) Path() string { return d.path }

// SnapID returns the snapshot's identity as recorded in the footer.
func (d *DurableCheckpoint) SnapID() [16]byte { return d.id }

// Pages returns the number of page records the snapshot holds.
func (d *DurableCheckpoint) Pages() uint64 { return d.pages }

// Bytes returns the committed file size.
func (d *DurableCheckpoint) Bytes() uint64 { return d.bytes }

// Incremental reports whether the snapshot chains to a parent.
func (d *DurableCheckpoint) Incremental() bool { return d.incremental }

// Release frees the retained frozen twin. The file is untouched and
// stays restorable; only incremental chaining from this handle stops.
// Idempotent and safe to race with CheckpointTo using the handle.
func (d *DurableCheckpoint) Release() {
	d.mu.Lock()
	c := d.frozen
	d.frozen = nil
	d.mu.Unlock()
	if c != nil {
		c.Release()
	}
}

// CheckpointOption configures one CheckpointTo call.
type CheckpointOption func(*checkpointCfg)

type checkpointCfg struct {
	parent        *DurableCheckpoint
	crashOnInject bool
}

// WithCheckpointParent makes the snapshot incremental against parent:
// only pages diverged since the parent's capture are written, and the
// file records the parent's name and id, validated when the chain is
// opened. The parent handle must still hold its frozen twin, and the
// new snapshot must be written into the parent's directory.
func WithCheckpointParent(parent *DurableCheckpoint) CheckpointOption {
	return func(c *checkpointCfg) { c.parent = parent }
}

// WithCheckpointCrashOnInject makes write/fsync failpoint hits
// simulate the writer being killed mid-write (temp file left torn)
// instead of returning a clean error. The chaos harness's knob.
func WithCheckpointCrashOnInject() CheckpointOption {
	return func(c *checkpointCfg) { c.crashOnInject = true }
}

// ckptEnv builds the ckpt hooks for work attributed to t (nil ok).
func (k *Kernel) ckptEnv(t *tenant.Tenant) ckpt.Env {
	env := ckpt.Env{Fail: k.fail, Met: k.met}
	if t != nil {
		env.Tenant = t.TenantID()
	}
	return env
}

// CheckpointTo freezes the process and writes the frozen state to path
// as a durable snapshot, committed atomically: a crash at any point
// leaves either the previous file at path or nothing, never a torn
// snapshot. The returned handle retains the frozen twin so later
// incremental checkpoints can diff against it; call Release when no
// child snapshot will chain to it.
func (p *Process) CheckpointTo(path string, opts ...CheckpointOption) (*DurableCheckpoint, error) {
	var cfg checkpointCfg
	for _, o := range opts {
		o(&cfg)
	}
	k := p.k

	var t0 time.Time
	if k.met.Enabled() || k.trc.Enabled() {
		t0 = time.Now()
	}

	// Validate the parent before paying for the fork.
	var parentTwin *Process
	wopt := ckpt.WriterOptions{Env: k.ckptEnv(p.tenant), CrashOnInject: cfg.crashOnInject}
	if cfg.parent != nil {
		if filepath.Dir(path) != filepath.Dir(cfg.parent.path) {
			return nil, fmt.Errorf("kernel: incremental checkpoint %s must live in its parent's directory %s",
				path, filepath.Dir(cfg.parent.path))
		}
		pc := cfg.parent.frozenHandle()
		if pc == nil {
			return nil, fmt.Errorf("kernel: incremental checkpoint: parent %s released its frozen twin", cfg.parent.path)
		}
		parentTwin = pc.frozenProcess()
		if parentTwin == nil || parentTwin.Exited() {
			return nil, fmt.Errorf("kernel: incremental checkpoint: parent %s released its frozen twin", cfg.parent.path)
		}
		wopt.ParentID = cfg.parent.id
		wopt.ParentRef = filepath.Base(cfg.parent.path)
	}
	if _, err := rand.Read(wopt.SnapID[:]); err != nil {
		return nil, fmt.Errorf("kernel: checkpoint id: %w", err)
	}

	c, err := p.Checkpoint()
	if err != nil {
		return nil, err
	}
	twin := c.frozenProcess()

	for _, v := range twin.as.VMAs() {
		wopt.VMAs = append(wopt.VMAs, ckpt.VMARec{
			Start: uint64(v.Range.Start),
			Size:  uint64(v.Range.End - v.Range.Start),
			Prot:  uint8(v.Prot),
			Flags: uint8(v.Flags),
		})
	}

	w, err := ckpt.NewWriter(path, wopt)
	if err != nil {
		c.Release()
		return nil, err
	}
	if parentTwin != nil {
		skipped, verr := twin.as.VisitDivergedPages(parentTwin.as, func(v addr.V, data []byte) error {
			return w.AddPage(uint64(v), data)
		})
		if k.met.Enabled() {
			k.met.Ckpt.PagesSkipped.Add(skipped)
		}
		err = verr
	} else {
		err = twin.as.VisitPresentPages(func(v addr.V, data []byte) error {
			if data == nil {
				// A full snapshot need not record zero pages: restore
				// demand-zeroes any address with no record.
				return nil
			}
			return w.AddPage(uint64(v), data)
		})
	}
	if err != nil {
		w.Abort()
		c.Release()
		return nil, fmt.Errorf("kernel: checkpoint capture: %w", err)
	}

	stats, err := w.Commit()
	if err != nil {
		c.Release()
		return nil, err
	}

	if k.met.Enabled() {
		k.met.Ckpt.WriteLatency.Observe(time.Since(t0))
	}
	if k.trc.Enabled() {
		k.trc.Span(trace.KindCkptWrite, trace.StageNone, trace.ActorApp, t0, stats.Pages, stats.Bytes)
	}

	d := &DurableCheckpoint{
		k:           k,
		path:        path,
		id:          wopt.SnapID,
		frozen:      c,
		pages:       stats.Pages,
		bytes:       stats.Bytes,
		chunks:      stats.Chunks,
		parentRef:   wopt.ParentRef,
		incremental: cfg.parent != nil,
	}
	k.ckptMu.Lock()
	k.ckpts = append(k.ckpts, d)
	k.ckptMu.Unlock()
	return d, nil
}

func (d *DurableCheckpoint) frozenHandle() *Checkpoint {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frozen
}

// ckptImage is the restore-side backing: one open snapshot chain
// serving lazy page-ins for every process restored from it (and their
// forks — VMA clones share the backing pointer). It implements
// vm.FallibleBacking so chunk CRC mismatches and exhausted I/O retries
// surface from the faulting access as ErrCheckpointCorrupt /
// ErrCheckpointIO instead of reading as zeroes.
type ckptImage struct {
	k       *Kernel
	snap    *ckpt.Snapshot
	name    string
	pageIns atomic.Uint64
}

// BackingName identifies the image in diagnostics.
func (im *ckptImage) BackingName() string { return "ckpt:" + im.name }

// PageAt implements vm.Backing. The fault path always prefers
// PageAtErr; this infallible form exists only to satisfy the base
// interface and drops read errors (returning a hole).
func (im *ckptImage) PageAt(off uint64) []byte {
	data, _ := im.PageAtErr(off)
	return data
}

// PageAtErr returns the snapshot chain's content for the page at off.
// Restored VMAs set FileOff = Range.Start, so off is the virtual
// address being faulted.
func (im *ckptImage) PageAtErr(off uint64) ([]byte, error) {
	k := im.k
	var t0 time.Time
	if k.met.Enabled() || k.trc.Enabled() {
		t0 = time.Now()
	}
	data, found, err := im.snap.Page(off)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	im.pageIns.Add(1)
	if k.met.Enabled() {
		k.met.Ckpt.PageIns.Inc()
		k.met.Ckpt.PageInLatency.Observe(time.Since(t0))
	}
	if k.trc.Enabled() {
		k.trc.Span(trace.KindCkptPageIn, trace.StageNone, trace.ActorApp, t0, off, 0)
	}
	return data, nil
}

// RestoreOption configures one RestoreFrom call.
type RestoreOption func(*restoreCfg)

type restoreCfg struct {
	tenant *tenant.Tenant
}

// WithRestoreTenant charges the restored process's frames to tenant t
// and runs its forks through admission control — the serverless
// cold-start path: a daemon restart restores each tenant's warm state
// from its snapshot into that tenant's account.
func WithRestoreTenant(t *tenant.Tenant) RestoreOption {
	return func(c *restoreCfg) { c.tenant = t }
}

// RestoreFrom opens the snapshot at path (resolving and validating its
// incremental chain) and creates a process whose address space maps
// it: no page data is read now — each page faults in from the file on
// first touch, CRC-verified per chunk, with transparent retry on
// transient I/O errors. Corruption discovered at fault time surfaces
// from the faulting access as ErrCheckpointCorrupt.
//
// Huge-page mappings are restored as base-page mappings (the content
// is identical; the file format stores 4 KiB records). The image stays
// open for the kernel's lifetime, shared by the restored process and
// any processes forked from it.
func (k *Kernel) RestoreFrom(path string, opts ...RestoreOption) (*Process, error) {
	var cfg restoreCfg
	for _, o := range opts {
		o(&cfg)
	}
	snap, err := ckpt.OpenChain(path, k.ckptEnv(cfg.tenant))
	if err != nil {
		return nil, fmt.Errorf("kernel: restore: %w", err)
	}
	im := &ckptImage{k: k, snap: snap, name: filepath.Base(path)}
	p := k.NewTenantProcess(cfg.tenant)
	for _, vr := range snap.VMAs() {
		flags := vm.MapFlags(vr.Flags) &^ (vm.MapHuge | vm.MapPopulate)
		if _, err := p.as.Mmap(addr.V(vr.Start), vr.Size, vm.Prot(vr.Prot), flags, im, vr.Start); err != nil {
			p.Exit()
			snap.Close()
			return nil, fmt.Errorf("kernel: restore: mapping [%#x,+%#x): %w", vr.Start, vr.Size, err)
		}
	}
	k.ckptMu.Lock()
	k.ckptImages = append(k.ckptImages, im)
	k.ckptMu.Unlock()
	if k.met.Enabled() {
		k.met.Ckpt.Restores.Inc()
	}
	return p, nil
}

// renderCheckpoints produces /proc/odf/checkpoints: one line per
// snapshot written by this kernel and one per open restore image.
func (k *Kernel) renderCheckpoints() string {
	k.ckptMu.Lock()
	ckpts := append([]*DurableCheckpoint(nil), k.ckpts...)
	images := append([]*ckptImage(nil), k.ckptImages...)
	k.ckptMu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "# odf checkpoints: written=%d images=%d\n", len(ckpts), len(images))
	for _, d := range ckpts {
		d.mu.Lock()
		kind := "full"
		if d.incremental {
			kind = "incr"
		}
		twin := "released"
		if d.frozen != nil {
			twin = "retained"
		}
		parent := d.parentRef
		d.mu.Unlock()
		if parent == "" {
			parent = "-"
		}
		fmt.Fprintf(&b, "ckpt  %s id=%x kind=%s pages=%d bytes=%d chunks=%d parent=%s twin=%s\n",
			filepath.Base(d.path), d.id[:4], kind, d.pages, d.bytes, d.chunks, parent, twin)
	}
	for _, im := range images {
		id := im.snap.SnapID()
		fmt.Fprintf(&b, "image %s id=%x chain=%d pages=%d page_ins=%d degraded=%v\n",
			im.name, id[:4], im.snap.ChainLen(), im.snap.Pages(), im.pageIns.Load(), im.snap.Degraded())
	}
	return b.String()
}
