package kernel

import (
	"sync"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

func TestCheckpointSpawn(t *testing.T) {
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(base, 0xC1); err != nil {
		t.Fatal(err)
	}
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	defer cp.Release()

	// The original drifts after the checkpoint.
	if err := p.StoreByte(base, 0xFF); err != nil {
		t.Fatal(err)
	}

	// Every spawn sees the checkpointed state, independent of the
	// original's drift and of other spawns' writes.
	for i := 0; i < 3; i++ {
		s, err := cp.Spawn()
		if err != nil {
			t.Fatal(err)
		}
		if b, _ := s.LoadByte(base); b != 0xC1 {
			t.Errorf("spawn %d sees %#x, want 0xC1", i, b)
		}
		if err := s.StoreByte(base, byte(i)); err != nil {
			t.Fatal(err)
		}
		s.Exit()
	}
}

func TestCheckpointReleasedSpawnFails(t *testing.T) {
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	cp.Release()
	cp.Release() // idempotent
	if _, err := cp.Spawn(); err == nil {
		t.Error("spawn from released checkpoint succeeded")
	}
}

// TestCheckpointSpawnReleaseRace is the -race regression for the
// Spawn/Release contract: any number of goroutines may race the two,
// Release is idempotent, and a Spawn that loses the race fails cleanly
// — never a fork from a half-torn-down twin. Every spawn that succeeds
// must observe the exact checkpointed state.
func TestCheckpointSpawnReleaseRace(t *testing.T) {
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(base, 0xC1); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 16; round++ {
		cp, err := p.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 4; i++ {
					s, err := cp.Spawn()
					if err != nil {
						return // lost the race to Release: the clean outcome
					}
					if b, _ := s.LoadByte(base); b != 0xC1 {
						t.Errorf("racing spawn saw %#x, want 0xC1", b)
					}
					s.Exit()
				}
			}()
		}
		wg.Add(2)
		go func() { defer wg.Done(); cp.Release() }()
		go func() { defer wg.Done(); cp.Release() }()
		wg.Wait()
		cp.Release() // after the dust settles: still idempotent
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointOutlivesOriginal(t *testing.T) {
	k := New()
	p := k.NewProcess()
	base, err := p.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	p.StoreByte(base, 0x5C)
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	p.Exit() // original dies; checkpoint must stay usable
	s, err := cp.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := s.LoadByte(base); b != 0x5C {
		t.Errorf("spawn after original exit sees %#x", b)
	}
	s.Exit()
	cp.Release()
	if got := k.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
}
