package kernel

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/profile"
)

const rw = vm.ProtRead | vm.ProtWrite

func TestProcessLifecycle(t *testing.T) {
	k := New()
	p := k.NewProcess()
	if p.PID() != 1 || p.Parent() != 0 {
		t.Errorf("pid=%d parent=%d", p.PID(), p.Parent())
	}
	if k.NumProcesses() != 1 {
		t.Error("process table wrong")
	}
	if got := k.Process(p.PID()); got != p {
		t.Error("Process lookup failed")
	}
	p.Exit()
	if !p.Exited() {
		t.Error("Exited false after exit")
	}
	if k.NumProcesses() != 0 {
		t.Error("process not removed on exit")
	}
	if got := k.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
	p.Exit() // double exit is a no-op
	if _, err := p.Fork(); err == nil {
		t.Error("fork from exited process succeeded")
	}
}

func TestForkSemanticsViaSyscalls(t *testing.T) {
	for _, mode := range []core.ForkMode{core.ForkClassic, core.ForkOnDemand} {
		t.Run(mode.String(), func(t *testing.T) {
			k := New()
			p := k.NewProcess()
			base, err := p.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("fork me")
			if err := p.WriteAt(msg, base); err != nil {
				t.Fatal(err)
			}
			c, err := p.Fork(WithMode(mode))
			if err != nil {
				t.Fatal(err)
			}
			if c.Parent() != p.PID() {
				t.Errorf("child parent = %d", c.Parent())
			}
			got := make([]byte, len(msg))
			if err := c.ReadAt(got, base); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("child read %q", got)
			}
			if err := c.StoreByte(base, 'X'); err != nil {
				t.Fatal(err)
			}
			if b, _ := p.LoadByte(base); b != 'f' {
				t.Errorf("COW broken: parent byte %c", b)
			}
			c.Exit()
			p.Exit()
			if got := k.Allocator().Allocated(); got != 0 {
				t.Errorf("leak: %d", got)
			}
		})
	}
}

func TestProcfsForkModeConfig(t *testing.T) {
	p := profile.New()
	k := New(WithProfiler(p))
	proc := k.NewProcess()
	if _, err := proc.Mmap(2*addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate); err != nil {
		t.Fatal(err)
	}

	// Default mode is classic: the fork copies PTEs.
	p.Reset()
	c1, err := proc.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count(profile.CopyOnePTE); got == 0 {
		t.Error("default fork did not copy PTEs")
	}
	c1.Exit()

	// Flip the procfs switch: the *same* Fork call now runs ODF.
	if err := k.SetForkMode(proc.PID(), core.ForkOnDemand); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	c2, err := proc.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count(profile.CopyOnePTE); got != 0 {
		t.Errorf("configured ODF fork copied %d PTEs", got)
	}
	if got := p.Count(profile.PTShareInc); got == 0 {
		t.Error("configured ODF fork shared no tables")
	}

	// Children inherit the configuration.
	p.Reset()
	g, err := c2.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count(profile.CopyOnePTE); got != 0 {
		t.Error("child did not inherit fork mode")
	}
	g.Exit()
	c2.Exit()
	proc.Exit()

	if err := k.SetForkMode(999, core.ForkOnDemand); err == nil {
		t.Error("SetForkMode on missing pid succeeded")
	}
}

func TestDefaultForkModeOption(t *testing.T) {
	p := profile.New()
	k := New(WithProfiler(p), WithDefaultForkMode(core.ForkOnDemand))
	proc := k.NewProcess()
	if _, err := proc.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	c, err := proc.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Count(profile.CopyOnePTE); got != 0 {
		t.Error("default ODF kernel used classic fork")
	}
	c.Exit()
	proc.Exit()
}

func TestWaitUnblocksOnExit(t *testing.T) {
	k := New()
	p := k.NewProcess()
	c, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Wait()
	}()
	c.Exit()
	wg.Wait() // deadlocks (test timeout) if Wait is broken
	p.Exit()
}

func TestFileMappingThroughKernel(t *testing.T) {
	k := New()
	f := k.FS().Create("lib.so")
	content := []byte("shared library text segment")
	f.WriteAt(content, 0)

	p := k.NewProcess()
	v, err := p.MmapFile(addr.PageSize, vm.ProtRead, vm.MapPrivate, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if err := p.ReadAt(got, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("file map read %q", got)
	}
	// The mapping shows through fork too.
	c, err := p.Fork(WithMode(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ReadAt(got, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("child file map read %q", got)
	}
	c.Exit()
	p.Exit()
}

func TestConcurrentForkInstances(t *testing.T) {
	// Three benchmark instances forking in parallel against one kernel
	// (the Figure 2 concurrent configuration): must be race-free and
	// leak-free.
	k := New()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := k.NewProcess()
			if _, err := p.Mmap(4*addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 10; j++ {
				mode := core.ForkClassic
				if j%2 == 0 {
					mode = core.ForkOnDemand
				}
				c, err := p.Fork(WithMode(mode))
				if err != nil {
					t.Error(err)
					return
				}
				c.Exit()
			}
			p.Exit()
		}()
	}
	wg.Wait()
	if got := k.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
}

func TestSyscallWrappers(t *testing.T) {
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(4*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Touch(base, true); err != nil {
		t.Fatal(err)
	}
	if err := p.Mprotect(base, addr.PageSize, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(base, 1); err == nil {
		t.Error("write after mprotect succeeded")
	}
	nb, err := p.Mremap(base+addr.V(2*addr.PageSize), addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(nb, 7); err != nil {
		t.Fatal(err)
	}
	if err := p.Munmap(nb, addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if p.Space() == nil {
		t.Error("Space nil")
	}
}

// A malformed ForkOptions value panics by contract, but the panic must
// fire before any process or kernel lock is taken: a caller that
// recovers has to be left with a fully usable process.
func TestForkMisusePanicLeavesProcessUsable(t *testing.T) {
	k := New()
	p := k.NewProcess()
	base, err := p.Mmap(1<<20, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative Parallelism did not panic")
			}
		}()
		p.Fork(WithMode(core.ForkClassic), WithWorkers(-1))
	}()
	// The process must still fork, fault, and exit normally.
	c, err := p.Fork(WithMode(core.ForkOnDemand), WithWorkers(2))
	if err != nil {
		t.Fatalf("fork after recovered panic: %v", err)
	}
	if err := c.StoreByte(base, 7); err != nil {
		t.Fatalf("child write after recovered panic: %v", err)
	}
	c.Exit()
	p.Exit()
	if got := k.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
}
