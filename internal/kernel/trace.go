package kernel

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// The kernel-level view of the flight recorder (internal/trace): one
// tracer per kernel, created disabled at boot and inherited by every
// subsystem through the allocator. These methods are the substrate of
// the odfork v1 tracing API and of /proc/odf/trace.

// Tracer returns the kernel's flight recorder. It is never nil for a
// kernel built with New.
func (k *Kernel) Tracer() *trace.Tracer { return k.trc }

// SetTraceEnabled switches flight recording on or off. Enabling starts
// from a clean timeline (the ring and timebase reset), so a
// trace covers exactly the window between enable and snapshot;
// disabling freezes the recorded events for inspection.
func (k *Kernel) SetTraceEnabled(on bool) {
	if on && !k.trc.Enabled() {
		k.trc.Reset()
	}
	k.trc.SetEnabled(on)
}

// TraceEnabled reports whether the flight recorder is recording.
func (k *Kernel) TraceEnabled() bool { return k.trc.Enabled() }

// TraceSnapshot captures the recorded timeline: events sorted by time
// plus the count dropped to ring overwrite.
func (k *Kernel) TraceSnapshot() trace.Snapshot { return k.trc.Snapshot() }

// WriteTrace renders the current timeline to w in the given format
// (trace.FormatChrome loads in Perfetto; trace.FormatText matches
// /proc/odf/trace). Chrome exports carry the latency-histogram
// exemplars in the document metadata, so a p99 bucket's worst
// observations link back to their request flows in the same file.
func (k *Kernel) WriteTrace(w io.Writer, f trace.Format) error {
	if f == trace.FormatChrome {
		extra := k.traceExtra()
		return trace.WriteChromeExtra(w, k.trc.Snapshot(), &extra)
	}
	return trace.WriteTo(w, k.trc.Snapshot(), f)
}

// traceExtra gathers the exemplar references a Chrome export embeds:
// every worst-N observation the global and per-tenant latency
// histograms currently hold, named by the metric series it came from.
func (k *Kernel) traceExtra() trace.ChromeExtra {
	var extra trace.ChromeExtra
	add := func(series string, hs metrics.HistogramSnapshot) {
		for _, e := range hs.Exemplars {
			extra.Exemplars = append(extra.Exemplars,
				trace.ExemplarRef{Series: series, NS: e.NS, Req: e.Req})
		}
	}
	s := k.met.Snapshot()
	for e := metrics.ForkEngine(0); e < metrics.NumEngines; e++ {
		add(fmt.Sprintf("fork.%s.latency", e), s.Fork.Engines[e].Latency)
	}
	add("fault.read.latency", s.Fault.ReadLatency)
	add("fault.write.latency", s.Fault.WriteLatency)
	add("fault.table_copy.latency", s.Fault.TableCopyLatency)
	add("reclaim.swap_in.latency", s.Reclaim.SwapInLatency)
	for _, t := range s.Tenants {
		p := fmt.Sprintf("tenant.%d.", t.ID)
		for e := metrics.ForkEngine(0); e < metrics.NumEngines; e++ {
			add(fmt.Sprintf("%sfork.%s.latency", p, e), t.ForkLatency[e])
		}
		add(p+"queue_wait", t.QueueWait)
	}
	return extra
}

// procEndpoint is one file under /proc/odf. read returns the content,
// or ok=false when the endpoint is not backed right now (the profile
// endpoint without an attached profiler).
type procEndpoint struct {
	name string
	read func() (string, bool)
}

// buildProcEndpoints returns the /proc/odf registry in its fixed
// (alphabetical) order — the order the root listing shows and tests
// pin down.
func (k *Kernel) buildProcEndpoints() []procEndpoint {
	return []procEndpoint{
		{"checkpoints", func() (string, bool) { return k.renderCheckpoints(), true }},
		{"failpoints", func() (string, bool) { return k.fail.Status(), true }},
		{"health", func() (string, bool) {
			st, ok := k.Health()
			if !ok {
				return "", false
			}
			return RenderHealth(st), true
		}},
		{"metrics", func() (string, bool) { return k.MetricsSnapshot().Render(), true }},
		{"profile", func() (string, bool) {
			if k.prof == nil {
				return "", false
			}
			return k.prof.String(), true
		}},
		{"slo", func() (string, bool) {
			st, ok := k.SLO()
			if !ok {
				return "", false
			}
			return renderSLO(st), true
		}},
		{"tenants", func() (string, bool) { return k.tenants.Render(), true }},
		{"trace", func() (string, bool) { return trace.RenderText(k.trc.Snapshot()), true }},
		{"vmstat", func() (string, bool) { return k.Vmstat(), true }},
	}
}
