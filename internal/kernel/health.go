package kernel

import (
	"fmt"
	"strings"
	"sync"
)

// The kernel-side health publication slot: the observability watchdog
// (internal/obs) evaluates its stall rules against successive metric
// snapshots and pushes the latest verdict here, so liveness is readable
// through the same procfs namespace as the rest of the telemetry
// (/proc/odf/health). Like /proc/odf/slo, the endpoint is unbacked
// until a verdict is published.

// CheckState is one watchdog rule's latest evaluation.
type CheckState struct {
	Name      string // stable rule name (trace.AlertName of the code)
	Firing    bool
	Observed  uint64 // last observed value (ns for latency rules, count otherwise)
	Threshold uint64 // the rule's trip point, same unit as Observed
	Fires     uint64 // cumulative ok→firing transitions since boot
}

// HealthStats is the published watchdog verdict: an overall status plus
// the per-rule states in the watchdog's fixed rule order.
type HealthStats struct {
	Status string // "ok" | "degraded"
	Checks []CheckState
}

type healthSlot struct {
	mu  sync.Mutex
	st  HealthStats
	set bool
}

// SetHealth publishes the latest watchdog verdict, backing
// /proc/odf/health.
func (k *Kernel) SetHealth(st HealthStats) {
	k.health.mu.Lock()
	k.health.st, k.health.set = st, true
	k.health.mu.Unlock()
}

// Health returns the published watchdog verdict and whether one exists.
func (k *Kernel) Health() (HealthStats, bool) {
	k.health.mu.Lock()
	defer k.health.mu.Unlock()
	return k.health.st, k.health.set
}

// RenderHealth renders the /proc/odf/health content.
func RenderHealth(st HealthStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "status:\t%s\n", st.Status)
	for _, c := range st.Checks {
		state := "ok"
		if c.Firing {
			state = "FIRING"
		}
		fmt.Fprintf(&b, "check.%s:\t%s observed=%d threshold=%d fires=%d\n",
			c.Name, state, c.Observed, c.Threshold, c.Fires)
	}
	return b.String()
}
