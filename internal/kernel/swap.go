package kernel

import (
	"fmt"
	"strings"

	"repro/internal/mem/reclaim"
)

// Swap control: the kernel-level surface over internal/mem/reclaim.
// Swap is off by default; enabling it turns the configured frame limit
// from a hard wall into a working-set bound — cold pages are evicted
// to the swap store by kswapd (background) or direct reclaim (on
// allocation stall) instead of failing the allocation.

// Reclaim exposes the memory reclaim manager for stats and tests.
func (k *Kernel) Reclaim() *reclaim.Manager { return k.rec }

// SetSwapEnabled turns the reclaim subsystem on or off. Enabling
// starts the kswapd background reclaimer and begins LRU/rmap tracking
// of pages mapped from now on; disabling stops kswapd and drops the
// tracking state (already-swapped pages remain swapped and fault back
// in on access).
func (k *Kernel) SetSwapEnabled(on bool) { k.rec.SetEnabled(on) }

// SwapEnabled reports whether the reclaim subsystem is active.
func (k *Kernel) SwapEnabled() bool { return k.rec.Enabled() }

// SetSwapWatermarks pins the kswapd watermarks in frames: below low,
// kswapd wakes; it reclaims until high frames are free. (0, 0) returns
// to automatic watermarks derived from the frame limit.
func (k *Kernel) SetSwapWatermarks(low, high int64) error {
	return k.rec.SetWatermarks(low, high)
}

// SetSwapStore replaces the swap backend. Only legal while swap is
// disabled and no slots are outstanding. The default backend is an
// in-memory compressed store.
func (k *Kernel) SetSwapStore(s reclaim.Store) error { return k.rec.SetStore(s) }

// SetSwapStoreFile switches the swap backend to a file-backed store at
// path — the simulated equivalent of swapon.
func (k *Kernel) SetSwapStoreFile(path string) error {
	s, err := reclaim.NewFileStore(path)
	if err != nil {
		return err
	}
	if err := k.rec.SetStore(s); err != nil {
		s.Close()
		return err
	}
	return nil
}

// Vmstat renders the reclaim counters and state in /proc/vmstat style:
// one "name value" pair per line. Served as /proc/odf/vmstat.
func (k *Kernel) Vmstat() string {
	full := k.met.Snapshot()
	snap := full.Reclaim
	st := k.rec.Stats()
	limit := k.alloc.Limit()
	free := int64(0)
	if limit > 0 {
		free = limit - k.alloc.Allocated()
	}

	var b strings.Builder
	line := func(name string, v int64) { fmt.Fprintf(&b, "%s %d\n", name, v) }
	line("pgscan_kswapd", int64(snap.PgScanKswapd))
	line("pgscan_direct", int64(snap.PgScanDirect))
	line("pgsteal_kswapd", int64(snap.PgStealKswapd))
	line("pgsteal_direct", int64(snap.PgStealDirect))
	line("pswpin", int64(snap.PswpIn))
	line("pswpout", int64(snap.PswpOut))
	line("thp_split_page", int64(snap.HugeSplits))
	line("kswapd_wakeups", int64(snap.KswapdWakeups))
	line("allocstall", int64(snap.DirectReclaims))
	swapOn := int64(0)
	if st.Enabled {
		swapOn = 1
	}
	line("swap_enabled", swapOn)
	degraded := int64(0)
	if st.Degraded {
		degraded = 1
	}
	line("swap_degraded", degraded)
	line("swap_slots", st.SwapSlots)
	line("swap_store_slots", st.Store.Slots)
	line("swap_store_bytes", st.Store.Bytes)
	line("nr_active", st.ActiveFrames)
	line("nr_inactive", st.InactiveFrames)
	line("nr_frames_limit", limit)
	line("nr_frames_free", free)
	line("watermark_low", st.Low)
	line("watermark_high", st.High)
	line("kswapd_errors", int64(full.Robust.KswapdErrors))
	return b.String()
}
