package kernel

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

func TestMapsRendering(t *testing.T) {
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(4*addr.PageSize, rw, vm.MapPrivate); err != nil {
		t.Fatal(err)
	}
	f := k.FS().Create("libfoo.so")
	if _, err := p.MmapFile(addr.PageSize, vm.ProtRead, vm.MapPrivate, f, 0); err != nil {
		t.Fatal(err)
	}
	maps := p.Maps()
	if !strings.Contains(maps, "anon") || !strings.Contains(maps, "libfoo.so") {
		t.Errorf("maps missing entries:\n%s", maps)
	}
	if len(strings.Split(strings.TrimSpace(maps), "\n")) != 2 {
		t.Errorf("maps line count wrong:\n%s", maps)
	}
}

func TestStatusCounters(t *testing.T) {
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Status()
	if st.VmSizeKiB != addr.PTECoverage>>10 {
		t.Errorf("VmSize = %d KiB", st.VmSizeKiB)
	}
	if st.VmRSSKiB != addr.PTECoverage>>10 {
		t.Errorf("VmRSS = %d KiB", st.VmRSSKiB)
	}
	if st.PageTables == 0 {
		t.Error("no page tables reported")
	}
	if st.SharedPTs != 0 {
		t.Errorf("SharedPTs = %d before fork", st.SharedPTs)
	}

	c, err := p.Fork(WithMode(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Exit()
	if got := p.Status().SharedPTs; got != 1 {
		t.Errorf("SharedPTs after ODF = %d, want 1", got)
	}
	if err := c.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	cst := c.Status()
	if cst.TableCOWs != 1 {
		t.Errorf("TableCOWs = %d, want 1", cst.TableCOWs)
	}
	if cst.Faults == 0 {
		t.Error("no faults recorded")
	}
	if !strings.Contains(cst.String(), "TableCOWs:\t1") {
		t.Errorf("status rendering:\n%s", cst)
	}
}

func TestMadviseDontNeed(t *testing.T) {
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(8*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(base, 0x77); err != nil {
		t.Fatal(err)
	}
	before := k.Allocator().Allocated()
	if err := p.Madvise(base, 8*addr.PageSize, AdviceDontNeed); err != nil {
		t.Fatal(err)
	}
	if got := k.Allocator().Allocated(); got >= before {
		t.Errorf("madvise freed nothing: %d -> %d", before, got)
	}
	// Mapping survives; contents read as zero again.
	b, err := p.LoadByte(base)
	if err != nil {
		t.Fatalf("read after madvise: %v", err)
	}
	if b != 0 {
		t.Errorf("madvised byte = %#x, want 0", b)
	}
	if err := p.Madvise(base, addr.PageSize, Advice(99)); err == nil {
		t.Error("unknown advice accepted")
	}
	if err := p.Madvise(base+1, addr.PageSize, AdviceDontNeed); err == nil {
		t.Error("unaligned madvise accepted")
	}
}

func TestMadviseSharedTables(t *testing.T) {
	// madvise by one sharer must not disturb the other's view.
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.StoreByte(base, 0x42); err != nil {
		t.Fatal(err)
	}
	c, err := p.Fork(WithMode(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Exit()
	if err := c.Madvise(base, addr.PTECoverage/2, AdviceDontNeed); err != nil {
		t.Fatal(err)
	}
	if b, _ := c.LoadByte(base); b != 0 {
		t.Errorf("child madvised byte = %#x", b)
	}
	if b, _ := p.LoadByte(base); b != 0x42 {
		t.Errorf("parent byte after child madvise = %#x", b)
	}
	if err := core.CheckInvariants(p.Space(), c.Space()); err != nil {
		t.Fatal(err)
	}
}

func TestMadviseFileBackedRereads(t *testing.T) {
	k := New()
	f := k.FS().Create("data")
	f.WriteAt([]byte("original"), 0)
	p := k.NewProcess()
	defer p.Exit()
	v, err := p.MmapFile(addr.PageSize, rw, vm.MapPrivate, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteAt([]byte("scribble"), v); err != nil {
		t.Fatal(err)
	}
	if err := p.Madvise(v, addr.PageSize, AdviceDontNeed); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := p.ReadAt(got, v); err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Errorf("post-madvise read = %q, want file content", got)
	}
}

func TestMadviseErrors(t *testing.T) {
	k := New()
	p := k.NewProcess()
	defer p.Exit()
	if err := p.Space().MadviseDontneed(0x1000, 0); err == nil {
		t.Error("empty madvise accepted")
	}
	var oomErr error = core.ErrOutOfMemory
	if !errors.Is(oomErr, core.ErrOutOfMemory) {
		t.Error("sanity")
	}
}
