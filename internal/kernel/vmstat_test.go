package kernel

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestVmstatGolden pins the /proc/odf/vmstat text format on a
// deterministic kernel state: fixed frame limit, pinned watermarks,
// swap off, nothing allocated. A deliberate format change regenerates
// the file with `go test -update`.
func TestVmstatGolden(t *testing.T) {
	k := New()
	k.Allocator().SetLimit(1024)
	if err := k.SetSwapWatermarks(16, 32); err != nil {
		t.Fatal(err)
	}
	got, err := k.Procfs("/proc/odf/vmstat")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "vmstat.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("vmstat differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestVmstatCountersMove drives real swap traffic through the kernel
// API and checks the counters surface in /proc/odf/vmstat.
func TestVmstatCountersMove(t *testing.T) {
	k := New()
	// Enable before mapping: only pages mapped while tracking is on
	// enter the LRU (the same rule real kernels apply to pages mapped
	// before a swap device exists — they are simply never evicted here).
	k.SetSwapEnabled(true)
	defer k.SetSwapEnabled(false)
	p := k.NewProcess()
	defer p.Exit()
	const pages = 128
	base, err := p.Mmap(pages*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, addr.PageSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := 0; i < pages; i++ {
		if err := p.WriteAt(buf, base+addr.V(i*addr.PageSize)); err != nil {
			t.Fatal(err)
		}
	}
	if !k.Reclaim().ReclaimFrames(pages / 2) {
		t.Fatal("direct reclaim freed nothing")
	}
	out, err := k.Procfs("/proc/odf/vmstat")
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pgsteal_direct", "pswpout", "swap_slots"} {
		if !hasNonzero(out, key) {
			t.Errorf("vmstat %s is zero or missing:\n%s", key, out)
		}
	}
	if !strings.Contains(out, "swap_enabled 1\n") {
		t.Errorf("vmstat does not report swap enabled:\n%s", out)
	}
}

// hasNonzero reports whether the vmstat rendering has a non-zero value
// for key.
func hasNonzero(out, key string) bool {
	for _, line := range strings.Split(out, "\n") {
		name, val, ok := strings.Cut(line, " ")
		if ok && name == key {
			return val != "0"
		}
	}
	return false
}
