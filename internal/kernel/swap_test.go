package kernel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

// TestKswapdKeepsFreeAboveLow: under a frame limit with swap on, the
// background reclaimer must pull free frames back above the low
// watermark after a burst of allocation, with no allocation failures.
func TestKswapdKeepsFreeAboveLow(t *testing.T) {
	k := New()
	k.SetSwapEnabled(true)
	defer k.SetSwapEnabled(false)

	const limit = 1024
	k.Allocator().SetLimit(limit)
	t.Cleanup(func() { k.Allocator().SetLimit(0) })
	const low, high = 128, 256
	if err := k.SetSwapWatermarks(low, high); err != nil {
		t.Fatal(err)
	}

	p := k.NewProcess()
	defer p.Exit()
	// Working set ~= the whole limit: writing it all pushes free frames
	// through the low watermark and wakes kswapd repeatedly.
	const pages = limit
	base, err := p.Mmap(pages*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, addr.PageSize)
	for i := range buf {
		buf[i] = byte(i * 13)
	}
	for i := 0; i < pages; i++ {
		if err := p.WriteAt(buf, base+addr.V(i*addr.PageSize)); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}

	// Quiesce: kswapd must restore free >= low within its interval.
	deadline := time.Now().Add(5 * time.Second)
	for {
		free := limit - k.Allocator().Allocated()
		if free >= low {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("free frames %d still below low watermark %d", free, low)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if out, _ := k.Procfs("/proc/odf/vmstat"); !hasNonzero(out, "pgsteal_kswapd") {
		t.Errorf("kswapd stole no pages:\n%s", out)
	}
}

// TestForkWhileKswapdEvicts is the -race stress test: several
// processes fork, write, and read concurrently while kswapd evicts
// under watermark pressure; afterwards the §3.5/§3.6 invariants and
// the reclaim bookkeeping must hold, and all contents must be intact.
func TestForkWhileKswapdEvicts(t *testing.T) {
	k := New()
	k.SetSwapEnabled(true)
	defer k.SetSwapEnabled(false)

	// Generous hard limit (forks have no OOM stall path) but aggressive
	// watermarks, so kswapd evicts continuously while far from OOM.
	const limit = 16384
	k.Allocator().SetLimit(limit)
	t.Cleanup(func() { k.Allocator().SetLimit(0) })
	if err := k.SetSwapWatermarks(limit/2, (limit*3)/4); err != nil {
		t.Fatal(err)
	}

	const (
		workers = 4
		iters   = 20
		pages   = 256
	)
	roots := make([]*Process, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		roots[w] = k.NewProcess()
		wg.Add(1)
		go func(w int, p *Process) {
			defer wg.Done()
			base, err := p.Mmap(pages*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
			if err != nil {
				errCh <- err
				return
			}
			buf := make([]byte, addr.PageSize)
			rd := make([]byte, addr.PageSize)
			for it := 0; it < iters; it++ {
				for i := range buf {
					buf[i] = byte(w ^ it ^ i)
				}
				for i := 0; i < pages; i += 4 {
					if err := p.WriteAt(buf, base+addr.V(i*addr.PageSize)); err != nil {
						errCh <- err
						return
					}
				}
				mode := core.ForkClassic
				if it%2 == 1 {
					mode = core.ForkOnDemand
				}
				c, err := p.Fork(WithMode(mode))
				if err != nil {
					errCh <- err
					return
				}
				// The child sees the parent's bytes even for pages kswapd
				// swapped out in between, then COWs a few.
				if err := c.ReadAt(rd, base); err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(rd, buf) {
					errCh <- fmt.Errorf("worker %d iter %d: child read differs from parent", w, it)
					return
				}
				if err := c.WriteAt([]byte{0xFF}, base+addr.V(8*addr.PageSize)); err != nil {
					errCh <- err
					return
				}
				c.Exit()
				c.Wait()
			}
		}(w, roots[w])
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("stress worker failed: %v", err)
	}

	spaces := make([]*core.AddressSpace, 0, workers)
	for _, p := range roots {
		spaces = append(spaces, p.Space())
	}
	if err := core.CheckInvariants(spaces...); err != nil {
		t.Fatal(err)
	}
	for _, p := range roots {
		p.Exit()
	}
	if st := k.Reclaim().Stats(); st.SwapSlots != 0 {
		t.Fatalf("%d swap slot refs leaked after all exits", st.SwapSlots)
	}
}
