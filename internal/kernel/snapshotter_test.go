package kernel

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

func snapProc(t *testing.T, k *Kernel, bytes uint64) *Process {
	t.Helper()
	p := k.NewProcess()
	if _, err := p.Mmap(bytes, rw, vm.MapPrivate|vm.MapPopulate); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSnapshotterOnDemand(t *testing.T) {
	k := New()
	p := snapProc(t, k, 4*addr.PTECoverage)
	defer p.Exit()
	s, err := p.StartSnapshotter(0, WithSnapshotMode(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	st, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 1 || st.Mode != core.ForkOnDemand || st.ForkLatency <= 0 {
		t.Errorf("bad stats: %+v", st)
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshots(); got != 2 {
		t.Errorf("Snapshots() = %d, want 2", got)
	}
	last, ok := s.LastSnapshot()
	if !ok || last.Seq != 2 {
		t.Errorf("LastSnapshot = %+v ok=%v", last, ok)
	}
	tot := s.Totals()
	if tot.Snapshots != 2 || tot.ForkMean <= 0 || tot.ForkMax < tot.ForkMean {
		t.Errorf("totals: %+v", tot)
	}
	s.Stop()
	// Children are retired by Stop's wait.
	if n := k.NumProcesses(); n != 1 {
		t.Errorf("leaked snapshot children: %d live processes", n)
	}
	if _, err := s.Snapshot(); !errors.Is(err, ErrSnapshotterStopped) {
		t.Errorf("Snapshot after Stop: %v", err)
	}
	s.Stop() // idempotent
}

func TestSnapshotterChildFuncAndSync(t *testing.T) {
	k := New()
	p := snapProc(t, k, addr.PTECoverage)
	defer p.Exit()
	var ran atomic.Uint64
	boom := errors.New("boom")
	s, err := p.StartSnapshotter(0,
		WithSnapshotMode(core.ForkOnDemand),
		WithSnapshotChild(func(c *Process) error {
			ran.Add(1)
			if c.Exited() {
				t.Error("child already exited in child func")
			}
			return boom
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	st, err := s.SnapshotSync(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(st.Err, boom) {
		t.Errorf("sync stats err = %v, want boom", st.Err)
	}
	if ran.Load() != 1 {
		t.Errorf("child func ran %d times", ran.Load())
	}
	// Per-call override wins over the configured child func.
	if _, err := s.SnapshotSync(func(c *Process) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 1 {
		t.Error("override did not replace configured child func")
	}
	if tot := s.Totals(); tot.ChildErrs != 1 {
		t.Errorf("ChildErrs = %d, want 1", tot.ChildErrs)
	}
	last, _ := s.LastSnapshot()
	if last.Err != nil {
		t.Errorf("last snapshot err = %v, want nil", last.Err)
	}
}

func TestSnapshotterTimer(t *testing.T) {
	k := New()
	p := snapProc(t, k, addr.PTECoverage)
	defer p.Exit()
	var notified atomic.Uint64
	s, err := p.StartSnapshotter(2*time.Millisecond,
		WithSnapshotMode(core.ForkOnDemand),
		WithSnapshotNotify(func(SnapshotStats) { notified.Add(1) }))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Snapshots() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if got := s.Snapshots(); got < 3 {
		t.Fatalf("timer took %d snapshots", got)
	}
	if notified.Load() != s.Snapshots() {
		t.Errorf("notify ran %d times for %d snapshots", notified.Load(), s.Snapshots())
	}
	if n := k.NumProcesses(); n != 1 {
		t.Errorf("leaked children: %d live", n)
	}
}

func TestSnapshotterEpochTagging(t *testing.T) {
	k := New()
	p := snapProc(t, k, addr.PTECoverage)
	defer p.Exit()
	s, err := p.StartSnapshotter(0, WithSnapshotMode(core.ForkClassic))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.ForkInFlight() {
		t.Error("fork in flight before any snapshot")
	}
	e1 := s.Epoch()
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	e2 := s.Epoch()
	if e1 == e2 {
		t.Error("epoch did not advance across a snapshot")
	}
	if e2&1 != 0 {
		t.Errorf("epoch odd (%d) after fork completed", e2)
	}
}

func TestSnapshotterInheritsProcessMode(t *testing.T) {
	k := New()
	p := snapProc(t, k, addr.PTECoverage)
	defer p.Exit()
	if err := k.SetForkMode(p.PID(), core.ForkOnDemand); err != nil {
		t.Fatal(err)
	}
	s, err := p.StartSnapshotter(0)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	st, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != core.ForkOnDemand {
		t.Errorf("snapshot used %v, want procfs-configured on-demand", st.Mode)
	}
}

func TestSnapshotterExitedProcess(t *testing.T) {
	k := New()
	p := k.NewProcess()
	p.Exit()
	if _, err := p.StartSnapshotter(0); !errors.Is(err, ErrExited) {
		t.Errorf("StartSnapshotter on exited process: %v", err)
	}
}
