package kernel

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Snapshotter is the typed snapshot-serving facility of the v1 API:
// it forks its process on a timer, on demand, or both, replacing the
// ad-hoc "fork every N ms / fork per request" loops applications used
// to hand-roll. Each snapshot fork is timed, counted, and exposed via
// LastSnapshot and Totals, and the Epoch counter lets a serving layer
// tag every request with whether a snapshot fork was in flight while
// it was handled — the attribution instrument the SLO harness uses.
//
// The fork itself blocks the process's other memory accesses through
// the address-space lock, exactly the pause the paper measures on
// Redis; the child's work (serialization, verification) runs on a
// background goroutine so the serving path is blocked only for the
// fork call proper.

// ErrSnapshotterStopped reports a Snapshot call on a stopped
// Snapshotter.
var ErrSnapshotterStopped = errors.New("kernel: snapshotter is stopped")

// SnapshotStats describes one snapshot fork.
type SnapshotStats struct {
	// Seq numbers snapshots from 1 in fork order.
	Seq uint64
	// Start is when the fork began.
	Start time.Time
	// ForkLatency is the duration of the fork call itself — the window
	// during which the serving process was paused.
	ForkLatency time.Duration
	// Mode is the engine the fork used.
	Mode core.ForkMode
	// ChildPID identifies the snapshot child.
	ChildPID PID
	// Err is the child function's error, when the child work has
	// completed (always set for SnapshotSync; for asynchronous
	// snapshots it appears in LastSnapshot once the child finishes).
	Err error
}

// SnapshotterTotals aggregates a Snapshotter's lifetime statistics.
type SnapshotterTotals struct {
	Snapshots  uint64        // forks performed
	ChildErrs  uint64        // child functions that returned an error
	ForkErrs   uint64        // forks that failed outright
	ForkMean   time.Duration // mean fork pause
	ForkStdDev time.Duration // sample standard deviation of the pause
	ForkMax    time.Duration // worst fork pause
	ForkLast   time.Duration // most recent fork pause
}

// SnapshotterOpt configures StartSnapshotter.
type SnapshotterOpt func(*snapCfg)

type snapCfg struct {
	mode     core.ForkMode
	haveMode bool
	forkOpts core.ForkOptions
	haveFork bool
	child    func(*Process) error
	notify   func(SnapshotStats)
}

// WithSnapshotMode pins the fork engine used for snapshots. Without
// it, snapshots use the engine configured for the process (SetForkMode,
// then the kernel default), like a plain Fork call.
func WithSnapshotMode(m core.ForkMode) SnapshotterOpt {
	return func(c *snapCfg) {
		c.mode = m
		c.haveMode = true
	}
}

// WithSnapshotWorkers fans each snapshot fork's page-table copy out
// over up to n workers (see WithWorkers).
func WithSnapshotWorkers(n int) SnapshotterOpt {
	return func(c *snapCfg) {
		c.forkOpts.Parallelism = n
		c.haveFork = true
	}
}

// WithSnapshotChild installs the child-side work: fn runs on a
// background goroutine with the freshly forked child (serialize the
// snapshot, verify it, ...). The snapshotter exits the child after fn
// returns; fn errors are counted and surface in LastSnapshot. Without
// this option the child exits immediately, making each snapshot a pure
// pause-time probe.
func WithSnapshotChild(fn func(*Process) error) SnapshotterOpt {
	return func(c *snapCfg) { c.child = fn }
}

// WithSnapshotNotify calls fn after each snapshot's child work
// completes (on the child goroutine). Stats include the child error.
func WithSnapshotNotify(fn func(SnapshotStats)) SnapshotterOpt {
	return func(c *snapCfg) { c.notify = fn }
}

// Snapshotter periodically (and on demand) snapshots one process by
// forking it. Create one with Process.StartSnapshotter; stop it with
// Stop. All methods are safe for concurrent use.
type Snapshotter struct {
	p   *Process
	cfg snapCfg

	// epoch is a seqlock-style counter: odd while a snapshot fork is in
	// flight, even otherwise. A reader sampling it before and after an
	// operation detects any overlapping fork (odd value or change).
	epoch atomic.Uint64

	seq       atomic.Uint64
	childErrs atomic.Uint64
	forkErrs  atomic.Uint64
	forkSumNS atomic.Uint64
	forkSSqNS atomic.Uint64 // sum of squared ns (stddev; ~10ms forks for years before overflow)
	forkMaxNS atomic.Uint64
	forkLast  atomic.Uint64

	mu      sync.Mutex // guards last, stopped, and snapshot serialization
	last    SnapshotStats
	hasLast bool
	stopped bool

	stop     chan struct{}
	timerWG  sync.WaitGroup // the timer goroutine
	childWG  sync.WaitGroup // in-flight child functions
	interval time.Duration
}

// StartSnapshotter begins snapshotting p. With interval > 0 a
// background goroutine forks p every interval (counting from the end
// of the previous snapshot's fork); with interval <= 0 no timer runs
// and snapshots happen only on demand via Snapshot or SnapshotSync.
// Stop the returned handle when done — Stop halts the timer and waits
// for outstanding child work.
func (p *Process) StartSnapshotter(interval time.Duration, opts ...SnapshotterOpt) (*Snapshotter, error) {
	if p.Exited() {
		return nil, fmt.Errorf("kernel: snapshotter on exited process %d: %w", p.pid, ErrExited)
	}
	s := &Snapshotter{p: p, stop: make(chan struct{}), interval: interval}
	for _, o := range opts {
		o(&s.cfg)
	}
	if interval > 0 {
		s.timerWG.Add(1)
		go s.timerLoop()
	}
	return s, nil
}

func (s *Snapshotter) timerLoop() {
	defer s.timerWG.Done()
	t := time.NewTimer(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			// Errors are recorded in the totals and LastSnapshot; a
			// timer-driven snapshotter keeps going (a failed fork under
			// memory pressure should not silently end snapshotting).
			_, _ = s.snapshot(false, nil)
			t.Reset(s.interval)
		}
	}
}

// Snapshot takes one snapshot now: it forks the process (pausing it
// for the fork's duration), hands the child to the configured child
// function on a background goroutine, and returns the fork's stats
// without waiting for the child work.
func (s *Snapshotter) Snapshot() (SnapshotStats, error) { return s.snapshot(false, nil) }

// SnapshotWith is Snapshot with a per-call child function overriding
// the configured one (e.g. a serializer bound to a specific output).
func (s *Snapshotter) SnapshotWith(fn func(*Process) error) (SnapshotStats, error) {
	return s.snapshot(false, fn)
}

// SnapshotSync takes one snapshot and waits for the child work to
// finish before returning; the returned stats carry the child error.
// fn overrides the configured child function when non-nil.
func (s *Snapshotter) SnapshotSync(fn func(*Process) error) (SnapshotStats, error) {
	return s.snapshot(true, fn)
}

func (s *Snapshotter) snapshot(sync bool, fn func(*Process) error) (SnapshotStats, error) {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return SnapshotStats{}, ErrSnapshotterStopped
	}
	mode := s.cfg.mode
	if !s.cfg.haveMode {
		mode = s.p.k.forkModeFor(s.p.pid)
	}
	forkOpts := []ForkOpt{WithMode(mode)}
	if s.cfg.haveFork {
		forkOpts = append(forkOpts, WithForkOptions(s.cfg.forkOpts))
	}

	s.epoch.Add(1) // odd: fork in flight
	start := time.Now()
	child, err := s.p.Fork(forkOpts...)
	lat := time.Since(start)
	s.epoch.Add(1) // even again
	if err != nil {
		s.forkErrs.Add(1)
		s.mu.Unlock()
		return SnapshotStats{Start: start, Mode: mode}, err
	}

	ns := uint64(lat)
	s.forkSumNS.Add(ns)
	s.forkSSqNS.Add(ns * ns)
	s.forkLast.Store(ns)
	for {
		m := s.forkMaxNS.Load()
		if ns <= m || s.forkMaxNS.CompareAndSwap(m, ns) {
			break
		}
	}
	st := SnapshotStats{
		Seq:         s.seq.Add(1),
		Start:       start,
		ForkLatency: lat,
		Mode:        mode,
		ChildPID:    child.PID(),
	}
	s.last = st
	s.hasLast = true
	if fn == nil {
		fn = s.cfg.child
	}
	s.childWG.Add(1)
	s.mu.Unlock()

	if sync {
		st.Err = s.runChild(child, st, fn)
		return st, nil
	}
	go s.runChild(child, st, fn)
	return st, nil
}

// runChild executes the child-side work and retires the child.
func (s *Snapshotter) runChild(child *Process, st SnapshotStats, fn func(*Process) error) error {
	defer s.childWG.Done()
	var err error
	if fn != nil {
		err = fn(child)
	}
	child.Exit()
	st.Err = err
	if err != nil {
		s.childErrs.Add(1)
	}
	s.mu.Lock()
	if s.last.Seq == st.Seq {
		s.last = st
	}
	s.mu.Unlock()
	if s.cfg.notify != nil {
		s.cfg.notify(st)
	}
	return err
}

// Stop halts the timer, waits for in-flight child work to finish, and
// marks the snapshotter stopped; further Snapshot calls fail with
// ErrSnapshotterStopped. Stop is idempotent.
func (s *Snapshotter) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.stop)
	s.mu.Unlock()
	s.timerWG.Wait()
	s.childWG.Wait()
}

// LastSnapshot returns the most recent snapshot's stats (child error
// included once the child work has finished) and whether any snapshot
// has been taken.
func (s *Snapshotter) LastSnapshot() (SnapshotStats, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.hasLast
}

// Process returns the process this snapshotter forks. The serving tier
// uses it to stamp the request correlation id onto the address space
// before a snapshot fork, so the fork and its COW faults trace back to
// the request that triggered them.
func (s *Snapshotter) Process() *Process { return s.p }

// ForkInFlight reports whether a snapshot fork is in progress right
// now.
func (s *Snapshotter) ForkInFlight() bool { return s.epoch.Load()&1 == 1 }

// Epoch returns the fork seqlock: odd while a snapshot fork is in
// flight. Sampling it before and after handling a request detects any
// overlap with a fork (odd sample, or a change between the samples) —
// the serving tier's fork-coincidence tag.
func (s *Snapshotter) Epoch() uint64 { return s.epoch.Load() }

// Snapshots returns the number of snapshot forks performed.
func (s *Snapshotter) Snapshots() uint64 { return s.seq.Load() }

// Totals returns the lifetime aggregate statistics.
func (s *Snapshotter) Totals() SnapshotterTotals {
	n := s.seq.Load()
	t := SnapshotterTotals{
		Snapshots: n,
		ChildErrs: s.childErrs.Load(),
		ForkErrs:  s.forkErrs.Load(),
		ForkMax:   time.Duration(s.forkMaxNS.Load()),
		ForkLast:  time.Duration(s.forkLast.Load()),
	}
	if n > 0 {
		sum := float64(s.forkSumNS.Load())
		t.ForkMean = time.Duration(sum / float64(n))
		if n > 1 {
			ssq := float64(s.forkSSqNS.Load())
			varNS := (ssq - sum*sum/float64(n)) / float64(n-1)
			if varNS > 0 {
				t.ForkStdDev = time.Duration(math.Sqrt(varNS))
			}
		}
	}
	return t
}
