// Package kernel ties the simulated subsystems together into a
// process-level API: a Kernel owning physical memory, a filesystem and
// a process table, and Process objects offering the syscall surface the
// paper's workloads use (mmap, munmap, mremap, mprotect, fork,
// on-demand-fork, exit, wait, and memory access through the software
// MMU).
//
// The fork-mode selection mirrors the paper's deployment story (§4,
// "Flexibility"): on-demand-fork is a separate opt-in entry point
// (ForkWith), and a procfs-style per-process configuration
// (Kernel.SetForkMode) transparently redirects plain Fork calls, so
// applications need no source changes.
package kernel

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/fs"
	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
	"repro/internal/profile"
)

// PID identifies a simulated process.
type PID int

// Kernel is the simulated operating system instance.
type Kernel struct {
	alloc *phys.Allocator
	prof  *profile.Profiler
	fsys  *fs.FileSystem

	mu        sync.Mutex
	nextPID   PID
	procs     map[PID]*Process
	forkModes map[PID]core.ForkMode // procfs-style per-process override
	defMode   core.ForkMode
}

// Option configures a Kernel.
type Option func(*Kernel)

// WithProfiler attaches a cost profiler to the kernel's hot paths.
func WithProfiler(p *profile.Profiler) Option {
	return func(k *Kernel) { k.prof = p }
}

// WithDefaultForkMode sets the engine plain Fork calls use when no
// per-process override exists. The default is the classic fork.
func WithDefaultForkMode(m core.ForkMode) Option {
	return func(k *Kernel) { k.defMode = m }
}

// New boots a kernel.
func New(opts ...Option) *Kernel {
	k := &Kernel{
		nextPID:   1,
		procs:     make(map[PID]*Process),
		forkModes: make(map[PID]core.ForkMode),
		defMode:   core.ForkClassic,
	}
	for _, o := range opts {
		o(k)
	}
	k.alloc = phys.NewAllocator(k.prof)
	k.fsys = fs.New()
	return k
}

// Allocator exposes the physical memory manager.
func (k *Kernel) Allocator() *phys.Allocator { return k.alloc }

// Profiler returns the kernel profiler (may be nil).
func (k *Kernel) Profiler() *profile.Profiler { return k.prof }

// FS returns the kernel's filesystem.
func (k *Kernel) FS() *fs.FileSystem { return k.fsys }

// NewProcess creates a fresh process with an empty address space (the
// simulated equivalent of exec from nothing).
func (k *Kernel) NewProcess() *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := &Process{
		k:    k,
		pid:  k.nextPID,
		as:   core.NewAddressSpace(k.alloc, k.prof),
		done: make(chan struct{}),
	}
	k.nextPID++
	k.procs[p.pid] = p
	return p
}

// Process returns the process with the given PID, or nil.
func (k *Kernel) Process(pid PID) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.procs[pid]
}

// NumProcesses returns the number of live processes.
func (k *Kernel) NumProcesses() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.procs)
}

// SetForkMode installs the procfs-style per-process fork configuration:
// subsequent plain Fork calls by pid use mode, with no change to the
// application's code (§4, "Flexibility").
func (k *Kernel) SetForkMode(pid PID, mode core.ForkMode) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, ok := k.procs[pid]; !ok {
		return fmt.Errorf("kernel: no process %d", pid)
	}
	k.forkModes[pid] = mode
	return nil
}

// forkModeFor resolves the engine for a process.
func (k *Kernel) forkModeFor(pid PID) core.ForkMode {
	k.mu.Lock()
	defer k.mu.Unlock()
	if m, ok := k.forkModes[pid]; ok {
		return m
	}
	return k.defMode
}

// Process is a simulated task: an address space plus process-table
// state. Its methods are the syscall surface used by the workloads.
type Process struct {
	k   *Kernel
	pid PID

	mu     sync.Mutex
	as     *core.AddressSpace
	parent PID
	exited bool
	done   chan struct{}
}

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// Parent returns the parent's PID (0 for initial processes).
func (p *Process) Parent() PID { return p.parent }

// Space exposes the underlying address space for stats and invariants.
func (p *Process) Space() *core.AddressSpace { return p.as }

// Mmap maps size bytes and returns the chosen address.
func (p *Process) Mmap(size uint64, prot vm.Prot, flags vm.MapFlags) (addr.V, error) {
	return p.as.Mmap(0, size, prot, flags, nil, 0)
}

// MmapFile maps size bytes of the file starting at fileOff.
func (p *Process) MmapFile(size uint64, prot vm.Prot, flags vm.MapFlags, f *fs.File, fileOff uint64) (addr.V, error) {
	return p.as.Mmap(0, size, prot, flags, f, fileOff)
}

// Munmap unmaps [start, start+size).
func (p *Process) Munmap(start addr.V, size uint64) error {
	return p.as.Munmap(start, size)
}

// Mremap moves a mapping and returns its new address.
func (p *Process) Mremap(start addr.V, size uint64) (addr.V, error) {
	return p.as.Mremap(start, size)
}

// Mprotect changes mapping protections.
func (p *Process) Mprotect(start addr.V, size uint64, prot vm.Prot) error {
	return p.as.Mprotect(start, size, prot)
}

// ReadAt reads process memory.
func (p *Process) ReadAt(buf []byte, v addr.V) error { return p.as.ReadAt(buf, v) }

// WriteAt writes process memory.
func (p *Process) WriteAt(buf []byte, v addr.V) error { return p.as.WriteAt(buf, v) }

// LoadByte reads one byte of process memory.
func (p *Process) LoadByte(v addr.V) (byte, error) { return p.as.LoadByte(v) }

// StoreByte writes one byte of process memory.
func (p *Process) StoreByte(v addr.V, b byte) error { return p.as.StoreByte(v, b) }

// Touch performs a minimal access, faulting as needed.
func (p *Process) Touch(v addr.V, write bool) error { return p.as.Touch(v, write) }

// Fork duplicates the process using the engine configured for it
// (classic by default; on-demand-fork if procfs says so).
func (p *Process) Fork() (*Process, error) {
	return p.ForkWith(p.k.forkModeFor(p.pid))
}

// ForkWith duplicates the process with an explicit engine — the
// paper's opt-in on_demand_fork() syscall.
func (p *Process) ForkWith(mode core.ForkMode) (*Process, error) {
	return p.forkInternal(mode, core.ForkOptions{})
}

// ForkWithOptions exposes the ablation knobs.
func (p *Process) ForkWithOptions(mode core.ForkMode, opts core.ForkOptions) (*Process, error) {
	return p.forkInternal(mode, opts)
}

func (p *Process) forkInternal(mode core.ForkMode, opts core.ForkOptions) (*Process, error) {
	// Malformed options panic before p.mu is taken: a caller that
	// recovers must be left with a usable process, not a locked one.
	opts.Validate()
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return nil, fmt.Errorf("kernel: fork from exited process %d", p.pid)
	}
	childAS := core.ForkWithOptions(p.as, mode, opts)
	p.mu.Unlock()

	k := p.k
	k.mu.Lock()
	child := &Process{
		k:      k,
		pid:    k.nextPID,
		as:     childAS,
		parent: p.pid,
		done:   make(chan struct{}),
	}
	k.nextPID++
	k.procs[child.pid] = child
	// Children inherit the procfs fork-mode configuration.
	if m, ok := k.forkModes[p.pid]; ok {
		k.forkModes[child.pid] = m
	}
	k.mu.Unlock()
	return child, nil
}

// Exit terminates the process, tearing down its address space and
// releasing every shared page-table reference it holds.
func (p *Process) Exit() {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return
	}
	p.exited = true
	p.as.Teardown()
	close(p.done)
	p.mu.Unlock()

	p.k.mu.Lock()
	delete(p.k.procs, p.pid)
	delete(p.k.forkModes, p.pid)
	p.k.mu.Unlock()
}

// Exited reports whether the process has exited.
func (p *Process) Exited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited
}

// Wait blocks until the process exits (the waitpid of the benchmarks).
func (p *Process) Wait() { <-p.done }
