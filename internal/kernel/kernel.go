// Package kernel ties the simulated subsystems together into a
// process-level API: a Kernel owning physical memory, a filesystem and
// a process table, and Process objects offering the syscall surface the
// paper's workloads use (mmap, munmap, mremap, mprotect, fork,
// on-demand-fork, exit, wait, and memory access through the software
// MMU).
//
// The fork-mode selection mirrors the paper's deployment story (§4,
// "Flexibility"): on-demand-fork is opted into per call
// (Fork(WithMode(...))), and a procfs-style per-process configuration
// (Kernel.SetForkMode) transparently redirects plain Fork calls, so
// applications need no source changes.
package kernel

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/fs"
	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/reclaim"
	"repro/internal/mem/vm"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// PID identifies a simulated process.
type PID int

// ErrExited is the sentinel wrapped by every error caused by
// addressing a process that is gone — forking from an exited process,
// or configuring a PID no longer (or never) in the process table.
// Callers branch with errors.Is(err, ErrExited).
var ErrExited = errors.New("process has exited")

// Kernel is the simulated operating system instance.
type Kernel struct {
	alloc   *phys.Allocator
	prof    *profile.Profiler
	met     *metrics.Registry
	trc     *trace.Tracer
	fsys    *fs.FileSystem
	rec     *reclaim.Manager
	fail    *failpoint.Registry
	tenants *tenant.Manager
	slo     sloSlot
	health  healthSlot

	// procEndpoints is the /proc/odf file registry, in the fixed order
	// New builds it; the root listing and path dispatch both walk it.
	procEndpoints []procEndpoint

	mu        sync.Mutex
	nextPID   PID
	procs     map[PID]*Process
	forkModes map[PID]core.ForkMode // procfs-style per-process override
	defMode   core.ForkMode

	// Durable-checkpoint registry: snapshots this kernel wrote and
	// restore images it holds open, for /proc/odf/checkpoints.
	ckptMu     sync.Mutex
	ckpts      []*DurableCheckpoint
	ckptImages []*ckptImage
}

// Option configures a Kernel.
type Option func(*Kernel)

// WithProfiler attaches a cost profiler to the kernel's hot paths.
func WithProfiler(p *profile.Profiler) Option {
	return func(k *Kernel) { k.prof = p }
}

// WithDefaultForkMode sets the engine plain Fork calls use when no
// per-process override exists. The default is the classic fork.
func WithDefaultForkMode(m core.ForkMode) Option {
	return func(k *Kernel) { k.defMode = m }
}

// WithMetricsDisabled boots the kernel with telemetry collection off.
// Metrics are on by default (the collection cost is a handful of
// atomics per fork/fault); this option is for benchmarks quantifying
// that cost. Collection can be re-enabled later via Metrics().
func WithMetricsDisabled() Option {
	return func(k *Kernel) { k.met.SetEnabled(false) }
}

// New boots a kernel.
func New(opts ...Option) *Kernel {
	k := &Kernel{
		nextPID:   1,
		procs:     make(map[PID]*Process),
		forkModes: make(map[PID]core.ForkMode),
		defMode:   core.ForkClassic,
		met:       metrics.New(),
	}
	for _, o := range opts {
		o(k)
	}
	k.alloc = phys.NewAllocator(k.prof)
	k.alloc.SetMetrics(k.met)
	// The flight recorder boots disabled (recording is opt-in via
	// SetTraceEnabled) and must be attached before the reclaim manager
	// and any address space, which inherit it from the allocator.
	k.trc = trace.New(trace.DefaultCapacity)
	k.alloc.SetTracer(k.trc)
	// The failpoint registry boots with every point disarmed; arming is
	// the chaos harness's / tests' job. Attached before the reclaim
	// manager and any address space so injection reaches every layer.
	k.fail = failpoint.New(defaultFailpointSeed)
	k.fail.SetObserver(k.failpointObserver)
	k.alloc.SetFailpoints(k.fail)
	// The reclaim manager is always attached (so address spaces created
	// now pick it up) but starts disabled: until SetSwapEnabled(true)
	// every hook is a no-op and frame-limit pressure fails fast, the
	// historical behavior.
	k.rec = reclaim.NewManager(k.alloc, k.met)
	k.alloc.SetReclaimer(k.rec)
	// The tenant control plane is always present (an empty registry
	// costs one nil-tenant check per fork); forks queue machine-wide
	// only when the allocator is limited and nearly exhausted.
	k.tenants = tenant.NewManager(k.met)
	k.tenants.SetPressure(k.memoryPressure)
	k.fsys = fs.New()
	k.procEndpoints = k.buildProcEndpoints()
	return k
}

// Metrics returns the kernel's telemetry registry. It is never nil for
// a kernel built with New.
func (k *Kernel) Metrics() *metrics.Registry { return k.met }

// MetricsSnapshot captures the system-wide telemetry tree: the
// registry's counters, the live processes' TLB counters summed on top
// of the retired ones, and the allocator's frame-level gauges. This is
// the one read path behind both the public Snapshot API and
// /proc/odf/metrics, so the two always agree.
func (k *Kernel) MetricsSnapshot() metrics.Snapshot {
	snap := k.met.Snapshot()
	k.mu.Lock()
	for _, p := range k.procs {
		st := p.as.TLB().Stats()
		snap.TLB.Hits += st.Hits
		snap.TLB.Misses += st.Misses
		snap.TLB.Flushes += st.Flushes
		snap.TLB.Shootdowns += st.Shootdowns
	}
	k.mu.Unlock()
	snap.Alloc.FramesInUse = k.alloc.Allocated()
	snap.Alloc.FramesPeak = k.alloc.Peak()
	snap.Alloc.ShardCached = int64(k.alloc.ShardCached())
	snap.Robust.InjectedFaults = k.fail.TotalFires()
	return snap
}

// Allocator exposes the physical memory manager.
func (k *Kernel) Allocator() *phys.Allocator { return k.alloc }

// Profiler returns the kernel profiler (may be nil).
func (k *Kernel) Profiler() *profile.Profiler { return k.prof }

// FS returns the kernel's filesystem.
func (k *Kernel) FS() *fs.FileSystem { return k.fsys }

// NewProcess creates a fresh process with an empty address space (the
// simulated equivalent of exec from nothing).
func (k *Kernel) NewProcess() *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	p := &Process{
		k:    k,
		pid:  k.nextPID,
		as:   core.NewAddressSpace(k.alloc, k.prof),
		done: make(chan struct{}),
	}
	k.nextPID++
	k.procs[p.pid] = p
	return p
}

// Process returns the process with the given PID, or nil.
func (k *Kernel) Process(pid PID) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.procs[pid]
}

// NumProcesses returns the number of live processes.
func (k *Kernel) NumProcesses() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.procs)
}

// SetForkMode installs the procfs-style per-process fork configuration:
// subsequent plain Fork calls by pid use mode, with no change to the
// application's code (§4, "Flexibility").
func (k *Kernel) SetForkMode(pid PID, mode core.ForkMode) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	// PIDs are never reused, so an unknown PID was either never issued
	// or belongs to a process that exited; both wrap ErrExited.
	if _, ok := k.procs[pid]; !ok {
		return fmt.Errorf("kernel: no process %d: %w", pid, ErrExited)
	}
	k.forkModes[pid] = mode
	return nil
}

// forkModeFor resolves the engine for a process.
func (k *Kernel) forkModeFor(pid PID) core.ForkMode {
	k.mu.Lock()
	defer k.mu.Unlock()
	if m, ok := k.forkModes[pid]; ok {
		return m
	}
	return k.defMode
}

// Process is a simulated task: an address space plus process-table
// state. Its methods are the syscall surface used by the workloads.
type Process struct {
	k   *Kernel
	pid PID

	mu     sync.Mutex
	as     *core.AddressSpace
	parent PID
	tenant *tenant.Tenant // owning tenant account (nil = untenanted)
	exited bool
	done   chan struct{}
}

// PID returns the process id.
func (p *Process) PID() PID { return p.pid }

// Parent returns the parent's PID (0 for initial processes).
func (p *Process) Parent() PID { return p.parent }

// Space exposes the underlying address space for stats and invariants.
func (p *Process) Space() *core.AddressSpace { return p.as }

// Mmap maps size bytes and returns the chosen address.
func (p *Process) Mmap(size uint64, prot vm.Prot, flags vm.MapFlags) (addr.V, error) {
	return p.as.Mmap(0, size, prot, flags, nil, 0)
}

// MmapFile maps size bytes of the file starting at fileOff.
func (p *Process) MmapFile(size uint64, prot vm.Prot, flags vm.MapFlags, f *fs.File, fileOff uint64) (addr.V, error) {
	return p.as.Mmap(0, size, prot, flags, f, fileOff)
}

// Munmap unmaps [start, start+size).
func (p *Process) Munmap(start addr.V, size uint64) error {
	return p.as.Munmap(start, size)
}

// Mremap moves a mapping and returns its new address.
func (p *Process) Mremap(start addr.V, size uint64) (addr.V, error) {
	return p.as.Mremap(start, size)
}

// Mprotect changes mapping protections.
func (p *Process) Mprotect(start addr.V, size uint64, prot vm.Prot) error {
	return p.as.Mprotect(start, size, prot)
}

// ReadAt reads process memory.
func (p *Process) ReadAt(buf []byte, v addr.V) error { return p.as.ReadAt(buf, v) }

// WriteAt writes process memory.
func (p *Process) WriteAt(buf []byte, v addr.V) error { return p.as.WriteAt(buf, v) }

// LoadByte reads one byte of process memory.
func (p *Process) LoadByte(v addr.V) (byte, error) { return p.as.LoadByte(v) }

// StoreByte writes one byte of process memory.
func (p *Process) StoreByte(v addr.V, b byte) error { return p.as.StoreByte(v, b) }

// Touch performs a minimal access, faulting as needed.
func (p *Process) Touch(v addr.V, write bool) error { return p.as.Touch(v, write) }

// ForkOpt configures a single Fork call. Options apply in order, so a
// later WithWorkers overrides the Parallelism a WithForkOptions set.
type ForkOpt func(*forkCfg)

type forkCfg struct {
	mode     core.ForkMode
	haveMode bool
	opts     core.ForkOptions
}

// WithMode selects the fork engine for this call — the paper's opt-in
// on_demand_fork() syscall. Without it, Fork resolves the engine from
// the procfs-style configuration (SetForkMode, then the kernel
// default).
func WithMode(mode core.ForkMode) ForkOpt {
	return func(c *forkCfg) {
		c.mode = mode
		c.haveMode = true
	}
}

// WithWorkers fans the fork's tree copy out over up to n workers
// (core.ForkOptions.Parallelism). 0 and 1 select the sequential
// engine; negative values panic by contract when the fork runs.
func WithWorkers(n int) ForkOpt {
	return func(c *forkCfg) { c.opts.Parallelism = n }
}

// WithForkOptions replaces the full core.ForkOptions — ablation knobs
// and parallelism thresholds beyond what WithWorkers covers.
func WithForkOptions(opts core.ForkOptions) ForkOpt {
	return func(c *forkCfg) { c.opts = opts }
}

// Fork duplicates the process. With no options it uses the engine
// configured for the process (classic by default; on-demand-fork if
// procfs says so); functional options select the engine and tune the
// copy explicitly. This is the single fork entry point of the v1 API —
// ForkWith and ForkWithOptions remain as deprecated wrappers.
func (p *Process) Fork(opts ...ForkOpt) (*Process, error) {
	var cfg forkCfg
	for _, o := range opts {
		o(&cfg)
	}
	mode := cfg.mode
	if !cfg.haveMode {
		mode = p.k.forkModeFor(p.pid)
	}
	return p.forkInternal(mode, cfg.opts)
}

// ForkWith duplicates the process with an explicit engine.
//
// Deprecated: use Fork(WithMode(mode)).
func (p *Process) ForkWith(mode core.ForkMode) (*Process, error) {
	return p.forkInternal(mode, core.ForkOptions{})
}

// ForkWithOptions exposes the ablation knobs.
//
// Deprecated: use Fork(WithMode(mode), WithForkOptions(opts)).
func (p *Process) ForkWithOptions(mode core.ForkMode, opts core.ForkOptions) (*Process, error) {
	return p.forkInternal(mode, opts)
}

func (p *Process) forkInternal(mode core.ForkMode, opts core.ForkOptions) (*Process, error) {
	// Malformed options panic before p.mu is taken: a caller that
	// recovers must be left with a usable process, not a locked one.
	opts.Validate()
	// Tenant admission runs before p.mu so a queued fork blocks only
	// its caller, not the process's other syscalls. Over-quota and
	// memory-pressured forks wait here (bounded) and surface
	// tenant.ErrQuotaExceeded, never ErrNoMem.
	if err := p.admitFork(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return nil, fmt.Errorf("kernel: fork from exited process %d: %w", p.pid, ErrExited)
	}
	childAS, err := core.ForkWithOptions(p.as, mode, opts)
	p.mu.Unlock()
	if err != nil {
		return nil, err
	}

	k := p.k
	k.mu.Lock()
	child := &Process{
		k:      k,
		pid:    k.nextPID,
		as:     childAS,
		parent: p.pid,
		tenant: p.tenant,
		done:   make(chan struct{}),
	}
	k.nextPID++
	k.procs[child.pid] = child
	// Children inherit the procfs fork-mode configuration.
	if m, ok := k.forkModes[p.pid]; ok {
		k.forkModes[child.pid] = m
	}
	k.mu.Unlock()
	return child, nil
}

// Exit terminates the process, tearing down its address space and
// releasing every shared page-table reference it holds.
func (p *Process) Exit() {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return
	}
	p.exited = true
	p.as.Teardown()
	// Fold the dying process's TLB counters into the registry so
	// system-wide TLB telemetry survives process exit.
	if m := p.k.met; m.Enabled() {
		st := p.as.TLB().Stats()
		m.TLB.Hits.Add(st.Hits)
		m.TLB.Misses.Add(st.Misses)
		m.TLB.Flushes.Add(st.Flushes)
		m.TLB.Shootdowns.Add(st.Shootdowns)
	}
	close(p.done)
	p.mu.Unlock()

	p.k.mu.Lock()
	delete(p.k.procs, p.pid)
	delete(p.k.forkModes, p.pid)
	p.k.mu.Unlock()
}

// Exited reports whether the process has exited.
func (p *Process) Exited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited
}

// Wait blocks until the process exits (the waitpid of the benchmarks).
func (p *Process) Wait() { <-p.done }
