package kernel

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
	"repro/internal/tenant"
)

// TestProcTenantsGolden pins the /proc/odf/tenants text format.
// Regenerate deliberately with `go test -update`.
func TestProcTenantsGolden(t *testing.T) {
	k := New()
	a, err := k.Tenants().Create("alpha", 4096)
	if err != nil {
		t.Fatal(err)
	}
	a.ChargeFrames(1500)
	a.ChargeFrames(200)
	a.UnchargeFrames(300)
	a.AdjustShared(64)
	if _, err := k.Tenants().Create("beta", 0); err != nil {
		t.Fatal(err)
	}

	got, err := k.Procfs("/proc/odf/tenants")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "proc_tenants.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/proc/odf/tenants differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestTenantProcessCharging checks end-to-end charging: every frame a
// tenant's process touches lands on the tenant's account, the
// cross-check against the allocator's per-frame tags passes, and exit
// returns the account to zero.
func TestTenantProcessCharging(t *testing.T) {
	k := New()
	tn, err := k.Tenants().Create("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewTenantProcess(tn)
	if p.Tenant() != tn {
		t.Fatal("process does not report its tenant")
	}

	const pages = 64
	base, err := p.Mmap(pages*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate)
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	if u := tn.Usage(); u < pages {
		t.Fatalf("Usage = %d frames after touching %d pages", u, pages)
	}
	// The kernel invariant audit includes the per-tenant cross-check.
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A fork inherits the tenant: the child's page tables are charged
	// to the same account.
	before := tn.Usage()
	c, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if c.Tenant() != tn {
		t.Fatal("forked child does not inherit the tenant")
	}
	if u := tn.Usage(); u <= before {
		t.Fatalf("Usage = %d after fork, want > %d (child tables charged)", u, before)
	}
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	c.Exit()
	p.Exit()
	if u := tn.Usage(); u != 0 {
		t.Fatalf("Usage = %d after all exits, want 0", u)
	}
	if tn.Peak() < before {
		t.Fatalf("Peak = %d, want >= %d", tn.Peak(), before)
	}
}

// TestTenantForkAdmission: an over-quota tenant's forks queue and time
// out with ErrQuotaExceeded; raising the quota readmits them. The wait
// shows up in the flight recorder as a tenant.admit_wait span.
func TestTenantForkAdmission(t *testing.T) {
	k := New()
	k.Tenants().SetAdmitTimeout(30 * time.Millisecond)
	tn, err := k.Tenants().Create("alpha", 16)
	if err != nil {
		t.Fatal(err)
	}
	p := k.NewTenantProcess(tn)
	defer p.Exit()
	const pages = 64 // well over the 16-frame quota
	if _, err := p.Mmap(pages*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate); err != nil {
		t.Fatal(err)
	}
	if tn.ReclaimOvershoot() == 0 {
		t.Fatal("tenant not over quota; test setup broken")
	}

	k.SetTraceEnabled(true)
	if _, err := p.Fork(); !errors.Is(err, tenant.ErrQuotaExceeded) {
		t.Fatalf("over-quota fork = %v, want ErrQuotaExceeded", err)
	}
	k.SetTraceEnabled(false)
	if st := tn.Stats(); st.ForksTimedOut != 1 {
		t.Fatalf("stats = %+v, want 1 timed-out fork", st)
	}
	trc, err := k.Procfs("/proc/odf/trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trc, "tenant.admit_wait") {
		t.Fatalf("trace has no tenant.admit_wait span:\n%s", trc)
	}

	tn.SetQuota(0) // lift the quota; SetQuota kicks the queue
	c, err := p.Fork()
	if err != nil {
		t.Fatalf("fork after quota lift: %v", err)
	}
	c.Exit()
}

// TestFairShareReclaimPrefersOvershoot: with two tenants under a frame
// limit, kswapd must take its victims from the over-quota tenant's LRU
// partition, leaving the well-behaved tenant's pages resident.
func TestFairShareReclaimPrefersOvershoot(t *testing.T) {
	k := New()
	k.SetSwapEnabled(true)
	defer k.SetSwapEnabled(false)
	const limit = 1024
	k.Allocator().SetLimit(limit)
	t.Cleanup(func() { k.Allocator().SetLimit(0) })
	if err := k.SetSwapWatermarks(128, 256); err != nil {
		t.Fatal(err)
	}

	noisyT, err := k.Tenants().Create("noisy", 64)
	if err != nil {
		t.Fatal(err)
	}
	quietT, err := k.Tenants().Create("quiet", 256)
	if err != nil {
		t.Fatal(err)
	}
	noisy := k.NewTenantProcess(noisyT)
	defer noisy.Exit()
	quiet := k.NewTenantProcess(quietT)
	defer quiet.Exit()

	buf := make([]byte, addr.PageSize)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	write := func(p *Process, pages int) addr.V {
		t.Helper()
		base, err := p.Mmap(uint64(pages)*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			if err := p.WriteAt(buf, base+addr.V(i*addr.PageSize)); err != nil {
				t.Fatal(err)
			}
		}
		return base
	}
	// Quiet stays at an eighth of its quota; noisy blows through the
	// whole machine, pushing free frames below the low watermark so
	// kswapd wakes and must pick eviction victims.
	write(quiet, 32)
	write(noisy, 920)

	deadline := time.Now().Add(5 * time.Second)
	for limit-k.Allocator().Allocated() < 256 {
		if time.Now().After(deadline) {
			t.Fatal("kswapd never restored the high watermark")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := noisyT.Stats().ReclaimedFrames; got == 0 {
		t.Fatal("no frames reclaimed from the over-quota tenant")
	}
	if got := quietT.Stats().ReclaimedFrames; got != 0 {
		t.Fatalf("%d frames reclaimed from the under-quota tenant", got)
	}
}

// TestTenantConcurrentStress races forks, faults, reclaim, and tenant
// create/destroy, then checks the full invariant audit including the
// per-tenant accounting cross-check. Run with -race.
func TestTenantConcurrentStress(t *testing.T) {
	k := New()
	k.SetSwapEnabled(true)
	const limit = 8192
	k.Allocator().SetLimit(limit)
	t.Cleanup(func() { k.Allocator().SetLimit(0) })
	if err := k.SetSwapWatermarks(limit/4, limit/2); err != nil {
		t.Fatal(err)
	}
	k.Tenants().SetAdmitTimeout(50 * time.Millisecond)

	const (
		workers = 4
		iters   = 8
		pages   = 128
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			for it := 0; it < iters; it++ {
				tn, err := k.Tenants().Create(
					"w"+string(rune('a'+w))+"-"+string(rune('0'+it)), int64(64+rng.Intn(256)))
				if err != nil {
					errCh <- err
					return
				}
				p := k.NewTenantProcess(tn)
				base, err := p.Mmap(pages*addr.PageSize, vm.ProtRead|vm.ProtWrite, vm.MapPrivate)
				if err != nil {
					errCh <- err
					return
				}
				buf := make([]byte, addr.PageSize)
				for i := range buf {
					buf[i] = byte(w ^ it ^ i)
				}
				for i := 0; i < pages; i += 2 {
					if err := p.WriteAt(buf, base+addr.V(i*addr.PageSize)); err != nil {
						errCh <- err
						return
					}
				}
				// Forks may bounce off admission control under pressure —
				// that is the feature, not a failure.
				if c, err := p.Fork(); err == nil {
					if err := c.WriteAt([]byte{0xAB}, base); err != nil {
						errCh <- err
						return
					}
					c.Exit()
				} else if !errors.Is(err, tenant.ErrQuotaExceeded) {
					errCh <- err
					return
				}
				p.Exit()
				if it%2 == 1 {
					k.Tenants().Destroy(tn)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesce (stop kswapd) before the audit; live tenants must still
	// cross-check — their processes have exited, so usage must be 0.
	k.SetSwapEnabled(false)
	if err := k.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, tn := range k.Tenants().List() {
		if u := tn.Usage(); u != 0 {
			t.Fatalf("tenant %s: %d frames still charged after exits", tn.Name(), u)
		}
	}
}
