package kernel

import (
	"errors"
	"io/fs"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mem/vm"
	"repro/internal/profile"
)

const (
	testMiB   = uint64(1) << 20
	testProt  = vm.ProtRead | vm.ProtWrite
	testFlags = vm.MapPrivate | vm.MapPopulate
)

// TestForkAPIEquivalence proves the deprecated fork entry points stay
// behaviourally identical to the functional-option form: same engine
// charged, same page-table sharing, same copy-on-write semantics.
func TestForkAPIEquivalence(t *testing.T) {
	paths := []struct {
		name string
		fork func(p *Process) (*Process, error)
	}{
		{"Fork+WithMode", func(p *Process) (*Process, error) {
			return p.Fork(WithMode(core.ForkOnDemand))
		}},
		{"ForkWith", func(p *Process) (*Process, error) {
			//lint:ignore SA1019 the deprecated wrapper must stay equivalent
			return p.ForkWith(core.ForkOnDemand)
		}},
		{"ForkWithOptions", func(p *Process) (*Process, error) {
			//lint:ignore SA1019 the deprecated wrapper must stay equivalent
			return p.ForkWithOptions(core.ForkOnDemand, core.ForkOptions{})
		}},
	}
	type observed struct {
		odForks, clForks, tablesShared uint64
	}
	var results []observed
	for _, path := range paths {
		t.Run(path.name, func(t *testing.T) {
			k := New()
			p := k.NewProcess()
			defer p.Exit()
			base, err := p.Mmap(8*testMiB, testProt, testFlags)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.StoreByte(base, 7); err != nil {
				t.Fatal(err)
			}
			before := k.MetricsSnapshot()
			c, err := path.fork(p)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Exit()
			d := k.MetricsSnapshot().Sub(before)
			results = append(results, observed{
				odForks:      d.Fork.OnDemand().Forks,
				clForks:      d.Fork.Classic().Forks,
				tablesShared: d.Fork.TablesShared,
			})
			// Copy-on-write semantics must hold on every path.
			if err := c.StoreByte(base, 9); err != nil {
				t.Fatal(err)
			}
			pv, err := p.LoadByte(base)
			if err != nil {
				t.Fatal(err)
			}
			cv, err := c.LoadByte(base)
			if err != nil {
				t.Fatal(err)
			}
			if pv != 7 || cv != 9 {
				t.Fatalf("CoW broken: parent=%d child=%d", pv, cv)
			}
		})
	}
	if len(results) != len(paths) {
		t.Fatalf("only %d/%d paths ran", len(results), len(paths))
	}
	for i, r := range results[1:] {
		if r != results[0] {
			t.Errorf("%s charged %+v, want %+v (same as %s)",
				paths[i+1].name, r, results[0], paths[0].name)
		}
	}
	if results[0].odForks != 1 || results[0].clForks != 0 {
		t.Errorf("engine attribution wrong: %+v", results[0])
	}
	if results[0].tablesShared == 0 {
		t.Errorf("on-demand fork shared no tables")
	}
}

// TestForkWorkersEquivalence proves WithWorkers(n) is the same knob as
// the deprecated ForkWithOptions(mode, ForkOptions{Parallelism: n}).
func TestForkWorkersEquivalence(t *testing.T) {
	run := func(fork func(p *Process) (*Process, error)) (parallelForks, parallelTasks uint64) {
		k := New()
		p := k.NewProcess()
		defer p.Exit()
		if _, err := p.Mmap(64*testMiB, testProt, testFlags); err != nil {
			t.Fatal(err)
		}
		before := k.MetricsSnapshot()
		c, err := fork(p)
		if err != nil {
			t.Fatal(err)
		}
		c.Exit()
		c.Wait()
		d := k.MetricsSnapshot().Sub(before)
		return d.Fork.ParallelForks, d.Fork.ParallelTasks
	}
	optForks, optTasks := run(func(p *Process) (*Process, error) {
		return p.Fork(WithMode(core.ForkOnDemand), WithWorkers(4))
	})
	depForks, depTasks := run(func(p *Process) (*Process, error) {
		//lint:ignore SA1019 the deprecated wrapper must stay equivalent
		return p.ForkWithOptions(core.ForkOnDemand, core.ForkOptions{Parallelism: 4})
	})
	if optForks != depForks || optTasks != depTasks {
		t.Errorf("WithWorkers charged forks=%d tasks=%d; ForkWithOptions charged forks=%d tasks=%d",
			optForks, optTasks, depForks, depTasks)
	}
}

// TestMetricsSnapshotEndToEnd drives the quickstart flow and checks
// the counters every layer should have charged.
func TestMetricsSnapshotEndToEnd(t *testing.T) {
	k := New()
	p := k.NewProcess()
	base, err := p.Mmap(16*testMiB, testProt, testFlags)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Fork(WithMode(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadByte(base + 1); err != nil {
		t.Fatal(err)
	}
	snap := k.MetricsSnapshot()
	od := snap.Fork.OnDemand()
	if od.Forks != 1 {
		t.Errorf("ondemand forks = %d, want 1", od.Forks)
	}
	if od.Latency.Count != 1 || od.Latency.SumNS == 0 {
		t.Errorf("ondemand latency histogram empty: %+v", od.Latency)
	}
	if snap.Fork.TablesShared == 0 {
		t.Errorf("tables_shared = 0 after on-demand fork")
	}
	if snap.Fault.WriteFaults == 0 || snap.Fault.WriteLatency.Count == 0 {
		t.Errorf("write fault path uncharged: %+v", snap.Fault)
	}
	if snap.Fault.TableSplits == 0 {
		t.Errorf("child write to shared table did not charge a split")
	}
	if snap.Alloc.ShardHits == 0 {
		t.Errorf("populate allocated %d MiB without a shard hit", 16)
	}
	if snap.Alloc.FramesInUse <= 0 || snap.Alloc.FramesPeak < snap.Alloc.FramesInUse {
		t.Errorf("frame gauges inconsistent: in_use=%d peak=%d",
			snap.Alloc.FramesInUse, snap.Alloc.FramesPeak)
	}
	if snap.TLB.Misses == 0 {
		t.Errorf("no TLB misses after faulting accesses")
	}

	// Exiting processes must retire their TLB stats, not lose them.
	c.Exit()
	p.Exit()
	after := k.MetricsSnapshot()
	if after.TLB.Hits < snap.TLB.Hits || after.TLB.Misses < snap.TLB.Misses {
		t.Errorf("TLB counters went backwards across exit: before=%+v after=%+v",
			snap.TLB, after.TLB)
	}
}

// TestMetricsDisabled checks WithMetricsDisabled keeps every counter
// at zero while the system still works.
func TestMetricsDisabled(t *testing.T) {
	k := New(WithMetricsDisabled())
	p := k.NewProcess()
	defer p.Exit()
	base, err := p.Mmap(4*testMiB, testProt, testFlags)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Fork(WithMode(core.ForkOnDemand))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	c.Exit()
	snap := k.MetricsSnapshot()
	if f := snap.Fork.OnDemand().Forks; f != 0 {
		t.Errorf("disabled registry counted %d forks", f)
	}
	if snap.Fault.WriteFaults != 0 || snap.Alloc.ShardHits != 0 {
		t.Errorf("disabled registry counted faults/allocs: %+v %+v", snap.Fault, snap.Alloc)
	}
	// Gauges describe allocator state, not collection, so they still read.
	if snap.Alloc.FramesInUse <= 0 {
		t.Errorf("frames_in_use gauge = %d with live mapping", snap.Alloc.FramesInUse)
	}
}

// TestProcfsRouter checks every route and the not-exist contract.
func TestProcfsRouter(t *testing.T) {
	prof := profile.New()
	k := New(WithProfiler(prof))
	p := k.NewProcess()
	defer p.Exit()
	if _, err := p.Mmap(2*testMiB, testProt, testFlags); err != nil {
		t.Fatal(err)
	}

	maps, err := k.Procfs("/proc/1/maps")
	if err != nil {
		t.Fatal(err)
	}
	if maps != p.Maps() {
		t.Errorf("maps route mismatch:\n%s\nvs\n%s", maps, p.Maps())
	}
	status, err := k.Procfs("/proc/1/status")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(status, "Pid:\t1\n") {
		t.Errorf("status route missing pid: %q", status)
	}
	metricsText, err := k.Procfs("/proc/odf/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if metricsText != k.MetricsSnapshot().Render() {
		t.Errorf("/proc/odf/metrics differs from MetricsSnapshot().Render()")
	}
	if _, err := k.Procfs("/proc/odf/profile"); err != nil {
		t.Errorf("profile route with attached profiler: %v", err)
	}

	for _, path := range []string{
		"", "/", "/proc", "/proc/", "/proc/odf/nope",
		"/proc/999/maps", "/proc/abc/maps", "/proc/1/nope", "/proc/1/maps/extra",
		"/sys/kernel", "proc/1/maps",
	} {
		if _, err := k.Procfs(path); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("Procfs(%q) = %v, want fs.ErrNotExist", path, err)
		}
	}

	// Without a profiler the profile file does not exist.
	k2 := New()
	if _, err := k2.Procfs("/proc/odf/profile"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("profile route without profiler = %v, want fs.ErrNotExist", err)
	}
}

// TestErrExitedSentinel checks operations on dead processes classify
// with errors.Is.
func TestErrExitedSentinel(t *testing.T) {
	k := New()
	p := k.NewProcess()
	pid := p.PID()
	p.Exit()
	if _, err := p.Fork(WithMode(core.ForkClassic)); !errors.Is(err, ErrExited) {
		t.Errorf("Fork on exited process = %v, want ErrExited", err)
	}
	if err := k.SetForkMode(pid, core.ForkOnDemand); !errors.Is(err, ErrExited) {
		t.Errorf("SetForkMode on exited pid = %v, want ErrExited", err)
	}
}
