package kernel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/trace"
)

// Kernel-level fault injection: one failpoint registry per kernel,
// created disarmed at boot and inherited by every subsystem through
// the allocator (the same attach pattern as the flight recorder).
// Arming a point is test/chaos-harness territory — the registry stays
// a single atomic load on every production hot path until then.

// defaultFailpointSeed makes two kernels with the same armed schedule
// draw identical probability sequences unless a seed is chosen
// explicitly — reproducibility by default.
const defaultFailpointSeed = 1

// Failpoints returns the kernel's fault-injection registry. It is
// never nil for a kernel built with New.
func (k *Kernel) Failpoints() *failpoint.Registry { return k.fail }

// SetFailpoint arms or disarms one named failpoint. Spec is one of
// "off", "once", "every:N", or "prob:P" (0 < P <= 1).
func (k *Kernel) SetFailpoint(name, spec string) error {
	return k.fail.Set(name, spec)
}

// SetFailpointSeed reseeds the registry's deterministic PRNG, fixing
// the probability-trigger schedule for a reproducible run.
func (k *Kernel) SetFailpointSeed(seed uint64) { k.fail.Reseed(seed) }

// CheckInvariants runs the full cross-space accounting audit (share
// counters, frame refcounts, swap-slot refcounts, reclaim rmap/LRU
// bookkeeping) over every live process. Processes must be quiescent.
func (k *Kernel) CheckInvariants() error {
	k.mu.Lock()
	spaces := make([]*core.AddressSpace, 0, len(k.procs))
	for _, p := range k.procs {
		spaces = append(spaces, p.as)
	}
	k.mu.Unlock()
	if err := core.CheckInvariants(spaces...); err != nil {
		return fmt.Errorf("kernel: %w", err)
	}
	// Per-tenant charge counters must agree with the allocator's
	// per-frame tags (the same quiescence contract as above).
	return k.checkTenantAccounting()
}

// failpointObserver forwards every injected fault into the flight
// recorder, so a chaos run's timeline shows exactly where the faults
// landed relative to the forks and evictions they perturbed.
func (k *Kernel) failpointObserver(_ string, index int) {
	k.trc.Instant(trace.KindFailpoint, trace.StageNone, trace.ActorApp, uint64(index), 0)
}
