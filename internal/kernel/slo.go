package kernel

import (
	"fmt"
	"strings"
	"sync"
)

// The kernel-side SLO publication slot: the serving/SLO harness
// (internal/slo) pushes its latest run summary here so it is readable
// through the same procfs namespace as the rest of the system's
// telemetry (/proc/odf/slo), the way the paper reads kernel state. The
// endpoint is unbacked until a snapshot is published, like
// /proc/odf/profile without a profiler.

// SLOStats is the published summary of one SLO harness run: the
// offered versus achieved request rate, the client-observed latency
// percentiles, and the fork-coincident versus quiescent tail split
// that attributes inflation to in-flight snapshot forks.
type SLOStats struct {
	App  string // serving application ("kv", "httpd")
	Mode string // snapshot fork engine ("classic", "on-demand-fork")

	OfferedRPS  float64
	AchievedRPS float64

	P50US  float64
	P99US  float64
	P999US float64
	MaxUS  float64

	ForkCoincidentCount uint64
	ForkCoincidentP99US float64
	QuiescentCount      uint64
	QuiescentP99US      float64

	Snapshots  uint64
	ForkMeanUS float64
}

type sloSlot struct {
	mu  sync.Mutex
	st  SLOStats
	set bool
}

// SetSLO publishes the latest SLO run summary, backing /proc/odf/slo.
func (k *Kernel) SetSLO(st SLOStats) {
	k.slo.mu.Lock()
	k.slo.st, k.slo.set = st, true
	k.slo.mu.Unlock()
}

// SLO returns the published SLO summary and whether one exists.
func (k *Kernel) SLO() (SLOStats, bool) {
	k.slo.mu.Lock()
	defer k.slo.mu.Unlock()
	return k.slo.st, k.slo.set
}

// renderSLO renders the /proc/odf/slo content.
func renderSLO(st SLOStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "app:\t%s\n", st.App)
	fmt.Fprintf(&b, "mode:\t%s\n", st.Mode)
	fmt.Fprintf(&b, "offered_rps:\t%.1f\n", st.OfferedRPS)
	fmt.Fprintf(&b, "achieved_rps:\t%.1f\n", st.AchievedRPS)
	fmt.Fprintf(&b, "p50_us:\t%.1f\n", st.P50US)
	fmt.Fprintf(&b, "p99_us:\t%.1f\n", st.P99US)
	fmt.Fprintf(&b, "p999_us:\t%.1f\n", st.P999US)
	fmt.Fprintf(&b, "max_us:\t%.1f\n", st.MaxUS)
	fmt.Fprintf(&b, "fork_coincident_count:\t%d\n", st.ForkCoincidentCount)
	fmt.Fprintf(&b, "fork_coincident_p99_us:\t%.1f\n", st.ForkCoincidentP99US)
	fmt.Fprintf(&b, "quiescent_count:\t%d\n", st.QuiescentCount)
	fmt.Fprintf(&b, "quiescent_p99_us:\t%.1f\n", st.QuiescentP99US)
	fmt.Fprintf(&b, "snapshots:\t%d\n", st.Snapshots)
	fmt.Fprintf(&b, "fork_mean_us:\t%.1f\n", st.ForkMeanUS)
	return b.String()
}
