package kernel

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func goldenHealthStats() HealthStats {
	return HealthStats{
		Status: "degraded",
		Checks: []CheckState{
			{Name: "fork_p99_breach", Firing: true, Observed: 61_250_000, Threshold: 50_000_000, Fires: 3},
			{Name: "admit_wait_spike", Firing: false, Observed: 4_100_000, Threshold: 100_000_000, Fires: 0},
			{Name: "swap_degraded", Firing: false, Observed: 0, Threshold: 1, Fires: 1},
			{Name: "oom_stall", Firing: false, Observed: 0, Threshold: 1, Fires: 0},
		},
	}
}

// TestProcHealthGolden pins the /proc/odf/health text format on a
// fixed watchdog verdict. A deliberate format change regenerates the
// file with `go test -update`.
func TestProcHealthGolden(t *testing.T) {
	k := New()
	k.SetHealth(goldenHealthStats())
	got, err := k.Procfs("/proc/odf/health")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "proc_health.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("/proc/odf/health differs from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}

	// Published health slots into the listing alphabetically.
	listing, err := k.Procfs("/proc/odf")
	if err != nil {
		t.Fatal(err)
	}
	if want := "checkpoints\nfailpoints\nhealth\nmetrics\ntenants\ntrace\nvmstat\n"; listing != want {
		t.Errorf("listing after publish = %q, want %q", listing, want)
	}

	// Re-publication replaces the verdict.
	st := goldenHealthStats()
	st.Status = "ok"
	st.Checks[0].Firing = false
	k.SetHealth(st)
	got, err = k.Procfs("/proc/odf/health")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "status:\tok\n") || strings.Contains(got, "FIRING") {
		t.Errorf("re-published verdict not served:\n%s", got)
	}
}
