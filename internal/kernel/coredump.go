package kernel

// Core dump save/restore: serialize a process's entire memory image to
// a file in the simulated filesystem and reconstruct an equivalent
// process later — the persistence counterpart of the fork-based
// snapshots (what Redis's RDB file is to its fork snapshot). The dump
// records VMAs and the present pages' contents; restored mappings are
// anonymous (like a real core, file-backed regions are materialized).
//
// Format (little-endian):
//
//	magic "ODFCORE1"
//	u32 vmaCount
//	per VMA: u64 start, u64 size, u8 prot, u8 huge
//	page records until sentinel: u64 vaddr (sentinel ^0), u16 length,
//	    <length bytes> (pages are stored with trailing zeroes trimmed)

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/fs"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

var coreMagic = []byte("ODFCORE1")

const pageSentinel = ^uint64(0)

// SaveCore writes the process's memory image into f.
func (p *Process) SaveCore(f *fs.File) error {
	var buf bytes.Buffer
	buf.Write(coreMagic)
	vmas := p.as.VMAs()
	var hdr [18]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(vmas)))
	buf.Write(hdr[:4])
	for _, v := range vmas {
		binary.LittleEndian.PutUint64(hdr[0:], uint64(v.Range.Start))
		binary.LittleEndian.PutUint64(hdr[8:], v.Range.Size())
		hdr[16] = byte(v.Prot)
		hdr[17] = 0
		if v.Huge() {
			hdr[17] = 1
		}
		buf.Write(hdr[:18])
	}

	err := p.as.VisitPresentPages(func(v addr.V, data []byte) error {
		// Trim trailing zeroes; all-zero pages are omitted entirely (the
		// restore side demand-zeroes them).
		n := len(data)
		for n > 0 && data[n-1] == 0 {
			n--
		}
		if n == 0 {
			return nil
		}
		var rec [10]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(v))
		binary.LittleEndian.PutUint16(rec[8:], uint16(n))
		buf.Write(rec[:])
		buf.Write(data[:n])
		return nil
	})
	if err != nil {
		return fmt.Errorf("kernel: save core: %w", err)
	}
	var end [10]byte
	binary.LittleEndian.PutUint64(end[0:], pageSentinel)
	buf.Write(end[:])

	f.Truncate(0)
	if _, err := f.WriteAt(buf.Bytes(), 0); err != nil {
		return fmt.Errorf("kernel: save core: %w", err)
	}
	return nil
}

// LoadCore reconstructs a process from a core dump.
func (k *Kernel) LoadCore(f *fs.File) (*Process, error) {
	raw := make([]byte, f.Size())
	if _, err := f.ReadAt(raw, 0); err != nil && len(raw) > 0 {
		return nil, fmt.Errorf("kernel: load core: %w", err)
	}
	if len(raw) < len(coreMagic)+4 || !bytes.Equal(raw[:len(coreMagic)], coreMagic) {
		return nil, fmt.Errorf("kernel: load core: bad magic")
	}
	off := len(coreMagic)
	count := int(binary.LittleEndian.Uint32(raw[off:]))
	off += 4

	p := k.NewProcess()
	fail := func(err error) (*Process, error) {
		p.Exit()
		return nil, err
	}
	for i := 0; i < count; i++ {
		if off+18 > len(raw) {
			return fail(fmt.Errorf("kernel: load core: truncated VMA table"))
		}
		start := addr.V(binary.LittleEndian.Uint64(raw[off:]))
		size := binary.LittleEndian.Uint64(raw[off+8:])
		prot := vm.Prot(raw[off+16])
		flags := vm.MapPrivate
		if raw[off+17] == 1 {
			flags |= vm.MapHuge
		}
		off += 18
		if _, err := p.as.Mmap(start, size, prot, flags, nil, 0); err != nil {
			return fail(fmt.Errorf("kernel: load core: map %v: %w", start, err))
		}
	}
	for {
		if off+10 > len(raw) {
			return fail(fmt.Errorf("kernel: load core: truncated page records"))
		}
		v := binary.LittleEndian.Uint64(raw[off:])
		if v == pageSentinel {
			break
		}
		n := int(binary.LittleEndian.Uint16(raw[off+8:]))
		off += 10
		if off+n > len(raw) {
			return fail(fmt.Errorf("kernel: load core: truncated page at %#x", v))
		}
		// Restored pages may be in read-only VMAs; write through the
		// address space regardless of VMA protection by lifting it
		// temporarily is overkill — instead only writable pages carry
		// content here, and read-only restores go through a relaxed path.
		if err := p.restorePage(addr.V(v), raw[off:off+n]); err != nil {
			return fail(fmt.Errorf("kernel: load core: page %#x: %w", v, err))
		}
		off += n
	}
	return p, nil
}

// restorePage writes page content during LoadCore, temporarily lifting
// a read-only VMA's protection the way a debugger's core loader pokes
// memory.
func (p *Process) restorePage(v addr.V, data []byte) error {
	vma := p.as.FindVMA(v)
	if vma == nil {
		return fmt.Errorf("no mapping")
	}
	if vma.Prot.CanWrite() {
		return p.WriteAt(data, v)
	}
	r := vma.Range
	if err := p.Mprotect(r.Start, r.Size(), vma.Prot|vm.ProtWrite); err != nil {
		return err
	}
	if err := p.WriteAt(data, v); err != nil {
		return err
	}
	return p.Mprotect(r.Start, r.Size(), vma.Prot)
}
