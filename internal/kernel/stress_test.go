package kernel

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

// TestStressConcurrentLineages hammers one kernel with several
// concurrent process lineages doing forks (all engines, including the
// huge-page extension), writes, reads, partial unmaps, and exits. It is
// primarily a race-detector target; it also checks for frame leaks and
// cross-lineage corruption.
func TestStressConcurrentLineages(t *testing.T) {
	k := New()
	const lineages = 4
	var wg sync.WaitGroup
	for l := 0; l < lineages; l++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			root := k.NewProcess()
			size := uint64(4 * addr.PTECoverage)
			base, err := root.Mmap(size, vm.ProtRead|vm.ProtWrite, vm.MapPrivate|vm.MapPopulate)
			if err != nil {
				t.Error(err)
				return
			}
			stamp := byte(seed)
			if err := root.StoreByte(base, stamp); err != nil {
				t.Error(err)
				return
			}
			live := []*Process{root}
			for op := 0; op < 60; op++ {
				p := live[rng.Intn(len(live))]
				switch rng.Intn(6) {
				case 0, 1: // fork
					if len(live) < 6 {
						opts := core.ForkOptions{ShareHugePMD: rng.Intn(2) == 0}
						mode := core.ForkOnDemand
						if rng.Intn(3) == 0 {
							mode = core.ForkClassic
						}
						c, err := p.Fork(WithMode(mode), WithForkOptions(opts))
						if err != nil {
							t.Error(err)
							return
						}
						live = append(live, c)
					}
				case 2: // exit a non-root process
					if len(live) > 1 && p != root {
						p.Exit()
						for i, e := range live {
							if e == p {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
					}
				case 3: // partial unmap
					off := addr.V(rng.Intn(3)+1) * addr.PTECoverage / 2
					_ = p.Munmap(base+off, addr.PageSize*uint64(rng.Intn(4)+1))
				default: // writes + reads
					for i := 0; i < 8; i++ {
						v := base + addr.V(rng.Int63n(int64(size)))
						if p.Space().FindVMA(v) == nil {
							continue
						}
						if rng.Intn(2) == 0 {
							if err := p.StoreByte(v, byte(rng.Intn(256))); err != nil {
								t.Errorf("write: %v", err)
								return
							}
						} else if _, err := p.LoadByte(v); err != nil {
							t.Errorf("read: %v", err)
							return
						}
					}
				}
			}
			// The root's stamp at base survives unless the root itself
			// overwrote it; verify readability at minimum.
			if _, err := root.LoadByte(base); err != nil {
				t.Errorf("root read failed: %v", err)
			}
			for _, p := range live {
				p.Exit()
			}
		}(int64(l + 1))
	}
	wg.Wait()
	if n := k.Allocator().Allocated(); n != 0 {
		t.Errorf("leak after stress: %d frames", n)
	}
	if k.NumProcesses() != 0 {
		t.Error("processes leaked")
	}
}
