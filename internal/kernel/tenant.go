package kernel

import (
	"fmt"
	"time"

	"repro/internal/tenant"
	"repro/internal/trace"
)

// Multi-tenant control plane wiring: the kernel owns one
// tenant.Manager, processes created through NewTenantProcess charge
// every frame they allocate to their tenant's account, and forkInternal
// consults the admission controller before entering the fork engine.

// Tenants returns the kernel's tenant registry. It is never nil for a
// kernel built with New.
func (k *Kernel) Tenants() *tenant.Manager { return k.tenants }

// NewTenantProcess creates a fresh process owned by tenant t: every
// frame its lineage allocates — data pages, COW copies, page tables —
// is charged to t's account, its forks pass admission control, and
// scoped failpoint injection can target its lineage by tenant id. A nil
// t behaves exactly like NewProcess.
func (k *Kernel) NewTenantProcess(t *tenant.Tenant) *Process {
	p := k.NewProcess()
	if t != nil {
		p.tenant = t
		p.as.SetTenant(t.TenantID(), t)
		p.as.SetTenantSlot(t.Slot())
	}
	return p
}

// Tenant returns the tenant owning the process (nil for untenanted
// processes).
func (p *Process) Tenant() *tenant.Tenant { return p.tenant }

// memoryPressure is the machine-wide predicate behind fork admission:
// true when free frames have fallen into the last slice of the
// configured budget, the band where admitting more forks would turn
// quota overshoot into global ErrNoMem. Unlimited allocators are never
// under pressure.
func (k *Kernel) memoryPressure() bool {
	limit := k.alloc.Limit()
	if limit <= 0 {
		return false
	}
	head := limit / 64
	if head < 8 {
		head = 8
	}
	return limit-k.alloc.Allocated() < head
}

// admitFork runs the tenant admission gate for p, tracing queued waits.
// Returns nil immediately for untenanted processes.
func (p *Process) admitFork() error {
	t := p.tenant
	if t == nil {
		return nil
	}
	k := p.k
	var start time.Time
	if k.trc.Enabled() {
		start = time.Now()
	}
	wait, err := k.tenants.AdmitFork(t)
	if wait > 0 && k.trc.Enabled() {
		rejected := uint64(0)
		if err != nil {
			rejected = 1
		}
		k.trc.SpanReq(trace.KindAdmitWait, trace.StageNone, trace.ActorApp, start, t.TenantID(), rejected, p.as.Request())
	}
	return err
}

// checkTenantAccounting cross-checks every live tenant's usage counter
// against ground truth: a walk of the allocator's frame metadata
// counting the frames actually charged to each account. The caller must
// be quiescent (no concurrent allocation, free, or fork), the same
// contract as CheckInvariants.
func (k *Kernel) checkTenantAccounting() error {
	tenants := k.tenants.List()
	if len(tenants) == 0 {
		return nil
	}
	counts := k.alloc.ChargedCounts()
	for _, t := range tenants {
		want := counts[t]
		if got := t.Usage(); got != want {
			return fmt.Errorf(
				"kernel: tenant %q usage counter %d, allocator holds %d frames charged to it",
				t.Name(), got, want)
		}
	}
	return nil
}
