package slo

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/apps/kvstore"
	"repro/internal/apps/serve"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/mem/addr"

	"repro/internal/apps/httpd"
)

// HarnessConfig parameterizes a full SLO sweep: for each fork mode,
// the harness boots the app behind a real TCP listener, calibrates
// closed-loop capacity with snapshots quiesced, then for each load
// ratio offers that fraction of capacity at isochronous intervals
// while periodic snapshots fork the serving process — the paper's
// Redis experiment, instrumented for fork-coincidence.
type HarnessConfig struct {
	App        string          // "kv" (default) or "httpd"
	Modes      []core.ForkMode // default classic then on-demand
	Conns      int             // default 4
	LoadRatios []float64       // default {0.6}
	Requests   int             // measured requests per run, default 8000
	CalibrateN int             // closed-loop calibration requests, default 2000
	Warmup     int             // per-conn priming requests, default 50
	// SnapshotEvery is the harness-driven fork cadence during measured
	// runs (default 40ms).
	SnapshotEvery time.Duration
	// Trials is how many independent measured phases run per (mode,
	// ratio) cell; the reported run is the trial with the LOWEST
	// fork-coincident p99 (default 3). Shared hosts stall the whole
	// process for tens of ms at random, and a stall that spans a fork
	// window gets tagged fork-coincident — contaminating exactly the
	// figure under study. External stalls are strictly additive and
	// mode-independent, so the minimum across trials is the estimate
	// closest to the true fork-attributable tail, and both modes get
	// identical treatment.
	Trials int
	// MaxRate caps the offered rate (requests/second, default 800).
	// The calibrated capacity of a localhost socket loop is far above
	// what client-side sleep granularity can pace accurately, and both
	// fork modes must see the SAME offered rate for the comparison to
	// mean anything — on any reasonable host both modes calibrate above
	// this cap and the sweep offers exactly MaxRate×ratio.
	MaxRate float64

	// kv sizing. A bigger arena widens the classic-vs-on-demand fork
	// pause gap (classic copies every page table under MapPopulate),
	// which is the experiment's contrast.
	ArenaMiB int // default 256
	Keys     int // default 5000
	ValueLen int // default 64
}

func (c *HarnessConfig) fill() {
	if c.App == "" {
		c.App = "kv"
	}
	if len(c.Modes) == 0 {
		c.Modes = []core.ForkMode{core.ForkClassic, core.ForkOnDemand}
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if len(c.LoadRatios) == 0 {
		c.LoadRatios = []float64{0.6}
	}
	if c.Requests <= 0 {
		c.Requests = 8000
	}
	if c.CalibrateN <= 0 {
		c.CalibrateN = 2000
	}
	if c.Warmup <= 0 {
		c.Warmup = 50
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 40 * time.Millisecond
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 800
	}
	if c.ArenaMiB <= 0 {
		c.ArenaMiB = 256
	}
	if c.Keys <= 0 {
		// Modest key count: the snapshot child serializes the whole
		// table, and on a single CPU that scan competes with serving —
		// a huge table would bury the fork-pause signal under
		// serialization interference in BOTH modes.
		c.Keys = 2000
	}
	if c.ValueLen <= 0 {
		c.ValueLen = 64
	}
}

// RunHarness executes the sweep and returns the odf-slo/v1 result.
func RunHarness(cfg HarnessConfig) (*Result, error) {
	cfg.fill()
	out := &Result{
		Schema:     SchemaV1,
		Date:       time.Now().Format("2006-01-02"),
		App:        cfg.App,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Conns:      cfg.Conns,
	}
	for _, mode := range cfg.Modes {
		runs, protocol, err := runMode(cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("slo: %s: %w", mode, err)
		}
		out.Protocol = protocol
		out.Runs = append(out.Runs, runs...)
	}
	return out, nil
}

func runMode(cfg HarnessConfig, mode core.ForkMode) ([]RunResult, string, error) {
	k := kernel.New()
	app, codec, newRequest, err := buildApp(cfg, k, mode)
	if err != nil {
		return nil, "", err
	}
	defer app.Close()
	if err := app.Warm(); err != nil {
		return nil, "", err
	}
	srv, err := serve.Listen(app, codec, "")
	if err != nil {
		return nil, "", err
	}
	defer srv.Close()

	// Closed-loop calibration, snapshots quiesced: raw socket capacity.
	cal, err := Run(Config{
		Addr: srv.Addr(), Codec: codec, NewRequest: newRequest,
		Conns: cfg.Conns, Requests: cfg.CalibrateN, Warmup: cfg.Warmup,
	})
	if err != nil {
		return nil, "", fmt.Errorf("calibration: %w", err)
	}

	var runs []RunResult
	for _, ratio := range cfg.LoadRatios {
		rate := cal.Achieved * ratio
		if cap := cfg.MaxRate * ratio; rate > cap {
			rate = cap
		}

		var trials []RunResult
		for t := 0; t < cfg.Trials; t++ {
			run, err := runTrial(cfg, k, app, srv, codec, newRequest, mode, ratio, rate)
			if err != nil {
				return nil, "", err
			}
			fmt.Fprintf(os.Stderr, "# %s ratio %.2f trial %d/%d: coinc p99 %.0fus(%d) quiesc p99 %.0fus max %.0fus\n",
				mode, ratio, t+1, cfg.Trials, run.ForkCoincident.P99US,
				run.ForkCoincident.Count, run.Quiescent.P99US, run.Latency.MaxUS)
			trials = append(trials, run)
		}
		run := bestTrial(trials)
		run.Trials = cfg.Trials
		runs = append(runs, run)
		k.SetSLO(kernel.SLOStats{
			App:                 cfg.App,
			Mode:                run.Mode,
			OfferedRPS:          run.OfferedRPS,
			AchievedRPS:         run.AchievedRPS,
			P50US:               run.Latency.P50US,
			P99US:               run.Latency.P99US,
			P999US:              run.Latency.P999US,
			MaxUS:               run.Latency.MaxUS,
			ForkCoincidentCount: run.ForkCoincident.Count,
			ForkCoincidentP99US: run.ForkCoincident.P99US,
			QuiescentCount:      run.Quiescent.Count,
			QuiescentP99US:      run.Quiescent.P99US,
			Snapshots:           run.Snapshots,
			ForkMeanUS:          run.ForkMeanUS,
		})
	}
	return runs, codec.Name(), nil
}

// runTrial executes one measured phase: the snapshot driver forks the
// serving process on cadence while the generator offers paced load.
func runTrial(cfg HarnessConfig, k *kernel.Kernel, app serve.App, srv *serve.Server,
	codec serve.Codec, newRequest func(int) func(int) []byte,
	mode core.ForkMode, ratio, rate float64) (RunResult, error) {
	snap := app.Snapshotter()
	base := snap.Totals()

	// The 1ms band after each fork catches the requests that pay the
	// deferred cost: on-demand COW table copies, or the drain of a
	// queue that built up behind a classic fork pause.
	forks := &ForkLog{Band: time.Millisecond}
	stop := make(chan struct{})
	done := make(chan error, 1)
	// The driver mirrors Redis BGSAVE: at most one snapshot child at
	// a time. Each tick brackets the fork in the ForkLog (the pause
	// the clients feel), then waits for the child serializer to
	// drain before rearming, so a slow child degrades cadence
	// instead of stacking children.
	baseProcs := k.NumProcesses()
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			case <-time.After(cfg.SnapshotEvery):
				forks.Begin()
				err := app.Snapshot()
				forks.End()
				if err != nil {
					done <- err
					return
				}
				for k.NumProcesses() > baseProcs {
					select {
					case <-stop:
						done <- nil
						return
					case <-time.After(100 * time.Microsecond):
					}
				}
			}
		}
	}()
	// GC pauses on a single CPU show up as tens-of-ms excursions that
	// can land on a fork-coincident sample and swamp its p99; the
	// measured phase allocates a few MB at most, so collect up front
	// and hold GC off for the run.
	runtime.GC()
	gcPct := debug.SetGCPercent(-1)
	sum, genErr := Run(Config{
		Addr: srv.Addr(), Codec: codec, NewRequest: newRequest,
		Conns: cfg.Conns, Rate: rate, Requests: cfg.Requests,
		Warmup: cfg.Warmup, Forks: forks, Epoch: snap.Epoch,
	})
	debug.SetGCPercent(gcPct)
	close(stop)
	if derr := <-done; genErr == nil && derr != nil {
		genErr = fmt.Errorf("snapshot driver: %w", derr)
	}
	if genErr != nil {
		return RunResult{}, genErr
	}

	tot := snap.Totals()
	return RunResult{
		Mode:            mode.String(),
		LoadRatio:       ratio,
		OfferedRPS:      sum.Offered,
		AchievedRPS:     sum.Achieved,
		Requests:        sum.All.Count(),
		DurationMS:      float64(sum.Elapsed) / float64(time.Millisecond),
		SnapshotEveryMS: float64(cfg.SnapshotEvery) / float64(time.Millisecond),
		Snapshots:       tot.Snapshots - base.Snapshots,
		ForkMeanUS:      deltaForkMeanUS(base, tot),
		Latency:         Summarize(&sum.All),
		ForkCoincident:  Summarize(&sum.Fork),
		Quiescent:       Summarize(&sum.Quiet),
		WorstUS:         sum.Worst,
	}, nil
}

// bestTrial picks the trial with the lowest fork-coincident p99 —
// see HarnessConfig.Trials for why the minimum is the right estimator
// on a shared host.
func bestTrial(trials []RunResult) RunResult {
	sorted := append([]RunResult(nil), trials...)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].ForkCoincident.P99US < sorted[j].ForkCoincident.P99US
	})
	return sorted[0]
}

func buildApp(cfg HarnessConfig, k *kernel.Kernel, mode core.ForkMode) (serve.App, serve.Codec, func(int) func(int) []byte, error) {
	switch cfg.App {
	case "kv":
		app, err := serve.NewKV(k, serve.KVConfig{
			Config: kvstore.Config{
				ArenaBytes: uint64(cfg.ArenaMiB) << 20,
				TableCap:   uint64(tableCapFor(cfg.Keys)),
				Mode:       mode,
			},
			Keys:     cfg.Keys,
			ValueLen: cfg.ValueLen,
		})
		if err != nil {
			return nil, nil, nil, err
		}
		// 80/20 GET/SET over the warmed key space: the writes are what
		// make a just-forked address space COW-fault on the serving path.
		newRequest := func(conn int) func(int) []byte {
			rng := rand.New(rand.NewSource(int64(conn)*7919 + 1))
			val := make([]byte, cfg.ValueLen)
			return func(seq int) []byte {
				key := kvstore.Key(rng.Intn(cfg.Keys))
				if rng.Intn(10) < 2 {
					return serve.EncodeSet(key, val)
				}
				return serve.EncodeGet(key)
			}
		}
		return app, serve.BinaryCodec{}, newRequest, nil
	case "httpd":
		app, err := serve.NewHTTP(k, serve.HTTPConfig{Config: httpd.Config{
			ConfigBytes: 256 * addr.PageSize,
			Workers:     4,
			Mode:        mode,
		}})
		if err != nil {
			return nil, nil, nil, err
		}
		newRequest := func(conn int) func(int) []byte {
			rng := rand.New(rand.NewSource(int64(conn)*7919 + 1))
			return func(seq int) []byte {
				return []byte(fmt.Sprintf("/doc-%08d", rng.Intn(1<<20)))
			}
		}
		return app, serve.HTTPCodec{}, newRequest, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown app %q", cfg.App)
	}
}

// deltaForkMeanUS recovers the measured window's mean fork pause from
// two lifetime totals.
func deltaForkMeanUS(base, tot kernel.SnapshotterTotals) float64 {
	n := tot.Snapshots - base.Snapshots
	if n == 0 {
		return 0
	}
	sum := float64(tot.ForkMean)*float64(tot.Snapshots) -
		float64(base.ForkMean)*float64(base.Snapshots)
	return sum / float64(n) / 1e3
}

// tableCapFor sizes the hash table like the experiment drivers do:
// the next power of two with headroom over the key count.
func tableCapFor(keys int) int {
	cap := 1
	for cap < keys*2 {
		cap <<= 1
	}
	return cap
}
