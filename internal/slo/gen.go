package slo

import (
	"fmt"
	"net"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/apps/serve"
)

// ForkLog records snapshot-fork windows so the generator can tag
// samples whose scheduled-send→receive window overlapped a fork. The
// harness brackets every fork it drives with Begin/End; the generator
// queries Overlaps per sample. On a single-CPU host this client-side
// window test is the reliable way to attribute fork pauses: a fork
// that delays a request usually runs to completion while the client
// goroutine is parked, so sampling "is a fork in flight right now"
// at send or receive almost never fires.
type ForkLog struct {
	// Band extends every fork window past its End by this much. The
	// fork syscall returning does not end fork-attributable cost: for
	// on-demand fork the page-table copies are deferred to the writes
	// that follow, and for classic fork requests queued behind the
	// pause are still draining — both land in the just-after window.
	Band time.Duration

	mu    sync.Mutex
	spans []forkSpan
	cur   time.Time // zero when no fork is in flight
}

type forkSpan struct{ start, end time.Time }

// Begin marks a fork starting now.
func (l *ForkLog) Begin() {
	l.mu.Lock()
	l.cur = time.Now()
	l.mu.Unlock()
}

// End closes the window opened by the last Begin.
func (l *ForkLog) End() {
	l.mu.Lock()
	l.spans = append(l.spans, forkSpan{l.cur, time.Now()})
	l.cur = time.Time{}
	l.mu.Unlock()
}

// Len returns the number of completed fork windows.
func (l *ForkLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// Overlaps reports whether [from, to] intersects any fork window,
// including a fork still in flight.
func (l *ForkLog) Overlaps(from, to time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.cur.IsZero() && !l.cur.After(to) {
		return true
	}
	// Recent spans are the only candidates: scan from the tail.
	for i := len(l.spans) - 1; i >= 0; i-- {
		s := l.spans[i]
		if s.end.Add(l.Band).Before(from) {
			return false
		}
		if !s.start.After(to) {
			return true
		}
	}
	return false
}

// WorstSample is one of the exact worst-N requests of a run.
type WorstSample struct {
	LatencyUS      float64 `json:"latency_us"`
	ForkCoincident bool    `json:"fork_coincident"`
	Conn           int     `json:"conn"`
	Seq            int     `json:"seq"`
}

// WorstN is how many exact worst samples a run keeps.
const WorstN = 10

// Config parameterizes one generator run against a serve.Server.
type Config struct {
	Addr  string
	Codec serve.Codec
	// NewRequest returns conn c's request generator; seq is the
	// request index on that connection.
	NewRequest func(conn int) func(seq int) []byte
	Conns      int
	// Rate is the aggregate offered rate in requests/second across all
	// connections, issued at fixed isochronous intervals. <= 0 sends
	// each request as soon as the previous response arrives (closed
	// loop) — the calibration regime.
	Rate float64
	// Requests is the total measured request count (split across conns).
	Requests int
	// Warmup is the per-connection unmeasured priming request count.
	Warmup int
	// Forks enables fork-window tagging when non-nil.
	Forks *ForkLog
	// Epoch, when non-nil, is the serving process's snapshot epoch
	// probe (odd while a fork is in flight); sampled before send and
	// after receive as a second tagging signal.
	Epoch func() uint64
}

// Summary is one generator run's outcome.
type Summary struct {
	Offered  float64 // requests/second offered (0 when closed-loop)
	Achieved float64 // requests/second completed
	Elapsed  time.Duration
	All      Hist // every sample
	Fork     Hist // samples whose window overlapped a fork
	Quiet    Hist // the rest
	Worst    []WorstSample
}

// Run drives the configured load and returns the merged summary.
func Run(cfg Config) (*Summary, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	perConn := cfg.Requests / cfg.Conns
	if perConn == 0 {
		return nil, fmt.Errorf("slo: %d requests across %d conns leaves empty connections", cfg.Requests, cfg.Conns)
	}
	var interarrival time.Duration
	if cfg.Rate > 0 {
		interarrival = time.Duration(float64(time.Second) / cfg.Rate * float64(cfg.Conns))
	}

	type connResult struct {
		all, fork, quiet Hist
		worst            []WorstSample
		err              error
	}
	results := make([]connResult, cfg.Conns)
	conns := make([]net.Conn, cfg.Conns)
	for c := range conns {
		conn, err := net.Dial("tcp", cfg.Addr)
		if err != nil {
			for _, pc := range conns[:c] {
				pc.Close()
			}
			return nil, fmt.Errorf("slo: dial %s: %w", cfg.Addr, err)
		}
		conns[c] = conn
		defer conn.Close()
	}

	var wg sync.WaitGroup
	start := time.Now().Add(time.Millisecond) // common epoch for all schedules
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := &results[c]
			br, bw := serve.NewReader(conns[c]), serve.NewWriter(conns[c])
			next := cfg.NewRequest(c)
			roundTrip := func(payload []byte) (serve.ResponseFlags, error) {
				if err := cfg.Codec.WriteRequest(bw, payload); err != nil {
					return 0, err
				}
				if err := bw.Flush(); err != nil {
					return 0, err
				}
				_, flags, err := cfg.Codec.ReadResponse(br)
				return flags, err
			}
			for i := 0; i < cfg.Warmup; i++ {
				if _, err := roundTrip(next(-1 - i)); err != nil {
					r.err = fmt.Errorf("conn %d warmup: %w", c, err)
					return
				}
			}
			// Conn c's schedule is offset so the aggregate arrival
			// process is evenly interleaved.
			offset := time.Duration(0)
			if interarrival > 0 {
				offset = interarrival * time.Duration(c) / time.Duration(cfg.Conns)
			}
			for i := 0; i < perConn; i++ {
				sched := time.Now()
				if interarrival > 0 {
					sched = start.Add(offset + time.Duration(i)*interarrival)
					waitUntil(sched)
				}
				var e1 uint64
				if cfg.Epoch != nil {
					e1 = cfg.Epoch()
				}
				flags, err := roundTrip(next(i))
				if err != nil {
					r.err = fmt.Errorf("conn %d request %d: %w", c, i, err)
					return
				}
				recv := time.Now()
				tagged := flags&serve.FlagForkCoincident != 0
				if cfg.Epoch != nil {
					if e2 := cfg.Epoch(); e1&1 == 1 || e1 != e2 {
						tagged = true
					}
				}
				if cfg.Forks != nil && cfg.Forks.Overlaps(sched, recv) {
					tagged = true
				}
				lat := recv.Sub(sched)
				r.all.RecordDuration(lat)
				if tagged {
					r.fork.RecordDuration(lat)
				} else {
					r.quiet.RecordDuration(lat)
				}
				r.worst = insertWorst(r.worst, WorstSample{
					LatencyUS:      float64(lat) / float64(time.Microsecond),
					ForkCoincident: tagged,
					Conn:           c,
					Seq:            i,
				})
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &Summary{Offered: cfg.Rate, Elapsed: elapsed}
	for c := range results {
		r := &results[c]
		if r.err != nil {
			return nil, r.err
		}
		out.All.Merge(&r.all)
		out.Fork.Merge(&r.fork)
		out.Quiet.Merge(&r.quiet)
		for _, w := range r.worst {
			out.Worst = insertWorst(out.Worst, w)
		}
	}
	if elapsed > 0 {
		out.Achieved = float64(out.All.Count()) / elapsed.Seconds()
	}
	return out, nil
}

// waitUntil holds the isochronous schedule: coarse timer sleep until
// close to the deadline, then a cooperative yield spin. Timer wakeups
// on a loaded single-CPU host are ~1ms-granular, which would put a
// milliseconds-wide client-side floor under every latency sample;
// the yield spin burns only otherwise-idle cycles (Gosched lets the
// server run) and brings send error down to scheduler-quantum scale.
func waitUntil(sched time.Time) {
	const spin = time.Millisecond
	if d := time.Until(sched); d > spin {
		time.Sleep(d - spin)
	}
	for !time.Now().After(sched) {
		runtime.Gosched()
	}
}

// insertWorst keeps ws as the WorstN largest samples, sorted
// descending by latency.
func insertWorst(ws []WorstSample, w WorstSample) []WorstSample {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].LatencyUS < w.LatencyUS })
	if i >= WorstN {
		return ws
	}
	ws = append(ws, WorstSample{})
	copy(ws[i+1:], ws[i:])
	ws[i] = w
	if len(ws) > WorstN {
		ws = ws[:WorstN]
	}
	return ws
}
