package slo

import (
	"encoding/json"
	"fmt"
	"os"
)

// SchemaV1 identifies the SLO result schema, the odf-bench/v1
// companion. Like the bench schema, raw latencies are not comparable
// across machines; the classic-vs-on-demand contrast within one file
// is the portable signal.
const SchemaV1 = "odf-slo/v1"

// Result is one harness invocation: a sweep of (fork mode, offered
// rate) runs against the same app over real TCP sockets.
type Result struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"` // YYYY-MM-DD of the run
	App        string `json:"app"`  // "kv" | "httpd"
	Protocol   string `json:"protocol"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Conns      int    `json:"conns"`

	Runs []RunResult `json:"runs"`
}

// RunResult is one steady-load run at one offered rate with periodic
// snapshots firing.
type RunResult struct {
	Mode      string  `json:"mode"` // core.ForkMode.String()
	LoadRatio float64 `json:"load_ratio"`
	// Trials is how many measured phases ran for this cell; the
	// recorded figures come from the trial with the lowest
	// fork-coincident p99 (external host stalls are strictly
	// additive, so the minimum is nearest the fork-attributable tail).
	Trials      int     `json:"trials,omitempty"`
	OfferedRPS  float64 `json:"offered_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	Requests    uint64  `json:"requests"`
	DurationMS  float64 `json:"duration_ms"`

	SnapshotEveryMS float64 `json:"snapshot_every_ms"`
	Snapshots       uint64  `json:"snapshots"`
	ForkMeanUS      float64 `json:"fork_mean_us"`

	// Latency is the full sample population; ForkCoincident holds the
	// samples whose scheduled-send→receive window overlapped a snapshot
	// fork, Quiescent the rest.
	Latency        LatencySummary `json:"latency"`
	ForkCoincident LatencySummary `json:"fork_coincident"`
	Quiescent      LatencySummary `json:"quiescent"`

	// WorstUS is the exact worst-WorstN samples, latency-descending.
	WorstUS []WorstSample `json:"worst_us"`
}

// LatencySummary flattens one histogram for the JSON schema. All
// latencies are microseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P90US  float64 `json:"p90_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

// Summarize flattens h.
func Summarize(h *Hist) LatencySummary {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	return LatencySummary{
		Count:  h.Count(),
		MeanUS: h.Mean() / 1e3,
		P50US:  us(h.Percentile(50)),
		P90US:  us(h.Percentile(90)),
		P99US:  us(h.Percentile(99)),
		P999US: us(h.Percentile(99.9)),
		MaxUS:  us(h.Max()),
	}
}

// Save writes r as indented JSON to path.
func (r *Result) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a Result from path and validates its schema tag.
func Load(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("slo: parse %s: %w", path, err)
	}
	if r.Schema != SchemaV1 {
		return nil, fmt.Errorf("slo: %s has schema %q, want %q", path, r.Schema, SchemaV1)
	}
	return &r, nil
}
