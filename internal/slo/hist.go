// Package slo is the tail-latency harness: an irtt-style isochronous
// load generator that drives the serve layer's TCP servers, records
// per-request latency in HDR-style histograms with exact worst-N
// tracking, and tags every sample with whether a snapshot fork was in
// flight during its scheduled-send→receive window — the instrument
// that measures the paper's "snapshot while serving" claim end to end.
package slo

import (
	"math/bits"
	"time"
)

// The histogram is log₂-bucketed with linear sub-buckets, the
// hdrhistogram layout: values up to 2^subBits land in an exact bucket,
// larger values keep subBits significant bits, bounding relative error
// at 2^-subBits (≈3.1%). Percentiles are resolved against the upper
// edge of the matching sub-bucket and clamped to the exact observed
// min/max so reported tails never exceed reality.
const (
	subBits  = 5
	subCount = 1 << subBits         // sub-buckets per power of two
	nBuckets = 64 - subBits         // log₂ range
	histLen  = nBuckets * subCount  // total slots
)

// Hist is a fixed-size latency histogram over int64 nanoseconds.
// The zero value is ready to use. Not goroutine-safe.
type Hist struct {
	counts [histLen]uint64
	n      uint64
	sum    int64
	min    int64
	max    int64
}

func histIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	shift := bits.Len64(u) - subBits - 1
	return (shift+1)<<subBits + int((u>>shift)&(subCount-1))
}

// histUpper is the inclusive upper edge of slot idx.
func histUpper(idx int) int64 {
	bucket := idx >> subBits
	sub := int64(idx & (subCount - 1))
	if bucket == 0 {
		return sub
	}
	return (subCount+sub+1)<<(bucket-1) - 1
}

// Record adds one sample. Negative values clamp to zero.
func (h *Hist) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[histIndex(ns)]++
	h.sum += ns
	if h.n == 0 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.n++
}

// RecordDuration adds one sample from a duration.
func (h *Hist) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.n }

// Max returns the exact maximum sample in nanoseconds.
func (h *Hist) Max() int64 { return h.max }

// Mean returns the exact mean in nanoseconds.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Percentile returns the p-th percentile (0 < p <= 100) in
// nanoseconds: the upper edge of the sub-bucket holding the rank,
// clamped to the exact observed extrema.
func (h *Hist) Percentile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := histUpper(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Merge folds o into h.
func (h *Hist) Merge(o *Hist) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}
