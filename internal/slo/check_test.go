package slo

import (
	"strings"
	"testing"
	"time"
)

func validResult() *Result {
	sum := LatencySummary{Count: 80, MeanUS: 30, P50US: 25, P90US: 40, P99US: 60, P999US: 80, MaxUS: 100}
	quiet := LatencySummary{Count: 20, MeanUS: 20, P50US: 18, P90US: 25, P99US: 30, P999US: 35, MaxUS: 40}
	return &Result{
		Schema: SchemaV1,
		Date:   "2026-08-08",
		App:    "kv",
		Conns:  4,
		Runs: []RunResult{{
			Mode:        "on-demand-fork",
			OfferedRPS:  1000,
			AchievedRPS: 990,
			Requests:    100,
			Snapshots:   5,
			Latency: LatencySummary{Count: 100, MeanUS: 28, P50US: 24,
				P90US: 38, P99US: 58, P999US: 78, MaxUS: 100},
			ForkCoincident: sum,
			Quiescent:      quiet,
			WorstUS: []WorstSample{
				{LatencyUS: 100, ForkCoincident: true},
				{LatencyUS: 90},
			},
		}},
	}
}

func TestCheckValid(t *testing.T) {
	if err := Check(validResult()); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Result)
		want   string
	}{
		{"schema", func(r *Result) { r.Schema = "odf-slo/v0" }, "schema"},
		{"no runs", func(r *Result) { r.Runs = nil }, "no runs"},
		{"non-monotone", func(r *Result) { r.Runs[0].Latency.P99US = 5 }, "p99"},
		{"count split", func(r *Result) { r.Runs[0].Quiescent.Count = 3 }, "quiescent"},
		{"requests mismatch", func(r *Result) { r.Runs[0].Requests = 7 }, "requests"},
		{"no snapshots", func(r *Result) { r.Runs[0].Snapshots = 0 }, "snapshots"},
		{"worst order", func(r *Result) {
			r.Runs[0].WorstUS[0], r.Runs[0].WorstUS[1] = r.Runs[0].WorstUS[1], r.Runs[0].WorstUS[0]
		}, "worst"},
		{"worst vs max", func(r *Result) { r.Runs[0].WorstUS[0].LatencyUS = 250 }, "worst"},
		{"mean above max", func(r *Result) { r.Runs[0].Quiescent.MeanUS = 500 }, "mean"},
	}
	for _, tc := range cases {
		r := validResult()
		tc.mutate(r)
		err := Check(r)
		if err == nil {
			t.Errorf("%s: corruption not caught", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestForkLogOverlap pins the window intersection logic.
func TestForkLogOverlap(t *testing.T) {
	l := &ForkLog{}
	l.Begin()
	l.End()
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
	s := l.spans[0]
	if !l.Overlaps(s.start, s.end) {
		t.Error("exact span does not overlap itself")
	}
	if !l.Overlaps(s.start.Add(-time.Millisecond), s.start) {
		t.Error("window ending at span start should overlap")
	}
	if l.Overlaps(s.end.Add(time.Millisecond), s.end.Add(2*time.Millisecond)) {
		t.Error("window after span should not overlap")
	}
	l.Band = 3 * time.Millisecond
	if !l.Overlaps(s.end.Add(time.Millisecond), s.end.Add(2*time.Millisecond)) {
		t.Error("guard band should extend the span")
	}
	if l.Overlaps(s.end.Add(4*time.Millisecond), s.end.Add(5*time.Millisecond)) {
		t.Error("window past the guard band should not overlap")
	}
	l.Band = 0
	// An in-flight fork tags windows that reach it.
	l.Begin()
	if !l.Overlaps(time.Now().Add(-time.Millisecond), time.Now()) {
		t.Error("in-flight fork not visible")
	}
	l.End()
}
