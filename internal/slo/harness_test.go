package slo

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestHarnessKV runs a miniature sweep over real TCP sockets and pins
// the properties the committed artifact relies on: the result passes
// Check, snapshots fired during every run, and fork-coincident samples
// are distinguished from quiescent ones.
func TestHarnessKV(t *testing.T) {
	res, err := RunHarness(HarnessConfig{
		App:           "kv",
		Conns:         2,
		LoadRatios:    []float64{0.5},
		Trials:        1,
		Requests:      1200,
		CalibrateN:    400,
		Warmup:        20,
		SnapshotEvery: 5 * time.Millisecond,
		ArenaMiB:      16,
		Keys:          2000,
		ValueLen:      32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res); err != nil {
		t.Fatalf("harness result fails its own checker: %v", err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("got %d runs, want one per mode", len(res.Runs))
	}
	modes := map[string]bool{}
	for _, run := range res.Runs {
		modes[run.Mode] = true
		if run.Snapshots == 0 {
			t.Errorf("%s: no snapshots", run.Mode)
		}
		if run.ForkCoincident.Count == 0 {
			t.Errorf("%s: no fork-coincident samples across %d snapshots",
				run.Mode, run.Snapshots)
		}
		if run.Quiescent.Count == 0 {
			t.Errorf("%s: every sample fork-coincident", run.Mode)
		}
		if run.ForkMeanUS <= 0 {
			t.Errorf("%s: fork mean %.1fus", run.Mode, run.ForkMeanUS)
		}
	}
	if !modes[core.ForkClassic.String()] || !modes[core.ForkOnDemand.String()] {
		t.Errorf("modes covered: %v", modes)
	}
}

// TestHarnessHTTPD smoke-tests the httpd leg of the harness.
func TestHarnessHTTPD(t *testing.T) {
	if testing.Short() {
		t.Skip("httpd sweep in -short mode")
	}
	res, err := RunHarness(HarnessConfig{
		App:           "httpd",
		Modes:         []core.ForkMode{core.ForkOnDemand},
		Conns:         2,
		LoadRatios:    []float64{0.5},
		Trials:        1,
		Requests:      800,
		CalibrateN:    300,
		Warmup:        20,
		SnapshotEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(res); err != nil {
		t.Fatalf("harness result fails its own checker: %v", err)
	}
	if res.App != "httpd" || res.Protocol != "http" {
		t.Errorf("app %q protocol %q", res.App, res.Protocol)
	}
}
