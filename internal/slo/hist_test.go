package slo

import (
	"math/rand"
	"sort"
	"testing"
)

// TestHistIndexing pins the HDR layout: every value lands in a slot
// whose upper edge is >= the value and within the 2^-subBits relative
// error bound.
func TestHistIndexing(t *testing.T) {
	vals := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		vals = append(vals, rng.Int63n(1<<50))
	}
	for _, v := range vals {
		idx := histIndex(v)
		up := histUpper(idx)
		if up < v {
			t.Fatalf("value %d: slot %d upper edge %d < value", v, idx, up)
		}
		if v >= subCount && float64(up-v) > float64(v)/float64(subCount) {
			t.Fatalf("value %d: upper edge %d exceeds error bound", v, up)
		}
		if idx > 0 && histUpper(idx-1) >= v {
			t.Fatalf("value %d: previous slot %d upper edge %d >= value", v, idx-1, histUpper(idx-1))
		}
	}
}

// TestHistPercentiles cross-checks histogram percentiles against the
// exact sorted population.
func TestHistPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var h Hist
	exact := make([]int64, 0, 50000)
	for i := 0; i < 50000; i++ {
		// Log-uniform-ish latencies from 1us to ~100ms.
		v := int64(1000) << uint(rng.Intn(17))
		v += rng.Int63n(v)
		h.Record(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{50, 90, 99, 99.9, 100} {
		rank := int(p / 100 * float64(len(exact)))
		if rank >= len(exact) {
			rank = len(exact) - 1
		}
		want := exact[rank]
		got := h.Percentile(p)
		lo, hi := float64(want)*0.96, float64(want)*1.04
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("p%v = %d, exact %d (outside ±4%%)", p, got, want)
		}
	}
	if h.Max() != exact[len(exact)-1] {
		t.Errorf("max = %d, want %d", h.Max(), exact[len(exact)-1])
	}
	if h.Percentile(100) != h.Max() {
		t.Errorf("p100 = %d != max %d", h.Percentile(100), h.Max())
	}
}

// TestHistMerge pins that merged histograms equal one histogram fed
// everything.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var whole, a, b Hist
	for i := 0; i < 20000; i++ {
		v := rng.Int63n(1 << 30)
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge mismatch: count %d/%d max %d/%d", a.Count(), whole.Count(), a.Max(), whole.Max())
	}
	for _, p := range []float64{50, 99, 99.9} {
		if a.Percentile(p) != whole.Percentile(p) {
			t.Errorf("p%v: merged %d != whole %d", p, a.Percentile(p), whole.Percentile(p))
		}
	}
}

// TestWorstInsert pins the exact worst-N tracker.
func TestWorstInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ws []WorstSample
	all := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		v := rng.Float64() * 1e6
		ws = insertWorst(ws, WorstSample{LatencyUS: v, Seq: i})
		all = append(all, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(all)))
	if len(ws) != WorstN {
		t.Fatalf("kept %d, want %d", len(ws), WorstN)
	}
	for i, w := range ws {
		if w.LatencyUS != all[i] {
			t.Fatalf("worst[%d] = %f, want %f", i, w.LatencyUS, all[i])
		}
	}
}
