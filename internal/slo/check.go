package slo

import (
	"fmt"
	"sort"
)

// Check validates a Result's self-consistency — the guard `odf-slo
// -check` applies so malformed or truncated runs fail fast instead of
// being compared. It verifies the schema tag, monotone percentiles,
// sample-count arithmetic (fork-coincident + quiescent = total), and
// worst-N ordering against the recorded maxima.
func Check(r *Result) error {
	if r.Schema != SchemaV1 {
		return fmt.Errorf("schema %q, want %q", r.Schema, SchemaV1)
	}
	if len(r.Runs) == 0 {
		return fmt.Errorf("no runs")
	}
	if r.Conns <= 0 {
		return fmt.Errorf("conns = %d", r.Conns)
	}
	for i, run := range r.Runs {
		tag := fmt.Sprintf("run %d (%s @ %.0f rps)", i, run.Mode, run.OfferedRPS)
		if run.Mode == "" {
			return fmt.Errorf("%s: empty mode", tag)
		}
		if err := checkSummary(run.Latency); err != nil {
			return fmt.Errorf("%s: latency: %w", tag, err)
		}
		if err := checkSummary(run.ForkCoincident); err != nil {
			return fmt.Errorf("%s: fork_coincident: %w", tag, err)
		}
		if err := checkSummary(run.Quiescent); err != nil {
			return fmt.Errorf("%s: quiescent: %w", tag, err)
		}
		if got := run.ForkCoincident.Count + run.Quiescent.Count; got != run.Latency.Count {
			return fmt.Errorf("%s: fork_coincident %d + quiescent %d != total %d",
				tag, run.ForkCoincident.Count, run.Quiescent.Count, run.Latency.Count)
		}
		if run.Requests != run.Latency.Count {
			return fmt.Errorf("%s: requests %d != recorded samples %d",
				tag, run.Requests, run.Latency.Count)
		}
		if run.Requests == 0 {
			return fmt.Errorf("%s: zero requests", tag)
		}
		if run.AchievedRPS <= 0 {
			return fmt.Errorf("%s: achieved_rps = %f", tag, run.AchievedRPS)
		}
		if run.Snapshots == 0 {
			return fmt.Errorf("%s: no snapshots fired during the run", tag)
		}
		if !sort.SliceIsSorted(run.WorstUS, func(a, b int) bool {
			return run.WorstUS[a].LatencyUS > run.WorstUS[b].LatencyUS
		}) {
			return fmt.Errorf("%s: worst_us not latency-descending", tag)
		}
		if len(run.WorstUS) > 0 {
			// The worst sample is the population max up to the
			// microsecond rounding both sides went through.
			if d := run.WorstUS[0].LatencyUS - run.Latency.MaxUS; d > 0.5 || d < -0.5 {
				return fmt.Errorf("%s: worst sample %.1fus != max %.1fus",
					tag, run.WorstUS[0].LatencyUS, run.Latency.MaxUS)
			}
		}
	}
	return nil
}

func checkSummary(s LatencySummary) error {
	if s.Count == 0 {
		if s.MaxUS != 0 {
			return fmt.Errorf("empty summary with max %.1fus", s.MaxUS)
		}
		return nil
	}
	ps := []struct {
		name string
		v    float64
	}{
		{"p50", s.P50US}, {"p90", s.P90US}, {"p99", s.P99US},
		{"p999", s.P999US}, {"max", s.MaxUS},
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].v < ps[i-1].v {
			return fmt.Errorf("%s %.1fus < %s %.1fus", ps[i].name, ps[i].v, ps[i-1].name, ps[i-1].v)
		}
	}
	if s.MeanUS <= 0 || s.MeanUS > s.MaxUS {
		return fmt.Errorf("mean %.1fus outside (0, max %.1fus]", s.MeanUS, s.MaxUS)
	}
	return nil
}
