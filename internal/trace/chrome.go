package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Format selects a WriteTrace encoding.
type Format int

const (
	// FormatChrome is the Chrome trace-event JSON object format,
	// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
	FormatChrome Format = iota
	// FormatText is the human-readable timeline of RenderText.
	FormatText
)

// The synthetic process every track belongs to.
const chromePID = 1

// actorTID maps an actor to a stable Chrome thread id so Perfetto
// shows one track per worker: the app on tid 1, fork helper n on
// tid 1+n, kswapd parked at the bottom on tid 999.
func actorTID(actor int32) int {
	switch {
	case actor == ActorKswapd:
		return 999
	case actor > 0:
		return 1 + int(actor)
	}
	return 1
}

// chromeEvent is one entry of the trace-event array. Timestamps and
// durations are microseconds (floats carry the nanosecond fraction).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// WriteChrome encodes the snapshot as a Chrome trace-event JSON
// document. Spans become complete events (ph "X"), instants become
// thread-scoped instant events (ph "i"), and each actor gets a
// thread_name metadata record, so begin/end balance holds trivially
// and every actor renders as its own Perfetto track.
func WriteChrome(w io.Writer, s Snapshot) error {
	evs := append([]Event(nil), s.Events...)
	sortEvents(evs)

	seen := map[int32]bool{}
	var actors []int32
	for _, e := range evs {
		if !seen[e.Actor] {
			seen[e.Actor] = true
			actors = append(actors, e.Actor)
		}
	}
	sort.Slice(actors, func(i, j int) bool { return actorTID(actors[i]) < actorTID(actors[j]) })

	doc := chromeDoc{
		DisplayTimeUnit: "ns",
		Metadata:        map[string]any{"source": "odf flight recorder", "dropped_events": s.Dropped},
	}
	for _, a := range actors {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  chromePID,
			TID:  actorTID(a),
			Args: map[string]any{"name": ActorName(a)},
		})
	}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name(),
			Cat:  "odf",
			TS:   float64(e.TS) / 1e3,
			PID:  chromePID,
			TID:  actorTID(e.Actor),
		}
		if d := e.Detail(); d != "" {
			ce.Args = map[string]any{"detail": d}
		}
		if e.Kind.Span() {
			ce.Ph = "X"
			dur := float64(e.Dur) / 1e3
			ce.Dur = &dur
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteTo encodes the snapshot in the requested format.
func WriteTo(w io.Writer, s Snapshot, f Format) error {
	switch f {
	case FormatChrome:
		return WriteChrome(w, s)
	case FormatText:
		_, err := io.WriteString(w, RenderText(s))
		return err
	}
	return fmt.Errorf("trace: unknown format %d", f)
}

// ValidateChrome checks that data is a well-formed Chrome trace-event
// JSON document: parseable, at least one event, every event carrying a
// phase and placement, non-negative monotonic timestamps (metadata
// records excepted), non-negative durations on complete events, and
// balanced begin/end pairs per track. It is the CI gate behind
// `make trace`.
func ValidateChrome(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return errors.New("trace: no events")
	}
	lastTS := 0.0
	sawTS := false
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	for i, e := range doc.TraceEvents {
		if e.Ph == "" {
			return fmt.Errorf("trace: event %d (%q) missing ph", i, e.Name)
		}
		if e.PID == nil || e.TID == nil {
			return fmt.Errorf("trace: event %d (%q) missing pid/tid", i, e.Name)
		}
		if e.Ph == "M" {
			continue
		}
		if e.TS == nil || *e.TS < 0 {
			return fmt.Errorf("trace: event %d (%q) has missing or negative ts", i, e.Name)
		}
		if sawTS && *e.TS < lastTS {
			return fmt.Errorf("trace: timestamps not monotonic at event %d (%q): %v < %v", i, e.Name, *e.TS, lastTS)
		}
		lastTS, sawTS = *e.TS, true
		tr := track{*e.PID, *e.TID}
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return fmt.Errorf("trace: complete event %d (%q) has missing or negative dur", i, e.Name)
			}
		case "B":
			stacks[tr] = append(stacks[tr], e.Name)
		case "E":
			st := stacks[tr]
			if len(st) == 0 {
				return fmt.Errorf("trace: end event %d (%q) with no matching begin on pid=%d tid=%d", i, e.Name, tr.pid, tr.tid)
			}
			stacks[tr] = st[:len(st)-1]
		}
	}
	for tr, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("trace: %d unclosed begin event(s) on pid=%d tid=%d (innermost %q)", len(st), tr.pid, tr.tid, st[len(st)-1])
		}
	}
	return nil
}
