package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Format selects a WriteTrace encoding.
type Format int

const (
	// FormatChrome is the Chrome trace-event JSON object format,
	// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
	FormatChrome Format = iota
	// FormatText is the human-readable timeline of RenderText.
	FormatText
)

// The synthetic process every track belongs to.
const chromePID = 1

// actorTID maps an actor to a stable Chrome thread id so Perfetto
// shows one track per worker: the app on tid 1, fork helper n on
// tid 1+n, kswapd parked at the bottom on tid 999.
func actorTID(actor int32) int {
	switch {
	case actor == ActorKswapd:
		return 999
	case actor > 0:
		return 1 + int(actor)
	}
	return 1
}

// chromeEvent is one entry of the trace-event array. Timestamps and
// durations are microseconds (floats carry the nanosecond fraction).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	ID   *uint64        `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// ExemplarRef links one histogram exemplar into a trace document: the
// dotted metric series it came from, the observed latency, and the
// request id whose flow the observation belongs to. WriteChromeExtra
// embeds these under metadata.exemplars so a Perfetto bucket can be
// chased back to its causal chain (and odf-tracecheck can verify the
// link resolves).
type ExemplarRef struct {
	Series string `json:"series"`
	NS     uint64 `json:"ns"`
	Req    uint64 `json:"req"`
}

// ChromeExtra is the optional side data WriteChromeExtra folds into
// the document's metadata block.
type ChromeExtra struct {
	Exemplars []ExemplarRef
}

// WriteChrome encodes the snapshot as a Chrome trace-event JSON
// document. Spans become complete events (ph "X"), instants become
// thread-scoped instant events (ph "i"), and each actor gets a
// thread_name metadata record, so begin/end balance holds trivially
// and every actor renders as its own Perfetto track. Events sharing a
// nonzero request id additionally get flow events (ph "s"/"t"/"f",
// id = the request id) binding the request's causal chain across
// tracks — the codec-receive span, its admission wait, the fork it
// triggered, and the faults the clone resolved read as one arrowed
// path in Perfetto.
func WriteChrome(w io.Writer, s Snapshot) error {
	return WriteChromeExtra(w, s, nil)
}

// WriteChromeExtra is WriteChrome with optional metadata side data
// (histogram exemplars referencing request flows).
func WriteChromeExtra(w io.Writer, s Snapshot, extra *ChromeExtra) error {
	evs := append([]Event(nil), s.Events...)
	sortEvents(evs)

	seen := map[int32]bool{}
	var actors []int32
	for _, e := range evs {
		if !seen[e.Actor] {
			seen[e.Actor] = true
			actors = append(actors, e.Actor)
		}
	}
	sort.Slice(actors, func(i, j int) bool { return actorTID(actors[i]) < actorTID(actors[j]) })

	doc := chromeDoc{
		DisplayTimeUnit: "ns",
		Metadata:        map[string]any{"source": "odf flight recorder", "dropped_events": s.Dropped},
	}
	if extra != nil && len(extra.Exemplars) > 0 {
		doc.Metadata["exemplars"] = extra.Exemplars
	}
	for _, a := range actors {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			PID:  chromePID,
			TID:  actorTID(a),
			Args: map[string]any{"name": ActorName(a)},
		})
	}
	flows := map[uint64][]Event{}
	var flowIDs []uint64
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name(),
			Cat:  "odf",
			TS:   float64(e.TS) / 1e3,
			PID:  chromePID,
			TID:  actorTID(e.Actor),
		}
		args := map[string]any{}
		if d := e.Detail(); d != "" {
			args["detail"] = d
		}
		if e.Req != 0 {
			args["req"] = e.Req
			if _, ok := flows[e.Req]; !ok {
				flowIDs = append(flowIDs, e.Req)
			}
			flows[e.Req] = append(flows[e.Req], e)
		}
		if len(args) > 0 {
			ce.Args = args
		}
		if e.Kind.Span() {
			ce.Ph = "X"
			dur := float64(e.Dur) / 1e3
			ce.Dur = &dur
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	// Flow pass: each request id whose chain spans more than one event
	// becomes a flow — start at the first event, steps through the
	// middle, finish at the last, all sharing id = the request id. The
	// flow points sit at their event's start timestamp (the chain is
	// TS-sorted, so each flow's points are non-decreasing even when a
	// long enclosing span starts before a short nested one); "bp":"e"
	// asks Perfetto for enclosing-slice binding so the arrows attach
	// to the slices themselves.
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, req := range flowIDs {
		chain := flows[req]
		if len(chain) < 2 {
			continue
		}
		for i, e := range chain {
			req := req
			ce := chromeEvent{
				Name: "req",
				Cat:  "odf.req",
				TS:   float64(e.TS) / 1e3,
				PID:  chromePID,
				TID:  actorTID(e.Actor),
				ID:   &req,
				BP:   "e",
			}
			switch i {
			case 0:
				ce.Ph = "s"
			case len(chain) - 1:
				ce.Ph = "f"
			default:
				ce.Ph = "t"
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteTo encodes the snapshot in the requested format.
func WriteTo(w io.Writer, s Snapshot, f Format) error {
	switch f {
	case FormatChrome:
		return WriteChrome(w, s)
	case FormatText:
		_, err := io.WriteString(w, RenderText(s))
		return err
	}
	return fmt.Errorf("trace: unknown format %d", f)
}

// ValidateChrome checks that data is a well-formed Chrome trace-event
// JSON document: parseable, at least one event, every event carrying a
// phase and placement, non-negative monotonic timestamps (metadata and
// flow records excepted — flows are a second pass over the timeline),
// non-negative durations on complete events, balanced begin/end pairs
// per track, and well-formed flows (every "s"/"t"/"f" carries an id,
// each id's points are in timestamp order, and each id opens with one
// "s" and closes with one "f"). It is the CI gate behind `make trace`.
func ValidateChrome(data []byte) error {
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
			ID   *uint64  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return errors.New("trace: no events")
	}
	lastTS := 0.0
	sawTS := false
	type track struct{ pid, tid int }
	stacks := map[track][]string{}
	type flowState struct {
		lastTS   float64
		steps    int
		finished bool
	}
	flows := map[uint64]*flowState{}
	for i, e := range doc.TraceEvents {
		if e.Ph == "" {
			return fmt.Errorf("trace: event %d (%q) missing ph", i, e.Name)
		}
		if e.PID == nil || e.TID == nil {
			return fmt.Errorf("trace: event %d (%q) missing pid/tid", i, e.Name)
		}
		if e.Ph == "M" {
			continue
		}
		if e.TS == nil || *e.TS < 0 {
			return fmt.Errorf("trace: event %d (%q) has missing or negative ts", i, e.Name)
		}
		switch e.Ph {
		case "s", "t", "f":
			if e.ID == nil {
				return fmt.Errorf("trace: flow event %d (ph %q) missing id", i, e.Ph)
			}
			fs := flows[*e.ID]
			switch e.Ph {
			case "s":
				if fs != nil {
					return fmt.Errorf("trace: flow id %d started twice at event %d", *e.ID, i)
				}
				flows[*e.ID] = &flowState{lastTS: *e.TS}
			default:
				if fs == nil {
					return fmt.Errorf("trace: flow event %d (ph %q, id %d) before its start", i, e.Ph, *e.ID)
				}
				if fs.finished {
					return fmt.Errorf("trace: flow id %d continues after finish at event %d", *e.ID, i)
				}
				if *e.TS < fs.lastTS {
					return fmt.Errorf("trace: flow id %d not in timestamp order at event %d: %v < %v", *e.ID, i, *e.TS, fs.lastTS)
				}
				fs.lastTS = *e.TS
				fs.steps++
				if e.Ph == "f" {
					fs.finished = true
				}
			}
			continue
		}
		if sawTS && *e.TS < lastTS {
			return fmt.Errorf("trace: timestamps not monotonic at event %d (%q): %v < %v", i, e.Name, *e.TS, lastTS)
		}
		lastTS, sawTS = *e.TS, true
		tr := track{*e.PID, *e.TID}
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return fmt.Errorf("trace: complete event %d (%q) has missing or negative dur", i, e.Name)
			}
		case "B":
			stacks[tr] = append(stacks[tr], e.Name)
		case "E":
			st := stacks[tr]
			if len(st) == 0 {
				return fmt.Errorf("trace: end event %d (%q) with no matching begin on pid=%d tid=%d", i, e.Name, tr.pid, tr.tid)
			}
			stacks[tr] = st[:len(st)-1]
		}
	}
	for tr, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("trace: %d unclosed begin event(s) on pid=%d tid=%d (innermost %q)", len(st), tr.pid, tr.tid, st[len(st)-1])
		}
	}
	for id, fs := range flows {
		if !fs.finished {
			return fmt.Errorf("trace: flow id %d never finished (%d steps)", id, fs.steps)
		}
	}
	return nil
}
