package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot is a fixed timeline exercising every event kind and
// every actor flavour: a parallel on-demand fork (walk + two worker
// share ranges + TLB), a classic refcount range, each fault
// resolution, a reclaim episode, and allocator shard traffic.
func goldenSnapshot() Snapshot {
	us := func(n int64) int64 { return n * 1000 }
	return Snapshot{
		Dropped: 3,
		Events: []Event{
			{TS: us(1), Dur: us(9), Kind: KindFork, Stage: StageNone, Actor: ActorApp, Arg1: 1, Arg2: 4},
			{TS: us(1), Dur: us(7), Kind: KindForkStage, Stage: StageWalk, Actor: ActorApp},
			{TS: us(2), Dur: us(3), Kind: KindForkStage, Stage: StageShare, Actor: ActorApp, Arg1: 0, Arg2: 128},
			{TS: us(2), Dur: us(4), Kind: KindForkStage, Stage: StageShare, Actor: ActorForkWorker(1), Arg1: 128, Arg2: 256},
			{TS: us(8), Dur: us(2), Kind: KindForkStage, Stage: StageTLB, Actor: ActorApp},
			{TS: us(12), Dur: us(5), Kind: KindForkStage, Stage: StageRefcount, Actor: ActorForkWorker(2), Arg1: 0, Arg2: 16},
			{TS: us(20), Dur: us(2), Kind: KindFault, Stage: ResolveTableCopy, Actor: ActorApp, Arg1: 0x7f0000001000, Arg2: 1},
			{TS: us(23), Dur: us(1), Kind: KindFault, Stage: ResolveDedup, Actor: ActorApp, Arg1: 0x7f0000002000, Arg2: 1},
			{TS: us(25), Dur: us(1), Kind: KindFault, Stage: ResolvePageCopy, Actor: ActorApp, Arg1: 0x7f0000003000, Arg2: 1},
			{TS: us(27), Dur: us(3), Kind: KindFault, Stage: ResolvePMDSplit, Actor: ActorApp, Arg1: 0x7f0000200000, Arg2: 1},
			{TS: us(31), Dur: us(4), Kind: KindFault, Stage: ResolveHugeCopy, Actor: ActorApp, Arg1: 0x7f0000400000, Arg2: 1},
			{TS: us(36), Dur: us(6), Kind: KindFault, Stage: ResolveSwapIn, Actor: ActorApp, Arg1: 0x7f0000004000, Arg2: 0},
			{TS: us(37), Dur: us(4), Kind: KindSwapIn, Stage: StageNone, Actor: ActorApp, Arg1: 7},
			{TS: us(43), Dur: 0, Kind: KindOOMStall, Stage: StageNone, Actor: ActorApp, Arg1: 1},
			{TS: us(44), Dur: us(1), Kind: KindFault, Stage: ResolveMinor, Actor: ActorApp, Arg1: 0x7f0000005000, Arg2: 0},
			{TS: us(46), Dur: 0, Kind: KindFault, Stage: ResolveSegfault, Actor: ActorApp, Arg1: 0xdead000, Arg2: 1},
			{TS: us(50), Dur: 0, Kind: KindKswapdWake, Stage: StageNone, Actor: ActorKswapd, Arg1: 12},
			{TS: us(51), Dur: us(20), Kind: KindReclaimScan, Stage: StageNone, Actor: ActorKswapd, Arg1: 64, Arg2: 32},
			{TS: us(52), Dur: 0, Kind: KindHugeSplit, Stage: StageNone, Actor: ActorKswapd, Arg1: 512},
			{TS: us(55), Dur: us(8), Kind: KindWriteback, Stage: StageNone, Actor: ActorKswapd, Arg1: 9, Arg2: 4096},
			{TS: us(64), Dur: 0, Kind: KindReclaimEvict, Stage: StageNone, Actor: ActorKswapd, Arg1: 33, Arg2: 9},
			{TS: us(70), Dur: 0, Kind: KindAllocRefill, Stage: StageNone, Actor: ActorApp, Arg1: 32},
			{TS: us(72), Dur: 0, Kind: KindAllocDrain, Stage: StageNone, Actor: ActorApp, Arg1: 32},
		},
	}
}

// TestRenderTextGolden pins the /proc/odf/trace text format.
func TestRenderTextGolden(t *testing.T) {
	got := RenderText(goldenSnapshot())
	path := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		gl := strings.Split(got, "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Errorf("line %d:\n  got  %q\n  want %q", i+1, g, w)
			}
		}
		t.Fatalf("rendered trace differs from %s (use -update after a deliberate format change)", path)
	}
}

// TestEventNames: every kind and every stage refinement renders a
// distinct dotted name, and no kind falls into the fallback.
func TestEventNames(t *testing.T) {
	seen := map[string]Event{}
	add := func(e Event) {
		n := e.Name()
		if strings.HasPrefix(n, "kind") {
			t.Errorf("kind %d has no name", e.Kind)
		}
		if prev, dup := seen[n]; dup && (prev.Kind != e.Kind || prev.Stage != e.Stage) {
			t.Errorf("name %q used by %+v and %+v", n, prev, e)
		}
		seen[n] = e
	}
	for k := Kind(0); k < numKinds; k++ {
		switch k {
		case KindForkStage:
			for _, st := range []Stage{StageWalk, StageShare, StageRefcount, StageTLB} {
				add(Event{Kind: k, Stage: st})
			}
		case KindFault:
			for st := ResolveSegfault; st < numStages; st++ {
				add(Event{Kind: k, Stage: st})
			}
		default:
			add(Event{Kind: k})
		}
	}
}

func TestNilAndDisabledTracer(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	nilT.SetEnabled(true) // no-op, must not panic
	nilT.Reset()
	nilT.Span(KindFork, StageNone, ActorApp, time.Now(), 0, 0)
	nilT.Instant(KindKswapdWake, StageNone, ActorKswapd, 0, 0)
	if s := nilT.Snapshot(); len(s.Events) != 0 || s.Dropped != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}

	tr := New(256)
	tr.Instant(KindKswapdWake, StageNone, ActorKswapd, 0, 0)
	tr.Span(KindFork, StageNone, ActorApp, time.Now(), 0, 0)
	tr.Emit(Event{Kind: KindFork})
	if s := tr.Snapshot(); len(s.Events) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(s.Events))
	}
}

func TestEnableRecordReset(t *testing.T) {
	tr := New(1024)
	tr.SetEnabled(true)
	if !tr.Enabled() {
		t.Fatal("not enabled")
	}
	start := time.Now()
	tr.Span(KindFork, StageNone, ActorApp, start, 1, 4)
	tr.Instant(KindReclaimEvict, StageNone, ActorKswapd, 33, 9)
	s := tr.Snapshot()
	if len(s.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(s.Events))
	}
	for _, e := range s.Events {
		if e.TS < 0 {
			t.Errorf("negative TS %d", e.TS)
		}
	}
	tr.Reset()
	if s := tr.Snapshot(); len(s.Events) != 0 || s.Dropped != 0 {
		t.Fatalf("after reset: %d events, %d dropped", len(s.Events), s.Dropped)
	}
	// Still enabled and recording after reset.
	tr.Instant(KindKswapdWake, StageNone, ActorKswapd, 1, 0)
	if s := tr.Snapshot(); len(s.Events) != 1 {
		t.Fatalf("after reset events = %d", len(s.Events))
	}
}

// TestDropOldest: overfilling rings keeps memory bounded and counts
// the overwritten events.
func TestDropOldest(t *testing.T) {
	tr := New(64) // small capacity; per-ring minimum is 64 slots
	tr.SetEnabled(true)
	const n = 10_000
	for i := 0; i < n; i++ {
		tr.Emit(Event{TS: int64(i), Kind: KindFault, Stage: ResolveMinor})
	}
	s := tr.Snapshot()
	var capTotal int
	for i := range tr.rings {
		capTotal += len(tr.rings[i].slots)
	}
	if len(s.Events) > capTotal {
		t.Fatalf("snapshot has %d events, capacity %d", len(s.Events), capTotal)
	}
	// This goroutine emitted everything into one ring, so exactly
	// ringSize events survive and the rest are counted dropped.
	if got := len(s.Events) + int(s.Dropped); got != n {
		t.Fatalf("events(%d) + dropped(%d) = %d, want %d", len(s.Events), s.Dropped, got, n)
	}
	if s.Dropped == 0 {
		t.Fatal("expected drops")
	}
}

func TestSnapshotSorted(t *testing.T) {
	tr := New(1024)
	tr.SetEnabled(true)
	for _, ts := range []int64{500, 100, 300, 200, 400} {
		tr.Emit(Event{TS: ts, Kind: KindFault, Stage: ResolveMinor})
	}
	s := tr.Snapshot()
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].TS < s.Events[i-1].TS {
			t.Fatalf("events out of order at %d: %d < %d", i, s.Events[i].TS, s.Events[i-1].TS)
		}
	}
}

// TestConcurrentEmit hammers the tracer from many goroutines while a
// reader snapshots and a toggler flips enablement — the -race gate for
// the lock-free ring.
func TestConcurrentEmit(t *testing.T) {
	tr := New(512)
	tr.SetEnabled(true)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5_000; i++ {
				tr.Span(KindFault, ResolvePageCopy, int32(g), time.Now(), uint64(i), 1)
				tr.Instant(KindAllocRefill, StageNone, int32(g), 32, 0)
			}
		}(g)
	}
	togglerDone := make(chan struct{})
	go func() {
		defer close(togglerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.Snapshot()
			tr.SetEnabled(false)
			tr.SetEnabled(true)
			tr.Reset()
		}
	}()
	wg.Wait()
	close(stop)
	<-togglerDone
	_ = tr.Snapshot()
}

func TestWriteChromeValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("exporter output fails validator: %v", err)
	}
	// One thread_name metadata record per actor (app, two workers,
	// kswapd), and the dropped count surfaces in metadata.
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	evs := doc["traceEvents"].([]any)
	names := 0
	for _, raw := range evs {
		e := raw.(map[string]any)
		if e["ph"] == "M" && e["name"] == "thread_name" {
			names++
		}
	}
	if names != 4 {
		t.Fatalf("thread_name records = %d, want 4", names)
	}
	meta := doc["metadata"].(map[string]any)
	if meta["dropped_events"].(float64) != 3 {
		t.Fatalf("dropped_events = %v", meta["dropped_events"])
	}
}

func TestWriteToText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTo(&buf, goldenSnapshot(), FormatText); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fork.share") {
		t.Fatalf("text output missing events:\n%s", buf.String())
	}
	if err := WriteTo(&buf, Snapshot{}, Format(99)); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [`,
		"empty":         `{"traceEvents": []}`,
		"missing ph":    `{"traceEvents": [{"name":"x","ts":1,"pid":1,"tid":1}]}`,
		"missing pid":   `{"traceEvents": [{"name":"x","ph":"i","ts":1,"tid":1}]}`,
		"negative ts":   `{"traceEvents": [{"name":"x","ph":"i","ts":-1,"pid":1,"tid":1}]}`,
		"non-monotonic": `{"traceEvents": [{"name":"a","ph":"i","ts":5,"pid":1,"tid":1},{"name":"b","ph":"i","ts":4,"pid":1,"tid":1}]}`,
		"negative dur":  `{"traceEvents": [{"name":"x","ph":"X","ts":1,"dur":-2,"pid":1,"tid":1}]}`,
		"unbalanced E":  `{"traceEvents": [{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"unclosed B":    `{"traceEvents": [{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := `{"traceEvents": [
		{"name":"m","ph":"M","pid":1,"tid":1},
		{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},
		{"name":"x","ph":"E","ts":2,"pid":1,"tid":1},
		{"name":"y","ph":"X","ts":3,"dur":1,"pid":1,"tid":1},
		{"name":"z","ph":"i","ts":4,"pid":1,"tid":1}
	]}`
	if err := ValidateChrome([]byte(ok)); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}

func TestAttribute(t *testing.T) {
	a := Attribute(goldenSnapshot())
	if a.Forks != 1 {
		t.Fatalf("forks = %d", a.Forks)
	}
	// walkRaw 7µs − share (3+4)µs − refcount 5µs clamps at 0.
	if a.Walk != 0 {
		t.Errorf("exclusive walk = %v, want 0 (clamped)", a.Walk)
	}
	if a.Share != 7*time.Microsecond || a.Refcount != 5*time.Microsecond || a.TLB != 2*time.Microsecond {
		t.Errorf("share=%v refcount=%v tlb=%v", a.Share, a.Refcount, a.TLB)
	}
	s := a.String()
	if !strings.Contains(s, "share=50.0%") || !strings.Contains(s, "1 forks traced") {
		t.Errorf("attribution line = %q", s)
	}
	if got := (Attribution{}).String(); got != "fork stages: no forks traced" {
		t.Errorf("empty attribution = %q", got)
	}
}

func TestNewCapacity(t *testing.T) {
	for _, c := range []int{0, -5, 1, 100, DefaultCapacity} {
		tr := New(c)
		if len(tr.rings) == 0 {
			t.Fatalf("New(%d): no rings", c)
		}
		for i := range tr.rings {
			n := len(tr.rings[i].slots)
			if n < 64 || n&(n-1) != 0 {
				t.Fatalf("New(%d): ring %d has %d slots", c, i, n)
			}
		}
	}
}
