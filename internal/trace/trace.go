// Package trace is the flight recorder of the simulated kernel: a
// lock-free, sharded ring buffer of fixed-size typed events covering
// the fork engines (whole-fork spans plus per-stage spans — upper-level
// walk, PTE-table sharing, per-page refcounting, TLB shootdown), the
// fault path (one span per repaired fault, labelled with how it was
// resolved), the reclaim subsystem (scan passes, evictions, writeback,
// huge-page splits, kswapd wakeups), and the frame allocator (shard
// refills and drains).
//
// The design goals mirror the kernel's own ftrace ring buffer:
//
//   - Near-zero cost when disabled: every emission site is guarded by
//     one atomic load (Tracer.Enabled), and the nil tracer is a valid
//     disabled tracer, so cold paths need no nil checks.
//   - Bounded memory when enabled: events land in per-shard rings that
//     overwrite the oldest entry when full (drop-oldest); the number of
//     overwritten events is reported as Snapshot.Dropped.
//   - Lock-free: writers claim a slot with one atomic add and publish
//     the event with one atomic pointer store; readers snapshot without
//     stopping writers. Shards are picked by goroutine stack address
//     (the same affinity trick the allocator's frame caches use), so
//     concurrent forks rarely contend on a ring cursor.
//
// The recorded timeline is exported three ways: a human-readable text
// rendering (served at /proc/odf/trace), a Chrome trace-event JSON
// document that loads in Perfetto with one track per fork worker plus
// tracks for the app and kswapd (chrome.go), and a Fig. 3-style
// per-stage attribution of fork time (report.go).
package trace

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// Kind identifies the subsystem event a record describes.
type Kind uint8

// Event kinds. Span kinds carry a duration; instant kinds mark a point
// in time (Dur == 0).
const (
	// KindFork spans a whole fork. Arg1 is the engine (0 classic,
	// 1 on-demand), Arg2 the parallel task count (0 = sequential).
	KindFork Kind = iota
	// KindForkStage spans one stage of a fork; Stage says which.
	// For StageShare and StageRefcount, Arg1/Arg2 are the PMD slot
	// range [lo, hi) the span covered.
	KindForkStage
	// KindFault spans one repaired page fault; Stage records the
	// resolution. Arg1 is the faulting address, Arg2 is 1 for writes.
	KindFault
	// KindSwapIn spans the swap-in stall inside a fault; Arg1 is the
	// swap slot read.
	KindSwapIn
	// KindOOMStall marks a fault path releasing its space lock to run
	// direct reclaim after ErrNoMemory; Arg1 is the retry number.
	KindOOMStall
	// KindReclaimScan spans one shrink pass; Arg1 = entries scanned,
	// Arg2 = frames freed.
	KindReclaimScan
	// KindReclaimEvict marks one frame swapped out; Arg1 = frame,
	// Arg2 = swap slot (0 = the implicit zero-page slot).
	KindReclaimEvict
	// KindWriteback spans one payload write to the swap store;
	// Arg1 = swap slot, Arg2 = bytes written.
	KindWriteback
	// KindHugeSplit marks a cold 2 MiB mapping split into base pages;
	// Arg1 is the compound head frame.
	KindHugeSplit
	// KindKswapdWake marks a kswapd episode starting below the low
	// watermark; Arg1 is the free-frame count that triggered it.
	KindKswapdWake
	// KindAllocRefill marks a shard cache refilling from the buddy
	// core; Arg1 is the batch size.
	KindAllocRefill
	// KindAllocDrain marks a shard cache draining to the buddy core;
	// Arg1 is the batch size.
	KindAllocDrain
	// KindFailpoint marks an injected fault firing; Arg1 is the
	// failpoint's catalog index (failpoint.PointName resolves it).
	KindFailpoint
	// KindForkAbort marks a fork unwound after a mid-copy allocation
	// failure; Arg1 is the engine (0 classic, 1 on-demand).
	KindForkAbort
	// KindSwapDegrade marks the swap store auto-disabling after
	// exhausting I/O retries; Arg1 is 1 for a read failure, 0 for a
	// write failure.
	KindSwapDegrade
	// KindAdmitWait spans a fork's wait in a tenant admission queue;
	// Arg1 is the tenant id, Arg2 is 1 when the fork was ultimately
	// rejected (queue full or wait timed out).
	KindAdmitWait
	// KindRequest spans one served request end to end, from codec
	// receive to response write. Arg1 is the tenant id (0 for
	// untenanted daemons), Arg2 is nonzero when the handler reported
	// an error. Req carries the request id that correlates this span
	// with every admission/fork/fault event the request caused.
	KindRequest
	// KindAlert marks a watchdog detection: Arg1 is the alert code
	// (AlertForkP99 ...; AlertName resolves it), Arg2 the observed
	// value in the code's unit (ns for latency codes, a count for
	// stall codes).
	KindAlert
	// KindCkptWrite spans one durable checkpoint capture+commit;
	// Arg1 is the number of page records written, Arg2 the committed
	// file's size in bytes.
	KindCkptWrite
	// KindCkptPageIn spans one lazy page-in from a checkpoint file on
	// first touch; Arg1 is the faulting virtual address.
	KindCkptPageIn

	numKinds
)

// Span reports whether events of this kind carry a duration.
func (k Kind) Span() bool {
	switch k {
	case KindFork, KindForkStage, KindFault, KindSwapIn, KindReclaimScan, KindWriteback, KindAdmitWait, KindRequest,
		KindCkptWrite, KindCkptPageIn:
		return true
	}
	return false
}

// Watchdog alert codes carried in KindAlert's Arg1.
const (
	// AlertForkP99 fires when the windowed fork-latency p99 crosses
	// the watchdog threshold; Arg2 is the observed p99 in ns.
	AlertForkP99 uint64 = iota
	// AlertAdmitWait fires when the windowed admission-queue p99 wait
	// crosses the threshold; Arg2 is the observed wait in ns.
	AlertAdmitWait
	// AlertSwapDegraded fires when the swap store auto-disables;
	// Arg2 is the cumulative degrade count.
	AlertSwapDegraded
	// AlertOOMStall fires when fault paths entered direct reclaim
	// during the window; Arg2 is the stall count for the window.
	AlertOOMStall

	numAlerts
)

// AlertName resolves a KindAlert code to its stable name.
func AlertName(code uint64) string {
	switch code {
	case AlertForkP99:
		return "fork_p99_breach"
	case AlertAdmitWait:
		return "admit_wait_spike"
	case AlertSwapDegraded:
		return "swap_degraded"
	case AlertOOMStall:
		return "oom_stall"
	}
	return "unknown"
}

// Stage refines a Kind: the fork stage for KindForkStage, the
// resolution for KindFault, StageNone otherwise.
type Stage uint8

// Stages and fault resolutions.
const (
	StageNone Stage = iota

	// Fork stages.

	// StageWalk is the whole tree copy: the sequential upper-level walk
	// plus (nested inside it) the per-PMD-range share/refcount spans.
	StageWalk
	// StageShare is on-demand-fork's per-range work: one share-counter
	// increment and one PMD writable-bit clear per last-level table.
	StageShare
	// StageRefcount is classic fork's per-range work: 512 PTE copies
	// plus one page reference increment per present entry — the
	// compound_head/page_ref_inc hot path of the paper's Figure 3.
	StageRefcount
	// StageTLB is the fork-time lineage-wide TLB shootdown broadcast.
	StageTLB

	// Fault resolutions, in the priority order classification uses.

	// ResolveSegfault: the fault was not repairable.
	ResolveSegfault
	// ResolveTableCopy: a shared PTE table was copied (the deferred
	// table copy of §3.4).
	ResolveTableCopy
	// ResolvePMDSplit: a shared huge-page PMD table was copied (§4).
	ResolvePMDSplit
	// ResolveHugeCopy: a 2 MiB page was copied for COW.
	ResolveHugeCopy
	// ResolvePageCopy: a 4 KiB page was copied for COW.
	ResolvePageCopy
	// ResolveSwapIn: a swapped-out page was read back in.
	ResolveSwapIn
	// ResolveDedup: the last sharer re-dedicated a table by restoring
	// one writable bit (the paper's fast path).
	ResolveDedup
	// ResolveMinor: demand paging, spurious faults, and fast reads —
	// nothing was copied.
	ResolveMinor

	numStages
)

// Well-known actors (Perfetto tracks). Fork pool helpers use positive
// worker numbers: ActorForkWorker(1) .. ActorForkWorker(n).
const (
	// ActorApp is the application goroutine driving the syscall surface
	// (and the caller's share of a parallel fork).
	ActorApp int32 = 0
	// ActorKswapd is the background reclaimer goroutine.
	ActorKswapd int32 = -1
)

// ActorForkWorker names the i-th parallel-fork helper (i ≥ 1; the
// caller itself participates as ActorApp).
func ActorForkWorker(i int) int32 { return int32(i) }

// Event is one fixed-size trace record.
type Event struct {
	TS    int64 // nanoseconds since the tracer epoch
	Dur   int64 // span length in nanoseconds; 0 for instants
	Kind  Kind
	Stage Stage
	Actor int32
	Arg1  uint64
	Arg2  uint64
	// Req is the correlation id of the serving-tier request that
	// caused this event, or 0 when the event happened outside any
	// request (background reclaim, warmup forks, untagged daemons).
	// Events sharing a nonzero Req are exported as one Perfetto flow.
	Req uint64
}

// DefaultCapacity is the event capacity a kernel's tracer is built
// with: 16 Ki events ≈ 1 MiB of ring memory, a few milliseconds of
// fully loaded fork/fault traffic.
const DefaultCapacity = 1 << 14

const maxRings = 64

// slot is one seqlock-guarded event cell: seq is even when the event
// is stable (0 = never written), odd while a writer is mid-update.
// Storing events by value keeps the hot emit path allocation-free —
// the previous pointer-slot design boxed every event on the heap.
type slot struct {
	seq atomic.Uint64
	ev  Event
}

// ring is one shard of the recorder. The cursor counts every claim
// ever made; slot i of an event stream lives at i mod len(slots), so a
// full ring overwrites its oldest entry (drop-oldest). The pad keeps
// neighbouring cursors off one cache line.
type ring struct {
	cur       atomic.Uint64
	contended atomic.Uint64 // events dropped to same-slot writer collisions
	slots     []slot
	_         [64]byte
}

// Tracer is the flight recorder. The zero value and the nil pointer
// are valid, permanently disabled tracers; use New for a live one.
type Tracer struct {
	enabled atomic.Bool
	epoch   atomic.Pointer[time.Time]
	rings   []ring
}

// New builds a disabled tracer holding at most capacity events across
// all shards (capacity ≤ 0 selects DefaultCapacity).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	nrings := 1
	for nrings < runtime.GOMAXPROCS(0) && nrings < maxRings {
		nrings <<= 1
	}
	per := 1
	for per < (capacity+nrings-1)/nrings {
		per <<= 1
	}
	if per < 64 {
		per = 64
	}
	t := &Tracer{rings: make([]ring, nrings)}
	for i := range t.rings {
		t.rings[i].slots = make([]slot, per)
	}
	now := time.Now()
	t.epoch.Store(&now)
	return t
}

// Enabled reports whether the tracer records events. This is the one
// guard on every hot path: a single atomic load, nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled switches recording on or off. Events accumulated so far
// stay readable; use Reset to clear them. Nil-safe no-op.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Reset discards every recorded event, zeroes the dropped count, and
// restarts the timebase. Concurrent emitters may leave a few stragglers
// behind; callers wanting an exact cut disable first.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.rings {
		r := &t.rings[i]
		r.cur.Store(0)
		r.contended.Store(0)
		for j := range r.slots {
			r.slots[j].seq.Store(0)
		}
	}
	now := time.Now()
	t.epoch.Store(&now)
}

// Span records a duration event that began at start. The caller
// typically stamps start only after checking Enabled; Span re-checks so
// a mid-operation disable drops the event instead of recording it.
func (t *Tracer) Span(k Kind, st Stage, actor int32, start time.Time, arg1, arg2 uint64) {
	t.SpanReq(k, st, actor, start, arg1, arg2, 0)
}

// SpanReq is Span carrying a request correlation id (0 = none).
func (t *Tracer) SpanReq(k Kind, st Stage, actor int32, start time.Time, arg1, arg2, req uint64) {
	if !t.Enabled() || start.IsZero() {
		return
	}
	d := time.Since(start)
	t.emit(Event{
		TS:    t.since(start),
		Dur:   int64(d),
		Kind:  k,
		Stage: st,
		Actor: actor,
		Arg1:  arg1,
		Arg2:  arg2,
		Req:   req,
	})
}

// Instant records a point event happening now.
func (t *Tracer) Instant(k Kind, st Stage, actor int32, arg1, arg2 uint64) {
	t.InstantReq(k, st, actor, arg1, arg2, 0)
}

// InstantReq is Instant carrying a request correlation id (0 = none).
func (t *Tracer) InstantReq(k Kind, st Stage, actor int32, arg1, arg2, req uint64) {
	if !t.Enabled() {
		return
	}
	t.emit(Event{
		TS:    t.since(time.Now()),
		Kind:  k,
		Stage: st,
		Actor: actor,
		Arg1:  arg1,
		Arg2:  arg2,
		Req:   req,
	})
}

// Emit records a pre-built event verbatim (tests and golden fixtures).
func (t *Tracer) Emit(e Event) {
	if !t.Enabled() {
		return
	}
	t.emit(e)
}

// since converts an absolute time to epoch-relative nanoseconds,
// clamped at zero (a Reset can move the epoch past an in-flight start).
func (t *Tracer) since(at time.Time) int64 {
	ns := at.Sub(*t.epoch.Load()).Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	return ns
}

// emit claims a slot in the caller's shard and publishes the event
// under the slot's seqlock: CAS the sequence even→odd, write the value,
// store seq+2. A failed CAS means another writer lapped the ring onto
// the same slot at the same instant; the event is dropped (and counted)
// rather than spinning — the recorder must never stall a fork path.
func (t *Tracer) emit(e Event) {
	r := t.shard()
	i := r.cur.Add(1) - 1
	s := &r.slots[i&uint64(len(r.slots)-1)]
	seq := s.seq.Load()
	if seq&1 != 0 || !s.seq.CompareAndSwap(seq, seq+1) {
		r.contended.Add(1)
		return
	}
	s.ev = e
	s.seq.Store(seq + 2)
}

// shard picks a ring for the calling goroutine by hashing its stack
// address — stable for the life of a call frame, distinct across
// goroutines (see phys.Allocator.shardFor for the provenance of the
// trick). A collision costs cursor contention, never correctness.
func (t *Tracer) shard() *ring {
	var probe byte
	h := uintptr(unsafe.Pointer(&probe))
	h ^= h >> 17
	return &t.rings[(h>>3)&uintptr(len(t.rings)-1)]
}

// Snapshot is a point-in-time copy of the recorded timeline.
type Snapshot struct {
	// Events, sorted by timestamp.
	Events []Event
	// Dropped counts events overwritten by ring wrap-around since the
	// last Reset.
	Dropped uint64
}

// Snapshot collects every live event, sorted by timestamp, plus the
// count of events lost to ring overwrite. It runs against concurrent
// emitters: an in-flight claim may be missed or doubly counted as
// dropped, which only skews the snapshot by the events of that instant.
func (t *Tracer) Snapshot() Snapshot {
	var s Snapshot
	if t == nil {
		return s
	}
	for i := range t.rings {
		r := &t.rings[i]
		cur := r.cur.Load()
		if n := uint64(len(r.slots)); cur > n {
			s.Dropped += cur - n
		}
		s.Dropped += r.contended.Load()
		for j := range r.slots {
			sl := &r.slots[j]
			// Seqlock read: take a copy only when the sequence is a
			// nonzero even value and unchanged across the read.
			s1 := sl.seq.Load()
			if s1 == 0 || s1&1 != 0 {
				continue
			}
			e := sl.ev
			if sl.seq.Load() != s1 {
				continue
			}
			s.Events = append(s.Events, e)
		}
	}
	sortEvents(s.Events)
	return s
}
