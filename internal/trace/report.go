package trace

import (
	"fmt"
	"time"
)

// Attribution is the Fig. 3-style stage breakdown of fork time: how
// much of the traced forks' wall-clock went to each stage. Walk is the
// stage's *exclusive* time — the upper-level tree traversal with the
// nested per-range share/refcount spans subtracted out.
type Attribution struct {
	Forks    int           // whole-fork spans seen
	Walk     time.Duration // tree walk, exclusive of nested stages
	Share    time.Duration // PTE-table share counters + PMD write-protect
	Refcount time.Duration // PTE copies + per-page refcount increments
	TLB      time.Duration // fork-time shootdown broadcast
}

// Total is the summed stage time (the percentage denominator).
func (a Attribution) Total() time.Duration {
	return a.Walk + a.Share + a.Refcount + a.TLB
}

// Attribute computes the per-stage fork breakdown from a snapshot.
// Parallel fan-out can make the nested share/refcount spans sum past
// the enclosing walk span (they run concurrently on several workers),
// so the exclusive walk time clamps at zero rather than going negative.
func Attribute(s Snapshot) Attribution {
	var a Attribution
	var walkRaw time.Duration
	for _, e := range s.Events {
		switch e.Kind {
		case KindFork:
			a.Forks++
		case KindForkStage:
			d := time.Duration(e.Dur)
			switch e.Stage {
			case StageWalk:
				walkRaw += d
			case StageShare:
				a.Share += d
			case StageRefcount:
				a.Refcount += d
			case StageTLB:
				a.TLB += d
			}
		}
	}
	a.Walk = walkRaw - a.Share - a.Refcount
	if a.Walk < 0 {
		a.Walk = 0
	}
	return a
}

// String renders the attribution as the one-line telemetry footer
// entry, e.g.:
//
//	fork stages: walk=12.3% share=71.0% refcount=0.0% tlb=16.7% (5 forks traced)
func (a Attribution) String() string {
	if a.Forks == 0 || a.Total() == 0 {
		return "fork stages: no forks traced"
	}
	pct := func(d time.Duration) float64 {
		return 100 * float64(d) / float64(a.Total())
	}
	return fmt.Sprintf("fork stages: walk=%.1f%% share=%.1f%% refcount=%.1f%% tlb=%.1f%% (%d forks traced)",
		pct(a.Walk), pct(a.Share), pct(a.Refcount), pct(a.TLB), a.Forks)
}
