package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/failpoint"
)

// Name is the dotted event name used by both the text rendering and
// the Chrome exporter: the kind, refined by the stage where one
// applies ("fork.walk", "fault.table_copy", "reclaim.evict", ...).
func (e Event) Name() string {
	switch e.Kind {
	case KindFork:
		return "fork"
	case KindForkStage:
		switch e.Stage {
		case StageWalk:
			return "fork.walk"
		case StageShare:
			return "fork.share"
		case StageRefcount:
			return "fork.refcount"
		case StageTLB:
			return "fork.tlb"
		}
		return "fork.stage"
	case KindFault:
		switch e.Stage {
		case ResolveSegfault:
			return "fault.segfault"
		case ResolveTableCopy:
			return "fault.table_copy"
		case ResolvePMDSplit:
			return "fault.pmd_split"
		case ResolveHugeCopy:
			return "fault.huge_copy"
		case ResolvePageCopy:
			return "fault.page_copy"
		case ResolveSwapIn:
			return "fault.swap_in"
		case ResolveDedup:
			return "fault.dedup"
		case ResolveMinor:
			return "fault.minor"
		}
		return "fault"
	case KindSwapIn:
		return "swap.in"
	case KindOOMStall:
		return "fault.oom_stall"
	case KindReclaimScan:
		return "reclaim.scan"
	case KindReclaimEvict:
		return "reclaim.evict"
	case KindWriteback:
		return "reclaim.writeback"
	case KindHugeSplit:
		return "reclaim.huge_split"
	case KindKswapdWake:
		return "kswapd.wake"
	case KindAllocRefill:
		return "alloc.refill"
	case KindAllocDrain:
		return "alloc.drain"
	case KindFailpoint:
		return "failpoint"
	case KindForkAbort:
		return "fork.abort"
	case KindSwapDegrade:
		return "swap.degraded"
	case KindAdmitWait:
		return "tenant.admit_wait"
	case KindRequest:
		return "request"
	case KindAlert:
		return "alert." + AlertName(e.Arg1)
	case KindCkptWrite:
		return "ckpt.write"
	case KindCkptPageIn:
		return "ckpt.page_in"
	}
	return fmt.Sprintf("kind%d", e.Kind)
}

// Detail renders the event's arguments with kind-appropriate labels.
func (e Event) Detail() string {
	switch e.Kind {
	case KindFork:
		eng := "classic"
		if e.Arg1 == 1 {
			eng = "ondemand"
		}
		if e.Arg2 > 0 {
			return fmt.Sprintf("engine=%s tasks=%d", eng, e.Arg2)
		}
		return fmt.Sprintf("engine=%s", eng)
	case KindForkStage:
		switch e.Stage {
		case StageShare, StageRefcount:
			return fmt.Sprintf("slots=[%d,%d)", e.Arg1, e.Arg2)
		}
		return ""
	case KindFault:
		rw := "read"
		if e.Arg2 == 1 {
			rw = "write"
		}
		return fmt.Sprintf("addr=0x%x %s", e.Arg1, rw)
	case KindSwapIn, KindWriteback:
		if e.Kind == KindWriteback {
			return fmt.Sprintf("slot=%d bytes=%d", e.Arg1, e.Arg2)
		}
		return fmt.Sprintf("slot=%d", e.Arg1)
	case KindOOMStall:
		return fmt.Sprintf("retry=%d", e.Arg1)
	case KindReclaimScan:
		return fmt.Sprintf("scanned=%d freed=%d", e.Arg1, e.Arg2)
	case KindReclaimEvict:
		return fmt.Sprintf("frame=%d slot=%d", e.Arg1, e.Arg2)
	case KindHugeSplit:
		return fmt.Sprintf("head=%d", e.Arg1)
	case KindKswapdWake:
		return fmt.Sprintf("free=%d", e.Arg1)
	case KindFailpoint:
		return fmt.Sprintf("point=%s", failpoint.PointName(int(e.Arg1)))
	case KindForkAbort:
		eng := "classic"
		if e.Arg1 == 1 {
			eng = "ondemand"
		}
		return fmt.Sprintf("engine=%s", eng)
	case KindSwapDegrade:
		op := "write"
		if e.Arg1 == 1 {
			op = "read"
		}
		return fmt.Sprintf("failed_op=%s", op)
	case KindAllocRefill, KindAllocDrain:
		return fmt.Sprintf("batch=%d", e.Arg1)
	case KindAdmitWait:
		if e.Arg2 == 1 {
			return fmt.Sprintf("tenant=%d rejected", e.Arg1)
		}
		return fmt.Sprintf("tenant=%d", e.Arg1)
	case KindRequest:
		if e.Arg2 != 0 {
			return fmt.Sprintf("tenant=%d error", e.Arg1)
		}
		return fmt.Sprintf("tenant=%d", e.Arg1)
	case KindAlert:
		return fmt.Sprintf("observed=%d", e.Arg2)
	case KindCkptWrite:
		return fmt.Sprintf("pages=%d bytes=%d", e.Arg1, e.Arg2)
	case KindCkptPageIn:
		return fmt.Sprintf("addr=0x%x", e.Arg1)
	}
	return ""
}

// ActorName names a track: the app, kswapd, or a parallel-fork helper.
func ActorName(actor int32) string {
	switch {
	case actor == ActorApp:
		return "app"
	case actor == ActorKswapd:
		return "kswapd"
	case actor > 0:
		return fmt.Sprintf("fork-worker-%d", actor)
	}
	return fmt.Sprintf("actor%d", actor)
}

// sortEvents orders a timeline by timestamp, breaking ties by actor
// then kind then stage so renderings are deterministic.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Actor != b.Actor {
			return a.Actor < b.Actor
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Stage < b.Stage
	})
}

// RenderText renders the snapshot as the human-readable timeline
// served at /proc/odf/trace: one line per event — timestamp, actor,
// name, duration for spans, then the argument detail.
func RenderText(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# odf flight recorder: %d events, %d dropped\n", len(s.Events), s.Dropped)
	for _, e := range s.Events {
		fmt.Fprintf(&b, "%12.3fus %-14s %-18s", float64(e.TS)/1e3, ActorName(e.Actor), e.Name())
		if e.Kind.Span() {
			fmt.Fprintf(&b, " dur=%-10v", time.Duration(e.Dur))
		} else {
			fmt.Fprintf(&b, " %-14s", "-")
		}
		if d := e.Detail(); d != "" {
			b.WriteString(" " + d)
		}
		if e.Req != 0 {
			fmt.Fprintf(&b, " req=%d", e.Req)
		}
		b.WriteString("\n")
	}
	return b.String()
}
