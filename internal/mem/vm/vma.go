// Package vm provides virtual memory area (VMA) bookkeeping for the
// simulated kernel: the sorted set of mapped regions in an address
// space, with the split/merge mechanics that munmap, mremap and
// mprotect require.
//
// The package is pure bookkeeping — page tables are owned by package
// core, which consults the VMA set to decide, e.g., whether a shared
// last-level page table still backs another mapping of the same
// process before unmapping (§3.3 of the paper).
package vm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem/addr"
)

// Prot is the protection of a mapping.
type Prot uint8

// Protection bits.
const (
	ProtRead  Prot = 1 << iota // readable
	ProtWrite                  // writable
)

// CanRead reports whether the protection allows loads.
func (p Prot) CanRead() bool { return p&ProtRead != 0 }

// CanWrite reports whether the protection allows stores.
func (p Prot) CanWrite() bool { return p&ProtWrite != 0 }

// MapFlags selects mapping behaviour.
type MapFlags uint8

// Mapping flags.
const (
	// MapPrivate gives copy-on-write semantics across fork (the only
	// sharing mode the paper's workloads use).
	MapPrivate MapFlags = 1 << iota
	// MapHuge backs the mapping with 2 MiB pages described directly in
	// PMD entries.
	MapHuge
	// MapPopulate pre-faults every page at mmap time, so that — like the
	// paper's benchmarks, which write the buffer before forking — every
	// page is backed by a distinct physical frame.
	MapPopulate
)

// Backing supplies pages for file-backed mappings. The page cache in
// package fs implements it; anonymous VMAs have a nil Backing.
type Backing interface {
	// BackingName identifies the backing object for diagnostics.
	BackingName() string
	// PageAt returns the cached content of the 4 KiB file page at the
	// given file offset, or nil if the page is a hole (reads as zeroes).
	PageAt(off uint64) []byte
}

// FallibleBacking is implemented by backings whose page reads can fail
// — a checkpoint file whose chunk is corrupt or whose device errors.
// The fault path prefers PageAtErr when a backing provides it, so the
// error surfaces from the faulting access instead of silently reading
// as zeroes. The returned slice may be shorter than a page; the
// remainder reads as zeroes.
type FallibleBacking interface {
	Backing
	PageAtErr(off uint64) ([]byte, error)
}

// VMA is one mapped region of an address space.
type VMA struct {
	Range   addr.Range
	Prot    Prot
	Flags   MapFlags
	Backing Backing // nil for anonymous mappings
	FileOff uint64  // file offset of Range.Start for file-backed VMAs
}

// Anonymous reports whether the VMA has no file backing.
func (v *VMA) Anonymous() bool { return v.Backing == nil }

// Huge reports whether the VMA uses 2 MiB pages.
func (v *VMA) Huge() bool { return v.Flags&MapHuge != 0 }

// clone returns a copy of the VMA restricted to r, preserving the file
// offset correspondence.
func (v *VMA) clone(r addr.Range) *VMA {
	nv := *v
	nv.Range = r
	if v.Backing != nil {
		nv.FileOff = v.FileOff + uint64(r.Start-v.Range.Start)
	}
	return &nv
}

// String renders the VMA like a /proc/pid/maps line.
func (v *VMA) String() string {
	perm := "-"
	if v.Prot.CanRead() {
		perm = "r"
	}
	w := "-"
	if v.Prot.CanWrite() {
		w = "w"
	}
	name := "anon"
	if v.Backing != nil {
		name = v.Backing.BackingName()
	}
	huge := ""
	if v.Huge() {
		huge = " huge"
	}
	return fmt.Sprintf("%v %s%sp %s%s", v.Range, perm, w, name, huge)
}

// Set is an ordered, non-overlapping collection of VMAs.
type Set struct {
	vmas []*VMA // sorted by Range.Start
}

// Len returns the number of VMAs.
func (s *Set) Len() int { return len(s.vmas) }

// All returns the VMAs in address order. The slice must not be mutated.
func (s *Set) All() []*VMA { return s.vmas }

// searchIdx returns the index of the first VMA whose end is above v.
func (s *Set) searchIdx(v addr.V) int {
	return sort.Search(len(s.vmas), func(i int) bool {
		return s.vmas[i].Range.End > v
	})
}

// Find returns the VMA containing v, or nil.
func (s *Set) Find(v addr.V) *VMA {
	i := s.searchIdx(v)
	if i < len(s.vmas) && s.vmas[i].Range.Contains(v) {
		return s.vmas[i]
	}
	return nil
}

// Overlapping returns all VMAs intersecting r, in address order.
func (s *Set) Overlapping(r addr.Range) []*VMA {
	var out []*VMA
	for i := s.searchIdx(r.Start); i < len(s.vmas); i++ {
		v := s.vmas[i]
		if v.Range.Start >= r.End {
			break
		}
		if v.Range.Overlaps(r) {
			out = append(out, v)
		}
	}
	return out
}

// MapsAnyIn reports whether any part of r is mapped.
func (s *Set) MapsAnyIn(r addr.Range) bool {
	i := s.searchIdx(r.Start)
	return i < len(s.vmas) && s.vmas[i].Range.Overlaps(r)
}

// Insert adds a VMA. It returns an error if the range is empty,
// unaligned, or overlaps an existing mapping.
func (s *Set) Insert(v *VMA) error {
	if v.Range.Empty() {
		return fmt.Errorf("vm: empty range %v", v.Range)
	}
	if !v.Range.Start.PageAligned() || !v.Range.End.PageAligned() {
		return fmt.Errorf("vm: unaligned range %v", v.Range)
	}
	if s.MapsAnyIn(v.Range) {
		return fmt.Errorf("vm: range %v overlaps existing mapping", v.Range)
	}
	i := s.searchIdx(v.Range.Start)
	s.vmas = append(s.vmas, nil)
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
	return nil
}

// RemoveRange unmaps r, splitting any VMA that straddles a boundary.
// It returns the removed pieces (each a VMA whose Range lies within r)
// in address order, so the caller can tear down page tables per piece.
func (s *Set) RemoveRange(r addr.Range) []*VMA {
	var removed []*VMA
	var kept []*VMA
	i := s.searchIdx(r.Start)
	kept = append(kept, s.vmas[:i]...)
	for ; i < len(s.vmas); i++ {
		v := s.vmas[i]
		if v.Range.Start >= r.End || !v.Range.Overlaps(r) {
			kept = append(kept, s.vmas[i:]...)
			break
		}
		if v.Range.Start < r.Start {
			kept = append(kept, v.clone(addr.Range{Start: v.Range.Start, End: r.Start}))
		}
		mid := v.Range.Intersect(r)
		removed = append(removed, v.clone(mid))
		if v.Range.End > r.End {
			kept = append(kept, v.clone(addr.Range{Start: r.End, End: v.Range.End}))
		}
	}
	s.vmas = kept
	return removed
}

// Clear drops all VMAs and returns them (process teardown).
func (s *Set) Clear() []*VMA {
	out := s.vmas
	s.vmas = nil
	return out
}

// Reset empties the set while keeping its slice capacity and the VMA
// structs parked in the backing array, so a recycled set's next
// CloneInto can refill without allocating. Callers of All()/VMAs()
// must not retain the structs across a Reset — they may be
// overwritten by the set's next fill.
func (s *Set) Reset() {
	s.vmas = s.vmas[:0]
}

// Clone returns a deep copy of the set (fork duplicates the VMA list).
func (s *Set) Clone() *Set {
	out := &Set{vmas: make([]*VMA, len(s.vmas))}
	for i, v := range s.vmas {
		nv := *v
		out.vmas[i] = &nv
	}
	return out
}

// CloneInto deep-copies the set into dst, reusing dst's slice capacity
// and any VMA structs parked there by a previous Reset. The
// pool-recycled fork path uses it to duplicate the VMA list with zero
// allocations once warm.
func (s *Set) CloneInto(dst *Set) {
	n := len(s.vmas)
	if cap(dst.vmas) < n {
		dst.vmas = make([]*VMA, n)
	} else {
		dst.vmas = dst.vmas[:n]
	}
	for i, v := range s.vmas {
		if dst.vmas[i] == nil {
			dst.vmas[i] = new(VMA)
		}
		*dst.vmas[i] = *v
	}
}

// TotalBytes returns the sum of all mapped region sizes.
func (s *Set) TotalBytes() uint64 {
	var n uint64
	for _, v := range s.vmas {
		n += v.Range.Size()
	}
	return n
}

// FindGap returns the lowest page-aligned address >= hint where size
// bytes fit without overlapping any VMA, or false if the space is
// exhausted below limit.
func (s *Set) FindGap(hint addr.V, size uint64, limit addr.V) (addr.V, bool) {
	v := addr.V(addr.PageRoundUp(uint64(hint)))
	size = addr.PageRoundUp(size)
	for {
		if uint64(v)+size > uint64(limit) {
			return 0, false
		}
		r := addr.NewRange(v, size)
		i := s.searchIdx(v)
		if i >= len(s.vmas) || !s.vmas[i].Range.Overlaps(r) {
			return v, true
		}
		v = s.vmas[i].Range.End
	}
}

// String renders the whole set, one VMA per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, v := range s.vmas {
		fmt.Fprintln(&b, v)
	}
	return b.String()
}

// Validate checks internal invariants (ordering, non-overlap,
// alignment). Tests call it after mutation sequences.
func (s *Set) Validate() error {
	for i, v := range s.vmas {
		if v.Range.Empty() {
			return fmt.Errorf("vm: empty VMA at index %d", i)
		}
		if !v.Range.Start.PageAligned() || !v.Range.End.PageAligned() {
			return fmt.Errorf("vm: unaligned VMA %v", v.Range)
		}
		if i > 0 && s.vmas[i-1].Range.End > v.Range.Start {
			return fmt.Errorf("vm: overlap between %v and %v",
				s.vmas[i-1].Range, v.Range)
		}
	}
	return nil
}
