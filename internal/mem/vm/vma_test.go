package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
)

func mustInsert(t *testing.T, s *Set, start addr.V, size uint64, prot Prot) *VMA {
	t.Helper()
	v := &VMA{Range: addr.NewRange(start, size), Prot: prot, Flags: MapPrivate}
	if err := s.Insert(v); err != nil {
		t.Fatalf("Insert(%v): %v", v.Range, err)
	}
	return v
}

func TestProtBits(t *testing.T) {
	p := ProtRead | ProtWrite
	if !p.CanRead() || !p.CanWrite() {
		t.Error("prot bits broken")
	}
	if (ProtRead).CanWrite() {
		t.Error("read-only prot reports writable")
	}
}

func TestInsertAndFind(t *testing.T) {
	var s Set
	a := mustInsert(t, &s, 0x10000, 0x4000, ProtRead|ProtWrite)
	b := mustInsert(t, &s, 0x20000, 0x1000, ProtRead)
	if got := s.Find(0x11000); got != a {
		t.Errorf("Find in a = %v", got)
	}
	if got := s.Find(0x20000); got != b {
		t.Errorf("Find in b = %v", got)
	}
	if got := s.Find(0x14000); got != nil {
		t.Errorf("Find past a = %v, want nil", got)
	}
	if got := s.Find(0x8000); got != nil {
		t.Errorf("Find below = %v, want nil", got)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInsertRejections(t *testing.T) {
	var s Set
	mustInsert(t, &s, 0x10000, 0x4000, ProtRead)
	cases := []struct {
		start addr.V
		size  uint64
	}{
		{0x10000, 0x1000}, // exact overlap
		{0xe000, 0x4000},  // tail overlap
		{0x13000, 0x4000}, // head overlap
		{0x11000, 0x1000}, // contained
		{0x8000, 0x20000}, // contains
		{0x30001, 0x1000}, // unaligned start
		{0x30000, 0x1001}, // unaligned size is OK? end unaligned
		{0x40000, 0},      // empty
	}
	for _, c := range cases {
		v := &VMA{Range: addr.NewRange(c.start, c.size)}
		if err := s.Insert(v); err == nil {
			t.Errorf("Insert(%v, %#x) succeeded, want error", c.start, c.size)
		}
	}
}

func TestInsertOrdering(t *testing.T) {
	var s Set
	mustInsert(t, &s, 0x30000, 0x1000, ProtRead)
	mustInsert(t, &s, 0x10000, 0x1000, ProtRead)
	mustInsert(t, &s, 0x20000, 0x1000, ProtRead)
	all := s.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Range.Start >= all[i].Range.Start {
			t.Fatalf("set not sorted: %v", s.String())
		}
	}
}

func TestOverlapping(t *testing.T) {
	var s Set
	mustInsert(t, &s, 0x10000, 0x1000, ProtRead)
	mustInsert(t, &s, 0x12000, 0x1000, ProtRead)
	mustInsert(t, &s, 0x20000, 0x1000, ProtRead)
	got := s.Overlapping(addr.NewRange(0x10800, 0x2000))
	if len(got) != 2 {
		t.Fatalf("Overlapping = %d VMAs, want 2", len(got))
	}
	if !s.MapsAnyIn(addr.NewRange(0x10800, 0x100)) {
		t.Error("MapsAnyIn false for mapped range")
	}
	if s.MapsAnyIn(addr.NewRange(0x11000, 0x1000)) {
		t.Error("MapsAnyIn true for gap")
	}
}

func TestRemoveRangeExact(t *testing.T) {
	var s Set
	mustInsert(t, &s, 0x10000, 0x4000, ProtRead)
	removed := s.RemoveRange(addr.NewRange(0x10000, 0x4000))
	if len(removed) != 1 || removed[0].Range.Size() != 0x4000 {
		t.Fatalf("removed = %v", removed)
	}
	if s.Len() != 0 {
		t.Errorf("set not empty: %s", s.String())
	}
}

func TestRemoveRangeSplitsMiddle(t *testing.T) {
	var s Set
	v := mustInsert(t, &s, 0x10000, 0x6000, ProtRead|ProtWrite)
	v.FileOff = 0 // anonymous
	removed := s.RemoveRange(addr.NewRange(0x12000, 0x2000))
	if len(removed) != 1 {
		t.Fatalf("removed %d pieces", len(removed))
	}
	if removed[0].Range != addr.NewRange(0x12000, 0x2000) {
		t.Errorf("removed range = %v", removed[0].Range)
	}
	if s.Len() != 2 {
		t.Fatalf("split produced %d VMAs: %s", s.Len(), s.String())
	}
	left, right := s.All()[0], s.All()[1]
	if left.Range != addr.NewRange(0x10000, 0x2000) {
		t.Errorf("left = %v", left.Range)
	}
	if right.Range != addr.NewRange(0x14000, 0x2000) {
		t.Errorf("right = %v", right.Range)
	}
	if left.Prot != v.Prot || right.Prot != v.Prot {
		t.Error("split lost protection")
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

type fakeBacking struct{ name string }

func (f *fakeBacking) BackingName() string  { return f.name }
func (f *fakeBacking) PageAt(uint64) []byte { return nil }

func TestRemoveRangePreservesFileOffset(t *testing.T) {
	var s Set
	b := &fakeBacking{name: "f"}
	v := &VMA{
		Range:   addr.NewRange(0x10000, 0x6000),
		Prot:    ProtRead,
		Backing: b,
		FileOff: 0x1000,
	}
	if err := s.Insert(v); err != nil {
		t.Fatal(err)
	}
	removed := s.RemoveRange(addr.NewRange(0x12000, 0x1000))
	if got := removed[0].FileOff; got != 0x3000 {
		t.Errorf("removed FileOff = %#x, want 0x3000", got)
	}
	right := s.All()[1]
	if got := right.FileOff; got != 0x4000 {
		t.Errorf("right FileOff = %#x, want 0x4000", got)
	}
	if !v.Anonymous() == false {
		t.Error("file-backed VMA reports anonymous")
	}
}

func TestRemoveRangeAcrossMultiple(t *testing.T) {
	var s Set
	mustInsert(t, &s, 0x10000, 0x2000, ProtRead)
	mustInsert(t, &s, 0x13000, 0x2000, ProtRead)
	mustInsert(t, &s, 0x16000, 0x2000, ProtRead)
	removed := s.RemoveRange(addr.NewRange(0x11000, 0x6000))
	if len(removed) != 3 {
		t.Fatalf("removed %d pieces, want 3", len(removed))
	}
	if s.Len() != 2 {
		t.Fatalf("kept %d VMAs, want 2: %s", s.Len(), s.String())
	}
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRemoveRangeNoOverlap(t *testing.T) {
	var s Set
	mustInsert(t, &s, 0x10000, 0x1000, ProtRead)
	if removed := s.RemoveRange(addr.NewRange(0x20000, 0x1000)); len(removed) != 0 {
		t.Errorf("removed %v from gap", removed)
	}
	if s.Len() != 1 {
		t.Error("gap removal changed set")
	}
}

func TestClearAndClone(t *testing.T) {
	var s Set
	mustInsert(t, &s, 0x10000, 0x1000, ProtRead)
	mustInsert(t, &s, 0x20000, 0x2000, ProtRead|ProtWrite)
	c := s.Clone()
	if c.Len() != 2 || c.TotalBytes() != 0x3000 {
		t.Fatalf("clone wrong: %s", c.String())
	}
	// Mutating the clone must not affect the original.
	c.RemoveRange(addr.NewRange(0x10000, 0x1000))
	if s.Len() != 2 {
		t.Error("clone mutation leaked into original")
	}
	dropped := s.Clear()
	if len(dropped) != 2 || s.Len() != 0 {
		t.Error("Clear failed")
	}
}

func TestFindGap(t *testing.T) {
	var s Set
	mustInsert(t, &s, 0x10000, 0x2000, ProtRead)
	mustInsert(t, &s, 0x14000, 0x2000, ProtRead)
	got, ok := s.FindGap(0x10000, 0x2000, 0x100000)
	if !ok || got != 0x12000 {
		t.Errorf("FindGap = %#x, %v; want 0x12000", uint64(got), ok)
	}
	got, ok = s.FindGap(0x10000, 0x3000, 0x100000)
	if !ok || got != 0x16000 {
		t.Errorf("FindGap large = %#x, %v; want 0x16000", uint64(got), ok)
	}
	if _, ok := s.FindGap(0x10000, 0x1000, 0x11000); ok {
		t.Error("FindGap past limit succeeded")
	}
}

func TestVMAString(t *testing.T) {
	v := &VMA{Range: addr.NewRange(0x1000, 0x1000), Prot: ProtRead | ProtWrite, Flags: MapHuge}
	s := v.String()
	if s == "" {
		t.Error("empty VMA string")
	}
}

// Property: random insert/remove sequences keep the set valid and the
// total mapped bytes consistent.
func TestQuickSetConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		mapped := make(map[addr.V]bool) // page -> mapped
		const maxPage = 256
		for op := 0; op < 100; op++ {
			start := addr.V(rng.Intn(maxPage)) * addr.PageSize
			npages := uint64(rng.Intn(8) + 1)
			r := addr.NewRange(start, npages*addr.PageSize)
			if rng.Intn(2) == 0 {
				v := &VMA{Range: r, Prot: ProtRead}
				if err := s.Insert(v); err == nil {
					for p := r.Start; p < r.End; p += addr.PageSize {
						mapped[p] = true
					}
				}
			} else {
				s.RemoveRange(r)
				for p := r.Start; p < r.End; p += addr.PageSize {
					delete(mapped, p)
				}
			}
			if err := s.Validate(); err != nil {
				return false
			}
		}
		if s.TotalBytes() != uint64(len(mapped))*addr.PageSize {
			return false
		}
		for p := addr.V(0); p < maxPage*addr.PageSize; p += addr.PageSize {
			if (s.Find(p) != nil) != mapped[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
