// Package tlb implements a software translation lookaside buffer for
// the simulated MMU: a set-associative cache of virtual-to-physical
// translations consulted before the 4-level page walk, with the
// invalidation semantics the fork engines rely on.
//
// Correctness protocol: a TLB entry may be used only while the
// translation it caches is still valid. Local changes (a COW fault
// replacing this process's own entry, an munmap) invalidate locally.
// Changes to *shared* structures — on-demand-fork write-protecting a
// table the parent's TLB may still cache as writable — are broadcast
// as a kernel-wide shootdown generation: every TLB lazily discards its
// contents when it observes a newer generation, modelling the IPI
// shootdown broadcast of a real SMP kernel.
package tlb

import (
	"sync"
	"sync/atomic"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/metrics"
)

// Geometry of the simulated TLB (64 sets × 4 ways = 256 entries,
// a typical L2 dTLB shape).
const (
	numSets = 64
	numWays = 4
)

// Shootdown is the kernel-wide invalidation generation shared by all
// TLBs of one simulated machine.
type Shootdown struct {
	gen atomic.Uint64
}

// Broadcast invalidates every TLB attached to this Shootdown (lazily,
// at their next lookup).
func (s *Shootdown) Broadcast() { s.gen.Add(1) }

// Gen returns the current generation.
func (s *Shootdown) Gen() uint64 { return s.gen.Load() }

type entry struct {
	valid    bool
	writable bool
	dirty    bool // dirty bit already propagated to the PTE
	vpn      uint64
	frame    phys.Frame
	age      uint64 // for LRU
}

// TLB is one process's translation cache.
type TLB struct {
	mu   sync.Mutex
	sets [numSets][numWays]entry
	tick uint64
	sd   *Shootdown
	seen uint64 // last observed shootdown generation

	// Statistics.
	Hits       atomic.Uint64
	Misses     atomic.Uint64
	Flushes    atomic.Uint64
	Shootdowns atomic.Uint64
}

// New returns an empty TLB participating in the given shootdown domain
// (which may be nil for a standalone TLB).
func New(sd *Shootdown) *TLB {
	return &TLB{sd: sd}
}

// Reuse reinitializes a retired TLB for a new process in the given
// shootdown domain: every entry is dropped (without counting a flush),
// statistics and the LRU clock restart from zero, and the observed
// shootdown generation resyncs to the new domain. The address-space
// pool calls this instead of allocating a fresh TLB per fork.
func (t *TLB) Reuse(sd *Shootdown) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w] = entry{}
		}
	}
	t.tick = 0
	t.sd = sd
	t.seen = 0
	if sd != nil {
		t.seen = sd.Gen()
	}
	t.Hits.Store(0)
	t.Misses.Store(0)
	t.Flushes.Store(0)
	t.Shootdowns.Store(0)
}

func vpnOf(v addr.V) uint64 { return uint64(v) >> addr.PageShift }

func setOf(vpn uint64) int { return int(vpn % numSets) }

// syncShootdown discards everything if a broadcast happened since the
// last lookup. Caller holds mu.
func (t *TLB) syncShootdown() {
	if t.sd == nil {
		return
	}
	if g := t.sd.Gen(); g != t.seen {
		t.seen = g
		t.flushLocked()
		t.Shootdowns.Add(1)
	}
}

// Lookup returns the cached frame for v if a usable translation exists.
// A write lookup requires a writable entry whose dirty bit has already
// been propagated; otherwise the caller must take the slow path (walk +
// fault handling), which re-inserts the entry.
func (t *TLB) Lookup(v addr.V, write bool) (phys.Frame, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.syncShootdown()
	vpn := vpnOf(v)
	set := &t.sets[setOf(vpn)]
	for i := range set {
		e := &set[i]
		if !e.valid || e.vpn != vpn {
			continue
		}
		if write && (!e.writable || !e.dirty) {
			// Permission upgrade or first write: slow path must run so
			// the fault handler and dirty-bit logic see it.
			t.Misses.Add(1)
			return phys.NoFrame, false
		}
		t.tick++
		e.age = t.tick
		t.Hits.Add(1)
		return e.frame, true
	}
	t.Misses.Add(1)
	return phys.NoFrame, false
}

// Insert caches a translation after a successful walk. dirty records
// whether the access that filled the entry was a write (so later write
// hits need no dirty-bit propagation).
func (t *TLB) Insert(v addr.V, frame phys.Frame, writable, dirty bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.syncShootdown()
	vpn := vpnOf(v)
	set := &t.sets[setOf(vpn)]
	t.tick++
	// Reuse an existing slot for the same VPN or an invalid one;
	// otherwise evict the least recently used way.
	victim := 0
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].age < set[victim].age {
			victim = i
		}
	}
	set[victim] = entry{
		valid: true, writable: writable, dirty: dirty,
		vpn: vpn, frame: frame, age: t.tick,
	}
}

// FlushPage invalidates the translation for one page.
func (t *TLB) FlushPage(v addr.V) {
	t.mu.Lock()
	defer t.mu.Unlock()
	vpn := vpnOf(v)
	set := &t.sets[setOf(vpn)]
	for i := range set {
		if set[i].valid && set[i].vpn == vpn {
			set[i].valid = false
		}
	}
}

// FlushRange invalidates all translations inside r.
func (t *TLB) FlushRange(r addr.Range) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lo, hi := vpnOf(r.Start), vpnOf(r.End-1)
	if hi-lo >= numSets*numWays {
		// Cheaper to drop everything.
		t.flushLocked()
		return
	}
	for s := range t.sets {
		for w := range t.sets[s] {
			e := &t.sets[s][w]
			if e.valid && e.vpn >= lo && e.vpn <= hi {
				e.valid = false
			}
		}
	}
}

// Flush drops every entry.
func (t *TLB) Flush() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
}

func (t *TLB) flushLocked() {
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w].valid = false
		}
	}
	t.Flushes.Add(1)
}

// Entries returns the number of valid entries (tests/diagnostics).
func (t *TLB) Entries() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			if t.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// Stats returns the TLB's counters in the system-wide metrics shape.
// The TLB deliberately keeps its own per-process atomics rather than
// charging a registry on every lookup; the kernel sums live TLBs and
// folds exited ones into the registry, keeping the hot path free of
// any instrumentation branches.
func (t *TLB) Stats() metrics.TLBSnapshot {
	return metrics.TLBSnapshot{
		Hits:       t.Hits.Load(),
		Misses:     t.Misses.Load(),
		Flushes:    t.Flushes.Load(),
		Shootdowns: t.Shootdowns.Load(),
	}
}

// HitRate returns hits / (hits+misses), or 0 with no lookups.
func (t *TLB) HitRate() float64 {
	h, m := t.Hits.Load(), t.Misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
