package tlb

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
)

func TestLookupMissThenHit(t *testing.T) {
	tl := New(nil)
	v := addr.V(0x1000)
	if _, ok := tl.Lookup(v, false); ok {
		t.Fatal("hit in empty TLB")
	}
	tl.Insert(v, 42, true, false)
	f, ok := tl.Lookup(v, false)
	if !ok || f != 42 {
		t.Fatalf("Lookup = %d, %v", f, ok)
	}
	if tl.Hits.Load() != 1 || tl.Misses.Load() != 1 {
		t.Errorf("hits=%d misses=%d", tl.Hits.Load(), tl.Misses.Load())
	}
	if tl.HitRate() != 0.5 {
		t.Errorf("HitRate = %f", tl.HitRate())
	}
}

func TestWriteRequiresDirtyPropagation(t *testing.T) {
	tl := New(nil)
	v := addr.V(0x2000)
	// Entry filled by a read: write lookups must miss (dirty bit not yet
	// propagated to the PTE).
	tl.Insert(v, 7, true, false)
	if _, ok := tl.Lookup(v, true); ok {
		t.Error("write hit on clean entry")
	}
	// After the slow path re-inserts with dirty=true, writes hit.
	tl.Insert(v, 7, true, true)
	if _, ok := tl.Lookup(v, true); !ok {
		t.Error("write miss on dirty entry")
	}
	// Read-only entries never serve writes.
	tl.Insert(v, 7, false, false)
	if _, ok := tl.Lookup(v, true); ok {
		t.Error("write hit on read-only entry")
	}
}

func TestFlushVariants(t *testing.T) {
	tl := New(nil)
	for i := 0; i < 8; i++ {
		tl.Insert(addr.V(i)*addr.PageSize, phys.Frame(i+1), true, true)
	}
	if tl.Entries() != 8 {
		t.Fatalf("entries = %d", tl.Entries())
	}
	tl.FlushPage(0)
	if tl.Entries() != 7 {
		t.Errorf("after FlushPage entries = %d", tl.Entries())
	}
	tl.FlushRange(addr.NewRange(addr.PageSize, 3*addr.PageSize))
	if tl.Entries() != 4 {
		t.Errorf("after FlushRange entries = %d", tl.Entries())
	}
	tl.Flush()
	if tl.Entries() != 0 {
		t.Errorf("after Flush entries = %d", tl.Entries())
	}
	if tl.Flushes.Load() == 0 {
		t.Error("flush not counted")
	}
}

func TestFlushRangeLargeDropsAll(t *testing.T) {
	tl := New(nil)
	tl.Insert(0x5000, 9, false, false)
	tl.FlushRange(addr.NewRange(0, 1<<40))
	if tl.Entries() != 0 {
		t.Error("large-range flush left entries")
	}
}

func TestLRUEviction(t *testing.T) {
	tl := New(nil)
	// Five VPNs mapping to the same set (stride = numSets pages).
	vs := make([]addr.V, numWays+1)
	for i := range vs {
		vs[i] = addr.V(i) * numSets * addr.PageSize
		tl.Insert(vs[i], phys.Frame(i+1), false, false)
		// Touch earlier entries so the LRU victim is deterministic: entry
		// 0 is kept hottest.
		tl.Lookup(vs[0], false)
	}
	// vs[0] must still be present; exactly one of the others was evicted.
	if _, ok := tl.Lookup(vs[0], false); !ok {
		t.Error("hottest entry evicted")
	}
	present := 0
	for _, v := range vs {
		if _, ok := tl.Lookup(v, false); ok {
			present++
		}
	}
	if present != numWays {
		t.Errorf("present = %d, want %d", present, numWays)
	}
}

func TestShootdownBroadcast(t *testing.T) {
	sd := &Shootdown{}
	t1, t2 := New(sd), New(sd)
	t1.Insert(0x1000, 1, true, true)
	t2.Insert(0x2000, 2, true, true)
	sd.Broadcast()
	if _, ok := t1.Lookup(0x1000, false); ok {
		t.Error("t1 survived shootdown")
	}
	if _, ok := t2.Lookup(0x2000, false); ok {
		t.Error("t2 survived shootdown")
	}
	if t1.Shootdowns.Load() != 1 || t2.Shootdowns.Load() != 1 {
		t.Error("shootdowns not counted")
	}
	// New entries after the broadcast live normally.
	t1.Insert(0x1000, 1, true, true)
	if _, ok := t1.Lookup(0x1000, false); !ok {
		t.Error("post-shootdown insert lost")
	}
}

func TestSameVPNReplaces(t *testing.T) {
	tl := New(nil)
	tl.Insert(0x3000, 5, false, false)
	tl.Insert(0x3000, 9, true, true)
	f, ok := tl.Lookup(0x3000, true)
	if !ok || f != 9 {
		t.Errorf("replacement lookup = %d, %v", f, ok)
	}
	if tl.Entries() != 1 {
		t.Errorf("duplicate VPN entries: %d", tl.Entries())
	}
}
