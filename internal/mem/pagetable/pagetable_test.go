package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/profile"
)

func newWalker() *Walker {
	return NewWalker(phys.NewAllocator(nil), nil)
}

func TestEntryEncoding(t *testing.T) {
	e := MakeEntry(12345, FlagWritable|FlagAccessed)
	if !e.Present() {
		t.Error("made entry not present")
	}
	if !e.Writable() || !e.Accessed() {
		t.Error("flags lost")
	}
	if e.Dirty() || e.Huge() || e.COW() {
		t.Error("spurious flags")
	}
	if got := e.Frame(); got != 12345 {
		t.Errorf("Frame = %d", got)
	}
	e2 := e.With(FlagDirty).Without(FlagWritable)
	if !e2.Dirty() || e2.Writable() {
		t.Error("With/Without failed")
	}
	if e2.Frame() != 12345 {
		t.Error("With/Without clobbered frame")
	}
}

func TestEntryEncodingQuick(t *testing.T) {
	f := func(frame uint32, flags uint16) bool {
		fl := Entry(flags) & flagsMask
		e := MakeEntry(phys.Frame(frame), fl)
		return e.Frame() == phys.Frame(frame) && e.Present()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryString(t *testing.T) {
	if got := Entry(0).String(); got != "<none>" {
		t.Errorf("empty entry string = %q", got)
	}
	e := MakeEntry(7, FlagWritable|FlagCOW)
	s := e.String()
	if s == "" || s == "<none>" {
		t.Errorf("entry string = %q", s)
	}
}

func TestEnsureAndFind(t *testing.T) {
	w := newWalker()
	v := addr.V(0x7f0012345678)
	if leaf, _ := w.FindPTE(v); leaf != nil {
		t.Fatal("FindPTE before Ensure returned a table")
	}
	leaf, li := w.EnsurePTE(v)
	if leaf == nil || !leaf.IsLeaf() {
		t.Fatal("EnsurePTE returned bad table")
	}
	if li != v.Index(addr.PTE) {
		t.Errorf("leaf index = %d", li)
	}
	leaf2, li2 := w.FindPTE(v)
	if leaf2 != leaf || li2 != li {
		t.Error("FindPTE disagrees with EnsurePTE")
	}
	// Same 2 MiB region shares the leaf; next region gets a new one.
	same, _ := w.EnsurePTE(v + addr.PageSize)
	if same != leaf {
		t.Error("same-region EnsurePTE allocated a new leaf")
	}
	other, _ := w.EnsurePTE(v + addr.PTECoverage)
	if other == leaf {
		t.Error("next-region EnsurePTE reused the leaf")
	}
}

func TestFreshTableShareCountIsOne(t *testing.T) {
	alloc := phys.NewAllocator(nil)
	tbl := NewTable(alloc, addr.PTE)
	if got := tbl.ShareCount(alloc); got != 1 {
		t.Errorf("fresh table share count = %d, want 1", got)
	}
	if !alloc.IsPageTable(tbl.Frame) {
		t.Error("table frame not flagged as page table")
	}
}

func TestWalkBasic(t *testing.T) {
	w := newWalker()
	v := addr.V(0x40000000)
	if _, ok := w.Walk(v); ok {
		t.Fatal("walk of unmapped address succeeded")
	}
	frame := w.Alloc.Alloc()
	leaf, li := w.EnsurePTE(v)
	leaf.SetEntry(li, MakeEntry(frame, FlagWritable|FlagUser))
	tr, ok := w.Walk(v + 0x123)
	if !ok {
		t.Fatal("walk of mapped address failed")
	}
	if tr.Frame != frame || tr.Offset != 0x123 {
		t.Errorf("translation = %+v", tr)
	}
	if !tr.Writable {
		t.Error("writable mapping walked as read-only")
	}
	if tr.Huge {
		t.Error("4k mapping walked as huge")
	}
	if tr.Leaf != leaf || tr.LeafIndex != li {
		t.Error("leaf back-reference wrong")
	}
}

func TestWalkHierarchicalAttribute(t *testing.T) {
	// The crux of §3.2: clearing the PMD entry's writable bit must make
	// the whole 2 MiB region effectively read-only even though leaf
	// entries stay writable.
	w := newWalker()
	v := addr.V(0x40000000)
	frame := w.Alloc.Alloc()
	leaf, li := w.EnsurePTE(v)
	leaf.SetEntry(li, MakeEntry(frame, FlagWritable))
	pmd, pi := w.FindPMD(v)
	pmd.SetEntry(pi, pmd.Entry(pi).Without(FlagWritable))

	tr, ok := w.Walk(v)
	if !ok {
		t.Fatal("walk failed")
	}
	if tr.Writable {
		t.Error("PMD write-protect did not mask leaf writable bit")
	}
	if !tr.Entry.Writable() {
		t.Error("leaf entry itself lost its writable bit")
	}

	// Restoring the PMD bit restores effective permission.
	pmd.SetEntry(pi, pmd.Entry(pi).With(FlagWritable))
	tr, _ = w.Walk(v)
	if !tr.Writable {
		t.Error("restored PMD bit did not restore permission")
	}
}

func TestWalkHugePage(t *testing.T) {
	w := newWalker()
	v := addr.V(0x80000000) // 2 MiB aligned
	head := w.Alloc.AllocHuge()
	pmd, pi := w.EnsurePMD(v)
	pmd.SetEntry(pi, MakeEntry(head, FlagWritable|FlagHuge))

	tr, ok := w.Walk(v + addr.V(5*addr.PageSize+7))
	if !ok {
		t.Fatal("huge walk failed")
	}
	if !tr.Huge {
		t.Error("huge translation not flagged")
	}
	if tr.Frame != head+5 {
		t.Errorf("huge frame = %d, want %d", tr.Frame, head+5)
	}
	if tr.Offset != 7 {
		t.Errorf("offset = %d", tr.Offset)
	}
	if tr.Leaf != pmd || tr.LeafIndex != pi {
		t.Error("huge leaf back-reference wrong")
	}
}

func TestEnsurePTEUnderHugePanics(t *testing.T) {
	w := newWalker()
	v := addr.V(0x80000000)
	head := w.Alloc.AllocHuge()
	pmd, pi := w.EnsurePMD(v)
	pmd.SetEntry(pi, MakeEntry(head, FlagWritable|FlagHuge))
	defer func() {
		if recover() == nil {
			t.Error("EnsurePTE under huge mapping did not panic")
		}
	}()
	w.EnsurePTE(v)
}

func TestCopyEntriesPreservesAccessed(t *testing.T) {
	alloc := phys.NewAllocator(nil)
	prof := profile.New()
	src := NewTable(alloc, addr.PTE)
	dst := NewTable(alloc, addr.PTE)
	src.SetEntry(3, MakeEntry(99, FlagAccessed))
	dst.CopyEntriesFrom(src, prof)
	if !dst.Entry(3).Accessed() {
		t.Error("accessed bit lost in table copy")
	}
	if got := prof.Count(profile.PTCopy); got != 1 {
		t.Errorf("PTCopy count = %d", got)
	}
}

func TestCountPresent(t *testing.T) {
	alloc := phys.NewAllocator(nil)
	tbl := NewTable(alloc, addr.PTE)
	if got := tbl.PresentCount(); got != 0 {
		t.Errorf("fresh PresentCount = %d", got)
	}
	tbl.SetEntry(0, MakeEntry(1, 0))
	tbl.SetEntry(511, MakeEntry(2, 0))
	if got := tbl.PresentCount(); got != 2 {
		t.Errorf("PresentCount = %d, want 2", got)
	}
}

func TestVisitPMDs(t *testing.T) {
	w := newWalker()
	// Map three 2 MiB regions: two adjacent, one 1 GiB away.
	bases := []addr.V{0x40000000, 0x40200000, 0x80000000}
	for _, b := range bases {
		leaf, li := w.EnsurePTE(b)
		leaf.SetEntry(li, MakeEntry(w.Alloc.Alloc(), 0))
	}
	var visited []addr.V
	w.VisitPMDs(addr.NewRange(0, 1<<40), func(pmd *Table, idx int, base addr.V) {
		visited = append(visited, base)
	})
	if len(visited) != 3 {
		t.Fatalf("visited %d PMD slots, want 3: %v", len(visited), visited)
	}
	for i, b := range bases {
		if visited[i] != b {
			t.Errorf("visited[%d] = %v, want %v", i, visited[i], b)
		}
	}
}

func TestVisitPMDsSubrange(t *testing.T) {
	w := newWalker()
	for _, b := range []addr.V{0x40000000, 0x40200000, 0x40400000} {
		leaf, li := w.EnsurePTE(b)
		leaf.SetEntry(li, MakeEntry(w.Alloc.Alloc(), 0))
	}
	var n int
	w.VisitPMDs(addr.NewRange(0x40200000, addr.PTECoverage), func(*Table, int, addr.V) { n++ })
	if n != 1 {
		t.Errorf("subrange visited %d slots, want 1", n)
	}
}

func TestVisitLeafTablesSkipsHuge(t *testing.T) {
	w := newWalker()
	// One 4k-mapped region and one huge region.
	leaf, li := w.EnsurePTE(0x40000000)
	leaf.SetEntry(li, MakeEntry(w.Alloc.Alloc(), 0))
	head := w.Alloc.AllocHuge()
	pmd, pi := w.EnsurePMD(0x40200000)
	pmd.SetEntry(pi, MakeEntry(head, FlagWritable|FlagHuge))

	var leaves int
	w.VisitLeafTables(addr.NewRange(0x40000000, 2*addr.PTECoverage),
		func(pmd *Table, idx int, l *Table, base addr.V) {
			leaves++
			if l != leaf {
				t.Error("unexpected leaf")
			}
		})
	if leaves != 1 {
		t.Errorf("visited %d leaves, want 1", leaves)
	}
}

func TestWalkMissingIntermediate(t *testing.T) {
	w := newWalker()
	// Build only down to PMD without leaf; Walk must fail cleanly.
	pmd, pi := w.EnsurePMD(0x40000000)
	_ = pmd
	_ = pi
	if _, ok := w.Walk(0x40000000); ok {
		t.Error("walk without leaf table succeeded")
	}
}

func TestSetChildClear(t *testing.T) {
	alloc := phys.NewAllocator(nil)
	parent := NewTable(alloc, addr.PMD)
	child := NewTable(alloc, addr.PTE)
	parent.SetChild(4, child, FlagWritable)
	if parent.Child(4) != child || !parent.Entry(4).Present() {
		t.Fatal("SetChild failed")
	}
	if parent.Entry(4).Frame() != child.Frame {
		t.Error("child entry frame mismatch")
	}
	parent.SetChild(4, nil, 0)
	if parent.Child(4) != nil || parent.Entry(4).Present() {
		t.Error("SetChild(nil) did not clear")
	}
}

func TestVisitPMDsAcrossPGDGap(t *testing.T) {
	// Two mapped regions in different PGD entries (512 GiB apart) with
	// nothing between: the visitor must find both and skip the gap.
	w := newWalker()
	a := addr.V(0x10_0000_0000) // PGD entry 0
	b := addr.V(addr.PUDCoverage + 0x2000_0000)
	for _, v := range []addr.V{a, b} {
		leaf, li := w.EnsurePTE(v)
		leaf.SetEntry(li, MakeEntry(w.Alloc.Alloc(), 0))
	}
	var visited []addr.V
	w.VisitPMDs(addr.NewRange(0, 2*addr.PUDCoverage), func(pmd *Table, idx int, base addr.V) {
		visited = append(visited, base)
	})
	if len(visited) != 2 {
		t.Fatalf("visited = %v", visited)
	}
	if visited[0] != a.HugeBase() || visited[1] != b.HugeBase() {
		t.Errorf("visited = %v", visited)
	}
}

func TestWalkerFindPUDAndEnsurePUD(t *testing.T) {
	w := newWalker()
	v := addr.V(0x40000000)
	if pud, _ := w.FindPUD(v); pud != nil {
		t.Fatal("FindPUD before ensure returned table")
	}
	pud, pi := w.EnsurePUD(v)
	if pud == nil || pud.Level != addr.PUD {
		t.Fatalf("EnsurePUD level = %v", pud.Level)
	}
	fpud, fpi := w.FindPUD(v)
	if fpud != pud || fpi != pi {
		t.Error("FindPUD disagrees with EnsurePUD")
	}
	if pi != v.Index(addr.PUD) {
		t.Errorf("index = %d", pi)
	}
}

// TestPresentHugeCounts drives every entry-mutation path and checks
// the maintained tallies against a full rescan, including a
// randomized sequence (the counts back the O(1) hugeOnly and the
// parallel-fork threshold, so drift would silently change fork
// behaviour).
func TestPresentHugeCounts(t *testing.T) {
	rescan := func(tb *Table) (present, huge int) {
		for i := 0; i < addr.EntriesPerTable; i++ {
			e := tb.Entry(i)
			if e.Present() {
				present++
			}
			if e.Huge() {
				huge++
			}
		}
		return
	}
	check := func(tb *Table, what string) {
		t.Helper()
		p, h := rescan(tb)
		if tb.PresentCount() != p || tb.HugeCount() != h {
			t.Fatalf("%s: counts (%d,%d) != rescan (%d,%d)",
				what, tb.PresentCount(), tb.HugeCount(), p, h)
		}
	}

	alloc := phys.NewAllocator(nil)
	tb := NewTable(alloc, addr.PMD)
	tb.SetEntry(0, MakeEntry(100, FlagWritable))
	check(tb, "set")
	tb.SetEntry(0, MakeEntry(100, FlagWritable|FlagHuge))
	check(tb, "set huge over plain")
	tb.SetEntry(0, 0)
	check(tb, "clear")
	tb.SetChild(1, NewTable(alloc, addr.PTE), FlagWritable)
	check(tb, "set child")
	tb.SetChild(1, nil, 0)
	check(tb, "clear child")
	tb.SetEntry(2, MakeEntry(5, 0))
	tb.OrEntry(2, FlagAccessed|FlagDirty)
	check(tb, "or flags")
	tb.OrEntry(3, FlagHuge) // Or onto an empty slot still tallies
	check(tb, "or huge on empty")

	src := NewTable(alloc, addr.PMD)
	for i := 0; i < 40; i++ {
		src.SetEntry(i*3, MakeEntry(phys.Frame(200+i), FlagHuge))
	}
	tb.CopyEntriesFrom(src, nil)
	check(tb, "copy entries")

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		slot := rng.Intn(addr.EntriesPerTable)
		switch rng.Intn(4) {
		case 0:
			tb.SetEntry(slot, MakeEntry(phys.Frame(rng.Intn(1000)+1), Entry(rng.Intn(1<<10))))
		case 1:
			tb.SetEntry(slot, 0)
		case 2:
			tb.OrEntry(slot, Entry(rng.Intn(1<<10)))
		case 3:
			tb.CopyEntriesFrom(src, nil)
		}
	}
	check(tb, "randomized")
}
