package pagetable

import (
	"sync"
	"sync/atomic"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/profile"
)

// Table is one node of the paging hierarchy. Every table is backed by a
// physical frame so that page-table memory is visible to the allocator
// statistics and so the last-level share counter can live in the
// frame's struct page, as in the paper's implementation (§4).
//
// Non-leaf tables carry Go pointers to their children alongside the
// architectural entries; the entry for a child slot stores permission
// bits (notably the writable bit that on-demand-fork clears to
// write-protect an entire shared PTE table's 2 MiB region).
type Table struct {
	Level addr.Level
	Frame phys.Frame

	mu       sync.Mutex
	entries  [addr.EntriesPerTable]atomic.Uint64
	children [addr.EntriesPerTable]*Table // non-leaf levels only

	// present, huge, and swapped count entries carrying FlagPresent /
	// FlagHuge / swap encodings. They are maintained by every entry
	// mutation so that fork-time predicates (hugeOnly, the parallel-fork
	// slot threshold) and table-emptiness checks are O(1) instead of
	// rescanning all 512 slots.
	present atomic.Int32
	huge    atomic.Int32
	swapped atomic.Int32
}

// tablePool recycles Table nodes across fork/teardown cycles. A Table
// is ~8 KiB of entry words and child pointers; without pooling every
// classic fork allocates one per duplicated table and every teardown
// garbage-collects them, which dominates the fork path's allocs/op.
// Tables enter the pool through Recycle, which guarantees they come
// back out clean (all entries zero, children nil, tallies zero).
var tablePool = sync.Pool{New: func() any { return new(Table) }}

// NewTable allocates a table of the given level, backed by a fresh
// page-table frame whose share counter starts at one (§3.5: "the
// reference counter ... is initialized to one in the constructor").
// The node itself comes from the table pool.
func NewTable(alloc *phys.Allocator, level addr.Level) *Table {
	return NewTableFor(alloc, level, nil)
}

// NewTableFor is NewTable charging the backing frame to c — the tenant
// account of the address space growing its hierarchy (nil = none).
func NewTableFor(alloc *phys.Allocator, level addr.Level, c phys.FrameCharger) *Table {
	f := alloc.AllocPageTableFor(c)
	alloc.PTShareInit(f, 1)
	t := tablePool.Get().(*Table)
	t.Level = level
	t.Frame = f
	return t
}

// TryNewTableNoReclaim is NewTable without the direct-reclaim retry on
// allocation failure. The reclaim subsystem uses it to allocate the
// leaf table of a huge-page split from inside a reclaim pass, where
// recursing into reclaim would self-deadlock.
func TryNewTableNoReclaim(alloc *phys.Allocator, level addr.Level) (*Table, error) {
	f, err := alloc.TryAllocPageTableNoReclaim()
	if err != nil {
		return nil, err
	}
	alloc.PTShareInit(f, 1)
	t := tablePool.Get().(*Table)
	t.Level = level
	t.Frame = f
	return t, nil
}

// Recycle returns the node to the table pool. The caller must have
// released the backing frame and hold the last reference: no other
// address space may share the table (share count reached zero) and any
// reclaim-side rmap state must already be purged (TableFreed). Entries
// are cleared with conditional stores — free paths have usually zeroed
// them one by one already, so the common case is 512 plain loads.
func (t *Table) Recycle() {
	for i := range t.entries {
		if t.entries[i].Load() != 0 {
			t.entries[i].Store(0)
		}
		if t.children[i] != nil {
			t.children[i] = nil
		}
	}
	if t.present.Load() != 0 {
		t.present.Store(0)
	}
	if t.huge.Load() != 0 {
		t.huge.Store(0)
	}
	if t.swapped.Load() != 0 {
		t.swapped.Store(0)
	}
	t.Frame = 0
	tablePool.Put(t)
}

// Lock acquires the table's lock (the analogue of the kernel's
// per-page-table spinlock).
func (t *Table) Lock() { t.mu.Lock() }

// Unlock releases the table's lock.
func (t *Table) Unlock() { t.mu.Unlock() }

// Entry returns the entry at index i. Entries are read atomically
// because last-level tables are shared between concurrently running
// simulated processes, just as hardware PTE reads are atomic words.
func (t *Table) Entry(i int) Entry { return Entry(t.entries[i].Load()) }

// SetEntry stores the entry at index i atomically and keeps the
// present/huge counts in sync with the old and new entry bits.
func (t *Table) SetEntry(i int, e Entry) {
	old := Entry(t.entries[i].Swap(uint64(e)))
	t.adjustCounts(old, e)
}

// OrEntry atomically sets flag bits on the entry at index i — the
// simulated CPU uses it for accessed/dirty bit updates.
func (t *Table) OrEntry(i int, flags Entry) {
	old := Entry(t.entries[i].Or(uint64(flags & flagsMask)))
	t.adjustCounts(old, old|(flags&flagsMask))
}

// ClearEntryFlags atomically clears flag bits on the entry at index i.
// Only bits that do not participate in the maintained tallies may be
// cleared this way (accessed/dirty — the second-chance aging bits);
// clearing present/huge/swap bits must go through SetEntry.
func (t *Table) ClearEntryFlags(i int, flags Entry) {
	if flags&(FlagPresent|FlagHuge|FlagSwapped) != 0 {
		panic("pagetable: ClearEntryFlags on a tallied bit")
	}
	t.entries[i].And(uint64(^(flags & flagsMask)))
}

// adjustCounts updates the present/huge/swapped tallies for an old→new
// entry transition.
func (t *Table) adjustCounts(old, new Entry) {
	if old.Present() != new.Present() {
		if new.Present() {
			t.present.Add(1)
		} else {
			t.present.Add(-1)
		}
	}
	if old.Huge() != new.Huge() {
		if new.Huge() {
			t.huge.Add(1)
		} else {
			t.huge.Add(-1)
		}
	}
	if old.Swapped() != new.Swapped() {
		if new.Swapped() {
			t.swapped.Add(1)
		} else {
			t.swapped.Add(-1)
		}
	}
}

// Child returns the child table at index i (nil for leaf tables or
// empty slots).
func (t *Table) Child(i int) *Table { return t.children[i] }

// SetChild installs child at index i with the given entry flags. A nil
// child clears the slot.
func (t *Table) SetChild(i int, child *Table, flags Entry) {
	t.children[i] = child
	if child == nil {
		t.SetEntry(i, 0)
		return
	}
	t.SetEntry(i, MakeEntry(child.Frame, flags))
}

// IsLeaf reports whether this is a last-level (PTE) table.
func (t *Table) IsLeaf() bool { return t.Level == addr.PTE }

// ShareCount returns the share counter of a last-level table, read from
// its backing frame's struct page union.
func (t *Table) ShareCount(alloc *phys.Allocator) int32 {
	return alloc.PTShareCount(t.Frame)
}

// PresentCount returns the number of present entries. It reads the
// maintained tally, so it is O(1).
func (t *Table) PresentCount() int { return int(t.present.Load()) }

// HugeCount returns the number of entries carrying FlagHuge.
func (t *Table) HugeCount() int { return int(t.huge.Load()) }

// SwapCount returns the number of swap entries. A table is only truly
// empty (eligible for teardown) when PresentCount and SwapCount are
// both zero, since swap entries still hold references to swap slots.
func (t *Table) SwapCount() int { return int(t.swapped.Load()) }

// TallyDelta accumulates present/huge/swapped transitions so that a
// bulk mutation can apply them to the table's atomic tallies in one
// add per counter instead of one per entry. The batching matters under
// parallel fork, where workers filling disjoint ranges of the same
// child table would otherwise serialize on the tally cache lines.
type TallyDelta struct {
	Present, Huge, Swapped int32
}

// Note records an old→new entry transition.
func (d *TallyDelta) Note(old, new Entry) {
	if old.Present() != new.Present() {
		if new.Present() {
			d.Present++
		} else {
			d.Present--
		}
	}
	if old.Huge() != new.Huge() {
		if new.Huge() {
			d.Huge++
		} else {
			d.Huge--
		}
	}
	if old.Swapped() != new.Swapped() {
		if new.Swapped() {
			d.Swapped++
		} else {
			d.Swapped--
		}
	}
}

// SetEntryDeferTally stores the entry at index i, recording the tally
// transition in d instead of touching the shared atomic counters. The
// caller must FlushTally(d) before anyone reads the tallies.
func (t *Table) SetEntryDeferTally(i int, e Entry, d *TallyDelta) {
	old := Entry(t.entries[i].Swap(uint64(e)))
	d.Note(old, e)
}

// SetChildDeferTally is SetChild with the tally transition deferred
// into d, for bulk fork-time fills.
func (t *Table) SetChildDeferTally(i int, child *Table, flags Entry, d *TallyDelta) {
	t.children[i] = child
	if child == nil {
		t.SetEntryDeferTally(i, 0, d)
		return
	}
	t.SetEntryDeferTally(i, MakeEntry(child.Frame, flags), d)
}

// FlushTally applies an accumulated delta to the atomic tallies.
func (t *Table) FlushTally(d TallyDelta) {
	if d.Present != 0 {
		t.present.Add(d.Present)
	}
	if d.Huge != 0 {
		t.huge.Add(d.Huge)
	}
	if d.Swapped != 0 {
		t.swapped.Add(d.Swapped)
	}
}

// CopyEntriesFrom copies all 512 architectural entries of src into t,
// preserving accessed bits (§3.2: the accessed bit value is duplicated
// when copying shared page tables). It is the bulk work of a PTE-table
// copy-on-write split and charges the corresponding profile counter.
// Tally updates are batched: three atomic adds per table instead of up
// to three per entry.
func (t *Table) CopyEntriesFrom(src *Table, prof *profile.Profiler) {
	prof.Charge(profile.PTCopy, 1)
	var d TallyDelta
	for i := range t.entries {
		ne := Entry(src.entries[i].Load())
		old := Entry(t.entries[i].Swap(uint64(ne)))
		d.Note(old, ne)
	}
	t.FlushTally(d)
}

// Walker navigates the hierarchy rooted at a PGD table.
type Walker struct {
	Root  *Table
	Alloc *phys.Allocator
	Prof  *profile.Profiler
	// Charger is the tenant account tables allocated by the Ensure*
	// walks are charged to (nil = unaccounted).
	Charger phys.FrameCharger
}

// NewWalker returns a walker over a fresh 4-level hierarchy.
func NewWalker(alloc *phys.Allocator, prof *profile.Profiler) *Walker {
	return &Walker{
		Root:  NewTable(alloc, addr.PGD),
		Alloc: alloc,
		Prof:  prof,
	}
}

// EnsurePMD walks to (allocating as needed) the PMD table covering v
// and returns it with the PMD-level index of v.
func (w *Walker) EnsurePMD(v addr.V) (*Table, int) {
	t := w.Root
	for lvl := addr.PGD; lvl < addr.PMD; lvl++ {
		i := v.Index(lvl)
		child := t.Child(i)
		if child == nil {
			child = NewTableFor(w.Alloc, lvl+1, w.Charger)
			t.SetChild(i, child, FlagWritable|FlagUser)
		}
		w.Prof.Charge(profile.UpperWalk, 1)
		t = child
	}
	return t, v.Index(addr.PMD)
}

// EnsurePTE walks to (allocating as needed) the last-level table
// covering v and returns it with the PTE-level index of v. It must not
// be used on ranges mapped with huge pages.
func (w *Walker) EnsurePTE(v addr.V) (*Table, int) {
	pmd, pi := w.EnsurePMD(v)
	leaf := pmd.Child(pi)
	if leaf == nil {
		if pmd.Entry(pi).Huge() {
			panic("pagetable: EnsurePTE under a huge mapping")
		}
		leaf = NewTableFor(w.Alloc, addr.PTE, w.Charger)
		pmd.SetChild(pi, leaf, FlagWritable|FlagUser)
	}
	w.Prof.Charge(profile.UpperWalk, 1)
	return leaf, v.Index(addr.PTE)
}

// EnsurePUD walks to (allocating as needed) the PUD table covering v
// and returns it with the PUD-level index of v.
func (w *Walker) EnsurePUD(v addr.V) (*Table, int) {
	i := v.Index(addr.PGD)
	child := w.Root.Child(i)
	if child == nil {
		child = NewTableFor(w.Alloc, addr.PUD, w.Charger)
		w.Root.SetChild(i, child, FlagWritable|FlagUser)
	}
	w.Prof.Charge(profile.UpperWalk, 1)
	return child, v.Index(addr.PUD)
}

// FindPMD walks to the PMD table covering v without allocating.
// It returns nil when any level is missing.
func (w *Walker) FindPMD(v addr.V) (*Table, int) {
	t := w.Root
	for lvl := addr.PGD; lvl < addr.PMD; lvl++ {
		t = t.Child(v.Index(lvl))
		if t == nil {
			return nil, 0
		}
	}
	return t, v.Index(addr.PMD)
}

// FindPUD walks to the PUD table covering v without allocating, with
// the PUD-level index of v. It returns nil when the path is missing.
func (w *Walker) FindPUD(v addr.V) (*Table, int) {
	t := w.Root.Child(v.Index(addr.PGD))
	if t == nil {
		return nil, 0
	}
	return t, v.Index(addr.PUD)
}

// FindPTE walks to the last-level table covering v without allocating.
func (w *Walker) FindPTE(v addr.V) (*Table, int) {
	pmd, pi := w.FindPMD(v)
	if pmd == nil {
		return nil, 0
	}
	leaf := pmd.Child(pi)
	if leaf == nil {
		return nil, 0
	}
	return leaf, v.Index(addr.PTE)
}

// Translation is the result of a software page walk.
type Translation struct {
	Entry    Entry      // the leaf (PTE or huge-PMD) entry
	Frame    phys.Frame // base frame of the 4 KiB page containing v
	Offset   int        // byte offset within that 4 KiB frame
	Writable bool       // effective permission (ANDed along the walk)
	Huge     bool       // translation came from a huge PMD entry
	// Leaf table and index, for fault handlers that need to update the
	// entry in place. For huge translations Leaf is the PMD table.
	Leaf      *Table
	LeafIndex int
	// PMD table and index covering v (always set when found).
	PMDTable *Table
	PMDIndex int
	// PUD table and index covering v, for faults that must split a
	// shared PMD table (on-demand-fork's huge-page extension).
	PUDTable *Table
	PUDIndex int
}

// Walk performs a software page walk for v, honoring hierarchical
// attributes: the effective writable permission is the AND of writable
// bits at every level, so a cleared PMD-entry writable bit (the
// on-demand-fork write-protect) masks writable leaf entries below it.
// It returns ok=false when no translation exists.
func (w *Walker) Walk(v addr.V) (Translation, bool) {
	t := w.Root
	writable := true
	var pudT *Table
	var pudI int
	for lvl := addr.PGD; lvl < addr.PMD; lvl++ {
		i := v.Index(lvl)
		e := t.Entry(i)
		if !e.Present() {
			return Translation{}, false
		}
		writable = writable && e.Writable()
		if lvl == addr.PUD {
			pudT, pudI = t, i
		}
		t = t.Child(i)
		if t == nil {
			return Translation{}, false
		}
	}
	pi := v.Index(addr.PMD)
	pe := t.Entry(pi)
	if !pe.Present() {
		return Translation{}, false
	}
	if pe.Huge() {
		head := pe.Frame()
		pageIdx := phys.Frame(v.HugeOffset() >> addr.PageShift)
		return Translation{
			Entry:     pe,
			Frame:     head + pageIdx,
			Offset:    v.PageOffset(),
			Writable:  writable && pe.Writable(),
			Huge:      true,
			Leaf:      t,
			LeafIndex: pi,
			PMDTable:  t,
			PMDIndex:  pi,
			PUDTable:  pudT,
			PUDIndex:  pudI,
		}, true
	}
	writable = writable && pe.Writable()
	leaf := t.Child(pi)
	if leaf == nil {
		return Translation{}, false
	}
	li := v.Index(addr.PTE)
	le := leaf.Entry(li)
	if !le.Present() {
		return Translation{}, false
	}
	return Translation{
		Entry:     le,
		Frame:     le.Frame(),
		Offset:    v.PageOffset(),
		Writable:  writable && le.Writable(),
		Huge:      false,
		Leaf:      leaf,
		LeafIndex: li,
		PMDTable:  t,
		PMDIndex:  pi,
		PUDTable:  pudT,
		PUDIndex:  pudI,
	}, true
}

// VisitPMDs calls fn for every present PMD slot intersecting r, passing
// the PMD table, the slot index, and the 2 MiB-aligned base address the
// slot covers. fn may modify the slot. Missing upper levels are skipped.
func (w *Walker) VisitPMDs(r addr.Range, fn func(pmd *Table, idx int, base addr.V)) {
	start := r.Start.HugeBase()
	for v := start; v < r.End; v += addr.PTECoverage {
		pmd, pi := w.FindPMD(v)
		if pmd == nil {
			// Skip the remainder of this missing upper-level span.
			v = skipToNextPresent(v, r.End)
			continue
		}
		if pmd.Entry(pi).Present() {
			fn(pmd, pi, v)
		}
	}
}

// skipToNextPresent advances v to the next PMD-table boundary minus one
// step, so the VisitPMDs loop increment lands on the next 1 GiB region.
func skipToNextPresent(v addr.V, end addr.V) addr.V {
	next := (v &^ addr.V(addr.PMDCoverage-1)) + addr.PMDCoverage
	if next > end {
		next = end
	}
	return next - addr.PTECoverage
}

// VisitLeafTables calls fn for every present last-level table
// intersecting r (huge PMD slots are skipped; use VisitPMDs for those).
func (w *Walker) VisitLeafTables(r addr.Range, fn func(pmd *Table, idx int, leaf *Table, base addr.V)) {
	w.VisitPMDs(r, func(pmd *Table, idx int, base addr.V) {
		if pmd.Entry(idx).Huge() {
			return
		}
		if leaf := pmd.Child(idx); leaf != nil {
			fn(pmd, idx, leaf, base)
		}
	})
}
