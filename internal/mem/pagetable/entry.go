// Package pagetable implements the simulated hierarchical paging
// structure: 4-level radix tables (PGD, PUD, PMD, PTE) with 512 entries
// per level, 4 KiB base pages and 2 MiB huge pages described directly
// in PMD entries, exactly as on x86-64.
//
// The package provides the mechanical layer — entry encoding, table
// allocation, walks, and per-table locking. Fork semantics (classic
// copy, huge-page copy, and on-demand last-level sharing) live in
// package core, which manipulates these tables under the rules of the
// paper.
//
// Hierarchical attributes (§3.2 of the paper) are honored by the
// software walker: the effective write permission of a translation is
// the AND of the writable bits along the walk, so clearing a single
// PMD entry's writable bit write-protects the whole 2 MiB region
// mapped by the PTE table below it.
package pagetable

import (
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
)

// Entry is a page-table entry at any level, encoded like an x86-64 PTE:
// low flag bits plus a frame number in the address bits.
type Entry uint64

// Entry flag bits.
const (
	FlagPresent  Entry = 1 << 0 // translation exists
	FlagWritable Entry = 1 << 1 // hardware write permission
	FlagUser     Entry = 1 << 2 // user-mode accessible
	FlagAccessed Entry = 1 << 5 // set by the (simulated) CPU on access
	FlagDirty    Entry = 1 << 6 // set by the (simulated) CPU on write
	FlagHuge     Entry = 1 << 7 // PMD entry maps a 2 MiB page directly
	FlagCOW      Entry = 1 << 9 // software: write fault must copy the page
	// FlagSwapped marks a non-present PTE whose frame bits hold a swap
	// slot number instead of a frame — the swap-entry encoding real
	// kernels use for reclaimed anonymous pages. A swapped entry keeps
	// the protection bits (writable/user/COW) of the mapping it
	// replaced, so swap-in can restore them exactly.
	FlagSwapped Entry = 1 << 10

	frameShift       = addr.PageShift
	flagsMask  Entry = (1 << frameShift) - 1
	frameMask        = ^flagsMask
)

// MakeEntry builds an entry pointing at frame f with the given flag bits
// (FlagPresent is implied).
func MakeEntry(f phys.Frame, flags Entry) Entry {
	return Entry(uint64(f)<<frameShift) | (flags & flagsMask) | FlagPresent
}

// MakeSwapEntry encodes a swap-out of the mapping `from`: a non-present
// entry carrying slot in the frame bits and the protection-relevant
// flags of the original mapping (accessed/dirty state is deliberately
// dropped — the page is leaving memory).
func MakeSwapEntry(slot uint64, from Entry) Entry {
	keep := from & (FlagWritable | FlagUser | FlagCOW)
	return Entry(slot<<frameShift) | keep | FlagSwapped
}

// Swapped reports whether the entry is a swap entry (non-present, frame
// bits hold a swap slot).
func (e Entry) Swapped() bool { return e&FlagSwapped != 0 && e&FlagPresent == 0 }

// SwapSlot returns the swap slot number of a swapped entry.
func (e Entry) SwapSlot() uint64 { return uint64(e) >> frameShift }

// SwapRestore builds the present entry a swap-in installs: frame f with
// the protection flags the swap entry preserved, marked accessed.
func (e Entry) SwapRestore(f phys.Frame) Entry {
	keep := e & (FlagWritable | FlagUser | FlagCOW)
	return MakeEntry(f, keep|FlagAccessed)
}

// Present reports whether the entry holds a translation.
func (e Entry) Present() bool { return e&FlagPresent != 0 }

// Writable reports the entry's hardware write-permission bit.
func (e Entry) Writable() bool { return e&FlagWritable != 0 }

// Accessed reports the accessed bit.
func (e Entry) Accessed() bool { return e&FlagAccessed != 0 }

// Dirty reports the dirty bit.
func (e Entry) Dirty() bool { return e&FlagDirty != 0 }

// Huge reports whether a PMD entry maps a 2 MiB page directly.
func (e Entry) Huge() bool { return e&FlagHuge != 0 }

// COW reports the software copy-on-write bit.
func (e Entry) COW() bool { return e&FlagCOW != 0 }

// Frame returns the physical frame number the entry points at.
func (e Entry) Frame() phys.Frame { return phys.Frame(uint64(e) >> frameShift) }

// With returns the entry with the given flags set.
func (e Entry) With(flags Entry) Entry { return e | (flags & flagsMask) }

// Without returns the entry with the given flags cleared.
func (e Entry) Without(flags Entry) Entry { return e &^ (flags & flagsMask) }

// String renders the entry for diagnostics.
func (e Entry) String() string {
	if !e.Present() {
		return "<none>"
	}
	s := fmt.Sprintf("frame=%d", e.Frame())
	for _, f := range []struct {
		bit  Entry
		name string
	}{
		{FlagWritable, "W"}, {FlagUser, "U"}, {FlagAccessed, "A"},
		{FlagDirty, "D"}, {FlagHuge, "H"}, {FlagCOW, "C"},
	} {
		if e&f.bit != 0 {
			s += "," + f.name
		}
	}
	return s
}
