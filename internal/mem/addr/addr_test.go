package addr

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if PageSize != 4096 {
		t.Errorf("PageSize = %d, want 4096", PageSize)
	}
	if EntriesPerTable != 512 {
		t.Errorf("EntriesPerTable = %d, want 512", EntriesPerTable)
	}
	if HugePageSize != 2<<20 {
		t.Errorf("HugePageSize = %d, want 2MiB", HugePageSize)
	}
	if PTECoverage != 2<<20 {
		t.Errorf("PTECoverage = %d, want 2MiB", PTECoverage)
	}
	if PMDCoverage != 1<<30 {
		t.Errorf("PMDCoverage = %d, want 1GiB", PMDCoverage)
	}
	if PUDCoverage != 512<<30 {
		t.Errorf("PUDCoverage = %d, want 512GiB", PUDCoverage)
	}
	if VirtBits != 48 {
		t.Errorf("VirtBits = %d, want 48", VirtBits)
	}
}

func TestLevelString(t *testing.T) {
	want := map[Level]string{PGD: "PGD", PUD: "PUD", PMD: "PMD", PTE: "PTE"}
	for l, s := range want {
		if got := l.String(); got != s {
			t.Errorf("Level(%d).String() = %q, want %q", int(l), got, s)
		}
	}
	if got := Level(9).String(); got != "Level(9)" {
		t.Errorf("invalid level string = %q", got)
	}
}

func TestLevelCoverage(t *testing.T) {
	if PGD.Coverage() != PUDCoverage {
		t.Errorf("PGD coverage = %d", PGD.Coverage())
	}
	if PUD.Coverage() != PMDCoverage {
		t.Errorf("PUD coverage = %d", PUD.Coverage())
	}
	if PMD.Coverage() != PTECoverage {
		t.Errorf("PMD coverage = %d", PMD.Coverage())
	}
	if PTE.Coverage() != PageSize {
		t.Errorf("PTE coverage = %d", PTE.Coverage())
	}
}

func TestIndexDecomposition(t *testing.T) {
	// A hand-built address: PGD=1, PUD=2, PMD=3, PTE=4, offset=5.
	v := V(uint64(1)<<39 | uint64(2)<<30 | uint64(3)<<21 | uint64(4)<<12 | 5)
	if got := v.Index(PGD); got != 1 {
		t.Errorf("PGD index = %d, want 1", got)
	}
	if got := v.Index(PUD); got != 2 {
		t.Errorf("PUD index = %d, want 2", got)
	}
	if got := v.Index(PMD); got != 3 {
		t.Errorf("PMD index = %d, want 3", got)
	}
	if got := v.Index(PTE); got != 4 {
		t.Errorf("PTE index = %d, want 4", got)
	}
	if got := v.PageOffset(); got != 5 {
		t.Errorf("PageOffset = %d, want 5", got)
	}
}

func TestIndexReconstruction(t *testing.T) {
	// Property: indices + offset reconstruct the address, for any
	// canonical 48-bit address.
	f := func(raw uint64) bool {
		v := V(raw % VirtSize)
		rebuilt := uint64(v.Index(PGD))<<39 |
			uint64(v.Index(PUD))<<30 |
			uint64(v.Index(PMD))<<21 |
			uint64(v.Index(PTE))<<12 |
			uint64(v.PageOffset())
		return rebuilt == uint64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignmentHelpers(t *testing.T) {
	v := V(0x40201234)
	if got := v.PageBase(); got != 0x40201000 {
		t.Errorf("PageBase = %#x", uint64(got))
	}
	if got := v.HugeBase(); got != 0x40200000 {
		t.Errorf("HugeBase = %#x", uint64(got))
	}
	if v.PageAligned() {
		t.Error("unaligned address reported page-aligned")
	}
	if !V(0x1000).PageAligned() {
		t.Error("0x1000 not page-aligned")
	}
	if !V(0x200000).HugeAligned() {
		t.Error("2MiB not huge-aligned")
	}
	if got := v.HugeOffset(); got != 0x1234 {
		t.Errorf("HugeOffset = %#x", got)
	}
}

func TestRounding(t *testing.T) {
	cases := []struct {
		n, up, down uint64
	}{
		{0, 0, 0},
		{1, PageSize, 0},
		{PageSize, PageSize, PageSize},
		{PageSize + 1, 2 * PageSize, PageSize},
	}
	for _, c := range cases {
		if got := PageRoundUp(c.n); got != c.up {
			t.Errorf("PageRoundUp(%d) = %d, want %d", c.n, got, c.up)
		}
		if got := PageRoundDown(c.n); got != c.down {
			t.Errorf("PageRoundDown(%d) = %d, want %d", c.n, got, c.down)
		}
	}
	if got := Pages(1); got != 1 {
		t.Errorf("Pages(1) = %d", got)
	}
	if got := Pages(PageSize*3 + 1); got != 4 {
		t.Errorf("Pages = %d, want 4", got)
	}
	if got := HugePages(HugePageSize + 1); got != 2 {
		t.Errorf("HugePages = %d, want 2", got)
	}
	if got := HugeRoundUp(1); got != HugePageSize {
		t.Errorf("HugeRoundUp(1) = %d", got)
	}
}

func TestRoundingProperties(t *testing.T) {
	f := func(raw uint64) bool {
		n := raw % (VirtSize - PageSize)
		up, down := PageRoundUp(n), PageRoundDown(n)
		return down <= n && n <= up &&
			up-down < PageSize*2 &&
			up%PageSize == 0 && down%PageSize == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRange(t *testing.T) {
	r := NewRange(0x1000, 0x3000)
	if r.Size() != 0x3000 {
		t.Errorf("Size = %#x", r.Size())
	}
	if r.Empty() {
		t.Error("non-empty range reported empty")
	}
	if !r.Contains(0x1000) || !r.Contains(0x3fff) {
		t.Error("Contains endpoints failed")
	}
	if r.Contains(0x4000) || r.Contains(0xfff) {
		t.Error("Contains out-of-range failed")
	}
	o := NewRange(0x3000, 0x2000)
	if !r.Overlaps(o) {
		t.Error("overlapping ranges reported disjoint")
	}
	if got := r.Intersect(o); got.Start != 0x3000 || got.End != 0x4000 {
		t.Errorf("Intersect = %v", got)
	}
	disjoint := NewRange(0x10000, 0x1000)
	if r.Overlaps(disjoint) {
		t.Error("disjoint ranges reported overlapping")
	}
	if got := r.Intersect(disjoint); !got.Empty() {
		t.Errorf("Intersect of disjoint = %v, want empty", got)
	}
	if !r.ContainsRange(NewRange(0x2000, 0x1000)) {
		t.Error("ContainsRange inner failed")
	}
	if r.ContainsRange(NewRange(0x2000, 0x9000)) {
		t.Error("ContainsRange overflow failed")
	}
}

func TestEmptyRange(t *testing.T) {
	r := Range{Start: 0x2000, End: 0x1000}
	if !r.Empty() {
		t.Error("inverted range not empty")
	}
	if r.Size() != 0 {
		t.Errorf("inverted range size = %d", r.Size())
	}
	if r.Overlaps(NewRange(0, VirtSize)) {
		t.Error("empty range overlaps something")
	}
}

func TestRangeString(t *testing.T) {
	r := NewRange(0x1000, 0x1000)
	if got := r.String(); got != "[0x1000, 0x2000)" {
		t.Errorf("String = %q", got)
	}
	if got := V(0x1000).String(); got != "0x1000" {
		t.Errorf("V.String = %q", got)
	}
}
