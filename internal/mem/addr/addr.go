// Package addr defines virtual-address arithmetic for the simulated
// x86-64-style 4-level paging structure used throughout the repository.
//
// The layout mirrors Linux on x86-64 with 4-level paging and 4 KiB base
// pages: a 48-bit virtual address is split into four 9-bit table indices
// (PGD, PUD, PMD, PTE) and a 12-bit page offset. A last-level (PTE) table
// therefore maps a 2 MiB region, a PMD table maps 1 GiB, a PUD table maps
// 512 GiB, and the PGD covers the full 256 TiB space.
package addr

import "fmt"

// Fundamental paging constants. These intentionally match x86-64 with
// 4 KiB pages so that counts of entries and tables — which drive every
// cost in the paper — are identical to the real system.
const (
	// PageShift is log2 of the base page size.
	PageShift = 12
	// PageSize is the base (4 KiB) page size in bytes.
	PageSize = 1 << PageShift
	// PageMask masks the offset-within-page bits.
	PageMask = PageSize - 1

	// EntryBits is log2 of the number of entries per table.
	EntryBits = 9
	// EntriesPerTable is the branching factor of every table level.
	EntriesPerTable = 1 << EntryBits
	// EntryMask masks a single level index.
	EntryMask = EntriesPerTable - 1

	// HugePageShift is log2 of the 2 MiB huge-page size (one PMD entry).
	HugePageShift = PageShift + EntryBits
	// HugePageSize is the 2 MiB huge-page size in bytes.
	HugePageSize = 1 << HugePageShift
	// HugePageMask masks the offset within a huge page.
	HugePageMask = HugePageSize - 1

	// PTECoverage is the span of virtual memory mapped by one last-level
	// (PTE) table: 2 MiB. This is the granularity at which on-demand-fork
	// copies page tables.
	PTECoverage = HugePageSize
	// PMDCoverage is the span mapped by one PMD table: 1 GiB.
	PMDCoverage = PTECoverage * EntriesPerTable
	// PUDCoverage is the span mapped by one PUD table: 512 GiB.
	PUDCoverage = PMDCoverage * EntriesPerTable

	// VirtBits is the number of significant virtual-address bits.
	VirtBits = PageShift + 4*EntryBits // 48
	// VirtSize is the size of the simulated virtual address space.
	VirtSize = uint64(1) << VirtBits
)

// Level identifies one level of the paging hierarchy, ordered from the
// root. The names follow Linux terminology.
type Level int

// Paging levels from root to leaf.
const (
	PGD Level = iota // level 0: root, each entry covers 512 GiB
	PUD              // level 1: each entry covers 1 GiB
	PMD              // level 2: each entry covers 2 MiB (or maps a huge page)
	PTE              // level 3: leaf, each entry maps a 4 KiB page
	NumLevels
)

// String returns the Linux-style name of the level.
func (l Level) String() string {
	switch l {
	case PGD:
		return "PGD"
	case PUD:
		return "PUD"
	case PMD:
		return "PMD"
	case PTE:
		return "PTE"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Coverage returns the span of virtual memory covered by a single entry
// at this level.
func (l Level) Coverage() uint64 {
	switch l {
	case PGD:
		return PUDCoverage
	case PUD:
		return PMDCoverage
	case PMD:
		return PTECoverage
	case PTE:
		return PageSize
	default:
		panic("addr: invalid level")
	}
}

// V is a simulated virtual address.
type V uint64

// Index returns the table index of v at the given level.
func (v V) Index(l Level) int {
	shift := PageShift + uint(PTE-l)*EntryBits
	return int((uint64(v) >> shift) & EntryMask)
}

// PageOffset returns the offset of v within its 4 KiB page.
func (v V) PageOffset() int { return int(uint64(v) & PageMask) }

// HugeOffset returns the offset of v within its 2 MiB huge page.
func (v V) HugeOffset() int { return int(uint64(v) & HugePageMask) }

// PageBase returns v rounded down to its 4 KiB page boundary.
func (v V) PageBase() V { return v &^ V(PageMask) }

// HugeBase returns v rounded down to its 2 MiB boundary.
func (v V) HugeBase() V { return v &^ V(HugePageMask) }

// PageAligned reports whether v is 4 KiB-aligned.
func (v V) PageAligned() bool { return v&V(PageMask) == 0 }

// HugeAligned reports whether v is 2 MiB-aligned.
func (v V) HugeAligned() bool { return v&V(HugePageMask) == 0 }

// String formats the address in hex.
func (v V) String() string { return fmt.Sprintf("0x%x", uint64(v)) }

// PageRoundUp rounds n up to a multiple of the 4 KiB page size.
func PageRoundUp(n uint64) uint64 { return (n + PageMask) &^ uint64(PageMask) }

// PageRoundDown rounds n down to a multiple of the 4 KiB page size.
func PageRoundDown(n uint64) uint64 { return n &^ uint64(PageMask) }

// HugeRoundUp rounds n up to a multiple of the 2 MiB huge-page size.
func HugeRoundUp(n uint64) uint64 { return (n + HugePageMask) &^ uint64(HugePageMask) }

// Pages returns the number of 4 KiB pages needed to hold n bytes.
func Pages(n uint64) uint64 { return PageRoundUp(n) >> PageShift }

// HugePages returns the number of 2 MiB pages needed to hold n bytes.
func HugePages(n uint64) uint64 { return HugeRoundUp(n) >> HugePageShift }

// Range is a half-open virtual address interval [Start, End).
type Range struct {
	Start V
	End   V
}

// NewRange returns the range [start, start+size).
func NewRange(start V, size uint64) Range {
	return Range{Start: start, End: start + V(size)}
}

// Size returns the length of the range in bytes.
func (r Range) Size() uint64 {
	if r.End <= r.Start {
		return 0
	}
	return uint64(r.End - r.Start)
}

// Empty reports whether the range contains no addresses.
func (r Range) Empty() bool { return r.End <= r.Start }

// Contains reports whether v lies within the range.
func (r Range) Contains(v V) bool { return v >= r.Start && v < r.End }

// ContainsRange reports whether o lies entirely within r.
func (r Range) ContainsRange(o Range) bool {
	return o.Start >= r.Start && o.End <= r.End && !o.Empty()
}

// Overlaps reports whether the two ranges share any address.
func (r Range) Overlaps(o Range) bool {
	return r.Start < o.End && o.Start < r.End && !r.Empty() && !o.Empty()
}

// Intersect returns the overlap of the two ranges (possibly empty).
func (r Range) Intersect(o Range) Range {
	out := Range{Start: maxV(r.Start, o.Start), End: minV(r.End, o.End)}
	if out.End < out.Start {
		out.End = out.Start
	}
	return out
}

// String formats the range as [start, end).
func (r Range) String() string {
	return fmt.Sprintf("[0x%x, 0x%x)", uint64(r.Start), uint64(r.End))
}

func minV(a, b V) V {
	if a < b {
		return a
	}
	return b
}

func maxV(a, b V) V {
	if a > b {
		return a
	}
	return b
}
