//go:build purego

package bulk

// IsZeroPage reports whether every byte of p is zero (reference
// implementation selected by the purego build tag).
func IsZeroPage(p []byte) bool { return RefIsZeroPage(p) }

// PagesEqual reports whether a and b have identical length and
// contents (reference implementation selected by the purego build
// tag).
func PagesEqual(a, b []byte) bool { return RefPagesEqual(a, b) }
