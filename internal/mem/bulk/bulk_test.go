package bulk

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mem/addr"
)

// randPage builds a page-like buffer with a mix of contents chosen to
// stress the word-lane loops: all-zero, single set byte at a random
// offset (including lane boundaries), and fully random.
func randPage(rng *rand.Rand, n int) []byte {
	p := make([]byte, n)
	switch rng.Intn(3) {
	case 0:
		// all zero
	case 1:
		if n > 0 {
			p[rng.Intn(n)] = byte(1 + rng.Intn(255))
		}
	default:
		rng.Read(p)
	}
	return p
}

func TestIsZeroPageEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{0, 1, 7, 8, 9, 15, 16, 63, 64, 4095, addr.PageSize, addr.PageSize + 3}
	for _, n := range sizes {
		for trial := 0; trial < 64; trial++ {
			p := randPage(rng, n)
			// Random sub-slices exercise every alignment of the
			// underlying array.
			lo := 0
			if n > 0 {
				lo = rng.Intn(n)
			}
			q := p[lo:]
			if got, want := IsZeroPage(q), RefIsZeroPage(q); got != want {
				t.Fatalf("IsZeroPage(len=%d, off=%d) = %v, reference = %v", n, lo, got, want)
			}
		}
	}
	if !IsZeroPage(nil) {
		t.Error("IsZeroPage(nil) = false, want true (nil data is a logical zero page)")
	}
}

func TestPagesEqualEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 256; trial++ {
		n := rng.Intn(addr.PageSize + 1)
		a := randPage(rng, n)
		var b []byte
		switch rng.Intn(3) {
		case 0:
			b = append([]byte(nil), a...)
		case 1:
			b = append([]byte(nil), a...)
			if n > 0 {
				b[rng.Intn(n)] ^= byte(1 + rng.Intn(255))
			}
		default:
			b = randPage(rng, rng.Intn(addr.PageSize+1))
		}
		got, want := PagesEqual(a, b), RefPagesEqual(a, b)
		if got != want {
			t.Fatalf("PagesEqual(len %d vs %d) = %v, reference = %v", len(a), len(b), got, want)
		}
		if want != bytes.Equal(a, b) {
			t.Fatalf("reference PagesEqual disagrees with bytes.Equal")
		}
	}
}

func TestCopyPageEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 256; trial++ {
		src := randPage(rng, rng.Intn(addr.PageSize+1))
		dstLen := rng.Intn(addr.PageSize + 1)
		d1 := randPage(rng, dstLen)
		d2 := append([]byte(nil), d1...)
		n1 := CopyPage(d1, src)
		n2 := RefCopyPage(d2, src)
		if n1 != n2 {
			t.Fatalf("CopyPage returned %d, reference %d", n1, n2)
		}
		if !bytes.Equal(d1, d2) {
			t.Fatalf("CopyPage result differs from reference (src %d, dst %d)", len(src), dstLen)
		}
	}
}

func TestHugePageSizes(t *testing.T) {
	// The kernels must handle full 2 MiB huge-page runs; exercise one
	// with the dirty byte in the final lane.
	p := make([]byte, addr.HugePageSize)
	if !IsZeroPage(p) {
		t.Fatal("zero huge page not detected")
	}
	p[addr.HugePageSize-1] = 0xfe
	if IsZeroPage(p) {
		t.Fatal("dirty huge page reported zero")
	}
	q := make([]byte, addr.HugePageSize)
	CopyPage(q, p)
	if !PagesEqual(p, q) || !RefPagesEqual(p, q) {
		t.Fatal("huge page copy+compare round trip failed")
	}
}

func FuzzKernelsEquivalence(f *testing.F) {
	f.Add([]byte{}, []byte{}, uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, []byte{0, 0, 0, 0, 0, 0, 0, 1}, uint8(3))
	f.Add(bytes.Repeat([]byte{0xab}, 4096), bytes.Repeat([]byte{0xab}, 4096), uint8(7))
	f.Fuzz(func(t *testing.T, a, b []byte, off uint8) {
		// Offset the slices to fuzz alignment against the allocation.
		if int(off) < len(a) {
			a = a[off:]
		}
		if int(off) < len(b) {
			b = b[off:]
		}
		if got, want := IsZeroPage(a), RefIsZeroPage(a); got != want {
			t.Errorf("IsZeroPage mismatch on %d bytes: %v vs %v", len(a), got, want)
		}
		if got, want := PagesEqual(a, b), RefPagesEqual(a, b); got != want {
			t.Errorf("PagesEqual mismatch (%d vs %d bytes): %v vs %v", len(a), len(b), got, want)
		}
		d1 := make([]byte, len(b))
		d2 := make([]byte, len(b))
		if n1, n2 := CopyPage(d1, a), RefCopyPage(d2, a); n1 != n2 || !bytes.Equal(d1, d2) {
			t.Errorf("CopyPage mismatch: n=%d vs %d", n1, n2)
		}
	})
}
