//go:build !purego

package bulk

import "encoding/binary"

// The optimized kernels walk 8-byte lanes through encoding/binary's
// little-endian loads, which the compiler recognizes and lowers to
// single unaligned machine loads on amd64/arm64. ORing lanes together
// (zero check) and XORing pairs (equality) keeps the loop body
// branch-free; only the accumulated result is tested per lane.

// IsZeroPage reports whether every byte of p is zero. A nil or empty
// slice is zero by definition — phys represents never-written pages as
// nil data, and the two must classify identically.
func IsZeroPage(p []byte) bool {
	for len(p) >= 8 {
		if binary.LittleEndian.Uint64(p) != 0 {
			return false
		}
		p = p[8:]
	}
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// PagesEqual reports whether a and b have identical length and
// contents.
func PagesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for len(a) >= 8 {
		if binary.LittleEndian.Uint64(a) != binary.LittleEndian.Uint64(b) {
			return false
		}
		a, b = a[8:], b[8:]
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
