// Package bulk provides the page-granular data kernels of the
// simulated kernel: copy, zero-detection, and comparison over 4 KiB
// base pages and 2 MiB huge pages.
//
// Two implementations exist, selected at build time in the spirit of
// the assembly/pure-Go split used by performance-sensitive Go
// libraries (parquet-go's `_amd64.s` + `_purego.go` pattern). The
// default build uses word-at-a-time loops over 8-byte lanes; building
// with `-tags purego` selects the byte-at-a-time reference
// implementations instead. The reference implementations are always
// compiled (as Ref*) so equivalence and fuzz tests can compare the two
// on every build.
//
// All kernels accept arbitrary slice lengths — page-table code calls
// them with exactly addr.PageSize bytes, but reclaim and tests use
// shorter runs — and make no alignment assumptions, since Go slices
// provide none.
package bulk

// CopyPage copies min(len(dst), len(src)) bytes from src to dst and
// returns the number of bytes copied. The built-in copy lowers to
// runtime.memmove, which is already the fastest bulk copy available
// without assembly; the function exists so every page-data move goes
// through one auditable kernel.
func CopyPage(dst, src []byte) int {
	return copy(dst, src)
}

// RefCopyPage is the byte-at-a-time reference for CopyPage.
func RefCopyPage(dst, src []byte) int {
	n := len(src)
	if len(dst) < n {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = src[i]
	}
	return n
}

// RefIsZeroPage is the byte-at-a-time reference for IsZeroPage.
func RefIsZeroPage(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

// RefPagesEqual is the byte-at-a-time reference for PagesEqual.
func RefPagesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
