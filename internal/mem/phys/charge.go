package phys

import "repro/internal/failpoint"

// FrameCharger is the accounting hook the multi-tenant control plane
// (internal/tenant) plugs into the allocator. Every allocation entry
// point has a *For variant taking a charger; the frame is tagged with
// it in its struct page, charged at allocation, and uncharged when the
// last reference drops and the frame returns to the free lists — so
// teardown, fork rollback, and reclaim eviction all uncharge through
// the one release path.
//
// Charging is soft: it never fails. Quota enforcement happens above
// the allocator (fork admission control, fair-share reclaim victim
// selection), which is what lets an over-quota tenant's faults still
// complete while its frames become the preferred eviction victims.
type FrameCharger interface {
	// ChargeFrames records n base frames allocated on the charger's
	// account (n is 512 for a huge page).
	ChargeFrames(n int64)
	// UnchargeFrames returns n base frames to the charger's account.
	UnchargeFrames(n int64)
	// AdjustShared tracks frames whose reference count crossed the
	// shared boundary: +1 when a charged frame becomes shared
	// (refcount 1→2), -1 when it becomes exclusive again (2→1). The
	// frame stays charged to its first toucher either way.
	AdjustShared(n int64)
}

// tenantTagged is implemented by chargers that belong to a tenant, so
// allocator failpoint sites can attribute their evaluation for scoped
// injection (failpoint.Registry.SetScope).
type tenantTagged interface{ TenantID() uint64 }

// chargerTenant resolves the tenant id a charger is attributed to
// (0 = unattributed).
func chargerTenant(c FrameCharger) uint64 {
	if t, ok := c.(tenantTagged); ok {
		return t.TenantID()
	}
	return 0
}

// AllocFor is Alloc charging the frame to c (nil = unaccounted).
func (a *Allocator) AllocFor(c FrameCharger) Frame {
	f, err := a.TryAllocFor(c)
	if err != nil {
		panic(err)
	}
	return f
}

// TryAllocFor is TryAlloc charging the frame to c (nil = unaccounted).
func (a *Allocator) TryAllocFor(c FrameCharger) (Frame, error) {
	if fp := a.fail.Load(); fp.Enabled() && fp.FireAs(failpoint.PhysAlloc, chargerTenant(c)) {
		return NoFrame, ErrNoMemory
	}
	if err := a.reserve(1); err != nil {
		return NoFrame, err
	}
	f := a.allocFrame()
	a.initFrame(f, c)
	return f, nil
}

// TryAllocNoReclaimFor is TryAllocNoReclaim charging the frame to c.
func (a *Allocator) TryAllocNoReclaimFor(c FrameCharger) (Frame, error) {
	if fp := a.fail.Load(); fp.Enabled() && fp.FireAs(failpoint.PhysAlloc, chargerTenant(c)) {
		return NoFrame, ErrNoMemory
	}
	cur := a.allocated.Add(1)
	if l := a.limit.Load(); l > 0 && cur > l {
		a.allocated.Add(-1)
		return NoFrame, ErrNoMemory
	}
	a.updatePeak(cur)
	f := a.allocFrame()
	a.initFrame(f, c)
	return f, nil
}

// TryAllocPageTableNoReclaimFor is TryAllocPageTableNoReclaim charging
// the frame to c.
func (a *Allocator) TryAllocPageTableNoReclaimFor(c FrameCharger) (Frame, error) {
	f, err := a.TryAllocNoReclaimFor(c)
	if err != nil {
		return NoFrame, err
	}
	a.info(f).flags |= flagPageTable
	return f, nil
}

// AllocPageTableFor is AllocPageTable charging the frame to c.
func (a *Allocator) AllocPageTableFor(c FrameCharger) Frame {
	f := a.AllocFor(c)
	a.info(f).flags |= flagPageTable
	return f
}

// initFrame initializes the metadata of a freshly allocated order-0
// frame. The frame is exclusively owned here: it left the free state
// under the shard (or buddy) lock and has not been published.
func (a *Allocator) initFrame(f Frame, c FrameCharger) {
	pi := a.info(f)
	pi.flags = flagAllocated
	pi.order = 0
	pi.head = NoFrame
	pi.charger = c
	pi.refcount.Store(1)
	pi.ptShared.Store(0)
	if c != nil {
		c.ChargeFrames(1)
	}
	a.totalOps.Add(1)
}

// ChargerOf returns the charger a frame (or its compound head) was
// allocated against, nil for unaccounted frames. The reclaim subsystem
// uses it to place frames on per-tenant LRU partitions.
func (a *Allocator) ChargerOf(f Frame) FrameCharger {
	pi := a.info(f)
	if pi.flags&flagCompoundTail != 0 {
		pi = a.info(pi.head)
	}
	return pi.charger
}

// ChargedCounts tallies live base frames per charger by walking the
// mem_map — the ground truth the per-tenant usage counters are checked
// against in CheckInvariants. Callers must be quiescent (no concurrent
// allocation or free): frame alloc-state flags are owned by whoever
// holds the frame, not by a lock this walk could take.
func (a *Allocator) ChargedCounts() map[FrameCharger]int64 {
	a.mu.Lock()
	next := a.next
	a.mu.Unlock()
	chunks := *a.chunks.Load()
	counts := make(map[FrameCharger]int64)
	for f := Frame(1); f < next; f++ {
		pi := &chunks[uint64(f)/chunkSize][uint64(f)%chunkSize]
		if pi.flags&flagAllocated == 0 || pi.flags&flagCompoundTail != 0 {
			continue
		}
		if pi.charger == nil {
			continue
		}
		n := int64(1)
		if pi.flags&flagCompoundHead != 0 {
			n = 1 << pi.order
		}
		counts[pi.charger] += n
	}
	return counts
}
