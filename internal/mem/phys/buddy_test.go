package phys

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuddyAlignment(t *testing.T) {
	a := NewAllocator(nil)
	for i := 0; i < 4; i++ {
		h := a.AllocHuge()
		if uint64(h)%(1<<HugeOrder) != 0 {
			t.Fatalf("huge block %d not naturally aligned", h)
		}
		a.Put(h)
	}
}

func TestBuddyCoalescing(t *testing.T) {
	a := NewAllocator(nil)
	// Allocate a full maximal block's worth of single frames, free them
	// all; the buddy system must coalesce back to maximal blocks only.
	n := 1 << MaxOrder
	fs := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		fs = append(fs, a.Alloc())
	}
	for _, f := range fs {
		a.Put(f)
	}
	free := a.FreeBlocks()
	for o := 0; o < MaxOrder; o++ {
		if free[o] != 0 {
			t.Errorf("order %d has %d free blocks after full coalesce", o, free[o])
		}
	}
	if free[MaxOrder] == 0 {
		t.Error("no maximal blocks after full coalesce")
	}
	// A huge allocation must now succeed without growing the arena.
	before := a.Stats().Extent
	h := a.AllocHuge()
	if a.Stats().Extent != before {
		t.Error("huge allocation grew arena despite coalesced space")
	}
	a.Put(h)
}

func TestBuddyMixedOrders(t *testing.T) {
	a := NewAllocator(nil)
	h := a.AllocHuge()
	f := a.Alloc()
	// The single frame must not fall inside the huge block.
	if f >= h && f < h+(1<<HugeOrder) {
		t.Fatalf("single frame %d allocated inside huge block [%d,%d)", f, h, h+(1<<HugeOrder))
	}
	a.Put(f)
	a.Put(h)
	if a.Allocated() != 0 {
		t.Error("leak")
	}
}

func TestBuddySplitReuse(t *testing.T) {
	a := NewAllocator(nil)
	// Free a huge block, then allocate singles: they must be carved from
	// the freed block (no growth).
	h := a.AllocHuge()
	a.Put(h)
	before := a.Stats().Extent
	for i := 0; i < 1<<MaxOrder; i++ {
		a.Alloc()
	}
	if a.Stats().Extent != before {
		t.Error("single allocations grew arena despite free huge block")
	}
}

// Property: random alloc/free sequences never hand out overlapping
// blocks, and freeing everything always coalesces back to maximal
// blocks.
func TestQuickBuddyConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(nil)
		type block struct {
			head Frame
			n    Frame
		}
		var live []block
		owner := make(map[Frame]bool)
		for op := 0; op < 300; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				var b block
				if rng.Intn(8) == 0 {
					b = block{a.AllocHuge(), 1 << HugeOrder}
				} else {
					b = block{a.Alloc(), 1}
				}
				for i := Frame(0); i < b.n; i++ {
					if owner[b.head+i] {
						t.Logf("seed %d: frame %d double-allocated", seed, b.head+i)
						return false
					}
					owner[b.head+i] = true
				}
				live = append(live, b)
			} else {
				i := rng.Intn(len(live))
				b := live[i]
				live = append(live[:i], live[i+1:]...)
				for j := Frame(0); j < b.n; j++ {
					delete(owner, b.head+j)
				}
				a.Put(b.head)
			}
		}
		for _, b := range live {
			a.Put(b.head)
		}
		if a.Allocated() != 0 {
			return false
		}
		free := a.FreeBlocks()
		for o := 0; o < MaxOrder; o++ {
			if free[o] != 0 {
				t.Logf("seed %d: %d stray order-%d blocks", seed, free[o], o)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLimitAndTryAlloc(t *testing.T) {
	a := NewAllocator(nil)
	a.SetLimit(2)
	f1, err := a.TryAlloc()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.TryAlloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.TryAlloc(); err != ErrNoMemory {
		t.Errorf("over-limit TryAlloc err = %v", err)
	}
	a.Put(f1)
	if _, err := a.TryAlloc(); err != nil {
		t.Errorf("TryAlloc after free: %v", err)
	}
	a.SetLimit(0)
	if _, err := a.TryAlloc(); err != nil {
		t.Errorf("unlimited TryAlloc: %v", err)
	}
}

func TestAllocPanicsAtLimit(t *testing.T) {
	a := NewAllocator(nil)
	a.SetLimit(1)
	a.Alloc()
	defer func() {
		if recover() == nil {
			t.Error("Alloc over limit did not panic")
		}
	}()
	a.Alloc()
}
