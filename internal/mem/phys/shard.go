package phys

// Sharded frame caches in front of the buddy core, modelled on Linux's
// per-CPU pagesets: order-0 allocations are served from a small
// per-shard LIFO cache and only fall back to the globally locked buddy
// allocator to refill or drain a whole batch at a time. This keeps the
// classic-fork hot path (one page-table frame per 2 MiB of address
// space, plus COW data frames at fault time) off the global lock when
// multiple forks run concurrently (the paper's Figure 2 workload).
//
// Lock order: shard.mu → Allocator.mu (the buddy core). A shard lock is
// held across its refill/drain so a batch moves atomically with respect
// to other users of that shard; FlushShards takes each shard in turn.
//
// Accounting stays exact: frames parked in a shard cache are invisible
// to the buddy free lists, so FreeBlocks flushes every shard before
// reporting, and the live-frame counter (`allocated`) is maintained at
// TryAlloc/release time, never by cache movement.

import (
	"runtime"
	"sync"
	"unsafe"

	"repro/internal/failpoint"
	"repro/internal/profile"
	"repro/internal/trace"
)

const (
	// shardBatch is how many frames move between a shard cache and the
	// buddy core per refill or drain (Linux's pageset ->batch).
	shardBatch = 32
	// shardMax is the cache size that triggers a drain (->high).
	shardMax = 2 * shardBatch
	// maxShards caps the shard count on very wide machines.
	maxShards = 64
)

// shard is one frame cache. The pad keeps adjacent shards off the same
// cache line so uncontended shards do not false-share.
type shard struct {
	mu    sync.Mutex
	cache []Frame
	_     [64]byte
}

// newShards sizes the shard array to the next power of two at or above
// GOMAXPROCS, so shard selection is a mask.
func newShards() []shard {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < maxShards {
		n <<= 1
	}
	return make([]shard, n)
}

// shardFor picks a shard for the calling goroutine. Go does not expose
// CPU identity, so we hash the goroutine's stack address (stable per
// goroutine for the life of a call frame, distinct across goroutines)
// — the same affinity trick sync.Pool relies on pinning for. A wrong
// guess costs contention, never correctness.
func (a *Allocator) shardFor() *shard {
	var probe byte
	h := uintptr(unsafe.Pointer(&probe))
	h ^= h >> 17 // mix: stacks are aligned, low bits carry little entropy
	return &a.shards[(h>>3)&uintptr(len(a.shards)-1)]
}

// allocFrame hands out one order-0 frame: shard fast path first,
// batched refill from the buddy core on miss.
func (a *Allocator) allocFrame() Frame {
	s := a.shardFor()
	s.mu.Lock()
	if n := len(s.cache); n > 0 {
		f := s.cache[n-1]
		s.cache = s.cache[:n-1]
		s.mu.Unlock()
		a.prof.Charge(profile.ShardAllocHit, 1)
		if m := a.met.Load(); m.Enabled() {
			m.Alloc.ShardHits.Inc()
		}
		return f
	}
	// Miss: pull a batch from the buddy core while still holding the
	// shard lock (lock order shard → core), so the whole refill is one
	// critical section per shardBatch allocations. An injected refill
	// failure degrades to a single-frame pull — the allocation itself
	// still succeeds (its frame was already reserved against the limit),
	// the cache just stays cold, exactly like a pageset refill that
	// found the free lists fragmented.
	batch := shardBatch
	if fp := a.fail.Load(); fp.Enabled() && fp.Fire(failpoint.PhysShardRefill) {
		batch = 1
	}
	a.mu.Lock()
	f := a.allocBlock(0)
	for i := 0; i < batch-1; i++ {
		s.cache = append(s.cache, a.allocBlock(0))
	}
	a.mu.Unlock()
	s.mu.Unlock()
	a.prof.Charge(profile.ShardRefill, 1)
	if m := a.met.Load(); m.Enabled() {
		m.Alloc.ShardRefills.Inc()
	}
	if t := a.trc.Load(); t.Enabled() {
		t.Instant(trace.KindAllocRefill, trace.StageNone, trace.ActorApp, shardBatch, 0)
	}
	return f
}

// freeFrame returns one order-0 frame to the caller's shard, draining
// the oldest batch to the buddy core when the cache is full. Draining
// from the front keeps recently freed frames at the LIFO top, so a
// free-then-alloc on one goroutine reuses the same (cache-hot) frame.
func (a *Allocator) freeFrame(f Frame) {
	s := a.shardFor()
	s.mu.Lock()
	s.cache = append(s.cache, f)
	if len(s.cache) < shardMax {
		s.mu.Unlock()
		return
	}
	a.mu.Lock()
	for _, b := range s.cache[:shardBatch] {
		a.freeBlock(b, 0)
	}
	a.mu.Unlock()
	n := copy(s.cache, s.cache[shardBatch:])
	s.cache = s.cache[:n]
	s.mu.Unlock()
	a.prof.Charge(profile.ShardDrain, 1)
	if m := a.met.Load(); m.Enabled() {
		m.Alloc.ShardDrains.Inc()
	}
	if t := a.trc.Load(); t.Enabled() {
		t.Instant(trace.KindAllocDrain, trace.StageNone, trace.ActorApp, shardBatch, 0)
	}
}

// FlushShards drains every shard cache back to the buddy core, making
// FreeBlocks and buddy coalescing exact. Tests and teardown paths call
// it; steady-state allocation never needs to.
func (a *Allocator) FlushShards() {
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		if len(s.cache) > 0 {
			a.mu.Lock()
			for _, f := range s.cache {
				a.freeBlock(f, 0)
			}
			a.mu.Unlock()
			s.cache = s.cache[:0]
		}
		s.mu.Unlock()
	}
}

// ShardCached returns the total number of frames currently parked in
// shard caches (diagnostics and tests).
func (a *Allocator) ShardCached() int {
	total := 0
	for i := range a.shards {
		s := &a.shards[i]
		s.mu.Lock()
		total += len(s.cache)
		s.mu.Unlock()
	}
	return total
}

// Shards returns the number of allocator shards.
func (a *Allocator) Shards() int { return len(a.shards) }
