package phys

// The buddy allocator: the same power-of-two block scheme Linux's page
// allocator uses. Free memory is kept as blocks of 2^order frames on
// per-order free lists; allocating splits larger blocks, and freeing
// coalesces a block with its "buddy" (the neighbour that differs only
// in bit `order` of the frame number) whenever both are free. Huge
// (2 MiB) compound pages are order-9 blocks, so their 512 frames are
// physically contiguous and naturally aligned by construction.
//
// The arena grows in maximal blocks, so frame numbers handed out are
// always naturally aligned for their order and the buddy arithmetic
// stays valid across growth.

// MaxOrder is the largest block order (2 MiB, matching HugeOrder).
const MaxOrder = HugeOrder

// freeOrder is stored in PageInfo as order+1, so the zero value of a
// fresh PageInfo means "not the head of a free block".
const notFree = 0

// buddy holds the allocator's free-block state. It is embedded in
// Allocator and guarded by the allocator's mutex.
type buddy struct {
	// freeLists[o] holds the head frames of free blocks of order o.
	freeLists [MaxOrder + 1][]Frame
}

// blockOf returns the head of the 2^order block containing f.
func blockHead(f Frame, order uint8) Frame {
	return f &^ (Frame(1)<<order - 1)
}

// buddyOf returns the buddy block head of the block at f with the
// given order.
func buddyOf(f Frame, order uint8) Frame {
	return f ^ (Frame(1) << order)
}

// popFree removes and returns a free block of exactly the given order,
// or NoFrame. Caller holds the allocator lock.
func (a *Allocator) popFree(order uint8) Frame {
	list := a.buddy.freeLists[order]
	n := len(list)
	if n == 0 {
		return NoFrame
	}
	f := list[n-1]
	a.buddy.freeLists[order] = list[:n-1]
	a.info(f).freeOrder = notFree
	return f
}

// pushFree adds a free block of the given order. Caller holds the lock.
func (a *Allocator) pushFree(f Frame, order uint8) {
	a.info(f).freeOrder = int8(order) + 1
	a.buddy.freeLists[order] = append(a.buddy.freeLists[order], f)
}

// removeFree unlinks a specific free block (used when its buddy
// coalesces with it). Caller holds the lock. The free lists are small
// slices; removal swaps with the tail.
func (a *Allocator) removeFree(f Frame, order uint8) {
	list := a.buddy.freeLists[order]
	for i, b := range list {
		if b == f {
			list[i] = list[len(list)-1]
			a.buddy.freeLists[order] = list[:len(list)-1]
			a.info(f).freeOrder = notFree
			return
		}
	}
	panic("phys: free block missing from its free list")
}

// allocBlock carves out a block of the given order, growing the arena
// when no free block is available. Caller holds the lock.
func (a *Allocator) allocBlock(order uint8) Frame {
	// Find the smallest free block that fits.
	for o := order; o <= MaxOrder; o++ {
		f := a.popFree(o)
		if !f.Valid() {
			continue
		}
		// Split down to the requested order, returning the upper halves
		// to the free lists.
		for cur := o; cur > order; cur-- {
			half := cur - 1
			a.pushFree(f+Frame(1)<<half, half)
		}
		return f
	}
	// Grow the arena by one maximal block. Frame numbers issued by
	// growth are MaxOrder-aligned because the arena base (after the
	// reserved frame 0 region) advances in maximal blocks.
	f := a.grow()
	if order == MaxOrder {
		return f
	}
	for cur := uint8(MaxOrder); cur > order; cur-- {
		half := cur - 1
		a.pushFree(f+Frame(1)<<half, half)
	}
	return f
}

// grow extends the arena by one maximal block and returns its head.
// Caller holds the lock.
func (a *Allocator) grow() Frame {
	// Align the growth point up to a maximal-block boundary; the gap (at
	// most once, below the first block) is left permanently reserved.
	head := blockHead(a.next+Frame(1)<<MaxOrder-1, MaxOrder)
	a.next = head + Frame(1)<<MaxOrder
	a.ensure(a.next - 1)
	return head
}

// freeBlock returns a block to the allocator, coalescing with free
// buddies. Caller holds the lock.
func (a *Allocator) freeBlock(f Frame, order uint8) {
	for order < MaxOrder {
		bud := buddyOf(f, order)
		// The buddy must exist, be entirely within the arena, and be the
		// free head of a block of the same order.
		if bud >= a.next {
			break
		}
		bp := a.info(bud)
		if bp.freeOrder != int8(order)+1 {
			break
		}
		a.removeFree(bud, order)
		if bud < f {
			f = bud
		}
		order++
	}
	a.pushFree(f, order)
}

// FreeBlocks reports the number of free blocks per order (diagnostics
// and tests). Shard caches are drained first so the report — and the
// coalescing it reflects — is exact.
func (a *Allocator) FreeBlocks() [MaxOrder + 1]int {
	a.FlushShards()
	a.mu.Lock()
	defer a.mu.Unlock()
	var out [MaxOrder + 1]int
	for o := range a.buddy.freeLists {
		out[o] = len(a.buddy.freeLists[o])
	}
	return out
}
