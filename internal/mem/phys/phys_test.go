package phys

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
	"repro/internal/profile"
)

func TestAllocDistinctFrames(t *testing.T) {
	a := NewAllocator(nil)
	seen := make(map[Frame]bool)
	for i := 0; i < 1000; i++ {
		f := a.Alloc()
		if !f.Valid() {
			t.Fatal("Alloc returned invalid frame")
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	if got := a.Allocated(); got != 1000 {
		t.Errorf("Allocated = %d, want 1000", got)
	}
}

func TestRefcountLifecycle(t *testing.T) {
	a := NewAllocator(nil)
	f := a.Alloc()
	if got := a.RefCount(f); got != 1 {
		t.Fatalf("fresh refcount = %d, want 1", got)
	}
	a.Get(f)
	if got := a.RefCount(f); got != 2 {
		t.Fatalf("after Get refcount = %d, want 2", got)
	}
	a.Put(f)
	if got := a.Allocated(); got != 1 {
		t.Fatalf("freed while referenced: allocated = %d", got)
	}
	a.Put(f)
	if got := a.Allocated(); got != 0 {
		t.Fatalf("not freed at zero refcount: allocated = %d", got)
	}
}

func TestFrameReuseAfterFree(t *testing.T) {
	a := NewAllocator(nil)
	f := a.Alloc()
	a.Put(f)
	g := a.Alloc()
	if g != f {
		t.Errorf("free list not reused: got %d, want %d", g, f)
	}
	if got := a.RefCount(g); got != 1 {
		t.Errorf("reused frame refcount = %d, want 1", got)
	}
}

func TestNegativeRefcountPanics(t *testing.T) {
	a := NewAllocator(nil)
	f := a.Alloc()
	a.Put(f)
	defer func() {
		if recover() == nil {
			t.Error("Put below zero did not panic")
		}
	}()
	a.Put(f)
}

func TestDataLazyMaterialization(t *testing.T) {
	a := NewAllocator(nil)
	f := a.Alloc()
	if a.DataIfPresent(f) != nil {
		t.Error("fresh frame has materialized data")
	}
	d := a.Data(f)
	if len(d) != addr.PageSize {
		t.Fatalf("data len = %d", len(d))
	}
	for _, b := range d {
		if b != 0 {
			t.Fatal("materialized data not zeroed")
		}
	}
	d[0] = 0xAA
	if got := a.Data(f)[0]; got != 0xAA {
		t.Error("data not stable across calls")
	}
}

func TestDataClearedOnFree(t *testing.T) {
	a := NewAllocator(nil)
	f := a.Alloc()
	a.Data(f)[0] = 0xFF
	a.Put(f)
	g := a.Alloc()
	if g != f {
		t.Fatalf("expected frame reuse")
	}
	if a.DataIfPresent(g) != nil {
		t.Error("reused frame leaked previous data")
	}
}

func TestCopyPage(t *testing.T) {
	a := NewAllocator(nil)
	src, dst := a.Alloc(), a.Alloc()
	a.Data(src)[100] = 7
	if !a.CopyPage(dst, src) {
		t.Error("nonzero copy reported elided")
	}
	if got := a.Data(dst)[100]; got != 7 {
		t.Errorf("copied byte = %d, want 7", got)
	}
	// Copy from a zero (unmaterialized) source is elided: it reports
	// false and leaves the destination logically zero without
	// materializing it.
	zsrc, zdst := a.Alloc(), a.Alloc()
	a.Data(zdst)[5] = 9
	if a.CopyPage(zdst, zsrc) {
		t.Error("zero copy not elided")
	}
	if a.DataIfPresent(zdst) != nil {
		t.Error("elided copy left destination materialized")
	}
	if got := a.Data(zdst)[5]; got != 0 {
		t.Errorf("zero-copy dest byte = %d, want 0", got)
	}
	// A materialized-but-all-zero source elides too.
	msrc, mdst := a.Alloc(), a.Alloc()
	a.Data(msrc) // materialize zeroes
	if a.CopyPage(mdst, msrc) {
		t.Error("all-zero materialized source not elided")
	}
	if !a.PageIsZero(mdst) || !a.PageIsZero(msrc) {
		t.Error("PageIsZero disagrees with elision")
	}
}

func TestCompoundPage(t *testing.T) {
	a := NewAllocator(nil)
	head := a.AllocHuge()
	if !a.IsHuge(head) {
		t.Fatal("head not recognized as huge")
	}
	if got := a.Allocated(); got != 1<<HugeOrder {
		t.Errorf("Allocated = %d, want 512", got)
	}
	// Every tail must resolve to the head.
	for i := Frame(1); i < 1<<HugeOrder; i++ {
		if got := a.CompoundHead(head + i); got != head {
			t.Fatalf("CompoundHead(tail %d) = %d, want %d", i, got, head)
		}
	}
	if got := a.CompoundHead(head); got != head {
		t.Errorf("CompoundHead(head) = %d", got)
	}
	// Get/Put on a tail operates on the head count.
	a.Get(head + 3)
	if got := a.RefCount(head); got != 2 {
		t.Errorf("head refcount = %d, want 2", got)
	}
	a.Put(head + 100)
	a.Put(head)
	if got := a.Allocated(); got != 0 {
		t.Errorf("compound not freed: %d", got)
	}
}

func TestCompoundReuse(t *testing.T) {
	a := NewAllocator(nil)
	h1 := a.AllocHuge()
	a.Put(h1)
	h2 := a.AllocHuge()
	if h2 != h1 {
		t.Errorf("huge free list not reused: %d vs %d", h2, h1)
	}
	if got := a.RefCount(h2); got != 1 {
		t.Errorf("reused huge refcount = %d", got)
	}
}

func TestCopyHugePage(t *testing.T) {
	a := NewAllocator(nil)
	src, dst := a.AllocHuge(), a.AllocHuge()
	a.Data(src + 511)[4095] = 0x5A
	a.CopyHugePage(dst, src)
	if got := a.Data(dst + 511)[4095]; got != 0x5A {
		t.Errorf("huge copy lost tail byte: %d", got)
	}
}

func TestPTShareCounter(t *testing.T) {
	a := NewAllocator(nil)
	f := a.AllocPageTable()
	if !a.IsPageTable(f) {
		t.Fatal("page-table flag missing")
	}
	a.PTShareInit(f, 1)
	if got := a.PTShareGet(f); got != 2 {
		t.Errorf("PTShareGet = %d, want 2", got)
	}
	if got := a.PTSharePut(f); got != 1 {
		t.Errorf("PTSharePut = %d, want 1", got)
	}
	if got := a.PTShareCount(f); got != 1 {
		t.Errorf("PTShareCount = %d, want 1", got)
	}
}

func TestPTShareNegativePanics(t *testing.T) {
	a := NewAllocator(nil)
	f := a.AllocPageTable()
	a.PTShareInit(f, 0)
	defer func() {
		if recover() == nil {
			t.Error("negative share count did not panic")
		}
	}()
	a.PTSharePut(f)
}

func TestProfilerCharges(t *testing.T) {
	p := profile.New()
	a := NewAllocator(p)
	f := a.Alloc()
	a.Get(f)
	if got := p.Count(profile.CompoundHead); got != 1 {
		t.Errorf("CompoundHead count = %d, want 1", got)
	}
	if got := p.Count(profile.PageRefInc); got != 1 {
		t.Errorf("PageRefInc count = %d, want 1", got)
	}
	a.PTShareGet(a.AllocPageTable())
	if got := p.Count(profile.PTShareInc); got != 1 {
		t.Errorf("PTShareInc count = %d, want 1", got)
	}
}

func TestStatsAndPeak(t *testing.T) {
	a := NewAllocator(nil)
	fs := make([]Frame, 10)
	for i := range fs {
		fs[i] = a.Alloc()
	}
	for _, f := range fs {
		a.Put(f)
	}
	st := a.Stats()
	if st.Allocated != 0 {
		t.Errorf("Allocated = %d", st.Allocated)
	}
	if st.Peak != 10 {
		t.Errorf("Peak = %d, want 10", st.Peak)
	}
	// The buddy allocator grows the arena in maximal (512-frame) blocks.
	if st.Extent < 10 {
		t.Errorf("Extent = %d, want >= 10", st.Extent)
	}
	if a.Peak() != 10 {
		t.Errorf("Peak() = %d", a.Peak())
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := NewAllocator(nil)
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]Frame, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, a.Alloc())
			}
			for _, f := range local {
				a.Get(f)
				a.Put(f)
				a.Put(f)
			}
		}()
	}
	wg.Wait()
	if got := a.Allocated(); got != 0 {
		t.Errorf("leak after concurrent churn: %d", got)
	}
}

// Property: any interleaving of Get/Put pairs leaves the allocator with
// zero live frames and never corrupts counts.
func TestQuickRefcountBalance(t *testing.T) {
	f := func(gets []uint8) bool {
		a := NewAllocator(nil)
		fr := a.Alloc()
		n := 0
		for _, g := range gets {
			k := int(g % 8)
			for i := 0; i < k; i++ {
				a.Get(fr)
				n++
			}
		}
		for i := 0; i < n; i++ {
			a.Put(fr)
		}
		if a.RefCount(fr) != 1 {
			return false
		}
		a.Put(fr)
		return a.Allocated() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChunkGrowth(t *testing.T) {
	a := NewAllocator(nil)
	// Allocate past one chunk boundary to exercise arena growth.
	n := chunkSize + 10
	fs := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		fs = append(fs, a.Alloc())
	}
	// Metadata for high frames must be addressable and correct.
	last := fs[len(fs)-1]
	if got := a.RefCount(last); got != 1 {
		t.Errorf("high frame refcount = %d", got)
	}
	for _, f := range fs {
		a.Put(f)
	}
	if a.Allocated() != 0 {
		t.Error("leak after chunk growth churn")
	}
}

func TestInfoPanicsOnInvalid(t *testing.T) {
	a := NewAllocator(nil)
	defer func() {
		if recover() == nil {
			t.Error("Info(NoFrame) did not panic")
		}
	}()
	a.Info(NoFrame)
}
