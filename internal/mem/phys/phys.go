// Package phys simulates the physical memory layer of the kernel: a
// frame allocator and the per-frame metadata array that Linux calls
// mem_map (an array of struct page).
//
// Everything the paper measures at fork time bottoms out here: classic
// fork performs one compound-page resolution and one atomic reference
// count increment per mapped 4 KiB frame (the two Figure 3 hotspots),
// while on-demand-fork touches only one counter per 2 MiB last-level
// table. The allocator therefore keeps metadata in a single global
// arena so that concurrent fork instances contend on it the same way
// concurrent kernels contend on struct page cachelines (Figure 2).
//
// Frame data is materialized lazily: a frame can be "allocated and
// mapped" without its 4 KiB buffer existing, in which case its logical
// content is all zeroes. This lets multi-GiB simulated address spaces
// run with metadata-only host cost until pages are actually written.
package phys

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/bulk"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Frame identifies a physical 4 KiB frame. Frame 0 is never allocated,
// so the zero value means "no frame".
type Frame uint64

// NoFrame is the invalid frame number.
const NoFrame Frame = 0

// Valid reports whether f refers to an allocated frame number.
func (f Frame) Valid() bool { return f != NoFrame }

// Page flag bits stored in PageInfo.flags.
const (
	flagCompoundHead uint32 = 1 << iota
	flagCompoundTail
	flagPageTable
	flagAllocated
)

// HugeOrder is the compound-page order of a 2 MiB huge page
// (2^9 = 512 base frames).
const HugeOrder = 9

// PageInfo is the simulated struct page. One exists per physical frame.
//
// As in the paper's implementation (§4, "Memory Usage"), the share
// counter of a last-level page table is stored in a field that is
// unused for that page type — here ptShared doubles inside the same
// struct rather than growing it with fork-specific state.
type PageInfo struct {
	refcount  atomic.Int32 // users of this frame (mapcount folded in)
	ptShared  atomic.Int32 // union: share count when frame holds a PTE table
	flags     uint32       // guarded by the allocator lock for alloc state
	order     uint8        // compound order (head pages only)
	freeOrder int8         // buddy state: 0 = not free, else block order+1
	head      Frame        // compound head (tail pages only)
	charger   FrameCharger // tenant account the frame is charged to (nil = none)
	data      []byte       // lazily materialized 4 KiB payload; nil = zeroes
	dataMu    sync.Mutex   // guards lazy materialization of data
}

// Allocator is the simulated physical memory manager. It hands out
// frames, tracks their struct page metadata, and implements the
// reference counting protocol used by all three fork engines.
type Allocator struct {
	mu sync.Mutex
	// chunks is the mem_map, grown in fixed-size chunks. It is a
	// copy-on-append snapshot: info() loads it without any lock, and
	// ensure() (under mu) publishes a grown copy atomically.
	chunks    atomic.Pointer[[][]PageInfo]
	next      Frame        // next never-used frame number (under mu)
	buddy     buddy        // power-of-two free lists (buddy.go)
	shards    []shard      // per-CPU-style frame caches (shard.go)
	limit     atomic.Int64 // max live base frames (0 = unlimited)
	allocated atomic.Int64 // currently allocated base frames
	peak      atomic.Int64 // high-water mark of allocated
	totalOps  atomic.Uint64
	prof      *profile.Profiler
	met       atomic.Pointer[metrics.Registry]
	trc       atomic.Pointer[trace.Tracer]
	fail      atomic.Pointer[failpoint.Registry]

	// Reclaim integration. lowWater is the free-frame level below which
	// successful reservations nudge the background reclaimer awake; the
	// reclaimer itself (internal/mem/reclaim) also runs synchronously
	// when a reservation fails, before ErrNoMemory is surfaced.
	rec      atomic.Pointer[reclaimerHolder]
	lowWater atomic.Int64
}

// Reclaimer is the memory-pressure escape valve the reclaim subsystem
// plugs into the allocator.
type Reclaimer interface {
	// ReclaimFrames synchronously tries to free at least need base
	// frames (direct reclaim). It reports whether any progress was made.
	ReclaimFrames(need int64) bool
	// FrameFreed notifies that frame f returned to the free lists, so
	// reclaim bookkeeping (LRU nodes, reverse mappings) can be purged.
	FrameFreed(f Frame)
	// LowMemory notifies that free frames dropped below the configured
	// low watermark (non-blocking; wakes the background reclaimer).
	LowMemory()
}

type reclaimerHolder struct{ r Reclaimer }

// SetReclaimer attaches the reclaim subsystem. Pass nil to detach.
func (a *Allocator) SetReclaimer(r Reclaimer) {
	if r == nil {
		a.rec.Store(nil)
		return
	}
	a.rec.Store(&reclaimerHolder{r: r})
}

// ReclaimerHook returns the attached reclaimer (nil when none).
func (a *Allocator) ReclaimerHook() Reclaimer {
	if h := a.rec.Load(); h != nil {
		return h.r
	}
	return nil
}

// SetLowWatermark sets the free-frame level (relative to the limit)
// below which reservations call the reclaimer's LowMemory hook.
// 0 disables the nudge.
func (a *Allocator) SetLowWatermark(frames int64) { a.lowWater.Store(frames) }

const chunkSize = 1 << 16 // PageInfos per arena chunk (64 Ki frames = 256 MiB)

// ErrNoMemory is returned when the allocator refuses an allocation
// (only possible when a frame limit is configured).
var ErrNoMemory = errors.New("phys: out of memory")

// SetLimit caps the number of live base frames; 0 removes the cap.
// TryAlloc fails with ErrNoMemory beyond the cap — the hook for
// exercising the low-memory robustness behaviour of the paper's §4.
func (a *Allocator) SetLimit(frames int64) {
	a.limit.Store(frames)
}

// NewAllocator returns an empty allocator. The profiler may be nil.
func NewAllocator(prof *profile.Profiler) *Allocator {
	a := &Allocator{next: 1, prof: prof, shards: newShards()}
	empty := make([][]PageInfo, 0)
	a.chunks.Store(&empty)
	return a
}

// Profiler returns the profiler charged by this allocator (may be nil).
func (a *Allocator) Profiler() *profile.Profiler { return a.prof }

// SetMetrics attaches a metrics registry. The kernel calls this once
// at boot; allocators built bare (unit tests) never pay for it because
// a nil registry reports disabled.
func (a *Allocator) SetMetrics(m *metrics.Registry) { a.met.Store(m) }

// Metrics returns the attached registry (may be nil). Layers built on
// top of the allocator (address spaces) inherit their registry from
// here, so the whole memory stack shares one instrument tree.
func (a *Allocator) Metrics() *metrics.Registry { return a.met.Load() }

// SetTracer attaches the flight recorder, mirroring SetMetrics: the
// kernel calls it once at boot, and bare allocators never pay for it
// because the nil tracer reports disabled.
func (a *Allocator) SetTracer(t *trace.Tracer) { a.trc.Store(t) }

// Tracer returns the attached flight recorder (may be nil). Address
// spaces and the reclaimer inherit their tracer from here, like the
// metrics registry.
func (a *Allocator) Tracer() *trace.Tracer { return a.trc.Load() }

// SetFailpoints attaches the fault-injection registry, following the
// same pattern as SetMetrics/SetTracer: one atomic pointer, attached
// once at kernel boot, and a detached (nil) registry costs nothing on
// the hot paths because Enabled() on nil reports false.
func (a *Allocator) SetFailpoints(r *failpoint.Registry) { a.fail.Store(r) }

// Failpoints returns the attached fault-injection registry (may be
// nil). Address spaces and the reclaimer inherit it from here.
func (a *Allocator) Failpoints() *failpoint.Registry { return a.fail.Load() }

// info returns the PageInfo for f, which must be a frame number this
// allocator has issued. It is lock-free: the chunk table snapshot is
// immutable once published, and any caller holding a valid frame
// number synchronized (via the lock that handed the frame out) with
// the ensure() that made it addressable.
func (a *Allocator) info(f Frame) *PageInfo {
	chunks := *a.chunks.Load()
	idx := uint64(f)
	return &chunks[idx/chunkSize][idx%chunkSize]
}

// Info exposes frame metadata for tests and diagnostics.
func (a *Allocator) Info(f Frame) *PageInfo {
	if !f.Valid() {
		panic("phys: Info of invalid frame")
	}
	return a.info(f)
}

// ensure grows the arena so frame f is addressable, publishing a new
// chunk-table snapshot. Caller holds mu (growth is serialized; readers
// never block).
func (a *Allocator) ensure(f Frame) {
	need := int(uint64(f)/chunkSize) + 1
	old := *a.chunks.Load()
	if len(old) >= need {
		return
	}
	grown := make([][]PageInfo, need)
	copy(grown, old)
	for i := len(old); i < need; i++ {
		grown[i] = make([]PageInfo, chunkSize)
	}
	a.chunks.Store(&grown)
}

// Alloc allocates one 4 KiB frame with refcount 1. It panics with
// ErrNoMemory wrapped in an OOM panic only never — allocation failure
// is reported by TryAlloc; Alloc itself is infallible unless a frame
// limit is configured, in which case it panics (the simulated OOM
// killer path is exercised through TryAlloc).
func (a *Allocator) Alloc() Frame {
	f, err := a.TryAlloc()
	if err != nil {
		panic(err)
	}
	return f
}

// TryAlloc allocates one 4 KiB frame with refcount 1, returning
// ErrNoMemory when a configured frame limit is exhausted. The fast
// path touches only the caller's shard cache; the buddy core is
// entered once per shardBatch misses.
func (a *Allocator) TryAlloc() (Frame, error) {
	return a.TryAllocFor(nil)
}

// directReclaimRetries bounds how many reclaim-then-retry rounds a
// failing reservation attempts before surfacing ErrNoMemory.
const directReclaimRetries = 3

// reserve charges n base frames against the configured limit, exactly:
// the count is added first and undone on failure, so concurrent
// reservations can never jointly exceed the cap. On failure, an
// attached reclaimer runs synchronously (direct reclaim) and the
// reservation is retried; ErrNoMemory is returned only once reclaim
// stops making progress. Successful reservations that leave fewer than
// the low watermark of free frames nudge the background reclaimer.
func (a *Allocator) reserve(n int64) error {
	cur := a.allocated.Add(n)
	l := a.limit.Load()
	if l > 0 && cur > l {
		a.allocated.Add(-n)
		if r := a.ReclaimerHook(); r != nil {
			for attempt := 0; attempt < directReclaimRetries; attempt++ {
				if !r.ReclaimFrames(n + (cur - l)) {
					break
				}
				cur = a.allocated.Add(n)
				l = a.limit.Load()
				if l <= 0 || cur <= l {
					a.updatePeak(cur)
					return nil
				}
				a.allocated.Add(-n)
			}
		}
		return ErrNoMemory
	}
	a.updatePeak(cur)
	if l > 0 {
		if lw := a.lowWater.Load(); lw > 0 && l-cur < lw {
			if r := a.ReclaimerHook(); r != nil {
				r.LowMemory()
			}
		}
	}
	return nil
}

// TryAllocNoReclaim is TryAlloc without the direct-reclaim retry: a
// limit overrun fails immediately with ErrNoMemory. The reclaim
// subsystem uses it for allocations made while a reclaim pass is in
// flight, where recursing into reclaim would self-deadlock.
func (a *Allocator) TryAllocNoReclaim() (Frame, error) {
	return a.TryAllocNoReclaimFor(nil)
}

// TryAllocPageTableNoReclaim is TryAllocNoReclaim plus the page-table
// flag, for tables built inside a reclaim pass.
func (a *Allocator) TryAllocPageTableNoReclaim() (Frame, error) {
	f, err := a.TryAllocNoReclaim()
	if err != nil {
		return NoFrame, err
	}
	a.info(f).flags |= flagPageTable
	return f, nil
}

// updatePeak raises the high-water mark to cur (CAS max).
func (a *Allocator) updatePeak(cur int64) {
	for {
		p := a.peak.Load()
		if cur <= p || a.peak.CompareAndSwap(p, cur) {
			return
		}
	}
}

// AllocPageTable allocates a frame to back a page table. Page-table
// frames are flagged so the ptShared union field is meaningful. The
// flag is set before the frame is published, so no lock is needed.
func (a *Allocator) AllocPageTable() Frame {
	f := a.Alloc()
	a.info(f).flags |= flagPageTable
	return f
}

// AllocHuge allocates a 2 MiB compound page: 512 physically contiguous
// frames with a head carrying the compound order and refcount, and
// tails pointing back at the head (mirroring Linux compound pages).
// It returns the head frame.
func (a *Allocator) AllocHuge() Frame {
	return a.AllocHugeFor(nil)
}

// AllocHugeFor is AllocHuge charging all 512 base frames to c
// (nil = unaccounted). The charge rides on the compound head; SplitHuge
// spreads it across the resulting order-0 frames.
func (a *Allocator) AllocHugeFor(c FrameCharger) Frame {
	// Huge allocations have no TryAllocHuge counterpart; every call site
	// sits under a catchOOM boundary, so an injected failure surfaces the
	// same way a real one would — as an ErrNoMemory panic.
	if fp := a.fail.Load(); fp.Enabled() && fp.FireAs(failpoint.PhysAllocHuge, chargerTenant(c)) {
		panic(ErrNoMemory)
	}
	a.mu.Lock()
	// An order-9 buddy block is 512 contiguous, naturally aligned
	// frames. Huge allocations bypass the shard caches (they hold only
	// order-0 frames) and go straight to the buddy core.
	head := a.allocBlock(MaxOrder)
	a.mu.Unlock()
	hp := a.info(head)
	hp.flags = flagAllocated | flagCompoundHead
	hp.order = HugeOrder
	hp.head = NoFrame
	hp.charger = c
	for i := Frame(1); i < 1<<HugeOrder; i++ {
		tp := a.info(head + i)
		tp.flags = flagAllocated | flagCompoundTail
		tp.order = 0
		tp.head = head
		tp.charger = nil
		tp.refcount.Store(0)
		tp.ptShared.Store(0)
	}
	a.updatePeak(a.allocated.Add(1 << HugeOrder))
	if c != nil {
		c.ChargeFrames(1 << HugeOrder)
	}
	if m := a.met.Load(); m.Enabled() {
		m.Alloc.HugeAllocs.Inc()
	}

	hp.refcount.Store(1)
	hp.ptShared.Store(0)
	a.totalOps.Add(1)
	return head
}

// CompoundHead resolves f to the head of its compound page (f itself
// for ordinary pages), charging the cost of the struct page load that
// dominates the paper's Figure 3 profile.
func (a *Allocator) CompoundHead(f Frame) Frame {
	a.prof.Charge(profile.CompoundHead, 1)
	pi := a.info(f)
	if pi.flags&flagCompoundTail != 0 {
		return pi.head
	}
	return f
}

// IsHuge reports whether f is the head of a 2 MiB compound page.
func (a *Allocator) IsHuge(f Frame) bool {
	pi := a.info(f)
	return pi.flags&flagCompoundHead != 0 && pi.order == HugeOrder
}

// IsPageTable reports whether f backs a page table.
func (a *Allocator) IsPageTable(f Frame) bool {
	return a.info(f).flags&flagPageTable != 0
}

// Get increments the reference count of the page containing f,
// resolving compound pages first. This is the classic-fork hot path:
// one compound_head + one atomic increment per mapped PTE.
func (a *Allocator) Get(f Frame) {
	head := a.CompoundHead(f)
	a.prof.Charge(profile.PageRefInc, 1)
	pi := a.info(head)
	if pi.refcount.Add(1) == 2 && pi.charger != nil {
		pi.charger.AdjustShared(1)
	}
}

// GetBatch increments the reference count of every page in frames,
// resolving compound pages, with the profiler charged once per counter
// per batch instead of once per frame. Classic fork uses it to
// amortize the per-page accounting of one leaf table into two charges,
// while keeping eager-ref semantics: every frame still receives its
// compound-head resolution and its own atomic increment, so the event
// counts (the Figure 3 quantities) are identical to len(frames) calls
// of Get.
func (a *Allocator) GetBatch(frames []Frame) {
	if len(frames) == 0 {
		return
	}
	n := uint64(len(frames))
	a.prof.Charge(profile.CompoundHead, n)
	a.prof.Charge(profile.PageRefInc, n)
	// One chunk-table load for the whole batch instead of one per
	// frame; the snapshot is immutable once published (see info).
	chunks := *a.chunks.Load()
	for _, f := range frames {
		pi := &chunks[uint64(f)/chunkSize][uint64(f)%chunkSize]
		if pi.flags&flagCompoundTail != 0 {
			pi = &chunks[uint64(pi.head)/chunkSize][uint64(pi.head)%chunkSize]
		}
		if pi.refcount.Add(1) == 2 && pi.charger != nil {
			pi.charger.AdjustShared(1)
		}
	}
}

// RefCount returns the current reference count of f's compound head.
func (a *Allocator) RefCount(f Frame) int32 {
	pi := a.info(f)
	if pi.flags&flagCompoundTail != 0 {
		pi = a.info(pi.head)
	}
	return pi.refcount.Load()
}

// Put decrements the reference count of the page containing f and
// frees the page when the count reaches zero.
func (a *Allocator) Put(f Frame) {
	head := f
	pi := a.info(f)
	if pi.flags&flagCompoundTail != 0 {
		head = pi.head
		pi = a.info(head)
	}
	a.prof.Charge(profile.PageRefDec, 1)
	switch n := pi.refcount.Add(-1); {
	case n == 0:
		a.release(head, pi)
	case n < 0:
		panic(fmt.Sprintf("phys: refcount of frame %d went negative", head))
	case n == 1:
		if pi.charger != nil {
			pi.charger.AdjustShared(-1)
		}
	}
}

// release returns a zero-referenced page to the free lists. The caller
// just dropped the last reference, so the page's metadata is owned
// here; order-0 frames go back through the shard caches, compound
// pages straight to the buddy core.
func (a *Allocator) release(head Frame, pi *PageInfo) {
	pi.dataMu.Lock()
	pi.data = nil
	pi.dataMu.Unlock()

	if pi.flags&flagAllocated == 0 {
		panic(fmt.Sprintf("phys: double free of frame %d", head))
	}
	charger := pi.charger
	pi.charger = nil
	if pi.flags&flagCompoundHead != 0 {
		for i := Frame(1); i < 1<<HugeOrder; i++ {
			tp := a.info(head + i)
			tp.flags = 0
			tp.charger = nil
			tp.dataMu.Lock()
			tp.data = nil
			tp.dataMu.Unlock()
		}
		pi.flags = 0
		a.mu.Lock()
		a.freeBlock(head, MaxOrder)
		a.mu.Unlock()
		a.allocated.Add(-(1 << HugeOrder))
		if charger != nil {
			charger.UnchargeFrames(1 << HugeOrder)
		}
	} else {
		pi.flags = 0
		a.freeFrame(head)
		a.allocated.Add(-1)
		if charger != nil {
			charger.UnchargeFrames(1)
		}
	}
	if r := a.ReclaimerHook(); r != nil {
		r.FrameFreed(head)
	}
}

// SplitHuge converts a 2 MiB compound page with reference count 1 into
// 512 independent order-0 frames, metadata only: no data moves, no
// frames are allocated or freed, and the accounting total is unchanged
// (the compound already counted as 512 base frames). Every resulting
// frame — head included — comes out with reference count 1, matching
// the one-reference-per-present-entry rule for the 512 PTEs the caller
// installs in its place. The reclaim subsystem uses this to make cold
// huge pages evictable at 4 KiB granularity.
func (a *Allocator) SplitHuge(head Frame) {
	a.mu.Lock()
	defer a.mu.Unlock()
	hp := a.info(head)
	if hp.flags&flagCompoundHead == 0 || hp.order != HugeOrder {
		panic(fmt.Sprintf("phys: SplitHuge of non-compound frame %d", head))
	}
	if n := hp.refcount.Load(); n != 1 {
		panic(fmt.Sprintf("phys: SplitHuge of frame %d with refcount %d", head, n))
	}
	hp.flags = flagAllocated
	hp.order = 0
	for i := Frame(1); i < 1<<HugeOrder; i++ {
		tp := a.info(head + i)
		tp.flags = flagAllocated
		tp.order = 0
		tp.head = NoFrame
		// Each resulting frame keeps the compound's tenant account: the
		// head was charged for all 512, and from here on each frame
		// uncharges one when it is released.
		tp.charger = hp.charger
		tp.refcount.Store(1)
		tp.ptShared.Store(0)
	}
}

// PTShareGet atomically increments the page-table share counter stored
// in the frame's struct page union and returns the new value. Used by
// on-demand-fork in place of per-PTE reference counting.
func (a *Allocator) PTShareGet(f Frame) int32 {
	a.prof.Charge(profile.PTShareInc, 1)
	return a.info(f).ptShared.Add(1)
}

// PTSharePut atomically decrements the share counter and returns the
// new value.
func (a *Allocator) PTSharePut(f Frame) int32 {
	n := a.info(f).ptShared.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("phys: PT share count of frame %d went negative", f))
	}
	return n
}

// PTShareCount returns the current share counter of a page-table frame.
func (a *Allocator) PTShareCount(f Frame) int32 {
	return a.info(f).ptShared.Load()
}

// PTShareInit sets the share counter of a freshly allocated page-table
// frame (the "constructor" of §3.5 initializes it to one).
func (a *Allocator) PTShareInit(f Frame, n int32) {
	a.info(f).ptShared.Store(n)
}

// Data returns the 4 KiB payload of an ordinary frame, materializing it
// (zero-filled) on first touch.
func (a *Allocator) Data(f Frame) []byte {
	pi := a.info(f)
	pi.dataMu.Lock()
	if pi.data == nil {
		pi.data = make([]byte, addr.PageSize)
	}
	d := pi.data
	pi.dataMu.Unlock()
	return d
}

// DataIfPresent returns the frame's payload, or nil when the frame is
// still logically zero-filled. Callers must treat nil as zeroes.
func (a *Allocator) DataIfPresent(f Frame) []byte {
	pi := a.info(f)
	pi.dataMu.Lock()
	d := pi.data
	pi.dataMu.Unlock()
	return d
}

// PageIsZero reports whether f's content is logically all zeroes —
// either never materialized, or materialized but holding only zero
// bytes. The word-at-a-time scan bails on the first nonzero lane, so
// the common nonzero page costs one cache line of reads.
func (a *Allocator) PageIsZero(f Frame) bool {
	d := a.DataIfPresent(f)
	return d == nil || bulk.IsZeroPage(d)
}

// CopyPage copies the 4 KiB content of src into dst and reports
// whether any bytes were physically moved. When the source is
// logically zero (never materialized, or materialized all-zero) the
// copy is elided: the destination is left — or returned to — its
// unmaterialized state, so the fault path skips both the 4 KiB
// allocation and the clearing the old implementation paid for
// zero-page COW. The profile counter still counts one page_copy event
// either way, keeping the Figure 3 event counts equal to the number of
// COW faults that requested a copy.
func (a *Allocator) CopyPage(dst, src Frame) bool {
	a.prof.Charge(profile.PageCopy, 1)
	s := a.DataIfPresent(src)
	if s == nil || bulk.IsZeroPage(s) {
		// dst must read back as zeroes; only pay for that when it has
		// stale bytes to hide.
		pi := a.info(dst)
		pi.dataMu.Lock()
		pi.data = nil
		pi.dataMu.Unlock()
		return false
	}
	bulk.CopyPage(a.Data(dst), s)
	return true
}

// CopyHugePage copies the 2 MiB content of the compound page headed at
// src into the compound page headed at dst, frame by frame — the 512×
// data-copy cost the paper attributes to huge-page COW faults. It
// returns the number of subpages physically copied; the remainder were
// zero-elided by CopyPage.
func (a *Allocator) CopyHugePage(dst, src Frame) int {
	copied := 0
	for i := Frame(0); i < 1<<HugeOrder; i++ {
		if a.CopyPage(dst+i, src+i) {
			copied++
		}
	}
	return copied
}

// Allocated returns the number of base frames currently allocated.
func (a *Allocator) Allocated() int64 { return a.allocated.Load() }

// Limit returns the configured frame cap (0 = unlimited).
func (a *Allocator) Limit() int64 { return a.limit.Load() }

// Peak returns the high-water mark of allocated base frames.
func (a *Allocator) Peak() int64 { return a.peak.Load() }

// Stats summarizes allocator state for reports and leak checks.
type Stats struct {
	Allocated int64 // live base frames
	Peak      int64 // maximum live base frames observed
	Extent    int64 // frame numbers ever issued
}

// Stats returns a snapshot of allocator statistics.
func (a *Allocator) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Stats{
		Allocated: a.allocated.Load(),
		Peak:      a.peak.Load(),
		Extent:    int64(a.next - 1),
	}
}

// TouchRef performs the cost of a classic-fork page reference operation
// (compound-head resolution plus one atomic read-modify-write on the
// reference counter) without changing the count. The eager-refcount
// ablation uses it to price the work on-demand-fork's table-based
// accounting (§3.6) avoids.
func (a *Allocator) TouchRef(f Frame) {
	head := a.CompoundHead(f)
	a.prof.Charge(profile.PageRefInc, 1)
	a.info(head).refcount.Add(0)
}
