package phys

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/profile"
)

// TestShardCountersCharged exercises every shard event kind on one
// goroutine: a refill on the first (cold) allocation, fast-path hits
// from the refilled batch, and a drain once frees pile past the cache
// high-water mark.
func TestShardCountersCharged(t *testing.T) {
	prof := profile.New()
	a := NewAllocator(prof)
	const n = 4 * shardMax
	frames := make([]Frame, 0, n)
	for i := 0; i < n; i++ {
		frames = append(frames, a.Alloc())
	}
	for _, f := range frames {
		a.Put(f)
	}
	if got := prof.Count(profile.ShardRefill); got == 0 {
		t.Error("no shard refills charged")
	}
	if got := prof.Count(profile.ShardAllocHit); got == 0 {
		t.Error("no shard fast-path hits charged")
	}
	if got := prof.Count(profile.ShardDrain); got == 0 {
		t.Error("no shard drains charged")
	}
	hits := prof.Count(profile.ShardAllocHit)
	refills := prof.Count(profile.ShardRefill)
	if hits+refills != n {
		t.Errorf("hits (%d) + refills (%d) != allocations (%d)", hits, refills, n)
	}
}

// TestShardConcurrentAllocFree hammers the allocator from many
// goroutines and checks the two exactness properties the sharding must
// not break: no frame is ever handed to two holders at once, and after
// everything is freed the buddy free lists account for every frame,
// fully coalesced.
func TestShardConcurrentAllocFree(t *testing.T) {
	prof := profile.New()
	a := NewAllocator(prof)

	var ownedMu sync.Mutex
	owned := make(map[Frame]int) // frame → goroutine currently holding it

	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var local []Frame
			for i := 0; i < iters; i++ {
				if len(local) == 0 || rng.Intn(3) != 0 {
					f := a.Alloc()
					ownedMu.Lock()
					if prev, dup := owned[f]; dup {
						ownedMu.Unlock()
						t.Errorf("frame %d handed to goroutine %d while held by %d", f, g, prev)
						return
					}
					owned[f] = g
					ownedMu.Unlock()
					local = append(local, f)
				} else {
					j := rng.Intn(len(local))
					f := local[j]
					local[j] = local[len(local)-1]
					local = local[:len(local)-1]
					ownedMu.Lock()
					delete(owned, f)
					ownedMu.Unlock()
					a.Put(f)
				}
			}
			for _, f := range local {
				ownedMu.Lock()
				delete(owned, f)
				ownedMu.Unlock()
				a.Put(f)
			}
		}(g)
	}
	wg.Wait()

	if len(owned) != 0 {
		t.Fatalf("%d frames still marked owned", len(owned))
	}
	if got := a.Allocated(); got != 0 {
		t.Fatalf("Allocated() = %d after freeing everything", got)
	}

	// FreeBlocks flushes the shards; with every frame back in the buddy
	// core the arena must coalesce into maximal blocks exactly covering
	// the grown extent (the first 511 frame numbers are permanently
	// reserved for alignment).
	free := a.FreeBlocks()
	if got := a.ShardCached(); got != 0 {
		t.Fatalf("ShardCached() = %d after FreeBlocks flush", got)
	}
	extent := a.Stats().Extent
	maximal := (extent + 1 - (1 << MaxOrder)) / (1 << MaxOrder)
	for o, n := range free {
		switch {
		case o == MaxOrder && int64(n) != maximal:
			t.Errorf("order %d: %d free blocks, want %d", o, n, maximal)
		case o != MaxOrder && n != 0:
			t.Errorf("order %d: %d uncoalesced free blocks", o, n)
		}
	}
}

// TestShardLimitExactUnderConcurrency checks that the lock-free limit
// reservation admits exactly `limit` frames no matter how many
// goroutines race for them.
func TestShardLimitExactUnderConcurrency(t *testing.T) {
	a := NewAllocator(nil)
	const limit = 100
	a.SetLimit(limit)

	const goroutines = 8
	var wg sync.WaitGroup
	got := make([][]Frame, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				f, err := a.TryAlloc()
				if err != nil {
					return
				}
				got[g] = append(got[g], f)
			}
		}(g)
	}
	wg.Wait()

	total := 0
	for _, fs := range got {
		total += len(fs)
	}
	if total != limit {
		t.Errorf("admitted %d allocations under limit %d", total, limit)
	}
	if a.Allocated() != limit {
		t.Errorf("Allocated() = %d, want %d", a.Allocated(), limit)
	}
	for _, fs := range got {
		for _, f := range fs {
			a.Put(f)
		}
	}
	if a.Allocated() != 0 {
		t.Errorf("Allocated() = %d after freeing", a.Allocated())
	}
}
