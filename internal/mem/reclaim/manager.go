// Package reclaim implements the memory reclaim subsystem: per-frame
// LRU lists with second-chance aging, a reverse map from frames to the
// page-table entries that map them, swap-out of cold anonymous pages to
// a pluggable backing store, and a kswapd-style background reclaimer
// driven by low/high watermarks on the frame allocator.
//
// Without this layer the simulated allocator's frame limit is a cliff:
// the first allocation past it is an out-of-memory error. With it, the
// limit behaves like physical RAM in a real kernel — pressure first
// wakes the background reclaimer, then triggers synchronous direct
// reclaim from the allocating path, and only when eviction can free
// nothing does the OOM error surface.
//
// # Locking
//
// The manager observes a strict order: address-space mutexes (acquired
// by TryLock in ascending ReclaimID order) → page-table locks →
// manager.mu. Bookkeeping hooks are called from code already holding
// some owner's address-space mutex (and possibly a table lock), and
// take manager.mu innermost. Eviction inverts the flow — it starts from
// the manager — so it never *blocks* on an address-space mutex: it
// snapshots a candidate under manager.mu, drops the lock, TryLocks
// every owning space, and revalidates the snapshot before touching any
// PTE. Any concurrent change (a fault, a fork, an unmap) either holds
// an owner's mutex (so the TryLock fails) or happened before the
// revalidation (which then fails). Either way the candidate is simply
// put back and eviction moves on.
package reclaim

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/mem/phys"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Swap I/O failure classes. A store operation that keeps failing after
// the bounded retries surfaces as ErrSwapIO from the faulting access
// and flips the manager into degraded mode (no further swap-out); a
// payload whose checksum no longer matches what was written surfaces
// as ErrSwapCorrupt. Both are matched with errors.Is.
var (
	ErrSwapIO      = errors.New("reclaim: swap I/O failure")
	ErrSwapCorrupt = errors.New("reclaim: swap payload corrupt")
)

// Swap I/O retry tuning: a failing store operation is retried a few
// times with doubling backoff (50µs, 100µs, 200µs) before the failure
// is surfaced — transient device hiccups resolve, persistent faults
// degrade quickly.
const (
	swapIOAttempts  = 4
	swapBackoffBase = 50 * time.Microsecond
)

// Space is the view the reclaimer has of an address space: just enough
// to exclude its page-table mutators during eviction and to invalidate
// its TLB afterwards. core.AddressSpace implements it.
type Space interface {
	// ReclaimID is a process-lifetime-unique ID used only to sort lock
	// acquisition order.
	ReclaimID() uint64
	// TryLockForReclaim attempts to take the space's mutex without
	// blocking.
	TryLockForReclaim() bool
	// UnlockForReclaim releases the mutex taken by TryLockForReclaim.
	UnlockForReclaim()
	// ReclaimFlushTLB drops the space's cached translations. Called with
	// the space's mutex held (by TryLockForReclaim).
	ReclaimFlushTLB()
}

// mapping is one reverse-map entry: table entry idx of t maps the frame.
// No virtual address is kept — eviction invalidates each owner's whole
// TLB instead of single lines, which keeps the rmap valid under
// on-demand-fork's table sharing (a shared table has no single vaddr).
type mapping struct {
	table *pagetable.Table
	idx   int
}

// frameNode is the per-tracked-frame reclaim state: its reverse
// mappings and its position on the LRU lists.
type frameNode struct {
	frame    phys.Frame
	huge     bool // frame is a 2 MiB compound head mapped by a PMD entry
	mappings []mapping

	prev, next *frameNode
	list       int
	part       *partition // LRU partition the node lives on
}

// partition is one tenant's slice of the LRU: frames charged to the
// same account age together, so eviction can target a specific tenant
// without scanning everyone else's pages. The default partition
// (c == nil) holds uncharged frames.
type partition struct {
	lru
	c phys.FrameCharger
}

// overshooter is implemented by tenant accounts (tenant.Tenant) that
// expose how many frames they currently hold beyond their quota.
// Partitions whose account overshoots are reclaim's preferred victims.
type overshooter interface{ ReclaimOvershoot() int64 }

// reclaimNoter, when implemented by a tenant account, receives the
// count of frames stolen from it by fair-share eviction.
type reclaimNoter interface{ NoteReclaimed(n int64) }

// Watermark and scan tuning.
const (
	// reclaimSlack is freed on top of the immediate need during direct
	// reclaim, so one stall covers a short burst of allocations.
	reclaimSlack = 16
	// scanBudgetFactor bounds LRU candidates inspected per frame the
	// pass wants to free (second chances cost scan budget, not loops).
	scanBudgetFactor = 8
	// refillBatch is how many active-list nodes one refill step may
	// demote to the inactive list.
	refillBatch = 32
	// kswapdInterval is the background reclaimer's poll period; wakeups
	// from the allocator's low-watermark nudge arrive much sooner.
	kswapdInterval = 10 * time.Millisecond
)

// Manager is the reclaim subsystem instance for one allocator. The zero
// value is not usable; see NewManager. All bookkeeping is inert until
// SetEnabled(true).
type Manager struct {
	alloc *phys.Allocator
	met   *metrics.Registry
	trc   *trace.Tracer

	// tracking gates the bookkeeping hooks and eviction. Swap-slot
	// reference counts are NOT gated: once a swap entry exists in a page
	// table it must stay consistent even if tracking is later disabled.
	tracking atomic.Bool

	// degraded latches after a swap I/O failure exhausts its retries:
	// eviction and kswapd balancing stop (no new pages are put at
	// risk), reads of already-swapped pages are still attempted, and
	// re-enabling the subsystem clears the latch.
	degraded atomic.Bool

	// mu guards frames, owners, the LRU partitions, slots, and the
	// watermark fields. It is the innermost lock of the whole memory
	// stack.
	mu     sync.Mutex
	frames map[phys.Frame]*frameNode
	owners map[*pagetable.Table]map[Space]struct{}
	// defq holds frames charged to no tenant; parts holds one LRU
	// partition per tenant account with tracked frames. Victim
	// selection walks parts for quota overshoot before falling back to
	// defq (see pickPartitionLocked).
	defq  partition
	parts map[phys.FrameCharger]*partition
	// slots holds per-swap-slot bookkeeping: the reference count (one
	// per swap PTE) and the payload checksum recorded at swap-out.
	// Slot 0 is the implicit zero page: refcounted here, never stored.
	slots map[uint64]slotInfo

	// reclaimMu serializes shrink passes (kswapd and direct reclaim).
	reclaimMu sync.Mutex

	store   Store
	low     atomic.Int64
	high    atomic.Int64
	userWM  atomic.Bool // watermarks explicitly configured
	wake    chan struct{}
	kswapMu sync.Mutex    // guards kswapd start/stop
	stopCh  chan struct{} // non-nil while kswapd runs
	doneCh  chan struct{}
}

// NewManager builds a reclaim manager over alloc, initially disabled,
// with a compressed in-memory store. The registry may be shared with
// the rest of the kernel (it is only consulted when enabled); the
// flight recorder is inherited from the allocator, so the kernel must
// attach it (phys.Allocator.SetTracer) before building the manager.
func NewManager(alloc *phys.Allocator, met *metrics.Registry) *Manager {
	return &Manager{
		alloc:  alloc,
		met:    met,
		trc:    alloc.Tracer(),
		frames: make(map[phys.Frame]*frameNode),
		owners: make(map[*pagetable.Table]map[Space]struct{}),
		parts:  make(map[phys.FrameCharger]*partition),
		slots:  make(map[uint64]slotInfo),
		store:  NewMemStore(),
		wake:   make(chan struct{}, 1),
	}
}

// Enabled reports whether reclaim tracking and eviction are on.
func (m *Manager) Enabled() bool { return m.tracking.Load() }

// SetStore replaces the backing store. Only legal while reclaim is
// disabled and no swapped-out pages are outstanding; the previous store
// is closed.
func (m *Manager) SetStore(s Store) error {
	if m.tracking.Load() {
		return errors.New("reclaim: cannot replace store while enabled")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.slots) != 0 {
		return errors.New("reclaim: cannot replace store with swapped pages outstanding")
	}
	if m.store != nil {
		m.store.Close()
	}
	m.store = s
	return nil
}

// SetWatermarks configures the kswapd thresholds in frames: below low
// free frames the background reclaimer runs, and it reclaims until high
// free frames are available. Pass (0, 0) to return to automatic
// watermarks derived from the allocator's limit.
func (m *Manager) SetWatermarks(low, high int64) error {
	if low == 0 && high == 0 {
		m.userWM.Store(false)
		m.applyAutoWatermarks()
		return nil
	}
	if low <= 0 || high <= low {
		return fmt.Errorf("reclaim: invalid watermarks low=%d high=%d", low, high)
	}
	m.userWM.Store(true)
	m.low.Store(low)
	m.high.Store(high)
	m.alloc.SetLowWatermark(low)
	return nil
}

// applyAutoWatermarks derives default watermarks from the current frame
// limit: low = limit/16 clamped to [8, 4096], high = 2*low. Recomputed
// on every balance step so a limit change after enabling is honored.
func (m *Manager) applyAutoWatermarks() {
	limit := m.alloc.Limit()
	if limit <= 0 {
		m.low.Store(0)
		m.high.Store(0)
		m.alloc.SetLowWatermark(0)
		return
	}
	low := limit / 16
	if low < 8 {
		low = 8
	}
	if low > 4096 {
		low = 4096
	}
	m.low.Store(low)
	m.high.Store(2 * low)
	m.alloc.SetLowWatermark(low)
}

// Watermarks returns the current (low, high) thresholds in frames.
func (m *Manager) Watermarks() (low, high int64) {
	return m.low.Load(), m.high.Load()
}

// SetEnabled turns the subsystem on or off. Enabling starts kswapd and
// begins LRU/rmap tracking of subsequently mapped pages; disabling
// stops kswapd and drops the tracking state. Swap-slot contents and
// reference counts survive a disable — already swapped-out pages remain
// readable and fault back in normally — but no further eviction
// happens while disabled.
func (m *Manager) SetEnabled(on bool) {
	m.kswapMu.Lock()
	defer m.kswapMu.Unlock()
	if on == m.tracking.Load() {
		return
	}
	if on {
		if !m.userWM.Load() {
			m.applyAutoWatermarks()
		} else {
			m.alloc.SetLowWatermark(m.low.Load())
		}
		// A fresh enable forgives past swap I/O failures — the operator
		// re-enabling swap is the "device replaced" signal.
		m.degraded.Store(false)
		m.tracking.Store(true)
		m.stopCh = make(chan struct{})
		m.doneCh = make(chan struct{})
		go m.kswapd(m.stopCh, m.doneCh)
		return
	}
	m.tracking.Store(false)
	close(m.stopCh)
	<-m.doneCh
	m.stopCh, m.doneCh = nil, nil
	m.alloc.SetLowWatermark(0)
	m.mu.Lock()
	m.frames = make(map[phys.Frame]*frameNode)
	m.owners = make(map[*pagetable.Table]map[Space]struct{})
	m.defq = partition{}
	m.parts = make(map[phys.FrameCharger]*partition)
	m.mu.Unlock()
}

// ---------------------------------------------------------------------
// Bookkeeping hooks. All are called by package core while holding the
// mutating space's mutex (and usually the table's lock); all are cheap
// no-ops when tracking is off.

// PageMapped records that entry idx of leaf t now maps 4 KiB frame f,
// on behalf of owner. New frames enter the active LRU list.
func (m *Manager) PageMapped(f phys.Frame, t *pagetable.Table, idx int, owner Space) {
	if !m.tracking.Load() {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ownerAddLocked(t, owner)
	n := m.frames[f]
	if n == nil {
		n = &frameNode{frame: f}
		m.frames[f] = n
		n.part = m.partForLocked(f)
		n.part.add(n, onActive)
	}
	for _, mp := range n.mappings {
		if mp.table == t && mp.idx == idx {
			return
		}
	}
	n.mappings = append(n.mappings, mapping{table: t, idx: idx})
}

// partForLocked returns the LRU partition for frame f, resolving the
// frame's charger through the allocator and materializing the tenant's
// partition on first use. Called with m.mu held.
func (m *Manager) partForLocked(f phys.Frame) *partition {
	c := m.alloc.ChargerOf(f)
	if c == nil {
		return &m.defq
	}
	p := m.parts[c]
	if p == nil {
		p = &partition{c: c}
		m.parts[c] = p
	}
	return p
}

// releaseIfEmptyLocked drops a tenant partition from the map once it
// holds no frames, so destroyed tenants are not pinned by the reclaim
// state. Called with m.mu held.
func (m *Manager) releaseIfEmptyLocked(p *partition) {
	if p != nil && p.c != nil && p.len() == 0 && m.parts[p.c] == p {
		delete(m.parts, p.c)
	}
}

// PageUnmapped records that entry idx of t no longer maps f.
func (m *Manager) PageUnmapped(f phys.Frame, t *pagetable.Table, idx int) {
	if !m.tracking.Load() {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.frames[f]
	if n == nil {
		return
	}
	for i, mp := range n.mappings {
		if mp.table == t && mp.idx == idx {
			n.mappings = append(n.mappings[:i], n.mappings[i+1:]...)
			break
		}
	}
	if len(n.mappings) == 0 {
		n.part.remove(n)
		delete(m.frames, f)
		m.releaseIfEmptyLocked(n.part)
	}
}

// HugeMapped records that PMD entry idx of pmd maps the 2 MiB compound
// page headed at head, on behalf of owner.
func (m *Manager) HugeMapped(head phys.Frame, pmd *pagetable.Table, idx int, owner Space) {
	if !m.tracking.Load() {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ownerAddLocked(pmd, owner)
	n := m.frames[head]
	if n == nil {
		n = &frameNode{frame: head, huge: true}
		m.frames[head] = n
		n.part = m.partForLocked(head)
		n.part.add(n, onActive)
	}
	for _, mp := range n.mappings {
		if mp.table == pmd && mp.idx == idx {
			return
		}
	}
	n.mappings = append(n.mappings, mapping{table: pmd, idx: idx})
}

// HugeUnmapped records that PMD entry idx of pmd no longer maps head.
func (m *Manager) HugeUnmapped(head phys.Frame, pmd *pagetable.Table, idx int) {
	m.PageUnmapped(head, pmd, idx)
}

// OwnerAdd records that space s can reach (and therefore mutate under
// its own mutex) table t. Idempotent.
func (m *Manager) OwnerAdd(t *pagetable.Table, s Space) {
	if !m.tracking.Load() {
		return
	}
	m.mu.Lock()
	m.ownerAddLocked(t, s)
	m.mu.Unlock()
}

// OwnerRemove records that s dropped its reference to t while other
// spaces keep theirs (table-share count stayed positive).
func (m *Manager) OwnerRemove(t *pagetable.Table, s Space) {
	if !m.tracking.Load() {
		return
	}
	m.mu.Lock()
	if set := m.owners[t]; set != nil {
		delete(set, s)
		if len(set) == 0 {
			delete(m.owners, t)
		}
	}
	m.mu.Unlock()
}

// TableFreed records that t's backing frame was released; all owner
// bookkeeping for it is dropped. The caller has already unmapped every
// entry, so no reverse mappings reference t by now.
func (m *Manager) TableFreed(t *pagetable.Table) {
	if !m.tracking.Load() {
		return
	}
	m.mu.Lock()
	delete(m.owners, t)
	m.mu.Unlock()
}

func (m *Manager) ownerAddLocked(t *pagetable.Table, s Space) {
	set := m.owners[t]
	if set == nil {
		set = make(map[Space]struct{}, 2)
		m.owners[t] = set
	}
	set[s] = struct{}{}
}

// FrameFreed implements phys.Reclaimer: the frame went back to the free
// lists, so any leftover tracking state is purged.
func (m *Manager) FrameFreed(f phys.Frame) {
	if !m.tracking.Load() {
		return
	}
	m.mu.Lock()
	if n, ok := m.frames[f]; ok {
		n.part.remove(n)
		delete(m.frames, f)
		m.releaseIfEmptyLocked(n.part)
	}
	m.mu.Unlock()
}

// ---------------------------------------------------------------------
// Swap slots.

// slotInfo is the per-swap-slot bookkeeping: the reference count (one
// per swap PTE holding the slot) and the CRC32 of the payload recorded
// at swap-out, verified on swap-in. Slot 0 (the zero page) carries no
// checksum.
type slotInfo struct {
	refs   int64
	crc    uint32
	hasCRC bool
}

// SwapRef adds one reference to a swap slot (a fork duplicated a swap
// PTE into a new table). Not gated on tracking: slot accounting must
// stay exact for as long as swap entries exist.
func (m *Manager) SwapRef(slot uint64) {
	m.mu.Lock()
	si := m.slots[slot]
	si.refs++
	m.slots[slot] = si
	m.mu.Unlock()
}

// SwapUnref drops one reference to a swap slot (a swap PTE was zapped
// or replaced by swap-in); the last reference frees the store slot.
func (m *Manager) SwapUnref(slot uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	si, ok := m.slots[slot]
	if !ok {
		panic(fmt.Sprintf("reclaim: unref of untracked swap slot %d", slot))
	}
	if si.refs--; si.refs > 0 {
		m.slots[slot] = si
		return
	}
	delete(m.slots, slot)
	if slot != 0 {
		m.freeSlotLocked(slot)
	}
}

// freeSlotLocked releases a store slot, honoring the swap.free
// failpoint: a failed free is simply retried — the store's Free is
// idempotent bookkeeping, and a leaked slot would fail the chaos
// harness's zero-leak audit, so the failure mode here is extra
// attempts, never a leak.
func (m *Manager) freeSlotLocked(slot uint64) {
	fp := m.alloc.Failpoints()
	for attempt := 0; attempt < swapIOAttempts; attempt++ {
		if fp.Enabled() && fp.Fire(failpoint.SwapFree) {
			continue
		}
		break
	}
	m.store.Free(slot)
}

// ReadSlot copies the page content of a swap slot into dst without
// consuming a reference. Slot 0 is the implicit zero page. Transient
// store failures (injected or real) are retried with capped
// exponential backoff; a persistent failure degrades the subsystem and
// surfaces as ErrSwapIO, and a payload that no longer matches its
// recorded checksum surfaces as ErrSwapCorrupt.
func (m *Manager) ReadSlot(slot uint64, dst []byte) error {
	if slot == 0 {
		clear(dst)
		return nil
	}
	fp := m.alloc.Failpoints()
	on := m.met.Enabled()
	var err error
	for attempt := 0; attempt < swapIOAttempts; attempt++ {
		if attempt > 0 {
			if on {
				m.met.Robust.SwapReadRetries.Inc()
			}
			time.Sleep(swapBackoffBase << (attempt - 1))
		}
		if fp.Enabled() && fp.Fire(failpoint.SwapRead) {
			err = fmt.Errorf("%w: injected read fault on slot %d", ErrSwapIO, slot)
			continue
		}
		if err = m.store.Read(slot, dst); err == nil {
			break
		}
	}
	if err != nil {
		if on {
			m.met.Robust.SwapReadErrors.Inc()
		}
		m.degrade(true)
		if !errors.Is(err, ErrSwapIO) {
			err = fmt.Errorf("%w: %v", ErrSwapIO, err)
		}
		return err
	}
	m.mu.Lock()
	si := m.slots[slot]
	m.mu.Unlock()
	if si.hasCRC && crc32.ChecksumIEEE(dst) != si.crc {
		if on {
			m.met.Robust.SwapCorruptions.Inc()
		}
		return fmt.Errorf("%w: slot %d checksum mismatch", ErrSwapCorrupt, slot)
	}
	return nil
}

// writeSlot persists one page payload with the same retry/backoff
// policy as ReadSlot and returns the slot plus the checksum to record.
// The swap.corrupt failpoint poisons the recorded checksum (the model
// of a device that acknowledged a write it mangled), so the corruption
// is only discovered at swap-in.
func (m *Manager) writeSlot(data []byte) (uint64, uint32, error) {
	fp := m.alloc.Failpoints()
	on := m.met.Enabled()
	var slot uint64
	var err error
	for attempt := 0; attempt < swapIOAttempts; attempt++ {
		if attempt > 0 {
			if on {
				m.met.Robust.SwapWriteRetries.Inc()
			}
			time.Sleep(swapBackoffBase << (attempt - 1))
		}
		if fp.Enabled() && fp.Fire(failpoint.SwapWrite) {
			err = fmt.Errorf("%w: injected write fault", ErrSwapIO)
			continue
		}
		if slot, err = m.store.Write(data); err == nil {
			break
		}
	}
	if err != nil {
		if on {
			m.met.Robust.SwapWriteErrors.Inc()
		}
		m.degrade(false)
		return 0, 0, err
	}
	crc := crc32.ChecksumIEEE(data)
	if fp.Enabled() && fp.Fire(failpoint.SwapCorrupt) {
		crc ^= 0xDEADBEEF
	}
	return slot, crc, nil
}

// degrade latches the manager into degraded-swap mode after a
// persistent I/O failure: no further eviction, a one-shot metric and
// trace event, reads still attempted. read attributes the trigger.
func (m *Manager) degrade(read bool) {
	if m.degraded.Swap(true) {
		return
	}
	if m.met.Enabled() {
		m.met.Robust.SwapDegrades.Inc()
	}
	arg := uint64(0)
	if read {
		arg = 1
	}
	m.trc.Instant(trace.KindSwapDegrade, trace.StageNone, trace.ActorApp, arg, 0)
}

// Degraded reports whether swap has been disabled by an I/O failure.
func (m *Manager) Degraded() bool { return m.degraded.Load() }

// ---------------------------------------------------------------------
// Reclaim passes.

// ReclaimFrames implements phys.Reclaimer: synchronous direct reclaim
// from a failing allocation. Reports whether any frames were freed.
func (m *Manager) ReclaimFrames(need int64) bool {
	if !m.tracking.Load() {
		return false
	}
	on := m.met.Enabled()
	var t0 time.Time
	if on {
		m.met.Reclaim.DirectReclaims.Inc()
		t0 = time.Now()
	}
	freed := m.shrink(need+reclaimSlack, true)
	if on {
		m.met.Reclaim.DirectStallLatency.Observe(time.Since(t0))
	}
	return freed > 0
}

// LowMemory implements phys.Reclaimer: non-blocking kswapd wakeup.
func (m *Manager) LowMemory() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// kswapd is the background reclaimer goroutine: on each wakeup (or
// poll tick) it frees pages until the high watermark of free frames is
// restored, mirroring its kernel namesake.
func (m *Manager) kswapd(stop, done chan struct{}) {
	defer close(done)
	// The pprof label attributes CPU samples of eviction, writeback and
	// huge-split work to the background reclaimer in profiles.
	pprof.Do(context.Background(), pprof.Labels("odf", "kswapd"), func(context.Context) {
		ticker := time.NewTicker(kswapdInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-m.wake:
			case <-ticker.C:
			}
			m.balanceGuarded()
		}
	})
}

// balanceGuarded runs one balance episode behind a recover barrier: a
// panicking reclaim pass (a bug, or the kswapd.panic failpoint) must
// not kill the background reclaimer — the episode is abandoned,
// counted, and the next wakeup services the watermarks normally.
// reclaimMu is acquired and released inside shrink, so an unwound
// episode leaves no lock held.
func (m *Manager) balanceGuarded() {
	defer func() {
		if r := recover(); r != nil {
			if m.met.Enabled() {
				m.met.Robust.KswapdErrors.Inc()
			}
		}
	}()
	if fp := m.alloc.Failpoints(); fp.Enabled() && fp.Fire(failpoint.KswapdPanic) {
		panic("reclaim: injected kswapd panic")
	}
	m.balance()
}

// balance runs one kswapd episode: if free frames are below the low
// watermark, reclaim up to the high watermark.
func (m *Manager) balance() {
	if !m.userWM.Load() {
		m.applyAutoWatermarks()
	}
	limit := m.alloc.Limit()
	low := m.low.Load()
	if limit <= 0 || low <= 0 {
		return
	}
	free := limit - m.alloc.Allocated()
	if free >= low {
		return
	}
	if m.met.Enabled() {
		m.met.Reclaim.KswapdWakeups.Inc()
	}
	m.trc.Instant(trace.KindKswapdWake, trace.StageNone, trace.ActorKswapd, uint64(free), 0)
	m.shrink(m.high.Load()-free, false)
}

// shrink frees up to target frames by evicting cold pages off the
// inactive list, with second-chance promotion for referenced pages and
// huge-page splitting for cold 2 MiB mappings. Returns frames freed.
// Passes are serialized on reclaimMu; direct is only used for metric
// attribution.
func (m *Manager) shrink(target int64, direct bool) int64 {
	if target <= 0 {
		return 0
	}
	m.reclaimMu.Lock()
	defer m.reclaimMu.Unlock()
	// Degraded swap means eviction would hand more pages to a failing
	// device; stop reclaiming and let the frame limit surface as OOM.
	if !m.tracking.Load() || m.degraded.Load() {
		return 0
	}
	on := m.met.Enabled()
	pgscan, pgsteal := &m.met.Reclaim.PgScanKswapd, &m.met.Reclaim.PgStealKswapd
	actor := trace.ActorKswapd
	if direct {
		pgscan, pgsteal = &m.met.Reclaim.PgScanDirect, &m.met.Reclaim.PgStealDirect
		actor = trace.ActorApp
	}
	var scanned int64
	var scanStart time.Time
	if m.trc.Enabled() {
		scanStart = time.Now()
	}
	var freed int64
	defer func() {
		m.trc.Span(trace.KindReclaimScan, trace.StageNone, actor, scanStart, uint64(scanned), uint64(freed))
	}()
	// The scan budget must cover second-chancing the whole population
	// twice (clear accessed bits on the first lap, evict on the second)
	// — the moral equivalent of the kernel escalating scan priority
	// until the target is met — plus slack for requeues.
	budget := target*scanBudgetFactor + 64
	m.mu.Lock()
	active, inactive := m.lruSizesLocked()
	if b := 2*(active+inactive) + target; b > budget {
		budget = b
	}
	m.mu.Unlock()
	for freed < target && budget > 0 {
		budget--
		m.mu.Lock()
		p, fair := m.pickPartitionLocked()
		if p == nil {
			m.mu.Unlock()
			break
		}
		victim := p.c
		p.refill(refillBatch)
		n := p.inactive.popFront()
		if n == nil {
			// No inactive candidates: force-age the active list once,
			// then give up if there is still nothing.
			for i := 0; i < refillBatch; i++ {
				if a := p.active.popFront(); a != nil {
					a.list = onInactive
					p.inactive.pushBack(a)
				}
			}
			n = p.inactive.popFront()
			if n == nil {
				m.mu.Unlock()
				break
			}
		}
		n.list = onNone
		scanned++
		if on {
			pgscan.Inc()
		}
		if m.referencedLocked(n) {
			// Second chance: accessed since last scan. Clear the bits
			// (done inside referencedLocked) and promote.
			n.part.add(n, onActive)
			m.mu.Unlock()
			continue
		}
		// m.mu is released inside evictLocked/splitHugeLocked.
		if n.huge {
			m.splitHugeLocked(n, actor)
		} else if m.evictLocked(n, actor) {
			freed++
			if on {
				pgsteal.Inc()
			}
			if fair {
				// The frame came off an over-quota tenant's partition:
				// record the steal against its account.
				if nr, ok := victim.(reclaimNoter); ok {
					nr.NoteReclaimed(1)
				}
				if on {
					m.met.Tenant.FairEvictions.Inc()
				}
			}
		}
	}
	return freed
}

// lruSizesLocked sums the active/inactive list lengths across every
// partition. Called with m.mu held.
func (m *Manager) lruSizesLocked() (active, inactive int64) {
	active = int64(m.defq.active.size)
	inactive = int64(m.defq.inactive.size)
	for _, p := range m.parts {
		active += int64(p.active.size)
		inactive += int64(p.inactive.size)
	}
	return active, inactive
}

// pickPartitionLocked selects the LRU partition the next eviction
// candidate comes from — the fair-share policy. Tenant partitions
// whose account is over its frame quota are preferred, worst overshoot
// first, so a noisy tenant's pages are stolen before anyone else's;
// repeated picks re-read the overshoot, so eviction pressure tracks
// each account as its usage falls (proportional over a pass). With no
// overshoot anywhere the default partition (uncharged frames) is
// scanned, then any non-empty tenant partition — approximately the old
// global LRU order. Reports whether the pick was a fair-share
// (over-quota) one. Called with m.mu held; returns nil when every
// partition is empty.
func (m *Manager) pickPartitionLocked() (*partition, bool) {
	var best *partition
	var bestOver int64
	for _, p := range m.parts {
		if p.len() == 0 {
			continue
		}
		if o, ok := p.c.(overshooter); ok {
			if ov := o.ReclaimOvershoot(); ov > bestOver {
				bestOver, best = ov, p
			}
		}
	}
	if best != nil {
		return best, true
	}
	if m.defq.len() > 0 {
		return &m.defq, false
	}
	for _, p := range m.parts {
		if p.len() > 0 {
			return p, false
		}
	}
	return nil, false
}

// referencedLocked performs the second-chance test: it reads and clears
// the accessed bit of every PTE mapping the frame. Entry loads and the
// flag clear are atomic, so no table lock is needed, and accessed/dirty
// bits do not participate in table tallies.
func (m *Manager) referencedLocked(n *frameNode) bool {
	ref := false
	for _, mp := range n.mappings {
		e := mp.table.Entry(mp.idx)
		if e.Present() && e.Accessed() {
			ref = true
			mp.table.ClearEntryFlags(mp.idx, pagetable.FlagAccessed)
		}
	}
	return ref
}

// lockOwnersLocked collects and sorts the owner set of every table in
// n's mappings, then TryLocks each space in ID order. Called with m.mu
// held; returns with m.mu RELEASED. On success the locked spaces are
// returned; on failure (unknown owner or TryLock miss) it returns nil
// and the node has been put back on the active list.
func (m *Manager) lockOwnersLocked(n *frameNode) []Space {
	set := make(map[Space]struct{}, 4)
	for _, mp := range n.mappings {
		os := m.owners[mp.table]
		if len(os) == 0 {
			// A mapped table with no registered owner is unevictable
			// (bookkeeping raced); try again later.
			n.part.add(n, onActive)
			m.mu.Unlock()
			return nil
		}
		for s := range os {
			set[s] = struct{}{}
		}
	}
	owners := make([]Space, 0, len(set))
	for s := range set {
		owners = append(owners, s)
	}
	sort.Slice(owners, func(i, j int) bool {
		return owners[i].ReclaimID() < owners[j].ReclaimID()
	})
	m.mu.Unlock()

	for i, s := range owners {
		if !s.TryLockForReclaim() {
			for j := 0; j < i; j++ {
				owners[j].UnlockForReclaim()
			}
			m.mu.Lock()
			m.requeueLocked(n)
			m.mu.Unlock()
			return nil
		}
	}
	return owners
}

// requeueLocked puts a popped node back on the active list if it is
// still tracked (a concurrent unmap may have dropped it). The
// partition is re-resolved: while the node was off-list its partition
// may have emptied and been released from the map.
func (m *Manager) requeueLocked(n *frameNode) {
	if m.frames[n.frame] == n && n.list == onNone {
		n.part = m.partForLocked(n.frame)
		n.part.add(n, onActive)
	}
}

// revalidateLocked rechecks, under m.mu with all owners locked, that
// the snapshot taken before locking still describes reality: the node
// is still tracked with the same mappings, every PTE still maps the
// frame, the owner set did not grow, and the frame's reference count
// equals its mapping count (no out-of-rmap references, e.g. a fork in
// flight).
func (m *Manager) revalidateLocked(n *frameNode, snap []mapping, locked []Space) bool {
	if m.frames[n.frame] != n || len(n.mappings) != len(snap) {
		return false
	}
	held := make(map[Space]struct{}, len(locked))
	for _, s := range locked {
		held[s] = struct{}{}
	}
	for i, mp := range n.mappings {
		if mp != snap[i] {
			return false
		}
		os := m.owners[mp.table]
		if len(os) == 0 {
			return false
		}
		for s := range os {
			if _, ok := held[s]; !ok {
				return false
			}
		}
		e := mp.table.Entry(mp.idx)
		if n.huge {
			if !e.Present() || !e.Huge() || e.Frame() != n.frame {
				return false
			}
		} else {
			if !e.Present() || e.Huge() || e.Frame() != n.frame {
				return false
			}
		}
	}
	want := int32(len(n.mappings))
	if n.huge {
		want = 1
	}
	return m.alloc.RefCount(n.frame) == want
}

// evictLocked swaps out one cold 4 KiB frame. Called with m.mu held and
// n popped off the LRU; returns with m.mu released. Reports whether the
// frame was freed. actor attributes the trace events to the reclaiming
// context (kswapd or a direct-reclaiming app goroutine).
func (m *Manager) evictLocked(n *frameNode, actor int32) bool {
	snap := append([]mapping(nil), n.mappings...)
	owners := m.lockOwnersLocked(n) // releases m.mu
	if owners == nil {
		return false
	}
	unlockAll := func() {
		for _, s := range owners {
			s.UnlockForReclaim()
		}
	}

	m.mu.Lock()
	if !m.revalidateLocked(n, snap, owners) {
		m.requeueLocked(n)
		m.mu.Unlock()
		unlockAll()
		return false
	}
	// Committed: from here nothing can fail except the store write.
	f := n.frame
	m.mu.Unlock()

	// Write the payload out. A never-materialized (all-zero) page takes
	// the reserved zero slot and costs no store I/O at all.
	var slot uint64
	var crc uint32
	var hasCRC bool
	if data := m.alloc.DataIfPresent(f); data != nil {
		on := m.met.Enabled()
		var t0 time.Time
		if on || m.trc.Enabled() {
			t0 = time.Now()
		}
		s, c, err := m.writeSlot(data)
		if err != nil {
			m.mu.Lock()
			m.requeueLocked(n)
			m.mu.Unlock()
			unlockAll()
			return false
		}
		if on {
			m.met.Reclaim.PswpOut.Inc()
			m.met.Reclaim.SwapOutLatency.Observe(time.Since(t0))
		}
		m.trc.Span(trace.KindWriteback, trace.StageNone, actor, t0, s, uint64(len(data)))
		slot, crc, hasCRC = s, c, true
	}

	// Replace every PTE with the swap entry. The owners' mutexes exclude
	// every possible mutator of these tables, so plain atomic stores are
	// enough; table tallies adjust through SetEntry.
	for _, mp := range snap {
		old := mp.table.Entry(mp.idx)
		mp.table.SetEntry(mp.idx, pagetable.MakeSwapEntry(slot, old))
	}

	m.mu.Lock()
	si := m.slots[slot]
	si.refs += int64(len(snap))
	if hasCRC {
		si.crc, si.hasCRC = crc, true
	}
	m.slots[slot] = si
	delete(m.frames, f)
	m.releaseIfEmptyLocked(n.part)
	m.mu.Unlock()

	// Invalidate stale translations, then drop the page references the
	// PTEs held — the last Put frees the frame.
	for _, s := range owners {
		s.ReclaimFlushTLB()
	}
	for range snap {
		m.alloc.Put(f)
	}
	unlockAll()
	m.trc.Instant(trace.KindReclaimEvict, trace.StageNone, actor, uint64(f), slot)
	return true
}

// splitHugeLocked breaks a cold 2 MiB mapping into 512 base mappings
// through a freshly built leaf table, making the individual frames
// evictable. Called with m.mu held and n popped; returns with m.mu
// released. The split is transparent: the PMD entry becomes a table
// pointer, content and protections are unchanged. actor attributes the
// trace event to the reclaiming context.
func (m *Manager) splitHugeLocked(n *frameNode, actor int32) {
	snap := append([]mapping(nil), n.mappings...)
	owners := m.lockOwnersLocked(n) // releases m.mu
	if owners == nil {
		return
	}
	unlockAll := func() {
		for _, s := range owners {
			s.UnlockForReclaim()
		}
	}

	m.mu.Lock()
	// Splittable only when privately mapped by exactly one PMD entry; a
	// COW-shared huge page waits for the copy fault to resolve sharing.
	if len(snap) != 1 || !m.revalidateLocked(n, snap, owners) {
		m.requeueLocked(n)
		m.mu.Unlock()
		unlockAll()
		return
	}
	head := n.frame
	ownerSet := m.owners[snap[0].table]
	sharers := make([]Space, 0, len(ownerSet))
	for s := range ownerSet {
		sharers = append(sharers, s)
	}
	m.mu.Unlock()

	// Build the replacement leaf without recursing into reclaim.
	leaf, err := pagetable.TryNewTableNoReclaim(m.alloc, addr.PTE)
	if err != nil {
		m.mu.Lock()
		m.requeueLocked(n)
		m.mu.Unlock()
		unlockAll()
		return
	}
	pmdT, idx := snap[0].table, snap[0].idx
	he := pmdT.Entry(idx)
	keep := he & (pagetable.FlagWritable | pagetable.FlagUser |
		pagetable.FlagCOW | pagetable.FlagAccessed | pagetable.FlagDirty)
	for i := 0; i < addr.EntriesPerTable; i++ {
		leaf.SetEntry(i, pagetable.MakeEntry(head+phys.Frame(i), keep))
	}
	// Metadata-only split: every frame comes out with refcount 1,
	// matching the 512 references the new PTEs represent.
	m.alloc.SplitHuge(head)
	pmdT.Lock()
	pmdT.SetChild(idx, leaf, pagetable.FlagWritable|pagetable.FlagUser)
	pmdT.Unlock()

	m.mu.Lock()
	delete(m.frames, head)
	// Every space that could reach the PMD entry now reaches the leaf.
	for _, s := range sharers {
		m.ownerAddLocked(leaf, s)
	}
	for i := 0; i < addr.EntriesPerTable; i++ {
		f := head + phys.Frame(i)
		nn := &frameNode{frame: f, mappings: []mapping{{table: leaf, idx: i}}}
		m.frames[f] = nn
		nn.part = m.partForLocked(f)
		nn.part.add(nn, onInactive)
	}
	if m.met.Enabled() {
		m.met.Reclaim.HugeSplits.Inc()
	}
	m.mu.Unlock()

	for _, s := range owners {
		s.ReclaimFlushTLB()
	}
	unlockAll()
	m.trc.Instant(trace.KindHugeSplit, trace.StageNone, actor, uint64(head), 0)
}

// ---------------------------------------------------------------------
// Introspection.

// ManagerStats is a point-in-time view of reclaim state for vmstat.
type ManagerStats struct {
	Enabled        bool
	Degraded       bool  // swap disabled by a persistent I/O failure
	Low, High      int64 // watermarks (frames)
	ActiveFrames   int64 // LRU active list length
	InactiveFrames int64 // LRU inactive list length
	SwapSlots      int64 // referenced swap slots (incl. zero-page slots)
	Store          StoreStats
}

// Stats returns current reclaim statistics.
func (m *Manager) Stats() ManagerStats {
	m.mu.Lock()
	active, inactive := m.lruSizesLocked()
	st := ManagerStats{
		Enabled:        m.tracking.Load(),
		Degraded:       m.degraded.Load(),
		Low:            m.low.Load(),
		High:           m.high.Load(),
		ActiveFrames:   active,
		InactiveFrames: inactive,
		SwapSlots:      int64(len(m.slots)),
	}
	store := m.store
	m.mu.Unlock()
	if store != nil {
		st.Store = store.Stats()
	}
	return st
}

// VerifyBookkeeping cross-checks reclaim state against ground truth
// collected by an invariant walk over every address space sharing the
// allocator: wantSlots maps swap slot → number of swap PTEs found. It
// also self-checks the reverse map (every recorded mapping must point
// at a live PTE of the recorded frame with a registered owner). The
// caller must be quiescent. Returns nil when consistent.
func (m *Manager) VerifyBookkeeping(wantSlots map[uint64]int64) error {
	m.reclaimMu.Lock()
	defer m.reclaimMu.Unlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	for slot, want := range wantSlots {
		if got := m.slots[slot].refs; got != want {
			return fmt.Errorf("reclaim: slot %d refcount %d, page tables hold %d entries", slot, got, want)
		}
	}
	for slot, si := range m.slots {
		if want := wantSlots[slot]; want != si.refs {
			return fmt.Errorf("reclaim: slot %d refcount %d, page tables hold %d entries", slot, si.refs, want)
		}
	}
	if !m.tracking.Load() {
		return nil
	}
	for f, n := range m.frames {
		if n.frame != f {
			return fmt.Errorf("reclaim: node for frame %d carries frame %d", f, n.frame)
		}
		if len(n.mappings) == 0 {
			return fmt.Errorf("reclaim: tracked frame %d has no mappings", f)
		}
		for _, mp := range n.mappings {
			e := mp.table.Entry(mp.idx)
			if !e.Present() || e.Frame() != f || e.Huge() != n.huge {
				return fmt.Errorf("reclaim: stale rmap entry for frame %d (entry %v)", f, e)
			}
			if len(m.owners[mp.table]) == 0 {
				return fmt.Errorf("reclaim: frame %d mapped by ownerless table", f)
			}
		}
		// Partition membership must agree with the frame's charger, or
		// fair-share eviction would steal one tenant's pages while
		// charging another.
		if n.list != onNone {
			c := m.alloc.ChargerOf(f)
			switch {
			case n.part == nil:
				return fmt.Errorf("reclaim: listed frame %d has no partition", f)
			case c == nil && n.part != &m.defq:
				return fmt.Errorf("reclaim: uncharged frame %d on a tenant partition", f)
			case c != nil && n.part.c != c:
				return fmt.Errorf("reclaim: frame %d on partition of wrong tenant", f)
			}
		}
	}
	return nil
}
