package reclaim

import "testing"

func nodes(n int) []*frameNode {
	ns := make([]*frameNode, n)
	for i := range ns {
		ns[i] = &frameNode{}
	}
	return ns
}

func TestLRUOrder(t *testing.T) {
	var q lru
	ns := nodes(3)
	for _, n := range ns {
		q.add(n, onInactive)
	}
	// FIFO off the inactive head: oldest first.
	for i := 0; i < 3; i++ {
		n := q.inactive.popFront()
		if n != ns[i] {
			t.Fatalf("pop %d returned wrong node", i)
		}
		n.list = onNone
	}
	if q.inactive.popFront() != nil {
		t.Fatal("pop from empty list returned a node")
	}
}

func TestLRURemoveMiddleAndNone(t *testing.T) {
	var q lru
	ns := nodes(3)
	for _, n := range ns {
		q.add(n, onActive)
	}
	q.remove(ns[1])
	if q.active.size != 2 || ns[1].list != onNone {
		t.Fatalf("middle removal left size=%d list=%d", q.active.size, ns[1].list)
	}
	// Removing a node that is on no list (e.g. popped by a concurrent
	// eviction pass) must be a no-op, not a corruption.
	q.remove(ns[1])
	if q.active.size != 2 {
		t.Fatalf("remove of unlisted node changed size to %d", q.active.size)
	}
	if q.active.popFront() != ns[0] || q.active.popFront() != ns[2] {
		t.Fatal("list order corrupted by middle removal")
	}
}

// TestLRURefill pins the aging policy: refill demotes the oldest
// active nodes until the inactive list reaches a third of the total.
func TestLRURefill(t *testing.T) {
	var q lru
	ns := nodes(9)
	for _, n := range ns {
		q.add(n, onActive)
	}
	q.refill(100)
	if q.inactive.size == 0 {
		t.Fatal("refill demoted nothing")
	}
	if q.inactive.size*3 < q.active.size+q.inactive.size {
		t.Fatalf("inactive %d below a third of %d after refill",
			q.inactive.size, q.active.size+q.inactive.size)
	}
	// The demoted nodes are the oldest actives, preserving order.
	if q.inactive.head != ns[0] {
		t.Fatal("refill did not demote the oldest active node first")
	}
	// Already balanced: another refill is a no-op.
	before := q.inactive.size
	q.refill(100)
	if q.inactive.size != before {
		t.Fatal("refill demoted despite balanced lists")
	}
	// A batch bound is respected when far out of balance.
	var q2 lru
	for _, n := range nodes(90) {
		q2.add(n, onActive)
	}
	q2.refill(5)
	if q2.inactive.size != 5 {
		t.Fatalf("refill batch=5 demoted %d", q2.inactive.size)
	}
}
