package reclaim

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/mem/addr"
)

// Store is the pluggable swap backing device: it persists 4 KiB page
// payloads under integer slot numbers. Implementations must be safe for
// concurrent use. Slot numbers returned by Write are always >= 1; slot
// 0 is reserved by the manager for the implicit zero page (a reclaimed
// page whose frame was never materialized needs no store I/O at all).
type Store interface {
	// Write persists one page and returns its slot number.
	Write(data []byte) (uint64, error)
	// Read copies the payload of slot into dst (len(dst) = page size).
	Read(slot uint64, dst []byte) error
	// Free releases the slot for reuse.
	Free(slot uint64)
	// Stats reports occupancy.
	Stats() StoreStats
	// Close releases resources held by the store.
	Close() error
}

// StoreStats is a store occupancy snapshot.
type StoreStats struct {
	Slots int64 // slots currently holding a page
	Bytes int64 // bytes of backing occupied (compressed/file size)
}

// MemStore is the default backing store: pages are held in memory,
// DEFLATE-compressed individually. It models a zram/zswap-style
// compressed RAM device — the payloads survive in host memory, but cost
// far less than a resident simulated frame for the compressible data
// typical of the paper's workloads.
type MemStore struct {
	mu    sync.Mutex
	slots map[uint64][]byte
	next  uint64
	free  []uint64
	bytes int64
}

// NewMemStore returns an empty compressed in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{slots: make(map[uint64][]byte), next: 1}
}

// Write implements Store.
func (s *MemStore) Write(data []byte) (uint64, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return 0, err
	}
	if _, err := w.Write(data); err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	comp := append([]byte(nil), buf.Bytes()...)

	s.mu.Lock()
	defer s.mu.Unlock()
	var slot uint64
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = s.next
		s.next++
	}
	s.slots[slot] = comp
	s.bytes += int64(len(comp))
	return slot, nil
}

// Read implements Store.
func (s *MemStore) Read(slot uint64, dst []byte) error {
	s.mu.Lock()
	comp, ok := s.slots[slot]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("reclaim: memstore read of empty slot %d", slot)
	}
	r := flate.NewReader(bytes.NewReader(comp))
	defer r.Close()
	if _, err := io.ReadFull(r, dst); err != nil {
		return fmt.Errorf("reclaim: memstore slot %d corrupt: %w", slot, err)
	}
	return nil
}

// Free implements Store.
func (s *MemStore) Free(slot uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if comp, ok := s.slots[slot]; ok {
		s.bytes -= int64(len(comp))
		delete(s.slots, slot)
		s.free = append(s.free, slot)
	}
}

// Stats implements Store.
func (s *MemStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Slots: int64(len(s.slots)), Bytes: s.bytes}
}

// Close implements Store.
func (s *MemStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots = make(map[uint64][]byte)
	s.free = nil
	s.bytes = 0
	return nil
}

// FileStore is the optional file-backed store: a classic swap file with
// one page-sized extent per slot. Slot n lives at offset (n-1)*4096.
// Freed slots are reused LIFO, and a run of free slots at the end of
// the file is truncated away so the file shrinks with its contents
// instead of growing monotonically.
type FileStore struct {
	mu      sync.Mutex
	f       *os.File
	sync    func() error // fsync hook; tests inject failures
	next    uint64       // lowest never-used slot; file length is (next-1) pages
	free    []uint64
	freeSet map[uint64]struct{}
	slots   int64
}

// NewFileStore creates (truncating) a swap file at path.
func NewFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("reclaim: open swap file: %w", err)
	}
	return &FileStore{f: f, sync: f.Sync, next: 1, freeSet: make(map[uint64]struct{})}, nil
}

// Write implements Store. The payload is fsynced before the slot
// number is returned: once the manager records a slot, the page's only
// copy may be the on-disk one, so a write that is merely in the page
// cache is not yet an eviction-safe slot. A failed write or sync rolls
// the slot allocation back completely — no slot number ever refers to
// bytes that might not be durable.
func (s *FileStore) Write(data []byte) (uint64, error) {
	s.mu.Lock()
	var slot uint64
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
		delete(s.freeSet, slot)
	} else {
		slot = s.next
		s.next++
	}
	s.slots++
	s.mu.Unlock()

	_, err := s.f.WriteAt(data, int64(slot-1)*addr.PageSize)
	if err == nil {
		if serr := s.sync(); serr != nil {
			err = fmt.Errorf("fsync: %w", serr)
		}
	}
	if err != nil {
		s.mu.Lock()
		s.slots--
		s.free = append(s.free, slot)
		s.freeSet[slot] = struct{}{}
		s.mu.Unlock()
		return 0, fmt.Errorf("reclaim: swap file write: %w", err)
	}
	return slot, nil
}

// Read implements Store.
func (s *FileStore) Read(slot uint64, dst []byte) error {
	n, err := s.f.ReadAt(dst, int64(slot-1)*addr.PageSize)
	if err != nil {
		// A short read of a slot that should hold a full page is a
		// truncated payload, not an end-of-file condition; report it as
		// such so callers do not mistake it for a benign EOF.
		if n > 0 && errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("reclaim: swap file read of slot %d: %w", slot, err)
	}
	return nil
}

// Free implements Store. Freeing the highest in-use slot truncates it
// — and any free run below it — off the end of the file, actually
// returning the space to the filesystem.
func (s *FileStore) Free(slot uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slots--
	s.free = append(s.free, slot)
	s.freeSet[slot] = struct{}{}
	if slot != s.next-1 {
		return
	}
	for s.next > 1 {
		if _, ok := s.freeSet[s.next-1]; !ok {
			break
		}
		delete(s.freeSet, s.next-1)
		s.next--
	}
	keep := s.free[:0]
	for _, sl := range s.free {
		if _, ok := s.freeSet[sl]; ok {
			keep = append(keep, sl)
		}
	}
	s.free = keep
	// Best effort: a failed truncate leaves a longer file but fully
	// consistent slot bookkeeping.
	_ = s.f.Truncate(int64(s.next-1) * addr.PageSize)
}

// Stats implements Store. Bytes reports the real file extent — in-use
// slots plus interior free holes not yet truncated.
func (s *FileStore) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Slots: s.slots, Bytes: int64(s.next-1) * addr.PageSize}
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }
