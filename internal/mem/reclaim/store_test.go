package reclaim

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem/addr"
)

// page builds a deterministic page-sized payload from a seed.
func page(seed int) []byte {
	b := make([]byte, addr.PageSize)
	for i := range b {
		b[i] = byte(seed*131 + i*7)
	}
	return b
}

// testStore exercises the Store contract: round-trip fidelity, slot
// reuse after Free, and occupancy accounting.
func testStore(t *testing.T, s Store) {
	t.Helper()
	const n = 16
	slots := make([]uint64, n)
	for i := 0; i < n; i++ {
		slot, err := s.Write(page(i))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if slot == 0 {
			t.Fatalf("write %d returned reserved slot 0", i)
		}
		slots[i] = slot
	}
	if st := s.Stats(); st.Slots != n {
		t.Fatalf("stats report %d slots, want %d", st.Slots, n)
	}
	buf := make([]byte, addr.PageSize)
	for i := n - 1; i >= 0; i-- {
		if err := s.Read(slots[i], buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf, page(i)) {
			t.Fatalf("slot %d round-trip mismatch", slots[i])
		}
	}

	// Freed slots are reused and their contents replaced.
	s.Free(slots[3])
	s.Free(slots[7])
	reused, err := s.Write(page(99))
	if err != nil {
		t.Fatal(err)
	}
	if reused != slots[3] && reused != slots[7] {
		t.Fatalf("write after free got fresh slot %d, want reuse of %d or %d",
			reused, slots[3], slots[7])
	}
	if err := s.Read(reused, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(99)) {
		t.Fatal("reused slot returned stale contents")
	}
	if st := s.Stats(); st.Slots != n-1 {
		t.Fatalf("stats report %d slots after free+reuse, want %d", st.Slots, n-1)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	testStore(t, s)
}

func TestFileStore(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "swapfile"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testStore(t, s)
}

// TestMemStoreCompresses pins the zram-like property: a compressible
// page occupies far less backing than its 4 KiB frame.
func TestMemStoreCompresses(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	data := bytes.Repeat([]byte{0xAB}, addr.PageSize)
	if _, err := s.Write(data); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes >= addr.PageSize/4 {
		t.Fatalf("constant page stored as %d bytes, expected heavy compression", st.Bytes)
	}
}

func TestMemStoreReadEmptySlot(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if err := s.Read(42, make([]byte, addr.PageSize)); err == nil {
		t.Fatal("read of never-written slot succeeded")
	}
}

// TestFileStoreTruncatesTail pins that Free actually reclaims file
// space: freeing the top slot — and any free run directly below it —
// shrinks the file, both as Stats sees it and on disk.
func TestFileStoreTruncatesTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "swapfile")
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 8
	slots := make([]uint64, n)
	for i := range slots {
		if slots[i], err = s.Write(page(i)); err != nil {
			t.Fatal(err)
		}
	}
	fileSize := func() int64 {
		t.Helper()
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	if got := fileSize(); got != n*addr.PageSize {
		t.Fatalf("file size = %d, want %d", got, n*addr.PageSize)
	}

	// Free an interior slot: a hole, no shrink.
	s.Free(slots[5])
	if got := fileSize(); got != n*addr.PageSize {
		t.Fatalf("file size after interior free = %d, want %d", got, n*addr.PageSize)
	}
	if st := s.Stats(); st.Bytes != n*addr.PageSize {
		t.Fatalf("Stats.Bytes after interior free = %d, want %d (extent, not usage)",
			st.Bytes, n*addr.PageSize)
	}

	// Free the top two slots: the trailing run 6..8 (5 is already free)
	// truncates away down to slot 4.
	s.Free(slots[7])
	s.Free(slots[6])
	if got, want := fileSize(), int64(5*addr.PageSize); got != want {
		t.Fatalf("file size after tail frees = %d, want %d", got, want)
	}
	if st := s.Stats(); st.Bytes != 5*addr.PageSize || st.Slots != 5 {
		t.Fatalf("Stats after tail frees = %+v, want 5 slots / %d bytes", st, 5*addr.PageSize)
	}

	// The survivors are intact and a new write grows the file again
	// from the truncated end.
	buf := make([]byte, addr.PageSize)
	for i := 0; i < 5; i++ {
		if err := s.Read(slots[i], buf); err != nil {
			t.Fatalf("read survivor %d: %v", i, err)
		}
		if !bytes.Equal(buf, page(i)) {
			t.Fatalf("survivor slot %d corrupted by truncation", slots[i])
		}
	}
	slot, err := s.Write(page(42))
	if err != nil {
		t.Fatal(err)
	}
	if slot != 6 {
		t.Fatalf("post-truncate write landed in slot %d, want 6", slot)
	}
	if got := fileSize(); got != 6*addr.PageSize {
		t.Fatalf("file size after regrow = %d, want %d", got, 6*addr.PageSize)
	}
}

// TestFileStoreDrainTruncatesToZero frees everything (top-down and
// bottom-up interleaved) and expects an empty file back.
func TestFileStoreDrainTruncatesToZero(t *testing.T) {
	path := filepath.Join(t.TempDir(), "swapfile")
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var slots []uint64
	for i := 0; i < 6; i++ {
		slot, err := s.Write(page(i))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, slot)
	}
	// Free the bottom half first (holes only), then the top half (the
	// final free sweeps the whole tail run away).
	for _, i := range []int{0, 1, 2, 4, 3, 5} {
		s.Free(slots[i])
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("drained swap file still %d bytes", fi.Size())
	}
	if st := s.Stats(); st.Slots != 0 || st.Bytes != 0 {
		t.Fatalf("drained stats = %+v, want zero", st)
	}
}

// TestFileStoreSyncsBeforeSlotStable pins the durability contract: the
// payload is fsynced before Write returns a slot number. Once the
// manager records the slot and drops the frame, the on-disk bytes are
// the page's only copy — a write sitting in the page cache is not an
// eviction-safe slot.
func TestFileStoreSyncsBeforeSlotStable(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "swapfile"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	syncs := 0
	realSync := s.sync
	s.sync = func() error { syncs++; return realSync() }
	for i := 1; i <= 3; i++ {
		if _, err := s.Write(page(i)); err != nil {
			t.Fatal(err)
		}
		if syncs != i {
			t.Fatalf("after write %d: %d fsyncs, want one per write", i, syncs)
		}
	}
}

// TestFileStoreSyncFailureRollsBackSlot injects an fsync failure (the
// deterministic stand-in for the device dying between write-back and
// flush) and expects the identical rollback a failed WriteAt gets: an
// error, no slot leaked, and the slot number reused by the next write.
func TestFileStoreSyncFailureRollsBackSlot(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "swapfile"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	realSync := s.sync
	injected := errors.New("injected fsync failure")
	s.sync = func() error { return injected }
	if _, err := s.Write(page(1)); !errors.Is(err, injected) {
		t.Fatalf("write with failing fsync err = %v, want wrapped injection", err)
	}
	if st := s.Stats(); st.Slots != 0 {
		t.Fatalf("failed write left %d slots allocated", st.Slots)
	}
	s.sync = realSync
	slot, err := s.Write(page(2))
	if err != nil {
		t.Fatal(err)
	}
	if slot != 1 {
		t.Fatalf("write after rollback got slot %d, want the rolled-back slot 1", slot)
	}
	buf := make([]byte, addr.PageSize)
	if err := s.Read(slot, buf); err != nil || !bytes.Equal(buf, page(2)) {
		t.Fatalf("reused slot content mismatch (err=%v)", err)
	}
}

// TestFileStoreShortRead pins the error contract: a slot whose extent
// was truncated out from under the store reports io.ErrUnexpectedEOF,
// not a bare EOF.
func TestFileStoreShortRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "swapfile")
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	slot, err := s.Write(page(1))
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-slot: the payload is now half a page.
	if err := os.Truncate(path, addr.PageSize/2); err != nil {
		t.Fatal(err)
	}
	err = s.Read(slot, make([]byte, addr.PageSize))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short read err = %v, want io.ErrUnexpectedEOF", err)
	}

	// A read past the end entirely is a plain EOF — nothing was there.
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	err = s.Read(slot, make([]byte, addr.PageSize))
	if err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("empty-extent read err = %v, want plain EOF-ish failure", err)
	}
}
