package reclaim

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/mem/addr"
)

// page builds a deterministic page-sized payload from a seed.
func page(seed int) []byte {
	b := make([]byte, addr.PageSize)
	for i := range b {
		b[i] = byte(seed*131 + i*7)
	}
	return b
}

// testStore exercises the Store contract: round-trip fidelity, slot
// reuse after Free, and occupancy accounting.
func testStore(t *testing.T, s Store) {
	t.Helper()
	const n = 16
	slots := make([]uint64, n)
	for i := 0; i < n; i++ {
		slot, err := s.Write(page(i))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if slot == 0 {
			t.Fatalf("write %d returned reserved slot 0", i)
		}
		slots[i] = slot
	}
	if st := s.Stats(); st.Slots != n {
		t.Fatalf("stats report %d slots, want %d", st.Slots, n)
	}
	buf := make([]byte, addr.PageSize)
	for i := n - 1; i >= 0; i-- {
		if err := s.Read(slots[i], buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf, page(i)) {
			t.Fatalf("slot %d round-trip mismatch", slots[i])
		}
	}

	// Freed slots are reused and their contents replaced.
	s.Free(slots[3])
	s.Free(slots[7])
	reused, err := s.Write(page(99))
	if err != nil {
		t.Fatal(err)
	}
	if reused != slots[3] && reused != slots[7] {
		t.Fatalf("write after free got fresh slot %d, want reuse of %d or %d",
			reused, slots[3], slots[7])
	}
	if err := s.Read(reused, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(99)) {
		t.Fatal("reused slot returned stale contents")
	}
	if st := s.Stats(); st.Slots != n-1 {
		t.Fatalf("stats report %d slots after free+reuse, want %d", st.Slots, n-1)
	}
}

func TestMemStore(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	testStore(t, s)
}

func TestFileStore(t *testing.T) {
	s, err := NewFileStore(filepath.Join(t.TempDir(), "swapfile"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	testStore(t, s)
}

// TestMemStoreCompresses pins the zram-like property: a compressible
// page occupies far less backing than its 4 KiB frame.
func TestMemStoreCompresses(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	data := bytes.Repeat([]byte{0xAB}, addr.PageSize)
	if _, err := s.Write(data); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes >= addr.PageSize/4 {
		t.Fatalf("constant page stored as %d bytes, expected heavy compression", st.Bytes)
	}
}

func TestMemStoreReadEmptySlot(t *testing.T) {
	s := NewMemStore()
	defer s.Close()
	if err := s.Read(42, make([]byte, addr.PageSize)); err == nil {
		t.Fatal("read of never-written slot succeeded")
	}
}
