package reclaim

// Two-list LRU with second-chance aging, the classic active/inactive
// design: new and recently referenced frames live on the active list,
// aging moves cold frames to the inactive list, and eviction candidates
// come off the inactive list's head. The accessed bits of the PTEs that
// map a frame (read and cleared atomically at scan time) provide the
// reference signal, exactly like the hardware-assisted aging real
// kernels do.
//
// The lists are intrusive doubly linked rings over frameNode, protected
// by the manager's mutex.

// Which list a node is on.
const (
	onNone = iota
	onActive
	onInactive
)

// lruList is one intrusive doubly linked list of frameNodes.
type lruList struct {
	head, tail *frameNode
	size       int
}

// pushBack appends n (most recently touched end).
func (l *lruList) pushBack(n *frameNode) {
	n.prev, n.next = l.tail, nil
	if l.tail != nil {
		l.tail.next = n
	} else {
		l.head = n
	}
	l.tail = n
	l.size++
}

// popFront removes and returns the oldest node (nil when empty).
func (l *lruList) popFront() *frameNode {
	n := l.head
	if n != nil {
		l.remove(n)
	}
	return n
}

// remove unlinks n, which must be on this list.
func (l *lruList) remove(n *frameNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
	l.size--
}

// lru is the two-list aggregate.
type lru struct {
	active, inactive lruList
}

// len returns the total number of nodes across both lists.
func (q *lru) len() int { return q.active.size + q.inactive.size }

// add inserts a node on the given list's recent end.
func (q *lru) add(n *frameNode, list int) {
	switch list {
	case onActive:
		q.active.pushBack(n)
	case onInactive:
		q.inactive.pushBack(n)
	default:
		panic("reclaim: add to no list")
	}
	n.list = list
}

// remove takes n off whichever list holds it.
func (q *lru) remove(n *frameNode) {
	switch n.list {
	case onActive:
		q.active.remove(n)
	case onInactive:
		q.inactive.remove(n)
	}
	n.list = onNone
}

// refill demotes up to batch of the oldest active nodes to the inactive
// list when the inactive list has shrunk below a third of the total —
// the aging step that keeps an eviction candidate pool available.
func (q *lru) refill(batch int) {
	total := q.active.size + q.inactive.size
	if total == 0 || q.inactive.size*3 >= total {
		return
	}
	for i := 0; i < batch; i++ {
		n := q.active.popFront()
		if n == nil {
			return
		}
		n.list = onInactive
		q.inactive.pushBack(n)
		if q.inactive.size*3 >= q.active.size+q.inactive.size {
			return
		}
	}
}
