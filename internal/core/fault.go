package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Sentinel errors for the two address-shaped failure classes. Every
// error the memory layer returns for a bad address or a forbidden
// access wraps one of these, so callers branch with errors.Is instead
// of matching message strings (the odfork facade re-exports them as
// ErrBadAddr / ErrProtViolation).
var (
	// ErrBadAddr marks accesses to unmapped memory and malformed
	// ranges, hints, or lengths — the EFAULT/EINVAL class.
	ErrBadAddr = errors.New("bad address")
	// ErrProtViolation marks accesses a VMA's protection forbids — the
	// EACCES/SIGSEGV-on-protection class.
	ErrProtViolation = errors.New("protection violation")
)

// FaultKind classifies an access violation.
type FaultKind int

// Access violation kinds.
const (
	// FaultUnmapped means no VMA covers the address.
	FaultUnmapped FaultKind = iota
	// FaultProtection means the VMA forbids the attempted access.
	FaultProtection
)

// SegfaultError is returned for accesses the fault handler cannot
// repair — the simulated SIGSEGV.
type SegfaultError struct {
	Addr  addr.V
	Write bool
	Kind  FaultKind
}

// Error implements the error interface.
func (e *SegfaultError) Error() string {
	op := "read"
	if e.Write {
		op = "write"
	}
	why := "unmapped address"
	if e.Kind == FaultProtection {
		why = "protection violation"
	}
	return fmt.Sprintf("segfault: %s at %v: %s", op, e.Addr, why)
}

// Unwrap maps the fault kind onto its sentinel, so
// errors.Is(err, ErrBadAddr) and errors.Is(err, ErrProtViolation)
// classify segfaults without inspecting Kind.
func (e *SegfaultError) Unwrap() error {
	if e.Kind == FaultProtection {
		return ErrProtViolation
	}
	return ErrBadAddr
}

// HandleFault resolves a page fault at v. It is exported for tests and
// benchmarks that drive faults directly; normal accesses go through
// ReadAt/WriteAt, which fault implicitly.
func (as *AddressSpace) HandleFault(v addr.V, write bool) (err error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	defer catchOOM(&err)
	return as.handleFaultLocked(v, write)
}

// handleFaultLocked instruments the fault flow: when metrics or
// tracing are on it times the whole repair, charges the read/write
// latency histograms and counts, and records one flight-recorder span
// labelled with how the fault was resolved; when both are off it is a
// tail call into resolveFaultLocked.
func (as *AddressSpace) handleFaultLocked(v addr.V, write bool) error {
	m := as.met
	tr := as.trc
	traceOn := tr.Enabled()
	if !m.Enabled() && !traceOn {
		return as.resolveFaultLocked(v, write)
	}
	var before faultCounters
	if traceOn {
		before = as.faultCounters()
	}
	req := as.curReq.Load()
	t0 := time.Now()
	err := as.resolveFaultLocked(v, write)
	d := time.Since(t0)
	if m.Enabled() {
		if write {
			m.Fault.WriteFaults.Inc()
			m.Fault.WriteLatency.ObserveTagged(d, req)
		} else {
			m.Fault.ReadFaults.Inc()
			m.Fault.ReadLatency.ObserveTagged(d, req)
		}
	}
	isSeg := false
	if err != nil {
		var seg *SegfaultError
		if errors.As(err, &seg) {
			isSeg = true
			if m.Enabled() {
				m.Fault.Segfaults.Inc()
			}
		}
	}
	if traceOn {
		w := uint64(0)
		if write {
			w = 1
		}
		tr.SpanReq(trace.KindFault, classifyResolution(before, as.faultCounters(), isSeg),
			trace.ActorApp, t0, uint64(v), w, req)
	}
	return err
}

// faultCounters is a snapshot of the per-space resolution statistics;
// the before/after diff around one resolve attributes the fault.
type faultCounters struct {
	tableSplits, pmdSplits, hugeCopies, pageCopies, swapIns, fastDedups uint64
}

func (as *AddressSpace) faultCounters() faultCounters {
	return faultCounters{
		tableSplits: as.TableSplits.Load(),
		pmdSplits:   as.PMDSplits.Load(),
		hugeCopies:  as.HugeCopies.Load(),
		pageCopies:  as.PageCopies.Load(),
		swapIns:     as.SwapIns.Load(),
		fastDedups:  as.FastDedups.Load(),
	}
}

// classifyResolution names a fault by the most expensive repair that
// ran during it (a single fault can both copy a shared table and COW a
// page; the span is labelled by the dominant cost).
func classifyResolution(before, after faultCounters, seg bool) trace.Stage {
	switch {
	case seg:
		return trace.ResolveSegfault
	case after.tableSplits > before.tableSplits:
		return trace.ResolveTableCopy
	case after.pmdSplits > before.pmdSplits:
		return trace.ResolvePMDSplit
	case after.hugeCopies > before.hugeCopies:
		return trace.ResolveHugeCopy
	case after.pageCopies > before.pageCopies:
		return trace.ResolvePageCopy
	case after.swapIns > before.swapIns:
		return trace.ResolveSwapIn
	case after.fastDedups > before.fastDedups:
		return trace.ResolveDedup
	}
	return trace.ResolveMinor
}

// resolveFaultLocked implements the fault flow of §3.4: demand paging
// for absent pages, PMD-level share detection, shared-table
// copy-on-write, the last-sharer fast path, and data-page COW.
func (as *AddressSpace) resolveFaultLocked(v addr.V, write bool) error {
	as.prof.Charge(profile.FaultEntry, 1)
	as.Faults.Add(1)

	vma := as.vmas.Find(v)
	if vma == nil {
		return &SegfaultError{Addr: v, Write: write, Kind: FaultUnmapped}
	}
	if write && !vma.Prot.CanWrite() {
		return &SegfaultError{Addr: v, Write: write, Kind: FaultProtection}
	}
	if !vma.Prot.CanRead() {
		return &SegfaultError{Addr: v, Write: write, Kind: FaultProtection}
	}

	tr, ok := as.w.Walk(v)
	if !ok {
		return as.demandPageLocked(vma, v)
	}
	if !write || tr.Writable {
		// Read faults on present pages never occur under shared tables
		// (§3.4 "Fast Read"); a spurious fault is already resolved.
		return nil
	}

	// Huge-page extension (§4): a cleared PUD writable bit marks a
	// shared PMD table; copy it for this process first.
	if pud := tr.PUDTable; pud != nil && !pud.Entry(tr.PUDIndex).Writable() {
		as.splitSharedPMDLocked(pud, tr.PUDIndex, pud.Child(tr.PUDIndex))
		tr2, ok2 := as.w.Walk(v)
		if !ok2 {
			return as.demandPageLocked(vma, v)
		}
		if tr2.Writable {
			tr2.Leaf.OrEntry(tr2.LeafIndex, pagetable.FlagAccessed|pagetable.FlagDirty)
			return nil
		}
		tr = tr2
	}

	if tr.Huge {
		as.hugeCOWLocked(tr)
		as.tlb.FlushRange(addr.NewRange(v.HugeBase(), addr.HugePageSize))
		return nil
	}

	// A cleared PMD writable bit marks the on-demand-fork write
	// protection: the PTE table below is (or recently was) shared.
	pmd, pi := tr.PMDTable, tr.PMDIndex
	if !pmd.Entry(pi).Writable() {
		leaf := pmd.Child(pi)
		as.splitSharedLeafLocked(pmd, pi, leaf, v.HugeBase())
		// Re-walk: if the entry was never individually write-protected
		// (the common post-ODF case for pages private to this lineage),
		// the write can now proceed without copying any data.
		tr2, ok2 := as.w.Walk(v)
		if !ok2 {
			return as.demandPageLocked(vma, v)
		}
		if tr2.Writable {
			tr2.Leaf.OrEntry(tr2.LeafIndex, pagetable.FlagAccessed|pagetable.FlagDirty)
			return nil
		}
		tr = tr2
	}

	as.pageCOWLocked(tr)
	as.tlb.FlushPage(v)
	return nil
}

// The note* helpers mirror the per-space statistic atomics into the
// system-wide metrics registry, so /proc/odf/metrics survives process
// exit while Space().PageCopies etc. keep their per-process meaning.

func (as *AddressSpace) noteFastDedup() {
	as.FastDedups.Add(1)
	if as.met.Enabled() {
		as.met.Fault.FastDedups.Inc()
		if ts := as.tslot; ts != nil {
			ts.Fault.FastDedups.Inc()
		}
	}
}

func (as *AddressSpace) notePMDSplit() {
	as.PMDSplits.Add(1)
	if as.met.Enabled() {
		as.met.Fault.PMDSplits.Inc()
		if ts := as.tslot; ts != nil {
			ts.Fault.PMDSplits.Inc()
		}
	}
}

func (as *AddressSpace) notePageCopy() {
	as.PageCopies.Add(1)
	if as.met.Enabled() {
		as.met.Fault.PageCopies.Inc()
		if ts := as.tslot; ts != nil {
			ts.Fault.PageCopies.Inc()
		}
	}
}

func (as *AddressSpace) noteHugeCopy() {
	as.HugeCopies.Add(1)
	if as.met.Enabled() {
		as.met.Fault.HugeCopies.Inc()
		if ts := as.tslot; ts != nil {
			ts.Fault.HugeCopies.Inc()
		}
	}
}

// noteZeroElides records n COW copies that were skipped because the
// source pages were all-zero (phys.CopyPage's elision).
func (as *AddressSpace) noteZeroElides(n uint64) {
	if n == 0 {
		return
	}
	as.ZeroElides.Add(n)
	if as.met.Enabled() {
		as.met.Fault.ZeroElides.Add(n)
	}
}

// demandPageLocked backs a never-touched page (demand-zero for
// anonymous VMAs, page-cache copy for file-backed ones) or faults a
// swapped-out page back in. Installing a new entry into a shared table
// would leak the page into every sharer, so the leaf is unshared first
// — except for swap-in, which restores an entry every sharer already
// held.
func (as *AddressSpace) demandPageLocked(vma *vm.VMA, v addr.V) error {
	if handled, err := as.trySwapInLocked(v); handled || err != nil {
		return err
	}
	if vma.Huge() {
		pmd, pi := as.ensurePrivatePMDLocked(v)
		e := pmd.Entry(pi)
		switch {
		case !e.Present():
			head := as.alloc.AllocHugeFor(as.charger)
			flags := pagetable.FlagHuge | pagetable.FlagUser
			if vma.Prot.CanWrite() {
				flags |= pagetable.FlagWritable
			}
			pmd.SetEntry(pi, pagetable.MakeEntry(head, flags))
			if m := as.trk(); m != nil {
				m.HugeMapped(head, pmd, pi, as)
			}
			return nil
		case e.Huge():
			return nil
		}
		// Present but not huge: the reclaimer split this huge page into
		// 4 KiB mappings; fall through to the base-page path.
	}
	leaf, li := as.ensurePrivateLeafLocked(v)
	if e := leaf.Entry(li); !e.Present() && !e.Swapped() {
		return as.installPageLocked(vma, leaf, li, v)
	}
	return nil
}

// trySwapInLocked resolves a fault on a swapped-out page: allocate a
// frame (possibly entering direct reclaim itself), read the payload
// back from the swap store, and restore the PTE with its preserved
// protection bits. Returns handled=true when the fault address held a
// swap entry. The re-check under the leaf lock serializes sharers of
// one swap entry racing to fault it in.
func (as *AddressSpace) trySwapInLocked(v addr.V) (handled bool, err error) {
	if as.rec == nil {
		return false, nil
	}
	leaf, li := as.w.FindPTE(v)
	if leaf == nil {
		return false, nil
	}
	e := leaf.Entry(li)
	if !e.Swapped() {
		return false, nil
	}
	var t0 time.Time
	if as.met.Enabled() || as.trc.Enabled() {
		t0 = time.Now()
	}
	slot := e.SwapSlot()
	f := as.alloc.AllocFor(as.charger) // may panic ErrNoMemory; caught by catchOOM
	if slot != 0 {
		if rerr := as.rec.ReadSlot(slot, as.alloc.Data(f)); rerr != nil {
			as.alloc.Put(f)
			return true, fmt.Errorf("core: swap-in at %v: %w", v, rerr)
		}
	}
	leaf.Lock()
	cur := leaf.Entry(li)
	if !cur.Swapped() || cur.SwapSlot() != slot {
		// Another sharer faulted it in (or the mapping changed) while we
		// were reading; drop our frame and let the access retry.
		leaf.Unlock()
		as.alloc.Put(f)
		return true, nil
	}
	leaf.SetEntry(li, cur.SwapRestore(f))
	leaf.Unlock()
	if m := as.trk(); m != nil {
		m.PageMapped(f, leaf, li, as)
	}
	as.rec.SwapUnref(slot)
	as.SwapIns.Add(1)
	req := as.curReq.Load()
	if as.met.Enabled() {
		as.met.Reclaim.PswpIn.Inc()
		as.met.Reclaim.SwapInLatency.ObserveTagged(time.Since(t0), req)
		if ts := as.tslot; ts != nil {
			ts.Fault.SwapIns.Inc()
		}
	}
	as.trc.SpanReq(trace.KindSwapIn, trace.StageNone, trace.ActorApp, t0, uint64(slot), 0, req)
	return true, nil
}

// ensurePrivateLeafLocked returns the last-level table and index for v,
// guaranteeing the table is exclusively owned by this process (splitting
// a shared table if needed) and reachable with PMD write permission.
func (as *AddressSpace) ensurePrivateLeafLocked(v addr.V) (*pagetable.Table, int) {
	pmd, pi := as.ensurePrivatePMDLocked(v)
	leaf := pmd.Child(pi)
	if leaf == nil {
		leaf = pagetable.NewTableFor(as.alloc, addr.PTE, as.charger)
		pmd.SetChild(pi, leaf, pagetable.FlagWritable|pagetable.FlagUser)
		return leaf, v.Index(addr.PTE)
	}
	leaf = as.splitSharedLeafLocked(pmd, pi, leaf, v.HugeBase())
	return leaf, v.Index(addr.PTE)
}

// ensurePrivatePMDLocked returns the PMD table and index for v,
// guaranteeing the PMD table itself is exclusively owned by this
// process (copying a table shared by the huge-page extension if
// needed). Entry insertions into shared tables would otherwise leak
// mappings into every sharer.
func (as *AddressSpace) ensurePrivatePMDLocked(v addr.V) (*pagetable.Table, int) {
	pud, pi := as.w.EnsurePUD(v)
	pmd := pud.Child(pi)
	if pmd == nil {
		pmd = pagetable.NewTableFor(as.alloc, addr.PMD, as.charger)
		pud.SetChild(pi, pmd, pagetable.FlagWritable|pagetable.FlagUser)
		return pmd, v.Index(addr.PMD)
	}
	pmd = as.splitSharedPMDLocked(pud, pi, pmd)
	return pmd, v.Index(addr.PMD)
}

// splitSharedPMDLocked is the huge-page analogue of
// splitSharedLeafLocked: copy a shared PMD table for this process,
// COW-protecting its huge entries in both copies (one page reference
// per entry for the new table) and re-sharing any nested last-level
// tables. If this process is the last sharer, the table is
// re-dedicated by restoring the PUD writable bit.
func (as *AddressSpace) splitSharedPMDLocked(pud *pagetable.Table, pi int, old *pagetable.Table) *pagetable.Table {
	if old.ShareCount(as.alloc) == 1 {
		old.Lock()
		last := old.ShareCount(as.alloc) == 1
		old.Unlock()
		if last {
			if !pud.Entry(pi).Writable() {
				pud.SetEntry(pi, pud.Entry(pi).With(pagetable.FlagWritable))
				as.noteFastDedup()
			}
			return old
		}
	}

	// Pre-allocate so an OOM unwind cannot strand the shared table's
	// lock (see splitSharedLeafLocked). The failpoint models that
	// allocation failing: nothing has been mutated yet, so the shared
	// PMD table and the huge mappings beneath it stay intact.
	as.failInject(as.alloc.Failpoints(), failpoint.FaultPMDSplit)
	newPMD := pagetable.NewTableFor(as.alloc, addr.PMD, as.charger)
	old.Lock()
	if old.ShareCount(as.alloc) == 1 {
		old.Unlock()
		as.alloc.Put(newPMD.Frame)
		newPMD.Recycle()
		if !pud.Entry(pi).Writable() {
			pud.SetEntry(pi, pud.Entry(pi).With(pagetable.FlagWritable))
			as.noteFastDedup()
		}
		return old
	}

	as.notePMDSplit()
	newPMD.CopyEntriesFrom(old, as.prof)
	for i := 0; i < addr.EntriesPerTable; i++ {
		e := old.Entry(i)
		if !e.Present() {
			continue
		}
		if e.Huge() {
			if e.Writable() {
				protected := e.Without(pagetable.FlagWritable | pagetable.FlagDirty).
					With(pagetable.FlagCOW)
				old.SetEntry(i, protected)
				newPMD.SetEntry(i, protected)
			}
			as.alloc.Get(e.Frame())
			if m := as.trk(); m != nil {
				m.HugeMapped(e.Frame(), newPMD, i, as)
			}
			continue
		}
		if leaf := old.Child(i); leaf != nil {
			// A nested last-level table becomes shared between the two
			// PMD tables, exactly as a plain on-demand fork would share
			// it.
			shared := e.Without(pagetable.FlagWritable)
			old.SetEntry(i, shared)
			newPMD.SetChild(i, leaf, shared)
			as.alloc.PTShareGet(leaf.Frame)
			if m := as.trk(); m != nil {
				m.OwnerAdd(leaf, as)
			}
		}
	}
	if as.alloc.PTSharePut(old.Frame) == 0 {
		panic("core: shared PMD table refcount reached zero during split")
	}
	old.Unlock()

	pud.SetChild(pi, newPMD, pagetable.FlagWritable|pagetable.FlagUser)
	if m := as.trk(); m != nil {
		m.OwnerAdd(newPMD, as)
		m.OwnerRemove(old, as)
	}
	as.sd.Broadcast()
	as.prof.Charge(profile.TLBFlush, 1)
	return newPMD
}

// splitSharedLeafLocked implements the PTE-table copy-on-write of
// §3.4–3.5. If the table is genuinely shared, the faulting process gets
// a dedicated copy: every present entry is write-protected and marked
// COW in *both* tables (the deferred per-page work classic fork does
// eagerly), the new table takes one page reference per present entry,
// and the old table's share counter is decremented. If this process is
// the last sharer, the table is simply re-dedicated by restoring the
// PMD writable bit (the fast path the paper describes when the counter
// reaches one).
//
// It returns the table now privately owned by this process.
func (as *AddressSpace) splitSharedLeafLocked(pmd *pagetable.Table, pi int, old *pagetable.Table, base addr.V) *pagetable.Table {
	// Cheap check before allocating: the last sharer re-dedicates
	// without a copy.
	if old.ShareCount(as.alloc) == 1 {
		old.Lock()
		last := old.ShareCount(as.alloc) == 1
		old.Unlock()
		if last {
			if !pmd.Entry(pi).Writable() {
				pmd.SetEntry(pi, pmd.Entry(pi).With(pagetable.FlagWritable))
				as.noteFastDedup()
			}
			return old
		}
	}

	// Allocate the new table before taking the shared table's lock, so
	// an out-of-memory unwind cannot leave the lock held or the split
	// half-applied. The failpoint fires at the same point for the same
	// reason.
	as.failInject(as.alloc.Failpoints(), failpoint.FaultTableCopy)
	newLeaf := pagetable.NewTableFor(as.alloc, addr.PTE, as.charger)
	old.Lock()
	if old.ShareCount(as.alloc) == 1 {
		// Raced with another sharer's split/exit: dedicate instead.
		old.Unlock()
		as.alloc.Put(newLeaf.Frame)
		newLeaf.Recycle()
		if !pmd.Entry(pi).Writable() {
			pmd.SetEntry(pi, pmd.Entry(pi).With(pagetable.FlagWritable))
			as.noteFastDedup()
		}
		return old
	}

	// A genuine split is the deferred table copy of §3.4 — time it for
	// the fault.table_copy latency histogram alongside the count.
	as.TableSplits.Add(1)
	var splitStart time.Time
	if as.met.Enabled() {
		as.met.Fault.TableSplits.Inc()
		if ts := as.tslot; ts != nil {
			ts.Fault.TableSplits.Inc()
		}
		splitStart = time.Now()
	}
	newLeaf.CopyEntriesFrom(old, as.prof)
	for i := 0; i < addr.EntriesPerTable; i++ {
		e := old.Entry(i)
		if e.Swapped() {
			// The copied swap entry is a new reference to its slot.
			as.rec.SwapRef(e.SwapSlot())
			continue
		}
		if !e.Present() {
			continue
		}
		if e.Writable() {
			// The page was writable pre-fork and is now shared between
			// at least two lineages: downgrade to COW everywhere.
			protected := e.Without(pagetable.FlagWritable | pagetable.FlagDirty).With(pagetable.FlagCOW)
			old.SetEntry(i, protected)
			newLeaf.SetEntry(i, protected)
		}
		// The new table takes its own reference on every page it maps
		// (§3.6: exactly one page reference per present entry per table).
		as.alloc.Get(e.Frame())
		if m := as.trk(); m != nil {
			m.PageMapped(e.Frame(), newLeaf, i, as)
		}
	}
	if as.alloc.PTSharePut(old.Frame) == 0 {
		panic("core: shared table refcount reached zero during split")
	}
	old.Unlock()

	pmd.SetChild(pi, newLeaf, pagetable.FlagWritable|pagetable.FlagUser)
	if m := as.trk(); m != nil {
		m.OwnerAdd(newLeaf, as)
		m.OwnerRemove(old, as)
	}
	// The old table's entries were COW-downgraded: every sharer's TLB
	// may hold stale writable translations.
	as.sd.Broadcast()
	as.prof.Charge(profile.TLBFlush, 1)
	if !splitStart.IsZero() && as.met.Enabled() {
		as.met.Fault.TableCopyLatency.ObserveTagged(time.Since(splitStart), as.curReq.Load())
	}
	return newLeaf
}

// pageCOWLocked resolves a write to a write-protected 4 KiB page in a
// dedicated table: reuse the page if this table is its only user,
// otherwise copy it.
func (as *AddressSpace) pageCOWLocked(tr pagetable.Translation) {
	leaf, li := tr.Leaf, tr.LeafIndex
	e := leaf.Entry(li)
	if !e.Present() || e.Writable() {
		return // resolved concurrently
	}
	f := e.Frame()
	as.failInject(as.alloc.Failpoints(), failpoint.FaultPageCopy)
	var nf phys.Frame
	if as.alloc.RefCount(f) > 1 {
		// Allocate outside the table lock so OOM cannot strand it.
		nf = as.alloc.AllocFor(as.charger)
	}
	leaf.Lock()
	defer leaf.Unlock()
	e = leaf.Entry(li)
	if !e.Present() || e.Writable() || e.Frame() != f {
		if nf.Valid() {
			as.alloc.Put(nf)
		}
		return // resolved concurrently
	}
	if as.alloc.RefCount(f) == 1 {
		// Sole user: the COW downgrade can simply be undone (the
		// kernel's do_wp_page reuse path).
		if nf.Valid() {
			as.alloc.Put(nf)
		}
		leaf.SetEntry(li, e.Without(pagetable.FlagCOW).With(
			pagetable.FlagWritable|pagetable.FlagDirty|pagetable.FlagAccessed))
		return
	}
	if !nf.Valid() {
		nf = as.alloc.AllocFor(as.charger)
	}
	if !as.alloc.CopyPage(nf, f) {
		as.noteZeroElides(1)
	}
	if m := as.trk(); m != nil {
		m.PageUnmapped(f, leaf, li)
	}
	as.alloc.Put(f)
	as.notePageCopy()
	leaf.SetEntry(li, pagetable.MakeEntry(nf,
		pagetable.FlagWritable|pagetable.FlagUser|pagetable.FlagDirty|pagetable.FlagAccessed))
	if m := as.trk(); m != nil {
		m.PageMapped(nf, leaf, li, as)
	}
}

// hugeCOWLocked resolves a write to a write-protected 2 MiB page: the
// 512-page copy whose latency the paper's Table 1 highlights.
func (as *AddressSpace) hugeCOWLocked(tr pagetable.Translation) {
	pmd, pi := tr.PMDTable, tr.PMDIndex
	e := pmd.Entry(pi)
	if !e.Present() || !e.Huge() || e.Writable() {
		return
	}
	head := e.Frame()
	if as.alloc.RefCount(head) == 1 {
		pmd.SetEntry(pi, e.Without(pagetable.FlagCOW).With(
			pagetable.FlagWritable|pagetable.FlagDirty|pagetable.FlagAccessed))
		return
	}
	as.failInject(as.alloc.Failpoints(), failpoint.FaultHugeCopy)
	nh := as.alloc.AllocHugeFor(as.charger)
	copied := as.alloc.CopyHugePage(nh, head)
	as.noteZeroElides(uint64(addr.EntriesPerTable - copied))
	if m := as.trk(); m != nil {
		m.HugeUnmapped(head, pmd, pi)
	}
	as.alloc.Put(head)
	as.noteHugeCopy()
	pmd.SetEntry(pi, pagetable.MakeEntry(nh,
		pagetable.FlagHuge|pagetable.FlagWritable|pagetable.FlagUser|
			pagetable.FlagDirty|pagetable.FlagAccessed))
	if m := as.trk(); m != nil {
		m.HugeMapped(nh, pmd, pi, as)
	}
}
