//go:build race

package core

// raceEnabled reports that the race detector is active. Race builds
// instrument every allocation and make sync.Pool drop items randomly
// (to widen interleavings), so allocation-count assertions are
// meaningless there.
const raceEnabled = true
