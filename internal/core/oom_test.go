package core

import (
	"errors"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

func TestOOMOnPopulate(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	as.Allocator().SetLimit(16)
	_, err := as.Mmap(0, 64*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate, nil, 0)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("populate err = %v, want OOM", err)
	}
}

func TestOOMOnDemandFault(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 64*addr.PageSize, rw, vm.MapPrivate) // no populate
	as.Allocator().SetLimit(as.Allocator().Allocated() + 4)
	var sawOOM bool
	for i := 0; i < 64; i++ {
		err := as.StoreByte(base+addr.V(i*addr.PageSize), 1)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("fault err = %v, want OOM", err)
			}
			sawOOM = true
			break
		}
	}
	if !sawOOM {
		t.Fatal("no OOM under frame limit")
	}
	// Raising the limit repairs the situation: the same access succeeds.
	as.Allocator().SetLimit(0)
	if err := as.StoreByte(base+addr.V(63*addr.PageSize), 1); err != nil {
		t.Errorf("post-reclaim write failed: %v", err)
	}
}

func TestOOMOnCOWSplit(t *testing.T) {
	as := newSpace()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x5A)
	child := Fork(as, ForkOnDemand)
	// The split needs a table frame plus a COW data frame.
	as.Allocator().SetLimit(as.Allocator().Allocated())
	err := child.StoreByte(base, 1)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("COW err = %v, want OOM", err)
	}
	// Memory is still consistent: reads work, parent value intact.
	if b, rerr := child.LoadByte(base); rerr != nil || b != 0x5A {
		t.Errorf("read after OOM = %#x, %v", b, rerr)
	}
	as.Allocator().SetLimit(0)
	if err := child.StoreByte(base, 1); err != nil {
		t.Errorf("write after limit lifted: %v", err)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Error(err)
	}
	child.Teardown()
	as.Teardown()
}
