// Package core implements the paper's contribution: three fork engines
// over a simulated address space —
//
//   - ForkClassic: the traditional Linux fork, which walks every
//     last-level page table entry, write-protects it, and atomically
//     increments the data page's reference count (copy_page_range);
//   - classic fork over huge-page mappings (2 MiB entries at PMD level);
//   - ForkOnDemand: the paper's on-demand-fork, which copies only the
//     upper levels of the hierarchy, shares last-level (PTE) tables
//     between parent and child via a per-table share counter, and
//     write-protects entire 2 MiB regions by clearing a single PMD
//     entry's writable bit (§3.1);
//
// together with the deferred machinery on-demand-fork needs: the page
// fault handler that copies shared PTE tables on first write (§3.4),
// copy-on-write of tables during munmap/mremap (§3.3), the table
// lifecycle rules (§3.5), and reference-count-based physical page
// accounting (§3.6).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/mem/phys"
	"repro/internal/mem/reclaim"
	"repro/internal/mem/tlb"
	"repro/internal/mem/vm"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Mapping area managed for NULL-hint mmaps, mirroring the x86-64 mmap
// region.
const (
	mmapBase  addr.V = 0x7f00_0000_0000
	mmapLimit addr.V = 0x7fff_ffff_f000
)

// AddressSpace is the simulated mm_struct: the paging hierarchy plus
// the VMA set of one process.
type AddressSpace struct {
	mu    sync.Mutex
	w     pagetable.Walker // by value: one less pointer chase and alloc per fork
	vmas  *vm.Set
	alloc *phys.Allocator
	prof  *profile.Profiler
	met   *metrics.Registry
	trc   *trace.Tracer

	// Software TLB and its lineage-wide shootdown domain: processes
	// related by fork share page tables, so a write-protect downgrade by
	// one must invalidate the translations every relative may have
	// cached (the SMP shootdown broadcast).
	tlb *tlb.TLB
	sd  *tlb.Shootdown

	// Reclaim integration: id orders lock acquisition across spaces
	// during eviction; rec is the shared reclaim manager (nil when the
	// allocator has none attached).
	id  uint64
	rec *reclaim.Manager

	// Tenant attribution: every frame this space allocates is charged
	// to charger (nil = unowned), and failpoint injection is filtered by
	// tenantID when the registry has a scope set. Children inherit both
	// at fork. tslot is the tenant's metric partition (nil = untenanted
	// or metrics off at registration); fork/fault paths charge it with
	// one pointer check after the usual Enabled() guard.
	tenantID uint64
	charger  phys.FrameCharger
	tslot    *metrics.TenantSlot

	// curReq is the correlation id of the serving-tier request this
	// space is currently working for (0 = none). The serving tier tags
	// it around each handled request; fork stamps the parent's value
	// into the child so the clone's fault storm stays attributed. Read
	// only on already-instrumented paths — the disabled fast paths
	// never touch it.
	curReq atomic.Uint64

	dead bool

	// Statistics, exposed for the benchmarks and experiments.
	Faults      atomic.Uint64 // page faults handled
	TableSplits atomic.Uint64 // shared PTE tables copied on demand
	PMDSplits   atomic.Uint64 // shared huge-page PMD tables copied on demand
	PageCopies  atomic.Uint64 // 4 KiB data pages copied for COW
	HugeCopies  atomic.Uint64 // 2 MiB pages copied for COW
	FastDedups  atomic.Uint64 // faults resolved by re-enabling PMD writable
	SwapIns     atomic.Uint64 // faults resolved by reading a page back from swap
	ZeroElides  atomic.Uint64 // COW copies skipped because the source was all-zero
}

// spacePool recycles AddressSpace shells — the struct, its TLB, and
// its VMA set's backing storage — across fork/teardown cycles, so a
// steady-state fork loop allocates nothing for the child's bookkeeping.
// Spaces enter the pool only through Recycle, an explicit opt-in: the
// kernel's Process objects outlive Exit (Space() stays readable after
// teardown), so they never recycle.
var spacePool = sync.Pool{New: func() any { return new(AddressSpace) }}

// getSpace returns a clean AddressSpace shell for the given kernel
// attachments, reusing a pooled shell when one is available.
func getSpace(alloc *phys.Allocator, prof *profile.Profiler, sd *tlb.Shootdown, rec *reclaim.Manager) *AddressSpace {
	as := spacePool.Get().(*AddressSpace)
	as.w.Root = pagetable.NewTable(alloc, addr.PGD)
	as.w.Alloc = alloc
	as.w.Prof = prof
	as.w.Charger = nil
	if as.vmas == nil {
		as.vmas = &vm.Set{}
	}
	as.alloc = alloc
	as.prof = prof
	as.met = alloc.Metrics()
	as.trc = alloc.Tracer()
	as.sd = sd
	if as.tlb == nil {
		as.tlb = tlb.New(sd)
	} else {
		as.tlb.Reuse(sd)
	}
	as.id = spaceIDs.Add(1)
	as.rec = rec
	as.tenantID = 0
	as.charger = nil
	as.tslot = nil
	as.curReq.Store(0)
	as.dead = false
	as.Faults.Store(0)
	as.TableSplits.Store(0)
	as.PMDSplits.Store(0)
	as.PageCopies.Store(0)
	as.HugeCopies.Store(0)
	as.FastDedups.Store(0)
	as.SwapIns.Store(0)
	as.ZeroElides.Store(0)
	return as
}

// Recycle tears the space down and returns its shell to the space
// pool. Only callers that own the last reference may use it — after
// Recycle the struct may be reinitialized for an unrelated process at
// any time. Fork-per-request loops (and the zero-alloc benchmarks)
// pair each fork with a Recycle to run allocation-free once warm;
// everything else just calls Teardown and lets GC take the shell.
func (as *AddressSpace) Recycle() {
	as.Teardown()
	spacePool.Put(as)
}

// NewAddressSpace returns an empty address space drawing frames from
// alloc. The profiler may be nil. The metrics registry is inherited
// from the allocator (see phys.Allocator.SetMetrics), so the whole
// memory stack of one kernel instruments into a single tree.
func NewAddressSpace(alloc *phys.Allocator, prof *profile.Profiler) *AddressSpace {
	var rec *reclaim.Manager
	if m, ok := alloc.ReclaimerHook().(*reclaim.Manager); ok {
		rec = m
	}
	return getSpace(alloc, prof, &tlb.Shootdown{}, rec)
}

// spaceIDs issues process-lifetime-unique address-space IDs for
// reclaim's lock ordering.
var spaceIDs atomic.Uint64

// trk returns the reclaim manager when LRU/rmap tracking is active,
// else nil — the one-load guard every bookkeeping hook sits behind.
func (as *AddressSpace) trk() *reclaim.Manager {
	if as.rec != nil && as.rec.Enabled() {
		return as.rec
	}
	return nil
}

// SetTenant attributes the space to a tenant account: every frame
// allocated from here on — data pages, COW copies, page tables grown
// by Ensure* walks — is charged to c, and failpoint injection sites
// report id for scope filtering. Children inherit the attribution at
// fork. Call before the first mapping; frames allocated earlier stay
// uncharged. A nil c with id 0 detaches the space.
func (as *AddressSpace) SetTenant(id uint64, c phys.FrameCharger) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.tenantID = id
	as.charger = c
	as.w.Charger = c
	if c == nil && id == 0 {
		as.tslot = nil
	}
}

// SetTenantSlot attaches the tenant's metric partition so fork/fault
// paths can charge per-tenant counters without a lookup. Children
// inherit the slot at fork, like the charger.
func (as *AddressSpace) SetTenantSlot(slot *metrics.TenantSlot) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.tslot = slot
}

// TenantID returns the tenant the space is attributed to (0 = none).
func (as *AddressSpace) TenantID() uint64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.tenantID
}

// SetRequest tags the space with the correlation id of the request it
// is serving (0 clears the tag). The serving tier brackets each
// handled request with this; forks propagate the tag to the clone.
func (as *AddressSpace) SetRequest(req uint64) { as.curReq.Store(req) }

// Request returns the current request correlation id (0 = none).
func (as *AddressSpace) Request() uint64 { return as.curReq.Load() }

// ReclaimID implements reclaim.Space.
func (as *AddressSpace) ReclaimID() uint64 { return as.id }

// TryLockForReclaim implements reclaim.Space.
func (as *AddressSpace) TryLockForReclaim() bool { return as.mu.TryLock() }

// UnlockForReclaim implements reclaim.Space.
func (as *AddressSpace) UnlockForReclaim() { as.mu.Unlock() }

// ReclaimFlushTLB implements reclaim.Space: evicting a page invalidates
// whole-TLB rather than per-line, because the reverse map is keyed by
// table, not by virtual address.
func (as *AddressSpace) ReclaimFlushTLB() { as.tlb.Flush() }

// Metrics returns the registry this space charges (may be nil).
func (as *AddressSpace) Metrics() *metrics.Registry { return as.met }

// TLB exposes the space's software TLB (statistics, tests).
func (as *AddressSpace) TLB() *tlb.TLB { return as.tlb }

// Allocator returns the backing physical allocator.
func (as *AddressSpace) Allocator() *phys.Allocator { return as.alloc }

// Walker exposes the paging hierarchy for tests and invariant checks.
func (as *AddressSpace) Walker() *pagetable.Walker { return &as.w }

// MappedBytes returns the total size of all VMAs.
func (as *AddressSpace) MappedBytes() uint64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.vmas.TotalBytes()
}

// VMACount returns the number of VMAs.
func (as *AddressSpace) VMACount() int {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.vmas.Len()
}

// VMAs returns a snapshot of the space's VMAs in address order. The
// returned VMAs must be treated as read-only.
func (as *AddressSpace) VMAs() []*vm.VMA {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]*vm.VMA, len(as.vmas.All()))
	copy(out, as.vmas.All())
	return out
}

// FindVMA returns the VMA containing v, or nil. The returned VMA must
// be treated as read-only.
func (as *AddressSpace) FindVMA(v addr.V) *vm.VMA {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.vmas.Find(v)
}

// Mmap creates a mapping of size bytes. A zero hint lets the kernel
// pick an address in the mmap area. Huge mappings must be 2 MiB-sized.
// With vm.MapPopulate every page is backed immediately, like the
// paper's benchmarks that write the whole buffer before forking.
func (as *AddressSpace) Mmap(hint addr.V, size uint64, prot vm.Prot, flags vm.MapFlags, backing vm.Backing, fileOff uint64) (_ addr.V, err error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	defer catchOOM(&err)
	if as.dead {
		return 0, fmt.Errorf("core: address space torn down")
	}
	if size == 0 {
		return 0, fmt.Errorf("core: zero-size mmap: %w", ErrBadAddr)
	}
	if flags&vm.MapHuge != 0 {
		if size%addr.HugePageSize != 0 {
			return 0, fmt.Errorf("core: huge mmap size %#x not 2MiB-aligned: %w", size, ErrBadAddr)
		}
		if backing != nil {
			return 0, fmt.Errorf("core: huge file-backed mappings unsupported")
		}
	}
	size = addr.PageRoundUp(size)

	start := hint
	if start == 0 {
		base := mmapBase
		if flags&vm.MapHuge != 0 {
			base = addr.V(addr.HugeRoundUp(uint64(mmapBase)))
		}
		var ok bool
		start, ok = as.findGapLocked(base, size, flags)
		if !ok {
			return 0, fmt.Errorf("core: mmap area exhausted for %d bytes", size)
		}
	} else if !start.PageAligned() {
		return 0, fmt.Errorf("core: unaligned mmap hint %v: %w", start, ErrBadAddr)
	}
	if flags&vm.MapHuge != 0 && !start.HugeAligned() {
		return 0, fmt.Errorf("core: huge mmap at unaligned address %v: %w", start, ErrBadAddr)
	}

	vma := &vm.VMA{
		Range:   addr.NewRange(start, size),
		Prot:    prot,
		Flags:   flags,
		Backing: backing,
		FileOff: fileOff,
	}
	if err := as.vmas.Insert(vma); err != nil {
		return 0, err
	}
	if flags&vm.MapPopulate != 0 {
		if perr := as.populateLocked(vma, vma.Range); perr != nil {
			// Unwind: drop the half-populated mapping so a failed
			// MapPopulate leaves no trace of the VMA behind.
			as.vmas.RemoveRange(vma.Range)
			as.zapRangeLocked(vma.Range)
			return 0, perr
		}
	}
	return start, nil
}

// findGapLocked finds a free region, keeping huge mappings 2 MiB-aligned.
func (as *AddressSpace) findGapLocked(base addr.V, size uint64, flags vm.MapFlags) (addr.V, bool) {
	hint := base
	for {
		v, ok := as.vmas.FindGap(hint, size, mmapLimit)
		if !ok {
			return 0, false
		}
		if flags&vm.MapHuge == 0 || v.HugeAligned() {
			return v, true
		}
		aligned := addr.V(addr.HugeRoundUp(uint64(v)))
		if aligned == hint {
			// No progress possible; give up to avoid spinning.
			return 0, false
		}
		hint = aligned
	}
}

// populateLocked backs every page of r (within vma) with a fresh frame.
// Frames are materialized lazily by the phys layer, so this is a
// metadata-only operation until the pages are written.
func (as *AddressSpace) populateLocked(vma *vm.VMA, r addr.Range) error {
	if vma.Huge() {
		for v := r.Start; v < r.End; v += addr.HugePageSize {
			pmd, pi := as.ensurePrivatePMDLocked(v)
			if pmd.Entry(pi).Present() {
				continue
			}
			head := as.alloc.AllocHugeFor(as.charger)
			flags := pagetable.FlagHuge | pagetable.FlagUser
			if vma.Prot.CanWrite() {
				flags |= pagetable.FlagWritable
			}
			pmd.SetEntry(pi, pagetable.MakeEntry(head, flags))
			if m := as.trk(); m != nil {
				m.HugeMapped(head, pmd, pi, as)
			}
		}
		return nil
	}
	for v := r.Start; v < r.End; v += addr.PageSize {
		leaf, li := as.ensurePrivateLeafLocked(v)
		if leaf.Entry(li).Present() {
			continue
		}
		if err := as.installPageLocked(vma, leaf, li, v); err != nil {
			return err
		}
	}
	return nil
}

// installPageLocked backs one 4 KiB page, copying file content for
// file-backed VMAs. A fallible backing (a checkpoint image) can refuse
// the read — corrupt chunk, exhausted I/O retries — in which case the
// fresh frame is released and the error propagates out of the faulting
// access, never leaving a silently zero-filled page behind.
func (as *AddressSpace) installPageLocked(vma *vm.VMA, leaf *pagetable.Table, li int, v addr.V) error {
	f := as.alloc.AllocFor(as.charger)
	if vma.Backing != nil {
		off := vma.FileOff + uint64(v.PageBase()-vma.Range.Start)
		if fb, ok := vma.Backing.(vm.FallibleBacking); ok {
			src, err := fb.PageAtErr(off)
			if err != nil {
				as.alloc.Put(f)
				return fmt.Errorf("core: page-in at %v from %s: %w", v, vma.Backing.BackingName(), err)
			}
			if src != nil {
				copy(as.alloc.Data(f), src)
			}
		} else if src := vma.Backing.PageAt(off); src != nil {
			copy(as.alloc.Data(f), src)
		}
	}
	flags := pagetable.FlagUser
	if vma.Prot.CanWrite() {
		flags |= pagetable.FlagWritable
	}
	leaf.SetEntry(li, pagetable.MakeEntry(f, flags))
	if m := as.trk(); m != nil {
		m.PageMapped(f, leaf, li, as)
	}
	return nil
}

// Munmap removes all mappings in [start, start+size), tearing down page
// tables with the copy-on-write rules of §3.3: a shared last-level
// table whose whole relevant coverage is going away is simply
// dereferenced; a partially unmapped shared table is first copied.
func (as *AddressSpace) Munmap(start addr.V, size uint64) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	if !start.PageAligned() {
		return fmt.Errorf("core: unaligned munmap %v: %w", start, ErrBadAddr)
	}
	r := addr.NewRange(start, addr.PageRoundUp(size))
	if r.Empty() {
		return fmt.Errorf("core: empty munmap: %w", ErrBadAddr)
	}
	removed := as.vmas.RemoveRange(r)
	for _, piece := range removed {
		if piece.Huge() {
			if err := as.zapHugeLocked(piece.Range); err != nil {
				return err
			}
			// Reclaim may have split cold huge pages into 4 KiB
			// mappings under a leaf table; zap those too.
			as.zapRangeLocked(piece.Range)
			continue
		}
		as.zapRangeLocked(piece.Range)
	}
	as.tlb.FlushRange(r)
	return nil
}

// zapHugeLocked clears huge PMD entries covering r, honoring shared
// PMD tables from the huge-page extension with the same §3.3 rules as
// shared PTE tables. Partial huge-page unmaps are rejected (the real
// kernel would split the huge page; the paper's workloads never do
// this).
func (as *AddressSpace) zapHugeLocked(r addr.Range) error {
	if !r.Start.HugeAligned() || uint64(r.End)%addr.HugePageSize != 0 {
		return fmt.Errorf("core: partial huge-page unmap %v: %w", r, ErrBadAddr)
	}
	// Process one PMD-table coverage (1 GiB) at a time.
	base := r.Start &^ addr.V(addr.PMDCoverage-1)
	for v := base; v < r.End; v += addr.PMDCoverage {
		pud, pi := as.w.FindPUD(v)
		if pud == nil {
			continue
		}
		pmd := pud.Child(pi)
		if pmd == nil {
			continue
		}
		coverage := addr.NewRange(v, addr.PMDCoverage)
		stillNeeded := as.vmas.MapsAnyIn(coverage)

		if pmd.ShareCount(as.alloc) > 1 {
			if stillNeeded {
				pmd = as.splitSharedPMDLocked(pud, pi, pmd)
			} else {
				// Whole coverage going away: drop our reference.
				pud.SetChild(pi, nil, 0)
				as.releasePMDRef(pmd)
				continue
			}
		}
		zap := coverage.Intersect(r)
		pmd.Lock()
		for a := zap.Start; a < zap.End; a += addr.HugePageSize {
			idx := a.Index(addr.PMD)
			if e := pmd.Entry(idx); e.Present() && e.Huge() {
				if m := as.trk(); m != nil {
					m.HugeUnmapped(e.Frame(), pmd, idx)
				}
				as.alloc.Put(e.Frame())
				pmd.SetEntry(idx, 0)
			}
		}
		pmd.Unlock()
	}
	return nil
}

// zapRangeLocked clears 4 KiB page table entries covering r, honoring
// shared-table copy-on-write. Must be called after the VMAs covering r
// have been removed from the set, so as.vmas reflects what must be kept.
func (as *AddressSpace) zapRangeLocked(r addr.Range) {
	as.w.VisitLeafTables(r, func(pmd *pagetable.Table, idx int, leaf *pagetable.Table, base addr.V) {
		coverage := addr.NewRange(base, addr.PTECoverage)
		stillNeeded := as.vmas.MapsAnyIn(coverage)

		leaf.Lock()
		shared := leaf.ShareCount(as.alloc) > 1
		if shared && stillNeeded {
			// §3.3: other VMAs of this process still use entries of this
			// shared table — copy it before clearing our part.
			leaf.Unlock()
			leaf = as.splitSharedLeafLocked(pmd, idx, leaf, base)
			leaf.Lock()
			shared = false
		}
		if shared {
			// Whole relevant coverage going away: drop our reference.
			leaf.Unlock()
			pmd.SetChild(idx, nil, 0)
			as.releaseLeafRef(leaf)
			return
		}

		// Dedicated table: clear the entries in r, releasing the table's
		// per-entry page references (and swap-slot references for
		// entries that were swapped out).
		zap := coverage.Intersect(r)
		for v := zap.Start; v < zap.End; v += addr.PageSize {
			li := v.Index(addr.PTE)
			if e := leaf.Entry(li); e.Present() {
				if m := as.trk(); m != nil {
					m.PageUnmapped(e.Frame(), leaf, li)
				}
				as.alloc.Put(e.Frame())
				leaf.SetEntry(li, 0)
			} else if e.Swapped() {
				as.rec.SwapUnref(e.SwapSlot())
				leaf.SetEntry(li, 0)
			}
		}
		empty := leaf.PresentCount() == 0 && leaf.SwapCount() == 0
		leaf.Unlock()
		if empty && !stillNeeded {
			pmd.SetChild(idx, nil, 0)
			as.releaseLeafRef(leaf)
		}
	})
}

// releaseLeafRef drops one share reference on a last-level table,
// freeing the table — and releasing its per-entry page references —
// when the count reaches zero (§3.5: "if any page table reaches a zero
// reference count, its destructor is called"). The decrement happens
// under the table lock so it serializes with concurrent splits by
// other sharers: a splitter holding the lock cannot observe the count
// dropping beneath it (the paper's §4 "test-and-set ... when one is
// being dereferenced and potentially freed").
func (as *AddressSpace) releaseLeafRef(leaf *pagetable.Table) {
	leaf.Lock()
	if as.alloc.PTSharePut(leaf.Frame) > 0 {
		leaf.Unlock()
		if m := as.trk(); m != nil {
			m.OwnerRemove(leaf, as)
		}
		return
	}
	for i := 0; i < addr.EntriesPerTable; i++ {
		if e := leaf.Entry(i); e.Present() {
			if m := as.trk(); m != nil {
				m.PageUnmapped(e.Frame(), leaf, i)
			}
			as.alloc.Put(e.Frame())
			leaf.SetEntry(i, 0)
		} else if e.Swapped() {
			as.rec.SwapUnref(e.SwapSlot())
			leaf.SetEntry(i, 0)
		}
	}
	leaf.Unlock()
	if m := as.trk(); m != nil {
		m.TableFreed(leaf)
	}
	as.alloc.Put(leaf.Frame)
	leaf.Recycle()
}

// Mremap moves the mapping at oldStart (oldSize bytes) to a new
// location of the same size, returning the new address. Shared
// last-level tables touched by the move are copied first, per §3.3.
func (as *AddressSpace) Mremap(oldStart addr.V, oldSize uint64) (_ addr.V, err error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	defer catchOOM(&err)
	if !oldStart.PageAligned() {
		return 0, fmt.Errorf("core: unaligned mremap %v: %w", oldStart, ErrBadAddr)
	}
	oldSize = addr.PageRoundUp(oldSize)
	oldR := addr.NewRange(oldStart, oldSize)
	vma := as.vmas.Find(oldStart)
	if vma == nil || !vma.Range.ContainsRange(oldR) {
		return 0, fmt.Errorf("core: mremap of unmapped range %v: %w", oldR, ErrBadAddr)
	}
	if vma.Huge() {
		return 0, fmt.Errorf("core: mremap of huge mappings unsupported")
	}

	newStart, ok := as.vmas.FindGap(mmapBase, oldSize, mmapLimit)
	if !ok {
		return 0, fmt.Errorf("core: no space to mremap %d bytes", oldSize)
	}

	// Move the page table entries before touching the VMA set, so the
	// shared-table checks still see the old mapping.
	type moved struct {
		off addr.V
		e   pagetable.Entry
	}
	var entries []moved
	as.w.VisitLeafTables(oldR, func(pmd *pagetable.Table, idx int, leaf *pagetable.Table, base addr.V) {
		leaf.Lock()
		shared := leaf.ShareCount(as.alloc) > 1
		leaf.Unlock()
		if shared {
			// Copy-on-write the table: after the split we own a private
			// copy whose entries we can safely clear.
			leaf = as.splitSharedLeafLocked(pmd, idx, leaf, base)
		}
		coverage := addr.NewRange(base, addr.PTECoverage)
		zap := coverage.Intersect(oldR)
		leaf.Lock()
		for v := zap.Start; v < zap.End; v += addr.PageSize {
			li := v.Index(addr.PTE)
			if e := leaf.Entry(li); e.Present() || e.Swapped() {
				if e.Present() {
					if m := as.trk(); m != nil {
						m.PageUnmapped(e.Frame(), leaf, li)
					}
				}
				entries = append(entries, moved{off: v - oldStart, e: e})
				leaf.SetEntry(li, 0)
			}
		}
		empty := leaf.PresentCount() == 0 && leaf.SwapCount() == 0
		leaf.Unlock()
		if empty {
			pmd.SetChild(idx, nil, 0)
			as.releaseLeafRef(leaf)
		}
	})

	// Update the VMA set.
	as.vmas.RemoveRange(oldR)
	newVMA := &vm.VMA{
		Range:   addr.NewRange(newStart, oldSize),
		Prot:    vma.Prot,
		Flags:   vma.Flags &^ vm.MapPopulate,
		Backing: vma.Backing,
		FileOff: vma.FileOff + uint64(oldR.Start-vma.Range.Start),
	}
	if err := as.vmas.Insert(newVMA); err != nil {
		return 0, fmt.Errorf("core: mremap insert: %v", err)
	}

	// Reinstall the moved entries at the new location. Swap entries move
	// verbatim (the slot reference count is unchanged by a move).
	for _, mv := range entries {
		leaf, li := as.ensurePrivateLeafLocked(newStart + mv.off)
		leaf.SetEntry(li, mv.e)
		if mv.e.Present() {
			if m := as.trk(); m != nil {
				m.PageMapped(mv.e.Frame(), leaf, li, as)
			}
		}
	}
	as.tlb.FlushRange(oldR)
	return newStart, nil
}

// Mprotect changes the protection of [start, start+size), which must be
// covered by mapped VMAs.
func (as *AddressSpace) Mprotect(start addr.V, size uint64, prot vm.Prot) (err error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	defer catchOOM(&err)
	r := addr.NewRange(start, addr.PageRoundUp(size))
	if !start.PageAligned() || r.Empty() {
		return fmt.Errorf("core: bad mprotect range %v: %w", r, ErrBadAddr)
	}
	overlapping := as.vmas.Overlapping(r)
	if len(overlapping) == 0 {
		return fmt.Errorf("core: mprotect of unmapped range %v: %w", r, ErrBadAddr)
	}
	// Split VMAs at the boundaries by removing and re-inserting.
	removed := as.vmas.RemoveRange(r)
	for _, piece := range removed {
		nv := *piece
		nv.Prot = prot
		if err := as.vmas.Insert(&nv); err != nil {
			return fmt.Errorf("core: mprotect reinsert: %v", err)
		}
		if !prot.CanWrite() && !piece.Huge() {
			as.writeProtectRangeLocked(piece.Range)
		}
	}
	as.tlb.FlushRange(r)
	as.prof.Charge(profile.TLBFlush, 1)
	return nil
}

// writeProtectRangeLocked clears the writable bit on present entries in
// r. Shared tables are split first, since their entries would otherwise
// change under other sharers with different protections.
func (as *AddressSpace) writeProtectRangeLocked(r addr.Range) {
	as.w.VisitLeafTables(r, func(pmd *pagetable.Table, idx int, leaf *pagetable.Table, base addr.V) {
		leaf.Lock()
		shared := leaf.ShareCount(as.alloc) > 1
		leaf.Unlock()
		if shared {
			leaf = as.splitSharedLeafLocked(pmd, idx, leaf, base)
		}
		coverage := addr.NewRange(base, addr.PTECoverage)
		zap := coverage.Intersect(r)
		leaf.Lock()
		for v := zap.Start; v < zap.End; v += addr.PageSize {
			li := v.Index(addr.PTE)
			if e := leaf.Entry(li); e.Present() || e.Swapped() {
				leaf.SetEntry(li, e.Without(pagetable.FlagWritable))
			}
		}
		leaf.Unlock()
	})
}

// Teardown releases the whole address space: every VMA, every page
// reference, and every page table. After Teardown the space is dead.
func (as *AddressSpace) Teardown() {
	as.mu.Lock()
	defer as.mu.Unlock()
	if as.dead {
		return
	}
	as.dead = true
	as.vmas.Reset()
	as.freeTree(as.w.Root)
	as.w.Root = nil
}

// freeTree recursively releases a paging subtree. PMD tables go
// through the share-counted release, since the huge-page extension can
// leave them shared across processes.
func (as *AddressSpace) freeTree(t *pagetable.Table) {
	if t.Level == addr.PMD {
		as.releasePMDRef(t)
		return
	}
	for i := 0; i < addr.EntriesPerTable; i++ {
		if child := t.Child(i); child != nil {
			as.freeTree(child)
			t.SetChild(i, nil, 0)
		}
	}
	as.alloc.Put(t.Frame)
	t.Recycle()
}

// releasePMDRef drops one share reference on a PMD table, releasing
// its huge pages and last-level table references — and the table
// itself — when the count reaches zero. As with releaseLeafRef, the
// decrement is serialized with concurrent splits by the table lock.
func (as *AddressSpace) releasePMDRef(t *pagetable.Table) {
	t.Lock()
	if as.alloc.PTSharePut(t.Frame) > 0 {
		t.Unlock()
		if m := as.trk(); m != nil {
			m.OwnerRemove(t, as)
		}
		return
	}
	for i := 0; i < addr.EntriesPerTable; i++ {
		e := t.Entry(i)
		if !e.Present() {
			continue
		}
		if e.Huge() {
			if m := as.trk(); m != nil {
				m.HugeUnmapped(e.Frame(), t, i)
			}
			as.alloc.Put(e.Frame())
			t.SetEntry(i, 0)
			continue
		}
		if leaf := t.Child(i); leaf != nil {
			t.SetChild(i, nil, 0)
			as.releaseLeafRef(leaf)
		}
	}
	t.Unlock()
	if m := as.trk(); m != nil {
		m.TableFreed(t)
	}
	as.alloc.Put(t.Frame)
	t.Recycle()
}

// Dead reports whether the space has been torn down.
func (as *AddressSpace) Dead() bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.dead
}

// MadviseDontneed discards the page contents of [start, start+size)
// without unmapping: page table entries are cleared (splitting shared
// tables first, since the neighbours keep their view) and the backing
// frames released; later accesses demand-fault fresh zero pages (or
// re-read the file for file-backed regions). This is the
// madvise(MADV_DONTNEED) fork-heavy frameworks use to reset state.
func (as *AddressSpace) MadviseDontneed(start addr.V, size uint64) (err error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	defer catchOOM(&err)
	if !start.PageAligned() {
		return fmt.Errorf("core: unaligned madvise %v: %w", start, ErrBadAddr)
	}
	r := addr.NewRange(start, addr.PageRoundUp(size))
	if r.Empty() {
		return fmt.Errorf("core: empty madvise: %w", ErrBadAddr)
	}
	for _, vma := range as.vmas.Overlapping(r) {
		piece := vma.Range.Intersect(r)
		if vma.Huge() {
			if err := as.zapHugeLocked(piece); err != nil {
				return err
			}
			// Cold huge pages the reclaimer split live in leaf tables.
			as.zapRangeLocked(piece)
			continue
		}
		as.zapRangeLocked(piece)
	}
	as.tlb.FlushRange(r)
	return nil
}

// VisitPresentPages calls fn for every present 4 KiB page of the
// space, in address order, with the page's logical content (nil means
// all-zero). Huge mappings are delivered page by page. fn returning an
// error stops the walk. Used by core-dump serialization.
func (as *AddressSpace) VisitPresentPages(fn func(v addr.V, data []byte) error) error {
	as.mu.Lock()
	vmas := make([]*vm.VMA, len(as.vmas.All()))
	copy(vmas, as.vmas.All())
	as.mu.Unlock()
	var swapBuf []byte
	for _, vma := range vmas {
		for v := vma.Range.Start; v < vma.Range.End; v += addr.PageSize {
			as.mu.Lock()
			tr, ok := as.w.Walk(v)
			var data []byte
			var readErr error
			if ok {
				data = as.alloc.DataIfPresent(tr.Frame)
			} else if as.rec != nil {
				// A swapped-out page is still logically present: deliver
				// its content from the swap store (slot 0 is the zero
				// page, reported as nil like any untouched frame).
				if leaf, li := as.w.FindPTE(v); leaf != nil {
					if e := leaf.Entry(li); e.Swapped() {
						ok = true
						if slot := e.SwapSlot(); slot != 0 {
							if swapBuf == nil {
								swapBuf = make([]byte, addr.PageSize)
							}
							data = swapBuf
							readErr = as.rec.ReadSlot(slot, swapBuf)
						}
					}
				}
			}
			as.mu.Unlock()
			if readErr != nil {
				return fmt.Errorf("core: reading swapped page %v: %w", v, readErr)
			}
			if !ok {
				continue
			}
			if err := fn(v, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Page identity classes for the incremental-checkpoint diff.
const (
	identityAbsent = iota // no frame, no swap entry
	identityFrame         // present: identified by physical frame
	identitySlot          // swapped out: identified by swap slot
)

// pageIdentity classifies what backs v right now. Frames are global to
// the kernel's allocator, so two address spaces reporting the same
// frame for the same address share one COW page — identical content by
// construction. The same holds for a shared swap slot.
func (as *AddressSpace) pageIdentity(v addr.V) (kind int, id uint64) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if tr, ok := as.w.Walk(v); ok {
		return identityFrame, uint64(tr.Frame)
	}
	if leaf, li := as.w.FindPTE(v); leaf != nil {
		if e := leaf.Entry(li); e.Swapped() {
			return identitySlot, uint64(e.SwapSlot())
		}
	}
	return identityAbsent, 0
}

// pageContent returns the logical content of v (nil = all zeroes),
// reading swapped-out pages back through the swap store into swapBuf.
func (as *AddressSpace) pageContent(v addr.V, swapBuf *[]byte) ([]byte, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if tr, ok := as.w.Walk(v); ok {
		return as.alloc.DataIfPresent(tr.Frame), nil
	}
	if as.rec != nil {
		if leaf, li := as.w.FindPTE(v); leaf != nil {
			if e := leaf.Entry(li); e.Swapped() {
				slot := e.SwapSlot()
				if slot == 0 {
					return nil, nil
				}
				if *swapBuf == nil {
					*swapBuf = make([]byte, addr.PageSize)
				}
				if err := as.rec.ReadSlot(slot, *swapBuf); err != nil {
					return nil, fmt.Errorf("core: reading swapped page %v: %w", v, err)
				}
				return *swapBuf, nil
			}
		}
	}
	return nil, nil
}

// VisitDivergedPages calls fn for every page of the space whose content
// may differ from base's view of the same address — the incremental-
// checkpoint walk. The COW lineage makes the diff cheap: a page whose
// physical frame (or swap slot) is the same in both spaces is a still-
// shared COW page, so its content is identical by construction and the
// page is skipped (counted in skipped). Diverged pages are delivered
// with the space's logical content; nil data means the address now
// reads as zeroes and must be recorded explicitly, because it may
// shadow non-zero content in the parent snapshot. Only this space's
// VMA ranges are walked: the restore maps this space's VMA table, so
// addresses outside it can never be faulted in.
func (as *AddressSpace) VisitDivergedPages(base *AddressSpace, fn func(v addr.V, data []byte) error) (skipped uint64, err error) {
	as.mu.Lock()
	vmas := make([]*vm.VMA, len(as.vmas.All()))
	copy(vmas, as.vmas.All())
	as.mu.Unlock()
	var swapBuf []byte
	for _, vma := range vmas {
		for v := vma.Range.Start; v < vma.Range.End; v += addr.PageSize {
			selfKind, selfID := as.pageIdentity(v)
			baseKind, baseID := base.pageIdentity(v)
			if selfKind == baseKind && selfID == baseID {
				if selfKind != identityAbsent {
					skipped++
				}
				continue
			}
			var data []byte
			if selfKind != identityAbsent {
				data, err = as.pageContent(v, &swapBuf)
				if err != nil {
					return skipped, err
				}
			}
			if err := fn(v, data); err != nil {
				return skipped, err
			}
		}
	}
	return skipped, nil
}
