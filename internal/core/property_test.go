package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
)

// shadowSpace pairs a simulated address space with a plain-Go shadow of
// its memory contents, so random operation sequences can be verified
// byte-for-byte.
type shadowSpace struct {
	as     *AddressSpace
	shadow map[addr.V]byte // sparse: unset means zero
	base   addr.V
	size   uint64
}

func (s *shadowSpace) cloneShadow() map[addr.V]byte {
	m := make(map[addr.V]byte, len(s.shadow))
	for k, v := range s.shadow {
		m[k] = v
	}
	return m
}

// TestQuickForkLineage drives random fork/write/verify/exit sequences
// over a process tree and checks, after every step, that each live
// process sees exactly its own shadow memory, that the share/refcount
// invariants hold, and that no frames leak at the end.
func TestQuickForkLineage(t *testing.T) {
	const (
		regions = 3
		size    = regions * addr.PTECoverage
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alloc := phys.NewAllocator(nil)
		root := NewAddressSpace(alloc, nil)
		base, err := root.Mmap(0, size, rw, vm.MapPrivate|vm.MapPopulate, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		live := []*shadowSpace{{
			as: root, shadow: map[addr.V]byte{}, base: base, size: size,
		}}

		checkOne := func(s *shadowSpace) error {
			// Verify a sample of addresses, including all shadow-written.
			for a, want := range s.shadow {
				got, err := s.as.LoadByte(a)
				if err != nil {
					return fmt.Errorf("read %v: %v", a, err)
				}
				if got != want {
					return fmt.Errorf("at %v got %#x want %#x", a, got, want)
				}
			}
			for i := 0; i < 8; i++ {
				a := s.base + addr.V(rng.Int63n(int64(s.size)))
				want := s.shadow[a]
				got, err := s.as.LoadByte(a)
				if err != nil {
					return fmt.Errorf("read %v: %v", a, err)
				}
				if got != want {
					return fmt.Errorf("sample at %v got %#x want %#x", a, got, want)
				}
			}
			return nil
		}

		for op := 0; op < 60 && len(live) > 0; op++ {
			s := live[rng.Intn(len(live))]
			switch rng.Intn(10) {
			case 0, 1: // fork (both modes)
				if len(live) >= 8 {
					continue
				}
				mode := ForkClassic
				if rng.Intn(2) == 0 {
					mode = ForkOnDemand
				}
				child := Fork(s.as, mode)
				live = append(live, &shadowSpace{
					as: child, shadow: s.cloneShadow(), base: s.base, size: s.size,
				})
			case 2: // exit (keep at least one process)
				if len(live) > 1 {
					s.as.Teardown()
					for i, e := range live {
						if e == s {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
				}
			default: // write a few bytes
				for k := 0; k < 4; k++ {
					a := s.base + addr.V(rng.Int63n(int64(s.size)))
					b := byte(rng.Intn(256))
					if err := s.as.StoreByte(a, b); err != nil {
						t.Logf("seed %d: write failed: %v", seed, err)
						return false
					}
					s.shadow[a] = b
				}
			}

			if op%7 == 0 {
				spaces := make([]*AddressSpace, len(live))
				for i, e := range live {
					spaces[i] = e.as
				}
				if err := CheckInvariants(spaces...); err != nil {
					t.Logf("seed %d op %d: %v", seed, op, err)
					return false
				}
				for _, e := range live {
					if err := checkOne(e); err != nil {
						t.Logf("seed %d op %d: %v", seed, op, err)
						return false
					}
				}
			}
		}
		for _, e := range live {
			if err := checkOne(e); err != nil {
				t.Logf("seed %d final: %v", seed, err)
				return false
			}
			e.as.Teardown()
		}
		if n := alloc.Allocated(); n != 0 {
			t.Logf("seed %d: leaked %d frames", seed, n)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickUnmapRemapLineage mixes munmap and mremap into fork
// lineages, the operations §3.3 singles out.
func TestQuickUnmapRemapLineage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		alloc := phys.NewAllocator(nil)
		parent := NewAddressSpace(alloc, nil)
		size := uint64(2 * addr.PTECoverage)
		base, err := parent.Mmap(0, size, rw, vm.MapPrivate|vm.MapPopulate, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Stamp each page with its index.
		for pg := uint64(0); pg < size/addr.PageSize; pg += 16 {
			if err := parent.StoreByte(base+addr.V(pg*addr.PageSize), byte(pg)); err != nil {
				t.Fatal(err)
			}
		}
		child := Fork(parent, ForkOnDemand)

		// Child randomly unmaps or remaps sub-ranges; the parent's view
		// must be completely unaffected.
		for i := 0; i < 6; i++ {
			pg := rng.Int63n(int64(size/addr.PageSize - 8))
			n := uint64(rng.Int63n(8) + 1)
			target := base + addr.V(pg)*addr.PageSize
			if child.FindVMA(target) == nil {
				continue
			}
			if rng.Intn(2) == 0 {
				_ = child.Munmap(target, n*addr.PageSize)
			} else {
				vma := child.FindVMA(target)
				if vma != nil && vma.Range.ContainsRange(addr.NewRange(target, n*addr.PageSize)) {
					if _, err := child.Mremap(target, n*addr.PageSize); err != nil {
						t.Logf("seed %d: mremap: %v", seed, err)
						return false
					}
				}
			}
		}
		for pg := uint64(0); pg < size/addr.PageSize; pg += 16 {
			b, err := parent.LoadByte(base + addr.V(pg*addr.PageSize))
			if err != nil || b != byte(pg) {
				t.Logf("seed %d: parent page %d = %d, %v", seed, pg, b, err)
				return false
			}
		}
		if err := CheckInvariants(parent, child); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		child.Teardown()
		parent.Teardown()
		if n := alloc.Allocated(); n != 0 {
			t.Logf("seed %d: leaked %d frames", seed, n)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
