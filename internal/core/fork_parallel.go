package core

// Parallel fork engine: fan the tree copy out across present PMD-slot
// ranges, the way Mitosis parallelizes page-table work across the
// radix tree's upper levels. The sequential walk of the (tiny) upper
// levels duplicates PGD/PUD tables and collects one task per chunk of
// PMD slots; a bounded, reusable worker pool then copies the chunks
// concurrently.
//
// Data-race freedom comes from ownership, not locking: every task
// writes a disjoint slot range of a freshly allocated destination
// table nobody else can reach (distinct array indices of private
// tables), reads of source entries are atomic words, shared leaf
// tables are taken under their own locks exactly as in the sequential
// engine, and all profile/refcount traffic is atomic. The WaitGroup in
// runForkTasks gives the caller a happens-before edge over everything
// the workers wrote.

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/profile"
	"repro/internal/trace"
)

// forkTask is one unit of fork-time copy work. The actor argument is
// the flight-recorder identity of the worker executing it (ActorApp
// for the forking goroutine, ActorForkWorker(i) for pool helpers), so
// trace spans land on the track of whoever ran them.
type forkTask func(actor int32)

// Chunk sizes, in PMD slots per task. Classic fork does 512 PTE copies
// plus refcount traffic per slot, so modest chunks (16 slots = 32 MiB)
// balance load without swamping the task list. On-demand fork does one
// counter increment per slot, so only coarse chunks are worth a
// handoff.
const (
	classicChunkSlots  = 16
	onDemandChunkSlots = 128
)

// The worker pool is process-wide, sized to GOMAXPROCS, and reusable
// across forks — fork latency must not include goroutine spawning.
// Workers never submit tasks themselves, and submission never blocks
// (see runForkTasks), so the pool cannot deadlock however many forks
// run concurrently.
var (
	forkPoolOnce sync.Once
	forkPoolCh   chan func()
	forkPoolN    int
)

func forkPoolInit() {
	forkPoolOnce.Do(func() {
		forkPoolN = runtime.GOMAXPROCS(0)
		forkPoolCh = make(chan func())
		for i := 0; i < forkPoolN; i++ {
			go func(i int) {
				// The pprof label makes CPU samples of the copy loops
				// attributable per worker (`go tool pprof` → tag filter).
				labels := pprof.Labels("odf", "fork-worker", "worker", strconv.Itoa(i))
				pprof.Do(context.Background(), labels, func(context.Context) {
					for fn := range forkPoolCh {
						fn()
					}
				})
			}(i)
		}
	})
}

// forkPoolSize returns the number of pool workers available to help a
// forking goroutine.
func forkPoolSize() int {
	forkPoolInit()
	return forkPoolN
}

// runForkTasks executes tasks with up to par participants: the caller
// plus at most par-1 pool workers. Tasks are claimed with an atomic
// cursor (work stealing), so uneven chunks self-balance. If the pool
// is saturated by concurrent forks, submission falls through and the
// caller simply runs the remaining work itself — slower, never stuck.
//
// A task that panics (a mid-copy allocation failure, real or injected)
// must not crash a pool worker or leave the fork half-joined: every
// participant traps its panic, the remaining participants stop
// claiming tasks, and after ALL of them have quiesced — the WaitGroup
// join is unconditional, so no worker can still be writing into the
// child when the rollback starts — the first panic value is re-raised
// on the forking goroutine, where ForkWithOptions' transaction
// boundary unwinds the partial child.
func runForkTasks(tasks []forkTask, par int) {
	if len(tasks) == 0 {
		return
	}
	if par > len(tasks) {
		par = len(tasks)
	}
	if par <= 1 {
		for _, t := range tasks {
			t(trace.ActorApp)
		}
		return
	}
	forkPoolInit()
	var next atomic.Int64
	var aborted atomic.Bool
	var firstPanic atomic.Pointer[any]
	run := func(actor int32) {
		defer func() {
			if r := recover(); r != nil {
				v := r
				firstPanic.CompareAndSwap(nil, &v)
				aborted.Store(true)
			}
		}()
		for !aborted.Load() {
			i := int(next.Add(1)) - 1
			if i >= len(tasks) {
				return
			}
			tasks[i](actor)
		}
	}
	var wg sync.WaitGroup
	for i := 1; i < par; i++ {
		wg.Add(1)
		worker := trace.ActorForkWorker(i)
		helper := func() {
			defer wg.Done()
			run(worker)
		}
		select {
		case forkPoolCh <- helper:
		default:
			wg.Done()
		}
	}
	run(trace.ActorApp)
	wg.Wait()
	if p := firstPanic.Load(); p != nil {
		panic(*p)
	}
}

// presentPMDSlots counts the present PMD slots (2 MiB regions) of the
// address space using the O(1) per-table tallies — the quantity the
// sequential-fallback threshold compares against.
func (as *AddressSpace) presentPMDSlots() int {
	total := 0
	var walk func(t *pagetable.Table)
	walk = func(t *pagetable.Table) {
		if t.Level == addr.PMD {
			total += t.PresentCount()
			return
		}
		for i := 0; i < addr.EntriesPerTable; i++ {
			if c := t.Child(i); c != nil {
				walk(c)
			}
		}
	}
	walk(as.w.Root)
	return total
}

// appendRangeTasks splits a PMD table into chunked slot-range tasks,
// skipping chunks with no present entries.
func appendRangeTasks(tasks []forkTask, src *pagetable.Table, chunk int, mk func(lo, hi int) forkTask) []forkTask {
	for lo := 0; lo < addr.EntriesPerTable; lo += chunk {
		hi := min(lo+chunk, addr.EntriesPerTable)
		any := false
		for i := lo; i < hi; i++ {
			if src.Entry(i).Present() {
				any = true
				break
			}
		}
		if any {
			tasks = append(tasks, mk(lo, hi))
		}
	}
	return tasks
}

// collectClassicTasks walks the upper levels sequentially (duplicating
// PGD/PUD tables, as copyTreeClassic does) and appends one task per
// chunk of PMD slots. Each task owns its destination slot range.
func (as *AddressSpace) collectClassicTasks(src, dst *pagetable.Table, child *AddressSpace, tasks []forkTask) []forkTask {
	if src.Level == addr.PMD {
		return appendRangeTasks(tasks, src, classicChunkSlots, func(lo, hi int) forkTask {
			return func(actor int32) { as.copyPMDRangeClassic(src, dst, lo, hi, child, actor) }
		})
	}
	fp := as.alloc.Failpoints()
	for i := 0; i < addr.EntriesPerTable; i++ {
		childTable := src.Child(i)
		if childTable == nil {
			continue
		}
		as.prof.Charge(profile.UpperWalk, 1)
		as.failInject(fp, failpoint.ForkWalk)
		newTable := pagetable.NewTable(as.alloc, childTable.Level)
		dst.SetChild(i, newTable, src.Entry(i))
		tasks = as.collectClassicTasks(childTable, newTable, child, tasks)
	}
	return tasks
}

// collectOnDemandTasks is the on-demand counterpart: upper levels are
// duplicated (or whole PMD tables shared, under ShareHugePMD) inline —
// that work is a handful of counter increments — and PMD slot chunks
// become tasks.
func (as *AddressSpace) collectOnDemandTasks(src, dst *pagetable.Table, child *AddressSpace, opts ForkOptions, tasks []forkTask) []forkTask {
	if src.Level == addr.PMD {
		return appendRangeTasks(tasks, src, onDemandChunkSlots, func(lo, hi int) forkTask {
			return func(actor int32) { as.copyPMDRangeOnDemand(src, dst, lo, hi, child, opts, actor) }
		})
	}
	fp := as.alloc.Failpoints()
	for i := 0; i < addr.EntriesPerTable; i++ {
		childTable := src.Child(i)
		if childTable == nil {
			continue
		}
		as.prof.Charge(profile.UpperWalk, 1)
		if opts.ShareHugePMD && childTable.Level == addr.PMD && hugeOnly(childTable) {
			as.sharePMDTable(src, dst, i, childTable, child)
			continue
		}
		as.failInject(fp, failpoint.ForkWalk)
		newTable := pagetable.NewTable(as.alloc, childTable.Level)
		dst.SetChild(i, newTable, src.Entry(i))
		tasks = as.collectOnDemandTasks(childTable, newTable, child, opts, tasks)
	}
	return tasks
}
