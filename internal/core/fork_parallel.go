package core

// Parallel fork engine: fan the tree copy out across present PMD-slot
// ranges, the way Mitosis parallelizes page-table work across the
// radix tree's upper levels. The sequential walk of the (tiny) upper
// levels duplicates PGD/PUD tables and collects one task per chunk of
// PMD slots; a bounded, reusable worker pool then copies the chunks
// concurrently.
//
// Data-race freedom comes from ownership, not locking: every task
// writes a disjoint slot range of a freshly allocated destination
// table nobody else can reach (distinct array indices of private
// tables), reads of source entries are atomic words, shared leaf
// tables are taken under their own locks exactly as in the sequential
// engine, and all profile/refcount traffic is atomic. The WaitGroup in
// forkRun.execute gives the caller a happens-before edge over
// everything the workers wrote.

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/profile"
	"repro/internal/trace"
)

// forkTask is one unit of fork-time copy work: a chunked slot range of
// one source PMD table, copied into the corresponding slots of the
// destination table. Tasks are plain values inside a pooled run — no
// per-task closure — so fanning a fork out allocates nothing once the
// run pool is warm.
type forkTask struct {
	src, dst *pagetable.Table
	lo, hi   int
}

// forkRun is the shared state of one parallel fork: the engine
// selection, the task list, the work-stealing cursor, and the
// abort/join machinery. Pool workers receive the run itself and pull
// tasks from it, so a fork hands one pointer per helper to the pool
// instead of one closure per task.
type forkRun struct {
	as    *AddressSpace
	child *AddressSpace
	mode  ForkMode
	opts  ForkOptions
	tasks []forkTask

	next       atomic.Int64
	aborted    atomic.Bool
	firstPanic atomic.Pointer[any]
	wg         sync.WaitGroup
}

// forkRunPool recycles runs (and their task slices) across forks.
var forkRunPool = sync.Pool{New: func() any { return new(forkRun) }}

// getForkRun returns a reset run for one fork invocation.
func getForkRun(as, child *AddressSpace, mode ForkMode, opts ForkOptions) *forkRun {
	r := forkRunPool.Get().(*forkRun)
	r.as, r.child = as, child
	r.mode, r.opts = mode, opts
	r.tasks = r.tasks[:0]
	r.next.Store(0)
	r.aborted.Store(false)
	r.firstPanic.Store(nil)
	return r
}

// release drops the run's space references and parks it for reuse. Not
// called when execute re-raises a task panic — an aborted fork's run is
// left to the garbage collector rather than threading cleanup through
// the unwind.
func (r *forkRun) release() {
	r.as, r.child = nil, nil
	forkRunPool.Put(r)
}

// Chunk sizes, in PMD slots per task. Classic fork does 512 PTE copies
// plus refcount traffic per slot, so modest chunks (16 slots = 32 MiB)
// balance load without swamping the task list. On-demand fork does one
// counter increment per slot, so only coarse chunks are worth a
// handoff.
const (
	classicChunkSlots  = 16
	onDemandChunkSlots = 128
)

// The worker pool is process-wide, sized to GOMAXPROCS, and reusable
// across forks — fork latency must not include goroutine spawning.
// Workers never submit runs themselves, and submission never blocks
// (see forkRun.execute), so the pool cannot deadlock however many
// forks run concurrently.
var (
	forkPoolOnce sync.Once
	forkPoolCh   chan *forkRun
	forkPoolN    int
)

func forkPoolInit() {
	forkPoolOnce.Do(func() {
		forkPoolN = runtime.GOMAXPROCS(0)
		forkPoolCh = make(chan *forkRun)
		for i := 0; i < forkPoolN; i++ {
			go func(i int) {
				// The pprof label makes CPU samples of the copy loops
				// attributable per worker (`go tool pprof` → tag filter).
				labels := pprof.Labels("odf", "fork-worker", "worker", strconv.Itoa(i))
				actor := trace.ActorForkWorker(i + 1)
				pprof.Do(context.Background(), labels, func(context.Context) {
					for r := range forkPoolCh {
						r.participate(actor)
						r.wg.Done()
					}
				})
			}(i)
		}
	})
}

// forkPoolSize returns the number of pool workers available to help a
// forking goroutine.
func forkPoolSize() int {
	forkPoolInit()
	return forkPoolN
}

// participate claims and runs tasks until the list is drained or the
// run aborts. A task that panics (a mid-copy allocation failure, real
// or injected) must not crash a pool worker: the panic is trapped, the
// remaining participants stop claiming tasks, and execute re-raises
// the first panic value on the forking goroutine after the join.
func (r *forkRun) participate(actor int32) {
	defer func() {
		if p := recover(); p != nil {
			v := p
			r.firstPanic.CompareAndSwap(nil, &v)
			r.aborted.Store(true)
		}
	}()
	for !r.aborted.Load() {
		i := int(r.next.Add(1)) - 1
		if i >= len(r.tasks) {
			return
		}
		t := &r.tasks[i]
		switch r.mode {
		case ForkClassic:
			r.as.copyPMDRangeClassic(t.src, t.dst, t.lo, t.hi, r.child, actor)
		default:
			r.as.copyPMDRangeOnDemand(t.src, t.dst, t.lo, t.hi, r.child, r.opts, actor)
		}
	}
}

// execute runs the collected tasks with up to par participants: the
// caller plus at most par-1 pool workers. Tasks are claimed with an
// atomic cursor (work stealing), so uneven chunks self-balance. If the
// pool is saturated by concurrent forks, submission falls through and
// the caller simply runs the remaining work itself — slower, never
// stuck. The WaitGroup join is unconditional, so no worker can still
// be writing into the child when a rollback starts; only after ALL
// participants have quiesced is the first panic re-raised on the
// forking goroutine, where ForkWithOptions' transaction boundary
// unwinds the partial child.
func (r *forkRun) execute(par int) {
	if len(r.tasks) == 0 {
		return
	}
	if par > len(r.tasks) {
		par = len(r.tasks)
	}
	if par <= 1 {
		for i := range r.tasks {
			t := &r.tasks[i]
			switch r.mode {
			case ForkClassic:
				r.as.copyPMDRangeClassic(t.src, t.dst, t.lo, t.hi, r.child, trace.ActorApp)
			default:
				r.as.copyPMDRangeOnDemand(t.src, t.dst, t.lo, t.hi, r.child, r.opts, trace.ActorApp)
			}
		}
		return
	}
	forkPoolInit()
	for i := 1; i < par; i++ {
		r.wg.Add(1)
		select {
		case forkPoolCh <- r:
		default:
			r.wg.Done()
		}
	}
	r.participate(trace.ActorApp)
	r.wg.Wait()
	if p := r.firstPanic.Load(); p != nil {
		panic(*p)
	}
}

// presentPMDSlots counts the present PMD slots (2 MiB regions) of the
// address space using the O(1) per-table tallies — the quantity the
// sequential-fallback threshold compares against.
func (as *AddressSpace) presentPMDSlots() int {
	total := 0
	var walk func(t *pagetable.Table)
	walk = func(t *pagetable.Table) {
		if t.Level == addr.PMD {
			total += t.PresentCount()
			return
		}
		for i := 0; i < addr.EntriesPerTable; i++ {
			if c := t.Child(i); c != nil {
				walk(c)
			}
		}
	}
	walk(as.w.Root)
	return total
}

// appendRangeTasks splits a PMD table into chunked slot-range tasks,
// skipping chunks with no present entries.
func appendRangeTasks(tasks []forkTask, src, dst *pagetable.Table, chunk int) []forkTask {
	if src.PresentCount() == 0 {
		return tasks
	}
	for lo := 0; lo < addr.EntriesPerTable; lo += chunk {
		hi := min(lo+chunk, addr.EntriesPerTable)
		any := false
		for i := lo; i < hi; i++ {
			if src.Entry(i).Present() {
				any = true
				break
			}
		}
		if any {
			tasks = append(tasks, forkTask{src: src, dst: dst, lo: lo, hi: hi})
		}
	}
	return tasks
}

// collectClassicTasks walks the upper levels sequentially (duplicating
// PGD/PUD tables, as copyTreeClassic does) and appends one task per
// chunk of PMD slots. Each task owns its destination slot range.
func (as *AddressSpace) collectClassicTasks(src, dst *pagetable.Table, child *AddressSpace, tasks []forkTask) []forkTask {
	if src.Level == addr.PMD {
		return appendRangeTasks(tasks, src, dst, classicChunkSlots)
	}
	fp := as.alloc.Failpoints()
	for i := 0; i < addr.EntriesPerTable; i++ {
		childTable := src.Child(i)
		if childTable == nil {
			continue
		}
		as.prof.Charge(profile.UpperWalk, 1)
		as.failInject(fp, failpoint.ForkWalk)
		newTable := pagetable.NewTableFor(as.alloc, childTable.Level, child.charger)
		dst.SetChild(i, newTable, src.Entry(i))
		tasks = as.collectClassicTasks(childTable, newTable, child, tasks)
	}
	return tasks
}

// collectOnDemandTasks is the on-demand counterpart: upper levels are
// duplicated (or whole PMD tables shared, under ShareHugePMD) inline —
// that work is a handful of counter increments — and PMD slot chunks
// become tasks.
func (as *AddressSpace) collectOnDemandTasks(src, dst *pagetable.Table, child *AddressSpace, opts ForkOptions, tasks []forkTask) []forkTask {
	if src.Level == addr.PMD {
		return appendRangeTasks(tasks, src, dst, onDemandChunkSlots)
	}
	fp := as.alloc.Failpoints()
	for i := 0; i < addr.EntriesPerTable; i++ {
		childTable := src.Child(i)
		if childTable == nil {
			continue
		}
		as.prof.Charge(profile.UpperWalk, 1)
		if opts.ShareHugePMD && childTable.Level == addr.PMD && hugeOnly(childTable) {
			as.sharePMDTable(src, dst, i, childTable, child)
			continue
		}
		as.failInject(fp, failpoint.ForkWalk)
		newTable := pagetable.NewTableFor(as.alloc, childTable.Level, child.charger)
		dst.SetChild(i, newTable, src.Entry(i))
		tasks = as.collectOnDemandTasks(childTable, newTable, child, opts, tasks)
	}
	return tasks
}
