package core

import (
	"errors"
	"testing"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

// The fork-abort suite pins the transactional guarantee of
// ForkWithOptions: a fork that fails mid-copy — from a real frame
// limit or an injected failpoint — must leave the parent passing
// CheckInvariants with its pre-fork frame budget intact, and a retry
// once the pressure lifts must produce a byte-identical child.

// preparedParent maps four PTE ranges (so the copy walk crosses
// several PMD slots) and fills them with a pattern.
func preparedParent(t *testing.T) (*AddressSpace, addr.V, uint64) {
	t.Helper()
	as := newSpace()
	size := uint64(4 * addr.PTECoverage)
	base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, size, 0xC3)
	return as, base, size
}

func checkAbortedFork(t *testing.T, as *AddressSpace, child *AddressSpace, err error, preFrames int64) {
	t.Helper()
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("fork err = %v, want ErrOutOfMemory", err)
	}
	if child != nil {
		t.Fatal("aborted fork returned a non-nil child")
	}
	if got := as.Allocator().Allocated(); got != preFrames {
		t.Errorf("allocated frames after abort = %d, want pre-fork %d", got, preFrames)
	}
	if err := CheckInvariants(as); err != nil {
		t.Errorf("parent invariants after abort: %v", err)
	}
}

// retryAndVerify lifts whatever blocked the fork and checks a clean
// retry yields a byte-identical child.
func retryAndVerify(t *testing.T, as *AddressSpace, mode ForkMode, opts ForkOptions, base addr.V, size uint64) {
	t.Helper()
	child, err := ForkWithOptions(as, mode, opts)
	if err != nil {
		t.Fatalf("retry fork: %v", err)
	}
	defer child.Teardown()
	if err := EqualMemory(as, child, addr.NewRange(base, size)); err != nil {
		t.Errorf("retried child diverges: %v", err)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Error(err)
	}
}

// TestForkAbortClassicFrameLimit is the regression for the original
// leak: a classic fork that trips the frame limit partway through the
// table copy used to strand refcounts and partial tables.
func TestForkAbortClassicFrameLimit(t *testing.T) {
	as, base, size := preparedParent(t)
	defer as.Teardown()
	pre := as.Allocator().Allocated()

	// Room for the first table or two, not the whole copy: the walk
	// dies mid-flight with real allocation pressure.
	as.Allocator().SetLimit(pre + 2)
	child, err := ForkWithOptions(as, ForkClassic, ForkOptions{})
	checkAbortedFork(t, as, child, err, pre)

	// The parent's memory is untouched by the aborted fork.
	if b, rerr := as.LoadByte(base); rerr != nil || b != 0xC3 {
		t.Errorf("parent read after abort = %#x, %v", b, rerr)
	}

	as.Allocator().SetLimit(0)
	retryAndVerify(t, as, ForkClassic, ForkOptions{}, base, size)
}

// forkAbortFailpoint runs one injected-abort cycle for a given engine,
// failpoint, and option set.
func forkAbortFailpoint(t *testing.T, mode ForkMode, point string, opts ForkOptions) {
	t.Helper()
	as, base, size := preparedParent(t)
	defer as.Teardown()
	fp := failpoint.New(1)
	as.Allocator().SetFailpoints(fp)
	pre := as.Allocator().Allocated()

	if err := fp.Set(point, "once"); err != nil {
		t.Fatal(err)
	}
	child, err := ForkWithOptions(as, mode, opts)
	checkAbortedFork(t, as, child, err, pre)
	if fp.Fires(point) != 1 {
		t.Fatalf("failpoint %s fired %d times, want 1", point, fp.Fires(point))
	}

	// once disarms itself, so the retry runs clean.
	retryAndVerify(t, as, mode, opts, base, size)
}

func TestForkAbortOnDemandWalk(t *testing.T) {
	forkAbortFailpoint(t, ForkOnDemand, failpoint.ForkWalk, ForkOptions{})
}

func TestForkAbortOnDemandShare(t *testing.T) {
	forkAbortFailpoint(t, ForkOnDemand, failpoint.ForkShare, ForkOptions{})
}

func TestForkAbortClassicRefcount(t *testing.T) {
	forkAbortFailpoint(t, ForkClassic, failpoint.ForkRefcount, ForkOptions{})
}

func TestForkAbortParallelOnDemand(t *testing.T) {
	forkAbortFailpoint(t, ForkOnDemand, failpoint.ForkWalk, ForkOptions{Parallelism: 4})
}

func TestForkAbortParallelClassic(t *testing.T) {
	forkAbortFailpoint(t, ForkClassic, failpoint.ForkRefcount, ForkOptions{Parallelism: 4})
}

// TestForkAbortRepeated drives many aborted forks in a row and then a
// clean one: nothing accumulates across aborts.
func TestForkAbortRepeated(t *testing.T) {
	as, base, size := preparedParent(t)
	defer as.Teardown()
	fp := failpoint.New(7)
	as.Allocator().SetFailpoints(fp)
	pre := as.Allocator().Allocated()

	for i := 0; i < 20; i++ {
		point := failpoint.ForkWalk
		if i%2 == 1 {
			point = failpoint.ForkShare
		}
		if err := fp.Set(point, "once"); err != nil {
			t.Fatal(err)
		}
		child, err := ForkWithOptions(as, ForkOnDemand, ForkOptions{})
		checkAbortedFork(t, as, child, err, pre)
	}
	retryAndVerify(t, as, ForkOnDemand, ForkOptions{}, base, size)
}
