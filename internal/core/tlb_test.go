package core

// Integration tests for the software TLB: translations must never go
// stale across COW faults, table splits, unmaps, or forks.

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

func TestTLBCachesRepeatedAccess(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 4*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	for i := 0; i < 10; i++ {
		if _, err := as.LoadByte(base); err != nil {
			t.Fatal(err)
		}
	}
	if hits := as.TLB().Hits.Load(); hits < 8 {
		t.Errorf("hits = %d, want most of the repeated accesses", hits)
	}
}

func TestTLBNotStaleAcrossOwnCOW(t *testing.T) {
	// Parent reads (caching the translation), forks, then writes: the
	// write must see the COW'd copy, and subsequent reads must not be
	// served from the stale pre-COW translation.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	if err := as.StoreByte(base, 0x10); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadByte(base); err != nil { // cache it
		t.Fatal(err)
	}
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	// Parent writes: shootdown (fork) + split + data COW happened.
	if err := as.StoreByte(base, 0x20); err != nil {
		t.Fatal(err)
	}
	if b, _ := as.LoadByte(base); b != 0x20 {
		t.Errorf("parent read-after-write = %#x (stale TLB?)", b)
	}
	if b, _ := child.LoadByte(base); b != 0x10 {
		t.Errorf("child sees %#x (COW broken)", b)
	}
}

func TestTLBStaleWritePreventedByShootdown(t *testing.T) {
	// The dangerous case: parent caches a *writable dirty* translation,
	// then an ODF fork write-protects the region. A stale TLB write hit
	// would scribble on the shared frame, corrupting the child.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	// Write twice so the cached entry is writable+dirty (write hits
	// would be served directly from the TLB).
	if err := as.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreByte(base, 2); err != nil {
		t.Fatal(err)
	}
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	// Parent writes through what would be a TLB write-hit path.
	if err := as.StoreByte(base, 3); err != nil {
		t.Fatal(err)
	}
	if b, _ := child.LoadByte(base); b != 2 {
		t.Fatalf("child sees %d: parent's stale TLB write leaked through", b)
	}
	if got := as.TLB().Shootdowns.Load(); got == 0 {
		t.Error("no shootdown recorded on the parent")
	}
}

func TestTLBStaleWritePreventedAcrossSplit(t *testing.T) {
	// Two children share a table; one splits it. The *other* child's
	// cached translations must be invalidated by the split's broadcast.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	as.StoreByte(base, 0xA0)
	c1 := Fork(as, ForkOnDemand)
	defer c1.Teardown()
	c2 := Fork(as, ForkOnDemand)
	defer c2.Teardown()

	// c2 caches a read translation through the shared table.
	if b, _ := c2.LoadByte(base); b != 0xA0 {
		t.Fatal("setup")
	}
	// c1 writes, splitting the shared table and COWing the page.
	if err := c1.StoreByte(base, 0xB0); err != nil {
		t.Fatal(err)
	}
	// c2 must still read its own (original) value — and after its own
	// write, not disturb anyone else.
	if b, _ := c2.LoadByte(base); b != 0xA0 {
		t.Errorf("c2 sees %#x after c1's split", b)
	}
	if err := c2.StoreByte(base, 0xC0); err != nil {
		t.Fatal(err)
	}
	if b, _ := as.LoadByte(base); b != 0xA0 {
		t.Errorf("parent sees %#x", b)
	}
	if b, _ := c1.LoadByte(base); b != 0xB0 {
		t.Errorf("c1 sees %#x", b)
	}
	if err := CheckInvariants(as, c1, c2); err != nil {
		t.Fatal(err)
	}
}

func TestTLBFlushedOnMunmap(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 2*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	as.StoreByte(base, 5)
	as.LoadByte(base) // cache
	if err := as.Munmap(base, addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadByte(base); err == nil {
		t.Error("unmapped page still readable through TLB")
	}
	// Remap at the same address: fresh demand-zero contents, not the old
	// frame through a stale entry.
	if _, err := as.Mmap(base, addr.PageSize, rw, vm.MapPrivate, nil, 0); err != nil {
		t.Fatal(err)
	}
	if b, _ := as.LoadByte(base); b != 0 {
		t.Errorf("recycled mapping reads %#x through stale TLB", b)
	}
}

func TestTLBFlushedOnMadvise(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	as.StoreByte(base, 9)
	as.LoadByte(base) // cache
	if err := as.MadviseDontneed(base, addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if b, _ := as.LoadByte(base); b != 0 {
		t.Errorf("madvised page reads %#x through stale TLB", b)
	}
}

func TestTLBFlushedOnMprotect(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	as.StoreByte(base, 1)
	as.StoreByte(base, 2) // writable+dirty entry cached
	if err := as.Mprotect(base, addr.PageSize, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreByte(base, 3); err == nil {
		t.Error("write through stale writable TLB entry after mprotect")
	}
}

func TestChildTLBStartsEmpty(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	as.LoadByte(base)
	child := Fork(as, ForkClassic)
	defer child.Teardown()
	if got := child.TLB().Entries(); got != 0 {
		t.Errorf("child TLB has %d entries at birth", got)
	}
}
