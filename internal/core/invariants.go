package core

import (
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/mem/phys"
)

// TableStats summarizes the paging structure of one address space.
type TableStats struct {
	Upper        int // PGD + PUD + PMD tables
	Leaves       int // last-level tables referenced by this space
	SharedLeaves int // leaves with share count > 1
	PresentPTEs  int // present entries in referenced leaves
	HugeEntries  int // huge PMD entries
}

// Tables walks the space's hierarchy and reports structure statistics.
func (as *AddressSpace) Tables() TableStats {
	as.mu.Lock()
	defer as.mu.Unlock()
	var st TableStats
	if as.w.Root != nil {
		as.countTables(as.w.Root, &st)
	}
	return st
}

func (as *AddressSpace) countTables(t *pagetable.Table, st *TableStats) {
	if t.Level == addr.PMD {
		st.Upper++
		for i := 0; i < addr.EntriesPerTable; i++ {
			e := t.Entry(i)
			if !e.Present() {
				continue
			}
			if e.Huge() {
				st.HugeEntries++
				continue
			}
			if leaf := t.Child(i); leaf != nil {
				st.Leaves++
				st.PresentPTEs += leaf.PresentCount()
				if leaf.ShareCount(as.alloc) > 1 {
					st.SharedLeaves++
				}
			}
		}
		return
	}
	st.Upper++
	for i := 0; i < addr.EntriesPerTable; i++ {
		if c := t.Child(i); c != nil {
			as.countTables(c, st)
		}
	}
}

// CheckInvariants verifies the paper's accounting rules across a group
// of address spaces that share one allocator:
//
//  1. every last-level table's share counter equals the number of PMD
//     slots (across all spaces) referencing it (§3.5);
//  2. every data frame's reference count equals the number of distinct
//     last-level tables (plus huge PMD entries) mapping it — one
//     reference per table regardless of how many processes share the
//     table (§3.6);
//  3. when a reclaim manager is attached, every swap slot's reference
//     count equals the number of distinct leaf tables holding a swap
//     entry for it, and the manager's rmap/LRU bookkeeping matches the
//     live page tables (the check covers every space using the
//     allocator, so pass the whole group).
//
// Spaces must be quiescent while the check runs. Tests call this after
// every interesting mutation sequence.
func CheckInvariants(spaces ...*AddressSpace) error {
	if len(spaces) == 0 {
		return nil
	}
	alloc := spaces[0].alloc
	for _, as := range spaces {
		as.mu.Lock()
	}
	defer func() {
		for _, as := range spaces {
			as.mu.Unlock()
		}
	}()

	leafRefs := make(map[*pagetable.Table]int32)
	pmdRefs := make(map[*pagetable.Table]int32)
	frameRefs := make(map[phys.Frame]int32)
	swapRefs := make(map[uint64]int64)
	seenLeaf := make(map[*pagetable.Table]bool)
	seenPMD := make(map[*pagetable.Table]bool)

	// walkPMD tallies the content of one PMD table exactly once: a table
	// holds one data-page reference per present huge entry and one share
	// reference per nested last-level table, no matter how many
	// processes share the PMD table itself (§3.6 generalized one level
	// up by the huge-page extension).
	walkPMD := func(t *pagetable.Table) {
		for i := 0; i < addr.EntriesPerTable; i++ {
			e := t.Entry(i)
			if !e.Present() {
				continue
			}
			if e.Huge() {
				frameRefs[e.Frame()]++
				continue
			}
			leaf := t.Child(i)
			if leaf == nil {
				continue
			}
			leafRefs[leaf]++
			if seenLeaf[leaf] {
				continue
			}
			seenLeaf[leaf] = true
			for li := 0; li < addr.EntriesPerTable; li++ {
				le := leaf.Entry(li)
				if le.Present() {
					frameRefs[le.Frame()]++
				} else if le.Swapped() {
					swapRefs[le.SwapSlot()]++
				}
			}
		}
	}
	var walk func(t *pagetable.Table)
	walk = func(t *pagetable.Table) {
		for i := 0; i < addr.EntriesPerTable; i++ {
			c := t.Child(i)
			if c == nil {
				continue
			}
			if c.Level == addr.PMD {
				pmdRefs[c]++
				if !seenPMD[c] {
					seenPMD[c] = true
					walkPMD(c)
				}
				continue
			}
			walk(c)
		}
	}
	for _, as := range spaces {
		if as.w.Root != nil {
			walk(as.w.Root)
		}
	}

	for leaf, want := range leafRefs {
		if got := leaf.ShareCount(alloc); got != want {
			return fmt.Errorf("core: leaf table frame %d share count = %d, but %d PMD slots reference it",
				leaf.Frame, got, want)
		}
	}
	for pmd, want := range pmdRefs {
		if got := pmd.ShareCount(alloc); got != want {
			return fmt.Errorf("core: PMD table frame %d share count = %d, but %d PUD slots reference it",
				pmd.Frame, got, want)
		}
	}
	for f, want := range frameRefs {
		if got := alloc.RefCount(f); got != want {
			return fmt.Errorf("core: frame %d refcount = %d, but %d tables map it", f, got, want)
		}
	}
	if rec := spaces[0].rec; rec != nil {
		if err := rec.VerifyBookkeeping(swapRefs); err != nil {
			return fmt.Errorf("core: reclaim bookkeeping: %w", err)
		}
	}
	return nil
}

// EqualMemory verifies that two address spaces present identical bytes
// over the range r — the fork-semantics check used by tests.
func EqualMemory(a, b *AddressSpace, r addr.Range) error {
	bufA := make([]byte, addr.PageSize)
	bufB := make([]byte, addr.PageSize)
	for v := r.Start; v < r.End; v += addr.PageSize {
		n := addr.PageSize
		if rem := int(r.End - v); rem < n {
			n = rem
		}
		if err := a.ReadAt(bufA[:n], v); err != nil {
			return fmt.Errorf("read a at %v: %w", v, err)
		}
		if err := b.ReadAt(bufB[:n], v); err != nil {
			return fmt.Errorf("read b at %v: %w", v, err)
		}
		for i := 0; i < n; i++ {
			if bufA[i] != bufB[i] {
				return fmt.Errorf("memory differs at %v+%d: %#x vs %#x", v, i, bufA[i], bufB[i])
			}
		}
	}
	return nil
}
