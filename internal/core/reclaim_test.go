package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/reclaim"
	"repro/internal/mem/vm"
	"repro/internal/metrics"
)

// newReclaimSpace builds an address space wired to an enabled reclaim
// manager, the way the kernel wires one. With no frame limit the
// watermarks are zero, so kswapd stays idle and tests drive eviction
// explicitly through ReclaimFrames.
func newReclaimSpace(t *testing.T) (*AddressSpace, *reclaim.Manager) {
	t.Helper()
	alloc := phys.NewAllocator(nil)
	met := metrics.New()
	alloc.SetMetrics(met)
	m := reclaim.NewManager(alloc, met)
	alloc.SetReclaimer(m)
	m.SetEnabled(true)
	t.Cleanup(func() { m.SetEnabled(false) })
	return NewAddressSpace(alloc, nil), m
}

// expectPattern checks the region against what fillPattern wrote.
func expectPattern(t *testing.T, as *AddressSpace, base addr.V, size uint64, seed byte) {
	t.Helper()
	got := make([]byte, addr.PageSize)
	want := make([]byte, addr.PageSize)
	for off := uint64(0); off < size; off += addr.PageSize {
		if err := as.ReadAt(got, base+addr.V(off)); err != nil {
			t.Fatalf("read at %#x: %v", off, err)
		}
		for i := range want {
			want[i] = seed ^ byte(off>>12) ^ byte(i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("page at %#x differs after swap round-trip", off)
		}
	}
}

func TestEvictSwapInRoundTrip(t *testing.T) {
	as, m := newReclaimSpace(t)
	defer as.Teardown()
	const pages = 64
	base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)
	fillPattern(t, as, base, pages*addr.PageSize, 0xC3)

	before := as.Allocator().Allocated()
	if !m.ReclaimFrames(pages / 2) {
		t.Fatal("ReclaimFrames freed nothing with 64 cold pages available")
	}
	if after := as.Allocator().Allocated(); after >= before {
		t.Fatalf("allocated frames %d -> %d, expected a drop", before, after)
	}
	if st := m.Stats(); st.SwapSlots == 0 {
		t.Fatal("no swap slots referenced after eviction")
	}
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}

	// Every page reads back byte-identical, faulting swapped ones in.
	expectPattern(t, as, base, pages*addr.PageSize, 0xC3)
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}

	// Teardown drops every remaining swap reference.
	as.Teardown()
	if st := m.Stats(); st.SwapSlots != 0 || st.Store.Slots != 0 {
		t.Fatalf("teardown left %d slot refs, %d store slots", st.SwapSlots, st.Store.Slots)
	}
}

// TestZeroPageSwap pins the slot-0 optimization: evicting a frame whose
// data was never materialized costs no store I/O, and the page still
// reads back as zeroes.
func TestZeroPageSwap(t *testing.T) {
	as, m := newReclaimSpace(t)
	defer as.Teardown()
	const pages = 16
	base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)
	for i := 0; i < pages; i++ {
		if err := as.Touch(base+addr.V(i*addr.PageSize), false); err != nil {
			t.Fatal(err)
		}
	}
	if !m.ReclaimFrames(pages) {
		t.Fatal("ReclaimFrames freed nothing")
	}
	st := m.Stats()
	if st.SwapSlots == 0 {
		t.Fatal("no swap slots after evicting zero pages")
	}
	if st.Store.Slots != 0 {
		t.Fatalf("zero pages occupied %d store slots, want 0", st.Store.Slots)
	}
	buf := make([]byte, addr.PageSize)
	zero := make([]byte, addr.PageSize)
	for i := 0; i < pages; i++ {
		if err := as.ReadAt(buf, base+addr.V(i*addr.PageSize)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, zero) {
			t.Fatalf("zero page %d read back non-zero", i)
		}
	}
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
}

// TestForkWithSwappedEntries forks a space that has pages swapped out:
// both engines must duplicate the swap references, the child must read
// identical bytes (faulting them back in), and child COW writes must
// leave the parent's view intact.
func TestForkWithSwappedEntries(t *testing.T) {
	for _, mode := range forkModes() {
		t.Run(mode.String(), func(t *testing.T) {
			as, m := newReclaimSpace(t)
			const pages = 32
			base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)
			fillPattern(t, as, base, pages*addr.PageSize, 0x7E)
			if !m.ReclaimFrames(pages / 2) {
				t.Fatal("eviction freed nothing")
			}
			child := Fork(as, mode)
			if err := CheckInvariants(as, child); err != nil {
				t.Fatal(err)
			}
			if err := EqualMemory(as, child, addr.Range{Start: base, End: base + addr.V(pages*addr.PageSize)}); err != nil {
				t.Fatal(err)
			}
			// COW write in the child over a previously swapped region.
			if err := child.WriteAt([]byte("child private"), base); err != nil {
				t.Fatal(err)
			}
			expectPattern(t, as, base, addr.PageSize, 0x7E) // parent page 0 untouched
			if err := CheckInvariants(as, child); err != nil {
				t.Fatal(err)
			}
			child.Teardown()
			if err := CheckInvariants(as); err != nil {
				t.Fatal(err)
			}
			as.Teardown()
			if st := m.Stats(); st.SwapSlots != 0 {
				t.Fatalf("%d slot refs leaked after teardown", st.SwapSlots)
			}
		})
	}
}

// TestMunmapSwapped unmaps a region with swapped-out pages: the swap
// slots must be released, not leaked.
func TestMunmapSwapped(t *testing.T) {
	as, m := newReclaimSpace(t)
	defer as.Teardown()
	const pages = 32
	base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)
	fillPattern(t, as, base, pages*addr.PageSize, 0x11)
	if !m.ReclaimFrames(pages) {
		t.Fatal("eviction freed nothing")
	}
	if err := as.Munmap(base, pages*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.SwapSlots != 0 || st.Store.Slots != 0 {
		t.Fatalf("munmap leaked %d slot refs, %d store slots", st.SwapSlots, st.Store.Slots)
	}
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
}

// TestDirectReclaimSurvivesFrameLimit is the core acceptance check: a
// working set twice the frame limit completes without ErrOutOfMemory
// because the fault path stalls in direct reclaim, and every byte
// survives the round trip through the swap store.
func TestDirectReclaimSurvivesFrameLimit(t *testing.T) {
	as, m := newReclaimSpace(t)
	defer as.Teardown()
	const pages = 256
	base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)

	// Frame budget: half the data footprint, plus the page tables and a
	// small slack — the ISSUE's "frame limit at 50% of the workload".
	overhead := as.Allocator().Allocated()
	as.Allocator().SetLimit(overhead + pages/2 + 8)

	fillPattern(t, as, base, pages*addr.PageSize, 0x42)
	expectPattern(t, as, base, pages*addr.PageSize, 0x42)
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.SwapSlots == 0 {
		t.Fatal("no pages were ever swapped under a 50% frame limit")
	}
	as.Allocator().SetLimit(0)
}

// TestSwapDisabledEquivalence: with the manager attached but disabled
// (the default kernel state), frame-limit pressure behaves exactly as
// before the subsystem existed — immediate ErrOutOfMemory, no tracking.
func TestSwapDisabledEquivalence(t *testing.T) {
	alloc := phys.NewAllocator(nil)
	m := reclaim.NewManager(alloc, metrics.New())
	alloc.SetReclaimer(m)
	as := NewAddressSpace(alloc, nil)
	defer as.Teardown()

	base := mustMmap(t, as, 64*addr.PageSize, rw, vm.MapPrivate)
	alloc.SetLimit(alloc.Allocated() + 4)
	var sawOOM bool
	for i := 0; i < 64; i++ {
		if err := as.StoreByte(base+addr.V(i*addr.PageSize), 1); err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("err = %v, want ErrOutOfMemory", err)
			}
			sawOOM = true
			break
		}
	}
	if !sawOOM {
		t.Fatal("no OOM with swap disabled under frame limit")
	}
	if st := m.Stats(); st.ActiveFrames != 0 || st.InactiveFrames != 0 || st.SwapSlots != 0 {
		t.Fatalf("disabled manager tracked state: %+v", st)
	}
	alloc.SetLimit(0)
}

// TestHugePageSplitForEviction: a huge mapping is split into base
// pages on the way out, then evicted page by page; contents survive.
func TestHugePageSplitForEviction(t *testing.T) {
	as, m := newReclaimSpace(t)
	defer as.Teardown()
	base := mustMmap(t, as, addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	pattern := []byte("huge page payload survives the split")
	if err := as.WriteAt(pattern, base+addr.V(3*addr.PageSize)); err != nil {
		t.Fatal(err)
	}
	before := as.Allocator().Allocated()
	if !m.ReclaimFrames(64) {
		t.Fatal("eviction freed nothing from a huge mapping")
	}
	if after := as.Allocator().Allocated(); after >= before {
		t.Fatalf("allocated %d -> %d, expected a drop after huge split+evict", before, after)
	}
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(pattern))
	if err := as.ReadAt(got, base+addr.V(3*addr.PageSize)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pattern) {
		t.Fatalf("huge page contents = %q after split+evict round trip", got)
	}
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
}

// TestSwappedPagesAcrossManyForks stresses slot refcounting: fork a
// lineage off a space with swapped pages, tear spaces down in mixed
// order, and verify no slot leaks.
func TestSwappedPagesAcrossManyForks(t *testing.T) {
	as, m := newReclaimSpace(t)
	const pages = 16
	base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)
	fillPattern(t, as, base, pages*addr.PageSize, 0x99)
	if !m.ReclaimFrames(pages) {
		t.Fatal("eviction freed nothing")
	}
	kids := make([]*AddressSpace, 4)
	for i := range kids {
		mode := ForkClassic
		if i%2 == 1 {
			mode = ForkOnDemand
		}
		kids[i] = Fork(as, mode)
	}
	all := append([]*AddressSpace{as}, kids...)
	if err := CheckInvariants(all...); err != nil {
		t.Fatal(err)
	}
	for _, k := range kids {
		if err := EqualMemory(as, k, addr.Range{Start: base, End: base + addr.V(pages*addr.PageSize)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := CheckInvariants(all...); err != nil {
		t.Fatal(err)
	}
	kids[1].Teardown()
	kids[3].Teardown()
	if err := CheckInvariants(as, kids[0], kids[2]); err != nil {
		t.Fatal(err)
	}
	as.Teardown()
	kids[0].Teardown()
	kids[2].Teardown()
	if st := m.Stats(); st.SwapSlots != 0 || st.Store.Slots != 0 {
		t.Fatalf("lineage teardown leaked %d slot refs, %d store slots", st.SwapSlots, st.Store.Slots)
	}
}

// TestFileStoreBackedReclaim swaps to a real file and round-trips.
func TestFileStoreBackedReclaim(t *testing.T) {
	alloc := phys.NewAllocator(nil)
	m := reclaim.NewManager(alloc, metrics.New())
	alloc.SetReclaimer(m)
	fs, err := reclaim.NewFileStore(t.TempDir() + "/swap")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetStore(fs); err != nil {
		t.Fatal(err)
	}
	m.SetEnabled(true)
	t.Cleanup(func() { m.SetEnabled(false) })
	as := NewAddressSpace(alloc, nil)
	defer as.Teardown()

	const pages = 32
	base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)
	fillPattern(t, as, base, pages*addr.PageSize, 0xD5)
	if !m.ReclaimFrames(pages) {
		t.Fatal("eviction freed nothing")
	}
	if st := m.Stats(); st.Store.Slots == 0 {
		t.Fatal("file store holds no slots after eviction")
	}
	expectPattern(t, as, base, pages*addr.PageSize, 0xD5)
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
}

// TestReclaimMetricsCharged verifies the vmstat counters move.
func TestReclaimMetricsCharged(t *testing.T) {
	as, m := newReclaimSpace(t)
	defer as.Teardown()
	met := as.Allocator().Metrics()
	const pages = 32
	base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)
	fillPattern(t, as, base, pages*addr.PageSize, 0x31)
	if !m.ReclaimFrames(pages) {
		t.Fatal("eviction freed nothing")
	}
	expectPattern(t, as, base, pages*addr.PageSize, 0x31)
	snap := met.Snapshot().Reclaim
	for _, c := range []struct {
		name string
		v    uint64
	}{
		{"pgscan_direct", snap.PgScanDirect},
		{"pgsteal_direct", snap.PgStealDirect},
		{"pswpout", snap.PswpOut},
		{"pswpin", snap.PswpIn},
	} {
		if c.v == 0 {
			t.Errorf("counter %s stayed zero", c.name)
		}
	}
	if snap.SwapOutLatency.Count == 0 || snap.SwapInLatency.Count == 0 {
		t.Error("swap latency histograms not observed")
	}
}

// TestMremapSwapped moves a mapping with swapped-out pages; the swap
// entries must travel with it.
func TestMremapSwapped(t *testing.T) {
	as, m := newReclaimSpace(t)
	defer as.Teardown()
	const pages = 16
	base := mustMmap(t, as, pages*addr.PageSize, rw, vm.MapPrivate)
	fillPattern(t, as, base, pages*addr.PageSize, 0x66)
	if !m.ReclaimFrames(pages) {
		t.Fatal("eviction freed nothing")
	}
	nbase, err := as.Mremap(base, pages*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	expectPattern(t, as, nbase, pages*addr.PageSize, 0x66)
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
}
