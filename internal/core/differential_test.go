package core

// Differential testing: the two fork engines must be observationally
// equivalent — any program behaves identically whichever engine its
// forks use. Random operation sequences are replayed against a
// classic-fork lineage and an on-demand-fork lineage (with and without
// the huge-page extension), and every process's memory is compared
// byte-for-byte at the end.

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
)

// lineage replays operations against one engine configuration.
type lineage struct {
	alloc *phys.Allocator
	mode  ForkMode
	opts  ForkOptions
	procs []*AddressSpace
	base  addr.V
	size  uint64
}

func newLineage(mode ForkMode, opts ForkOptions, size uint64, flags vm.MapFlags) (*lineage, error) {
	l := &lineage{alloc: phys.NewAllocator(nil), mode: mode, opts: opts, size: size}
	root := NewAddressSpace(l.alloc, nil)
	base, err := root.Mmap(0, size, rw, flags|vm.MapPopulate, nil, 0)
	if err != nil {
		return nil, err
	}
	l.base = base
	l.procs = append(l.procs, root)
	return l, nil
}

// op codes driven by the random stream; both lineages consume the same
// stream, so they perform identical logical operations.
func (l *lineage) step(rng *rand.Rand) error {
	switch pick := rng.Intn(10); {
	case pick < 2: // fork
		if len(l.procs) < 5 {
			src := l.procs[rng.Intn(len(l.procs))]
			l.procs = append(l.procs, mustForkOpts(src, l.mode, l.opts))
		} else {
			rng.Intn(len(l.procs)) // keep streams aligned
		}
	case pick == 2: // exit a non-root process
		if len(l.procs) > 1 {
			i := rng.Intn(len(l.procs)-1) + 1
			l.procs[i].Teardown()
			l.procs = append(l.procs[:i], l.procs[i+1:]...)
		}
	case pick == 3: // madvise a small aligned chunk
		p := l.procs[rng.Intn(len(l.procs))]
		off := uint64(rng.Intn(int(l.size/addr.HugePageSize))) * addr.HugePageSize
		n := addr.HugePageSize
		if err := p.MadviseDontneed(l.base+addr.V(off), uint64(n)); err != nil {
			return fmt.Errorf("madvise: %w", err)
		}
	default: // writes and reads
		p := l.procs[rng.Intn(len(l.procs))]
		for k := 0; k < 6; k++ {
			v := l.base + addr.V(rng.Int63n(int64(l.size)))
			if rng.Intn(2) == 0 {
				if err := p.StoreByte(v, byte(rng.Intn(256))); err != nil {
					return fmt.Errorf("write: %w", err)
				}
			} else if _, err := p.LoadByte(v); err != nil {
				return fmt.Errorf("read: %w", err)
			}
		}
	}
	return nil
}

func (l *lineage) teardown() {
	for _, p := range l.procs {
		p.Teardown()
	}
}

func runDifferential(t *testing.T, seed int64, flags vm.MapFlags, opts ForkOptions) bool {
	t.Helper()
	const size = 2 * addr.PTECoverage
	classic, err := newLineage(ForkClassic, ForkOptions{}, size, flags)
	if err != nil {
		t.Fatal(err)
	}
	odf, err := newLineage(ForkOnDemand, opts, size, flags)
	if err != nil {
		t.Fatal(err)
	}
	defer classic.teardown()
	defer odf.teardown()

	rngA := rand.New(rand.NewSource(seed))
	rngB := rand.New(rand.NewSource(seed))
	for op := 0; op < 50; op++ {
		if err := classic.step(rngA); err != nil {
			t.Logf("seed %d classic op %d: %v", seed, op, err)
			return false
		}
		if err := odf.step(rngB); err != nil {
			t.Logf("seed %d odf op %d: %v", seed, op, err)
			return false
		}
	}
	if len(classic.procs) != len(odf.procs) {
		t.Logf("seed %d: process counts diverged", seed)
		return false
	}
	for i := range classic.procs {
		if err := EqualMemory(classic.procs[i], odf.procs[i],
			addr.NewRange(classic.base, size)); err != nil {
			t.Logf("seed %d process %d: %v", seed, i, err)
			return false
		}
	}
	if err := CheckInvariants(odf.procs...); err != nil {
		t.Logf("seed %d: %v", seed, err)
		return false
	}
	return true
}

func TestDifferentialClassicVsOnDemand(t *testing.T) {
	f := func(seed int64) bool {
		return runDifferential(t, seed, vm.MapPrivate, ForkOptions{})
	}
	cfg := &quick.Config{MaxCount: 8}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDifferentialHugePages(t *testing.T) {
	f := func(seed int64) bool {
		return runDifferential(t, seed, vm.MapPrivate|vm.MapHuge,
			ForkOptions{ShareHugePMD: true})
	}
	cfg := &quick.Config{MaxCount: 6}
	if testing.Short() {
		cfg.MaxCount = 2
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
