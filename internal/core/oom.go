package core

import (
	"errors"
	"fmt"

	"repro/internal/mem/phys"
)

// Out-of-memory handling (paper §4, "Robustness"): PTE tables may need
// to be allocated inside the page fault handler; under low memory the
// real kernel sleeps the faulting process and reclaims. The simulation
// mirrors that: when a reclaim manager is registered and swap is
// enabled, an allocation that would exceed the frame limit first stalls
// in direct reclaim (internal/mem/reclaim evicting cold LRU pages to
// the swap store), and only if repeated reclaim passes cannot free
// enough frames does the failure surface as ErrOutOfMemory from the
// syscall or access that needed the frame, leaving the address space
// consistent. With swap disabled — the default — there is nothing to
// reclaim and the limit surfaces immediately, preserving the historical
// behavior.
//
// Internally the allocator panics with phys.ErrNoMemory (allocation
// sites are many and deep); the panic is converted back to an error at
// the package boundary, the same recover-at-the-API pattern the
// standard library's regexp parser uses.

// ErrOutOfMemory is returned when a simulated allocation exceeds the
// configured physical frame limit after direct reclaim (if enabled)
// has failed to free enough frames. Callers match it with errors.Is;
// it wraps phys.ErrNoMemory.
var ErrOutOfMemory = fmt.Errorf("core: %w", phys.ErrNoMemory)

// errInjected is the panic value for failpoint-injected allocation
// failures on the fork and fault paths. It wraps phys.ErrNoMemory so
// the injected fault unwinds through catchOOM and the fork rollback
// exactly like a real frame-limit failure, while remaining
// distinguishable in panic messages during debugging.
var errInjected = fmt.Errorf("core: injected fault: %w", phys.ErrNoMemory)

// isOOM reports whether a recovered panic value is an out-of-memory
// unwind (anything wrapping phys.ErrNoMemory).
func isOOM(r any) bool {
	e, ok := r.(error)
	return ok && errors.Is(e, phys.ErrNoMemory)
}

// catchOOM converts an in-flight phys.ErrNoMemory panic into
// ErrOutOfMemory on *err; all other panics propagate.
func catchOOM(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, ok := r.(error); ok && errors.Is(e, phys.ErrNoMemory) {
		*err = ErrOutOfMemory
		return
	}
	panic(r)
}
