package core

import (
	"errors"
	"fmt"

	"repro/internal/mem/phys"
)

// Out-of-memory handling (paper §4, "Robustness"): PTE tables may need
// to be allocated inside the page fault handler; under low memory the
// real kernel sleeps the faulting process and reclaims. The simulated
// allocator has nothing to reclaim, so a configured frame limit
// surfaces as ErrOutOfMemory from the syscall or access that needed
// the frame, leaving the address space consistent.
//
// Internally the allocator panics with phys.ErrNoMemory (allocation
// sites are many and deep); the panic is converted back to an error at
// the package boundary, the same recover-at-the-API pattern the
// standard library's regexp parser uses.

// ErrOutOfMemory is returned when a simulated allocation exceeds the
// configured physical frame limit.
var ErrOutOfMemory = fmt.Errorf("core: %w", phys.ErrNoMemory)

// catchOOM converts an in-flight phys.ErrNoMemory panic into
// ErrOutOfMemory on *err; all other panics propagate.
func catchOOM(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, ok := r.(error); ok && errors.Is(e, phys.ErrNoMemory) {
		*err = ErrOutOfMemory
		return
	}
	panic(r)
}
