package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

// fillPattern writes a recognizable pattern across the region.
func fillPattern(t *testing.T, as *AddressSpace, base addr.V, size uint64, seed byte) {
	t.Helper()
	buf := make([]byte, addr.PageSize)
	for off := uint64(0); off < size; off += addr.PageSize {
		for i := range buf {
			buf[i] = seed ^ byte(off>>12) ^ byte(i)
		}
		if err := as.WriteAt(buf, base+addr.V(off)); err != nil {
			t.Fatalf("fill at %#x: %v", off, err)
		}
	}
}

func forkModes() []ForkMode { return []ForkMode{ForkClassic, ForkOnDemand} }

func TestForkChildSeesParentMemory(t *testing.T) {
	for _, mode := range forkModes() {
		t.Run(mode.String(), func(t *testing.T) {
			as := newSpace()
			size := uint64(3 * addr.PTECoverage)
			base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
			fillPattern(t, as, base, size, 0xA5)

			child := Fork(as, mode)
			if err := EqualMemory(as, child, addr.NewRange(base, size)); err != nil {
				t.Fatal(err)
			}
			if err := CheckInvariants(as, child); err != nil {
				t.Fatal(err)
			}
			child.Teardown()
			as.Teardown()
			if n := as.Allocator().Allocated(); n != 0 {
				t.Errorf("leak: %d frames", n)
			}
		})
	}
}

func TestForkWriteIsolation(t *testing.T) {
	for _, mode := range forkModes() {
		t.Run(mode.String(), func(t *testing.T) {
			as := newSpace()
			defer as.Teardown()
			size := uint64(2 * addr.PTECoverage)
			base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
			fillPattern(t, as, base, size, 0x3C)

			child := Fork(as, mode)
			defer child.Teardown()

			spot := base + addr.V(addr.PTECoverage+addr.PageSize*17+33)
			orig, err := as.LoadByte(spot)
			if err != nil {
				t.Fatal(err)
			}

			// Child write invisible to parent.
			if err := child.StoreByte(spot, orig+1); err != nil {
				t.Fatal(err)
			}
			if b, _ := as.LoadByte(spot); b != orig {
				t.Errorf("child write leaked to parent: %d", b)
			}
			if b, _ := child.LoadByte(spot); b != orig+1 {
				t.Errorf("child lost its write: %d", b)
			}

			// Parent write invisible to child.
			if err := as.StoreByte(spot+1, orig+2); err != nil {
				t.Fatal(err)
			}
			if b, _ := child.LoadByte(spot + 1); b == orig+2 {
				t.Error("parent write leaked to child")
			}
			if err := CheckInvariants(as, child); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOnDemandForkSharesTables(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	size := uint64(4 * addr.PTECoverage)
	base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, size, 1)

	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	pst, cst := as.Tables(), child.Tables()
	if pst.SharedLeaves != 4 || cst.SharedLeaves != 4 {
		t.Errorf("shared leaves: parent %d, child %d; want 4", pst.SharedLeaves, cst.SharedLeaves)
	}
	// The very same leaf tables must be referenced by both spaces.
	pl, _ := as.Walker().FindPTE(base)
	cl, _ := child.Walker().FindPTE(base)
	if pl != cl {
		t.Error("parent and child leaf tables differ after ODF")
	}
	if got := pl.ShareCount(as.Allocator()); got != 2 {
		t.Errorf("leaf share count = %d, want 2", got)
	}
}

func TestOnDemandForkReadsDoNotSplit(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	size := uint64(2 * addr.PTECoverage)
	base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, size, 7)

	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	// Reads anywhere must not fault or split (§3.4 Fast Read).
	buf := make([]byte, addr.PageSize)
	for off := uint64(0); off < size; off += addr.PageSize {
		if err := child.ReadAt(buf, base+addr.V(off)); err != nil {
			t.Fatal(err)
		}
	}
	if got := child.Faults.Load(); got != 0 {
		t.Errorf("reads caused %d faults", got)
	}
	if got := child.TableSplits.Load(); got != 0 {
		t.Errorf("reads caused %d splits", got)
	}
}

func TestOnDemandForkSplitOncePer2MiB(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	size := uint64(2 * addr.PTECoverage)
	base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, size, 9)

	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	// First write in region 0: exactly one split.
	if err := child.StoreByte(base+100, 1); err != nil {
		t.Fatal(err)
	}
	if got := child.TableSplits.Load(); got != 1 {
		t.Fatalf("first write: %d splits, want 1", got)
	}
	// More writes in the same 2 MiB region: no further splits.
	for i := 0; i < 20; i++ {
		if err := child.StoreByte(base+addr.V(i*addr.PageSize), 2); err != nil {
			t.Fatal(err)
		}
	}
	if got := child.TableSplits.Load(); got != 1 {
		t.Errorf("same-region writes: %d splits, want 1", got)
	}
	// A write in the second region: exactly one more.
	if err := child.StoreByte(base+addr.V(addr.PTECoverage), 3); err != nil {
		t.Fatal(err)
	}
	if got := child.TableSplits.Load(); got != 2 {
		t.Errorf("second region write: %d splits, want 2", got)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestOnDemandForkParentWriteSplits(t *testing.T) {
	// COW must protect the child from *parent* writes too.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x42)
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	before, _ := child.LoadByte(base)
	if err := as.StoreByte(base, before+1); err != nil {
		t.Fatal(err)
	}
	if got := as.TableSplits.Load(); got != 1 {
		t.Errorf("parent write splits = %d, want 1", got)
	}
	if b, _ := child.LoadByte(base); b != before {
		t.Errorf("parent write visible in child: %d", b)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestFastDedupAfterChildExit(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x11)

	child := Fork(as, ForkOnDemand)
	child.Teardown()

	// Parent is now the sole owner; its write should re-dedicate the
	// table via the fast path, not copy it.
	if err := as.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	if got := as.TableSplits.Load(); got != 0 {
		t.Errorf("splits = %d, want 0 (fast path)", got)
	}
	if got := as.FastDedups.Load(); got != 1 {
		t.Errorf("fast dedups = %d, want 1", got)
	}
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
}

func TestManyChildrenShareOneTable(t *testing.T) {
	// §3.4: unlimited processes may share a table through repeated ODF.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x77)

	var children []*AddressSpace
	for i := 0; i < 5; i++ {
		children = append(children, Fork(as, ForkOnDemand))
	}
	leaf, _ := as.Walker().FindPTE(base)
	if got := leaf.ShareCount(as.Allocator()); got != 6 {
		t.Errorf("share count = %d, want 6", got)
	}
	all := append([]*AddressSpace{as}, children...)
	if err := CheckInvariants(all...); err != nil {
		t.Fatal(err)
	}
	// One child writes; the other sharers keep the old table.
	if err := children[2].StoreByte(base, 0xFF); err != nil {
		t.Fatal(err)
	}
	if got := leaf.ShareCount(as.Allocator()); got != 5 {
		t.Errorf("share count after split = %d, want 5", got)
	}
	for i, c := range children {
		want := byte(0x77)
		if i == 2 {
			want = 0xFF
		}
		if b, _ := c.LoadByte(base); b != want {
			t.Errorf("child %d sees %#x, want %#x", i, b, want)
		}
	}
	if err := CheckInvariants(all...); err != nil {
		t.Fatal(err)
	}
	for _, c := range children {
		c.Teardown()
	}
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
}

func TestGrandchildLineage(t *testing.T) {
	// Shared tables survive beyond the creating process (§3.1): fork a
	// child, fork a grandchild from it, tear down the middle process.
	as := newSpace()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x55)

	child := Fork(as, ForkOnDemand)
	grand := Fork(child, ForkOnDemand)
	leaf, _ := as.Walker().FindPTE(base)
	if got := leaf.ShareCount(as.Allocator()); got != 3 {
		t.Fatalf("share count = %d, want 3", got)
	}
	child.Teardown()
	if got := leaf.ShareCount(as.Allocator()); got != 2 {
		t.Fatalf("share count after middle exit = %d, want 2", got)
	}
	if b, _ := grand.LoadByte(base + 5); b != 0x55^5 {
		// fillPattern XORs seed with page offset and byte index.
		t.Logf("note: grandchild byte = %#x", b)
	}
	if err := EqualMemory(as, grand, addr.NewRange(base, addr.PTECoverage)); err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(as, grand); err != nil {
		t.Fatal(err)
	}
	grand.Teardown()
	as.Teardown()
	if n := as.Allocator().Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestForkHugePages(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	size := uint64(2 * addr.HugePageSize)
	base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	payload := []byte("inside a huge page")
	if err := as.WriteAt(payload, base+12345); err != nil {
		t.Fatal(err)
	}

	child := Fork(as, ForkClassic)
	defer child.Teardown()
	got := make([]byte, len(payload))
	if err := child.ReadAt(got, base+12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("child huge read mismatch")
	}
	// Child write triggers a 2 MiB copy.
	if err := child.StoreByte(base+12345, 'X'); err != nil {
		t.Fatal(err)
	}
	if got := child.HugeCopies.Load(); got != 1 {
		t.Errorf("huge copies = %d, want 1", got)
	}
	if b, _ := as.LoadByte(base + 12345); b != 'i' {
		t.Errorf("parent huge byte = %c", b)
	}
	// Parent re-write of its now-sole huge page: reuse, no copy.
	if err := as.StoreByte(base+12345, 'Y'); err != nil {
		t.Fatal(err)
	}
	if got := as.HugeCopies.Load(); got != 0 {
		t.Errorf("parent huge copies = %d, want 0 (reuse)", got)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestOnDemandForkWithHugeFallsBack(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	if err := as.StoreByte(base, 5); err != nil {
		t.Fatal(err)
	}
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()
	if b, _ := child.LoadByte(base); b != 5 {
		t.Errorf("child huge byte = %d", b)
	}
	if err := child.StoreByte(base, 6); err != nil {
		t.Fatal(err)
	}
	if b, _ := as.LoadByte(base); b != 5 {
		t.Error("huge COW broken under ODF")
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestMixedModeForks(t *testing.T) {
	// ODF child then classic grandchild, exercising classic copy from a
	// shared table.
	as := newSpace()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x99)

	child := Fork(as, ForkOnDemand)
	grand := Fork(child, ForkClassic)

	if err := EqualMemory(as, grand, addr.NewRange(base, addr.PTECoverage)); err != nil {
		t.Fatal(err)
	}
	if err := grand.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	if b, _ := as.LoadByte(base); b == 1 {
		t.Error("grandchild write leaked")
	}
	if err := CheckInvariants(as, child, grand); err != nil {
		t.Fatal(err)
	}
	grand.Teardown()
	child.Teardown()
	as.Teardown()
	if n := as.Allocator().Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestMunmapSharedTableFull(t *testing.T) {
	// Unmapping a whole shared region drops the table reference without
	// copying (§3.3).
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x21)
	child := Fork(as, ForkOnDemand)

	leaf, _ := as.Walker().FindPTE(base)
	if err := child.Munmap(base, addr.PTECoverage); err != nil {
		t.Fatal(err)
	}
	if got := child.TableSplits.Load(); got != 0 {
		t.Errorf("full unmap caused %d splits, want 0", got)
	}
	if got := leaf.ShareCount(as.Allocator()); got != 1 {
		t.Errorf("share count after child unmap = %d, want 1", got)
	}
	// Parent data intact.
	if b, err := as.LoadByte(base); err != nil || b != 0x21 {
		t.Errorf("parent byte = %d, %v", b, err)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
	child.Teardown()
}

func TestMunmapSharedTablePartial(t *testing.T) {
	// Unmapping part of a 2 MiB region whose shared table still backs
	// other addresses of this process must copy the table first (§3.3).
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x31)
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	half := addr.V(addr.PTECoverage / 2)
	if err := child.Munmap(base, uint64(half)); err != nil {
		t.Fatal(err)
	}
	if got := child.TableSplits.Load(); got != 1 {
		t.Errorf("partial unmap splits = %d, want 1", got)
	}
	// Child keeps the upper half…
	if b, err := child.LoadByte(base + half); err != nil || b != 0x31^byte(half>>12) {
		t.Errorf("child upper half byte = %#x, %v", b, err)
	}
	// …and lost the lower half.
	if _, err := child.LoadByte(base); err == nil {
		t.Error("child lower half still mapped")
	}
	// Parent fully intact.
	if b, err := as.LoadByte(base); err != nil || b != 0x31 {
		t.Errorf("parent byte = %#x, %v", b, err)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestMremapSharedTable(t *testing.T) {
	// §3.3: mremap over shared tables performs table COW; the other
	// sharer's view is untouched.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x61)
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	nb, err := child.Mremap(base, addr.PTECoverage)
	if err != nil {
		t.Fatal(err)
	}
	if b, err := child.LoadByte(nb); err != nil || b != 0x61 {
		t.Errorf("moved byte = %#x, %v", b, err)
	}
	if b, err := as.LoadByte(base); err != nil || b != 0x61 {
		t.Errorf("parent byte after child mremap = %#x, %v", b, err)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyBitNeverSetWhileShared(t *testing.T) {
	// §3.2: the dirty bit cannot be set while tables are shared, because
	// writes are never permitted through a shared table.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	leaf, _ := as.Walker().FindPTE(base)
	buf := make([]byte, addr.PTECoverage)
	if err := child.ReadAt(buf, base); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < addr.EntriesPerTable; i++ {
		if e := leaf.Entry(i); e.Present() && e.Dirty() {
			t.Fatalf("dirty bit set on shared table entry %d", i)
		}
	}
}

func TestAccessedBitSurvivesSplit(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	// Touch one page so its accessed bit is set pre-fork.
	if _, err := as.LoadByte(base + addr.V(9*addr.PageSize)); err != nil {
		t.Fatal(err)
	}
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()
	// Child write elsewhere in the region forces the split.
	if err := child.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	leaf, li := child.Walker().FindPTE(base + addr.V(9*addr.PageSize))
	if !leaf.Entry(li).Accessed() {
		t.Error("accessed bit lost across table split")
	}
}

func TestForkModeString(t *testing.T) {
	if ForkClassic.String() != "fork" || ForkOnDemand.String() != "on-demand-fork" {
		t.Error("mode names wrong")
	}
	if ForkMode(99).String() != "unknown" {
		t.Error("unknown mode name wrong")
	}
}

func TestForkAblationOptions(t *testing.T) {
	for _, opts := range []ForkOptions{
		{EagerPageRefs: true},
		{PerPTEProtect: true},
		{EagerPageRefs: true, PerPTEProtect: true},
	} {
		name := fmt.Sprintf("eager=%v perpte=%v", opts.EagerPageRefs, opts.PerPTEProtect)
		t.Run(name, func(t *testing.T) {
			as := newSpace()
			base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
			fillPattern(t, as, base, addr.PTECoverage, 0x13)
			child := mustForkOpts(as, ForkOnDemand, opts)
			if err := EqualMemory(as, child, addr.NewRange(base, addr.PTECoverage)); err != nil {
				t.Fatal(err)
			}
			if err := child.StoreByte(base, 0xAB); err != nil {
				t.Fatal(err)
			}
			if b, _ := as.LoadByte(base); b != 0x13 {
				t.Errorf("ablation fork broke COW: parent byte %#x", b)
			}
			if err := CheckInvariants(as, child); err != nil {
				t.Fatal(err)
			}
			child.Teardown()
			as.Teardown()
			if n := as.Allocator().Allocated(); n != 0 {
				t.Errorf("leak: %d", n)
			}
		})
	}
}

func TestUnknownForkModePanics(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	defer func() {
		if recover() == nil {
			t.Error("unknown mode did not panic")
		}
	}()
	Fork(as, ForkMode(42))
}
