package core

// Zero-allocation assertions for the two hot paths the paper's latency
// claims rest on: the on-demand fork itself and the write-fault fast
// path. Both run through the pooled allocation paths (space pool,
// table pool, fork-run pool), so once the pools are warm a
// fork/recycle cycle and a fault must not touch the Go heap — any
// regression here shows up as GC pressure and tail latency in the
// fork-per-request workloads.

import (
	"runtime/debug"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
	"repro/internal/metrics"
)

const zeroAllocMapBytes = 64 << 20

// zeroAllocParent builds a populated 64 MiB parent space.
func zeroAllocParent(t *testing.T) (*AddressSpace, addr.V) {
	t.Helper()
	return zeroAllocParentWith(t, nil)
}

// zeroAllocParentWith is zeroAllocParent with a metrics registry
// attached to the allocator (nil = uninstrumented).
func zeroAllocParentWith(t *testing.T, met *metrics.Registry) (*AddressSpace, addr.V) {
	t.Helper()
	alloc := phys.NewAllocator(nil)
	alloc.SetMetrics(met)
	parent := NewAddressSpace(alloc, nil)
	base, err := parent.Mmap(0, zeroAllocMapBytes, vm.ProtRead|vm.ProtWrite,
		vm.MapPrivate|vm.MapPopulate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return parent, base
}

// TestForkOnDemandZeroAlloc asserts that a warm fork+recycle cycle of
// the on-demand engine performs zero heap allocations.
func TestForkOnDemandZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations and drops pool items")
	}
	// GC off for the duration: a collection mid-measurement could both
	// empty the sync.Pools (forcing real allocations) and skew the
	// mallocs accounting.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	parent, _ := zeroAllocParent(t)
	defer parent.Teardown()

	cycle := func() {
		child, err := ForkWithOptions(parent, ForkOnDemand, ForkOptions{})
		if err != nil {
			t.Fatal(err)
		}
		child.Recycle()
	}
	for i := 0; i < 5; i++ {
		cycle() // warm the space/table pools
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("on-demand fork+recycle allocated %.1f objects/op, want 0", allocs)
	}
}

// TestFaultFastPathZeroAlloc asserts that the last-sharer fast dedup
// fault (one PMD writable-bit restore) and the TLB-hit store behind it
// perform zero heap allocations in steady state.
func TestFaultFastPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations and drops pool items")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	parent, base := zeroAllocParent(t)
	defer parent.Teardown()

	// Each cycle: share tables with a child, drop the child, then write —
	// the parent is the last sharer, so the fault takes the fast path.
	cycle := func() {
		child, err := ForkWithOptions(parent, ForkOnDemand, ForkOptions{})
		if err != nil {
			t.Fatal(err)
		}
		child.Recycle()
		if err := parent.StoreByte(base, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		cycle()
	}
	splitsBefore := parent.TableSplits.Load()
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("fast-path fault cycle allocated %.1f objects/op, want 0", allocs)
	}
	if got := parent.TableSplits.Load(); got != splitsBefore {
		t.Fatalf("fast-path cycles performed %d table splits, want 0", got-splitsBefore)
	}

	// The pure TLB-hit store must be allocation-free as well.
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := parent.StoreByte(base, 2); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("TLB-hit store allocated %.1f objects/op, want 0", allocs)
	}
}

// TestCorrelationContextZeroAlloc asserts that the request
// observability layer — metrics armed, a per-tenant slot attached, and
// a request id stamped on the space — adds zero heap allocations to
// the fast fault path and the fork+recycle cycle. Exemplar recording
// (CAS min-replacement over fixed slots) and tenant-slot charges
// (plain atomics) must stay off the heap, or a tagged request would
// pay GC pressure an untagged one does not.
func TestCorrelationContextZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations and drops pool items")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	met := metrics.New()
	parent, base := zeroAllocParentWith(t, met)
	defer parent.Teardown()
	parent.SetTenantSlot(met.RegisterTenant(1, "alpha"))
	parent.SetRequest(42)

	// Fast-dedup fault cycle, fully tagged and instrumented.
	cycle := func() {
		child, err := ForkWithOptions(parent, ForkOnDemand, ForkOptions{})
		if err != nil {
			t.Fatal(err)
		}
		child.Recycle()
		if err := parent.StoreByte(base, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Errorf("tagged fast-path fault cycle allocated %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := parent.StoreByte(base, 2); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("tagged TLB-hit store allocated %.1f objects/op, want 0", allocs)
	}

	// The tagged metrics did land in the tenant partition.
	if s := met.Snapshot(); len(s.Tenants) != 1 || s.Tenants[0].Forks[metrics.EngineOnDemand] == 0 {
		t.Fatalf("tenant slot uncharged after tagged cycles: %+v", s.Tenants)
	}
}
