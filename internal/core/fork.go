package core

import (
	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/mem/tlb"
	"repro/internal/profile"
)

// ForkMode selects the fork engine, mirroring the paper's evaluation
// matrix: the traditional fork (with regular or huge pages, depending
// on how memory was mapped) versus on-demand-fork.
type ForkMode int

// Fork engines.
const (
	// ForkClassic is the traditional Linux fork: copy the entire paging
	// hierarchy and reference-count every mapped page.
	ForkClassic ForkMode = iota
	// ForkOnDemand is the paper's design: share last-level page tables
	// and defer their copying to the first write fault per 2 MiB region.
	ForkOnDemand
)

// String names the mode as the paper does.
func (m ForkMode) String() string {
	switch m {
	case ForkClassic:
		return "fork"
	case ForkOnDemand:
		return "on-demand-fork"
	default:
		return "unknown"
	}
}

// ForkOptions tune the fork engines, mainly for the ablation studies
// listed in DESIGN.md §5. The zero value is the paper's design.
type ForkOptions struct {
	// EagerPageRefs (ablation): on-demand-fork additionally performs a
	// classic-style compound-page resolution and an atomic operation on
	// every mapped page's reference counter, quantifying how much of the
	// fork cost the table-refcount accounting of §3.6 removes.
	EagerPageRefs bool
	// PerPTEProtect (ablation): instead of write-protecting a whole
	// 2 MiB region via one PMD entry (the hierarchical-attribute trick
	// of §3.2), downgrade every individual PTE, quantifying the saving
	// of the single-entry protect.
	PerPTEProtect bool
	// ShareHugePMD enables the paper's §4 "Huge Page Support"
	// extension: PMD tables whose entries all describe 2 MiB pages are
	// shared between parent and child (write-protected by one PUD
	// entry) instead of having their huge entries copied and
	// reference-counted individually. The paper describes but does not
	// implement this; it is the natural generalization of last-level
	// sharing one level up.
	ShareHugePMD bool
}

// Fork creates a child address space from parent using the given mode.
// The child sees a byte-identical copy of the parent's memory with full
// copy-on-write semantics; the parent's writable pages are
// write-protected as required by the engine.
func Fork(parent *AddressSpace, mode ForkMode) *AddressSpace {
	return ForkWithOptions(parent, mode, ForkOptions{})
}

// ForkWithOptions is Fork with ablation options.
func ForkWithOptions(parent *AddressSpace, mode ForkMode, opts ForkOptions) *AddressSpace {
	parent.mu.Lock()
	defer parent.mu.Unlock()

	child := &AddressSpace{
		w:     pagetable.NewWalker(parent.alloc, parent.prof),
		vmas:  parent.vmas.Clone(),
		alloc: parent.alloc,
		prof:  parent.prof,
		sd:    parent.sd,
		tlb:   tlb.New(parent.sd),
	}
	switch mode {
	case ForkClassic:
		parent.copyTreeClassic(parent.w.Root, child.w.Root)
	case ForkOnDemand:
		parent.copyTreeOnDemand(parent.w.Root, child.w.Root, opts)
	default:
		panic("core: unknown fork mode")
	}
	// The parent's translations were downgraded; every relative that may
	// cache translations through now-shared tables must drop them (the
	// kernel's fork-time TLB flush, broadcast lineage-wide).
	parent.sd.Broadcast()
	parent.prof.Charge(profile.TLBFlush, 1)
	return child
}

// copyTreeClassic duplicates the paging hierarchy the way Linux's
// copy_page_range does: fresh tables at every level, and for every
// present last-level entry a compound-head resolution, an atomic page
// reference increment, and a COW downgrade in both parent and child.
// This per-page work is the Figure 3 hot path.
func (as *AddressSpace) copyTreeClassic(src, dst *pagetable.Table) {
	if src.Level == addr.PMD {
		for i := 0; i < addr.EntriesPerTable; i++ {
			e := src.Entry(i)
			if !e.Present() {
				continue
			}
			as.prof.Charge(profile.UpperWalk, 1)
			if e.Huge() {
				as.copyHugeEntry(src, dst, i, e)
				continue
			}
			leaf := src.Child(i)
			if leaf == nil {
				continue
			}
			newLeaf := pagetable.NewTable(as.alloc, addr.PTE)
			leaf.Lock()
			for li := 0; li < addr.EntriesPerTable; li++ {
				le := leaf.Entry(li)
				if !le.Present() {
					continue
				}
				as.prof.Charge(profile.CopyOnePTE, 1)
				if le.Writable() {
					le = le.Without(pagetable.FlagWritable | pagetable.FlagDirty).
						With(pagetable.FlagCOW)
					leaf.SetEntry(li, le)
				}
				newLeaf.SetEntry(li, le)
				as.alloc.Get(le.Frame())
			}
			leaf.Unlock()
			dst.SetChild(i, newLeaf, src.Entry(i))
			makePMDWritable(dst, i)
		}
		return
	}
	for i := 0; i < addr.EntriesPerTable; i++ {
		childTable := src.Child(i)
		if childTable == nil {
			continue
		}
		as.prof.Charge(profile.UpperWalk, 1)
		newTable := pagetable.NewTable(as.alloc, childTable.Level)
		dst.SetChild(i, newTable, src.Entry(i))
		as.copyTreeClassic(childTable, newTable)
	}
}

// makePMDWritable normalizes a copied PMD slot to be writable at the
// PMD level: under classic fork, per-PTE bits govern permissions, so
// the upper levels must not mask them.
func makePMDWritable(dst *pagetable.Table, i int) {
	dst.SetEntry(i, dst.Entry(i).With(pagetable.FlagWritable|pagetable.FlagUser))
}

// copyHugeEntry applies COW to a 2 MiB PMD mapping in both parent and
// child: the "fork with huge pages" configuration of Figures 4 and 7.
func (as *AddressSpace) copyHugeEntry(src, dst *pagetable.Table, i int, e pagetable.Entry) {
	// Copying a huge PMD entry takes the table lock (Linux's
	// copy_huge_pmd acquires the PMD spinlocks to fence THP
	// conversions) — one of the costs §5.2.2 notes on-demand-fork
	// avoids.
	src.Lock()
	defer src.Unlock()
	e = src.Entry(i)
	if e.Writable() {
		e = e.Without(pagetable.FlagWritable | pagetable.FlagDirty).With(pagetable.FlagCOW)
		src.SetEntry(i, e)
	}
	dst.SetEntry(i, e)
	as.alloc.Get(e.Frame())
}

// copyTreeOnDemand duplicates only the upper levels of the hierarchy
// (§3.1): at the PMD level, each present slot that points to a
// last-level table is shared with the child — one share-counter
// increment and one cleared writable bit replace 512 entry copies and
// 512 page reference increments.
func (as *AddressSpace) copyTreeOnDemand(src, dst *pagetable.Table, opts ForkOptions) {
	if src.Level == addr.PMD {
		for i := 0; i < addr.EntriesPerTable; i++ {
			e := src.Entry(i)
			if !e.Present() {
				continue
			}
			as.prof.Charge(profile.UpperWalk, 1)
			if e.Huge() {
				// The implementation supports 4 KiB pages (§4, "Huge Page
				// Support"); huge mappings fall back to the classic COW of
				// the PMD entry, which is already table-free.
				as.copyHugeEntry(src, dst, i, e)
				continue
			}
			leaf := src.Child(i)
			if leaf == nil {
				continue
			}
			as.alloc.PTShareGet(leaf.Frame)
			if opts.EagerPageRefs || opts.PerPTEProtect {
				as.ablationLeafPass(leaf, opts)
			}
			// Clear the writable bit in the PMD entries of both parent
			// and child: one hierarchical-attribute update write-protects
			// the whole 2 MiB region (§3.2).
			shared := e.Without(pagetable.FlagWritable)
			src.SetEntry(i, shared)
			dst.SetChild(i, leaf, shared)
		}
		return
	}
	for i := 0; i < addr.EntriesPerTable; i++ {
		childTable := src.Child(i)
		if childTable == nil {
			continue
		}
		as.prof.Charge(profile.UpperWalk, 1)
		if opts.ShareHugePMD && childTable.Level == addr.PMD && hugeOnly(childTable) {
			// §4 extension: share the whole PMD table describing 2 MiB
			// pages, write-protecting its 1 GiB region via the PUD entry.
			as.alloc.PTShareGet(childTable.Frame)
			shared := src.Entry(i).Without(pagetable.FlagWritable)
			src.SetEntry(i, shared)
			dst.SetChild(i, childTable, shared)
			continue
		}
		newTable := pagetable.NewTable(as.alloc, childTable.Level)
		dst.SetChild(i, newTable, src.Entry(i))
		as.copyTreeOnDemand(childTable, newTable, opts)
	}
}

// hugeOnly reports whether every present entry of a PMD table maps a
// 2 MiB page directly (and at least one does), making the table
// eligible for whole-table sharing.
func hugeOnly(t *pagetable.Table) bool {
	present := 0
	for i := 0; i < addr.EntriesPerTable; i++ {
		e := t.Entry(i)
		if !e.Present() {
			continue
		}
		if !e.Huge() || t.Child(i) != nil {
			return false
		}
		present++
	}
	return present > 0
}

// ablationLeafPass performs the extra per-entry work the ablation
// options request, without changing the design's semantics.
func (as *AddressSpace) ablationLeafPass(leaf *pagetable.Table, opts ForkOptions) {
	leaf.Lock()
	for li := 0; li < addr.EntriesPerTable; li++ {
		e := leaf.Entry(li)
		if !e.Present() {
			continue
		}
		if opts.EagerPageRefs {
			as.alloc.TouchRef(e.Frame())
		}
		if opts.PerPTEProtect && e.Writable() {
			// Semantically redundant (the PMD bit already protects the
			// region) but measures the per-entry downgrade cost. Marking
			// COW here is safe: the split path treats COW entries
			// identically.
			leaf.SetEntry(li, e.Without(pagetable.FlagWritable|pagetable.FlagDirty).
				With(pagetable.FlagCOW))
		}
	}
	leaf.Unlock()
}
