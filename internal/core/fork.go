package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/failpoint"
	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/mem/phys"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/trace"
)

// ForkMode selects the fork engine, mirroring the paper's evaluation
// matrix: the traditional fork (with regular or huge pages, depending
// on how memory was mapped) versus on-demand-fork.
type ForkMode int

// Fork engines.
const (
	// ForkClassic is the traditional Linux fork: copy the entire paging
	// hierarchy and reference-count every mapped page.
	ForkClassic ForkMode = iota
	// ForkOnDemand is the paper's design: share last-level page tables
	// and defer their copying to the first write fault per 2 MiB region.
	ForkOnDemand
)

// String names the mode as the paper does.
func (m ForkMode) String() string {
	switch m {
	case ForkClassic:
		return "fork"
	case ForkOnDemand:
		return "on-demand-fork"
	default:
		return "unknown"
	}
}

// ForkOptions tune the fork engines, mainly for the ablation studies
// listed in DESIGN.md §5. The zero value is the paper's design.
type ForkOptions struct {
	// EagerPageRefs (ablation): on-demand-fork additionally performs a
	// classic-style compound-page resolution and an atomic operation on
	// every mapped page's reference counter, quantifying how much of the
	// fork cost the table-refcount accounting of §3.6 removes.
	EagerPageRefs bool
	// PerPTEProtect (ablation): instead of write-protecting a whole
	// 2 MiB region via one PMD entry (the hierarchical-attribute trick
	// of §3.2), downgrade every individual PTE, quantifying the saving
	// of the single-entry protect.
	PerPTEProtect bool
	// ShareHugePMD enables the paper's §4 "Huge Page Support"
	// extension: PMD tables whose entries all describe 2 MiB pages are
	// shared between parent and child (write-protected by one PUD
	// entry) instead of having their huge entries copied and
	// reference-counted individually. The paper describes but does not
	// implement this; it is the natural generalization of last-level
	// sharing one level up.
	ShareHugePMD bool
	// Parallelism is the number of workers that copy the paging
	// hierarchy. When greater than one, present PMD-slot ranges are
	// fanned out to a bounded, reusable worker pool; each worker writes
	// only its own destination subtree, so no two workers touch the
	// same table. The zero value and 1 both select the sequential
	// engine — the paper's single-threaded copy — so existing callers
	// see identical behaviour. Values above the pool size are clamped
	// to GOMAXPROCS; negative values panic (see ForkWithOptions).
	Parallelism int
	// ParallelThreshold is the minimum number of present PMD slots
	// (2 MiB regions) the parent must map before a Parallelism > 1 fork
	// actually fans out; smaller address spaces run sequentially so
	// they don't pay goroutine handoff for microseconds of work.
	// 0 selects DefaultParallelThreshold; negative disables the
	// threshold (always fan out).
	ParallelThreshold int
}

// DefaultParallelThreshold is the present-PMD-slot count (2 MiB regions
// — 64 slots = 128 MiB of mapped memory) below which a parallel fork
// falls back to the sequential engine.
const DefaultParallelThreshold = 64

// Validate panics when the options are malformed (negative
// Parallelism). Layers that take locks before entering the fork
// engine must validate first, so an API-misuse panic cannot escape
// with a lock still held and poison the process for callers that
// recover.
func (o ForkOptions) Validate() {
	if o.Parallelism < 0 {
		panic(fmt.Sprintf(
			"core: ForkOptions.Parallelism must be non-negative, got %d "+
				"(0 selects the sequential default, 1 forces sequential, "+
				"N>1 fans fork out over up to N workers)", o.Parallelism))
	}
}

// workers validates Parallelism and returns the effective worker
// count. It is the single read point for the knob: negative values
// panic with a descriptive error, oversized values are clamped to the
// pool size (GOMAXPROCS), and 0 means sequential.
func (o ForkOptions) workers() int {
	o.Validate()
	w := o.Parallelism
	if maxw := forkPoolSize() + 1; w > maxw {
		// The caller participates too, so pool size + 1 workers can run.
		w = maxw
	}
	return w
}

// threshold returns the effective sequential-fallback threshold in
// present PMD slots.
func (o ForkOptions) threshold() int {
	if o.ParallelThreshold == 0 {
		return DefaultParallelThreshold
	}
	if o.ParallelThreshold < 0 {
		return 0
	}
	return o.ParallelThreshold
}

// Fork creates a child address space from parent using the given mode.
// The child sees a byte-identical copy of the parent's memory with full
// copy-on-write semantics; the parent's writable pages are
// write-protected as required by the engine.
//
// Fork keeps the historical single-value signature: when the frame
// budget runs out mid-copy it first unwinds the partial child (see
// ForkWithOptions), then panics with ErrOutOfMemory, which callers
// under a catchOOM boundary observe as an ordinary OOM error.
func Fork(parent *AddressSpace, mode ForkMode) *AddressSpace {
	child, err := ForkWithOptions(parent, mode, ForkOptions{})
	if err != nil {
		panic(err)
	}
	return child
}

// ForkWithOptions is Fork with ablation and parallelism options. It
// panics when opts.Parallelism is negative.
//
// The copy is transactional with respect to allocation failure: if any
// table allocation fails mid-fork (frame limit, or an injected
// failpoint), every reference the partial child took — page refcounts,
// PTE-table share counts, swap-slot references, ownership records — is
// released, its partially built tables are freed, and the parent is
// left passing CheckInvariants with its frame budget intact.
// ErrOutOfMemory is returned in that case. The parent's entries may
// remain COW-downgraded; the first write fault per region re-dedicates
// them through the engine's fast path, so only latent re-promotion
// work survives an abort, never lost memory.
func ForkWithOptions(parent *AddressSpace, mode ForkMode, opts ForkOptions) (*AddressSpace, error) {
	workers := opts.workers() // validate before taking any lock
	m := parent.met
	tr := parent.trc
	var forkStart time.Time
	var req uint64
	if m.Enabled() || tr.Enabled() {
		forkStart = time.Now()
		req = parent.curReq.Load()
	}

	parent.mu.Lock()
	defer parent.mu.Unlock()

	var child *AddressSpace
	var forkErr error
	func() {
		// The rollback boundary. Every fallible operation inside —
		// NewTable at any level, the per-range copies, the fan-out
		// tasks — sits at a slot boundary: a slot is either untouched
		// or fully committed (entries set AND references taken) when
		// the allocation panic unwinds, so freeing the child's tree
		// releases exactly what the partial fork acquired.
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if !isOOM(r) {
				panic(r)
			}
			if child != nil {
				parent.abortFork(child, mode)
				child = nil
			}
			forkErr = ErrOutOfMemory
		}()
		child = getSpace(parent.alloc, parent.prof, parent.sd, parent.rec)
		// The child belongs to the parent's tenant: its bookkeeping
		// tables and every frame it faults in are charged to the same
		// account, and scoped failpoints target its lineage too.
		child.tenantID = parent.tenantID
		child.charger = parent.charger
		child.w.Charger = parent.charger
		child.tslot = parent.tslot
		// The clone keeps serving the request that forked it: its COW
		// fault storm carries the same correlation id until the serving
		// tier re-tags or recycles the space.
		child.curReq.Store(parent.curReq.Load())
		parent.vmas.CloneInto(child.vmas)
		var walkStart time.Time
		if tr.Enabled() {
			walkStart = time.Now()
		}
		nTasks := 0
		fanOut := workers > 1 && parent.presentPMDSlots() >= opts.threshold()
		switch mode {
		case ForkClassic:
			if fanOut {
				run := getForkRun(parent, child, mode, opts)
				run.tasks = parent.collectClassicTasks(parent.w.Root, child.w.Root, child, run.tasks)
				noteFanOut(m, len(run.tasks))
				nTasks = len(run.tasks)
				run.execute(workers)
				run.release()
			} else {
				parent.copyTreeClassic(parent.w.Root, child.w.Root, child)
			}
		case ForkOnDemand:
			if fanOut {
				run := getForkRun(parent, child, mode, opts)
				run.tasks = parent.collectOnDemandTasks(parent.w.Root, child.w.Root, child, opts, run.tasks)
				noteFanOut(m, len(run.tasks))
				nTasks = len(run.tasks)
				run.execute(workers)
				run.release()
			} else {
				parent.copyTreeOnDemand(parent.w.Root, child.w.Root, child, opts)
			}
		default:
			panic("core: unknown fork mode")
		}
		tr.SpanReq(trace.KindForkStage, trace.StageWalk, trace.ActorApp, walkStart, 0, 0, req)
		// The parent's translations were downgraded; every relative that may
		// cache translations through now-shared tables must drop them (the
		// kernel's fork-time TLB flush, broadcast lineage-wide).
		var tlbStart time.Time
		if tr.Enabled() {
			tlbStart = time.Now()
		}
		parent.sd.Broadcast()
		parent.prof.Charge(profile.TLBFlush, 1)
		tr.SpanReq(trace.KindForkStage, trace.StageTLB, trace.ActorApp, tlbStart, 0, 0, req)
		if !forkStart.IsZero() && m.Enabled() {
			// metrics.ForkEngine values mirror ForkMode, so the cast is the
			// whole mapping.
			if e := metrics.ForkEngine(mode); e >= 0 && e < metrics.NumEngines {
				d := time.Since(forkStart)
				m.Fork.Forks[e].Inc()
				m.Fork.Latency[e].ObserveTagged(d, req)
				if ts := parent.tslot; ts != nil {
					ts.Forks[e].Inc()
					ts.ForkLatency[e].ObserveTagged(d, req)
				}
			}
		}
		tr.SpanReq(trace.KindFork, trace.StageNone, trace.ActorApp, forkStart, uint64(mode), uint64(nTasks), req)
	}()
	return child, forkErr
}

// abortFork rolls back a partially built child after a mid-fork
// allocation failure, with parent.mu held. The child was never
// published, so freeing its tree — which drops page refcounts, leaf and
// PMD share counts, swap-slot references, and reclaim ownership records
// through the same release paths Teardown uses — restores every counter
// the partial copy bumped. Parent entries already downgraded for COW
// stay downgraded (write-protecting is always safe); the shootdown
// broadcast makes every cached translation notice.
func (parent *AddressSpace) abortFork(child *AddressSpace, mode ForkMode) {
	child.dead = true
	child.vmas.Reset()
	if child.w.Root != nil {
		child.freeTree(child.w.Root)
		child.w.Root = nil
	}
	parent.sd.Broadcast()
	if parent.met.Enabled() {
		parent.met.Robust.ForkAborts.Inc()
	}
	if parent.trc.Enabled() {
		parent.trc.Instant(trace.KindForkAbort, trace.StageNone, trace.ActorApp, uint64(mode), 0)
	}
}

// noteFanOut records one parallel fork and its task count.
func noteFanOut(m *metrics.Registry, nTasks int) {
	if m.Enabled() {
		m.Fork.ParallelForks.Inc()
		m.Fork.ParallelTasks.Add(uint64(nTasks))
	}
}

// failFork panics with an injected OOM when the named fork-stage
// failpoint fires. Sites sit strictly at slot boundaries — before the
// slot's table allocation, never between taking references and
// committing them — so the rollback invariant (every committed slot is
// fully consistent) holds for injected failures exactly as for real
// ones.
func (as *AddressSpace) failInject(fp *failpoint.Registry, name string) {
	if fp.Enabled() && fp.FireAs(name, as.tenantID) {
		panic(errInjected)
	}
}

// copyTreeClassic duplicates the paging hierarchy the way Linux's
// copy_page_range does: fresh tables at every level, and for every
// present last-level entry a compound-head resolution, an atomic page
// reference increment, and a COW downgrade in both parent and child.
// This per-page work is the Figure 3 hot path.
func (as *AddressSpace) copyTreeClassic(src, dst *pagetable.Table, child *AddressSpace) {
	if src.Level == addr.PMD {
		as.copyPMDRangeClassic(src, dst, 0, addr.EntriesPerTable, child, trace.ActorApp)
		return
	}
	fp := as.alloc.Failpoints()
	for i := 0; i < addr.EntriesPerTable; i++ {
		childTable := src.Child(i)
		if childTable == nil {
			continue
		}
		as.prof.Charge(profile.UpperWalk, 1)
		as.failInject(fp, failpoint.ForkWalk)
		newTable := pagetable.NewTableFor(as.alloc, childTable.Level, child.charger)
		dst.SetChild(i, newTable, src.Entry(i))
		as.copyTreeClassic(childTable, newTable, child)
	}
}

// framePool recycles the per-range scratch slice that batches page
// reference increments through GetBatch, so a warm fork range takes no
// allocation for it.
var framePool = sync.Pool{New: func() any {
	s := make([]phys.Frame, 0, addr.EntriesPerTable)
	return &s
}}

// copyPMDRangeClassic copies the PMD slots [lo, hi) from src to dst —
// the unit of work one parallel-fork task performs (actor names the
// worker running it). Per-page refcount traffic is batched per leaf
// table through GetBatch, which preserves per-frame semantics while
// charging the profiler per batch. The destination table's tallies,
// the tables-copied metric, and the upper-walk profile charge are
// likewise applied once per range instead of once per slot; the flush
// runs deferred so a mid-range allocation panic still leaves dst's
// tallies consistent for the rollback's teardown.
func (as *AddressSpace) copyPMDRangeClassic(src, dst *pagetable.Table, lo, hi int, child *AddressSpace, actor int32) {
	var rangeStart time.Time
	var req uint64
	if as.trc.Enabled() {
		rangeStart = time.Now()
		req = as.curReq.Load()
	}
	defer as.trc.SpanReq(trace.KindForkStage, trace.StageRefcount, actor, rangeStart, uint64(lo), uint64(hi), req)
	fp := as.alloc.Failpoints()
	framesP := framePool.Get().(*[]phys.Frame)
	frames := (*framesP)[:0]
	var d pagetable.TallyDelta
	var copied, walked uint64
	defer func() {
		dst.FlushTally(d)
		if walked != 0 {
			as.prof.Charge(profile.UpperWalk, walked)
		}
		if copied != 0 && as.met.Enabled() {
			as.met.Fork.TablesCopied.Add(copied)
		}
		*framesP = frames[:0]
		framePool.Put(framesP)
	}()
	for i := lo; i < hi; i++ {
		e := src.Entry(i)
		if !e.Present() {
			continue
		}
		walked++
		if e.Huge() {
			as.copyHugeEntry(src, dst, i, e, child)
			continue
		}
		leaf := src.Child(i)
		if leaf == nil {
			continue
		}
		as.failInject(fp, failpoint.ForkRefcount)
		newLeaf := pagetable.NewTableFor(as.alloc, addr.PTE, child.charger)
		frames = frames[:0]
		leaf.Lock()
		for li := 0; li < addr.EntriesPerTable; li++ {
			le := leaf.Entry(li)
			if le.Swapped() {
				// The child's copy of a swap PTE is a new slot reference.
				newLeaf.SetEntry(li, le)
				as.rec.SwapRef(le.SwapSlot())
				continue
			}
			if !le.Present() {
				continue
			}
			if le.Writable() {
				le = le.Without(pagetable.FlagWritable | pagetable.FlagDirty).
					With(pagetable.FlagCOW)
				leaf.SetEntry(li, le)
			}
			newLeaf.SetEntry(li, le)
			frames = append(frames, le.Frame())
			if m := as.trk(); m != nil {
				m.PageMapped(le.Frame(), newLeaf, li, child)
			}
		}
		as.prof.Charge(profile.CopyOnePTE, uint64(len(frames)))
		as.alloc.GetBatch(frames)
		leaf.Unlock()
		// Install the child slot writable at the PMD level in one entry
		// store: under classic fork per-PTE bits govern permissions, so
		// the upper levels must not mask them.
		dst.SetChildDeferTally(i, newLeaf,
			src.Entry(i).With(pagetable.FlagWritable|pagetable.FlagUser), &d)
		copied++
	}
}

// copyHugeEntry applies COW to a 2 MiB PMD mapping in both parent and
// child: the "fork with huge pages" configuration of Figures 4 and 7.
func (as *AddressSpace) copyHugeEntry(src, dst *pagetable.Table, i int, e pagetable.Entry, child *AddressSpace) {
	// Copying a huge PMD entry takes the table lock (Linux's
	// copy_huge_pmd acquires the PMD spinlocks to fence THP
	// conversions) — one of the costs §5.2.2 notes on-demand-fork
	// avoids.
	src.Lock()
	defer src.Unlock()
	e = src.Entry(i)
	if e.Writable() {
		e = e.Without(pagetable.FlagWritable | pagetable.FlagDirty).With(pagetable.FlagCOW)
		src.SetEntry(i, e)
	}
	dst.SetEntry(i, e)
	as.alloc.Get(e.Frame())
	if m := as.trk(); m != nil {
		m.HugeMapped(e.Frame(), dst, i, child)
	}
}

// copyTreeOnDemand duplicates only the upper levels of the hierarchy
// (§3.1): at the PMD level, each present slot that points to a
// last-level table is shared with the child — one share-counter
// increment and one cleared writable bit replace 512 entry copies and
// 512 page reference increments.
func (as *AddressSpace) copyTreeOnDemand(src, dst *pagetable.Table, child *AddressSpace, opts ForkOptions) {
	if src.Level == addr.PMD {
		as.copyPMDRangeOnDemand(src, dst, 0, addr.EntriesPerTable, child, opts, trace.ActorApp)
		return
	}
	fp := as.alloc.Failpoints()
	for i := 0; i < addr.EntriesPerTable; i++ {
		childTable := src.Child(i)
		if childTable == nil {
			continue
		}
		as.prof.Charge(profile.UpperWalk, 1)
		if opts.ShareHugePMD && childTable.Level == addr.PMD && hugeOnly(childTable) {
			as.sharePMDTable(src, dst, i, childTable, child)
			continue
		}
		as.failInject(fp, failpoint.ForkWalk)
		newTable := pagetable.NewTableFor(as.alloc, childTable.Level, child.charger)
		dst.SetChild(i, newTable, src.Entry(i))
		as.copyTreeOnDemand(childTable, newTable, child, opts)
	}
}

// copyPMDRangeOnDemand shares the last-level tables of PMD slots
// [lo, hi) with the child — the unit of work one parallel-fork task
// performs on the on-demand path (actor names the worker running it).
// Like the classic range, it batches the child table's tallies, the
// tables-shared metric, and the upper-walk profile charge per range;
// the deferred flush keeps dst consistent across a mid-range abort.
func (as *AddressSpace) copyPMDRangeOnDemand(src, dst *pagetable.Table, lo, hi int, child *AddressSpace, opts ForkOptions, actor int32) {
	var rangeStart time.Time
	var req uint64
	if as.trc.Enabled() {
		rangeStart = time.Now()
		req = as.curReq.Load()
	}
	defer as.trc.SpanReq(trace.KindForkStage, trace.StageShare, actor, rangeStart, uint64(lo), uint64(hi), req)
	fp := as.alloc.Failpoints()
	var d pagetable.TallyDelta
	var nShared, walked uint64
	defer func() {
		dst.FlushTally(d)
		if walked != 0 {
			as.prof.Charge(profile.UpperWalk, walked)
		}
		if nShared != 0 && as.met.Enabled() {
			as.met.Fork.TablesShared.Add(nShared)
		}
	}()
	for i := lo; i < hi; i++ {
		e := src.Entry(i)
		if !e.Present() {
			continue
		}
		walked++
		as.failInject(fp, failpoint.ForkShare)
		if e.Huge() {
			// The implementation supports 4 KiB pages (§4, "Huge Page
			// Support"); huge mappings fall back to the classic COW of
			// the PMD entry, which is already table-free.
			as.copyHugeEntry(src, dst, i, e, child)
			continue
		}
		leaf := src.Child(i)
		if leaf == nil {
			continue
		}
		as.alloc.PTShareGet(leaf.Frame)
		if m := as.trk(); m != nil {
			// One O(1) ownership record per shared table preserves the
			// engine's O(#tables) fork cost.
			m.OwnerAdd(leaf, child)
		}
		if opts.EagerPageRefs || opts.PerPTEProtect {
			as.ablationLeafPass(leaf, opts)
		}
		// Clear the writable bit in the PMD entries of both parent
		// and child: one hierarchical-attribute update write-protects
		// the whole 2 MiB region (§3.2).
		shared := e.Without(pagetable.FlagWritable)
		src.SetEntry(i, shared)
		dst.SetChildDeferTally(i, leaf, shared, &d)
		nShared++
	}
}

// sharePMDTable applies the §4 extension at slot i of a PUD table:
// share the whole PMD table describing 2 MiB pages, write-protecting
// its 1 GiB region via the PUD entry.
func (as *AddressSpace) sharePMDTable(src, dst *pagetable.Table, i int, childTable *pagetable.Table, child *AddressSpace) {
	as.alloc.PTShareGet(childTable.Frame)
	if m := as.trk(); m != nil {
		m.OwnerAdd(childTable, child)
	}
	shared := src.Entry(i).Without(pagetable.FlagWritable)
	src.SetEntry(i, shared)
	dst.SetChild(i, childTable, shared)
	if as.met.Enabled() {
		as.met.Fork.PMDTablesShared.Inc()
	}
}

// hugeOnly reports whether every present entry of a PMD table maps a
// 2 MiB page directly (and at least one does), making the table
// eligible for whole-table sharing. It reads the table's maintained
// present/huge tallies, so it is O(1) instead of a 512-entry rescan.
func hugeOnly(t *pagetable.Table) bool {
	present := t.PresentCount()
	return present > 0 && t.HugeCount() == present
}

// ablationLeafPass performs the extra per-entry work the ablation
// options request, without changing the design's semantics.
func (as *AddressSpace) ablationLeafPass(leaf *pagetable.Table, opts ForkOptions) {
	leaf.Lock()
	for li := 0; li < addr.EntriesPerTable; li++ {
		e := leaf.Entry(li)
		if !e.Present() {
			continue
		}
		if opts.EagerPageRefs {
			as.alloc.TouchRef(e.Frame())
		}
		if opts.PerPTEProtect && e.Writable() {
			// Semantically redundant (the PMD bit already protects the
			// region) but measures the per-entry downgrade cost. Marking
			// COW here is safe: the split path treats COW entries
			// identically.
			leaf.SetEntry(li, e.Without(pagetable.FlagWritable|pagetable.FlagDirty).
				With(pagetable.FlagCOW))
		}
	}
	leaf.Unlock()
}
