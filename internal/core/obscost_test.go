package core

// Disabled-path cost gate for the request observability layer: the
// correlation context is read only inside already-instrumented
// Enabled() blocks and the per-tenant slot is one pointer check behind
// the same guard, so arming both must leave the fast fault path's cost
// within noise of the untagged baseline. This test measures it the way
// internal/bench does — interleaved rounds, best-of per cell — and
// gates at 2%.

import (
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/mem/addr"
	"repro/internal/metrics"
)

const (
	obsCostOps      = 200_000
	obsCostRounds   = 3
	obsCostAttempts = 5
	obsCostLimit    = 1.02
)

// fastPathNS times the TLB-hit store loop on a privatized page,
// best-of obsCostRounds, interleaving the caller's two cells via the
// round callback ordering.
func fastPathNS(t *testing.T, parent *AddressSpace, base addr.V) float64 {
	t.Helper()
	best := 0.0
	for round := 0; round < obsCostRounds; round++ {
		runtime.GC()
		start := time.Now()
		for i := 0; i < obsCostOps; i++ {
			if err := parent.StoreByte(base, byte(i)); err != nil {
				t.Fatal(err)
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / obsCostOps
		if round == 0 || ns < best {
			best = ns
		}
	}
	return best
}

// TestObservabilityArmedOverhead builds two identical fast-path cells
// — both with metrics collection on, one additionally carrying a
// request tag and a per-tenant slot — and asserts the armed cell costs
// at most 2% more than the plain one. Interleaved measurement (plain,
// armed, plain, armed ...) cancels host drift; a genuine overhead
// shows up in every attempt, so one in-budget attempt passes.
func TestObservabilityArmedOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation swamps a 2% latency budget")
	}
	if testing.Short() {
		t.Skip("measurement test")
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	mkCell := func(tagged bool) (*AddressSpace, addr.V) {
		met := metrics.New()
		parent, base := zeroAllocParentWith(t, met)
		if tagged {
			parent.SetTenantSlot(met.RegisterTenant(1, "alpha"))
			parent.SetRequest(42)
		}
		// Privatize the target page so every store is a TLB hit.
		child, err := ForkWithOptions(parent, ForkOnDemand, ForkOptions{})
		if err != nil {
			t.Fatal(err)
		}
		child.Recycle()
		if err := parent.StoreByte(base, 1); err != nil {
			t.Fatal(err)
		}
		return parent, base
	}
	plain, plainBase := mkCell(false)
	defer plain.Teardown()
	armed, armedBase := mkCell(true)
	defer armed.Teardown()

	worst := 0.0
	for attempt := 0; attempt < obsCostAttempts; attempt++ {
		var plainNS, armedNS float64
		// Alternate which cell runs first so slow drift within the
		// attempt charges both cells equally.
		if attempt%2 == 0 {
			plainNS = fastPathNS(t, plain, plainBase)
			armedNS = fastPathNS(t, armed, armedBase)
		} else {
			armedNS = fastPathNS(t, armed, armedBase)
			plainNS = fastPathNS(t, plain, plainBase)
		}
		ratio := armedNS / plainNS
		if ratio <= obsCostLimit {
			return
		}
		if ratio > worst {
			worst = ratio
		}
		t.Logf("attempt %d: armed %.1f ns vs plain %.1f ns (%.1f%% over)",
			attempt, armedNS, plainNS, (ratio-1)*100)
	}
	t.Errorf("request tagging + per-tenant metrics cost >%.0f%% on the fast fault path in all %d attempts (worst %.1f%%)",
		(obsCostLimit-1)*100, obsCostAttempts, (worst-1)*100)
}
