package core

// Cross-feature tests: file-backed mappings, mprotect, and mremap
// interacting with the fork engines' shared page tables.

import (
	"bytes"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

func TestFileBackedAcrossFork(t *testing.T) {
	for _, mode := range forkModes() {
		t.Run(mode.String(), func(t *testing.T) {
			as := newSpace()
			defer as.Teardown()
			content := make([]byte, 4*addr.PageSize)
			for i := range content {
				content[i] = byte(i % 97)
			}
			b := &sliceBacking{name: "bin", data: content}
			// Only the first half is pre-faulted; the rest demand-faults
			// after the fork.
			v, err := as.Mmap(0, uint64(len(content)), rw, vm.MapPrivate, b, 0)
			if err != nil {
				t.Fatal(err)
			}
			half := make([]byte, 2*addr.PageSize)
			if err := as.ReadAt(half, v); err != nil {
				t.Fatal(err)
			}

			child := Fork(as, mode)
			defer child.Teardown()

			// Child demand-faults the unfaulted upper half from the file.
			got := make([]byte, len(content))
			if err := child.ReadAt(got, v); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, content) {
				t.Error("child file-backed read mismatch")
			}
			// Child's private write does not reach parent or file.
			if err := child.StoreByte(v, 0xEA); err != nil {
				t.Fatal(err)
			}
			if pb, _ := as.LoadByte(v); pb != content[0] {
				t.Error("child write leaked to parent")
			}
			if content[0] == 0xEA {
				t.Error("child write leaked to backing")
			}
			if err := CheckInvariants(as, child); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDemandFaultIntoSharedRegionSplits(t *testing.T) {
	// An unfaulted page inside a shared 2 MiB region: the child's first
	// *read* must not install the page into the shared table.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate)
	// Fault only one page pre-fork so a leaf table exists and is shared.
	if err := as.StoreByte(base, 0x21); err != nil {
		t.Fatal(err)
	}
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	// Child reads a never-faulted page in the same region.
	if _, err := child.LoadByte(base + addr.V(100*addr.PageSize)); err != nil {
		t.Fatal(err)
	}
	// Parent must not see the child's demand-zero page.
	pl, li := as.Walker().FindPTE(base + addr.V(100*addr.PageSize))
	if pl != nil && pl.Entry(li).Present() {
		t.Error("child demand paging leaked into parent's shared table")
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestMprotectOnSharedTable(t *testing.T) {
	// mprotect by one sharer must split the table, leaving the other
	// sharer's permissions intact.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	fillPattern(t, as, base, addr.PTECoverage, 0x66)
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()

	if err := child.Mprotect(base, addr.PTECoverage, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := child.StoreByte(base, 1); err == nil {
		t.Error("child write after its mprotect succeeded")
	}
	// The parent still has write permission.
	if err := as.StoreByte(base, 0x67); err != nil {
		t.Errorf("parent write failed after child mprotect: %v", err)
	}
	if b, _ := child.LoadByte(base); b != 0x66 {
		t.Errorf("child sees parent write or lost data: %#x", b)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestMremapFileBackedKeepsOffsets(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	content := make([]byte, 4*addr.PageSize)
	for i := range content {
		content[i] = byte(i >> 8)
	}
	b := &sliceBacking{name: "f", data: content}
	v, err := as.Mmap(0, uint64(len(content)), rw, vm.MapPrivate, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := as.Mremap(v+addr.V(addr.PageSize), 2*addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Demand faults at the new location must read the right file pages.
	got := make([]byte, 2*addr.PageSize)
	if err := as.ReadAt(got, nv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[addr.PageSize:3*addr.PageSize]) {
		t.Error("mremap lost file offset correspondence")
	}
}

func TestForkEmptyAddressSpace(t *testing.T) {
	for _, mode := range forkModes() {
		as := newSpace()
		child := Fork(as, mode)
		if child.MappedBytes() != 0 {
			t.Errorf("%v: empty fork has mappings", mode)
		}
		child.Teardown()
		as.Teardown()
		if n := as.Allocator().Allocated(); n != 0 {
			t.Errorf("%v: leak %d", mode, n)
		}
	}
}

func TestForkManySmallVMAs(t *testing.T) {
	// Many small VMAs sharing few leaf tables: the VMA count must not
	// change fork cost semantics.
	as := newSpace()
	defer as.Teardown()
	var bases []addr.V
	for i := 0; i < 32; i++ {
		b := mustMmap(t, as, 2*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
		if err := as.StoreByte(b, byte(i)); err != nil {
			t.Fatal(err)
		}
		bases = append(bases, b)
	}
	child := Fork(as, ForkOnDemand)
	defer child.Teardown()
	if child.VMACount() != as.VMACount() {
		t.Errorf("VMA counts differ: %d vs %d", child.VMACount(), as.VMACount())
	}
	for i, b := range bases {
		if got, _ := child.LoadByte(b); got != byte(i) {
			t.Errorf("vma %d byte = %d", i, got)
		}
	}
	// One child write in the shared region splits exactly once even
	// though many VMAs map through that table.
	if err := child.StoreByte(bases[0], 0xFF); err != nil {
		t.Fatal(err)
	}
	if got := child.TableSplits.Load(); got != 1 {
		t.Errorf("splits = %d, want 1", got)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}
