package core

// Tests for the §4 "Huge Page Support" extension: on-demand-fork over
// 2 MiB mappings by sharing the PMD tables that describe them,
// write-protected through a single PUD entry.

import (
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/vm"
)

var shareHuge = ForkOptions{ShareHugePMD: true}

// hugeParent builds a space with n huge pages populated and stamped.
func hugeParent(t *testing.T, n int) (*AddressSpace, addr.V) {
	t.Helper()
	as := newSpace()
	base := mustMmap(t, as, uint64(n)*addr.HugePageSize, rw,
		vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	for i := 0; i < n; i++ {
		if err := as.StoreByte(base+addr.V(i)*addr.HugePageSize, byte(0x40+i)); err != nil {
			t.Fatal(err)
		}
	}
	return as, base
}

func TestHugeShareForkSharesPMDTable(t *testing.T) {
	as, base := hugeParent(t, 3)
	defer as.Teardown()

	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	defer child.Teardown()

	pp, pi := as.w.FindPUD(base)
	cp, ci := child.w.FindPUD(base)
	if pp.Child(pi) != cp.Child(ci) {
		t.Fatal("PMD tables not shared")
	}
	if got := pp.Child(pi).ShareCount(as.alloc); got != 2 {
		t.Errorf("PMD share count = %d, want 2", got)
	}
	if pp.Entry(pi).Writable() || cp.Entry(ci).Writable() {
		t.Error("PUD entries still writable after share")
	}
	// No per-huge-page reference counting happened at fork time.
	tr, ok := as.w.Walk(base)
	if !ok {
		t.Fatal("walk failed")
	}
	if got := as.alloc.RefCount(tr.Frame); got != 1 {
		t.Errorf("huge head refcount = %d, want 1 (table-held)", got)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestHugeShareMemoryIdentical(t *testing.T) {
	as, base := hugeParent(t, 2)
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	if err := EqualMemory(as, child, addr.NewRange(base, 2*addr.HugePageSize)); err != nil {
		t.Fatal(err)
	}
	child.Teardown()
	as.Teardown()
	if n := as.alloc.Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestHugeShareReadsDoNotFault(t *testing.T) {
	as, base := hugeParent(t, 2)
	defer as.Teardown()
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	defer child.Teardown()

	buf := make([]byte, addr.PageSize)
	for off := uint64(0); off < 2*addr.HugePageSize; off += addr.PageSize * 64 {
		if err := child.ReadAt(buf, base+addr.V(off)); err != nil {
			t.Fatal(err)
		}
	}
	if got := child.Faults.Load(); got != 0 {
		t.Errorf("reads caused %d faults", got)
	}
	if got := child.PMDSplits.Load(); got != 0 {
		t.Errorf("reads caused %d PMD splits", got)
	}
}

func TestHugeShareWriteSplitsOnce(t *testing.T) {
	as, base := hugeParent(t, 2)
	defer as.Teardown()
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	defer child.Teardown()

	// First write: split the PMD table, then 2 MiB COW.
	if err := child.StoreByte(base+7, 0xEE); err != nil {
		t.Fatal(err)
	}
	if got := child.PMDSplits.Load(); got != 1 {
		t.Errorf("PMD splits = %d, want 1", got)
	}
	if got := child.HugeCopies.Load(); got != 1 {
		t.Errorf("huge copies = %d, want 1", got)
	}
	// Second write in the same 1 GiB coverage: no further PMD split.
	if err := child.StoreByte(base+addr.HugePageSize, 0xEF); err != nil {
		t.Fatal(err)
	}
	if got := child.PMDSplits.Load(); got != 1 {
		t.Errorf("second write PMD splits = %d, want 1", got)
	}
	if got := child.HugeCopies.Load(); got != 2 {
		t.Errorf("second write huge copies = %d, want 2", got)
	}
	// COW isolation both ways: the parent's byte at base+7 was never
	// written (zero), and its stamp at base survives.
	if b, _ := as.LoadByte(base + 7); b != 0 {
		t.Errorf("child write leaked to parent: %#x", b)
	}
	if b, _ := as.LoadByte(base); b != 0x40 {
		t.Errorf("parent stamp lost: %#x", b)
	}
	if b, _ := child.LoadByte(base + 7); b != 0xEE {
		t.Errorf("child lost write: %#x", b)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestHugeShareParentWrite(t *testing.T) {
	as, base := hugeParent(t, 1)
	defer as.Teardown()
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	defer child.Teardown()

	if err := as.StoreByte(base, 0x99); err != nil {
		t.Fatal(err)
	}
	if b, _ := child.LoadByte(base); b != 0x40 {
		t.Errorf("parent write visible in child: %#x", b)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestHugeShareFastDedup(t *testing.T) {
	as, base := hugeParent(t, 1)
	defer as.Teardown()
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	child.Teardown()

	if err := as.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	if got := as.PMDSplits.Load(); got != 0 {
		t.Errorf("PMD splits = %d, want 0 (fast path)", got)
	}
	if got := as.FastDedups.Load(); got == 0 {
		t.Error("no fast dedup recorded")
	}
	if got := as.HugeCopies.Load(); got != 0 {
		t.Errorf("huge copies = %d, want 0 (sole owner reuses)", got)
	}
	if err := CheckInvariants(as); err != nil {
		t.Fatal(err)
	}
}

func TestHugeShareManyChildren(t *testing.T) {
	as, base := hugeParent(t, 1)
	var children []*AddressSpace
	for i := 0; i < 4; i++ {
		children = append(children, mustForkOpts(as, ForkOnDemand, shareHuge))
	}
	pp, pi := as.w.FindPUD(base)
	if got := pp.Child(pi).ShareCount(as.alloc); got != 5 {
		t.Errorf("PMD share count = %d, want 5", got)
	}
	all := append([]*AddressSpace{as}, children...)
	if err := CheckInvariants(all...); err != nil {
		t.Fatal(err)
	}
	// One child writes; the rest keep the shared table.
	if err := children[1].StoreByte(base, 0xAB); err != nil {
		t.Fatal(err)
	}
	if got := pp.Child(pi).ShareCount(as.alloc); got != 4 {
		t.Errorf("share count after split = %d, want 4", got)
	}
	for i, c := range children {
		want := byte(0x40)
		if i == 1 {
			want = 0xAB
		}
		if b, _ := c.LoadByte(base); b != want {
			t.Errorf("child %d sees %#x want %#x", i, b, want)
		}
	}
	if err := CheckInvariants(all...); err != nil {
		t.Fatal(err)
	}
	for _, c := range children {
		c.Teardown()
	}
	as.Teardown()
	if n := as.alloc.Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestHugeShareMunmapWholeCoverage(t *testing.T) {
	as, base := hugeParent(t, 2)
	defer as.Teardown()
	child := mustForkOpts(as, ForkOnDemand, shareHuge)

	pp, pi := as.w.FindPUD(base)
	pmd := pp.Child(pi)
	if err := child.Munmap(base, 2*addr.HugePageSize); err != nil {
		t.Fatal(err)
	}
	if got := child.PMDSplits.Load(); got != 0 {
		t.Errorf("full unmap split %d tables", got)
	}
	if got := pmd.ShareCount(as.alloc); got != 1 {
		t.Errorf("share count after child unmap = %d, want 1", got)
	}
	if b, _ := as.LoadByte(base); b != 0x40 {
		t.Error("parent data lost")
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
	child.Teardown()
}

func TestHugeShareMunmapPartialCoverage(t *testing.T) {
	// Two huge VMAs land under the same (shared) PMD table; unmapping
	// one must copy the table first, keeping the other alive.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 4*addr.HugePageSize, rw,
		vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	if err := as.StoreByte(base, 0x11); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreByte(base+2*addr.HugePageSize, 0x22); err != nil {
		t.Fatal(err)
	}
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	defer child.Teardown()

	if err := child.Munmap(base, 2*addr.HugePageSize); err != nil {
		t.Fatal(err)
	}
	if got := child.PMDSplits.Load(); got != 1 {
		t.Errorf("partial unmap PMD splits = %d, want 1", got)
	}
	if _, err := child.LoadByte(base); err == nil {
		t.Error("unmapped half still readable in child")
	}
	if b, _ := child.LoadByte(base + 2*addr.HugePageSize); b != 0x22 {
		t.Errorf("kept half corrupted: %#x", b)
	}
	if b, _ := as.LoadByte(base); b != 0x11 {
		t.Errorf("parent lower half corrupted: %#x", b)
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestHugeShareMixedRegionNotShared(t *testing.T) {
	// A PMD table containing 4 KiB leaves must not be shared at the PUD
	// level; the huge-only condition keeps shared PMD tables pure.
	as := newSpace()
	defer as.Teardown()
	hbase := mustMmap(t, as, addr.HugePageSize, rw,
		vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	// A small 4 KiB mapping in the same 1 GiB coverage.
	small, err := as.Mmap(hbase+4*addr.HugePageSize, addr.PageSize, rw,
		vm.MapPrivate|vm.MapPopulate, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.StoreByte(small, 0x77); err != nil {
		t.Fatal(err)
	}
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	defer child.Teardown()

	pp, pi := as.w.FindPUD(hbase)
	cp, ci := child.w.FindPUD(hbase)
	if pp.Child(pi) == cp.Child(ci) {
		t.Error("mixed PMD table was shared")
	}
	// The nested leaf table under it must still be shared ODF-style.
	pl, _ := as.w.FindPTE(small)
	cl, _ := child.w.FindPTE(small)
	if pl != cl {
		t.Error("leaf table under mixed PMD not shared")
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestHugeShareGrandchild(t *testing.T) {
	as, base := hugeParent(t, 1)
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	grand := mustForkOpts(child, ForkOnDemand, shareHuge)

	pp, pi := as.w.FindPUD(base)
	if got := pp.Child(pi).ShareCount(as.alloc); got != 3 {
		t.Errorf("share count = %d, want 3", got)
	}
	child.Teardown()
	if err := EqualMemory(as, grand, addr.NewRange(base, addr.HugePageSize)); err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(as, grand); err != nil {
		t.Fatal(err)
	}
	grand.Teardown()
	as.Teardown()
	if n := as.alloc.Allocated(); n != 0 {
		t.Errorf("leak: %d frames", n)
	}
}

func TestHugeShareDemandPagingSplits(t *testing.T) {
	// A never-touched huge page inside a shared PMD coverage must be
	// installed into a private table, not the shared one.
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 2*addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge)
	// Populate only the first huge page (demand paging handles both,
	// but stamp the first so the table qualifies as huge-only).
	if err := as.StoreByte(base, 0x31); err != nil {
		t.Fatal(err)
	}
	child := mustForkOpts(as, ForkOnDemand, shareHuge)
	defer child.Teardown()

	// Touch the second (absent) huge page in the child.
	if err := child.StoreByte(base+addr.HugePageSize, 0x32); err != nil {
		t.Fatal(err)
	}
	// The parent must not see the child's demand-paged entry.
	pp, pi := as.w.FindPMD(base + addr.HugePageSize)
	if pp.Entry(pi).Present() {
		t.Error("child demand paging leaked into parent's shared table")
	}
	if err := CheckInvariants(as, child); err != nil {
		t.Fatal(err)
	}
}

func TestHugeShareForkLatencyAdvantage(t *testing.T) {
	// The extension's point: forking a huge-mapped process no longer
	// touches one reference per 2 MiB page and allocates one fewer
	// table level. Compare allocation deltas and the shared pointer.
	as, base := hugeParent(t, 8)
	defer as.Teardown()

	before := as.alloc.Allocated()
	childShared := mustForkOpts(as, ForkOnDemand, shareHuge)
	sharedDelta := as.alloc.Allocated() - before
	pp, pi := as.w.FindPUD(base)
	cp, ci := childShared.w.FindPUD(base)
	if pp.Child(pi) != cp.Child(ci) {
		t.Error("PMD table not reused by shared fork")
	}
	childShared.Teardown()

	before = as.alloc.Allocated()
	childPlain := Fork(as, ForkOnDemand)
	plainDelta := as.alloc.Allocated() - before
	childPlain.Teardown()

	if sharedDelta >= plainDelta {
		t.Errorf("shared fork allocated %d frames, plain %d", sharedDelta, plainDelta)
	}
}
