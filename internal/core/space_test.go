package core

import (
	"bytes"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
	"repro/internal/profile"
)

func newSpace() *AddressSpace {
	return NewAddressSpace(phys.NewAllocator(nil), nil)
}

func mustMmap(t *testing.T, as *AddressSpace, size uint64, prot vm.Prot, flags vm.MapFlags) addr.V {
	t.Helper()
	v, err := as.Mmap(0, size, prot, flags, nil, 0)
	if err != nil {
		t.Fatalf("Mmap: %v", err)
	}
	return v
}

const rw = vm.ProtRead | vm.ProtWrite

func TestMmapWriteRead(t *testing.T) {
	as := newSpace()
	base := mustMmap(t, as, 64*addr.PageSize, rw, vm.MapPrivate)
	msg := []byte("hello, simulated memory")
	if err := as.WriteAt(msg, base+addr.V(3*addr.PageSize+100)); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(msg))
	if err := as.ReadAt(got, base+addr.V(3*addr.PageSize+100)); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("roundtrip = %q", got)
	}
	as.Teardown()
	if n := as.Allocator().Allocated(); n != 0 {
		t.Errorf("leak after teardown: %d frames", n)
	}
}

func TestMmapCrossPageBoundary(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 4*addr.PageSize, rw, vm.MapPrivate)
	data := make([]byte, 3*addr.PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := as.WriteAt(data, base+addr.V(addr.PageSize/2)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.ReadAt(got, base+addr.V(addr.PageSize/2)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page roundtrip mismatch")
	}
}

func TestMmapErrors(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	if _, err := as.Mmap(0, 0, rw, vm.MapPrivate, nil, 0); err == nil {
		t.Error("zero-size mmap succeeded")
	}
	if _, err := as.Mmap(0x1001, addr.PageSize, rw, vm.MapPrivate, nil, 0); err == nil {
		t.Error("unaligned hint mmap succeeded")
	}
	if _, err := as.Mmap(0, addr.PageSize, rw, vm.MapHuge, nil, 0); err == nil {
		t.Error("non-2MiB huge mmap succeeded")
	}
	// Overlapping hint.
	base := mustMmap(t, as, addr.PageSize, rw, vm.MapPrivate)
	if _, err := as.Mmap(base, addr.PageSize, rw, vm.MapPrivate, nil, 0); err == nil {
		t.Error("overlapping mmap succeeded")
	}
}

func TestReadUnwrittenIsZero(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 8*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	buf := make([]byte, 100)
	buf[0] = 0xFF
	if err := as.ReadAt(buf, base); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten byte %d = %#x", i, b)
		}
	}
}

func TestDemandPaging(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 16*addr.PageSize, rw, vm.MapPrivate) // no populate
	st := as.Tables()
	if st.PresentPTEs != 0 {
		t.Fatalf("pages present before access: %d", st.PresentPTEs)
	}
	if err := as.StoreByte(base+addr.V(5*addr.PageSize), 42); err != nil {
		t.Fatal(err)
	}
	if got := as.Faults.Load(); got == 0 {
		t.Error("no fault recorded for demand paging")
	}
	st = as.Tables()
	if st.PresentPTEs != 1 {
		t.Errorf("present PTEs = %d, want 1", st.PresentPTEs)
	}
	b, err := as.LoadByte(base + addr.V(5*addr.PageSize))
	if err != nil || b != 42 {
		t.Errorf("LoadByte = %d, %v", b, err)
	}
}

func TestSegfaults(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	if err := as.StoreByte(0xdead000, 1); err == nil {
		t.Error("write to unmapped address succeeded")
	} else if se, ok := err.(*SegfaultError); !ok || se.Kind != FaultUnmapped {
		t.Errorf("unexpected error: %v", err)
	}
	base := mustMmap(t, as, addr.PageSize, vm.ProtRead, vm.MapPrivate|vm.MapPopulate)
	if err := as.StoreByte(base, 1); err == nil {
		t.Error("write to read-only mapping succeeded")
	} else if se, ok := err.(*SegfaultError); !ok || se.Kind != FaultProtection {
		t.Errorf("unexpected error: %v", err)
	}
	if _, err := as.LoadByte(base); err != nil {
		t.Errorf("read of read-only mapping failed: %v", err)
	}
	if err := (&SegfaultError{Addr: 1, Write: true}).Error(); err == "" {
		t.Error("empty segfault message")
	}
}

func TestMunmapFreesFrames(t *testing.T) {
	as := newSpace()
	base := mustMmap(t, as, 8*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	if got := as.Allocator().Allocated(); got == 0 {
		t.Fatal("populate allocated nothing")
	}
	if err := as.Munmap(base, 8*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreByte(base, 1); err == nil {
		t.Error("write to unmapped range succeeded")
	}
	as.Teardown()
	if got := as.Allocator().Allocated(); got != 0 {
		t.Errorf("leak: %d frames", got)
	}
}

func TestMunmapPartial(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 8*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	if err := as.WriteAt([]byte{1, 2, 3}, base); err != nil {
		t.Fatal(err)
	}
	// Unmap the middle; ends must stay accessible.
	if err := as.Munmap(base+2*addr.PageSize, 4*addr.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadByte(base); err != nil {
		t.Errorf("head read failed: %v", err)
	}
	if _, err := as.LoadByte(base + 7*addr.PageSize); err != nil {
		t.Errorf("tail read failed: %v", err)
	}
	if _, err := as.LoadByte(base + 3*addr.PageSize); err == nil {
		t.Error("middle read succeeded after unmap")
	}
	if err := CheckInvariants(as); err != nil {
		t.Error(err)
	}
}

func TestMunmapErrors(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	if err := as.Munmap(0x1001, addr.PageSize); err == nil {
		t.Error("unaligned munmap succeeded")
	}
	if err := as.Munmap(0x1000, 0); err == nil {
		t.Error("empty munmap succeeded")
	}
}

func TestMremapMovesData(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 4*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	payload := []byte("movable feast")
	if err := as.WriteAt(payload, base+addr.V(addr.PageSize)); err != nil {
		t.Fatal(err)
	}
	nb, err := as.Mremap(base, 4*addr.PageSize)
	if err != nil {
		t.Fatalf("Mremap: %v", err)
	}
	if nb == base {
		t.Error("mremap did not move")
	}
	got := make([]byte, len(payload))
	if err := as.ReadAt(got, nb+addr.V(addr.PageSize)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("moved data = %q", got)
	}
	if _, err := as.LoadByte(base); err == nil {
		t.Error("old range still mapped after mremap")
	}
	if err := CheckInvariants(as); err != nil {
		t.Error(err)
	}
}

func TestMremapErrors(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	if _, err := as.Mremap(0x4000, addr.PageSize); err == nil {
		t.Error("mremap of unmapped range succeeded")
	}
	if _, err := as.Mremap(0x1001, addr.PageSize); err == nil {
		t.Error("unaligned mremap succeeded")
	}
	hb := mustMmap(t, as, addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge)
	if _, err := as.Mremap(hb, addr.HugePageSize); err == nil {
		t.Error("huge mremap succeeded")
	}
}

func TestMprotect(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 4*addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	if err := as.StoreByte(base, 9); err != nil {
		t.Fatal(err)
	}
	if err := as.Mprotect(base, 4*addr.PageSize, vm.ProtRead); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreByte(base, 1); err == nil {
		t.Error("write after mprotect(R) succeeded")
	}
	if b, err := as.LoadByte(base); err != nil || b != 9 {
		t.Errorf("read after mprotect = %d, %v", b, err)
	}
	if err := as.Mprotect(base, 4*addr.PageSize, rw); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreByte(base, 11); err != nil {
		t.Errorf("write after mprotect(RW) failed: %v", err)
	}
	if err := as.Mprotect(0x100000, addr.PageSize, rw); err == nil {
		t.Error("mprotect of unmapped range succeeded")
	}
}

func TestHugeMapping(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, 2*addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	if !base.HugeAligned() {
		t.Fatalf("huge mmap base %v not aligned", base)
	}
	st := as.Tables()
	if st.HugeEntries != 2 {
		t.Errorf("huge entries = %d, want 2", st.HugeEntries)
	}
	if st.Leaves != 0 {
		t.Errorf("leaf tables = %d, want 0", st.Leaves)
	}
	payload := []byte("huge page payload")
	off := addr.V(addr.HugePageSize + 12345)
	if err := as.WriteAt(payload, base+off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := as.ReadAt(got, base+off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("huge roundtrip mismatch")
	}
	if err := as.Munmap(base, 2*addr.HugePageSize); err != nil {
		t.Fatal(err)
	}
}

func TestHugePartialUnmapRejected(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge|vm.MapPopulate)
	if err := as.Munmap(base, addr.PageSize); err == nil {
		t.Error("partial huge unmap succeeded")
	}
}

func TestHugeDemandPaging(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.HugePageSize, rw, vm.MapPrivate|vm.MapHuge)
	if err := as.StoreByte(base+777, 7); err != nil {
		t.Fatal(err)
	}
	if got := as.Tables().HugeEntries; got != 1 {
		t.Errorf("huge entries = %d", got)
	}
}

type sliceBacking struct {
	name string
	data []byte
}

func (s *sliceBacking) BackingName() string { return s.name }
func (s *sliceBacking) PageAt(off uint64) []byte {
	if off >= uint64(len(s.data)) {
		return nil
	}
	end := off + addr.PageSize
	if end > uint64(len(s.data)) {
		end = uint64(len(s.data))
	}
	page := make([]byte, addr.PageSize)
	copy(page, s.data[off:end])
	return page
}

func TestFileBackedMapping(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	content := make([]byte, 3*addr.PageSize)
	for i := range content {
		content[i] = byte(i % 251)
	}
	b := &sliceBacking{name: "test.bin", data: content}
	v, err := as.Mmap(0, uint64(len(content)), rw, vm.MapPrivate, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(content))
	if err := as.ReadAt(got, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("file-backed read mismatch")
	}
	// Private writes must not touch the backing.
	if err := as.StoreByte(v, 0xEE); err != nil {
		t.Fatal(err)
	}
	if content[0] == 0xEE {
		t.Error("private write leaked to backing")
	}
	// Mapping at a non-zero file offset.
	v2, err := as.Mmap(0, addr.PageSize, vm.ProtRead, vm.MapPrivate, b, addr.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	pg := make([]byte, addr.PageSize)
	if err := as.ReadAt(pg, v2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pg, content[addr.PageSize:2*addr.PageSize]) {
		t.Error("offset file-backed read mismatch")
	}
}

func TestMmapAfterTeardownFails(t *testing.T) {
	as := newSpace()
	as.Teardown()
	if !as.Dead() {
		t.Error("Dead() false after teardown")
	}
	if _, err := as.Mmap(0, addr.PageSize, rw, vm.MapPrivate, nil, 0); err == nil {
		t.Error("mmap after teardown succeeded")
	}
	as.Teardown() // second teardown must be a no-op
}

func TestAccessedDirtyBits(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, addr.PageSize, rw, vm.MapPrivate|vm.MapPopulate)
	leaf, li := as.Walker().FindPTE(base)
	if e := leaf.Entry(li); e.Accessed() || e.Dirty() {
		t.Fatal("fresh entry has A/D bits set")
	}
	if _, err := as.LoadByte(base); err != nil {
		t.Fatal(err)
	}
	if e := leaf.Entry(li); !e.Accessed() || e.Dirty() {
		t.Errorf("after read: accessed=%v dirty=%v", e.Accessed(), e.Dirty())
	}
	if err := as.StoreByte(base, 1); err != nil {
		t.Fatal(err)
	}
	if e := leaf.Entry(li); !e.Dirty() {
		t.Error("write did not set dirty bit")
	}
}

func TestProfilerCountsFork(t *testing.T) {
	p := profile.New()
	as := NewAddressSpace(phys.NewAllocator(p), p)
	defer as.Teardown()
	mustMmap(t, as, 4*addr.PTECoverage, rw, vm.MapPrivate|vm.MapPopulate)
	p.Reset()

	child := Fork(as, ForkClassic)
	classicPTEs := p.Count(profile.CopyOnePTE)
	if classicPTEs != 4*addr.EntriesPerTable {
		t.Errorf("classic fork copied %d PTEs, want %d", classicPTEs, 4*addr.EntriesPerTable)
	}
	child.Teardown()

	p.Reset()
	child2 := Fork(as, ForkOnDemand)
	if got := p.Count(profile.CopyOnePTE); got != 0 {
		t.Errorf("on-demand fork copied %d PTEs, want 0", got)
	}
	if got := p.Count(profile.PTShareInc); got != 4 {
		t.Errorf("on-demand fork shared %d tables, want 4", got)
	}
	child2.Teardown()
}
