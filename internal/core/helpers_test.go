package core

// mustForkOpts is the test-side shim over ForkWithOptions for the many
// call sites that want the historical single-value shape: a fork that
// fails (frame limit, injected fault) panics instead of returning an
// error, which the few tests that exercise failure paths catch
// explicitly.
func mustForkOpts(parent *AddressSpace, mode ForkMode, opts ForkOptions) *AddressSpace {
	child, err := ForkWithOptions(parent, mode, opts)
	if err != nil {
		panic(err)
	}
	return child
}
