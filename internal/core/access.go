package core

import (
	"errors"
	"fmt"

	"repro/internal/mem/addr"
	"repro/internal/mem/pagetable"
	"repro/internal/trace"
)

// The access layer is the simulated MMU: every application load or
// store walks the paging hierarchy, raises a software page fault when
// the translation is missing or lacks permission, and maintains the
// accessed and dirty bits exactly as hardware does. Reads through
// shared tables proceed without faulting (the paper's "Fast Read");
// the first write per shared 2 MiB region pays the table-copy cost.

// maxFaultRetries bounds fault/retry loops; any repair needs at most a
// split plus a data COW, so more iterations indicate a kernel bug.
const maxFaultRetries = 4

// oomRetries bounds unlock-reclaim-retry rounds when an access runs
// out of frames. Direct reclaim inside the allocator cannot evict
// pages of the space whose lock the faulting goroutine holds (eviction
// try-locks the owner and skips it), so a single self-owning process
// could exhaust its limit with reclaimable cold pages it cannot reach.
// The retry loop below releases the space lock and reclaims in the
// open — the simulated equivalent of the kernel putting a faulting
// task to sleep while reclaim runs against its address space.
const oomRetries = 3

// faultReserveFrames is how many frames one reclaim stall tries to
// free: the worst-case fault needs a data page plus a few page tables.
const faultReserveFrames = 8

// stallReclaim runs direct reclaim with no space lock held, marking
// the stall on the flight recorder (the reclaim pass itself records
// its own scan span). It returns false when reclaim is off or could
// free nothing, meaning the OOM is final.
func (as *AddressSpace) stallReclaim(try int) bool {
	m := as.trk()
	if m == nil {
		return false
	}
	as.trc.InstantReq(trace.KindOOMStall, trace.StageNone, trace.ActorApp, uint64(try+1), 0, as.curReq.Load())
	return m.ReclaimFrames(faultReserveFrames)
}

// ReadAt copies len(p) bytes of the process's memory starting at v
// into p. Unwritten pages read as zeroes.
func (as *AddressSpace) ReadAt(p []byte, v addr.V) error {
	for len(p) > 0 {
		n := addr.PageSize - v.PageOffset()
		if n > len(p) {
			n = len(p)
		}
		if err := as.accessPage(v, p[:n], false); err != nil {
			return err
		}
		p = p[n:]
		v += addr.V(n)
	}
	return nil
}

// WriteAt copies p into the process's memory starting at v.
func (as *AddressSpace) WriteAt(p []byte, v addr.V) error {
	for len(p) > 0 {
		n := addr.PageSize - v.PageOffset()
		if n > len(p) {
			n = len(p)
		}
		if err := as.accessPage(v, p[:n], true); err != nil {
			return err
		}
		p = p[n:]
		v += addr.V(n)
	}
	return nil
}

// LoadByte loads one byte.
func (as *AddressSpace) LoadByte(v addr.V) (byte, error) {
	var b [1]byte
	err := as.ReadAt(b[:], v)
	return b[0], err
}

// StoreByte stores one byte — the paper's Table 1 benchmark operation.
func (as *AddressSpace) StoreByte(v addr.V, b byte) error {
	return as.WriteAt([]byte{b}, v)
}

// Touch performs a minimal one-byte access without moving data, for
// fault-driven benchmarks.
func (as *AddressSpace) Touch(v addr.V, write bool) error {
	for tries := 0; ; tries++ {
		err := as.touchOnce(v, write)
		if err == nil || !errors.Is(err, ErrOutOfMemory) || tries >= oomRetries || !as.stallReclaim(tries) {
			return err
		}
	}
}

func (as *AddressSpace) touchOnce(v addr.V, write bool) (err error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	defer catchOOM(&err)
	if _, ok := as.tlb.Lookup(v, write); ok {
		return nil
	}
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		tr, ok := as.w.Walk(v)
		if ok && (!write || tr.Writable) {
			as.markAccess(tr, write)
			as.tlb.Insert(v, tr.Frame, tr.Writable, write)
			return nil
		}
		if err := as.handleFaultLocked(v, write); err != nil {
			return err
		}
	}
	return fmt.Errorf("core: access at %v not repaired after %d faults", v, maxFaultRetries)
}

// accessPage performs one intra-page access of len(p) bytes at v,
// stalling in direct reclaim (lock released) when frames run out.
func (as *AddressSpace) accessPage(v addr.V, p []byte, write bool) error {
	for tries := 0; ; tries++ {
		err := as.accessPageOnce(v, p, write)
		if err == nil || !errors.Is(err, ErrOutOfMemory) || tries >= oomRetries || !as.stallReclaim(tries) {
			return err
		}
	}
}

func (as *AddressSpace) accessPageOnce(v addr.V, p []byte, write bool) (err error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	defer catchOOM(&err)
	// TLB fast path: a cached translation skips the page walk entirely.
	if f, ok := as.tlb.Lookup(v, write); ok {
		off := v.PageOffset()
		if write {
			copy(as.alloc.Data(f)[off:], p)
			return nil
		}
		if d := as.alloc.DataIfPresent(f); d != nil {
			copy(p, d[off:])
		} else {
			clear(p)
		}
		return nil
	}
	for attempt := 0; attempt < maxFaultRetries; attempt++ {
		tr, ok := as.w.Walk(v)
		if ok && (!write || tr.Writable) {
			as.markAccess(tr, write)
			as.tlb.Insert(v, tr.Frame, tr.Writable, write)
			if write {
				copy(as.alloc.Data(tr.Frame)[tr.Offset:], p)
				return nil
			}
			if d := as.alloc.DataIfPresent(tr.Frame); d != nil {
				copy(p, d[tr.Offset:])
			} else {
				clear(p)
			}
			return nil
		}
		if err := as.handleFaultLocked(v, write); err != nil {
			return err
		}
	}
	return fmt.Errorf("core: access at %v not repaired after %d faults", v, maxFaultRetries)
}

// markAccess sets the accessed (and on writes, dirty) bits like the
// hardware walker. Under on-demand-fork the CPU keeps marking pages
// mapped by shared tables as accessed (§3.2); the dirty bit can never
// be set while a table is shared because writes are not permitted.
func (as *AddressSpace) markAccess(tr pagetable.Translation, write bool) {
	flags := pagetable.FlagAccessed
	if write {
		flags |= pagetable.FlagDirty
	}
	if tr.Entry&flags != flags {
		tr.Leaf.OrEntry(tr.LeafIndex, flags)
	}
}
