package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/mem/addr"
	"repro/internal/mem/phys"
	"repro/internal/mem/vm"
	"repro/internal/profile"
)

// parOpts forces fan-out regardless of address-space size, so the
// parallel engine is exercised even on the small regions tests use.
func parOpts(workers int) ForkOptions {
	return ForkOptions{Parallelism: workers, ParallelThreshold: -1}
}

func TestForkParallelMatchesSequential(t *testing.T) {
	for _, mode := range forkModes() {
		for _, workers := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", mode, workers), func(t *testing.T) {
				as := newSpace()
				defer as.Teardown()
				size := uint64(6 * addr.PTECoverage)
				base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
				fillPattern(t, as, base, size, 0xC3)

				seq := Fork(as, mode)
				par := mustForkOpts(as, mode, parOpts(workers))
				r := addr.NewRange(base, size)
				if err := EqualMemory(as, par, r); err != nil {
					t.Fatalf("parallel child diverges from parent: %v", err)
				}
				if err := EqualMemory(seq, par, r); err != nil {
					t.Fatalf("parallel child diverges from sequential child: %v", err)
				}
				if err := CheckInvariants(as, seq, par); err != nil {
					t.Fatal(err)
				}
				par.Teardown()
				seq.Teardown()
			})
		}
	}
}

// TestForkParallelProfileCounts pins the semantic equivalence of the
// fan-out: a parallel fork must perform exactly the same per-page and
// per-table accounting work as a sequential one — batching may merge
// profiler charges, never change their totals.
func TestForkParallelProfileCounts(t *testing.T) {
	for _, mode := range forkModes() {
		t.Run(mode.String(), func(t *testing.T) {
			counts := func(workers int) map[string]uint64 {
				prof := profile.New()
				as := NewAddressSpace(phys.NewAllocator(prof), prof)
				defer as.Teardown()
				size := uint64(5 * addr.PTECoverage)
				base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
				fillPattern(t, as, base, size, 0x11)
				prof.Reset()
				child := mustForkOpts(as, mode, parOpts(workers))
				defer child.Teardown()
				out := map[string]uint64{}
				for _, name := range []string{
					profile.CopyOnePTE, profile.PageRefInc, profile.CompoundHead,
					profile.PTShareInc, profile.UpperWalk, profile.TLBFlush,
				} {
					out[name] = prof.Count(name)
				}
				return out
			}
			seq, par := counts(1), counts(4)
			for name, want := range seq {
				if got := par[name]; got != want {
					t.Errorf("%s: parallel fork charged %d, sequential %d", name, got, want)
				}
			}
		})
	}
}

func TestForkParallelismValidation(t *testing.T) {
	as := newSpace()
	defer as.Teardown()
	base := mustMmap(t, as, uint64(addr.PTECoverage), rw, vm.MapPrivate|vm.MapPopulate)
	_ = base

	t.Run("negative panics", func(t *testing.T) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("ForkWithOptions accepted Parallelism=-1")
			}
			msg := fmt.Sprint(r)
			if !strings.Contains(msg, "Parallelism") {
				t.Errorf("panic message %q does not name the knob", msg)
			}
		}()
		mustForkOpts(as, ForkClassic, ForkOptions{Parallelism: -1})
	})

	t.Run("zero is sequential default", func(t *testing.T) {
		child := mustForkOpts(as, ForkClassic, ForkOptions{})
		defer child.Teardown()
		if err := CheckInvariants(as, child); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("huge values clamp", func(t *testing.T) {
		child := mustForkOpts(as, ForkClassic, ForkOptions{Parallelism: 1 << 20, ParallelThreshold: -1})
		defer child.Teardown()
		if err := CheckInvariants(as, child); err != nil {
			t.Fatal(err)
		}
	})
}

// TestForkParallelBelowThreshold checks that a small address space with
// Parallelism set still forks correctly through the sequential
// fallback (the threshold keeps tiny forks off the pool).
func TestForkParallelBelowThreshold(t *testing.T) {
	for _, mode := range forkModes() {
		t.Run(mode.String(), func(t *testing.T) {
			as := newSpace()
			defer as.Teardown()
			size := uint64(2 * addr.PTECoverage) // 2 slots << DefaultParallelThreshold
			base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
			fillPattern(t, as, base, size, 0x77)
			child := mustForkOpts(as, mode, ForkOptions{Parallelism: 8})
			defer child.Teardown()
			if err := EqualMemory(as, child, addr.NewRange(base, size)); err != nil {
				t.Fatal(err)
			}
			if err := CheckInvariants(as, child); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentForkFaultStress forks the parent from several
// goroutines (each fork itself fanned out) while sibling children
// fault-write into the leaves they still share with the parent. Run
// under -race this exercises every cross-goroutine edge of the
// parallel engine: shared leaf locks, share counters, the sharded
// allocator, and the profiler.
func TestConcurrentForkFaultStress(t *testing.T) {
	for _, mode := range forkModes() {
		t.Run(mode.String(), func(t *testing.T) {
			prof := profile.New()
			alloc := phys.NewAllocator(prof)
			as := NewAddressSpace(alloc, prof)
			size := uint64(8 * addr.PTECoverage)
			base := mustMmap(t, as, size, rw, vm.MapPrivate|vm.MapPopulate)
			fillPattern(t, as, base, size, 0x5A)

			// Siblings created up front; they share leaves with the parent
			// (on-demand) or hold COW pages (classic).
			const siblings = 3
			sibs := make([]*AddressSpace, siblings)
			for i := range sibs {
				sibs[i] = mustForkOpts(as, mode, parOpts(2))
			}

			const forkers = 4
			const forksEach = 4
			kids := make([][]*AddressSpace, forkers)
			var wg sync.WaitGroup
			for g := 0; g < forkers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for it := 0; it < forksEach; it++ {
						kids[g] = append(kids[g], mustForkOpts(as, mode, parOpts(2)))
					}
				}(g)
			}
			for i, sib := range sibs {
				wg.Add(1)
				go func(i int, sib *AddressSpace) {
					defer wg.Done()
					// Fault-write a byte into every 2 MiB region, twice, so
					// leaf splits and COW copies race with the forks above.
					for pass := 0; pass < 2; pass++ {
						for off := uint64(0); off < size; off += uint64(addr.PTECoverage) / 2 {
							v := base + addr.V(off)
							if err := sib.StoreByte(v, byte(i+1)); err != nil {
								t.Errorf("sibling %d write at %#x: %v", i, off, err)
								return
							}
						}
					}
				}(i, sib)
			}
			wg.Wait()

			all := []*AddressSpace{as}
			all = append(all, sibs...)
			for _, ks := range kids {
				all = append(all, ks...)
			}
			if err := CheckInvariants(all...); err != nil {
				t.Fatal(err)
			}
			// The parent was never written post-fill, so every kid forked
			// mid-stress must still read identical memory.
			r := addr.NewRange(base, size)
			for _, ks := range kids {
				for _, k := range ks {
					if err := EqualMemory(as, k, r); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, s := range all {
				s.Teardown()
			}
			if n := alloc.Allocated(); n != 0 {
				t.Errorf("leak: %d frames still allocated", n)
			}
		})
	}
}
