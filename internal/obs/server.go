package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/trace"
)

// Server is the opt-in observability listener: a plain HTTP endpoint
// the daemons (odf-serverless, odf-kv) expose next to their serving
// port. Routes:
//
//	/metrics       — OpenMetrics exposition (per-tenant series included)
//	/metrics.json  — the typed metrics.Snapshot as JSON (odf-top's feed)
//	/trace         — the flight recorder as a Chrome/Perfetto trace
//	/health        — the watchdog verdict (503 while degraded)
//	/procfs/<name> — any /proc/odf file, verbatim
//	/debug/pprof/  — the Go runtime profiles
//
// The listener binds localhost by default; it serves introspection
// data, not tenant payloads.
type Server struct {
	k  *kernel.Kernel
	ln net.Listener
	hs *http.Server
	wd *Watchdog
}

// ContentTypeOpenMetrics is the media type /metrics responds with.
const ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Listen starts the observability server on addr ("" means an
// ephemeral localhost port) and starts its watchdog. Stop with Close.
func Listen(k *kernel.Kernel, addr string, cfg WatchdogConfig) (*Server, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s := &Server{k: k, ln: ln, wd: NewWatchdog(k, cfg)}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/procfs/", s.handleProcfs)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.hs = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	s.wd.Start()
	go s.hs.Serve(ln) //nolint:errcheck // Serve returns on Close
	return s, nil
}

// Addr returns the listening address ("127.0.0.1:port").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Watchdog returns the server's stall watchdog.
func (s *Server) Watchdog() *Watchdog { return s.wd }

// Close stops the watchdog and the listener.
func (s *Server) Close() error {
	s.wd.Stop()
	return s.hs.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", ContentTypeOpenMetrics)
	fmt.Fprint(w, RenderOpenMetrics(s.k.MetricsSnapshot()))
}

// MetricsJSON is the /metrics.json document: the typed snapshot plus
// the health verdict, stamped with the server's wall-clock time so
// pollers (odf-top) can compute rates.
type MetricsJSON struct {
	UnixNano int64              `json:"unix_nano"`
	Snapshot any                `json:"snapshot"`
	Health   kernel.HealthStats `json:"health"`
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	h, _ := s.k.Health()
	doc := MetricsJSON{
		UnixNano: time.Now().UnixNano(),
		Snapshot: s.k.MetricsSnapshot(),
		Health:   h,
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(doc) //nolint:errcheck // client gone mid-write
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="odf-trace.json"`)
	s.k.WriteTrace(w, trace.FormatChrome) //nolint:errcheck // client gone mid-write
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st, ok := s.k.Health()
	if !ok {
		http.Error(w, "no health verdict published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprint(w, kernel.RenderHealth(st))
}

func (s *Server) handleProcfs(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/procfs/")
	if name == "" || strings.Contains(name, "/") {
		http.NotFound(w, r)
		return
	}
	content, err := s.k.Procfs("/proc/odf/" + name)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, content)
}
