// Package obs is the observability surface of the simulated kernel: an
// OpenMetrics renderer (and in-tree parser, so the exposition format is
// testable without an external scraper), an opt-in HTTP listener
// serving metrics, trace downloads, health, and pprof, and a stall
// watchdog that turns metric deltas into structured alert events on the
// flight recorder and a /proc/odf/health verdict.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// RenderOpenMetrics renders a telemetry snapshot as OpenMetrics text:
// `_total` counters, cumulative `le`-labelled histogram buckets with
// `_count` and `_sum`, gauges, and per-tenant partitions labelled by
// tenant id. Histogram buckets carry exemplars (`# {request_id="…"} v`)
// for the worst tagged observations, linking a p99 bucket to the
// request trace that produced it. The output always ends with `# EOF`
// as the spec requires, and round-trips through ParseOpenMetrics.
func RenderOpenMetrics(s metrics.Snapshot) string {
	var b strings.Builder

	counter := func(name string, labels Labels, v uint64) {
		fmt.Fprintf(&b, "%s_total%s %s\n", name, labels, formatValue(float64(v)))
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(&b, "%s %s\n", name, formatValue(float64(v)))
	}

	// hist renders one histogram's cumulative buckets, attaching each
	// exemplar to the first bucket whose bound covers it (largest
	// observation wins a contended bucket; OpenMetrics allows one
	// exemplar per line).
	hist := func(name string, labels Labels, hs metrics.HistogramSnapshot) {
		exByBucket := make(map[int]metrics.Exemplar)
		for _, e := range hs.Exemplars {
			i := bucketIndexOf(e.NS)
			if prev, ok := exByBucket[i]; !ok || e.NS > prev.NS {
				exByBucket[i] = e
			}
		}
		var cum uint64
		for i := 0; i <= metrics.HistBuckets; i++ {
			cum += hs.Buckets[i]
			le := "+Inf"
			if bound := metrics.BucketBound(i); bound != 0 {
				le = strconv.FormatUint(bound, 10)
			}
			bl := append(append(Labels{}, labels...), Label{"le", le})
			fmt.Fprintf(&b, "%s_bucket%s %s", name, bl, formatValue(float64(cum)))
			if e, ok := exByBucket[i]; ok {
				fmt.Fprintf(&b, " # %s %s",
					Labels{{"request_id", strconv.FormatUint(e.Req, 10)}},
					formatValue(float64(e.NS)))
			}
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%s_count%s %s\n", name, labels, formatValue(float64(hs.Count)))
		fmt.Fprintf(&b, "%s_sum%s %s\n", name, labels, formatValue(float64(hs.SumNS)))
	}
	typ := func(name, kind string) { fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind) }

	// Fork engines.
	typ("odf_forks", "counter")
	for e := metrics.ForkEngine(0); e < metrics.NumEngines; e++ {
		counter("odf_forks", Labels{{"engine", e.String()}}, s.Fork.Engines[e].Forks)
	}
	typ("odf_fork_latency_ns", "histogram")
	for e := metrics.ForkEngine(0); e < metrics.NumEngines; e++ {
		hist("odf_fork_latency_ns", Labels{{"engine", e.String()}}, s.Fork.Engines[e].Latency)
	}

	// Fault handler.
	typ("odf_faults", "counter")
	counter("odf_faults", Labels{{"op", "read"}}, s.Fault.ReadFaults)
	counter("odf_faults", Labels{{"op", "write"}}, s.Fault.WriteFaults)
	typ("odf_fault_latency_ns", "histogram")
	hist("odf_fault_latency_ns", Labels{{"op", "read"}}, s.Fault.ReadLatency)
	hist("odf_fault_latency_ns", Labels{{"op", "write"}}, s.Fault.WriteLatency)
	typ("odf_fault_class", "counter")
	for _, c := range []struct {
		class string
		v     uint64
	}{
		{"table_splits", s.Fault.TableSplits},
		{"pmd_splits", s.Fault.PMDSplits},
		{"fast_dedups", s.Fault.FastDedups},
		{"page_copies", s.Fault.PageCopies},
		{"huge_copies", s.Fault.HugeCopies},
		{"zero_elides", s.Fault.ZeroElides},
	} {
		counter("odf_fault_class", Labels{{"class", c.class}}, c.v)
	}

	// Admission control and reclaim.
	typ("odf_admission_queue_wait_ns", "histogram")
	hist("odf_admission_queue_wait_ns", nil, s.Tenant.QueueWait)
	typ("odf_admission_forks", "counter")
	counter("odf_admission_forks", Labels{{"verdict", "admitted"}}, s.Tenant.ForksAdmitted)
	counter("odf_admission_forks", Labels{{"verdict", "queued"}}, s.Tenant.ForksQueued)
	counter("odf_admission_forks", Labels{{"verdict", "rejected"}}, s.Tenant.ForksRejected)
	typ("odf_reclaim_steals", "counter")
	counter("odf_reclaim_steals", Labels{{"actor", "kswapd"}}, s.Reclaim.PgStealKswapd)
	counter("odf_reclaim_steals", Labels{{"actor", "direct"}}, s.Reclaim.PgStealDirect)
	typ("odf_reclaim_direct_stall_ns", "histogram")
	hist("odf_reclaim_direct_stall_ns", nil, s.Reclaim.DirectStallLatency)
	typ("odf_swap_degrades", "counter")
	counter("odf_swap_degrades", nil, s.Robust.SwapDegrades)

	// Allocator gauges.
	typ("odf_frames_in_use", "gauge")
	gauge("odf_frames_in_use", s.Alloc.FramesInUse)
	typ("odf_frames_peak", "gauge")
	gauge("odf_frames_peak", s.Alloc.FramesPeak)

	// Per-tenant partitions: one series set per registered tenant,
	// keyed by the tenant id (names travel in a dedicated info-style
	// label so dashboards can join on either).
	if len(s.Tenants) > 0 {
		typ("odf_tenant_forks", "counter")
		for _, t := range s.Tenants {
			for e := metrics.ForkEngine(0); e < metrics.NumEngines; e++ {
				counter("odf_tenant_forks", tenantLabels(t, Label{"engine", e.String()}), t.Forks[e])
			}
		}
		typ("odf_tenant_fork_latency_ns", "histogram")
		for _, t := range s.Tenants {
			for e := metrics.ForkEngine(0); e < metrics.NumEngines; e++ {
				hist("odf_tenant_fork_latency_ns", tenantLabels(t, Label{"engine", e.String()}), t.ForkLatency[e])
			}
		}
		typ("odf_tenant_fault_class", "counter")
		for _, t := range s.Tenants {
			for _, c := range []struct {
				class string
				v     uint64
			}{
				{"table_splits", t.TableSplits},
				{"pmd_splits", t.PMDSplits},
				{"fast_dedups", t.FastDedups},
				{"page_copies", t.PageCopies},
				{"huge_copies", t.HugeCopies},
				{"swap_ins", t.SwapIns},
			} {
				counter("odf_tenant_fault_class", tenantLabels(t, Label{"class", c.class}), c.v)
			}
		}
		typ("odf_tenant_queue_wait_ns", "histogram")
		for _, t := range s.Tenants {
			hist("odf_tenant_queue_wait_ns", tenantLabels(t), t.QueueWait)
		}
		typ("odf_tenant_reclaim_evictions", "counter")
		for _, t := range s.Tenants {
			counter("odf_tenant_reclaim_evictions", tenantLabels(t), t.ReclaimEvictions)
		}
		typ("odf_tenant_quota_rejections", "counter")
		for _, t := range s.Tenants {
			counter("odf_tenant_quota_rejections", tenantLabels(t), t.QuotaRejections)
		}
	}

	b.WriteString("# EOF\n")
	return b.String()
}

func tenantLabels(t metrics.TenantSlotSnapshot, extra ...Label) Labels {
	ls := Labels{
		{"tenant", strconv.FormatUint(t.ID, 10)},
		{"tenant_name", t.Name},
	}
	return append(ls, extra...)
}

// bucketIndexOf mirrors the histogram's log₂ bucketing for exemplar
// placement: the index of the bucket an ns observation landed in.
func bucketIndexOf(ns uint64) int {
	for i := 0; i < metrics.HistBuckets; i++ {
		if ns < metrics.BucketBound(i) {
			return i
		}
	}
	return metrics.HistBuckets
}

// formatValue renders a sample value the way the parser re-renders it,
// so render → parse → render is the identity.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Label is one name="value" pair. Order is significant: the renderer
// emits labels in a fixed order and the parser preserves it, which is
// what makes the round-trip exact.
type Label struct {
	Name  string
	Value string
}

// Labels is an ordered label set.
type Labels []Label

// Get returns the value of the named label ("" when absent).
func (ls Labels) Get(name string) string {
	for _, l := range ls {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// String renders the label set in OpenMetrics syntax, with values
// escaped. An empty set renders as "".
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withoutLE returns the label set minus the "le" label, as a map key.
func (ls Labels) withoutLE() string {
	var b strings.Builder
	for _, l := range ls {
		if l.Name == "le" {
			continue
		}
		fmt.Fprintf(&b, "%s=%q,", l.Name, l.Value)
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Exemplar is a parsed bucket exemplar.
type Exemplar struct {
	Labels Labels
	Value  float64
}

// Sample is one parsed exposition line.
type Sample struct {
	Name     string
	Labels   Labels
	Value    float64
	Exemplar *Exemplar
}

// Family is one `# TYPE` group and the samples under it.
type Family struct {
	Name    string
	Type    string // "counter", "gauge", "histogram"
	Samples []Sample
}

// Exposition is a parsed OpenMetrics document.
type Exposition struct {
	Families []*Family
	byName   map[string]*Family
}

// Family returns the named metric family (nil when absent).
func (e *Exposition) Family(name string) *Family {
	return e.byName[name]
}

// Render regenerates the OpenMetrics text from the parsed document.
// For documents produced by RenderOpenMetrics, Render returns the
// original bytes — the round-trip tests pin this.
func (e *Exposition) Render() string {
	var b strings.Builder
	for _, f := range e.Families {
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Samples {
			fmt.Fprintf(&b, "%s%s %s", s.Name, s.Labels, formatValue(s.Value))
			if s.Exemplar != nil {
				fmt.Fprintf(&b, " # %s %s", s.Exemplar.Labels, formatValue(s.Exemplar.Value))
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString("# EOF\n")
	return b.String()
}

// ParseOpenMetrics parses an OpenMetrics document (the subset
// RenderOpenMetrics emits: TYPE comments, labelled samples, bucket
// exemplars, a final # EOF) and validates its structure: every sample
// belongs to a declared family, histogram buckets are cumulative with
// a +Inf bucket matching _count, and the document is EOF-terminated.
func ParseOpenMetrics(r io.Reader) (*Exposition, error) {
	exp := &Exposition{byName: make(map[string]*Family)}
	var cur *Family
	sawEOF := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if sawEOF {
			return nil, fmt.Errorf("openmetrics: line %d: content after # EOF", lineNo)
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if line == "# EOF" {
				sawEOF = true
				continue
			}
			rest, ok := strings.CutPrefix(line, "# TYPE ")
			if !ok {
				// HELP/UNIT and arbitrary comments are accepted and dropped.
				continue
			}
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("openmetrics: line %d: malformed TYPE", lineNo)
			}
			if _, dup := exp.byName[name]; dup {
				return nil, fmt.Errorf("openmetrics: line %d: duplicate TYPE for %s", lineNo, name)
			}
			cur = &Family{Name: name, Type: kind}
			exp.Families = append(exp.Families, cur)
			exp.byName[name] = cur
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("openmetrics: line %d: %w", lineNo, err)
		}
		f := familyOf(exp, s.Name)
		if f == nil {
			return nil, fmt.Errorf("openmetrics: line %d: sample %s outside any TYPE family", lineNo, s.Name)
		}
		if s.Exemplar != nil && f.Type != "histogram" {
			return nil, fmt.Errorf("openmetrics: line %d: exemplar on non-histogram %s", lineNo, s.Name)
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("openmetrics: %w", err)
	}
	if !sawEOF {
		return nil, fmt.Errorf("openmetrics: missing # EOF terminator")
	}
	if err := exp.validate(); err != nil {
		return nil, err
	}
	return exp, nil
}

// familyOf resolves the family a sample belongs to, accounting for the
// histogram/counter suffixes samples carry over their family name.
func familyOf(exp *Exposition, sample string) *Family {
	if f := exp.byName[sample]; f != nil {
		return f
	}
	for _, suf := range []string{"_total", "_bucket", "_count", "_sum"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f := exp.byName[base]; f != nil {
				return f
			}
		}
	}
	return nil
}

func parseSampleLine(line string) (Sample, error) {
	var s Sample
	// Labels are parsed before the exemplar split so a label value
	// containing " # " cannot derail the scan.
	name := line
	rest := ""
	brace := strings.IndexByte(line, '{')
	space := strings.IndexByte(line, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		name = line[:brace]
		var err error
		s.Labels, rest, err = parseLabels(line[brace:])
		if err != nil {
			return s, err
		}
		rest = strings.TrimPrefix(rest, " ")
	} else if space >= 0 {
		name = line[:space]
		rest = line[space+1:]
	} else {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = name
	valStr, exemplar, hasEx := strings.Cut(rest, " # ")
	v, err := strconv.ParseFloat(strings.TrimSpace(valStr), 64)
	if err != nil {
		return s, fmt.Errorf("sample %s: bad value %q", name, valStr)
	}
	s.Value = v
	if hasEx {
		ls, exRest, err := parseLabels(exemplar)
		if err != nil {
			return s, fmt.Errorf("sample %s exemplar: %w", name, err)
		}
		ev, err := strconv.ParseFloat(strings.TrimSpace(exRest), 64)
		if err != nil {
			return s, fmt.Errorf("sample %s exemplar: bad value %q", name, exRest)
		}
		s.Exemplar = &Exemplar{Labels: ls, Value: ev}
	}
	return s, nil
}

// parseLabels parses a `{name="value",...}` block starting at in[0]
// and returns the labels plus the unconsumed tail.
func parseLabels(in string) (Labels, string, error) {
	if len(in) == 0 || in[0] != '{' {
		return nil, "", fmt.Errorf("labels must start with '{', got %q", in)
	}
	var ls Labels
	i := 1
	for {
		if i >= len(in) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if in[i] == '}' {
			return ls, in[i+1:], nil
		}
		if in[i] == ',' {
			i++
			continue
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("label %s: unquoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("label %s: unterminated value", name)
			}
			c := in[i]
			if c == '\\' {
				if i+1 >= len(in) {
					return nil, "", fmt.Errorf("label %s: dangling escape", name)
				}
				switch in[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %s: bad escape \\%c", name, in[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		ls = append(ls, Label{Name: name, Value: val.String()})
	}
}

// validate enforces the structural invariants: histogram bucket runs
// are cumulative in le order, the +Inf bucket equals _count, and every
// histogram has _count and _sum.
func (e *Exposition) validate() error {
	for _, f := range e.Families {
		if f.Type != "histogram" {
			continue
		}
		type series struct {
			buckets []Sample // in emission order
			count   *Sample
			sum     *Sample
		}
		byKey := make(map[string]*series)
		var keys []string
		get := func(ls Labels) *series {
			k := ls.withoutLE()
			s := byKey[k]
			if s == nil {
				s = &series{}
				byKey[k] = s
				keys = append(keys, k)
			}
			return s
		}
		for i := range f.Samples {
			s := &f.Samples[i]
			switch s.Name {
			case f.Name + "_bucket":
				get(s.Labels).buckets = append(get(s.Labels).buckets, *s)
			case f.Name + "_count":
				get(s.Labels).count = s
			case f.Name + "_sum":
				get(s.Labels).sum = s
			default:
				return fmt.Errorf("openmetrics: %s: unexpected sample %s in histogram family", f.Name, s.Name)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			sr := byKey[k]
			if sr.count == nil || sr.sum == nil {
				return fmt.Errorf("openmetrics: %s{%s}: histogram missing _count or _sum", f.Name, k)
			}
			if len(sr.buckets) == 0 {
				return fmt.Errorf("openmetrics: %s{%s}: histogram has no buckets", f.Name, k)
			}
			prevLE := -1.0
			prev := -1.0
			sawInf := false
			for _, bkt := range sr.buckets {
				leStr := bkt.Labels.Get("le")
				var le float64
				if leStr == "+Inf" {
					le = inf()
					sawInf = true
				} else {
					var err error
					le, err = strconv.ParseFloat(leStr, 64)
					if err != nil {
						return fmt.Errorf("openmetrics: %s{%s}: bad le %q", f.Name, k, leStr)
					}
				}
				if le <= prevLE {
					return fmt.Errorf("openmetrics: %s{%s}: le bounds not increasing", f.Name, k)
				}
				if bkt.Value < prev {
					return fmt.Errorf("openmetrics: %s{%s}: bucket counts not cumulative (le=%s)", f.Name, k, leStr)
				}
				prevLE, prev = le, bkt.Value
			}
			if !sawInf {
				return fmt.Errorf("openmetrics: %s{%s}: missing +Inf bucket", f.Name, k)
			}
			if last := sr.buckets[len(sr.buckets)-1].Value; last != sr.count.Value {
				return fmt.Errorf("openmetrics: %s{%s}: +Inf bucket %v != count %v", f.Name, k, last, sr.count.Value)
			}
		}
	}
	return nil
}

func inf() float64 {
	v, _ := strconv.ParseFloat("+Inf", 64)
	return v
}
