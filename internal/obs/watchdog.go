package obs

import (
	"sync"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Watchdog is the stall detector: on a timer it diffs successive
// telemetry snapshots and evaluates a fixed rule set — fork-latency p99
// breach, admission-wait spike, swap-path degradation, OOM/direct-
// reclaim stalls. Each ok→firing transition records a structured
// KindAlert instant on the flight recorder, and every tick publishes
// the full verdict to the kernel's health slot, rendering as
// /proc/odf/health. Evaluation is a pure function of two snapshots
// (evaluate), so the rules are unit-testable without timers.

// WatchdogConfig sets the rule thresholds. Zero values take defaults.
type WatchdogConfig struct {
	// Interval between evaluations.
	Interval time.Duration
	// ForkP99NS trips fork_p99_breach when the interval's fork-latency
	// p99 (worst engine) exceeds it.
	ForkP99NS uint64
	// AdmitWaitP99NS trips admit_wait_spike when the interval's
	// admission queue-wait p99 exceeds it.
	AdmitWaitP99NS uint64
	// DirectStallP99NS trips oom_stall when the interval's
	// direct-reclaim stall p99 exceeds it.
	DirectStallP99NS uint64
}

// Defaults for WatchdogConfig.
const (
	DefaultWatchdogInterval = 250 * time.Millisecond
	DefaultForkP99NS        = 50_000_000  // 50 ms: far past a healthy on-demand fork
	DefaultAdmitWaitP99NS   = 100_000_000 // 100 ms queued before fork admission
	DefaultDirectStallP99NS = 100_000_000 // 100 ms stalled in direct reclaim
)

func (c *WatchdogConfig) fillDefaults() {
	if c.Interval <= 0 {
		c.Interval = DefaultWatchdogInterval
	}
	if c.ForkP99NS == 0 {
		c.ForkP99NS = DefaultForkP99NS
	}
	if c.AdmitWaitP99NS == 0 {
		c.AdmitWaitP99NS = DefaultAdmitWaitP99NS
	}
	if c.DirectStallP99NS == 0 {
		c.DirectStallP99NS = DefaultDirectStallP99NS
	}
}

// Watchdog runs the rule set against one kernel. Create with
// NewWatchdog, start the sampling loop with Start, stop with Stop.
type Watchdog struct {
	k   *kernel.Kernel
	cfg WatchdogConfig

	mu     sync.Mutex
	prev   metrics.Snapshot
	firing [4]bool   // previous verdict per rule, for edge detection
	fires  [4]uint64 // cumulative ok→firing transitions

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewWatchdog returns a watchdog for k. It does not start sampling.
func NewWatchdog(k *kernel.Kernel, cfg WatchdogConfig) *Watchdog {
	cfg.fillDefaults()
	return &Watchdog{k: k, cfg: cfg, stop: make(chan struct{})}
}

// Start launches the sampling loop.
func (w *Watchdog) Start() {
	w.mu.Lock()
	w.prev = w.k.MetricsSnapshot()
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.Tick()
			}
		}
	}()
}

// Stop halts the sampling loop. Idempotent.
func (w *Watchdog) Stop() {
	w.once.Do(func() { close(w.stop) })
	w.wg.Wait()
}

// Tick runs one evaluation round: diff against the previous snapshot,
// evaluate the rules, trace new alerts, publish the health verdict.
// The sampling loop calls it on the timer; tests call it directly.
func (w *Watchdog) Tick() kernel.HealthStats {
	cur := w.k.MetricsSnapshot()
	w.mu.Lock()
	delta := cur.Sub(w.prev)
	w.prev = cur
	checks := evaluate(delta, w.cfg)
	st := kernel.HealthStats{Status: "ok"}
	for i := range checks {
		if checks[i].Firing {
			st.Status = "degraded"
			if !w.firing[i] {
				w.fires[i]++
				w.k.Tracer().Instant(trace.KindAlert, trace.StageNone, trace.ActorApp,
					alertCodes[i], checks[i].Observed)
			}
		}
		w.firing[i] = checks[i].Firing
		checks[i].Fires = w.fires[i]
	}
	st.Checks = checks
	w.mu.Unlock()
	w.k.SetHealth(st)
	return st
}

// alertCodes maps rule index to the trace alert code; the order is the
// rule order evaluate emits.
var alertCodes = [4]uint64{
	trace.AlertForkP99,
	trace.AlertAdmitWait,
	trace.AlertSwapDegraded,
	trace.AlertOOMStall,
}

// evaluate runs the rule set over one interval's metric delta. It is a
// pure function: no clocks, no kernel access, no side effects. Fires
// counts are filled in by the caller.
func evaluate(delta metrics.Snapshot, cfg WatchdogConfig) []kernel.CheckState {
	forkP99 := uint64(0)
	for e := range delta.Fork.Engines {
		if p := delta.Fork.Engines[e].Latency.Quantile(0.99); p > forkP99 {
			forkP99 = p
		}
	}
	admitP99 := delta.Tenant.QueueWait.Quantile(0.99)
	stallP99 := delta.Reclaim.DirectStallLatency.Quantile(0.99)
	return []kernel.CheckState{
		{
			Name:      trace.AlertName(trace.AlertForkP99),
			Firing:    forkP99 > cfg.ForkP99NS,
			Observed:  forkP99,
			Threshold: cfg.ForkP99NS,
		},
		{
			Name:      trace.AlertName(trace.AlertAdmitWait),
			Firing:    admitP99 > cfg.AdmitWaitP99NS,
			Observed:  admitP99,
			Threshold: cfg.AdmitWaitP99NS,
		},
		{
			Name:      trace.AlertName(trace.AlertSwapDegraded),
			Firing:    delta.Robust.SwapDegrades > 0,
			Observed:  delta.Robust.SwapDegrades,
			Threshold: 0,
		},
		{
			Name:      trace.AlertName(trace.AlertOOMStall),
			Firing:    stallP99 > cfg.DirectStallP99NS,
			Observed:  stallP99,
			Threshold: cfg.DirectStallP99NS,
		},
	}
}
