package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/apps/kvstore"
	"repro/internal/apps/serve"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/trace"
)

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestServerEndToEnd boots a tenanted clone-per-request lane behind
// the observability listener, drives tagged requests, and checks every
// route: the OpenMetrics scrape parses with non-empty per-tenant fork
// histograms and resolvable exemplars, /health publishes the watchdog
// verdict, /metrics.json decodes, /trace validates as a Chrome trace
// whose request flows and exemplar metadata tie back to the driven
// requests.
func TestServerEndToEnd(t *testing.T) {
	k := kernel.New()
	tn, err := k.Tenants().Create("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	app, err := serve.NewKV(k, serve.KVConfig{
		Config: kvstore.Config{
			ArenaBytes: 4 << 20,
			TableCap:   1 << 10,
			Mode:       core.ForkOnDemand,
			Tenant:     tn,
		},
		Keys:     32,
		ValueLen: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Warm(); err != nil {
		t.Fatal(err)
	}
	d := serve.NewDispatcher()
	d.AddLane(uint32(tn.TenantID()), app, true)
	k.SetTraceEnabled(true)
	d.SetObserver(serve.NewObs(k.Tracer()))

	// A long watchdog interval keeps ticks deterministic (manual only).
	srv, err := Listen(k, "", WatchdogConfig{Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	const reqs = 8
	for i := 0; i < reqs; i++ {
		req := serve.EncodeTenant(uint32(tn.TenantID()), serve.EncodeGet(kvstore.Key(i)))
		if _, err := d.Handle(req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	srv.Watchdog().Tick()

	// /metrics: parses, and the tenant's fork histogram counted the
	// clone forks.
	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	exp, err := ParseOpenMetrics(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("scrape does not parse: %v", err)
	}
	fam := exp.Family("odf_tenant_fork_latency_ns")
	if fam == nil {
		t.Fatal("no odf_tenant_fork_latency_ns family in scrape")
	}
	var tenantForkCount float64
	var exemplarReqs []string
	wantTenant := fmt.Sprint(tn.TenantID())
	for _, s := range fam.Samples {
		if s.Labels.Get("tenant") != wantTenant {
			continue
		}
		if s.Name == "odf_tenant_fork_latency_ns_count" && s.Labels.Get("engine") == "ondemand" {
			tenantForkCount = s.Value
		}
		if s.Exemplar != nil {
			exemplarReqs = append(exemplarReqs, s.Exemplar.Labels.Get("request_id"))
		}
	}
	if tenantForkCount != reqs {
		t.Fatalf("tenant fork histogram count = %v, want %d", tenantForkCount, reqs)
	}
	if len(exemplarReqs) == 0 {
		t.Fatal("no exemplars on the tenant fork histogram")
	}

	// /health: published by the tick, healthy.
	code, body = httpGet(t, base+"/health")
	if code != http.StatusOK {
		t.Fatalf("/health status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "status:\tok") {
		t.Fatalf("/health body:\n%s", body)
	}

	// /metrics.json: decodes, carries the tenant partition.
	code, body = httpGet(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var doc struct {
		UnixNano int64 `json:"unix_nano"`
		Snapshot struct {
			Tenants []struct {
				ID    uint64   `json:"ID"`
				Forks []uint64 `json:"Forks"`
			} `json:"Tenants"`
		} `json:"snapshot"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if doc.UnixNano == 0 || len(doc.Snapshot.Tenants) != 1 {
		t.Fatalf("/metrics.json missing timestamp or tenants: %s", body)
	}

	// /trace: a valid Chrome document whose request spans and exemplar
	// metadata reference the driven request ids.
	code, body = httpGet(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	if err := trace.ValidateChrome(body); err != nil {
		t.Fatalf("/trace invalid: %v", err)
	}
	reqEvents := map[uint64]bool{}
	for _, e := range k.TraceSnapshot().Events {
		if e.Req != 0 {
			reqEvents[e.Req] = true
		}
	}
	if len(reqEvents) == 0 {
		t.Fatal("no request-tagged events on the flight recorder")
	}
	for _, rid := range exemplarReqs {
		var id uint64
		fmt.Sscanf(rid, "%d", &id)
		if !reqEvents[id] {
			t.Fatalf("exemplar request id %s resolves to no trace event", rid)
		}
	}

	// /procfs/metrics mirrors the procfs namespace.
	code, body = httpGet(t, base+"/procfs/metrics")
	if code != http.StatusOK || !strings.Contains(string(body), "fork.ondemand.forks") {
		t.Fatalf("/procfs/metrics status %d body %.80s", code, body)
	}
	if code, _ := httpGet(t, base+"/procfs/no-such-file"); code != http.StatusNotFound {
		t.Fatalf("unknown procfs file served: %d", code)
	}
}

// TestRequestFlowChain pins the tentpole acceptance shape: one tagged
// request produces a connected chain on the flight recorder — the
// enclosing request span, fork-stage spans, and at least one
// fault-resolution event, all carrying the same request id.
func TestRequestFlowChain(t *testing.T) {
	k := kernel.New()
	tn, err := k.Tenants().Create("alpha", 0)
	if err != nil {
		t.Fatal(err)
	}
	app, err := serve.NewKV(k, serve.KVConfig{
		Config: kvstore.Config{
			ArenaBytes: 4 << 20,
			TableCap:   1 << 10,
			Mode:       core.ForkOnDemand,
			Tenant:     tn,
		},
		Keys:     32,
		ValueLen: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if err := app.Warm(); err != nil {
		t.Fatal(err)
	}
	d := serve.NewDispatcher()
	d.AddLane(uint32(tn.TenantID()), app, true)
	k.SetTraceEnabled(true)
	d.SetObserver(serve.NewObs(k.Tracer()))

	// A SET: the clone shares page tables with the warm parent, so the
	// request's first store is what forces copy-on-write fault work.
	req := serve.EncodeTenant(uint32(tn.TenantID()),
		serve.EncodeSet(kvstore.Key(3), []byte("observed-value")))
	if _, err := d.Handle(req); err != nil {
		t.Fatal(err)
	}

	kinds := map[trace.Kind]int{}
	var rid uint64
	for _, e := range k.TraceSnapshot().Events {
		if e.Kind == trace.KindRequest {
			rid = e.Req
		}
	}
	if rid == 0 {
		t.Fatal("no request span recorded")
	}
	for _, e := range k.TraceSnapshot().Events {
		if e.Req == rid {
			kinds[e.Kind]++
		}
	}
	if kinds[trace.KindRequest] != 1 {
		t.Fatalf("request spans = %d, want 1", kinds[trace.KindRequest])
	}
	if kinds[trace.KindFork] == 0 || kinds[trace.KindForkStage] == 0 {
		t.Fatalf("fork chain missing from request %d: %v", rid, kinds)
	}
	if kinds[trace.KindFault] == 0 {
		t.Fatalf("no fault resolution carries request %d: %v", rid, kinds)
	}
}
