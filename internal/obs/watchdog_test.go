package obs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestEvaluatePure exercises the rule set as a pure function of one
// interval's delta.
func TestEvaluatePure(t *testing.T) {
	cfg := WatchdogConfig{}
	cfg.fillDefaults()

	var quiet metrics.Snapshot
	for _, c := range evaluate(quiet, cfg) {
		if c.Firing {
			t.Fatalf("rule %s fires on an all-zero delta", c.Name)
		}
	}

	var hot metrics.Snapshot
	// One 200ms on-demand fork in the window: p99 lands near the max.
	lat := &hot.Fork.Engines[metrics.EngineOnDemand].Latency
	lat.Count = 1
	lat.SumNS = 200_000_000
	lat.MaxNS = 200_000_000
	lat.Buckets[27] = 1 // [134ms, 268ms)
	hot.Robust.SwapDegrades = 2
	checks := evaluate(hot, cfg)
	byName := map[string]kernel.CheckState{}
	for _, c := range checks {
		byName[c.Name] = c
	}
	if !byName["fork_p99_breach"].Firing {
		t.Fatalf("fork_p99_breach not firing: %+v", byName["fork_p99_breach"])
	}
	if !byName["swap_degraded"].Firing {
		t.Fatal("swap_degraded not firing on SwapDegrades delta")
	}
	if byName["admit_wait_spike"].Firing || byName["oom_stall"].Firing {
		t.Fatal("unrelated rules fired")
	}
}

// TestWatchdogTick drives a real kernel through an ok → degraded → ok
// cycle: the first breach records one KindAlert instant and flips
// /proc/odf/health to degraded; recovery flips it back without
// re-alerting; a second breach alerts again (edge-triggered).
func TestWatchdogTick(t *testing.T) {
	k := kernel.New()
	k.SetTraceEnabled(true)
	w := NewWatchdog(k, WatchdogConfig{ForkP99NS: 1000})

	breach := func() {
		k.Metrics().Fork.Latency[metrics.EngineOnDemand].Observe(50 * time.Microsecond)
	}

	if st := w.Tick(); st.Status != "ok" {
		t.Fatalf("quiet tick status = %q", st.Status)
	}
	breach()
	st := w.Tick()
	if st.Status != "degraded" {
		t.Fatalf("breach tick status = %q", st.Status)
	}
	if st.Checks[0].Fires != 1 {
		t.Fatalf("fires = %d after first breach", st.Checks[0].Fires)
	}

	// The verdict renders through procfs.
	out, err := k.Procfs("/proc/odf/health")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "status:\tdegraded") || !strings.Contains(out, "check.fork_p99_breach:\tFIRING") {
		t.Fatalf("/proc/odf/health missing verdict:\n%s", out)
	}

	// Recovery: no new observations, the delta is clean.
	if st := w.Tick(); st.Status != "ok" {
		t.Fatalf("recovery tick status = %q", st.Status)
	}
	if st := w.Tick(); st.Checks[0].Fires != 1 {
		t.Fatalf("fires moved without a new breach: %d", st.Checks[0].Fires)
	}
	breach()
	if st := w.Tick(); st.Checks[0].Fires != 2 {
		t.Fatalf("fires = %d after second breach", st.Checks[0].Fires)
	}

	// Exactly two alert instants on the flight recorder.
	alerts := 0
	for _, e := range k.TraceSnapshot().Events {
		if e.Kind == trace.KindAlert {
			alerts++
			if e.Arg1 != trace.AlertForkP99 {
				t.Fatalf("alert code %d, want AlertForkP99", e.Arg1)
			}
		}
	}
	if alerts != 2 {
		t.Fatalf("alert instants = %d, want 2 (edge-triggered)", alerts)
	}
}

// TestProcHealthUnbackedUntilPublished pins the endpoint lifecycle:
// absent before any verdict, listed and readable after.
func TestProcHealthUnbackedUntilPublished(t *testing.T) {
	k := kernel.New()
	if _, err := k.Procfs("/proc/odf/health"); err == nil {
		t.Fatal("/proc/odf/health readable before any verdict")
	}
	root, err := k.Procfs("/proc/odf")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(root, "health") {
		t.Fatal("root listing shows unbacked health endpoint")
	}
	k.SetHealth(kernel.HealthStats{Status: "ok"})
	if _, err := k.Procfs("/proc/odf/health"); err != nil {
		t.Fatalf("published health unreadable: %v", err)
	}
	root, err = k.Procfs("/proc/odf")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(root, "health") {
		t.Fatal("root listing missing published health endpoint")
	}
}
