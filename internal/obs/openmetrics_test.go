package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot is a fixed telemetry tree exercising every exposition
// section: both engines, histograms with interior and overflow
// buckets, exemplars, and two tenants (one with an escaping-hostile
// name).
func goldenSnapshot() metrics.Snapshot {
	var s metrics.Snapshot

	classic := &s.Fork.Engines[metrics.EngineClassic]
	classic.Forks = 2
	classic.Latency.Count = 2
	classic.Latency.SumNS = 3_000_000
	classic.Latency.MaxNS = 2_000_000
	classic.Latency.Buckets[20] = 2

	od := &s.Fork.Engines[metrics.EngineOnDemand]
	od.Forks = 3
	od.Latency.Count = 3
	od.Latency.SumNS = 150_000
	od.Latency.MaxNS = 60_000
	od.Latency.Buckets[15] = 3
	od.Latency.Exemplars = []metrics.Exemplar{
		{NS: 60_000, Req: 7},
		{NS: 45_000, Req: 3},
	}

	s.Fault.ReadFaults = 10
	s.Fault.ReadLatency.Count = 10
	s.Fault.ReadLatency.SumNS = 4_000
	s.Fault.ReadLatency.Buckets[8] = 10
	s.Fault.WriteFaults = 7
	s.Fault.WriteLatency.Count = 7
	s.Fault.WriteLatency.SumNS = 21_000
	s.Fault.WriteLatency.Buckets[11] = 6
	s.Fault.WriteLatency.Buckets[metrics.HistBuckets] = 1 // overflow
	s.Fault.WriteLatency.Exemplars = []metrics.Exemplar{{NS: 4_000, Req: 9}}
	s.Fault.TableSplits = 5
	s.Fault.PMDSplits = 1
	s.Fault.FastDedups = 2
	s.Fault.PageCopies = 9
	s.Fault.HugeCopies = 1
	s.Fault.ZeroElides = 4

	s.Tenant.ForksAdmitted = 12
	s.Tenant.ForksQueued = 4
	s.Tenant.ForksRejected = 1
	s.Tenant.QueueWait.Count = 4
	s.Tenant.QueueWait.SumNS = 8_000_000
	s.Tenant.QueueWait.Buckets[21] = 4

	s.Reclaim.PgStealKswapd = 100
	s.Reclaim.PgStealDirect = 25
	s.Reclaim.DirectStallLatency.Count = 1
	s.Reclaim.DirectStallLatency.SumNS = 2_000_000
	s.Reclaim.DirectStallLatency.Buckets[20] = 1
	s.Robust.SwapDegrades = 1

	s.Alloc.FramesInUse = 4096
	s.Alloc.FramesPeak = 5000

	t1 := metrics.TenantSlotSnapshot{ID: 1, Name: "alpha"}
	t1.Forks[metrics.EngineOnDemand] = 5
	t1.ForkLatency[metrics.EngineOnDemand].Count = 5
	t1.ForkLatency[metrics.EngineOnDemand].SumNS = 250_000
	t1.ForkLatency[metrics.EngineOnDemand].Buckets[15] = 5
	t1.ForkLatency[metrics.EngineOnDemand].Exemplars = []metrics.Exemplar{{NS: 61_000, Req: 11}}
	t1.TableSplits = 3
	t1.PageCopies = 8
	t1.QueueWait.Count = 2
	t1.QueueWait.SumNS = 4_000_000
	t1.QueueWait.Buckets[21] = 2
	t1.ReclaimEvictions = 40
	t1.QuotaRejections = 2

	t2 := metrics.TenantSlotSnapshot{ID: 2, Name: "be\"ta\\v1\nx"}
	t2.Forks[metrics.EngineClassic] = 1
	t2.ForkLatency[metrics.EngineClassic].Count = 1
	t2.ForkLatency[metrics.EngineClassic].SumNS = 1_000_000
	t2.ForkLatency[metrics.EngineClassic].Buckets[19] = 1

	s.Tenants = []metrics.TenantSlotSnapshot{t1, t2}
	return s
}

// TestOpenMetricsGolden pins the exposition byte-for-byte. Regenerate
// deliberately with `go test -update`.
func TestOpenMetricsGolden(t *testing.T) {
	got := RenderOpenMetrics(goldenSnapshot())
	path := filepath.Join("testdata", "openmetrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition differs from %s:\ngot:\n%s", path, got)
	}
}

// TestOpenMetricsRoundTrip checks render → parse → render is the
// identity, including label ordering, escaping, and exemplars, and
// that parsing validates the document.
func TestOpenMetricsRoundTrip(t *testing.T) {
	text := RenderOpenMetrics(goldenSnapshot())
	exp, err := ParseOpenMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := exp.Render(); got != text {
		t.Fatalf("round-trip not identity:\noriginal:\n%s\nre-rendered:\n%s", text, got)
	}

	// The escaping-hostile tenant name survived the trip.
	f := exp.Family("odf_tenant_forks")
	if f == nil {
		t.Fatal("odf_tenant_forks family missing")
	}
	found := false
	for _, s := range f.Samples {
		if s.Labels.Get("tenant") == "2" {
			found = true
			if got := s.Labels.Get("tenant_name"); got != "be\"ta\\v1\nx" {
				t.Fatalf("tenant name mangled: %q", got)
			}
		}
	}
	if !found {
		t.Fatal("tenant 2 series missing")
	}

	// Exemplars parsed with resolvable request ids.
	fh := exp.Family("odf_fork_latency_ns")
	var exCount int
	for _, s := range fh.Samples {
		if s.Exemplar != nil {
			exCount++
			if s.Exemplar.Labels.Get("request_id") == "" {
				t.Fatalf("exemplar without request_id on %s%s", s.Name, s.Labels)
			}
		}
	}
	if exCount == 0 {
		t.Fatal("no exemplars survived the round trip")
	}
}

// TestOpenMetricsEmptySnapshot checks a zero snapshot still renders a
// valid, parseable document.
func TestOpenMetricsEmptySnapshot(t *testing.T) {
	text := RenderOpenMetrics(metrics.Snapshot{})
	if _, err := ParseOpenMetrics(strings.NewReader(text)); err != nil {
		t.Fatalf("empty snapshot exposition invalid: %v", err)
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("missing # EOF terminator")
	}
}

func TestParseRejectsMissingEOF(t *testing.T) {
	doc := "# TYPE odf_forks counter\nodf_forks_total{engine=\"classic\"} 1\n"
	if _, err := ParseOpenMetrics(strings.NewReader(doc)); err == nil {
		t.Fatal("document without # EOF accepted")
	}
}

func TestParseRejectsNonCumulativeBuckets(t *testing.T) {
	doc := `# TYPE odf_x_ns histogram
odf_x_ns_bucket{le="2"} 5
odf_x_ns_bucket{le="4"} 3
odf_x_ns_bucket{le="+Inf"} 5
odf_x_ns_count 5
odf_x_ns_sum 10
# EOF
`
	if _, err := ParseOpenMetrics(strings.NewReader(doc)); err == nil {
		t.Fatal("non-cumulative buckets accepted")
	} else if !strings.Contains(err.Error(), "cumulative") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestParseRejectsInfCountMismatch(t *testing.T) {
	doc := `# TYPE odf_x_ns histogram
odf_x_ns_bucket{le="2"} 5
odf_x_ns_bucket{le="+Inf"} 5
odf_x_ns_count 6
odf_x_ns_sum 10
# EOF
`
	if _, err := ParseOpenMetrics(strings.NewReader(doc)); err == nil {
		t.Fatal("+Inf/count mismatch accepted")
	}
}

func TestParseRejectsMissingInf(t *testing.T) {
	doc := `# TYPE odf_x_ns histogram
odf_x_ns_bucket{le="2"} 5
odf_x_ns_count 5
odf_x_ns_sum 10
# EOF
`
	if _, err := ParseOpenMetrics(strings.NewReader(doc)); err == nil {
		t.Fatal("histogram without +Inf bucket accepted")
	}
}

func TestParseRejectsOrphanSample(t *testing.T) {
	doc := "odf_mystery_total 1\n# EOF\n"
	if _, err := ParseOpenMetrics(strings.NewReader(doc)); err == nil {
		t.Fatal("sample outside any TYPE family accepted")
	}
}
