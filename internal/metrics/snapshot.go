package metrics

import (
	"fmt"
	"strings"
)

// Exemplar is one worst-case observation with the request id that
// produced it — the link from a histogram's tail to a trace flow.
type Exemplar struct {
	NS  uint64
	Req uint64
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	SumNS   uint64
	MaxNS   uint64
	Buckets [HistBuckets + 1]uint64
	// Exemplars are the worst tagged observations, largest first
	// (empty unless ObserveTagged ran with nonzero request ids).
	Exemplars []Exemplar
}

// Mean returns the mean observation in nanoseconds (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.SumNS) / float64(h.Count)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) in nanoseconds by
// linear interpolation inside the target log₂ bucket. Overflow-bucket
// hits report the recorded maximum; an empty histogram reports 0.
func (h HistogramSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	// With one observation every quantile IS that observation; bucket
	// interpolation would report a mid-bucket estimate up to 2× off.
	if h.Count == 1 {
		return h.MaxNS
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen float64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		next := seen + float64(n)
		if rank <= next || i == len(h.Buckets)-1 {
			if i == HistBuckets {
				return h.MaxNS
			}
			lo := uint64(0)
			if i > 0 {
				lo = uint64(1) << i
			}
			hi := BucketBound(i)
			frac := (rank - seen) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			est := lo + uint64(frac*float64(hi-lo))
			// Interpolation inside a log₂ bucket can overshoot the
			// largest value actually observed; never report past it.
			// (MaxNS == 0 means every observation was 0 ns, so the
			// clamp is right then too.)
			if est > h.MaxNS {
				est = h.MaxNS
			}
			return est
		}
		seen = next
	}
	return h.MaxNS
}

// Sub returns the histogram delta h − prev. Count, sum, and buckets
// subtract; MaxNS and the exemplars keep the current values, since a
// maximum cannot be un-observed (exact for deltas taken against a
// fresh registry).
func (h HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count:     h.Count - prev.Count,
		SumNS:     h.SumNS - prev.SumNS,
		MaxNS:     h.MaxNS,
		Exemplars: h.Exemplars,
	}
	for i := range h.Buckets {
		d.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// EngineSnapshot is one fork engine's view.
type EngineSnapshot struct {
	Forks   uint64
	Latency HistogramSnapshot
}

// ForkSnapshot covers both fork engines and the fan-out machinery.
type ForkSnapshot struct {
	Engines         [NumEngines]EngineSnapshot
	TablesShared    uint64
	TablesCopied    uint64
	PMDTablesShared uint64
	ParallelForks   uint64
	ParallelTasks   uint64
}

// Classic returns the eager-copy engine's view.
func (f ForkSnapshot) Classic() EngineSnapshot { return f.Engines[EngineClassic] }

// OnDemand returns the on-demand-fork engine's view.
func (f ForkSnapshot) OnDemand() EngineSnapshot { return f.Engines[EngineOnDemand] }

// FaultSnapshot covers the software fault handler.
type FaultSnapshot struct {
	ReadFaults       uint64
	WriteFaults      uint64
	ReadLatency      HistogramSnapshot
	WriteLatency     HistogramSnapshot
	TableCopyLatency HistogramSnapshot
	TableSplits      uint64
	PMDSplits        uint64
	FastDedups       uint64
	PageCopies       uint64
	HugeCopies       uint64
	ZeroElides       uint64
	Segfaults        uint64
}

// AllocSnapshot covers the physical frame allocator. The three gauges
// at the bottom describe allocator state at snapshot time rather than
// cumulative events.
type AllocSnapshot struct {
	ShardHits    uint64
	ShardRefills uint64
	ShardDrains  uint64
	HugeAllocs   uint64
	FramesInUse  int64 // gauge: frames currently allocated
	FramesPeak   int64 // gauge: high-water mark of FramesInUse
	ShardCached  int64 // gauge: free frames parked in shard caches
}

// ReclaimSnapshot covers the memory reclaim subsystem.
type ReclaimSnapshot struct {
	PgScanKswapd       uint64
	PgScanDirect       uint64
	PgStealKswapd      uint64
	PgStealDirect      uint64
	PswpIn             uint64
	PswpOut            uint64
	HugeSplits         uint64
	KswapdWakeups      uint64
	DirectReclaims     uint64
	SwapInLatency      HistogramSnapshot
	SwapOutLatency     HistogramSnapshot
	DirectStallLatency HistogramSnapshot
}

// TLBSnapshot aggregates every process's software TLB.
type TLBSnapshot struct {
	Hits       uint64
	Misses     uint64
	Flushes    uint64
	Shootdowns uint64
}

// RobustSnapshot covers the error-path machinery: faults injected by
// the failpoint registry (InjectedFaults is registry state overlaid by
// the kernel at snapshot time, like the allocator gauges) and the
// recoveries, retries, and degradations the system actually performed.
type RobustSnapshot struct {
	InjectedFaults   uint64 // overlay: failpoint registry fire total
	ForkAborts       uint64
	SwapReadRetries  uint64
	SwapWriteRetries uint64
	SwapReadErrors   uint64
	SwapWriteErrors  uint64
	SwapCorruptions  uint64
	SwapDegrades     uint64
	KswapdErrors     uint64
}

// CkptSnapshot covers the durable-checkpoint subsystem: capture-side
// volume (pages/bytes written, incremental skips), restore-side lazy
// page-ins, and the read-error ladder mirroring RobustSnapshot's swap
// counters.
type CkptSnapshot struct {
	Checkpoints   uint64
	PagesWritten  uint64
	BytesWritten  uint64
	PagesSkipped  uint64
	Restores      uint64
	PageIns       uint64
	ChunkLoads    uint64
	ReadRetries   uint64
	ReadErrors    uint64
	Corruptions   uint64
	Degrades      uint64
	WriteLatency  HistogramSnapshot
	PageInLatency HistogramSnapshot
}

// TenantSnapshot covers the multi-tenant control plane's system-wide
// admission and fair-share reclaim counters. Per-tenant breakdowns are
// served by /proc/odf/tenants.
type TenantSnapshot struct {
	ForksAdmitted uint64
	ForksQueued   uint64
	ForksRejected uint64
	QueueWait     HistogramSnapshot
	FairEvictions uint64
}

// TenantSlotSnapshot is one tenant's partition of the hot metrics.
type TenantSlotSnapshot struct {
	ID   uint64
	Name string

	Forks       [NumEngines]uint64
	ForkLatency [NumEngines]HistogramSnapshot

	TableSplits uint64
	PMDSplits   uint64
	FastDedups  uint64
	PageCopies  uint64
	HugeCopies  uint64
	SwapIns     uint64

	QueueWait        HistogramSnapshot
	ReclaimEvictions uint64
	QuotaRejections  uint64
}

// Sub returns the per-tenant delta t − prev.
func (t TenantSlotSnapshot) Sub(prev TenantSlotSnapshot) TenantSlotSnapshot {
	d := TenantSlotSnapshot{ID: t.ID, Name: t.Name}
	for e := range t.Forks {
		d.Forks[e] = t.Forks[e] - prev.Forks[e]
		d.ForkLatency[e] = t.ForkLatency[e].Sub(prev.ForkLatency[e])
	}
	d.TableSplits = t.TableSplits - prev.TableSplits
	d.PMDSplits = t.PMDSplits - prev.PMDSplits
	d.FastDedups = t.FastDedups - prev.FastDedups
	d.PageCopies = t.PageCopies - prev.PageCopies
	d.HugeCopies = t.HugeCopies - prev.HugeCopies
	d.SwapIns = t.SwapIns - prev.SwapIns
	d.QueueWait = t.QueueWait.Sub(prev.QueueWait)
	d.ReclaimEvictions = t.ReclaimEvictions - prev.ReclaimEvictions
	d.QuotaRejections = t.QuotaRejections - prev.QuotaRejections
	return d
}

// Snapshot is the typed telemetry tree the public API returns.
type Snapshot struct {
	Fork    ForkSnapshot
	Fault   FaultSnapshot
	Alloc   AllocSnapshot
	Reclaim ReclaimSnapshot
	TLB     TLBSnapshot
	Robust  RobustSnapshot
	Ckpt    CkptSnapshot
	Tenant  TenantSnapshot
	// Tenants are the per-tenant metric partitions, sorted by id
	// (empty when no tenants are registered).
	Tenants []TenantSlotSnapshot
}

// Sub returns the delta s − prev: counters and histograms subtract,
// gauges (frames in use/peak, shard-cached) keep the current value.
// Experiments use this to report what one run charged.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	var d Snapshot
	for i := range s.Fork.Engines {
		d.Fork.Engines[i] = EngineSnapshot{
			Forks:   s.Fork.Engines[i].Forks - prev.Fork.Engines[i].Forks,
			Latency: s.Fork.Engines[i].Latency.Sub(prev.Fork.Engines[i].Latency),
		}
	}
	d.Fork.TablesShared = s.Fork.TablesShared - prev.Fork.TablesShared
	d.Fork.TablesCopied = s.Fork.TablesCopied - prev.Fork.TablesCopied
	d.Fork.PMDTablesShared = s.Fork.PMDTablesShared - prev.Fork.PMDTablesShared
	d.Fork.ParallelForks = s.Fork.ParallelForks - prev.Fork.ParallelForks
	d.Fork.ParallelTasks = s.Fork.ParallelTasks - prev.Fork.ParallelTasks

	d.Fault.ReadFaults = s.Fault.ReadFaults - prev.Fault.ReadFaults
	d.Fault.WriteFaults = s.Fault.WriteFaults - prev.Fault.WriteFaults
	d.Fault.ReadLatency = s.Fault.ReadLatency.Sub(prev.Fault.ReadLatency)
	d.Fault.WriteLatency = s.Fault.WriteLatency.Sub(prev.Fault.WriteLatency)
	d.Fault.TableCopyLatency = s.Fault.TableCopyLatency.Sub(prev.Fault.TableCopyLatency)
	d.Fault.TableSplits = s.Fault.TableSplits - prev.Fault.TableSplits
	d.Fault.PMDSplits = s.Fault.PMDSplits - prev.Fault.PMDSplits
	d.Fault.FastDedups = s.Fault.FastDedups - prev.Fault.FastDedups
	d.Fault.PageCopies = s.Fault.PageCopies - prev.Fault.PageCopies
	d.Fault.HugeCopies = s.Fault.HugeCopies - prev.Fault.HugeCopies
	d.Fault.ZeroElides = s.Fault.ZeroElides - prev.Fault.ZeroElides
	d.Fault.Segfaults = s.Fault.Segfaults - prev.Fault.Segfaults

	d.Alloc.ShardHits = s.Alloc.ShardHits - prev.Alloc.ShardHits
	d.Alloc.ShardRefills = s.Alloc.ShardRefills - prev.Alloc.ShardRefills
	d.Alloc.ShardDrains = s.Alloc.ShardDrains - prev.Alloc.ShardDrains
	d.Alloc.HugeAllocs = s.Alloc.HugeAllocs - prev.Alloc.HugeAllocs
	d.Alloc.FramesInUse = s.Alloc.FramesInUse
	d.Alloc.FramesPeak = s.Alloc.FramesPeak
	d.Alloc.ShardCached = s.Alloc.ShardCached

	d.Reclaim.PgScanKswapd = s.Reclaim.PgScanKswapd - prev.Reclaim.PgScanKswapd
	d.Reclaim.PgScanDirect = s.Reclaim.PgScanDirect - prev.Reclaim.PgScanDirect
	d.Reclaim.PgStealKswapd = s.Reclaim.PgStealKswapd - prev.Reclaim.PgStealKswapd
	d.Reclaim.PgStealDirect = s.Reclaim.PgStealDirect - prev.Reclaim.PgStealDirect
	d.Reclaim.PswpIn = s.Reclaim.PswpIn - prev.Reclaim.PswpIn
	d.Reclaim.PswpOut = s.Reclaim.PswpOut - prev.Reclaim.PswpOut
	d.Reclaim.HugeSplits = s.Reclaim.HugeSplits - prev.Reclaim.HugeSplits
	d.Reclaim.KswapdWakeups = s.Reclaim.KswapdWakeups - prev.Reclaim.KswapdWakeups
	d.Reclaim.DirectReclaims = s.Reclaim.DirectReclaims - prev.Reclaim.DirectReclaims
	d.Reclaim.SwapInLatency = s.Reclaim.SwapInLatency.Sub(prev.Reclaim.SwapInLatency)
	d.Reclaim.SwapOutLatency = s.Reclaim.SwapOutLatency.Sub(prev.Reclaim.SwapOutLatency)
	d.Reclaim.DirectStallLatency = s.Reclaim.DirectStallLatency.Sub(prev.Reclaim.DirectStallLatency)

	d.TLB.Hits = s.TLB.Hits - prev.TLB.Hits
	d.TLB.Misses = s.TLB.Misses - prev.TLB.Misses
	d.TLB.Flushes = s.TLB.Flushes - prev.TLB.Flushes
	d.TLB.Shootdowns = s.TLB.Shootdowns - prev.TLB.Shootdowns

	d.Robust.InjectedFaults = s.Robust.InjectedFaults - prev.Robust.InjectedFaults
	d.Robust.ForkAborts = s.Robust.ForkAborts - prev.Robust.ForkAborts
	d.Robust.SwapReadRetries = s.Robust.SwapReadRetries - prev.Robust.SwapReadRetries
	d.Robust.SwapWriteRetries = s.Robust.SwapWriteRetries - prev.Robust.SwapWriteRetries
	d.Robust.SwapReadErrors = s.Robust.SwapReadErrors - prev.Robust.SwapReadErrors
	d.Robust.SwapWriteErrors = s.Robust.SwapWriteErrors - prev.Robust.SwapWriteErrors
	d.Robust.SwapCorruptions = s.Robust.SwapCorruptions - prev.Robust.SwapCorruptions
	d.Robust.SwapDegrades = s.Robust.SwapDegrades - prev.Robust.SwapDegrades
	d.Robust.KswapdErrors = s.Robust.KswapdErrors - prev.Robust.KswapdErrors

	d.Ckpt.Checkpoints = s.Ckpt.Checkpoints - prev.Ckpt.Checkpoints
	d.Ckpt.PagesWritten = s.Ckpt.PagesWritten - prev.Ckpt.PagesWritten
	d.Ckpt.BytesWritten = s.Ckpt.BytesWritten - prev.Ckpt.BytesWritten
	d.Ckpt.PagesSkipped = s.Ckpt.PagesSkipped - prev.Ckpt.PagesSkipped
	d.Ckpt.Restores = s.Ckpt.Restores - prev.Ckpt.Restores
	d.Ckpt.PageIns = s.Ckpt.PageIns - prev.Ckpt.PageIns
	d.Ckpt.ChunkLoads = s.Ckpt.ChunkLoads - prev.Ckpt.ChunkLoads
	d.Ckpt.ReadRetries = s.Ckpt.ReadRetries - prev.Ckpt.ReadRetries
	d.Ckpt.ReadErrors = s.Ckpt.ReadErrors - prev.Ckpt.ReadErrors
	d.Ckpt.Corruptions = s.Ckpt.Corruptions - prev.Ckpt.Corruptions
	d.Ckpt.Degrades = s.Ckpt.Degrades - prev.Ckpt.Degrades
	d.Ckpt.WriteLatency = s.Ckpt.WriteLatency.Sub(prev.Ckpt.WriteLatency)
	d.Ckpt.PageInLatency = s.Ckpt.PageInLatency.Sub(prev.Ckpt.PageInLatency)

	d.Tenant.ForksAdmitted = s.Tenant.ForksAdmitted - prev.Tenant.ForksAdmitted
	d.Tenant.ForksQueued = s.Tenant.ForksQueued - prev.Tenant.ForksQueued
	d.Tenant.ForksRejected = s.Tenant.ForksRejected - prev.Tenant.ForksRejected
	d.Tenant.QueueWait = s.Tenant.QueueWait.Sub(prev.Tenant.QueueWait)
	d.Tenant.FairEvictions = s.Tenant.FairEvictions - prev.Tenant.FairEvictions

	// Per-tenant deltas match slots by id; a tenant absent from prev
	// (registered mid-window) deltas against zero.
	prevByID := map[uint64]TenantSlotSnapshot{}
	for _, t := range prev.Tenants {
		prevByID[t.ID] = t
	}
	for _, t := range s.Tenants {
		d.Tenants = append(d.Tenants, t.Sub(prevByID[t.ID]))
	}
	return d
}

// Render produces the procfs text form served at /proc/odf/metrics:
// one `name value` pair per line, flat dotted names, fixed order, all
// values integers (nanoseconds for latencies). Histograms render
// count/sum/max plus p50/p99 estimates and their non-zero buckets as
// `name.bucket{le_ns=N}` lines (`le_ns=+inf` for overflow). The layout
// is deterministic for a given Snapshot, so it is golden-testable.
func (s Snapshot) Render() string {
	var b strings.Builder
	line := func(name string, v uint64) {
		fmt.Fprintf(&b, "%s %d\n", name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(&b, "%s %d\n", name, v)
	}
	hist := func(name string, h HistogramSnapshot) {
		line(name+".count", h.Count)
		line(name+".sum_ns", h.SumNS)
		line(name+".max_ns", h.MaxNS)
		line(name+".p50_ns", h.Quantile(0.50))
		line(name+".p99_ns", h.Quantile(0.99))
		for i, n := range h.Buckets {
			if n == 0 {
				continue
			}
			if i == HistBuckets {
				fmt.Fprintf(&b, "%s.bucket{le_ns=+inf} %d\n", name, n)
			} else {
				fmt.Fprintf(&b, "%s.bucket{le_ns=%d} %d\n", name, BucketBound(i), n)
			}
		}
		for _, ex := range h.Exemplars {
			fmt.Fprintf(&b, "%s.exemplar{req=%d} %d\n", name, ex.Req, ex.NS)
		}
	}

	for e := ForkEngine(0); e < NumEngines; e++ {
		line("fork."+e.String()+".forks", s.Fork.Engines[e].Forks)
		hist("fork."+e.String()+".latency", s.Fork.Engines[e].Latency)
	}
	line("fork.tables_shared", s.Fork.TablesShared)
	line("fork.tables_copied", s.Fork.TablesCopied)
	line("fork.pmd_tables_shared", s.Fork.PMDTablesShared)
	line("fork.parallel.forks", s.Fork.ParallelForks)
	line("fork.parallel.tasks", s.Fork.ParallelTasks)

	line("fault.read.count", s.Fault.ReadFaults)
	hist("fault.read.latency", s.Fault.ReadLatency)
	line("fault.write.count", s.Fault.WriteFaults)
	hist("fault.write.latency", s.Fault.WriteLatency)
	hist("fault.table_copy.latency", s.Fault.TableCopyLatency)
	line("fault.table_splits", s.Fault.TableSplits)
	line("fault.pmd_splits", s.Fault.PMDSplits)
	line("fault.fast_dedups", s.Fault.FastDedups)
	line("fault.page_copies", s.Fault.PageCopies)
	line("fault.huge_copies", s.Fault.HugeCopies)
	line("fault.zero_elides", s.Fault.ZeroElides)
	line("fault.segfaults", s.Fault.Segfaults)

	line("alloc.shard_hits", s.Alloc.ShardHits)
	line("alloc.shard_refills", s.Alloc.ShardRefills)
	line("alloc.shard_drains", s.Alloc.ShardDrains)
	line("alloc.huge_allocs", s.Alloc.HugeAllocs)
	gauge("alloc.frames_in_use", s.Alloc.FramesInUse)
	gauge("alloc.frames_peak", s.Alloc.FramesPeak)
	gauge("alloc.shard_cached", s.Alloc.ShardCached)

	line("reclaim.pgscan_kswapd", s.Reclaim.PgScanKswapd)
	line("reclaim.pgscan_direct", s.Reclaim.PgScanDirect)
	line("reclaim.pgsteal_kswapd", s.Reclaim.PgStealKswapd)
	line("reclaim.pgsteal_direct", s.Reclaim.PgStealDirect)
	line("reclaim.pswpin", s.Reclaim.PswpIn)
	line("reclaim.pswpout", s.Reclaim.PswpOut)
	line("reclaim.huge_splits", s.Reclaim.HugeSplits)
	line("reclaim.kswapd_wakeups", s.Reclaim.KswapdWakeups)
	line("reclaim.direct_reclaims", s.Reclaim.DirectReclaims)
	hist("reclaim.swapin.latency", s.Reclaim.SwapInLatency)
	hist("reclaim.swapout.latency", s.Reclaim.SwapOutLatency)
	hist("reclaim.direct_stall.latency", s.Reclaim.DirectStallLatency)

	line("tlb.hits", s.TLB.Hits)
	line("tlb.misses", s.TLB.Misses)
	line("tlb.flushes", s.TLB.Flushes)
	line("tlb.shootdowns", s.TLB.Shootdowns)

	line("robust.injected_faults", s.Robust.InjectedFaults)
	line("robust.fork_aborts", s.Robust.ForkAborts)
	line("robust.swap_read_retries", s.Robust.SwapReadRetries)
	line("robust.swap_write_retries", s.Robust.SwapWriteRetries)
	line("robust.swap_read_errors", s.Robust.SwapReadErrors)
	line("robust.swap_write_errors", s.Robust.SwapWriteErrors)
	line("robust.swap_corruptions", s.Robust.SwapCorruptions)
	line("robust.swap_degrades", s.Robust.SwapDegrades)
	line("robust.kswapd_errors", s.Robust.KswapdErrors)

	line("ckpt.checkpoints", s.Ckpt.Checkpoints)
	line("ckpt.pages_written", s.Ckpt.PagesWritten)
	line("ckpt.bytes_written", s.Ckpt.BytesWritten)
	line("ckpt.pages_skipped", s.Ckpt.PagesSkipped)
	line("ckpt.restores", s.Ckpt.Restores)
	line("ckpt.page_ins", s.Ckpt.PageIns)
	line("ckpt.chunk_loads", s.Ckpt.ChunkLoads)
	line("ckpt.read_retries", s.Ckpt.ReadRetries)
	line("ckpt.read_errors", s.Ckpt.ReadErrors)
	line("ckpt.corruptions", s.Ckpt.Corruptions)
	line("ckpt.degrades", s.Ckpt.Degrades)
	hist("ckpt.write.latency", s.Ckpt.WriteLatency)
	hist("ckpt.page_in.latency", s.Ckpt.PageInLatency)

	line("tenant.forks_admitted", s.Tenant.ForksAdmitted)
	line("tenant.forks_queued", s.Tenant.ForksQueued)
	line("tenant.forks_rejected", s.Tenant.ForksRejected)
	hist("tenant.queue_wait", s.Tenant.QueueWait)
	line("tenant.fair_evictions", s.Tenant.FairEvictions)

	for _, t := range s.Tenants {
		p := fmt.Sprintf("tenant.%d.", t.ID)
		for e := ForkEngine(0); e < NumEngines; e++ {
			line(p+"fork."+e.String()+".forks", t.Forks[e])
			hist(p+"fork."+e.String()+".latency", t.ForkLatency[e])
		}
		line(p+"fault.table_splits", t.TableSplits)
		line(p+"fault.pmd_splits", t.PMDSplits)
		line(p+"fault.fast_dedups", t.FastDedups)
		line(p+"fault.page_copies", t.PageCopies)
		line(p+"fault.huge_copies", t.HugeCopies)
		line(p+"fault.swap_ins", t.SwapIns)
		hist(p+"queue_wait", t.QueueWait)
		line(p+"reclaim_evictions", t.ReclaimEvictions)
		line(p+"quota_rejections", t.QuotaRejections)
	}
	return b.String()
}
