// Package metrics is the simulated kernel's telemetry subsystem: a
// registry of atomic counters, gauges, and fixed-bucket latency
// histograms covering every layer the paper's evaluation measures —
// fork latency per engine (§5.1, Figure 2), fault-handling cost
// (§5.2, Table 1), page-table sharing versus copying (§3.1), the
// physical allocator's shard caches, and the software TLB.
//
// Design rules:
//
//   - Concurrency-safe: every metric is a plain atomic; readers never
//     block writers. Snapshot() is a racy-but-coherent read of each
//     individual metric, the same contract /proc counters give.
//   - Near-zero cost when disabled: hot paths guard instrumentation
//     with Registry.Enabled() — one atomic load — and skip the
//     time.Now() calls entirely. A nil *Registry reports disabled, so
//     layers built without a registry need no special cases.
//   - Typed, not stringly: metrics are struct fields, so the compiler
//     checks every charge site and Snapshot() returns a typed tree
//     (contrast internal/profile, the deprecated string-keyed cost
//     model kept for the Figure 3 attribution).
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one event.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n events.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the number of finite log₂ latency buckets. Bucket i
// covers [2^i, 2^(i+1)) nanoseconds (bucket 0 also absorbs
// sub-nanosecond observations), so the finite range spans 1 ns up to
// 2^30 ns ≈ 1.07 s — the ns→ms scale the fork and fault paths live on.
// Observations beyond the last finite bucket land in the overflow
// bucket, index HistBuckets.
const HistBuckets = 30

// ExemplarSlots is how many worst-case observations a histogram keeps
// request ids for: enough to chase a handful of tail samples from a
// p99 bucket back to their traces without growing the struct much.
const ExemplarSlots = 4

// Histogram is a fixed-bucket log₂ latency histogram. The zero value
// is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // total nanoseconds
	max     atomic.Uint64 // largest observation, nanoseconds
	buckets [HistBuckets + 1]atomic.Uint64
	// Exemplar slots: the worst ExemplarSlots tagged observations seen
	// so far, each pairing a latency with the request id that produced
	// it. exNS is the admission gate (CAS min-replacement); exReq is
	// stored plainly after winning the CAS, so a racing reader can pair
	// a latency with the slot's previous request id — an acceptable
	// approximation for a debugging aid, never a torn value.
	exNS  [ExemplarSlots]atomic.Uint64
	exReq [ExemplarSlots]atomic.Uint64
}

// bucketOf maps a nanosecond latency to its bucket index.
func bucketOf(ns uint64) int {
	if ns == 0 {
		return 0
	}
	b := bits.Len64(ns) - 1
	if b >= HistBuckets {
		return HistBuckets
	}
	return b
}

// BucketBound returns the exclusive upper bound of bucket i in
// nanoseconds, or 0 for the overflow bucket.
func BucketBound(i int) uint64 {
	if i >= HistBuckets {
		return 0
	}
	return uint64(1) << (i + 1)
}

// Observe records one latency observation.
func (h *Histogram) Observe(d time.Duration) {
	var ns uint64
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		m := h.max.Load()
		if ns <= m || h.max.CompareAndSwap(m, ns) {
			break
		}
	}
	h.buckets[bucketOf(ns)].Add(1)
}

// ObserveTagged records one latency observation carrying the request
// id that produced it. The observation lands in the buckets exactly as
// Observe's would; additionally, if it is among the worst ExemplarSlots
// tagged observations so far, it claims an exemplar slot so the tail of
// the distribution stays traceable. req == 0 degrades to plain Observe.
func (h *Histogram) ObserveTagged(d time.Duration, req uint64) {
	h.Observe(d)
	if req == 0 {
		return
	}
	var ns uint64
	if d > 0 {
		ns = uint64(d)
	}
	if ns == 0 {
		return
	}
	// Min-replacement: claim the smallest slot if this observation
	// beats it. Two CAS attempts bound the cost on the hot path; a
	// lost race means a concurrent equal-or-worse observation already
	// took the slot, which serves the same purpose.
	for attempt := 0; attempt < 2; attempt++ {
		minI, minV := 0, uint64(math.MaxUint64)
		for i := range h.exNS {
			if v := h.exNS[i].Load(); v < minV {
				minI, minV = i, v
			}
		}
		if ns <= minV {
			return
		}
		if h.exNS[minI].CompareAndSwap(minV, ns) {
			h.exReq[minI].Store(req)
			return
		}
	}
}

// Snapshot returns a point-in-time copy of the histogram. Concurrent
// Observe calls may be partially included (count, sum, and buckets are
// read independently); totals are eventually consistent, never torn.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sum.Load()
	s.MaxNS = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	for i := range h.exNS {
		if ns := h.exNS[i].Load(); ns != 0 {
			s.Exemplars = append(s.Exemplars, Exemplar{NS: ns, Req: h.exReq[i].Load()})
		}
	}
	sort.Slice(s.Exemplars, func(i, j int) bool { return s.Exemplars[i].NS > s.Exemplars[j].NS })
	return s
}

// ForkEngine indexes per-engine fork metrics. The values deliberately
// match core.ForkMode (Classic=0, OnDemand=1) so layers convert by
// integer cast without importing core.
type ForkEngine int

// Fork engines.
const (
	EngineClassic ForkEngine = iota
	EngineOnDemand
	NumEngines // bound for per-engine arrays
)

// String names the engine as the paper does.
func (e ForkEngine) String() string {
	switch e {
	case EngineClassic:
		return "classic"
	case EngineOnDemand:
		return "ondemand"
	default:
		return "unknown"
	}
}

// TenantSlot partitions the hot-path metrics for one tenant: fork
// latency per engine, fault resolution classes, admission queue wait,
// fair-share evictions, and quota rejections. Slots are registered
// once per tenant (Registry.RegisterTenant) and owners keep the
// pointer, so charge sites pay a nil check plus the same atomics as
// the global registry — no map lookups on a fork or fault path.
type TenantSlot struct {
	ID   uint64
	Name string

	Forks       [NumEngines]Counter
	ForkLatency [NumEngines]Histogram

	Fault struct {
		TableSplits Counter
		PMDSplits   Counter
		FastDedups  Counter
		PageCopies  Counter
		HugeCopies  Counter
		SwapIns     Counter
	}

	QueueWait        Histogram
	ReclaimEvictions Counter
	QuotaRejections  Counter
}

// Snapshot captures the slot's current values.
func (t *TenantSlot) Snapshot() TenantSlotSnapshot {
	s := TenantSlotSnapshot{ID: t.ID, Name: t.Name}
	for e := ForkEngine(0); e < NumEngines; e++ {
		s.Forks[e] = t.Forks[e].Load()
		s.ForkLatency[e] = t.ForkLatency[e].Snapshot()
	}
	s.TableSplits = t.Fault.TableSplits.Load()
	s.PMDSplits = t.Fault.PMDSplits.Load()
	s.FastDedups = t.Fault.FastDedups.Load()
	s.PageCopies = t.Fault.PageCopies.Load()
	s.HugeCopies = t.Fault.HugeCopies.Load()
	s.SwapIns = t.Fault.SwapIns.Load()
	s.QueueWait = t.QueueWait.Snapshot()
	s.ReclaimEvictions = t.ReclaimEvictions.Load()
	s.QuotaRejections = t.QuotaRejections.Load()
	return s
}

// Registry is the system-wide metric tree. All fields are charged
// directly by the owning subsystem; hot paths must guard charges with
// Enabled().
type Registry struct {
	enabled atomic.Bool

	// Per-tenant metric slots, append-only under tmu. Hot paths never
	// touch this list — they hold direct *TenantSlot pointers handed
	// out at registration.
	tmu    sync.Mutex
	tslots []*TenantSlot

	// Fork engine metrics (internal/core fork paths).
	Fork struct {
		// Forks and Latency are per engine, indexed by ForkEngine.
		Forks   [NumEngines]Counter
		Latency [NumEngines]Histogram
		// TablesShared counts last-level PTE tables shared with a child
		// at fork time (§3.1); TablesCopied counts leaf tables copied
		// eagerly by the classic engine. Their ratio is the work
		// on-demand-fork defers.
		TablesShared Counter
		TablesCopied Counter
		// PMDTablesShared counts whole PMD tables shared by the §4
		// huge-page extension.
		PMDTablesShared Counter
		// ParallelForks counts forks that fanned out to the worker
		// pool; ParallelTasks counts the PMD-slot-range tasks they
		// produced (tasks/forks ≈ achieved fan-out width).
		ParallelForks Counter
		ParallelTasks Counter
	}

	// Fault-path metrics (internal/core fault handler).
	Fault struct {
		ReadFaults   Counter
		WriteFaults  Counter
		ReadLatency  Histogram
		WriteLatency Histogram
		// TableCopyLatency times genuine shared-table splits — the
		// deferred copy of §3.4, the number Table 1 compares.
		TableCopyLatency Histogram
		TableSplits      Counter // shared PTE tables copied on demand
		PMDSplits        Counter // shared huge-page PMD tables copied on demand
		FastDedups       Counter // last-sharer re-dedications (no copy)
		PageCopies       Counter // 4 KiB COW data copies
		HugeCopies       Counter // 2 MiB COW data copies
		ZeroElides       Counter // COW copies skipped: source page all-zero
		Segfaults        Counter // unrepairable faults
	}

	// Physical allocator metrics (internal/mem/phys). Frame-level
	// gauges (frames in use, peak, shard-cached) are filled from
	// allocator state at snapshot time — see Kernel.MetricsSnapshot.
	Alloc struct {
		ShardHits    Counter // order-0 allocations served by a shard cache
		ShardRefills Counter // batched pulls from the buddy core
		ShardDrains  Counter // batched returns to the buddy core
		HugeAllocs   Counter // order-9 compound allocations (buddy direct)
	}

	// Reclaim metrics (internal/mem/reclaim): LRU scanning, eviction,
	// swap I/O, and huge-page splits. Names follow /proc/vmstat.
	Reclaim struct {
		PgScanKswapd       Counter   // LRU pages scanned by the background reclaimer
		PgScanDirect       Counter   // LRU pages scanned by direct reclaim
		PgStealKswapd      Counter   // pages evicted by the background reclaimer
		PgStealDirect      Counter   // pages evicted by direct reclaim
		PswpIn             Counter   // pages read back from the swap store
		PswpOut            Counter   // pages written to the swap store
		HugeSplits         Counter   // 2 MiB mappings split for eviction
		KswapdWakeups      Counter   // kswapd episodes that found pressure
		DirectReclaims     Counter   // allocations that entered direct reclaim
		SwapInLatency      Histogram // fault-path swap-in stall
		SwapOutLatency     Histogram // store write during eviction
		DirectStallLatency Histogram // full direct-reclaim stall
	}

	// TLB metrics. The live TLBs keep their own per-process atomics;
	// the kernel folds exited processes' totals in here and sums live
	// ones at snapshot time, so the hot lookup path pays nothing extra.
	TLB struct {
		Hits       Counter
		Misses     Counter
		Flushes    Counter
		Shootdowns Counter
	}

	// Robustness metrics: what the error paths actually did. Injected
	// fault totals live in the failpoint registry (kernel overlays them
	// at snapshot time, like the allocator gauges); everything here is
	// observed behaviour — rollbacks taken, retries spent, degradations
	// entered — so a chaos run can assert the recovery machinery ran.
	Robust struct {
		ForkAborts       Counter // forks unwound after a mid-copy ErrNoMem
		SwapReadRetries  Counter // swap-store reads retried after an I/O error
		SwapWriteRetries Counter // swap-store writes retried after an I/O error
		SwapReadErrors   Counter // swap-ins abandoned after exhausting retries
		SwapWriteErrors  Counter // evictions abandoned after exhausting retries
		SwapCorruptions  Counter // swap-in checksum mismatches (ErrSwapCorrupt)
		SwapDegrades     Counter // transitions into degraded (auto-disabled) swap
		KswapdErrors     Counter // kswapd passes that panicked and were recovered
	}

	// Durable-checkpoint metrics (internal/ckpt + kernel wiring): what
	// the snapshot writer captured, what lazy restores faulted back in,
	// and the same retry/corruption/degrade ladder the swap path keeps,
	// so a chaos run can assert the checkpoint recovery machinery ran.
	Ckpt struct {
		Checkpoints   Counter   // snapshot files committed (full + incremental)
		PagesWritten  Counter   // page records written (incl. explicit-zero tombstones)
		BytesWritten  Counter   // bytes in committed snapshot files
		PagesSkipped  Counter   // pages elided by incremental frame-identity diff
		Restores      Counter   // processes created by RestoreFrom
		PageIns       Counter   // pages faulted in from a checkpoint on first touch
		ChunkLoads    Counter   // chunk reads+decompressions (CRC verified each)
		ReadRetries   Counter   // chunk reads retried after a transient I/O error
		ReadErrors    Counter   // chunk reads abandoned after exhausting retries
		Corruptions   Counter   // chunk CRC mismatches (ErrCheckpointCorrupt)
		Degrades      Counter   // snapshots latched degraded after read failures
		WriteLatency  Histogram // full CheckpointTo capture+commit wall time
		PageInLatency Histogram // fault-path page-in stall from checkpoint chunks
	}

	// Multi-tenant control-plane metrics (internal/tenant): system-wide
	// fork admission outcomes plus the fair-share reclaim pressure
	// exerted on over-quota tenants. Per-tenant quota/usage counters
	// live on the Tenant objects and are served by /proc/odf/tenants.
	Tenant struct {
		ForksAdmitted Counter   // forks admitted without queueing
		ForksQueued   Counter   // forks that waited in an admission queue
		ForksRejected Counter   // forks refused: queue full or wait timed out
		QueueWait     Histogram // admission queue wait (queued forks only)
		FairEvictions Counter   // pages stolen from over-quota tenant LRU partitions
	}
}

// New returns an enabled registry.
func New() *Registry {
	r := &Registry{}
	r.enabled.Store(true)
	return r
}

// Enabled reports whether instrumentation should run. Nil registries
// report false, so charge sites need no nil checks beyond this guard.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// SetEnabled toggles collection. Disabling keeps accumulated values.
func (r *Registry) SetEnabled(on bool) {
	if r != nil {
		r.enabled.Store(on)
	}
}

// RegisterTenant creates (or returns the existing) metric slot for a
// tenant id. The returned pointer is what fork/fault paths charge; a
// nil registry returns nil, and charge sites treat a nil slot as
// "untenanted" with one pointer check.
func (r *Registry) RegisterTenant(id uint64, name string) *TenantSlot {
	if r == nil {
		return nil
	}
	r.tmu.Lock()
	defer r.tmu.Unlock()
	for _, t := range r.tslots {
		if t.ID == id {
			return t
		}
	}
	t := &TenantSlot{ID: id, Name: name}
	r.tslots = append(r.tslots, t)
	sort.Slice(r.tslots, func(i, j int) bool { return r.tslots[i].ID < r.tslots[j].ID })
	return t
}

// TenantSlots returns the registered per-tenant slots, sorted by id.
func (r *Registry) TenantSlots() []*TenantSlot {
	if r == nil {
		return nil
	}
	r.tmu.Lock()
	defer r.tmu.Unlock()
	return append([]*TenantSlot(nil), r.tslots...)
}

// Snapshot captures the registry's current values as a typed tree.
// Frame-level allocator gauges are zero here; the kernel overlays them
// (Kernel.MetricsSnapshot) because they are allocator state, not
// registry counters.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for e := ForkEngine(0); e < NumEngines; e++ {
		s.Fork.Engines[e] = EngineSnapshot{
			Forks:   r.Fork.Forks[e].Load(),
			Latency: r.Fork.Latency[e].Snapshot(),
		}
	}
	s.Fork.TablesShared = r.Fork.TablesShared.Load()
	s.Fork.TablesCopied = r.Fork.TablesCopied.Load()
	s.Fork.PMDTablesShared = r.Fork.PMDTablesShared.Load()
	s.Fork.ParallelForks = r.Fork.ParallelForks.Load()
	s.Fork.ParallelTasks = r.Fork.ParallelTasks.Load()

	s.Fault.ReadFaults = r.Fault.ReadFaults.Load()
	s.Fault.WriteFaults = r.Fault.WriteFaults.Load()
	s.Fault.ReadLatency = r.Fault.ReadLatency.Snapshot()
	s.Fault.WriteLatency = r.Fault.WriteLatency.Snapshot()
	s.Fault.TableCopyLatency = r.Fault.TableCopyLatency.Snapshot()
	s.Fault.TableSplits = r.Fault.TableSplits.Load()
	s.Fault.PMDSplits = r.Fault.PMDSplits.Load()
	s.Fault.FastDedups = r.Fault.FastDedups.Load()
	s.Fault.PageCopies = r.Fault.PageCopies.Load()
	s.Fault.HugeCopies = r.Fault.HugeCopies.Load()
	s.Fault.ZeroElides = r.Fault.ZeroElides.Load()
	s.Fault.Segfaults = r.Fault.Segfaults.Load()

	s.Alloc.ShardHits = r.Alloc.ShardHits.Load()
	s.Alloc.ShardRefills = r.Alloc.ShardRefills.Load()
	s.Alloc.ShardDrains = r.Alloc.ShardDrains.Load()
	s.Alloc.HugeAllocs = r.Alloc.HugeAllocs.Load()

	s.Reclaim.PgScanKswapd = r.Reclaim.PgScanKswapd.Load()
	s.Reclaim.PgScanDirect = r.Reclaim.PgScanDirect.Load()
	s.Reclaim.PgStealKswapd = r.Reclaim.PgStealKswapd.Load()
	s.Reclaim.PgStealDirect = r.Reclaim.PgStealDirect.Load()
	s.Reclaim.PswpIn = r.Reclaim.PswpIn.Load()
	s.Reclaim.PswpOut = r.Reclaim.PswpOut.Load()
	s.Reclaim.HugeSplits = r.Reclaim.HugeSplits.Load()
	s.Reclaim.KswapdWakeups = r.Reclaim.KswapdWakeups.Load()
	s.Reclaim.DirectReclaims = r.Reclaim.DirectReclaims.Load()
	s.Reclaim.SwapInLatency = r.Reclaim.SwapInLatency.Snapshot()
	s.Reclaim.SwapOutLatency = r.Reclaim.SwapOutLatency.Snapshot()
	s.Reclaim.DirectStallLatency = r.Reclaim.DirectStallLatency.Snapshot()

	s.TLB.Hits = r.TLB.Hits.Load()
	s.TLB.Misses = r.TLB.Misses.Load()
	s.TLB.Flushes = r.TLB.Flushes.Load()
	s.TLB.Shootdowns = r.TLB.Shootdowns.Load()

	s.Robust.ForkAborts = r.Robust.ForkAborts.Load()
	s.Robust.SwapReadRetries = r.Robust.SwapReadRetries.Load()
	s.Robust.SwapWriteRetries = r.Robust.SwapWriteRetries.Load()
	s.Robust.SwapReadErrors = r.Robust.SwapReadErrors.Load()
	s.Robust.SwapWriteErrors = r.Robust.SwapWriteErrors.Load()
	s.Robust.SwapCorruptions = r.Robust.SwapCorruptions.Load()
	s.Robust.SwapDegrades = r.Robust.SwapDegrades.Load()
	s.Robust.KswapdErrors = r.Robust.KswapdErrors.Load()

	s.Ckpt.Checkpoints = r.Ckpt.Checkpoints.Load()
	s.Ckpt.PagesWritten = r.Ckpt.PagesWritten.Load()
	s.Ckpt.BytesWritten = r.Ckpt.BytesWritten.Load()
	s.Ckpt.PagesSkipped = r.Ckpt.PagesSkipped.Load()
	s.Ckpt.Restores = r.Ckpt.Restores.Load()
	s.Ckpt.PageIns = r.Ckpt.PageIns.Load()
	s.Ckpt.ChunkLoads = r.Ckpt.ChunkLoads.Load()
	s.Ckpt.ReadRetries = r.Ckpt.ReadRetries.Load()
	s.Ckpt.ReadErrors = r.Ckpt.ReadErrors.Load()
	s.Ckpt.Corruptions = r.Ckpt.Corruptions.Load()
	s.Ckpt.Degrades = r.Ckpt.Degrades.Load()
	s.Ckpt.WriteLatency = r.Ckpt.WriteLatency.Snapshot()
	s.Ckpt.PageInLatency = r.Ckpt.PageInLatency.Snapshot()

	s.Tenant.ForksAdmitted = r.Tenant.ForksAdmitted.Load()
	s.Tenant.ForksQueued = r.Tenant.ForksQueued.Load()
	s.Tenant.ForksRejected = r.Tenant.ForksRejected.Load()
	s.Tenant.QueueWait = r.Tenant.QueueWait.Snapshot()
	s.Tenant.FairEvictions = r.Tenant.FairEvictions.Load()

	for _, t := range r.TenantSlots() {
		s.Tenants = append(s.Tenants, t.Snapshot())
	}
	return s
}
